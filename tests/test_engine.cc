// Tests for the execution engine simulation: cost accounting, transfer
// counting, DBMS order scrambling, and the cost model's consistency.
#include <gtest/gtest.h>

#include "api/engine.h"
#include "core/equivalence.h"
#include "exec/evaluator.h"
#include "test_util.h"
#include "workload/paper_example.h"

namespace tqp {
namespace {

using P = PlanNode;

TEST(EngineTest, CountsTransfersAndSplitsWorkBySite) {
  Catalog catalog = PaperCatalog();
  PlanPtr plan = PaperInitialPlan();
  Result<AnnotatedPlan> ann =
      AnnotatedPlan::Make(plan, &catalog, PaperContract());
  ASSERT_TRUE(ann.ok());

  ExecStats stats;
  Result<Relation> out = Evaluate(ann.value(), EngineConfig{}, &stats);
  ASSERT_TRUE(out.ok());
  // One T_S at the top moves exactly the result tuples.
  EXPECT_EQ(stats.tuples_transferred, static_cast<int64_t>(out->size()));
  // Everything below T_S executes at the DBMS.
  EXPECT_GT(stats.dbms_work, 0.0);
  EXPECT_GT(stats.op_counts.at("differenceT"), 0);
  EXPECT_GT(stats.tuples_produced, 0);
}

TEST(EngineTest, StratumPlanChargesStratumWork) {
  Catalog catalog;
  TQP_CHECK(catalog
                .RegisterWithInferredFlags(
                    "T", testing_util::RandomTemporal(1), Site::kStratum)
                .ok());
  PlanPtr plan = P::RdupT(P::Scan("T"));
  ExecStats stats;
  Result<Relation> out = EvaluatePlan(plan, catalog, EngineConfig{}, &stats);
  ASSERT_TRUE(out.ok());
  EXPECT_GT(stats.stratum_work, 0.0);
  EXPECT_EQ(stats.dbms_work, 0.0);
}

TEST(EngineTest, DbmsTemporalPenaltyShowsUpInWork) {
  Catalog catalog = PaperCatalog();  // relations at the DBMS
  PlanPtr at_dbms = P::TransferS(P::RdupT(P::Scan("EMPLOYEE")));
  PlanPtr at_stratum = P::RdupT(P::TransferS(P::Scan("EMPLOYEE")));

  EngineConfig config;
  ExecStats s1, s2;
  ASSERT_TRUE(EvaluatePlan(at_dbms, catalog, config, &s1).ok());
  ASSERT_TRUE(EvaluatePlan(at_stratum, catalog, config, &s2).ok());
  // The temporal op at the DBMS pays the SQL-simulation penalty, making the
  // stratum placement cheaper overall (the motivation of Section 2.1).
  EXPECT_GT(s1.total_work(), s2.total_work());
}

TEST(EngineTest, ScrambleIsDeterministicAndMultisetPreserving) {
  Catalog catalog = PaperCatalog();
  PlanPtr plan = P::TransferS(
      P::Select(P::Scan("EMPLOYEE"),
                Expr::Compare(CompareOp::kNe, Expr::Attr("EmpName"),
                              Expr::Const(Value::String("zzz")))));
  EngineConfig scrambled;
  scrambled.dbms_scrambles_order = true;

  Result<Relation> a = EvaluatePlan(plan, catalog, scrambled);
  Result<Relation> b = EvaluatePlan(plan, catalog, scrambled);
  Result<Relation> plain = EvaluatePlan(plan, catalog, EngineConfig{});
  ASSERT_TRUE(a.ok() && b.ok() && plain.ok());
  EXPECT_TRUE(EquivalentAsLists(a.value(), b.value()));  // deterministic
  EXPECT_TRUE(EquivalentAsMultisets(a.value(), plain.value()));
  EXPECT_FALSE(EquivalentAsLists(a.value(), plain.value()));
}

TEST(EngineTest, DbmsSortSurvivesScrambling) {
  // Section 4.5: sort is the exception — its result order is trusted even
  // at the DBMS.
  Catalog catalog = PaperCatalog();
  PlanPtr plan = P::TransferS(
      P::Sort(P::Scan("EMPLOYEE"), {SortKey{"EmpName", true}}));
  EngineConfig scrambled;
  scrambled.dbms_scrambles_order = true;
  Result<Relation> out = EvaluatePlan(plan, catalog, scrambled);
  ASSERT_TRUE(out.ok());
  EXPECT_TRUE(out->IsSortedBy({SortKey{"EmpName", true}}));
}

TEST(EngineTest, ResultOrderAnnotationMatchesDerivedOrder) {
  Catalog catalog = PaperCatalog();
  PlanPtr plan = PaperInitialPlan();
  Result<AnnotatedPlan> ann =
      AnnotatedPlan::Make(plan, &catalog, PaperContract());
  ASSERT_TRUE(ann.ok());
  Result<Relation> out = Evaluate(ann.value(), EngineConfig{});
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(SortSpecToString(out->order()),
            SortSpecToString(ann->root_info().order));
  EXPECT_TRUE(out->IsSortedBy(out->order()));
}

TEST(EngineTest, FacadeExecStatsMatchHandWiredEvaluation) {
  // The facade's QueryResult::exec is the same accounting Evaluate produces
  // for the same plan. max_plans=1 pins the chosen plan to the initial one
  // so both sides execute the identical tree.
  Catalog catalog = PaperCatalog();
  PlanPtr plan = PaperInitialPlan();
  Result<AnnotatedPlan> ann =
      AnnotatedPlan::Make(plan, &catalog, PaperContract());
  ASSERT_TRUE(ann.ok());
  ExecStats hand;
  Result<Relation> expected = Evaluate(ann.value(), EngineConfig{}, &hand);
  ASSERT_TRUE(expected.ok());

  EngineOptions options;
  options.enumeration.max_plans = 1;
  Engine engine(PaperCatalog(), std::move(options));
  Result<PreparedQuery> prepared = engine.Prepare(plan, PaperContract());
  ASSERT_TRUE(prepared.ok());
  ASSERT_EQ(prepared->fingerprint(), plan->fingerprint());
  Result<QueryResult> out = prepared.value().Execute();
  ASSERT_TRUE(out.ok());

  EXPECT_TRUE(EquivalentAsLists(out->relation, expected.value()));
  EXPECT_EQ(out->exec.dbms_work, hand.dbms_work);
  EXPECT_EQ(out->exec.stratum_work, hand.stratum_work);
  EXPECT_EQ(out->exec.tuples_transferred, hand.tuples_transferred);
  EXPECT_EQ(out->exec.tuples_produced, hand.tuples_produced);
  EXPECT_EQ(out->exec.op_counts, hand.op_counts);
}

TEST(CostModelTest, EstimateTracksActualWorkDirectionally) {
  // The estimated plan cost need not match simulated work exactly, but it
  // must rank the paper's initial plan above the obviously better variant
  // that runs the temporal ops in the stratum.
  Catalog catalog = PaperCatalog();
  std::vector<ProjItem> proj = {ProjItem::Pass("EmpName"),
                                ProjItem::Pass(kT1), ProjItem::Pass(kT2)};
  PlanPtr initial = PaperInitialPlan();
  PlanPtr improved = P::Sort(
      P::Coalesce(P::RdupT(P::DifferenceT(
          P::RdupT(P::TransferS(P::Project(P::Scan("EMPLOYEE"), proj))),
          P::TransferS(P::Project(P::Scan("PROJECT"), proj))))),
      {SortKey{"EmpName", true}});

  EngineConfig config;
  Result<AnnotatedPlan> a =
      AnnotatedPlan::Make(initial, &catalog, PaperContract());
  Result<AnnotatedPlan> b =
      AnnotatedPlan::Make(improved, &catalog, PaperContract());
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_GT(EstimatePlanCost(a.value(), config),
            EstimatePlanCost(b.value(), config));

  ExecStats sa, sb;
  ASSERT_TRUE(Evaluate(a.value(), config, &sa).ok());
  ASSERT_TRUE(Evaluate(b.value(), config, &sb).ok());
  EXPECT_GT(sa.total_work(), sb.total_work());
}

}  // namespace
}  // namespace tqp
