// The observability layer end to end: the span recorder and its Chrome-trace
// export, the central metrics registry (Prometheus text + JSON), the
// per-operator profile tree behind EXPLAIN ANALYZE, the slow-query log, the
// split backend fallback/refusal counters, and JSON well-formedness of every
// machine-readable surface the repo emits (ExecStats, EngineStats,
// ServerStats, LoadGenReport, LatencyHistogram, profile, trace, metrics).
//
// Well-formedness is checked with a test-local recursive-descent JSON parser
// — deliberately the only JSON *reader* in the tree, so the writers cannot
// drift into "JSON-shaped" output that no parser would accept.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "algebra/printer.h"
#include "api/engine.h"
#include "backend/backend.h"
#include "backend/sqlite_backend.h"
#include "core/metrics.h"
#include "core/profile.h"
#include "core/trace.h"
#include "exec/evaluator.h"
#include "service/loadgen.h"
#include "service/server.h"
#include "test_util.h"
#include "workload/paper_example.h"

namespace tqp {
namespace {

// ---- A minimal JSON parser (test-local) ------------------------------------

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string str;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;  // insertion order

  const JsonValue* Find(const std::string& key) const {
    for (const auto& [k, v] : object) {
      if (k == key) return &v;
    }
    return nullptr;
  }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : s_(text) {}

  bool Parse(JsonValue* out, std::string* err) {
    if (!ParseValue(out, err)) return false;
    SkipWs();
    if (pos_ != s_.size()) return Fail(err, "trailing data");
    return true;
  }

 private:
  bool Fail(std::string* err, const std::string& what) {
    *err = what + " at byte " + std::to_string(pos_);
    return false;
  }

  void SkipWs() {
    while (pos_ < s_.size() && (s_[pos_] == ' ' || s_[pos_] == '\t' ||
                                s_[pos_] == '\n' || s_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool ParseValue(JsonValue* out, std::string* err) {
    SkipWs();
    if (pos_ >= s_.size()) return Fail(err, "unexpected end of input");
    switch (s_[pos_]) {
      case '{':
        return ParseObject(out, err);
      case '[':
        return ParseArray(out, err);
      case '"':
        out->kind = JsonValue::Kind::kString;
        return ParseString(&out->str, err);
      case 't':
        out->kind = JsonValue::Kind::kBool;
        out->boolean = true;
        return ParseLiteral("true", err);
      case 'f':
        out->kind = JsonValue::Kind::kBool;
        out->boolean = false;
        return ParseLiteral("false", err);
      case 'n':
        out->kind = JsonValue::Kind::kNull;
        return ParseLiteral("null", err);
      default:
        return ParseNumber(out, err);
    }
  }

  bool ParseLiteral(const char* lit, std::string* err) {
    for (const char* p = lit; *p != '\0'; ++p, ++pos_) {
      if (pos_ >= s_.size() || s_[pos_] != *p) return Fail(err, "bad literal");
    }
    return true;
  }

  bool ParseNumber(JsonValue* out, std::string* err) {
    const char* start = s_.c_str() + pos_;
    char* end = nullptr;
    out->number = std::strtod(start, &end);
    if (end == start) return Fail(err, "bad number");
    out->kind = JsonValue::Kind::kNumber;
    pos_ += static_cast<size_t>(end - start);
    return true;
  }

  bool ParseHex4(unsigned* out, std::string* err) {
    unsigned v = 0;
    for (int i = 0; i < 4; ++i, ++pos_) {
      if (pos_ >= s_.size()) return Fail(err, "bad \\u escape");
      char c = s_[pos_];
      v <<= 4;
      if (c >= '0' && c <= '9') {
        v |= static_cast<unsigned>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        v |= static_cast<unsigned>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        v |= static_cast<unsigned>(c - 'A' + 10);
      } else {
        return Fail(err, "bad \\u escape");
      }
    }
    *out = v;
    return true;
  }

  static void AppendUtf8(unsigned cp, std::string* out) {
    if (cp < 0x80) {
      out->push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out->push_back(static_cast<char>(0xC0 | (cp >> 6)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else if (cp < 0x10000) {
      out->push_back(static_cast<char>(0xE0 | (cp >> 12)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      out->push_back(static_cast<char>(0xF0 | (cp >> 18)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
  }

  bool ParseString(std::string* out, std::string* err) {
    ++pos_;  // opening quote
    while (true) {
      if (pos_ >= s_.size()) return Fail(err, "unterminated string");
      char c = s_[pos_++];
      if (c == '"') return true;
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (pos_ >= s_.size()) return Fail(err, "dangling escape");
      char e = s_[pos_++];
      switch (e) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/': out->push_back('/'); break;
        case 'b': out->push_back('\b'); break;
        case 'f': out->push_back('\f'); break;
        case 'n': out->push_back('\n'); break;
        case 'r': out->push_back('\r'); break;
        case 't': out->push_back('\t'); break;
        case 'u': {
          unsigned cp = 0;
          if (!ParseHex4(&cp, err)) return false;
          if (cp >= 0xD800 && cp <= 0xDBFF && pos_ + 1 < s_.size() &&
              s_[pos_] == '\\' && s_[pos_ + 1] == 'u') {
            pos_ += 2;
            unsigned lo = 0;
            if (!ParseHex4(&lo, err)) return false;
            cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
          }
          AppendUtf8(cp, out);
          break;
        }
        default:
          return Fail(err, "unknown escape");
      }
    }
  }

  bool ParseArray(JsonValue* out, std::string* err) {
    out->kind = JsonValue::Kind::kArray;
    ++pos_;  // '['
    SkipWs();
    if (pos_ < s_.size() && s_[pos_] == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      JsonValue v;
      if (!ParseValue(&v, err)) return false;
      out->array.push_back(std::move(v));
      SkipWs();
      if (pos_ >= s_.size()) return Fail(err, "unterminated array");
      if (s_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (s_[pos_] == ']') {
        ++pos_;
        return true;
      }
      return Fail(err, "expected ',' or ']'");
    }
  }

  bool ParseObject(JsonValue* out, std::string* err) {
    out->kind = JsonValue::Kind::kObject;
    ++pos_;  // '{'
    SkipWs();
    if (pos_ < s_.size() && s_[pos_] == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      SkipWs();
      if (pos_ >= s_.size() || s_[pos_] != '"') {
        return Fail(err, "expected object key");
      }
      std::string key;
      if (!ParseString(&key, err)) return false;
      SkipWs();
      if (pos_ >= s_.size() || s_[pos_] != ':') return Fail(err, "expected ':'");
      ++pos_;
      JsonValue v;
      if (!ParseValue(&v, err)) return false;
      out->object.emplace_back(std::move(key), std::move(v));
      SkipWs();
      if (pos_ >= s_.size()) return Fail(err, "unterminated object");
      if (s_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (s_[pos_] == '}') {
        ++pos_;
        return true;
      }
      return Fail(err, "expected ',' or '}'");
    }
  }

  const std::string& s_;
  size_t pos_ = 0;
};

JsonValue MustParse(const std::string& text) {
  JsonValue v;
  std::string err;
  JsonParser parser(text);
  EXPECT_TRUE(parser.Parse(&v, &err)) << err << "\nin: " << text;
  return v;
}

std::set<std::string> KeySet(const JsonValue& v) {
  std::set<std::string> keys;
  for (const auto& [k, unused] : v.object) keys.insert(k);
  return keys;
}

double NumberAt(const JsonValue& obj, const std::string& key) {
  const JsonValue* v = obj.Find(key);
  EXPECT_TRUE(v != nullptr && v->kind == JsonValue::Kind::kNumber)
      << "missing number '" << key << "'";
  return v == nullptr ? 0.0 : v->number;
}

constexpr bool BuiltWithSanitizers() {
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
  return true;
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
  return true;
#else
  return false;
#endif
#else
  return false;
#endif
}

/// The paper's catalog plus one larger messy temporal relation, so profiled
/// queries run long enough to measure.
Catalog ObsCatalog(size_t r_rows = 512) {
  Catalog catalog = PaperCatalog();
  TQP_CHECK(catalog
                .RegisterWithInferredFlags(
                    "R", testing_util::RandomTemporal(7, r_rows), Site::kDbms)
                .ok());
  return catalog;
}

// ---- Parser self-checks ----------------------------------------------------

TEST(JsonParserTest, ParsesNestedStructures) {
  JsonValue v = MustParse(
      "{\"a\":[1,2.5,-3e2],\"b\":{\"c\":true,\"d\":null},\"e\":\"x\"}");
  ASSERT_EQ(v.kind, JsonValue::Kind::kObject);
  const JsonValue* a = v.Find("a");
  ASSERT_TRUE(a != nullptr);
  ASSERT_EQ(a->array.size(), 3u);
  EXPECT_DOUBLE_EQ(a->array[1].number, 2.5);
  EXPECT_DOUBLE_EQ(a->array[2].number, -300.0);
  EXPECT_TRUE(v.Find("b")->Find("c")->boolean);
  EXPECT_EQ(v.Find("b")->Find("d")->kind, JsonValue::Kind::kNull);
  EXPECT_EQ(v.Find("e")->str, "x");
}

TEST(JsonParserTest, DecodesEscapes) {
  JsonValue v = MustParse("{\"k\":\"a\\\"b\\\\c\\n\\t\\u0001\\u00e9\"}");
  EXPECT_EQ(v.Find("k")->str, std::string("a\"b\\c\n\t\x01\xc3\xa9"));
}

TEST(JsonParserTest, RejectsMalformedInput) {
  for (const char* bad : {"{", "{\"a\":}", "[1,]", "\"x", "{\"a\" 1}", "tru"}) {
    JsonValue v;
    std::string err;
    JsonParser p{std::string(bad)};
    EXPECT_FALSE(p.Parse(&v, &err)) << bad;
  }
}

// ---- Tracer ----------------------------------------------------------------

TEST(TracerTest, NestedSpansLinkParents) {
  Tracer tracer;
  {
    TraceSpan outer(&tracer, "test", "outer");
    outer.Arg("k", std::string("v"));
    { TraceSpan inner(&tracer, "test", "inner"); }
  }
  ASSERT_EQ(tracer.event_count(), 2u);
  std::vector<TraceEvent> events = tracer.Snapshot();
  // Completion order: inner finishes first.
  EXPECT_EQ(events[0].name, "inner");
  EXPECT_EQ(events[1].name, "outer");
  EXPECT_EQ(events[0].parent, events[1].id);
  EXPECT_EQ(events[1].parent, 0u);
  EXPECT_GE(events[1].dur_ns, events[0].dur_ns);
  ASSERT_EQ(events[1].args.size(), 1u);
  EXPECT_EQ(events[1].args[0].second, "v");
}

TEST(TracerTest, DisabledAndNullTracersRecordNothing) {
  Tracer tracer;
  tracer.set_enabled(false);
  {
    TraceSpan span(&tracer, "test", "ignored");
    EXPECT_FALSE(span.active());
  }
  EXPECT_EQ(tracer.event_count(), 0u);
  {
    TraceSpan span(nullptr, "test", "ignored");
    EXPECT_FALSE(span.active());
    span.Arg("k", uint64_t{1});  // must be a no-op, not a crash
  }
}

TEST(TracerTest, ChromeJsonRoundTripsThroughParser) {
  Tracer tracer;
  {
    // Hostile span name: quotes, backslash, newline, control byte, UTF-8.
    TraceSpan outer(&tracer, "test", "se\"le\\ct\n\x01π");
    outer.Arg("rows", uint64_t{42});
    { TraceSpan inner(&tracer, "test", "child"); }
  }
  const std::string json = tracer.ToChromeJson();
  JsonValue v = MustParse(json);
  EXPECT_EQ(v.Find("displayTimeUnit")->str, "ms");
  const JsonValue* events = v.Find("traceEvents");
  ASSERT_TRUE(events != nullptr);
  ASSERT_EQ(events->array.size(), 2u);
  const JsonValue& inner = events->array[0];  // completion order
  const JsonValue& outer = events->array[1];
  // The Chrome trace_event contract: complete events with these fields.
  for (const JsonValue* ev : {&inner, &outer}) {
    for (const char* key : {"name", "cat", "ph", "pid", "tid", "ts", "dur",
                            "args"}) {
      EXPECT_TRUE(ev->Find(key) != nullptr) << key;
    }
    EXPECT_EQ(ev->Find("ph")->str, "X");
  }
  EXPECT_EQ(outer.Find("name")->str, "se\"le\\ct\n\x01π");  // exact round-trip
  EXPECT_EQ(outer.Find("args")->Find("rows")->str, "42");
  // Root spans omit "parent"; nested spans point at the enclosing span id.
  EXPECT_TRUE(outer.Find("args")->Find("parent") == nullptr);
  ASSERT_TRUE(inner.Find("args")->Find("parent") != nullptr);
  EXPECT_EQ(inner.Find("args")->Find("parent")->str,
            outer.Find("args")->Find("span")->str);
}

// ---- Metrics registry ------------------------------------------------------

TEST(MetricsRegistryTest, CountersGaugesHistograms) {
  MetricsRegistry reg;
  MetricCounter* c = reg.GetCounter("test_total", "a counter");
  EXPECT_EQ(c, reg.GetCounter("test_total"));  // stable resolve
  c->Add(3);
  c->Add();
  EXPECT_EQ(c->value(), 4u);
  reg.GetGauge("test_gauge", "a gauge")->Set(2.5);
  EXPECT_DOUBLE_EQ(reg.GetGauge("test_gauge")->value(), 2.5);
  LatencyHistogram* h = reg.GetHistogram("test_us", "a histogram");
  for (uint64_t i = 1; i <= 100; ++i) h->Record(i);
  EXPECT_EQ(reg.size(), 3u);

  JsonValue v = MustParse(reg.ToJson());
  EXPECT_EQ(v.Find("test_total")->Find("type")->str, "counter");
  EXPECT_DOUBLE_EQ(NumberAt(*v.Find("test_total"), "value"), 4.0);
  EXPECT_EQ(v.Find("test_gauge")->Find("type")->str, "gauge");
  EXPECT_EQ(v.Find("test_us")->Find("type")->str, "histogram");
  EXPECT_DOUBLE_EQ(NumberAt(v.Find("test_us")->Find("summary") == nullptr
                                ? *v.Find("test_us")
                                : *v.Find("test_us")->Find("summary"),
                            "count"),
                   100.0);

  const std::string prom = reg.ToPrometheusText();
  EXPECT_NE(prom.find("# TYPE test_total counter"), std::string::npos) << prom;
  EXPECT_NE(prom.find("test_total 4"), std::string::npos) << prom;
  EXPECT_NE(prom.find("# TYPE test_gauge gauge"), std::string::npos);
  EXPECT_NE(prom.find("# TYPE test_us summary"), std::string::npos);
  EXPECT_NE(prom.find("test_us{quantile=\"0.5\"}"), std::string::npos) << prom;
  EXPECT_NE(prom.find("test_us_count 100"), std::string::npos) << prom;
  EXPECT_NE(prom.find("# HELP test_total a counter"), std::string::npos);

  // Deterministic rendering: same state, identical bytes.
  EXPECT_EQ(prom, reg.ToPrometheusText());
  EXPECT_EQ(reg.ToJson(), reg.ToJson());

  reg.ResetAll();
  EXPECT_EQ(c->value(), 0u);
  EXPECT_EQ(h->count(), 0u);
}

TEST(MetricsRegistryTest, EngineAndServerStatsPublishAsGauges) {
  MetricsRegistry reg;
  EngineStats es;
  es.prepares = 7;
  es.backend_refusals = 2;
  es.slow_queries = 1;
  es.PublishTo(&reg);
  EXPECT_DOUBLE_EQ(reg.GetGauge("tqp_engine_prepares")->value(), 7.0);
  EXPECT_DOUBLE_EQ(reg.GetGauge("tqp_engine_backend_refusals")->value(), 2.0);
  EXPECT_DOUBLE_EQ(reg.GetGauge("tqp_engine_slow_queries")->value(), 1.0);
  ServerStats ss;
  ss.queries = 9;
  ss.traced_queries = 4;
  ss.PublishTo(&reg);
  EXPECT_DOUBLE_EQ(reg.GetGauge("tqp_server_queries")->value(), 9.0);
  EXPECT_DOUBLE_EQ(reg.GetGauge("tqp_server_traced_queries")->value(), 4.0);
  // Republishing sets, never accumulates.
  es.PublishTo(&reg);
  EXPECT_DOUBLE_EQ(reg.GetGauge("tqp_engine_prepares")->value(), 7.0);
}

// ---- Golden key sets over every JSON surface -------------------------------

TEST(JsonSurfacesTest, ExecStatsKeySet) {
  Engine engine(ObsCatalog());
  Result<QueryResult> result = engine.Query(PaperQueryText());
  ASSERT_TRUE(result.ok());
  JsonValue v = MustParse(result->exec.ToJson());
  const std::set<std::string> expected = {
      "dbms_work",         "stratum_work",       "total_work",
      "tuples_transferred", "tuples_produced",   "vec_batches",
      "vec_materializations", "vec_rows",        "morsels",
      "steals",            "spill_bytes",        "spill_runs",
      "backend_pushdowns", "backend_rows",       "backend_fallbacks",
      "backend_refusals",  "result_cache_hits",  "result_cache_misses",
      "ops"};
  EXPECT_EQ(KeySet(v), expected);
  EXPECT_EQ(v.Find("ops")->kind, JsonValue::Kind::kObject);
}

TEST(JsonSurfacesTest, EngineStatsKeySet) {
  Engine engine(ObsCatalog());
  ASSERT_TRUE(engine.Query(PaperQueryText()).ok());
  JsonValue v = MustParse(engine.stats().ToJson());
  const std::set<std::string> expected = {
      "prepares",
      "plan_cache_hits",
      "plan_cache_misses",
      "plan_cache_evictions",
      "plan_cache_stale_evictions",
      "plan_cache_imports",
      "invalidations",
      "peak_concurrent_queries",
      "plan_cache_entries",
      "interner_nodes",
      "interner_hits",
      "derivation_nodes",
      "backend",
      "backend_pushdowns",
      "backend_rows",
      "backend_fallbacks",
      "backend_refusals",
      "calibration_fingerprint",
      "slow_queries",
      "result_cache_hits",
      "result_cache_misses",
      "result_cache_evictions",
      "result_cache_entries",
      "result_cache_bytes"};
  EXPECT_EQ(KeySet(v), expected);
  EXPECT_DOUBLE_EQ(NumberAt(v, "prepares"), 1.0);
}

TEST(JsonSurfacesTest, ServerStatsKeySet) {
  ServerStats s;
  JsonValue v = MustParse(s.ToJson());
  const std::set<std::string> expected = {
      "connections_total", "connections_active", "queries",
      "errors",            "batches_sent",       "rows_sent",
      "snapshots_written", "plans_imported",     "metrics_requests",
      "traced_queries"};
  EXPECT_EQ(KeySet(v), expected);
}

TEST(JsonSurfacesTest, LoadGenReportAndHistogramKeySets) {
  LoadGenReport report;
  report.latency_us.Record(100);
  JsonValue v = MustParse(report.ToJson());
  const std::set<std::string> expected = {"queries", "errors",    "batches",
                                          "rows",    "plan_cache_hits",
                                          "elapsed_s", "qps", "latency_us"};
  EXPECT_EQ(KeySet(v), expected);
  const std::set<std::string> hist_keys = {"count", "min", "max", "mean",
                                           "p50",  "p90", "p99", "p999"};
  EXPECT_EQ(KeySet(*v.Find("latency_us")), hist_keys);
}

// ---- Profile tree (EXPLAIN ANALYZE) ----------------------------------------

TEST(ProfileTest, TreeMirrorsPlanAndCountsRows) {
  Engine engine(ObsCatalog());
  QueryRunOptions run;
  run.profile = true;
  Result<QueryResult> result = engine.Query(PaperQueryText(), run);
  ASSERT_TRUE(result.ok());
  ASSERT_TRUE(result->profile != nullptr);
  const ProfileNode& root = *result->profile;
  Result<PreparedQuery> prepared = engine.Prepare(PaperQueryText());
  ASSERT_TRUE(prepared.ok());
  EXPECT_EQ(root.kind, OpKindName(prepared->best_plan()->kind()));
  EXPECT_EQ(root.children.size(), prepared->best_plan()->children().size());
  EXPECT_EQ(static_cast<size_t>(root.rows_out), result->relation.size());
  EXPECT_GT(root.wall_ns, 0u);
  // Untraced, unprofiled queries carry no tree.
  Result<QueryResult> plain = engine.Query(PaperQueryText());
  ASSERT_TRUE(plain.ok());
  EXPECT_TRUE(plain->profile == nullptr);

  JsonValue v = MustParse(root.ToJson());
  const std::set<std::string> expected = {
      "op",      "kind",     "wall_ns", "self_ns", "rows_in",
      "rows_out", "batches", "cache_hit", "pushed", "children"};
  EXPECT_EQ(KeySet(v), expected);
  EXPECT_EQ(v.Find("children")->array.size(), root.children.size());
}

TEST(ProfileTest, RenderIsByteStableModuloTimings) {
  for (ExecutorKind executor :
       {ExecutorKind::kReference, ExecutorKind::kVectorized}) {
    EngineOptions options;
    options.executor = executor;
    Engine engine(ObsCatalog(), std::move(options));
    Result<PreparedQuery> prepared = engine.Prepare(PaperQueryText());
    ASSERT_TRUE(prepared.ok());
    QueryRunOptions run;
    run.profile = true;
    Result<QueryResult> a = prepared.value().Execute(run);
    Result<QueryResult> b = prepared.value().Execute(run);
    ASSERT_TRUE(a.ok() && b.ok());
    ASSERT_TRUE(a->profile != nullptr && b->profile != nullptr);
    ProfilePrintOptions popts;
    popts.show_times = false;
    const std::string ra = PrintProfile(*a->profile, popts);
    const std::string rb = PrintProfile(*b->profile, popts);
    EXPECT_EQ(ra, rb);  // rows/batches/structure: deterministic
    EXPECT_NE(ra.find(OpKindName(prepared->best_plan()->kind())),
              std::string::npos)
        << ra;
  }
}

TEST(ProfileTest, SelfTimesSumCloseToExecutorWall) {
  if (!BuiltWithSanitizers()) {
#ifdef NDEBUG
    // A real (if small) workload, reference executor: self times over the
    // tree telescope back to the root's inclusive wall, which in turn must
    // be within 20% of the measured executor wall clock.
    Engine engine(ObsCatalog(20000));
    QueryRunOptions run;
    run.profile = true;
    Result<QueryResult> result = engine.Query(
        "VALIDTIME SELECT DISTINCT Name FROM R ORDER BY Name ASC", run);
    ASSERT_TRUE(result.ok());
    ASSERT_TRUE(result->profile != nullptr);
    uint64_t self_sum = 0;
    std::vector<const ProfileNode*> stack = {result->profile.get()};
    while (!stack.empty()) {
      const ProfileNode* n = stack.back();
      stack.pop_back();
      self_sum += n->SelfNs();
      for (const ProfileNode& c : n->children) stack.push_back(&c);
    }
    const double wall = static_cast<double>(result->exec_wall_ns);
    ASSERT_GT(wall, 0.0);
    EXPECT_GT(static_cast<double>(self_sum), 0.8 * wall)
        << "self_sum=" << self_sum << " wall=" << result->exec_wall_ns;
    EXPECT_LE(static_cast<double>(self_sum), 1.2 * wall);
#endif
  }
}

// ---- Traced queries through the Engine -------------------------------------

TEST(EngineTraceTest, TraceCoversWholeLifecycle) {
  Engine engine(ObsCatalog());
  QueryRunOptions run;
  run.trace = true;
  Result<QueryResult> result = engine.Query(PaperQueryText(), run);
  ASSERT_TRUE(result.ok());
  ASSERT_FALSE(result->trace_json.empty());
  JsonValue v = MustParse(result->trace_json);
  std::set<std::string> names, cats;
  for (const JsonValue& ev : v.Find("traceEvents")->array) {
    names.insert(ev.Find("name")->str);
    cats.insert(ev.Find("cat")->str);
  }
  // One trace spans the full pipeline: facade, compile, optimize, execute.
  for (const char* name : {"plan_cache_probe", "parse", "translate",
                           "enumerate", "cost"}) {
    EXPECT_TRUE(names.count(name)) << name;
  }
  for (const char* cat : {"api", "tql", "opt", "exec"}) {
    EXPECT_TRUE(cats.count(cat)) << cat;
  }
  // Per-operator execution spans carry the operator kind as the span name.
  Result<PreparedQuery> prepared = engine.Prepare(PaperQueryText());
  ASSERT_TRUE(prepared.ok());
  EXPECT_TRUE(names.count(OpKindName(prepared->best_plan()->kind())));

  // Untraced queries return no trace — and record no events anywhere.
  Result<QueryResult> plain = engine.Query(PaperQueryText());
  ASSERT_TRUE(plain.ok());
  EXPECT_TRUE(plain->trace_json.empty());
}

TEST(EngineTraceTest, VexecTraceIncludesMorselSpans) {
  EngineOptions options;
  options.executor = ExecutorKind::kVectorized;
  options.vexec_threads = 4;
  options.vexec_batch_size = 256;
  Engine engine(ObsCatalog(8192), std::move(options));
  QueryRunOptions run;
  run.trace = true;
  Result<QueryResult> result = engine.Query(
      "VALIDTIME SELECT DISTINCT Name FROM R ORDER BY Name ASC", run);
  ASSERT_TRUE(result.ok());
  JsonValue v = MustParse(result->trace_json);
  size_t vexec_spans = 0, morsel_like = 0;
  std::set<double> tids;
  for (const JsonValue& ev : v.Find("traceEvents")->array) {
    if (ev.Find("cat")->str == "vexec") ++vexec_spans;
    const std::string& name = ev.Find("name")->str;
    if (name == "morsel" || name == "task" || name == "units") {
      ++morsel_like;
      tids.insert(ev.Find("tid")->number);
    }
  }
  EXPECT_GT(vexec_spans, 0u);
  EXPECT_GT(morsel_like, 0u);  // the pool's per-morsel spans made it out
}

// ---- Slow-query log --------------------------------------------------------

TEST(EngineSlowLogTest, RecordsTextFingerprintAndHottest) {
  EngineOptions options;
  options.slow_query_threshold_ms = 1e-6;  // everything qualifies
  Engine engine(ObsCatalog(), std::move(options));
  Result<QueryResult> result = engine.Query(PaperQueryText());
  ASSERT_TRUE(result.ok());
  // The log forced profiling internally, but the caller never asked for the
  // tree back.
  EXPECT_TRUE(result->profile == nullptr);

  std::vector<SlowQueryRecord> log = engine.slow_queries();
  ASSERT_EQ(log.size(), 1u);
  EXPECT_EQ(log[0].text, PaperQueryText());
  EXPECT_EQ(log[0].plan_fingerprint, result->plan_fingerprint);
  EXPECT_GT(log[0].wall_ns, 0u);
  ASSERT_FALSE(log[0].hottest.empty());
  EXPECT_LE(log[0].hottest.size(), 3u);
  // Hottest-first ordering.
  for (size_t i = 1; i < log[0].hottest.size(); ++i) {
    EXPECT_GE(log[0].hottest[i - 1].second, log[0].hottest[i].second);
  }
  EXPECT_EQ(engine.stats().slow_queries, 1u);
}

TEST(EngineSlowLogTest, UnarmedThresholdLogsNothing) {
  Engine engine(ObsCatalog());
  ASSERT_TRUE(engine.Query(PaperQueryText()).ok());
  EXPECT_TRUE(engine.slow_queries().empty());
  EXPECT_EQ(engine.stats().slow_queries, 0u);
}

// ---- Split backend fallback/refusal counters --------------------------------

TEST(BackendRefusalTest, SerializerRefusalCountsSeparately) {
  if (!SqliteBackend::Available()) GTEST_SKIP();
  Catalog catalog;
  Schema s;
  s.Add(Attribute{"Name", ValueType::kString});
  s.Add(Attribute{"Val", ValueType::kInt});
  s.Add(Attribute{"Cat", ValueType::kInt});
  Relation rel(s);
  for (int i = 0; i < 8; ++i) {
    Tuple t;
    t.push_back(Value::String("n" + std::to_string(i % 3)));
    t.push_back(Value::Int(10 * i));
    t.push_back(Value::Int(i % 2));
    rel.Append(std::move(t));
  }
  TQP_CHECK(catalog.RegisterWithInferredFlags("C", rel, Site::kDbms).ok());
  Result<std::unique_ptr<Backend>> made = MakeBackend(BackendKind::kSqlite);
  ASSERT_TRUE(made.ok());

  // Integer division is refused by the serializer (stratum and SQLite
  // disagree on its semantics), so the cut never reaches the backend: a
  // refusal, not a fallback.
  std::vector<ProjItem> proj = {
      ProjItem::Pass("Name"),
      ProjItem{Expr::Arith(ArithOp::kDiv, Expr::Attr("Val"),
                           Expr::Attr("Cat")),
               "VD"},
  };
  PlanPtr plan =
      PlanNode::TransferS(PlanNode::Project(PlanNode::Scan("C"), proj));
  EngineConfig cfg;
  cfg.backend = made.value().get();
  ExecStats stats;
  Result<Relation> got = EvaluatePlan(plan, catalog, cfg, &stats);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_EQ(stats.backend_pushdowns, 0);
  EXPECT_EQ(stats.backend_fallbacks, 0);
  EXPECT_GE(stats.backend_refusals, 1);

  // The split surfaces in the JSON rendering too.
  JsonValue v = MustParse(stats.ToJson());
  EXPECT_GE(NumberAt(v, "backend_refusals"), 1.0);
  EXPECT_DOUBLE_EQ(NumberAt(v, "backend_fallbacks"), 0.0);
}

// ---- Service: \metrics and \trace ------------------------------------------

TEST(ServiceObservabilityTest, MetricsAndTraceCommands) {
  Engine engine(ObsCatalog());
  Server server(&engine, ServerOptions{});
  ASSERT_TRUE(server.Start().ok());

  ServiceClient client;
  ASSERT_TRUE(client.Connect(server.host(), server.port()).ok());
  ASSERT_TRUE(client.RunQuery(PaperQueryText()).ok());

  // \metrics: one frame with both renderings of the global registry, fresh
  // from the engine + server stats snapshots.
  Result<std::string> metrics = client.Command("\\metrics");
  ASSERT_TRUE(metrics.ok()) << metrics.status().message();
  JsonValue frame = MustParse(*metrics);
  EXPECT_EQ(frame.Find("type")->str, "metrics");
  const std::string& prom = frame.Find("prometheus")->str;
  EXPECT_NE(prom.find("tqp_queries_total"), std::string::npos) << prom;
  EXPECT_NE(prom.find("tqp_engine_prepares"), std::string::npos) << prom;
  EXPECT_NE(prom.find("tqp_server_queries"), std::string::npos) << prom;
  const JsonValue* registry = frame.Find("metrics");
  ASSERT_TRUE(registry != nullptr);
  EXPECT_GE(NumberAt(*registry->Find("tqp_queries_total"), "value"), 1.0);

  // \trace on: queries now stream profile + trace frames (the thin client
  // skips them) and count server-side.
  Result<std::string> mode = client.Command("\\trace on");
  ASSERT_TRUE(mode.ok());
  EXPECT_EQ(MustParse(*mode).Find("type")->str, "trace_mode");
  EXPECT_TRUE(MustParse(*mode).Find("on")->boolean);
  Result<QueryOutcome> traced = client.RunQuery(PaperQueryText());
  ASSERT_TRUE(traced.ok()) << traced.status().message();
  EXPECT_TRUE(traced->ok) << traced->error;

  ASSERT_TRUE(client.Command("\\trace off").ok());
  Result<QueryOutcome> plain = client.RunQuery(PaperQueryText());
  ASSERT_TRUE(plain.ok());
  EXPECT_TRUE(plain->ok);

  client.Close();
  server.Stop();
  ServerStats stats = server.stats();
  EXPECT_EQ(stats.queries, 3u);
  EXPECT_EQ(stats.metrics_requests, 1u);
  EXPECT_EQ(stats.traced_queries, 1u);
}

}  // namespace
}  // namespace tqp
