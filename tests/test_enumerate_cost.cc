// Tests for the cost-directed side of the Figure 5 enumerator: cost-bounded
// pruning counters, the best-first frontier, exploration budgets, the memo
// shard knob, and the determinism guarantees the search strategies document
// (repeated runs and warm session caches never change the admitted plan
// set). No tier-1 test exercised cost_prune_factor > 0 before this file.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "algebra/intern.h"
#include "opt/enumerate.h"
#include "opt/optimizer.h"
#include "test_util.h"
#include "workload/paper_example.h"

namespace tqp {
namespace {

EnumerationOptions Options(SearchStrategy strategy, double prune_factor = 0.0,
                           size_t max_expansions = 0) {
  EnumerationOptions opts;
  opts.max_plans = 4000;
  opts.strategy = strategy;
  opts.cost_prune_factor = prune_factor;
  opts.max_expansions = max_expansions;
  return opts;
}

Result<EnumerationResult> RunSearch(const EnumerationOptions& opts) {
  Catalog catalog = PaperCatalog();
  return EnumeratePlans(PaperInitialPlan(), catalog, PaperContract(),
                        DefaultRuleSet(), opts);
}

std::set<uint64_t> Fingerprints(const EnumerationResult& res) {
  std::set<uint64_t> out;
  for (const EnumeratedPlan& p : res.plans) out.insert(p.fingerprint);
  return out;
}

void ExpectIdenticalOutcome(const EnumerationResult& a,
                            const EnumerationResult& b) {
  ASSERT_EQ(a.plans.size(), b.plans.size());
  for (size_t i = 0; i < a.plans.size(); ++i) {
    EXPECT_EQ(a.plans[i].fingerprint, b.plans[i].fingerprint) << i;
    EXPECT_EQ(a.plans[i].parent, b.plans[i].parent) << i;
    EXPECT_EQ(a.plans[i].rule_id, b.plans[i].rule_id) << i;
  }
  EXPECT_EQ(a.matches, b.matches);
  EXPECT_EQ(a.admitted, b.admitted);
  EXPECT_EQ(a.gated_out, b.gated_out);
  EXPECT_EQ(a.memo_hits, b.memo_hits);
  EXPECT_EQ(a.cost_pruned, b.cost_pruned);
  EXPECT_EQ(a.expanded, b.expanded);
  EXPECT_EQ(a.costs, b.costs);
}

TEST(EnumerateCostTest, PruningAdmitsButNeverExpands) {
  Result<EnumerationResult> exhaustive =
      RunSearch(Options(SearchStrategy::kBreadthFirst));
  Result<EnumerationResult> pruned =
      RunSearch(Options(SearchStrategy::kBreadthFirst, /*prune_factor=*/1.5));
  ASSERT_TRUE(exhaustive.ok() && pruned.ok());

  // An exhaustive run expands everything and costs nothing.
  EXPECT_EQ(exhaustive->expanded, exhaustive->plans.size());
  EXPECT_EQ(exhaustive->cost_pruned, 0u);
  EXPECT_TRUE(exhaustive->costs.empty());

  // Pruning leaves expensive plans admitted-but-unexpanded, and every
  // admitted plan is accounted for: popped-and-expanded or popped-and-pruned
  // (the frontier fully drains when no budget cuts the search short).
  EXPECT_GT(pruned->cost_pruned, 0u);
  EXPECT_LT(pruned->plans.size(), exhaustive->plans.size());
  EXPECT_EQ(pruned->expanded + pruned->cost_pruned, pruned->plans.size());

  // Pruning only shrinks the reachable set; it invents nothing.
  std::set<uint64_t> all = Fingerprints(exhaustive.value());
  for (uint64_t fp : Fingerprints(pruned.value())) {
    EXPECT_TRUE(all.count(fp)) << "pruned run produced an unknown plan";
  }
}

TEST(EnumerateCostTest, CostsAlignWithAnIndependentCosting) {
  Result<EnumerationResult> res =
      RunSearch(Options(SearchStrategy::kBestFirst, /*prune_factor=*/2.0));
  ASSERT_TRUE(res.ok());
  ASSERT_EQ(res->costs.size(), res->plans.size());

  Catalog catalog = PaperCatalog();
  QueryContract contract = PaperContract();
  DerivationCache cache;
  PlanContext ctx(&cache, nullptr, &contract);
  for (size_t i = 0; i < res->plans.size(); ++i) {
    ASSERT_TRUE(cache.Derive(res->plans[i].plan, catalog, {}).ok());
    EXPECT_DOUBLE_EQ(res->costs[i],
                     EstimatePlanCost(res->plans[i].plan, ctx, EngineConfig{}))
        << "plan " << i;
  }
}

TEST(EnumerateCostTest, DeterministicAcrossRepeatedRuns) {
  for (SearchStrategy strategy :
       {SearchStrategy::kBreadthFirst, SearchStrategy::kBestFirst}) {
    Result<EnumerationResult> a = RunSearch(Options(strategy, 1.5));
    Result<EnumerationResult> b = RunSearch(Options(strategy, 1.5));
    ASSERT_TRUE(a.ok() && b.ok());
    ExpectIdenticalOutcome(a.value(), b.value());
  }
}

TEST(EnumerateCostTest, AdaptivePruningTightensTheBoundDeterministically) {
  // The feedback rule: each incumbent improvement multiplies the effective
  // pruning factor by adaptive_prune_decay (floored), so an adaptive run
  // prunes at least as much as the same fixed-factor run.
  for (SearchStrategy strategy :
       {SearchStrategy::kBreadthFirst, SearchStrategy::kBestFirst}) {
    EnumerationOptions fixed = Options(strategy, /*prune_factor=*/2.0);
    EnumerationOptions adaptive = fixed;
    adaptive.adaptive_pruning = true;
    adaptive.adaptive_prune_decay = 0.8;
    adaptive.adaptive_prune_floor = 1.05;

    Result<EnumerationResult> f = RunSearch(fixed);
    Result<EnumerationResult> a1 = RunSearch(adaptive);
    Result<EnumerationResult> a2 = RunSearch(adaptive);
    ASSERT_TRUE(f.ok() && a1.ok() && a2.ok());

    // Deterministic across repeated runs.
    ExpectIdenticalOutcome(a1.value(), a2.value());
    // Tightening only ever shrinks the exploration (a tighter bound prunes
    // pops earlier, so fewer plans are discovered and expanded — note
    // cost_pruned itself can shrink too: there are fewer pops to prune),
    // and it invents no plans.
    EXPECT_LE(a1->expanded, f->expanded);
    EXPECT_LE(a1->plans.size(), f->plans.size());
    EXPECT_TRUE(a1->expanded < f->expanded ||
                a1->plans.size() < f->plans.size())
        << "adaptive feedback never engaged";
    std::set<uint64_t> fixed_fps = Fingerprints(f.value());
    for (uint64_t fp : Fingerprints(a1.value())) {
      EXPECT_TRUE(fixed_fps.count(fp))
          << "adaptive run produced a plan the fixed run never saw";
    }
    // The search still terminates with work done.
    EXPECT_GT(a1->expanded, 0u);
  }
}

TEST(EnumerateCostTest, AdaptiveFloorNeverLoosensTheConfiguredFactor) {
  // A cost_prune_factor below the default floor must not be RAISED by the
  // first incumbent improvement (the floor clamps to the configured
  // factor): the adaptive run can only ever explore a subset of the fixed
  // run's plans.
  for (SearchStrategy strategy :
       {SearchStrategy::kBreadthFirst, SearchStrategy::kBestFirst}) {
    EnumerationOptions fixed = Options(strategy, /*prune_factor=*/1.02);
    EnumerationOptions adaptive = fixed;
    adaptive.adaptive_pruning = true;  // floor default 1.05 > 1.02
    Result<EnumerationResult> f = RunSearch(fixed);
    Result<EnumerationResult> a = RunSearch(adaptive);
    ASSERT_TRUE(f.ok() && a.ok());
    EXPECT_LE(a->expanded, f->expanded);
    EXPECT_LE(a->plans.size(), f->plans.size());
    std::set<uint64_t> fixed_fps = Fingerprints(f.value());
    for (uint64_t fp : Fingerprints(a.value())) {
      EXPECT_TRUE(fixed_fps.count(fp))
          << "adaptive run with a clamped floor explored a plan the fixed "
             "run never admitted";
    }
  }
}

TEST(EnumerateCostTest, AdaptivePruningOffByDefaultAndInertWithoutPruning) {
  EnumerationOptions defaults;
  EXPECT_FALSE(defaults.adaptive_pruning);
  // With cost_prune_factor == 0 the flag must change nothing.
  EnumerationOptions plain = Options(SearchStrategy::kBreadthFirst);
  EnumerationOptions flagged = plain;
  flagged.adaptive_pruning = true;
  Result<EnumerationResult> a = RunSearch(plain);
  Result<EnumerationResult> b = RunSearch(flagged);
  ASSERT_TRUE(a.ok() && b.ok());
  ExpectIdenticalOutcome(a.value(), b.value());
  EXPECT_EQ(b->cost_pruned, 0u);
}

TEST(EnumerateCostTest, AdaptivePruningIsByteIdenticalUnderTheParallelDriver) {
  for (SearchStrategy strategy :
       {SearchStrategy::kBreadthFirst, SearchStrategy::kBestFirst}) {
    EnumerationOptions serial = Options(strategy, /*prune_factor=*/1.5);
    serial.adaptive_pruning = true;
    EnumerationOptions parallel = serial;
    parallel.num_threads = 4;
    Result<EnumerationResult> s = RunSearch(serial);
    Result<EnumerationResult> p = RunSearch(parallel);
    ASSERT_TRUE(s.ok() && p.ok());
    ExpectIdenticalOutcome(s.value(), p.value());
  }
}

TEST(EnumerateCostTest, WarmSessionCachesNeverChangeTheAdmittedSet) {
  // The determinism claim the Engine relies on: re-running a cost-directed
  // search against primed session caches yields the identical outcome,
  // including the pruning counters.
  Catalog catalog = PaperCatalog();
  PlanInterner interner;
  DerivationCache derivation;
  EnumerationOptions opts = Options(SearchStrategy::kBestFirst, 1.5);
  Result<EnumerationResult> cold =
      EnumeratePlans(PaperInitialPlan(), catalog, PaperContract(),
                     DefaultRuleSet(), opts, &interner, &derivation);
  Result<EnumerationResult> warm =
      EnumeratePlans(PaperInitialPlan(), catalog, PaperContract(),
                     DefaultRuleSet(), opts, &interner, &derivation);
  ASSERT_TRUE(cold.ok() && warm.ok());
  ExpectIdenticalOutcome(cold.value(), warm.value());
}

TEST(EnumerateCostTest, BestFirstMatchesBreadthFirstWithUnlimitedBudgets) {
  // Frontier order cannot change the closure: with no pruning and no
  // expansion budget, both strategies reach exactly the same plan set and
  // the same per-plan totals (each plan contributes its matches wherever it
  // sits in the expansion order).
  Result<EnumerationResult> bf = RunSearch(Options(SearchStrategy::kBreadthFirst));
  Result<EnumerationResult> best = RunSearch(Options(SearchStrategy::kBestFirst));
  ASSERT_TRUE(bf.ok() && best.ok());
  ASSERT_FALSE(bf->truncated);
  ASSERT_FALSE(best->truncated);
  EXPECT_EQ(bf->plans.size(), best->plans.size());
  EXPECT_EQ(Fingerprints(bf.value()), Fingerprints(best.value()));
  EXPECT_EQ(bf->matches, best->matches);
  EXPECT_EQ(bf->admitted, best->admitted);
  EXPECT_EQ(bf->gated_out, best->gated_out);
  EXPECT_EQ(bf->memo_hits, best->memo_hits);
  EXPECT_EQ(best->expanded, best->plans.size());
}

TEST(EnumerateCostTest, BestFirstDominatesBreadthFirstAtEqualBudgets) {
  // The point of cost-directing the frontier: under the same expansion
  // budget, best-first reaches a cheaper (here: strictly cheaper) minimum
  // than breadth-first on the running example. A huge prune factor forces
  // costing on the breadth-first side without pruning anything. A
  // regression that stopped ordering the heap by cost would fail this.
  auto min_cost = [](const EnumerationResult& res) {
    return *std::min_element(res.costs.begin(), res.costs.end());
  };
  for (size_t budget : {10u, 20u, 40u}) {
    Result<EnumerationResult> bf =
        RunSearch(Options(SearchStrategy::kBreadthFirst, 1e9, budget));
    Result<EnumerationResult> best =
        RunSearch(Options(SearchStrategy::kBestFirst, 1e9, budget));
    ASSERT_TRUE(bf.ok() && best.ok());
    EXPECT_EQ(bf->expanded, budget);
    EXPECT_EQ(best->expanded, budget);
    EXPECT_LT(min_cost(best.value()), min_cost(bf.value())) << budget;
  }
}

TEST(EnumerateCostTest, MaxExpansionsBudgetIsRespected) {
  Result<EnumerationResult> res =
      RunSearch(Options(SearchStrategy::kBestFirst, 0.0, /*max_expansions=*/25));
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(res->expanded, 25u);
  // The budget stopped the search with admitted plans still pending.
  EXPECT_TRUE(res->truncated);
  EXPECT_GT(res->plans.size(), res->expanded);

  // A budget larger than the space changes nothing.
  Result<EnumerationResult> all =
      RunSearch(Options(SearchStrategy::kBestFirst, 0.0, /*max_expansions=*/100000));
  ASSERT_TRUE(all.ok());
  EXPECT_FALSE(all->truncated);
  EXPECT_EQ(all->expanded, all->plans.size());
}

TEST(EnumerateCostTest, ShardedMemoIsByteIdentical) {
  EnumerationOptions plain = Options(SearchStrategy::kBreadthFirst, 1.5);
  EnumerationOptions sharded = plain;
  sharded.shard_memo_by_root_kind = true;
  Result<EnumerationResult> a = RunSearch(plain);
  Result<EnumerationResult> b = RunSearch(sharded);
  ASSERT_TRUE(a.ok() && b.ok());
  ExpectIdenticalOutcome(a.value(), b.value());
}

TEST(EnumerateCostTest, LegacyPathRejectsBestFirst) {
  EnumerationOptions opts = Options(SearchStrategy::kBestFirst);
  opts.use_legacy_string_dedup = true;
  Result<EnumerationResult> res = RunSearch(opts);
  EXPECT_FALSE(res.ok());
}

TEST(EnumerateCostTest, OptimizeReusesEnumerationCosts) {
  // With a bound generous enough to keep the whole space, a cost-directed
  // Optimize must choose the same plan at the same cost as the exhaustive
  // one — and its costs come from the enumeration, not a re-costing loop.
  Catalog catalog = PaperCatalog();
  OptimizerOptions exhaustive;
  Result<OptimizeResult> base = Optimize(PaperInitialPlan(), catalog,
                                         PaperContract(), DefaultRuleSet(),
                                         exhaustive);
  ASSERT_TRUE(base.ok());

  OptimizerOptions directed;
  directed.enumeration.strategy = SearchStrategy::kBestFirst;
  directed.enumeration.cost_prune_factor = 16.0;
  Result<OptimizeResult> best = Optimize(PaperInitialPlan(), catalog,
                                         PaperContract(), DefaultRuleSet(),
                                         directed);
  ASSERT_TRUE(best.ok());
  EXPECT_EQ(best->best_plan->fingerprint(), base->best_plan->fingerprint());
  EXPECT_DOUBLE_EQ(best->best_cost, base->best_cost);
  EXPECT_DOUBLE_EQ(best->initial_cost, base->initial_cost);

  // A tight bound still finds the optimum on the running example (the bench
  // gates this at <= 50% of the expansions).
  OptimizerOptions tight;
  tight.enumeration.strategy = SearchStrategy::kBestFirst;
  tight.enumeration.cost_prune_factor = 1.5;
  Result<OptimizeResult> cheap = Optimize(PaperInitialPlan(), catalog,
                                          PaperContract(), DefaultRuleSet(),
                                          tight);
  ASSERT_TRUE(cheap.ok());
  EXPECT_DOUBLE_EQ(cheap->best_cost, base->best_cost);
  EXPECT_LT(cheap->plans_considered, base->plans_considered);
}

}  // namespace
}  // namespace tqp
