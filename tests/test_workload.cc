// Tests for the synthetic workload generators.
#include <gtest/gtest.h>

#include "workload/generator.h"
#include "workload/paper_example.h"

namespace tqp {
namespace {

TEST(GeneratorTest, DeterministicBySeed) {
  RelationGenParams p;
  p.cardinality = 100;
  p.seed = 7;
  Relation a = GenerateRelation(p);
  Relation b = GenerateRelation(p);
  ASSERT_EQ(a.size(), b.size());
  EXPECT_EQ(a.tuples(), b.tuples());
  p.seed = 8;
  Relation c = GenerateRelation(p);
  EXPECT_NE(a.tuples(), c.tuples());
}

TEST(GeneratorTest, FractionsDriveDataShape) {
  RelationGenParams clean;
  clean.cardinality = 200;
  clean.duplicate_fraction = 0.0;
  clean.adjacency_fraction = 0.0;
  clean.overlap_fraction = 0.0;
  clean.num_names = 5000;  // effectively unique names
  clean.num_categories = 50;
  Relation r = GenerateRelation(clean);
  EXPECT_FALSE(r.HasDuplicates());

  RelationGenParams dup = clean;
  dup.duplicate_fraction = 0.9;
  EXPECT_TRUE(GenerateRelation(dup).HasDuplicates());

  RelationGenParams overlap = clean;
  overlap.overlap_fraction = 0.9;
  EXPECT_TRUE(GenerateRelation(overlap).HasSnapshotDuplicates());

  RelationGenParams adjacent = clean;
  adjacent.adjacency_fraction = 0.9;
  EXPECT_FALSE(GenerateRelation(adjacent).IsCoalesced());
}

TEST(GeneratorTest, ValidPeriods) {
  RelationGenParams p;
  p.cardinality = 300;
  p.adjacency_fraction = 0.3;
  p.overlap_fraction = 0.3;
  Relation r = GenerateRelation(p);
  for (const Tuple& t : r.tuples()) {
    EXPECT_TRUE(TuplePeriod(t, r.schema()).Valid());
  }
}

TEST(GeneratorTest, ConventionalMode) {
  RelationGenParams p;
  p.temporal = false;
  p.cardinality = 50;
  Relation r = GenerateRelation(p);
  EXPECT_FALSE(r.schema().IsTemporal());
  EXPECT_EQ(r.size(), 50u + 0u /* plus duplicates: fraction 0 */);
}

TEST(ScaledExampleTest, ShapesMatchThePaperStructure) {
  Relation emp = ScaledEmployee(50);
  Relation prj = ScaledProject(50);
  EXPECT_EQ(emp.size(), 300u);  // 6 spells per person
  EXPECT_EQ(prj.size(), 400u);  // 8 spells per person
  EXPECT_TRUE(emp.schema().IsTemporal());
  // The generator must produce the phenomena the example query exercises:
  // overlapping spells (snapshot duplicates) and adjacent spells.
  EXPECT_TRUE(emp.HasSnapshotDuplicates());
  EXPECT_FALSE(emp.IsCoalesced());
}

TEST(ScaledExampleTest, ScalesLinearly) {
  EXPECT_EQ(ScaledEmployee(10).size(), 60u);
  EXPECT_EQ(ScaledEmployee(100).size(), 600u);
}

}  // namespace
}  // namespace tqp
