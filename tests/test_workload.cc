// Tests for the synthetic workload generators.
#include <gtest/gtest.h>

#include <map>
#include <string>

#include "workload/generator.h"
#include "workload/paper_example.h"

namespace tqp {
namespace {

TEST(GeneratorTest, DeterministicBySeed) {
  RelationGenParams p;
  p.cardinality = 100;
  p.seed = 7;
  Relation a = GenerateRelation(p);
  Relation b = GenerateRelation(p);
  ASSERT_EQ(a.size(), b.size());
  EXPECT_EQ(a.tuples(), b.tuples());
  p.seed = 8;
  Relation c = GenerateRelation(p);
  EXPECT_NE(a.tuples(), c.tuples());
}

TEST(GeneratorTest, FractionsDriveDataShape) {
  RelationGenParams clean;
  clean.cardinality = 200;
  clean.duplicate_fraction = 0.0;
  clean.adjacency_fraction = 0.0;
  clean.overlap_fraction = 0.0;
  clean.num_names = 5000;  // effectively unique names
  clean.num_categories = 50;
  Relation r = GenerateRelation(clean);
  EXPECT_FALSE(r.HasDuplicates());

  RelationGenParams dup = clean;
  dup.duplicate_fraction = 0.9;
  EXPECT_TRUE(GenerateRelation(dup).HasDuplicates());

  RelationGenParams overlap = clean;
  overlap.overlap_fraction = 0.9;
  EXPECT_TRUE(GenerateRelation(overlap).HasSnapshotDuplicates());

  RelationGenParams adjacent = clean;
  adjacent.adjacency_fraction = 0.9;
  EXPECT_FALSE(GenerateRelation(adjacent).IsCoalesced());
}

TEST(GeneratorTest, ValidPeriods) {
  RelationGenParams p;
  p.cardinality = 300;
  p.adjacency_fraction = 0.3;
  p.overlap_fraction = 0.3;
  Relation r = GenerateRelation(p);
  for (const Tuple& t : r.tuples()) {
    EXPECT_TRUE(TuplePeriod(t, r.schema()).Valid());
  }
}

TEST(GeneratorTest, ZipfSkewConcentratesValues) {
  RelationGenParams p;
  p.cardinality = 2000;
  p.num_names = 100;
  p.num_values = 100;
  p.seed = 5;
  Relation uniform = GenerateRelation(p);
  p.value_zipf = 1.2;
  Relation skewed = GenerateRelation(p);
  ASSERT_EQ(uniform.size(), skewed.size());
  auto top_name_count = [](const Relation& r) {
    std::map<std::string, size_t> counts;
    for (const Tuple& t : r.tuples()) counts[t.at(0).ToString()]++;
    size_t top = 0;
    for (const auto& [name, c] : counts) top = std::max(top, c);
    return top;
  };
  // Under s=1.2 the heaviest of 100 names carries far more than the ~1%
  // uniform share.
  EXPECT_GT(top_name_count(skewed), 2 * top_name_count(uniform));
  // The knob is deterministic too.
  EXPECT_EQ(skewed.tuples(), GenerateRelation(p).tuples());
}

TEST(GeneratorTest, OverlapBurstEmitsChainedSnapshotDuplicates) {
  RelationGenParams p;
  p.cardinality = 200;
  p.num_names = 5000;  // effectively unique names
  p.overlap_fraction = 0.5;
  p.seed = 9;
  Relation single = GenerateRelation(p);
  p.overlap_burst = 4;
  Relation burst = GenerateRelation(p);
  EXPECT_TRUE(burst.HasSnapshotDuplicates());
  // Each overlap event now emits 4 copies instead of 1.
  EXPECT_GT(burst.size(), single.size() + 100);
  for (const Tuple& t : burst.tuples()) {
    EXPECT_TRUE(TuplePeriod(t, burst.schema()).Valid());
  }
}

TEST(GeneratorTest, DefaultKnobsPreserveLegacySequence) {
  // value_zipf = 0 / overlap_burst = 1 must reproduce the pre-knob RNG
  // draw sequence exactly; lock a few rows of seed 7 as a golden sample.
  RelationGenParams p;
  p.cardinality = 10;
  p.duplicate_fraction = 0.25;
  p.adjacency_fraction = 0.3;
  p.overlap_fraction = 0.3;
  p.seed = 7;
  Relation a = GenerateRelation(p);
  ASSERT_EQ(a.size(), 18u);
  EXPECT_EQ(a.tuple(0).ToString(), "(n27, 4, 743, 322, 323)");
  EXPECT_EQ(a.tuple(1).ToString(), "(n27, 4, 743, 323, 330)");
  EXPECT_EQ(a.tuple(2).ToString(), "(n27, 4, 743, 322, 330)");
  EXPECT_EQ(a.tuple(3).ToString(), "(n17, 5, 762, 375, 418)");
  EXPECT_EQ(a.tuple(4).ToString(), "(n2, 1, 27, 522, 562)");
}

TEST(GeneratorTest, ConventionalMode) {
  RelationGenParams p;
  p.temporal = false;
  p.cardinality = 50;
  Relation r = GenerateRelation(p);
  EXPECT_FALSE(r.schema().IsTemporal());
  EXPECT_EQ(r.size(), 50u + 0u /* plus duplicates: fraction 0 */);
}

TEST(ScaledExampleTest, ShapesMatchThePaperStructure) {
  Relation emp = ScaledEmployee(50);
  Relation prj = ScaledProject(50);
  EXPECT_EQ(emp.size(), 300u);  // 6 spells per person
  EXPECT_EQ(prj.size(), 400u);  // 8 spells per person
  EXPECT_TRUE(emp.schema().IsTemporal());
  // The generator must produce the phenomena the example query exercises:
  // overlapping spells (snapshot duplicates) and adjacent spells.
  EXPECT_TRUE(emp.HasSnapshotDuplicates());
  EXPECT_FALSE(emp.IsCoalesced());
}

TEST(ScaledExampleTest, ScalesLinearly) {
  EXPECT_EQ(ScaledEmployee(10).size(), 60u);
  EXPECT_EQ(ScaledEmployee(100).size(), 600u);
}

}  // namespace
}  // namespace tqp
