// Backend-layer suite: the stratum⇄DBMS split of Section 2.1/4.5 made
// pluggable.
//
// Contracts under test:
//  * the deterministic DBMS-order scramble moved into SimulatedBackend is
//    byte-identical to the historical in-evaluator implementation;
//  * SimulatedBackend::Calibrate reproduces the constant cost model exactly
//    (calibration never changes simulated costs), while synthetic slow/fast
//    profiles move DBMS-site costs the way the optimizer will see them;
//  * SQL pushdown parity: with SqliteBackend active, every pushable
//    conventional subplan under a transferS cut returns a result
//    LIST-IDENTICAL to the reference evaluator's — across scramble modes,
//    both executors, and vexec thread counts — and ExecStats records the
//    pushdowns;
//  * anything the serializer refuses (or that fails at runtime) falls back
//    to in-engine evaluation with identical results;
//  * Engine-level selection (EngineOptions::backend), stats surfacing, and
//    plan-cache snapshot staleness on backend/calibration mismatch;
//  * file-backed SQLite mirrors are reused across "restarts" (mirror_loads
//    stays 0 on reopen).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "api/engine.h"
#include "backend/backend.h"
#include "backend/simulated_backend.h"
#include "backend/sqlite_backend.h"
#include "exec/cost_model.h"
#include "exec/evaluator.h"
#include "service/plan_store.h"
#include "test_util.h"
#include "vexec/vexec.h"
#include "workload/generator.h"

namespace tqp {
namespace {

// ---- Helpers (same idioms as test_vexec.cc) -------------------------------

void ExpectListIdentical(const Relation& ref, const Relation& got,
                         const std::string& label) {
  ASSERT_EQ(ref.schema().ToString(), got.schema().ToString()) << label;
  ASSERT_EQ(ref.size(), got.size()) << label;
  for (size_t i = 0; i < ref.size(); ++i) {
    ASSERT_EQ(ref.tuple(i), got.tuple(i))
        << label << " row " << i << ": " << ref.tuple(i).ToString() << " vs "
        << got.tuple(i).ToString();
    ASSERT_EQ(ref.tuple(i).ToString(), got.tuple(i).ToString())
        << label << " row " << i;
  }
  EXPECT_EQ(SortSpecToString(ref.order()), SortSpecToString(got.order()))
      << label;
}

/// Row-level identity only (no order annotation): ExecuteSubplan returns raw
/// backend rows whose annotation the stratum re-derives at the cut.
void ExpectSameRows(const Relation& ref, const Relation& got,
                    const std::string& label) {
  ASSERT_EQ(ref.schema().ToString(), got.schema().ToString()) << label;
  ASSERT_EQ(ref.size(), got.size()) << label;
  for (size_t i = 0; i < ref.size(); ++i) {
    ASSERT_EQ(ref.tuple(i).ToString(), got.tuple(i).ToString())
        << label << " row " << i;
  }
}

std::vector<std::pair<std::string, EngineConfig>> Configs() {
  EngineConfig plain;
  EngineConfig scrambled;
  scrambled.dbms_scrambles_order = true;
  EngineConfig scrambled2;
  scrambled2.dbms_scrambles_order = true;
  scrambled2.scramble_seed = 0xabcdef12;
  return {{"plain", plain},
          {"scrambled", scrambled},
          {"scrambled-seed2", scrambled2}};
}

Relation Messy(uint64_t seed, size_t n) {
  RelationGenParams p;
  p.cardinality = n;
  p.num_names = 6;
  p.num_categories = 3;
  p.time_horizon = 80;
  p.max_period_length = 14;
  p.duplicate_fraction = 0.25;
  p.adjacency_fraction = 0.3;
  p.overlap_fraction = 0.3;
  p.seed = seed;
  return GenerateRelation(p);
}

Relation MessyConventional(uint64_t seed, size_t n) {
  RelationGenParams p;
  p.cardinality = n;
  p.num_names = 5;
  p.num_categories = 3;
  p.duplicate_fraction = 0.35;
  p.temporal = false;
  p.seed = seed;
  return GenerateRelation(p);
}

Relation WithNulls() {
  Schema s;
  s.Add(Attribute{"Name", ValueType::kString});
  s.Add(Attribute{"Cat", ValueType::kInt});
  s.Add(Attribute{"Val", ValueType::kInt});
  Relation r(s);
  auto add = [&](Value name, Value cat, Value val) {
    Tuple t;
    t.push_back(std::move(name));
    t.push_back(std::move(cat));
    t.push_back(std::move(val));
    r.Append(std::move(t));
  };
  add(Value::String("a"), Value::Int(1), Value::Int(10));
  add(Value::Null(), Value::Int(1), Value::Int(20));
  add(Value::String("b"), Value::Null(), Value::Null());
  add(Value::String("a"), Value::Int(1), Value::Null());
  add(Value::Null(), Value::Int(1), Value::Int(20));
  add(Value::String("b"), Value::Int(2), Value::Int(30));
  return r;
}

Catalog MakeCatalog(uint64_t seed) {
  Catalog catalog;
  TQP_CHECK(
      catalog.RegisterWithInferredFlags("R", Messy(seed, 40), Site::kDbms)
          .ok());
  TQP_CHECK(catalog
                .RegisterWithInferredFlags(
                    "C", MessyConventional(seed + 7, 30), Site::kDbms)
                .ok());
  TQP_CHECK(catalog
                .RegisterWithInferredFlags(
                    "D", MessyConventional(seed + 13, 12), Site::kDbms)
                .ok());
  TQP_CHECK(
      catalog.RegisterWithInferredFlags("N", WithNulls(), Site::kDbms).ok());
  return catalog;
}

/// Conventional subplans (over C, D, N) wrapped in the transferS cut the
/// backend intercepts. Everything the SQL serializer accepts must come back
/// list-identical; anything refused must fall back with identical results.
std::vector<std::pair<std::string, PlanPtr>> CutPlans() {
  auto C = [] { return PlanNode::Scan("C"); };
  auto D = [] { return PlanNode::Scan("D"); };
  auto N = [] { return PlanNode::Scan("N"); };
  ExprPtr pred = Expr::And(
      Expr::Compare(CompareOp::kLt, Expr::Attr("Cat"),
                    Expr::Const(Value::Int(2))),
      Expr::Compare(CompareOp::kGt, Expr::Attr("Val"),
                    Expr::Const(Value::Int(100))));
  ExprPtr name_eq = Expr::Compare(CompareOp::kEq, Expr::Attr("Name"),
                                  Expr::Const(Value::String("n3")));
  std::vector<ProjItem> proj = {
      ProjItem::Pass("Name"),
      ProjItem{Expr::Arith(ArithOp::kMul, Expr::Attr("Val"),
                           Expr::Const(Value::Int(2))),
               "V2"},
  };
  std::vector<AggSpec> aggs = {
      AggSpec{AggFunc::kCount, "", "n"},
      AggSpec{AggFunc::kSum, "Val", "s"},
      AggSpec{AggFunc::kMin, "Val", "lo"},
      AggSpec{AggFunc::kMax, "Val", "hi"},
  };
  SortSpec by_name_val = {{"Name", true}, {"Val", false}};

  std::vector<std::pair<std::string, PlanPtr>> plans;
  auto cut = [&](const std::string& name, PlanPtr sub) {
    plans.emplace_back(name, PlanNode::TransferS(std::move(sub)));
  };
  cut("scan", C());
  cut("select", PlanNode::Select(C(), pred));
  cut("select-nulls", PlanNode::Select(N(), pred));
  cut("project-arith", PlanNode::Project(C(), proj));
  cut("union-all", PlanNode::UnionAll(C(), D()));
  cut("union-max", PlanNode::Union(C(), D()));
  cut("difference", PlanNode::Difference(C(), D()));
  cut("product", PlanNode::Product(C(), D()));
  // σ over × with disjoint column names (D renamed): exercises the fused
  // join translation with a predicate touching both sides.
  std::vector<ProjItem> d_renamed = {ProjItem::Rename("Name", "DName"),
                                     ProjItem::Rename("Cat", "DCat"),
                                     ProjItem::Rename("Val", "DVal")};
  ExprPtr join_pred = Expr::And(
      Expr::Compare(CompareOp::kLt, Expr::Attr("Cat"),
                    Expr::Const(Value::Int(2))),
      Expr::Compare(CompareOp::kGt, Expr::Attr("DVal"),
                    Expr::Const(Value::Int(100))));
  cut("select-product",
      PlanNode::Select(
          PlanNode::Product(C(), PlanNode::Project(D(), d_renamed)),
          join_pred));
  cut("aggregate", PlanNode::Aggregate(C(), {"Name", "Cat"}, aggs));
  cut("aggregate-nulls", PlanNode::Aggregate(N(), {"Name"}, aggs));
  cut("rdup", PlanNode::Rdup(C()));
  cut("rdup-nulls", PlanNode::Rdup(N()));
  cut("sort", PlanNode::Sort(C(), by_name_val));
  cut("sort-over-select",
      PlanNode::Sort(PlanNode::Select(C(), pred), by_name_val));
  return plans;
}

// ---- Scramble refactor regression -----------------------------------------

/// The evaluator's historical inline scramble, reproduced verbatim: the
/// refactor into SimulatedBackend must stay byte-identical to it.
Relation LegacyScrambleOrder(const Relation& in, uint64_t seed) {
  Relation out = in;
  auto mix = [&](const Tuple& t) {
    uint64_t h = t.Hash() ^ seed;
    h ^= h >> 33;
    h *= 0xff51afd7ed558ccdULL;
    h ^= h >> 33;
    return h;
  };
  std::stable_sort(out.mutable_tuples().begin(), out.mutable_tuples().end(),
                   [&](const Tuple& a, const Tuple& b) {
                     uint64_t ha = mix(a), hb = mix(b);
                     if (ha != hb) return ha < hb;
                     return a.Compare(b) < 0;
                   });
  return out;
}

TEST(BackendScrambleTest, MatchesLegacyEvaluatorScramble) {
  std::vector<std::pair<std::string, Relation>> inputs = {
      {"conventional", MessyConventional(7, 200)},
      {"temporal", Messy(3, 150)},
      {"nulls", WithNulls()},
  };
  for (uint64_t seed : {uint64_t{0x5eed}, uint64_t{0xabcdef12}}) {
    for (const auto& [name, rel] : inputs) {
      Relation expect = LegacyScrambleOrder(rel, seed);
      Relation got = rel;
      SimulatedBackend::ScrambleRelation(&got, seed);
      ExpectSameRows(expect, got,
                     name + " seed=" + std::to_string(seed));
    }
  }
}

TEST(BackendScrambleTest, PureFunctionOfMultiset) {
  // Any input permutation scrambles to the same list — the property
  // ExecuteCutPoint relies on to reproduce the reference order from a
  // backend result in arbitrary order.
  Relation rel = MessyConventional(21, 120);
  Relation expect = rel;
  SimulatedBackend::ScrambleRelation(&expect, 0x5eed);
  Relation permuted = LegacyScrambleOrder(rel, 0x1234);  // some other order
  SimulatedBackend::ScrambleRelation(&permuted, 0x5eed);
  ExpectSameRows(expect, permuted, "scramble(permutation)");
}

// ---- Calibration and the cost model ---------------------------------------

TEST(BackendCostTest, SimulatedCalibrationIsCostIdentical) {
  Catalog catalog = MakeCatalog(11);
  EngineConfig config;
  SimulatedBackend sim;
  BackendCostProfile profile = sim.Calibrate(config);
  ASSERT_TRUE(profile.calibrated);
  EXPECT_NE(profile.fingerprint, 0u);

  EngineConfig calibrated = config;
  calibrated.calibration = &profile;
  for (const auto& [name, plan] : CutPlans()) {
    Result<AnnotatedPlan> ann =
        AnnotatedPlan::Make(plan, &catalog, QueryContract::Multiset());
    ASSERT_TRUE(ann.ok()) << name;
    EXPECT_DOUBLE_EQ(EstimatePlanCost(ann.value(), config),
                     EstimatePlanCost(ann.value(), calibrated))
        << name;
  }
}

TEST(BackendCostTest, CalibratedProfileMovesDbmsCosts) {
  Catalog catalog = MakeCatalog(11);
  EngineConfig config;

  BackendCostProfile slow;
  slow.calibrated = true;
  slow.fingerprint = 1;
  slow.transfer_cost_per_tuple = config.transfer_cost_per_tuple;
  BackendCostProfile fast = slow;
  fast.fingerprint = 2;
  for (int k = 0; k < kOpKindCount; ++k) {
    slow.dbms_op_factor[k] = 64.0;
    fast.dbms_op_factor[k] = 1.0 / 16.0;
  }

  PlanPtr plan = PlanNode::TransferS(PlanNode::Select(
      PlanNode::Scan("C"),
      Expr::Compare(CompareOp::kGt, Expr::Attr("Val"),
                    Expr::Const(Value::Int(100)))));
  Result<AnnotatedPlan> ann =
      AnnotatedPlan::Make(plan, &catalog, QueryContract::Multiset());
  ASSERT_TRUE(ann.ok());

  double base = EstimatePlanCost(ann.value(), config);
  EngineConfig slow_cfg = config;
  slow_cfg.calibration = &slow;
  EngineConfig fast_cfg = config;
  fast_cfg.calibration = &fast;
  double slow_cost = EstimatePlanCost(ann.value(), slow_cfg);
  double fast_cost = EstimatePlanCost(ann.value(), fast_cfg);
  // A slow backend makes the DBMS-site subtree more expensive than the
  // constant model; a fast one makes it cheaper. This is the signal that
  // lets the optimizer move the transfer cut (bench_backend_pushdown gates
  // the resulting placement flip).
  EXPECT_GT(slow_cost, base);
  EXPECT_LT(fast_cost, base);
}

// ---- SQLite pushdown parity -----------------------------------------------

TEST(SqliteBackendTest, AvailableInCi) {
  // The CI image installs libsqlite3-dev; a silent fallback to the stub
  // would hollow out this whole suite, so availability itself is asserted.
  // Local builds without sqlite3 skip the backend tests instead.
  if (!SqliteBackend::Available()) {
    GTEST_SKIP() << "built without sqlite3";
  }
  SUCCEED();
}

TEST(SqliteBackendTest, PushdownParityAcrossExecutorsAndConfigs) {
  if (!SqliteBackend::Available()) GTEST_SKIP();
  Catalog catalog = MakeCatalog(42);
  Result<std::unique_ptr<Backend>> made = MakeBackend(BackendKind::kSqlite);
  ASSERT_TRUE(made.ok()) << made.status().ToString();
  Backend* be = made.value().get();

  int pushed_plans = 0;
  for (const auto& [cfg_name, base_cfg] : Configs()) {
    for (const auto& [plan_name, plan] : CutPlans()) {
      const std::string label = plan_name + "/" + cfg_name;
      ExecStats ref_stats;
      Result<Relation> ref = EvaluatePlan(plan, catalog, base_cfg, &ref_stats);
      ASSERT_TRUE(ref.ok()) << label << ": " << ref.status().ToString();

      EngineConfig cfg = base_cfg;
      cfg.backend = be;
      ExecStats sq_stats;
      Result<Relation> sq = EvaluatePlan(plan, catalog, cfg, &sq_stats);
      ASSERT_TRUE(sq.ok()) << label << ": " << sq.status().ToString();
      ExpectListIdentical(ref.value(), sq.value(), label + "/exec");
      EXPECT_EQ(sq_stats.backend_fallbacks, 0) << label;
      if (sq_stats.backend_pushdowns > 0) {
        ++pushed_plans;
        EXPECT_EQ(sq_stats.backend_rows,
                  static_cast<int64_t>(sq.value().size()))
            << label;
      }

      for (size_t threads : {size_t{1}, size_t{4}}) {
        VexecOptions vopts;
        vopts.batch_size = 64;
        vopts.threads = threads;
        ExecStats vec_stats;
        Result<Relation> vec =
            ExecuteVectorizedPlan(plan, catalog, cfg, &vec_stats, vopts);
        ASSERT_TRUE(vec.ok()) << label << ": " << vec.status().ToString();
        ExpectListIdentical(ref.value(), vec.value(),
                            label + "/vexec-t" + std::to_string(threads));
        EXPECT_EQ(vec_stats.backend_pushdowns, sq_stats.backend_pushdowns)
            << label;
      }
    }
  }
  // The suite is pointless if nothing actually pushed down; most of the
  // conventional cut plans must serialize.
  EXPECT_GE(pushed_plans, 10 * 3) << "pushdown coverage collapsed";
}

TEST(SqliteBackendTest, SimpleSelectActuallyPushesDown) {
  if (!SqliteBackend::Available()) GTEST_SKIP();
  Catalog catalog = MakeCatalog(42);
  Result<std::unique_ptr<Backend>> made = MakeBackend(BackendKind::kSqlite);
  ASSERT_TRUE(made.ok());
  PlanPtr plan = PlanNode::TransferS(PlanNode::Select(
      PlanNode::Scan("C"),
      Expr::Compare(CompareOp::kGt, Expr::Attr("Val"),
                    Expr::Const(Value::Int(100)))));
  EngineConfig cfg;
  cfg.backend = made.value().get();
  ExecStats stats;
  Result<Relation> got = EvaluatePlan(plan, catalog, cfg, &stats);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_EQ(stats.backend_pushdowns, 1);
  EXPECT_EQ(stats.backend_fallbacks, 0);
  EXPECT_EQ(stats.backend_rows, static_cast<int64_t>(got.value().size()));
  EXPECT_GT(got.value().size(), 0u);
}

TEST(SqliteBackendTest, ExecuteSubplanReturnsExactReferenceList) {
  if (!SqliteBackend::Available()) GTEST_SKIP();
  Catalog catalog = MakeCatalog(42);
  Result<std::unique_ptr<Backend>> made = MakeBackend(BackendKind::kSqlite);
  ASSERT_TRUE(made.ok());
  Backend* be = made.value().get();
  ASSERT_TRUE(be->SyncCatalog(catalog).ok());

  EngineConfig plain;  // reference order = plain evaluation of the subtree
  for (const auto& [name, cut] : CutPlans()) {
    const PlanPtr& sub = cut->child(0);
    Result<AnnotatedPlan> ann =
        AnnotatedPlan::Make(cut, &catalog, QueryContract::Multiset());
    ASSERT_TRUE(ann.ok()) << name;
    if (!be->CanPush(sub, ann.value())) continue;
    Result<Relation> ref = EvaluatePlan(sub, catalog, plain, nullptr);
    ASSERT_TRUE(ref.ok()) << name;
    Result<Relation> got = be->ExecuteSubplan(sub, ann.value());
    ASSERT_TRUE(got.ok()) << name << ": " << got.status().ToString();
    ExpectSameRows(ref.value(), got.value(), name);
  }
}

TEST(SqliteBackendTest, RefusedSubplanFallsBackUpfront) {
  if (!SqliteBackend::Available()) GTEST_SKIP();
  Catalog catalog = MakeCatalog(42);
  Result<std::unique_ptr<Backend>> made = MakeBackend(BackendKind::kSqlite);
  ASSERT_TRUE(made.ok());
  Backend* be = made.value().get();

  // Integer division: stratum semantics (trunc toward zero, NULL on zero
  // divisor) don't match SQLite's, so the serializer must refuse — and the
  // refusal must be invisible in results.
  std::vector<ProjItem> proj = {
      ProjItem::Pass("Name"),
      ProjItem{Expr::Arith(ArithOp::kDiv, Expr::Attr("Val"),
                           Expr::Attr("Cat")),
               "VD"},
  };
  PlanPtr plan =
      PlanNode::TransferS(PlanNode::Project(PlanNode::Scan("C"), proj));
  Result<AnnotatedPlan> ann =
      AnnotatedPlan::Make(plan, &catalog, QueryContract::Multiset());
  ASSERT_TRUE(ann.ok());
  EXPECT_FALSE(CanPushCut(*be, plan->child(0), ann.value()));

  for (const auto& [cfg_name, base_cfg] : Configs()) {
    ExecStats ref_stats, sq_stats;
    Result<Relation> ref = EvaluatePlan(plan, catalog, base_cfg, &ref_stats);
    ASSERT_TRUE(ref.ok());
    EngineConfig cfg = base_cfg;
    cfg.backend = be;
    Result<Relation> sq = EvaluatePlan(plan, catalog, cfg, &sq_stats);
    ASSERT_TRUE(sq.ok());
    ExpectListIdentical(ref.value(), sq.value(), "refused/" + cfg_name);
    EXPECT_EQ(sq_stats.backend_pushdowns, 0) << cfg_name;
    // Refused by CanPush, not attempted: no runtime fallback either.
    EXPECT_EQ(sq_stats.backend_fallbacks, 0) << cfg_name;
  }
}

TEST(SqliteBackendTest, RuntimeErrorFallsBackWithCorrectResult) {
  if (!SqliteBackend::Available()) GTEST_SKIP();
  Catalog catalog = MakeCatalog(42);
  Result<std::unique_ptr<Backend>> made = MakeBackend(BackendKind::kSqlite);
  ASSERT_TRUE(made.ok());
  Backend* be = made.value().get();
  ASSERT_TRUE(be->SyncCatalog(catalog).ok());
  // Sabotage: drop one mirror table behind the backend's back. The catalog
  // fingerprint is unchanged, so the next SyncCatalog no-ops and the SQL
  // fails at runtime — which must degrade to in-engine evaluation.
  ASSERT_TRUE(be->ExecuteSql("DROP TABLE rel_C", {}, Schema()).ok());

  PlanPtr plan = PlanNode::TransferS(PlanNode::Select(
      PlanNode::Scan("C"),
      Expr::Compare(CompareOp::kGt, Expr::Attr("Val"),
                    Expr::Const(Value::Int(100)))));
  EngineConfig ref_cfg;
  Result<Relation> ref = EvaluatePlan(plan, catalog, ref_cfg, nullptr);
  ASSERT_TRUE(ref.ok());

  EngineConfig cfg;
  cfg.backend = be;
  ExecStats stats;
  Result<Relation> got = EvaluatePlan(plan, catalog, cfg, &stats);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  ExpectListIdentical(ref.value(), got.value(), "runtime-fallback");
  EXPECT_EQ(stats.backend_pushdowns, 0);
  EXPECT_GE(stats.backend_fallbacks, 1);
}

TEST(SqliteBackendTest, FileBackedMirrorReusedAcrossRestarts) {
  if (!SqliteBackend::Available()) GTEST_SKIP();
  const std::string path = ::testing::TempDir() + "tqp_backend_mirror.db";
  std::remove(path.c_str());
  Catalog catalog = MakeCatalog(42);
  PlanPtr plan = PlanNode::TransferS(PlanNode::Select(
      PlanNode::Scan("C"),
      Expr::Compare(CompareOp::kGt, Expr::Attr("Val"),
                    Expr::Const(Value::Int(100)))));
  EngineConfig plain;
  Result<Relation> ref = EvaluatePlan(plan, catalog, plain, nullptr);
  ASSERT_TRUE(ref.ok());

  {  // first process: mirrors the catalog into the file
    Result<std::unique_ptr<SqliteBackend>> a = SqliteBackend::Open(path);
    ASSERT_TRUE(a.ok()) << a.status().ToString();
    ASSERT_TRUE(a.value()->SyncCatalog(catalog).ok());
    EXPECT_EQ(a.value()->mirror_loads(), 1);
  }
  {  // "restart": same file, same catalog — the mirror is reused, not rebuilt
    Result<std::unique_ptr<SqliteBackend>> b = SqliteBackend::Open(path);
    ASSERT_TRUE(b.ok()) << b.status().ToString();
    EngineConfig cfg;
    cfg.backend = b.value().get();
    ExecStats stats;
    Result<Relation> got = EvaluatePlan(plan, catalog, cfg, &stats);
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    ExpectListIdentical(ref.value(), got.value(), "reused-mirror");
    EXPECT_EQ(stats.backend_pushdowns, 1);
    EXPECT_EQ(b.value()->mirror_loads(), 0) << "mirror was rebuilt";
  }
  std::remove(path.c_str());
}

// ---- Engine integration ---------------------------------------------------

std::vector<std::string> EngineQueries() {
  return {
      "SELECT Name, Val FROM C WHERE Val > 10",
      "SELECT DISTINCT Name FROM C ORDER BY Name ASC",
      "SELECT Cat, COUNT(*) AS n FROM C GROUP BY Cat ORDER BY Cat",
      "SELECT Name FROM C UNION SELECT Name FROM D",
  };
}

TEST(EngineBackendTest, SqliteEngineMatchesSimulatedEngine) {
  if (!SqliteBackend::Available()) GTEST_SKIP();
  for (bool scramble : {false, true}) {
    for (ExecutorKind executor :
         {ExecutorKind::kReference, ExecutorKind::kVectorized}) {
      EngineOptions sim_opts;
      sim_opts.engine.dbms_scrambles_order = scramble;
      sim_opts.executor = executor;
      EngineOptions sq_opts = sim_opts;
      sq_opts.backend = BackendKind::kSqlite;

      Engine sim(MakeCatalog(42), sim_opts);
      Engine sq(MakeCatalog(42), sq_opts);
      ASSERT_STREQ(sim.backend()->name(), "simulated");
      ASSERT_STREQ(sq.backend()->name(), "sqlite");

      for (const std::string& q : EngineQueries()) {
        Result<QueryResult> a = sim.Query(q);
        Result<QueryResult> b = sq.Query(q);
        ASSERT_TRUE(a.ok()) << q << ": " << a.status().ToString();
        ASSERT_TRUE(b.ok()) << q << ": " << b.status().ToString();
        EXPECT_EQ(a->relation.ToTable(), b->relation.ToTable())
            << q << (scramble ? " scrambled" : " plain");
      }
      EXPECT_EQ(sim.stats().backend_name, "simulated");
      EXPECT_EQ(sim.stats().backend_pushdowns, 0u);
      EXPECT_EQ(sq.stats().backend_name, "sqlite");
      EXPECT_GE(sq.stats().backend_pushdowns, 1u)
          << "no query pushed a cut subplan down";
    }
  }
}

TEST(EngineBackendTest, UnavailableBackendFallsBackToSimulated) {
  // Asking for kSqlite must never break an Engine: without sqlite3 the
  // constructor falls back to the simulated backend.
  EngineOptions opts;
  opts.backend = BackendKind::kSqlite;
  Engine engine(MakeCatalog(42), opts);
  if (SqliteBackend::Available()) {
    EXPECT_STREQ(engine.backend()->name(), "sqlite");
  } else {
    EXPECT_STREQ(engine.backend()->name(), "simulated");
  }
  Result<QueryResult> r = engine.Query(EngineQueries()[0]);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
}

TEST(EngineBackendTest, CalibratedEngineReportsFingerprint) {
  if (!SqliteBackend::Available()) GTEST_SKIP();
  EngineOptions opts;
  opts.backend = BackendKind::kSqlite;
  opts.calibrate_backend = true;
  Engine engine(MakeCatalog(42), opts);
  ASSERT_TRUE(engine.calibration().calibrated);
  EXPECT_NE(engine.stats().calibration_fingerprint, 0u);
  // Calibration changes plan choice, never results.
  EngineOptions plain_opts;
  Engine plain(MakeCatalog(42), plain_opts);
  for (const std::string& q : EngineQueries()) {
    Result<QueryResult> a = plain.Query(q);
    Result<QueryResult> b = engine.Query(q);
    ASSERT_TRUE(a.ok() && b.ok()) << q;
    EXPECT_EQ(a->relation.ToTable(), b->relation.ToTable()) << q;
  }
}

// ---- Plan-cache snapshots -------------------------------------------------

TEST(BackendSnapshotTest, SnapshotRoundTripsBackendFields) {
  Engine engine(MakeCatalog(42));
  ASSERT_TRUE(engine.Query(EngineQueries()[0]).ok());
  PlanCacheSnapshot snap = engine.ExportPlanCache();
  EXPECT_EQ(snap.backend_kind, "simulated");
  ASSERT_GE(snap.entries.size(), 1u);

  Result<PlanCacheSnapshot> back =
      DeserializeSnapshot(SerializeSnapshot(snap));
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->backend_kind, snap.backend_kind);
  EXPECT_EQ(back->calibration_fingerprint, snap.calibration_fingerprint);
  EXPECT_EQ(back->catalog_version, snap.catalog_version);
  EXPECT_EQ(back->entries.size(), snap.entries.size());

  Engine other(MakeCatalog(42));
  EXPECT_EQ(other.ImportPlanCache(back.value()), snap.entries.size());
}

TEST(BackendSnapshotTest, ImportRejectsBackendMismatchWholesale) {
  if (!SqliteBackend::Available()) GTEST_SKIP();
  EngineOptions sq_opts;
  sq_opts.backend = BackendKind::kSqlite;
  Engine sq(MakeCatalog(42), sq_opts);
  ASSERT_TRUE(sq.Query(EngineQueries()[0]).ok());
  PlanCacheSnapshot snap = sq.ExportPlanCache();
  EXPECT_EQ(snap.backend_kind, "sqlite");
  ASSERT_GE(snap.entries.size(), 1u);

  // Plans chosen for the sqlite backend are stale for a simulated engine.
  Engine sim(MakeCatalog(42));
  EXPECT_EQ(sim.ImportPlanCache(snap), 0u);
  EXPECT_EQ(sim.stats().plan_cache_imports, 0u);

  // Same backend: accepted in full.
  Engine sq2(MakeCatalog(42), sq_opts);
  EXPECT_EQ(sq2.ImportPlanCache(snap), snap.entries.size());
}

TEST(BackendSnapshotTest, ImportRejectsCalibrationMismatchWholesale) {
  if (!SqliteBackend::Available()) GTEST_SKIP();
  EngineOptions uncal;
  uncal.backend = BackendKind::kSqlite;
  EngineOptions cal = uncal;
  cal.calibrate_backend = true;

  Engine a(MakeCatalog(42), uncal);
  ASSERT_TRUE(a.Query(EngineQueries()[0]).ok());
  PlanCacheSnapshot snap = a.ExportPlanCache();
  EXPECT_EQ(snap.calibration_fingerprint, 0u);
  ASSERT_GE(snap.entries.size(), 1u);

  // Uncalibrated plans into a calibrated engine: stale, rejected wholesale.
  Engine b(MakeCatalog(42), cal);
  EXPECT_EQ(b.ImportPlanCache(snap), 0u);

  // And the reverse direction.
  ASSERT_TRUE(b.Query(EngineQueries()[0]).ok());
  PlanCacheSnapshot cal_snap = b.ExportPlanCache();
  EXPECT_NE(cal_snap.calibration_fingerprint, 0u);
  Engine c(MakeCatalog(42), uncal);
  EXPECT_EQ(c.ImportPlanCache(cal_snap), 0u);
}

}  // namespace
}  // namespace tqp
