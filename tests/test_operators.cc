// Tests for the conventional operators' list semantics (Table 1).
#include <gtest/gtest.h>

#include "core/equivalence.h"
#include "exec/evaluator.h"
#include "test_util.h"

namespace tqp {
namespace {

using testing_util::ConventionalRel;
using testing_util::TemporalRel;

TEST(SelectTest, FiltersPreservingOrderAndDuplicates) {
  Relation r = ConventionalRel({{"a", 1}, {"b", 2}, {"a", 1}, {"c", 3}});
  ExprPtr p = Expr::Compare(CompareOp::kEq, Expr::Attr("Name"),
                            Expr::Const(Value::String("a")));
  Relation out = EvalSelect(r, p);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out.tuple(0).at(1).AsInt(), 1);
  EXPECT_EQ(out.tuple(1), out.tuple(0));
}

TEST(SelectTest, NullPredicateRejects) {
  Schema s;
  s.Add(Attribute{"X", ValueType::kInt});
  Relation r(s);
  Tuple t;
  t.push_back(Value::Null());
  r.Append(std::move(t));
  ExprPtr p = Expr::Compare(CompareOp::kEq, Expr::Attr("X"),
                            Expr::Const(Value::Int(1)));
  EXPECT_EQ(EvalSelect(r, p).size(), 0u);
}

TEST(ProjectTest, ComputesExpressionsPerTuple) {
  Relation r = ConventionalRel({{"a", 1}, {"b", 2}});
  Schema out_schema;
  out_schema.Add(Attribute{"Name", ValueType::kString});
  out_schema.Add(Attribute{"Doubled", ValueType::kInt});
  std::vector<ProjItem> items = {
      ProjItem::Pass("Name"),
      ProjItem{Expr::Arith(ArithOp::kMul, Expr::Attr("Val"),
                           Expr::Const(Value::Int(2))),
               "Doubled"},
  };
  Result<Relation> out = EvalProject(r, items, out_schema);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->tuple(0).at(1).AsInt(), 2);
  EXPECT_EQ(out->tuple(1).at(1).AsInt(), 4);
}

TEST(ProjectTest, GeneratesDuplicates) {
  Relation r = ConventionalRel({{"a", 1}, {"a", 2}});
  Schema out_schema;
  out_schema.Add(Attribute{"Name", ValueType::kString});
  Result<Relation> out = EvalProject(r, {ProjItem::Pass("Name")}, out_schema);
  ASSERT_TRUE(out.ok());
  EXPECT_TRUE(out->HasDuplicates());
}

TEST(UnionAllTest, Concatenates) {
  Relation a = ConventionalRel({{"a", 1}});
  Relation b = ConventionalRel({{"b", 2}, {"a", 1}});
  Relation out = EvalUnionAll(a, b, a.schema());
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out.tuple(0).at(0).AsString(), "a");
  EXPECT_EQ(out.tuple(1).at(0).AsString(), "b");
}

TEST(UnionTest, MaxMultiplicitySemantics) {
  // [1] Albert: a tuple occurs max(count1, count2) times.
  Relation a = ConventionalRel({{"x", 1}, {"x", 1}, {"y", 2}});
  Relation b = ConventionalRel({{"x", 1}, {"y", 2}, {"y", 2}, {"z", 3}});
  Relation out = EvalUnion(a, b, a.schema());
  ASSERT_EQ(out.size(), 5u);  // x:2, y:2, z:1
  // All of a first, then the exceeding occurrences of b in b's order.
  EXPECT_EQ(out.tuple(0).at(0).AsString(), "x");
  EXPECT_EQ(out.tuple(3).at(0).AsString(), "y");
  EXPECT_EQ(out.tuple(4).at(0).AsString(), "z");
}

TEST(UnionTest, DupFreeInputsYieldDupFreeResult) {
  // Table 1: ∪ retains duplicates (does not generate new ones).
  Relation a = ConventionalRel({{"x", 1}, {"y", 2}});
  Relation b = ConventionalRel({{"y", 2}, {"z", 3}});
  Relation out = EvalUnion(a, b, a.schema());
  EXPECT_FALSE(out.HasDuplicates());
  ASSERT_EQ(out.size(), 3u);
}

TEST(DifferenceTest, RemovesFirstMatchingOccurrences) {
  Relation a = ConventionalRel({{"x", 1}, {"y", 2}, {"x", 1}, {"x", 1}});
  Relation b = ConventionalRel({{"x", 1}, {"x", 1}});
  Relation out = EvalDifference(a, b);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out.tuple(0).at(0).AsString(), "y");
  EXPECT_EQ(out.tuple(1).at(0).AsString(), "x");  // the third x survives
}

TEST(DifferenceTest, CardinalityBounds) {
  // Table 1: n(r1) - n(r2) <= n(result) <= n(r1).
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    Relation a = testing_util::RandomConventional(seed);
    Relation b = testing_util::RandomConventional(seed + 100);
    Relation out = EvalDifference(a, b);
    EXPECT_LE(out.size(), a.size());
    EXPECT_GE(static_cast<int64_t>(out.size()),
              static_cast<int64_t>(a.size()) - static_cast<int64_t>(b.size()));
  }
}

TEST(ProductTest, LeftMajorOrder) {
  Relation a = ConventionalRel({{"a", 1}, {"b", 2}});
  Schema bs;
  bs.Add(Attribute{"Other", ValueType::kInt});
  Relation b(bs);
  for (int i = 0; i < 3; ++i) {
    Tuple t;
    t.push_back(Value::Int(i));
    b.Append(std::move(t));
  }
  Schema out_schema;
  out_schema.Add(Attribute{"Name", ValueType::kString});
  out_schema.Add(Attribute{"Val", ValueType::kInt});
  out_schema.Add(Attribute{"Other", ValueType::kInt});
  Relation out = EvalProduct(a, b, out_schema);
  ASSERT_EQ(out.size(), 6u);
  EXPECT_EQ(out.tuple(0).at(0).AsString(), "a");
  EXPECT_EQ(out.tuple(2).at(0).AsString(), "a");
  EXPECT_EQ(out.tuple(3).at(0).AsString(), "b");
  EXPECT_EQ(out.tuple(1).at(2).AsInt(), 1);  // right cycles fastest
}

TEST(RdupTest, KeepsFirstOccurrences) {
  Relation r = ConventionalRel({{"b", 2}, {"a", 1}, {"b", 2}, {"c", 3}});
  Relation out = EvalRdup(r, r.schema());
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out.tuple(0).at(0).AsString(), "b");
  EXPECT_EQ(out.tuple(1).at(0).AsString(), "a");
  EXPECT_EQ(out.tuple(2).at(0).AsString(), "c");
}

TEST(SortTest, StableOnTies) {
  Relation r = ConventionalRel({{"b", 1}, {"a", 2}, {"b", 0}, {"a", 1}});
  Relation out = EvalSort(r, {{"Name", true}});
  ASSERT_EQ(out.size(), 4u);
  // Ties keep input order: a:2 then a:1; b:1 then b:0.
  EXPECT_EQ(out.tuple(0).at(1).AsInt(), 2);
  EXPECT_EQ(out.tuple(1).at(1).AsInt(), 1);
  EXPECT_EQ(out.tuple(2).at(1).AsInt(), 1);
  EXPECT_EQ(out.tuple(3).at(1).AsInt(), 0);
}

TEST(SortTest, DescendingKeys) {
  Relation r = ConventionalRel({{"a", 1}, {"b", 2}, {"c", 0}});
  Relation out = EvalSort(r, {{"Val", false}});
  EXPECT_EQ(out.tuple(0).at(1).AsInt(), 2);
  EXPECT_EQ(out.tuple(2).at(1).AsInt(), 0);
}

TEST(AggregateTest, GroupsInFirstOccurrenceOrder) {
  Relation r =
      ConventionalRel({{"b", 1}, {"a", 2}, {"b", 3}, {"a", 4}, {"c", 5}});
  Schema out_schema;
  out_schema.Add(Attribute{"Name", ValueType::kString});
  out_schema.Add(Attribute{"total", ValueType::kInt});
  out_schema.Add(Attribute{"cnt", ValueType::kInt});
  std::vector<AggSpec> aggs = {
      AggSpec{AggFunc::kSum, "Val", "total"},
      AggSpec{AggFunc::kCount, "", "cnt"},
  };
  Result<Relation> out = EvalAggregate(r, {"Name"}, aggs, out_schema);
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->size(), 3u);
  EXPECT_EQ(out->tuple(0).at(0).AsString(), "b");
  EXPECT_EQ(out->tuple(0).at(1).AsInt(), 4);
  EXPECT_EQ(out->tuple(0).at(2).AsInt(), 2);
  EXPECT_EQ(out->tuple(1).at(0).AsString(), "a");
  EXPECT_EQ(out->tuple(2).at(0).AsString(), "c");
}

TEST(AggregateTest, MinMaxAvgAndEmptyGroups) {
  Relation r = ConventionalRel({{"a", 3}, {"a", 7}});
  Schema out_schema;
  out_schema.Add(Attribute{"mn", ValueType::kInt});
  out_schema.Add(Attribute{"mx", ValueType::kInt});
  out_schema.Add(Attribute{"av", ValueType::kDouble});
  std::vector<AggSpec> aggs = {
      AggSpec{AggFunc::kMin, "Val", "mn"},
      AggSpec{AggFunc::kMax, "Val", "mx"},
      AggSpec{AggFunc::kAvg, "Val", "av"},
  };
  Result<Relation> out = EvalAggregate(r, {}, aggs, out_schema);
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->size(), 1u);
  EXPECT_EQ(out->tuple(0).at(0).AsInt(), 3);
  EXPECT_EQ(out->tuple(0).at(1).AsInt(), 7);
  EXPECT_DOUBLE_EQ(out->tuple(0).at(2).AsDouble(), 5.0);
}

// Property: ∪ = r1 ⊎ (r2 \ r1) as lists — the derived-operation identity the
// paper uses to classify ∪ as an idiom over ⊎ and \.
TEST(UnionTest, UnionIsUnionAllOfDifference) {
  for (uint64_t seed = 1; seed <= 15; ++seed) {
    Relation a = testing_util::RandomConventional(seed);
    Relation b = testing_util::RandomConventional(seed + 50);
    Relation direct = EvalUnion(a, b, a.schema());
    Relation derived = EvalUnionAll(a, EvalDifference(b, a), a.schema());
    EXPECT_TRUE(EquivalentAsLists(direct, derived)) << "seed " << seed;
  }
}

}  // namespace
}  // namespace tqp
