// Tests for the derived operations (idioms, Section 2.4): they must expand
// into the fundamental algebra and compute the expected results, and the
// intersect idiom must satisfy its set-algebra identity.
#include <gtest/gtest.h>

#include "algebra/idioms.h"
#include "core/equivalence.h"
#include "exec/evaluator.h"
#include "test_util.h"
#include "workload/paper_example.h"

namespace tqp {
namespace {

using P = PlanNode;

TEST(IdiomTest, JoinIsSelectOverProduct) {
  Catalog catalog = PaperCatalog();
  Result<PlanPtr> join = NaturalishJoin(P::Scan("EMPLOYEE"),
                                        P::Scan("PROJECT"), {"EmpName"},
                                        catalog, /*temporal=*/false);
  ASSERT_TRUE(join.ok()) << join.status().message();
  EXPECT_EQ((*join)->kind(), OpKind::kSelect);
  EXPECT_EQ((*join)->child(0)->kind(), OpKind::kProduct);

  Result<Relation> out = EvaluatePlan(*join, catalog);
  ASSERT_TRUE(out.ok());
  // 5 employee rows x 8 project rows, same person: John 2x4, Anna 3x4.
  EXPECT_EQ(out->size(), 2u * 4u + 3u * 4u);
}

TEST(IdiomTest, TemporalJoinCarriesTheOverlap) {
  Catalog catalog = PaperCatalog();
  Result<PlanPtr> join =
      NaturalishJoin(P::Scan("EMPLOYEE"), P::Scan("PROJECT"), {"EmpName"},
                     catalog, /*temporal=*/true);
  ASSERT_TRUE(join.ok());
  Result<Relation> out = EvaluatePlan(*join, catalog);
  ASSERT_TRUE(out.ok());
  // Every result tuple's period is contained in both argument periods.
  const Schema& s = out->schema();
  for (const Tuple& t : out->tuples()) {
    Period overlap = TuplePeriod(t, s);
    Period l(t.at(static_cast<size_t>(s.IndexOf("1.T1"))).AsTime(),
             t.at(static_cast<size_t>(s.IndexOf("1.T2"))).AsTime());
    Period r(t.at(static_cast<size_t>(s.IndexOf("2.T1"))).AsTime(),
             t.at(static_cast<size_t>(s.IndexOf("2.T2"))).AsTime());
    EXPECT_TRUE(l.Contains(overlap));
    EXPECT_TRUE(r.Contains(overlap));
  }
  // John works while on a project during [2,3),[5,6),[7,8),[9,10).
  Relation snap = out->Snapshot(5);
  bool john = false;
  for (const Tuple& t : snap.tuples()) {
    if (t.at(0).AsString() == "John") john = true;
  }
  EXPECT_TRUE(john);
}

TEST(IdiomTest, SqlUnionDeduplicates) {
  Catalog catalog;
  TQP_CHECK(catalog
                .RegisterWithInferredFlags(
                    "A", testing_util::ConventionalRel({{"x", 1}, {"y", 2}}),
                    Site::kStratum)
                .ok());
  TQP_CHECK(catalog
                .RegisterWithInferredFlags(
                    "B", testing_util::ConventionalRel({{"y", 2}, {"z", 3}}),
                    Site::kStratum)
                .ok());
  PlanPtr u = SqlUnion(P::Scan("A"), P::Scan("B"), /*temporal=*/false);
  Result<Relation> out = EvaluatePlan(u, catalog);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->size(), 3u);
  EXPECT_FALSE(out->HasDuplicates());
}

TEST(IdiomTest, SqlIntersectSetIdentity) {
  // l ∩ r = rdup(l) \ (rdup(l) \ r): validated against a direct computation
  // on randomized inputs.
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    Catalog catalog;
    Relation a = testing_util::RandomConventional(seed);
    Relation b = testing_util::RandomConventional(seed + 40);
    TQP_CHECK(catalog.RegisterWithInferredFlags("A", a, Site::kStratum).ok());
    TQP_CHECK(catalog.RegisterWithInferredFlags("B", b, Site::kStratum).ok());
    PlanPtr plan = SqlIntersect(P::Scan("A"), P::Scan("B"), false);
    Result<Relation> out = EvaluatePlan(plan, catalog);
    ASSERT_TRUE(out.ok());

    // Direct: distinct tuples of a that occur in b.
    Relation da = EvalRdup(a, a.schema());
    Relation expected(a.schema());
    for (const Tuple& t : da.tuples()) {
      for (const Tuple& u : b.tuples()) {
        if (t == u) {
          expected.Append(t);
          break;
        }
      }
    }
    EXPECT_TRUE(EquivalentAsMultisets(out.value(), expected)) << seed;
    EXPECT_FALSE(out->HasDuplicates());
  }
}

TEST(IdiomTest, TemporalIntersectReducesToSnapshotIntersect) {
  Catalog catalog = PaperCatalog();
  std::vector<ProjItem> proj = {ProjItem::Pass("EmpName"),
                                ProjItem::Pass(kT1), ProjItem::Pass(kT2)};
  PlanPtr l = P::Project(P::Scan("EMPLOYEE"), proj);
  PlanPtr r = P::Project(P::Scan("PROJECT"), proj);
  PlanPtr plan = SqlIntersect(l, r, /*temporal=*/true);
  Result<Relation> out = EvaluatePlan(plan, catalog);
  ASSERT_TRUE(out.ok());
  // John is in both EMPLOYEE and PROJECT at time 5 (P2 spell).
  Relation snap = out->Snapshot(5);
  ASSERT_EQ(snap.size(), 2u);  // John and Anna both on projects at 5
}

TEST(IdiomTest, TimesliceMatchesSnapshot) {
  Catalog catalog = PaperCatalog();
  for (TimePoint t : {1, 4, 6, 9, 11}) {
    Result<PlanPtr> slice = Timeslice(P::Scan("EMPLOYEE"), t, catalog);
    ASSERT_TRUE(slice.ok());
    Result<Relation> out = EvaluatePlan(*slice, catalog);
    ASSERT_TRUE(out.ok());
    Relation expected = PaperEmployee().Snapshot(t);
    EXPECT_TRUE(EquivalentAsLists(out.value(), expected)) << "t=" << t;
  }
  // Timeslice of a snapshot relation is an error.
  Catalog conv;
  TQP_CHECK(conv.RegisterWithInferredFlags(
                    "C", testing_util::ConventionalRel({{"x", 1}}),
                    Site::kStratum)
                .ok());
  EXPECT_FALSE(Timeslice(P::Scan("C"), 0, conv).ok());
}

TEST(IdiomTest, NormalizeIsOrderInsensitive) {
  // coalT(rdupT(x)) maps all multiset-equivalent inputs to the same
  // coalesced snapshot-duplicate-free relation (Section 6).
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    Relation x = testing_util::RandomTemporal(seed);
    Relation shuffled = EvalSort(x, {{kT1, false}, {"Name", true}});
    Relation n1 = EvalCoalesce(EvalRdupT(x));
    Relation n2 = EvalCoalesce(EvalRdupT(shuffled));
    EXPECT_TRUE(EquivalentAsMultisets(n1, n2)) << seed;
    EXPECT_TRUE(n1.IsCoalesced());
    EXPECT_FALSE(n1.HasSnapshotDuplicates());
  }
}

TEST(IdiomTest, ClonePlanProducesEqualButDistinctTrees) {
  PlanPtr plan = P::Rdup(P::Sort(P::Scan("R"), {{"A", true}}));
  PlanPtr clone = ClonePlan(plan);
  EXPECT_EQ(CanonicalString(plan), CanonicalString(clone));
  EXPECT_NE(plan.get(), clone.get());
  EXPECT_NE(plan->child(0).get(), clone->child(0).get());
}

}  // namespace
}  // namespace tqp
