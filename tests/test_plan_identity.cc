// Plan identity under hash-consing: structural fingerprints, the interning
// table, path-based rewrites, and the memo-based enumerator's equivalence
// with the seed (string-dedup) implementation — plan sets, derivation edges,
// and the truncated/gated_out counters must all be preserved.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "algebra/intern.h"
#include "opt/enumerate.h"
#include "workload/paper_example.h"

namespace tqp {
namespace {

using P = PlanNode;

EnumerationOptions Options(size_t max_plans, bool legacy = false) {
  EnumerationOptions opts;
  opts.max_plans = max_plans;
  opts.use_legacy_string_dedup = legacy;
  return opts;
}

EnumerationResult Enumerate(const EnumerationOptions& opts,
                            QueryContract contract = PaperContract()) {
  Catalog catalog = PaperCatalog();
  std::vector<Rule> rules = DefaultRuleSet();
  Result<EnumerationResult> res = EnumeratePlans(
      PaperInitialPlan(), catalog, contract, rules, opts);
  TQP_CHECK(res.ok());
  return std::move(res.value());
}

// ---- Fingerprints ---------------------------------------------------------

TEST(PlanIdentityTest, FingerprintMatchesCanonicalEqualityOnEnumeratedPlans) {
  // On the paper's running example: fingerprint equality must coincide with
  // canonical-serialization equality over every enumerated plan (guards
  // against hash-collision dedup bugs and against fingerprints that miss
  // payload differences).
  for (QueryContract contract :
       {PaperContract(), QueryContract::Multiset(), QueryContract::Set()}) {
    EnumerationResult res = Enumerate(Options(100000), contract);
    ASSERT_GE(res.plans.size(), 100u);
    std::map<uint64_t, std::string> by_fp;
    std::map<std::string, uint64_t> by_canon;
    for (const EnumeratedPlan& p : res.plans) {
      EXPECT_EQ(p.fingerprint, p.plan->fingerprint());
      auto [fit, f_fresh] = by_fp.emplace(p.fingerprint, p.canonical);
      EXPECT_TRUE(f_fresh ? true : fit->second == p.canonical)
          << "fingerprint collision across distinct canonical forms";
      auto [cit, c_fresh] = by_canon.emplace(p.canonical, p.fingerprint);
      EXPECT_TRUE(c_fresh ? true : cit->second == p.fingerprint)
          << "equal canonical forms with different fingerprints";
    }
    // All enumerated plans are distinct in both representations.
    EXPECT_EQ(by_fp.size(), res.plans.size());
    EXPECT_EQ(by_canon.size(), res.plans.size());
  }
}

TEST(PlanIdentityTest, FingerprintSeesPayloadAndShape) {
  PlanPtr scan = P::Scan("EMPLOYEE");
  EXPECT_EQ(P::Scan("EMPLOYEE")->fingerprint(), scan->fingerprint());
  EXPECT_NE(P::Scan("PROJECT")->fingerprint(), scan->fingerprint());
  EXPECT_NE(P::Rdup(scan)->fingerprint(), P::RdupT(scan)->fingerprint());
  EXPECT_NE(P::Sort(scan, {SortKey{"A", true}})->fingerprint(),
            P::Sort(scan, {SortKey{"A", false}})->fingerprint());
  EXPECT_NE(P::Product(scan, P::Scan("PROJECT"))->fingerprint(),
            P::Product(P::Scan("PROJECT"), scan)->fingerprint());
  EXPECT_EQ(P::Rdup(scan)->subtree_size(), 2u);
}

// ---- Interner -------------------------------------------------------------

TEST(PlanIdentityTest, InterningMakesIdentityAPointerComparison) {
  PlanInterner interner;
  PlanPtr a = interner.Intern(PaperInitialPlan());
  PlanPtr b = interner.Intern(PaperInitialPlan());
  EXPECT_EQ(a.get(), b.get());
  EXPECT_TRUE(interner.IsCanonical(a.get()));
  EXPECT_GT(interner.hits(), 0u);

  // Distinct plans intern to distinct canonical nodes.
  PlanPtr c = interner.Intern(P::Rdup(P::Scan("EMPLOYEE")));
  PlanPtr d = interner.Intern(P::RdupT(P::Scan("EMPLOYEE")));
  EXPECT_NE(c.get(), d.get());
  // ... but share the scan subtree.
  EXPECT_EQ(c->child(0).get(), d->child(0).get());
}

TEST(PlanIdentityTest, RewriteInternedEqualsReplaceAtPath) {
  PlanInterner interner;
  PlanPtr plan = interner.Intern(PaperInitialPlan());
  // Rewrite the node at path {0,0} (below T_S, sort) into rdupT(·).
  PlanPath path = {0, 0};
  const PlanPtr& target = NodeAtPath(plan, path);
  PlanPtr replacement = P::RdupT(target->child(0));

  PlanPtr by_path = ReplaceAtPath(plan, path, replacement);
  PlanPtr by_interner = interner.RewriteInterned(plan, path, replacement);
  EXPECT_TRUE(PlanNode::Equal(by_path, by_interner));
  EXPECT_EQ(CanonicalString(by_path), CanonicalString(by_interner));
  EXPECT_EQ(by_path->fingerprint(),
            FingerprintAtPath(plan, path, replacement->fingerprint()));
  EXPECT_TRUE(EqualsWithReplacement(by_interner, plan, path, replacement));
  // A sibling-preserving rewrite shares everything off the spine.
  EXPECT_EQ(by_interner->child(0)->child(0)->child(0).get(),
            replacement->child(0).get());
}

// ---- Memo enumeration vs the seed implementation --------------------------

TEST(PlanIdentityTest, MemoAndLegacyProduceTheIdenticalPlanSequence) {
  EnumerationResult legacy = Enumerate(Options(100000, /*legacy=*/true));
  EnumerationResult memo = Enumerate(Options(100000, /*legacy=*/false));
  ASSERT_EQ(legacy.plans.size(), memo.plans.size());
  for (size_t i = 0; i < legacy.plans.size(); ++i) {
    EXPECT_EQ(legacy.plans[i].canonical, memo.plans[i].canonical) << i;
    EXPECT_EQ(legacy.plans[i].fingerprint, memo.plans[i].fingerprint) << i;
    EXPECT_EQ(legacy.plans[i].parent, memo.plans[i].parent) << i;
    EXPECT_EQ(legacy.plans[i].rule_id, memo.plans[i].rule_id) << i;
  }
  EXPECT_EQ(legacy.matches, memo.matches);
  EXPECT_EQ(legacy.admitted, memo.admitted);
  EXPECT_EQ(legacy.gated_out, memo.gated_out);
  EXPECT_EQ(legacy.truncated, memo.truncated);
  EXPECT_FALSE(memo.truncated);
}

TEST(PlanIdentityTest, TruncatedAndGatedOutCountersSurviveTheMemoRefactor) {
  // Truncated run: the cap must count distinct plans admitted to the memo,
  // not raw rule matches, and both implementations must agree on the
  // counters.
  EnumerationResult legacy = Enumerate(Options(60, /*legacy=*/true));
  EnumerationResult memo = Enumerate(Options(60, /*legacy=*/false));
  EXPECT_EQ(memo.plans.size(), 60u);
  EXPECT_TRUE(memo.truncated);
  EXPECT_TRUE(legacy.truncated);
  ASSERT_EQ(legacy.plans.size(), memo.plans.size());
  EXPECT_EQ(legacy.gated_out, memo.gated_out);
  EXPECT_EQ(legacy.matches, memo.matches);
  for (size_t i = 0; i < legacy.plans.size(); ++i) {
    EXPECT_EQ(legacy.plans[i].canonical, memo.plans[i].canonical) << i;
  }
}

TEST(PlanIdentityTest, MaxPlansCountsDistinctPlansNotRuleMatches) {
  EnumerationResult res = Enumerate(Options(100000));
  // Far more rule matches (and admitted applications) than distinct plans.
  EXPECT_GT(res.matches, res.plans.size());
  EXPECT_GT(res.admitted, res.plans.size());
  // A cap far below the match count still yields exactly that many plans.
  EnumerationResult capped = Enumerate(Options(25));
  EXPECT_EQ(capped.plans.size(), 25u);
  EXPECT_TRUE(capped.truncated);
  std::set<std::string> canon;
  for (const EnumeratedPlan& p : capped.plans) canon.insert(p.canonical);
  EXPECT_EQ(canon.size(), capped.plans.size());
}

TEST(PlanIdentityTest, MemoReportsSearchStructureStatistics) {
  EnumerationResult res = Enumerate(Options(100000));
  EXPECT_GT(res.memo_hits, 0u);
  EXPECT_GT(res.interner_nodes, 0u);
  EXPECT_GT(res.interner_hits, 0u);
  EXPECT_EQ(res.cache_nodes, res.interner_nodes);
  // Hash-consing must compress far below the unfolded node count.
  size_t unfolded = 0;
  for (const EnumeratedPlan& p : res.plans) unfolded += PlanSize(p.plan);
  EXPECT_LT(res.interner_nodes, unfolded / 2);
}

// ---- DerivationOf ---------------------------------------------------------

TEST(PlanIdentityTest, DerivationOfHandlesOutOfWorklistOrderParents) {
  // Hand-build a result whose parent edges do not follow the expansion
  // order: plan 3 derives from plan 1, which derives from plan 2, which
  // derives from the initial plan 0.
  EnumerationResult res;
  res.plans.push_back(EnumeratedPlan{nullptr, "p0", 0, -1, ""});
  res.plans.push_back(EnumeratedPlan{nullptr, "p1", 1, 2, "R2"});
  res.plans.push_back(EnumeratedPlan{nullptr, "p2", 2, 0, "R1"});
  res.plans.push_back(EnumeratedPlan{nullptr, "p3", 3, 1, "R3"});
  EXPECT_EQ(res.DerivationOf(0), std::vector<std::string>{});
  EXPECT_EQ(res.DerivationOf(3),
            (std::vector<std::string>{"R1", "R2", "R3"}));
}

TEST(PlanIdentityTest, DerivationChainsReplayUnderCostPruning) {
  // With pruning enabled some plans are admitted but never expanded, so
  // parent indices can skip around; every chain must still replay from the
  // initial plan.
  EnumerationOptions opts = Options(100000);
  opts.cost_prune_factor = 2.0;
  EnumerationResult res = Enumerate(opts);
  EXPECT_GT(res.cost_pruned, 0u);
  for (size_t i = 0; i < res.plans.size(); ++i) {
    // Parents precede children and chains terminate.
    EXPECT_LT(res.plans[i].parent, static_cast<int>(i));
    std::vector<std::string> chain = res.DerivationOf(i);
    EXPECT_EQ(chain.size(),
              i == 0 ? 0u : res.DerivationOf(res.plans[i].parent).size() + 1);
  }
}

TEST(PlanIdentityTest, CostPruningIsOffByDefaultAndSound) {
  EnumerationOptions exhaustive = Options(100000);
  EXPECT_EQ(exhaustive.cost_prune_factor, 0.0);
  EnumerationResult full = Enumerate(exhaustive);
  EXPECT_EQ(full.cost_pruned, 0u);

  EnumerationOptions pruned_opts = Options(100000);
  pruned_opts.cost_prune_factor = 1.5;
  EnumerationResult pruned = Enumerate(pruned_opts);
  // Pruning only shrinks the space, and every plan it keeps is one the
  // exhaustive run also found.
  EXPECT_LE(pruned.plans.size(), full.plans.size());
  std::set<std::string> all;
  for (const EnumeratedPlan& p : full.plans) all.insert(p.canonical);
  for (const EnumeratedPlan& p : pruned.plans) {
    EXPECT_TRUE(all.count(p.canonical) > 0) << p.canonical;
  }
}

// ---- Repeated subexpressions ----------------------------------------------

TEST(PlanIdentityTest, MemoMatchesLegacyOnPlansWithRepeatedSubexpressions) {
  // Two structurally identical subtrees built as distinct objects: a proper
  // tree for the legacy path, but interning merges them into one node in
  // the memo path. Per-occurrence property gating must keep the plan
  // sequences identical (regression: a per-pointer OR-merge once let the
  // unsorted occurrence's OrderRequired leak into the sorted one and
  // collapsed the space from hundreds of plans to two).
  Catalog catalog = PaperCatalog();
  std::vector<Rule> rules = DefaultRuleSet();
  auto make_x = [] {
    return P::Product(P::Scan("EMPLOYEE"), P::Scan("PROJECT"));
  };
  SortSpec by_dept = {SortKey{"Dept", true}};
  PlanPtr plan = P::UnionAll(P::Sort(make_x(), by_dept), make_x());
  QueryContract contract = QueryContract::List(by_dept);

  EnumerationOptions legacy_opts = Options(400, /*legacy=*/true);
  EnumerationOptions memo_opts = Options(400, /*legacy=*/false);
  Result<EnumerationResult> legacy =
      EnumeratePlans(plan, catalog, contract, rules, legacy_opts);
  Result<EnumerationResult> memo =
      EnumeratePlans(plan, catalog, contract, rules, memo_opts);
  ASSERT_TRUE(legacy.ok()) << legacy.status().message();
  ASSERT_TRUE(memo.ok()) << memo.status().message();
  ASSERT_GT(memo->plans.size(), 100u) << "space collapsed: gating leaked "
                                         "across shared occurrences";
  ASSERT_EQ(legacy->plans.size(), memo->plans.size());
  for (size_t i = 0; i < legacy->plans.size(); ++i) {
    EXPECT_EQ(legacy->plans[i].canonical, memo->plans[i].canonical) << i;
    EXPECT_EQ(legacy->plans[i].parent, memo->plans[i].parent) << i;
    EXPECT_EQ(legacy->plans[i].rule_id, memo->plans[i].rule_id) << i;
  }
  EXPECT_EQ(legacy->matches, memo->matches);
  EXPECT_EQ(legacy->admitted, memo->admitted);
  EXPECT_EQ(legacy->gated_out, memo->gated_out);
}

TEST(PlanIdentityTest, LegacyRejectsSharedSubtreeInputsMemoHandlesThem) {
  // The seed algorithm rewrites by node identity, which replaces every
  // occurrence — unsound on DAGs — so the legacy path refuses them. The
  // memo path rewrites at paths and must enumerate exactly what it would
  // for the equivalent proper tree.
  Catalog catalog = PaperCatalog();
  std::vector<Rule> rules = DefaultRuleSet();
  SortSpec by_dept = {SortKey{"Dept", true}};
  PlanPtr x = P::Product(P::Scan("EMPLOYEE"), P::Scan("PROJECT"));
  PlanPtr dag = P::UnionAll(P::Sort(x, by_dept), x);  // same object twice
  PlanPtr tree = P::UnionAll(
      P::Sort(P::Product(P::Scan("EMPLOYEE"), P::Scan("PROJECT")), by_dept),
      P::Product(P::Scan("EMPLOYEE"), P::Scan("PROJECT")));
  QueryContract contract = QueryContract::List(by_dept);

  Result<EnumerationResult> legacy = EnumeratePlans(
      dag, catalog, contract, rules, Options(400, /*legacy=*/true));
  EXPECT_FALSE(legacy.ok());

  Result<EnumerationResult> from_dag =
      EnumeratePlans(dag, catalog, contract, rules, Options(400));
  Result<EnumerationResult> from_tree =
      EnumeratePlans(tree, catalog, contract, rules, Options(400));
  ASSERT_TRUE(from_dag.ok() && from_tree.ok());
  ASSERT_EQ(from_dag->plans.size(), from_tree->plans.size());
  for (size_t i = 0; i < from_dag->plans.size(); ++i) {
    EXPECT_EQ(from_dag->plans[i].canonical, from_tree->plans[i].canonical);
  }
}

// ---- Hash-consed (DAG) plans through annotation ---------------------------

TEST(PlanIdentityTest, AnnotationAcceptsSharedSubtrees) {
  // With hash-consing the same node object may occur twice in one plan;
  // annotation must accept it and derive bottom-up facts once.
  Catalog catalog = PaperCatalog();
  std::vector<ProjItem> proj = {ProjItem::Pass("EmpName"), ProjItem::Pass(kT1),
                                ProjItem::Pass(kT2)};
  PlanPtr shared = P::Project(P::Scan("EMPLOYEE"), proj);
  PlanPtr dag = P::UnionAll(shared, shared);  // same object twice
  Result<AnnotatedPlan> ann =
      AnnotatedPlan::Make(dag, &catalog, QueryContract::Multiset());
  ASSERT_TRUE(ann.ok()) << ann.status().message();
  EXPECT_EQ(ann->info(shared.get()).schema.size(), 3u);
  // Conservative merge: the shared occurrence carries the OR of its edges'
  // properties; for ⊎ both edges agree here.
  EXPECT_FALSE(ann->info(shared.get()).order_required);
}

}  // namespace
}  // namespace tqp
