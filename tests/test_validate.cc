// Tests for the order-sensitivity validator (the Section 6 assumption made
// executable).
#include <gtest/gtest.h>

#include "exec/evaluator.h"
#include "opt/validate.h"
#include "test_util.h"
#include "workload/paper_example.h"

namespace tqp {
namespace {

using P = PlanNode;

Catalog MessyCatalog() {
  Catalog catalog;
  Relation messy = testing_util::RandomTemporal(11);
  TQP_CHECK(
      catalog.RegisterWithInferredFlags("T", messy, Site::kStratum).ok());
  TQP_CHECK(catalog
                .RegisterWithInferredFlags("TCLEAN", EvalRdupT(messy),
                                           Site::kStratum)
                .ok());
  return catalog;
}

std::vector<ValidationWarning> Check(const PlanPtr& plan,
                                     const Catalog& catalog) {
  Result<AnnotatedPlan> ann =
      AnnotatedPlan::Make(plan, &catalog, QueryContract::Multiset());
  TQP_CHECK(ann.ok());
  return ValidateOrderSensitivity(ann.value());
}

TEST(ValidateTest, ThePaperPlanIsClean) {
  Catalog catalog = PaperCatalog();
  Result<AnnotatedPlan> ann =
      AnnotatedPlan::Make(PaperInitialPlan(), &catalog, PaperContract());
  ASSERT_TRUE(ann.ok());
  std::vector<ValidationWarning> warnings =
      ValidateOrderSensitivity(ann.value());
  EXPECT_TRUE(warnings.empty())
      << (warnings.empty() ? "" : warnings[0].message);
}

TEST(ValidateTest, NakedRdupTOverMessyInputWarns) {
  Catalog catalog = MessyCatalog();
  std::vector<ValidationWarning> w = Check(P::RdupT(P::Scan("T")), catalog);
  ASSERT_EQ(w.size(), 1u);
  EXPECT_NE(w[0].message.find("rdupT"), std::string::npos);
}

TEST(ValidateTest, RdupTOverCleanInputIsFine) {
  Catalog catalog = MessyCatalog();
  EXPECT_TRUE(Check(P::RdupT(P::Scan("TCLEAN")), catalog).empty());
}

TEST(ValidateTest, TheNormalizingIdiomIsFine) {
  Catalog catalog = MessyCatalog();
  EXPECT_TRUE(Check(P::Coalesce(P::RdupT(P::Scan("T"))), catalog).empty());
}

TEST(ValidateTest, DifferenceTLeftDuplicatesWarn) {
  Catalog catalog = MessyCatalog();
  std::vector<ValidationWarning> w =
      Check(P::DifferenceT(P::Scan("T"), P::Scan("TCLEAN")), catalog);
  ASSERT_FALSE(w.empty());
  EXPECT_NE(w[0].message.find("left argument"), std::string::npos);

  EXPECT_TRUE(
      Check(P::DifferenceT(P::Scan("TCLEAN"), P::Scan("T")), catalog).empty());
}

TEST(ValidateTest, NakedCoalesceOverMessyInputWarns) {
  Catalog catalog = MessyCatalog();
  std::vector<ValidationWarning> w = Check(P::Coalesce(P::Scan("T")), catalog);
  ASSERT_EQ(w.size(), 1u);
  EXPECT_NE(w[0].message.find("coalT"), std::string::npos);
  EXPECT_TRUE(Check(P::Coalesce(P::Scan("TCLEAN")), catalog).empty());
}

TEST(ValidateTest, WarningsSuppressedUnderTheIdiom) {
  Catalog catalog = MessyCatalog();
  // A messy \T below the normalizing idiom: no warnings — this is exactly
  // the structure of the paper's Figure 2(a).
  PlanPtr plan = P::Coalesce(P::RdupT(
      P::DifferenceT(P::Scan("T"), P::Scan("TCLEAN"))));
  EXPECT_TRUE(Check(plan, catalog).empty());
}

TEST(ValidateTest, UnionTWarnsOnMessyArguments) {
  Catalog catalog = MessyCatalog();
  EXPECT_FALSE(
      Check(P::UnionT(P::Scan("T"), P::Scan("TCLEAN")), catalog).empty());
  EXPECT_TRUE(
      Check(P::UnionT(P::Scan("TCLEAN"),
                      P::RdupT(P::Scan("TCLEAN"))),
            catalog)
          .empty());
}

}  // namespace
}  // namespace tqp
