// Tests for cost-based plan selection over the enumerated space.
#include <gtest/gtest.h>

#include "algebra/printer.h"
#include "core/equivalence.h"
#include "exec/evaluator.h"
#include "opt/optimizer.h"
#include "test_util.h"
#include "workload/paper_example.h"

namespace tqp {
namespace {

TEST(OptimizerTest, ImprovesThePaperPlan) {
  Catalog catalog = PaperCatalog();
  std::vector<Rule> rules = DefaultRuleSet();
  OptimizerOptions options;
  options.enumeration.max_plans = 4000;
  Result<OptimizeResult> res = Optimize(PaperInitialPlan(), catalog,
                                        PaperContract(), rules, options);
  ASSERT_TRUE(res.ok()) << res.status().message();
  EXPECT_LT(res->best_cost, res->initial_cost);
  EXPECT_GE(res->plans_considered, 100u);
  EXPECT_FALSE(res->derivation.empty());
}

TEST(OptimizerTest, BestPlanComputesTheCorrectResult) {
  Catalog catalog = PaperCatalog();
  std::vector<Rule> rules = DefaultRuleSet();
  OptimizerOptions options;
  options.enumeration.max_plans = 4000;
  Result<OptimizeResult> res = Optimize(PaperInitialPlan(), catalog,
                                        PaperContract(), rules, options);
  ASSERT_TRUE(res.ok());

  EngineConfig engine;
  engine.dbms_scrambles_order = true;
  Result<AnnotatedPlan> ann =
      AnnotatedPlan::Make(res->best_plan, &catalog, PaperContract());
  ASSERT_TRUE(ann.ok());
  Result<Relation> out = Evaluate(ann.value(), engine);
  ASSERT_TRUE(out.ok());

  Relation expected = PaperExpectedResult();
  EXPECT_TRUE(EquivalentAsMultisets(out.value(), expected))
      << "best plan:\n"
      << PrintPlan(res->best_plan) << "result:\n"
      << out->ToTable();
  EXPECT_TRUE(EquivalentAsListsOn(PaperContract().order_by, out.value(),
                                  expected));
}

TEST(OptimizerTest, BestPlanPushesWorkIntoTheStratum) {
  // The optimized plan should execute the temporal operations at the
  // stratum (the DBMS temporal penalty dominates) and keep the sort in the
  // DBMS ("the DBMS sorts faster than the stratum", Section 2.1).
  Catalog catalog = PaperCatalog();
  std::vector<Rule> rules = DefaultRuleSet();
  OptimizerOptions options;
  options.enumeration.max_plans = 4000;
  Result<OptimizeResult> res = Optimize(PaperInitialPlan(), catalog,
                                        PaperContract(), rules, options);
  ASSERT_TRUE(res.ok());

  Result<AnnotatedPlan> ann =
      AnnotatedPlan::Make(res->best_plan, &catalog, PaperContract());
  ASSERT_TRUE(ann.ok());
  std::vector<PlanPtr> nodes;
  CollectNodes(res->best_plan, &nodes);
  bool sort_at_dbms = false;
  for (const PlanPtr& n : nodes) {
    if (IsTemporalOp(n->kind())) {
      EXPECT_EQ(ann->info(n.get()).site, Site::kStratum)
          << n->Describe() << " left at the DBMS:\n"
          << PrintPlan(res->best_plan);
    }
    if (n->kind() == OpKind::kSort &&
        ann->info(n.get()).site == Site::kDbms) {
      sort_at_dbms = true;
    }
  }
  EXPECT_TRUE(sort_at_dbms) << PrintPlan(res->best_plan);
}

TEST(OptimizerTest, MultisetContractDropsTheSort) {
  // Without ORDER BY the optimizer may (and should) discard the sort.
  Catalog catalog = PaperCatalog();
  std::vector<Rule> rules = DefaultRuleSet();
  OptimizerOptions options;
  options.enumeration.max_plans = 4000;
  Result<OptimizeResult> res = Optimize(PaperInitialPlan(), catalog,
                                        QueryContract::Multiset(), rules,
                                        options);
  ASSERT_TRUE(res.ok());
  std::vector<PlanPtr> nodes;
  CollectNodes(res->best_plan, &nodes);
  for (const PlanPtr& n : nodes) {
    EXPECT_NE(n->kind(), OpKind::kSort) << PrintPlan(res->best_plan);
  }
}

TEST(OptimizerTest, RestrictedGatingYieldsWorseOrEqualPlans) {
  Catalog catalog = PaperCatalog();
  std::vector<Rule> rules = DefaultRuleSet();
  using ET = EquivalenceType;

  OptimizerOptions strict;
  strict.enumeration.max_plans = 4000;
  strict.enumeration.admitted = {ET::kList};
  OptimizerOptions full;
  full.enumeration.max_plans = 4000;

  Result<OptimizeResult> a = Optimize(PaperInitialPlan(), catalog,
                                      PaperContract(), rules, strict);
  Result<OptimizeResult> b =
      Optimize(PaperInitialPlan(), catalog, PaperContract(), rules, full);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_GE(a->best_cost, b->best_cost);
  EXPECT_LT(b->best_cost, b->initial_cost);
}

TEST(OptimizerTest, TransferCostsShapePlacement) {
  // With an enormous transfer cost, shipping tuples to the stratum early is
  // avoided; with free transfers and a huge DBMS temporal penalty, pushing
  // the transfer down pays off. Costs must reflect that monotonically.
  Catalog catalog = PaperCatalog();
  std::vector<Rule> rules = DefaultRuleSet();

  OptimizerOptions cheap_transfer;
  cheap_transfer.enumeration.max_plans = 3000;
  cheap_transfer.engine.transfer_cost_per_tuple = 0.1;
  Result<OptimizeResult> cheap = Optimize(PaperInitialPlan(), catalog,
                                          PaperContract(), rules,
                                          cheap_transfer);

  OptimizerOptions pricey_transfer = cheap_transfer;
  pricey_transfer.engine.transfer_cost_per_tuple = 500.0;
  Result<OptimizeResult> pricey = Optimize(PaperInitialPlan(), catalog,
                                           PaperContract(), rules,
                                           pricey_transfer);
  ASSERT_TRUE(cheap.ok() && pricey.ok());
  EXPECT_LT(cheap->best_cost, pricey->best_cost);
}

}  // namespace
}  // namespace tqp
