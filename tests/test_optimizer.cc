// Tests for cost-based plan selection over the enumerated space, driven
// through the tqp::Engine facade (the Optimize free function stays covered
// as the facade's implementation and via test_paper_example.cc).
#include <gtest/gtest.h>

#include "algebra/printer.h"
#include "api/engine.h"
#include "core/equivalence.h"
#include "test_util.h"
#include "workload/paper_example.h"

namespace tqp {
namespace {

EngineOptions WithMaxPlans(size_t max_plans) {
  EngineOptions options;
  options.enumeration.max_plans = max_plans;
  return options;
}

TEST(OptimizerTest, ImprovesThePaperPlan) {
  Engine engine(PaperCatalog(), WithMaxPlans(4000));
  Result<PreparedQuery> res =
      engine.Prepare(PaperInitialPlan(), PaperContract());
  ASSERT_TRUE(res.ok()) << res.status().message();
  EXPECT_LT(res->best_cost(), res->initial_cost());
  EXPECT_GE(res->plans_considered(), 100u);
  EXPECT_FALSE(res->derivation().empty());
}

TEST(OptimizerTest, BestPlanComputesTheCorrectResult) {
  EngineOptions options = WithMaxPlans(4000);
  options.engine.dbms_scrambles_order = true;
  Engine engine(PaperCatalog(), std::move(options));
  Result<PreparedQuery> res =
      engine.Prepare(PaperInitialPlan(), PaperContract());
  ASSERT_TRUE(res.ok());
  Result<QueryResult> out = res.value().Execute();
  ASSERT_TRUE(out.ok());

  Relation expected = PaperExpectedResult();
  EXPECT_TRUE(EquivalentAsMultisets(out->relation, expected))
      << "best plan:\n"
      << PrintPlan(res->best_plan()) << "result:\n"
      << out->relation.ToTable();
  EXPECT_TRUE(EquivalentAsListsOn(PaperContract().order_by, out->relation,
                                  expected));
}

TEST(OptimizerTest, BestPlanPushesWorkIntoTheStratum) {
  // The optimized plan should execute the temporal operations at the
  // stratum (the DBMS temporal penalty dominates) and keep the sort in the
  // DBMS ("the DBMS sorts faster than the stratum", Section 2.1).
  Engine engine(PaperCatalog(), WithMaxPlans(4000));
  Result<PreparedQuery> res =
      engine.Prepare(PaperInitialPlan(), PaperContract());
  ASSERT_TRUE(res.ok());

  Result<AnnotatedPlan> ann = AnnotatedPlan::Make(
      res->best_plan(), &engine.catalog(), PaperContract());
  ASSERT_TRUE(ann.ok());
  std::vector<PlanPtr> nodes;
  CollectNodes(res->best_plan(), &nodes);
  bool sort_at_dbms = false;
  for (const PlanPtr& n : nodes) {
    if (IsTemporalOp(n->kind())) {
      EXPECT_EQ(ann->info(n.get()).site, Site::kStratum)
          << n->Describe() << " left at the DBMS:\n"
          << PrintPlan(res->best_plan());
    }
    if (n->kind() == OpKind::kSort &&
        ann->info(n.get()).site == Site::kDbms) {
      sort_at_dbms = true;
    }
  }
  EXPECT_TRUE(sort_at_dbms) << PrintPlan(res->best_plan());
}

TEST(OptimizerTest, MultisetContractDropsTheSort) {
  // Without ORDER BY the optimizer may (and should) discard the sort.
  Engine engine(PaperCatalog(), WithMaxPlans(4000));
  Result<PreparedQuery> res =
      engine.Prepare(PaperInitialPlan(), QueryContract::Multiset());
  ASSERT_TRUE(res.ok());
  std::vector<PlanPtr> nodes;
  CollectNodes(res->best_plan(), &nodes);
  for (const PlanPtr& n : nodes) {
    EXPECT_NE(n->kind(), OpKind::kSort) << PrintPlan(res->best_plan());
  }
}

TEST(OptimizerTest, ContractsShareOneSessionCache) {
  // Different contracts over the same initial plan are distinct plan-cache
  // entries (the key includes the contract) served by one session.
  Engine engine(PaperCatalog(), WithMaxPlans(4000));
  Result<PreparedQuery> list =
      engine.Prepare(PaperInitialPlan(), PaperContract());
  Result<PreparedQuery> multiset =
      engine.Prepare(PaperInitialPlan(), QueryContract::Multiset());
  ASSERT_TRUE(list.ok() && multiset.ok());
  EXPECT_FALSE(multiset->from_cache());
  EXPECT_NE(list->fingerprint(), multiset->fingerprint());
  EXPECT_TRUE(
      engine.Prepare(PaperInitialPlan(), PaperContract())->from_cache());
  EXPECT_EQ(engine.stats().prepares, 2u);
}

TEST(OptimizerTest, RestrictedGatingYieldsWorseOrEqualPlans) {
  using ET = EquivalenceType;

  EngineOptions strict_options = WithMaxPlans(4000);
  strict_options.enumeration.admitted = {ET::kList};
  Engine strict(PaperCatalog(), std::move(strict_options));
  Engine full(PaperCatalog(), WithMaxPlans(4000));

  Result<PreparedQuery> a = strict.Prepare(PaperInitialPlan(), PaperContract());
  Result<PreparedQuery> b = full.Prepare(PaperInitialPlan(), PaperContract());
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_GE(a->best_cost(), b->best_cost());
  EXPECT_LT(b->best_cost(), b->initial_cost());
}

TEST(OptimizerTest, TransferCostsShapePlacement) {
  // With an enormous transfer cost, shipping tuples to the stratum early is
  // avoided; with free transfers and a huge DBMS temporal penalty, pushing
  // the transfer down pays off. Costs must reflect that monotonically.
  EngineOptions cheap_options = WithMaxPlans(3000);
  cheap_options.engine.transfer_cost_per_tuple = 0.1;
  EngineOptions pricey_options = WithMaxPlans(3000);
  pricey_options.engine.transfer_cost_per_tuple = 500.0;

  Engine cheap(PaperCatalog(), std::move(cheap_options));
  Engine pricey(PaperCatalog(), std::move(pricey_options));
  Result<PreparedQuery> a = cheap.Prepare(PaperInitialPlan(), PaperContract());
  Result<PreparedQuery> b = pricey.Prepare(PaperInitialPlan(), PaperContract());
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_LT(a->best_cost(), b->best_cost());
}

}  // namespace
}  // namespace tqp
