// Tests for scalar expressions: evaluation, SQL-style null semantics,
// arithmetic typing, the OVERLAPS predicate, attribute analysis, renaming,
// and rendering.
#include <gtest/gtest.h>

#include "algebra/derivation.h"
#include "algebra/expr.h"
#include "test_util.h"

namespace tqp {
namespace {

Schema TestSchema() {
  Schema s;
  s.Add(Attribute{"Name", ValueType::kString});
  s.Add(Attribute{"Val", ValueType::kInt});
  s.Add(Attribute{kT1, ValueType::kTime});
  s.Add(Attribute{kT2, ValueType::kTime});
  return s;
}

Tuple TestTuple() {
  Tuple t;
  t.push_back(Value::String("anna"));
  t.push_back(Value::Int(7));
  t.push_back(Value::Time(2));
  t.push_back(Value::Time(9));
  return t;
}

TEST(ExprTest, AttributeLookupAndUnknownAttr) {
  Schema s = TestSchema();
  Tuple t = TestTuple();
  Result<Value> v = Expr::Attr("Val")->Eval(t, s);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->AsInt(), 7);
  EXPECT_FALSE(Expr::Attr("Nope")->Eval(t, s).ok());
}

TEST(ExprTest, ComparisonsAcrossAllOperators) {
  Schema s = TestSchema();
  Tuple t = TestTuple();
  auto check = [&](CompareOp op, int64_t rhs, bool expected) {
    ExprPtr e = Expr::Compare(op, Expr::Attr("Val"),
                              Expr::Const(Value::Int(rhs)));
    EXPECT_EQ(e->EvalPredicate(t, s), expected);
  };
  check(CompareOp::kEq, 7, true);
  check(CompareOp::kNe, 7, false);
  check(CompareOp::kLt, 8, true);
  check(CompareOp::kLe, 7, true);
  check(CompareOp::kGt, 7, false);
  check(CompareOp::kGe, 7, true);
}

TEST(ExprTest, NullPropagationThreeValued) {
  Schema s;
  s.Add(Attribute{"X", ValueType::kInt});
  Tuple t;
  t.push_back(Value::Null());
  // NULL = 1 evaluates to NULL; a NULL predicate rejects.
  ExprPtr cmp = Expr::Compare(CompareOp::kEq, Expr::Attr("X"),
                              Expr::Const(Value::Int(1)));
  Result<Value> v = cmp->Eval(t, s);
  ASSERT_TRUE(v.ok());
  EXPECT_TRUE(v->is_null());
  EXPECT_FALSE(cmp->EvalPredicate(t, s));

  // FALSE AND NULL = FALSE (short circuit), TRUE OR NULL = TRUE.
  ExprPtr false_e = Expr::Const(Value::Int(0));
  ExprPtr true_e = Expr::Const(Value::Int(1));
  EXPECT_FALSE(Expr::And(false_e, cmp)->EvalPredicate(t, s));
  EXPECT_TRUE(Expr::Or(true_e, cmp)->EvalPredicate(t, s));
  // TRUE AND NULL = NULL -> rejected; NOT NULL = NULL -> rejected.
  EXPECT_FALSE(Expr::And(true_e, cmp)->EvalPredicate(t, s));
  EXPECT_FALSE(Expr::Not(cmp)->EvalPredicate(t, s));
}

TEST(ExprTest, ArithmeticTypingRules) {
  Schema s = TestSchema();
  Tuple t = TestTuple();
  // int + int = int
  Result<Value> a = Expr::Arith(ArithOp::kAdd, Expr::Attr("Val"),
                                Expr::Const(Value::Int(3)))
                        ->Eval(t, s);
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(a->type(), ValueType::kInt);
  EXPECT_EQ(a->AsInt(), 10);
  // int * double = double
  Result<Value> b = Expr::Arith(ArithOp::kMul, Expr::Attr("Val"),
                                Expr::Const(Value::Double(0.5)))
                        ->Eval(t, s);
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(b->type(), ValueType::kDouble);
  EXPECT_DOUBLE_EQ(b->AsDouble(), 3.5);
  // division is always double; division by zero yields NULL
  Result<Value> c = Expr::Arith(ArithOp::kDiv, Expr::Attr("Val"),
                                Expr::Const(Value::Int(0)))
                        ->Eval(t, s);
  ASSERT_TRUE(c.ok());
  EXPECT_TRUE(c->is_null());
  // arithmetic on strings is an error
  EXPECT_FALSE(Expr::Arith(ArithOp::kAdd, Expr::Attr("Name"),
                           Expr::Const(Value::Int(1)))
                   ->Eval(t, s)
                   .ok());
  // duration arithmetic on time attributes works (T2 - T1)
  Result<Value> d =
      Expr::Arith(ArithOp::kSub, Expr::Attr(kT2), Expr::Attr(kT1))
          ->Eval(t, s);
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d->NumericValue(), 7);
}

TEST(ExprTest, OverlapsPredicateHalfOpen) {
  Schema s = TestSchema();
  Tuple t = TestTuple();  // period [2, 9)
  auto overlaps = [&](TimePoint a, TimePoint b) {
    return Expr::Overlaps(Expr::Attr(kT1), Expr::Attr(kT2),
                          Expr::Const(Value::Time(a)),
                          Expr::Const(Value::Time(b)))
        ->EvalPredicate(t, s);
  };
  EXPECT_TRUE(overlaps(8, 12));
  EXPECT_TRUE(overlaps(0, 3));
  EXPECT_FALSE(overlaps(9, 12));  // meets, half-open
  EXPECT_FALSE(overlaps(0, 2));
}

TEST(ExprTest, ReferencedAttrsAndTimeFree) {
  ExprPtr e = Expr::And(
      Expr::Compare(CompareOp::kEq, Expr::Attr("Name"),
                    Expr::Const(Value::String("x"))),
      Expr::Compare(CompareOp::kLt, Expr::Attr(kT1), Expr::Attr("Val")));
  std::set<std::string> attrs = e->ReferencedAttrs();
  EXPECT_EQ(attrs.size(), 3u);
  EXPECT_TRUE(attrs.count("Name"));
  EXPECT_TRUE(attrs.count(kT1));
  EXPECT_FALSE(e->IsTimeFree());
  EXPECT_TRUE(Expr::Attr("Name")->IsTimeFree());
}

TEST(ExprTest, RenameAttrsRewritesReferences) {
  ExprPtr e = Expr::Compare(CompareOp::kEq, Expr::Attr("1.T1"),
                            Expr::Attr("Name"));
  ExprPtr renamed = e->RenameAttrs({{"1.T1", kT1}});
  std::set<std::string> attrs = renamed->ReferencedAttrs();
  EXPECT_TRUE(attrs.count(kT1));
  EXPECT_FALSE(attrs.count("1.T1"));
  EXPECT_TRUE(attrs.count("Name"));
}

TEST(ExprTest, ToStringRendersStructure) {
  ExprPtr e = Expr::And(
      Expr::Compare(CompareOp::kNe, Expr::Attr("A"),
                    Expr::Const(Value::String("v"))),
      Expr::Not(Expr::Compare(CompareOp::kGe, Expr::Attr("B"),
                              Expr::Const(Value::Int(3)))));
  EXPECT_EQ(e->ToString(), "((A <> 'v') AND NOT (B >= 3))");
}

TEST(ExprTest, DeriveExprTypeMatchesEvaluation) {
  Schema s = TestSchema();
  Tuple t = TestTuple();
  std::vector<ExprPtr> exprs = {
      Expr::Attr("Name"),
      Expr::Attr("Val"),
      Expr::Attr(kT1),
      Expr::Const(Value::Double(1.5)),
      Expr::Compare(CompareOp::kLt, Expr::Attr("Val"),
                    Expr::Const(Value::Int(9))),
      Expr::Arith(ArithOp::kAdd, Expr::Attr(kT1), Expr::Const(Value::Int(1))),
      Expr::Arith(ArithOp::kDiv, Expr::Attr("Val"),
                  Expr::Const(Value::Int(2))),
  };
  for (const ExprPtr& e : exprs) {
    Result<ValueType> ty = DeriveExprType(e, s);
    ASSERT_TRUE(ty.ok()) << e->ToString();
    Result<Value> v = e->Eval(t, s);
    ASSERT_TRUE(v.ok()) << e->ToString();
    if (!v->is_null()) {
      EXPECT_EQ(v->type(), ty.value()) << e->ToString();
    }
  }
}

}  // namespace
}  // namespace tqp
