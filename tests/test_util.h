// Shared test fixtures and helpers.
#ifndef TQP_TESTS_TEST_UTIL_H_
#define TQP_TESTS_TEST_UTIL_H_

#include <string>
#include <vector>

#include "core/catalog.h"
#include "core/relation.h"
#include "workload/generator.h"

namespace tqp {
namespace testing_util {

/// Builds a temporal relation with schema (Name:string, Val:int, T1, T2).
inline Relation TemporalRel(
    const std::vector<std::tuple<std::string, int64_t, TimePoint, TimePoint>>&
        rows) {
  Schema s;
  s.Add(Attribute{"Name", ValueType::kString});
  s.Add(Attribute{"Val", ValueType::kInt});
  s.Add(Attribute{kT1, ValueType::kTime});
  s.Add(Attribute{kT2, ValueType::kTime});
  Relation r(s);
  for (const auto& [name, val, t1, t2] : rows) {
    Tuple t;
    t.push_back(Value::String(name));
    t.push_back(Value::Int(val));
    t.push_back(Value::Time(t1));
    t.push_back(Value::Time(t2));
    r.Append(std::move(t));
  }
  return r;
}

/// Builds a conventional relation with schema (Name:string, Val:int).
inline Relation ConventionalRel(
    const std::vector<std::pair<std::string, int64_t>>& rows) {
  Schema s;
  s.Add(Attribute{"Name", ValueType::kString});
  s.Add(Attribute{"Val", ValueType::kInt});
  Relation r(s);
  for (const auto& [name, val] : rows) {
    Tuple t;
    t.push_back(Value::String(name));
    t.push_back(Value::Int(val));
    r.Append(std::move(t));
  }
  return r;
}

/// A random temporal relation exercising duplicates, snapshot duplicates,
/// and adjacency, sized for fast property tests.
inline Relation RandomTemporal(uint64_t seed, size_t cardinality = 24) {
  RelationGenParams p;
  p.cardinality = cardinality;
  p.num_names = 5;
  p.num_categories = 3;
  p.time_horizon = 60;
  p.max_period_length = 12;
  p.duplicate_fraction = 0.2;
  p.adjacency_fraction = 0.25;
  p.overlap_fraction = 0.25;
  p.seed = seed;
  return GenerateRelation(p);
}

/// A random conventional relation with duplicates.
inline Relation RandomConventional(uint64_t seed, size_t cardinality = 24) {
  RelationGenParams p;
  p.cardinality = cardinality;
  p.num_names = 5;
  p.num_categories = 3;
  p.duplicate_fraction = 0.3;
  p.temporal = false;
  p.seed = seed;
  return GenerateRelation(p);
}

}  // namespace testing_util
}  // namespace tqp

#endif  // TQP_TESTS_TEST_UTIL_H_
