// Randomized A/B parity suite for the vectorized batch executor.
//
// The contract under test (vexec/vexec.h): for every plan, catalog, and
// engine configuration — with the DBMS order scramble off and on — the
// vectorized executor's result is LIST-IDENTICAL to the reference
// evaluator's: same schema, same tuples in the same order (same surviving
// occurrences under rdup/rdupT, same difference fragment order, same
// coalescing positions), and the same order annotation. The simulated cost
// accounting (work by site, transfers, tuples produced, operator counts)
// must also agree, since both executors compute it from the same formulas.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "api/engine.h"
#include "exec/evaluator.h"
#include "test_util.h"
#include "vexec/vexec.h"
#include "workload/generator.h"

namespace tqp {
namespace {

using testing_util::TemporalRel;

// ---- Helpers --------------------------------------------------------------

void ExpectListIdentical(const Relation& ref, const Relation& vec,
                         const std::string& label) {
  ASSERT_EQ(ref.schema().ToString(), vec.schema().ToString()) << label;
  ASSERT_EQ(ref.size(), vec.size()) << label;
  for (size_t i = 0; i < ref.size(); ++i) {
    ASSERT_EQ(ref.tuple(i), vec.tuple(i))
        << label << " row " << i << ": " << ref.tuple(i).ToString() << " vs "
        << vec.tuple(i).ToString();
    // Full-value identity, not just Compare-equality (0.0 vs -0.0 etc.).
    ASSERT_EQ(ref.tuple(i).ToString(), vec.tuple(i).ToString())
        << label << " row " << i;
  }
  EXPECT_EQ(SortSpecToString(ref.order()), SortSpecToString(vec.order()))
      << label;
}

void ExpectStatsAgree(const ExecStats& ref, const ExecStats& vec,
                      const std::string& label) {
  EXPECT_DOUBLE_EQ(ref.dbms_work, vec.dbms_work) << label;
  EXPECT_DOUBLE_EQ(ref.stratum_work, vec.stratum_work) << label;
  EXPECT_EQ(ref.tuples_transferred, vec.tuples_transferred) << label;
  EXPECT_EQ(ref.tuples_produced, vec.tuples_produced) << label;
  EXPECT_EQ(ref.op_counts, vec.op_counts) << label;
  // The batch counters exist only on the vectorized side.
  EXPECT_EQ(ref.vec_batches, 0) << label;
  EXPECT_EQ(ref.vec_materializations, 0) << label;
  EXPECT_GT(vec.vec_materializations, 0) << label;
  EXPECT_EQ(vec.vec_rows, vec.tuples_produced) << label;
}

/// Runs one plan through both executors under one config and compares.
void CheckPlanWithOptions(const PlanPtr& plan, const Catalog& catalog,
                          const EngineConfig& config, const std::string& label,
                          const VexecOptions& vopts) {
  ExecStats ref_stats, vec_stats;
  Result<Relation> ref = EvaluatePlan(plan, catalog, config, &ref_stats);
  Result<Relation> vec =
      ExecuteVectorizedPlan(plan, catalog, config, &vec_stats, vopts);
  ASSERT_EQ(ref.ok(), vec.ok()) << label << ": " << ref.status().ToString()
                                << " vs " << vec.status().ToString();
  if (!ref.ok()) {
    EXPECT_EQ(ref.status().message(), vec.status().message()) << label;
    return;
  }
  ExpectListIdentical(ref.value(), vec.value(), label);
  ExpectStatsAgree(ref_stats, vec_stats, label);
}

void CheckPlan(const PlanPtr& plan, const Catalog& catalog,
               const EngineConfig& config, const std::string& label,
               size_t batch_size = 1024) {
  VexecOptions vopts;
  vopts.batch_size = batch_size;
  CheckPlanWithOptions(plan, catalog, config, label, vopts);
}

/// The three engine configurations every plan is checked under.
std::vector<std::pair<std::string, EngineConfig>> Configs() {
  EngineConfig plain;
  EngineConfig scrambled;
  scrambled.dbms_scrambles_order = true;
  EngineConfig scrambled2;
  scrambled2.dbms_scrambles_order = true;
  scrambled2.scramble_seed = 0xabcdef12;
  return {{"plain", plain},
          {"scrambled", scrambled},
          {"scrambled-seed2", scrambled2}};
}

/// A messy temporal relation exercising duplicates, snapshot duplicates,
/// and adjacency.
Relation Messy(uint64_t seed, size_t n) {
  RelationGenParams p;
  p.cardinality = n;
  p.num_names = 6;
  p.num_categories = 3;
  p.time_horizon = 80;
  p.max_period_length = 14;
  p.duplicate_fraction = 0.25;
  p.adjacency_fraction = 0.3;
  p.overlap_fraction = 0.3;
  p.seed = seed;
  return GenerateRelation(p);
}

Relation MessyConventional(uint64_t seed, size_t n) {
  RelationGenParams p;
  p.cardinality = n;
  p.num_names = 5;
  p.num_categories = 3;
  p.duplicate_fraction = 0.35;
  p.temporal = false;
  p.seed = seed;
  return GenerateRelation(p);
}

/// A conventional relation with NULLs in every non-key column.
Relation WithNulls() {
  Schema s;
  s.Add(Attribute{"Name", ValueType::kString});
  s.Add(Attribute{"Cat", ValueType::kInt});
  s.Add(Attribute{"Val", ValueType::kInt});
  Relation r(s);
  auto add = [&](Value name, Value cat, Value val) {
    Tuple t;
    t.push_back(std::move(name));
    t.push_back(std::move(cat));
    t.push_back(std::move(val));
    r.Append(std::move(t));
  };
  add(Value::String("a"), Value::Int(1), Value::Int(10));
  add(Value::Null(), Value::Int(1), Value::Int(20));
  add(Value::String("b"), Value::Null(), Value::Null());
  add(Value::String("a"), Value::Int(1), Value::Null());
  add(Value::Null(), Value::Int(1), Value::Int(20));
  add(Value::String("b"), Value::Int(2), Value::Int(30));
  return r;
}

Catalog MakeCatalog(uint64_t seed) {
  Catalog catalog;
  TQP_CHECK(
      catalog.RegisterWithInferredFlags("R", Messy(seed, 40), Site::kDbms)
          .ok());
  TQP_CHECK(
      catalog
          .RegisterWithInferredFlags("S", Messy(seed + 101, 28), Site::kDbms)
          .ok());
  TQP_CHECK(catalog
                .RegisterWithInferredFlags(
                    "C", MessyConventional(seed + 7, 30), Site::kDbms)
                .ok());
  TQP_CHECK(catalog
                .RegisterWithInferredFlags(
                    "D", MessyConventional(seed + 13, 12), Site::kDbms)
                .ok());
  TQP_CHECK(
      catalog.RegisterWithInferredFlags("N", WithNulls(), Site::kDbms).ok());
  return catalog;
}

/// Every operator of Table 1 (plus transfers), as plan builders.
std::vector<std::pair<std::string, PlanPtr>> AllOperatorPlans() {
  auto R = [] { return PlanNode::Scan("R"); };
  auto S = [] { return PlanNode::Scan("S"); };
  auto C = [] { return PlanNode::Scan("C"); };
  auto D = [] { return PlanNode::Scan("D"); };
  auto N = [] { return PlanNode::Scan("N"); };
  ExprPtr pred = Expr::And(
      Expr::Compare(CompareOp::kLt, Expr::Attr("Cat"), Expr::Const(Value::Int(2))),
      Expr::Compare(CompareOp::kGt, Expr::Attr("Val"), Expr::Const(Value::Int(100))));
  ExprPtr name_eq = Expr::Compare(CompareOp::kEq, Expr::Attr("Name"),
                                  Expr::Const(Value::String("n3")));
  std::vector<ProjItem> proj = {
      ProjItem::Pass("Name"),
      ProjItem{Expr::Arith(ArithOp::kMul, Expr::Attr("Val"),
                           Expr::Const(Value::Int(2))),
               "V2"},
      ProjItem{Expr::Arith(ArithOp::kDiv, Expr::Attr("Val"),
                           Expr::Attr("Cat")),
               "VD"},
  };
  std::vector<AggSpec> aggs = {
      AggSpec{AggFunc::kCount, "", "n"},
      AggSpec{AggFunc::kSum, "Val", "s"},
      AggSpec{AggFunc::kMin, "Val", "lo"},
      AggSpec{AggFunc::kMax, "Val", "hi"},
      AggSpec{AggFunc::kAvg, "Val", "avg"},
  };
  SortSpec by_name_val = {{"Name", true}, {"Val", false}};

  std::vector<std::pair<std::string, PlanPtr>> plans;
  plans.emplace_back("scan", R());
  plans.emplace_back("select", PlanNode::Select(R(), pred));
  plans.emplace_back("select-string", PlanNode::Select(R(), name_eq));
  plans.emplace_back("project-arith", PlanNode::Project(C(), proj));
  plans.emplace_back("union-all", PlanNode::UnionAll(R(), S()));
  plans.emplace_back("union-max", PlanNode::Union(C(), D()));
  plans.emplace_back("difference", PlanNode::Difference(C(), D()));
  plans.emplace_back("product", PlanNode::Product(C(), D()));
  plans.emplace_back("aggregate",
                     PlanNode::Aggregate(C(), {"Name", "Cat"}, aggs));
  plans.emplace_back("aggregate-nulls",
                     PlanNode::Aggregate(N(), {"Name"}, aggs));
  plans.emplace_back("rdup", PlanNode::Rdup(C()));
  plans.emplace_back("rdup-temporal", PlanNode::Rdup(R()));
  plans.emplace_back("rdup-nulls", PlanNode::Rdup(N()));
  plans.emplace_back("sort", PlanNode::Sort(R(), by_name_val));
  plans.emplace_back("sort-nulls", PlanNode::Sort(N(), by_name_val));
  plans.emplace_back("product-t", PlanNode::ProductT(R(), S()));
  plans.emplace_back("difference-t", PlanNode::DifferenceT(R(), S()));
  plans.emplace_back("union-t", PlanNode::UnionT(R(), S()));
  plans.emplace_back("aggregate-t",
                     PlanNode::AggregateT(R(), {"Name"},
                                          {AggSpec{AggFunc::kCount, "", "n"},
                                           AggSpec{AggFunc::kSum, "Val", "s"}}));
  plans.emplace_back("rdup-t", PlanNode::RdupT(R()));
  plans.emplace_back("coalesce", PlanNode::Coalesce(R()));
  plans.emplace_back("transfer-pipeline",
                     PlanNode::Sort(PlanNode::Coalesce(PlanNode::TransferS(
                                        PlanNode::Select(R(), name_eq))),
                                    {{"Name", true}}));
  plans.emplace_back(
      "deep-pipeline",
      PlanNode::Sort(
          PlanNode::Coalesce(PlanNode::RdupT(PlanNode::Select(R(), pred))),
          by_name_val));
  plans.emplace_back(
      "join-pipeline",
      PlanNode::Sort(PlanNode::ProductT(PlanNode::Coalesce(R()),
                                        PlanNode::RdupT(S())),
                     {{"Name", true}}));
  // σ(equality ∧ residual)(C × D): the vectorized executor fuses this into a
  // partitioned hash join; the result must stay list-identical to the
  // unfused reference product + selection.
  ExprPtr equi = Expr::And(
      Expr::Compare(CompareOp::kEq, Expr::Attr("1.Name"), Expr::Attr("2.Name")),
      Expr::Compare(CompareOp::kLe, Expr::Attr("1.Val"), Expr::Attr("2.Val")));
  plans.emplace_back("equi-join",
                     PlanNode::Select(PlanNode::Product(C(), D()), equi));
  ExprPtr equi2 = Expr::And(
      Expr::Compare(CompareOp::kEq, Expr::Attr("1.Name"), Expr::Attr("2.Name")),
      Expr::Compare(CompareOp::kEq, Expr::Attr("1.Cat"), Expr::Attr("2.Cat")));
  plans.emplace_back(
      "equi-join-pipeline",
      PlanNode::Sort(PlanNode::Rdup(PlanNode::Select(
                         PlanNode::Product(PlanNode::Rdup(C()), D()), equi2)),
                     {{"1.Name", true}, {"1.Val", false}}));
  return plans;
}

// ---- The randomized A/B property suite ------------------------------------

TEST(VexecParity, AllOperatorsAllConfigsRandomized) {
  for (uint64_t seed : {1u, 2u, 3u, 4u, 5u}) {
    Catalog catalog = MakeCatalog(seed);
    for (const auto& [cfg_name, config] : Configs()) {
      for (const auto& [plan_name, plan] : AllOperatorPlans()) {
        CheckPlan(plan, catalog, config,
                  "seed " + std::to_string(seed) + "/" + cfg_name + "/" +
                      plan_name);
      }
    }
  }
}

TEST(VexecParity, BatchSizeNeverChangesResults) {
  Catalog catalog = MakeCatalog(17);
  EngineConfig scrambled;
  scrambled.dbms_scrambles_order = true;
  for (size_t batch : {1u, 3u, 7u, 64u, 100000u}) {
    for (const auto& [plan_name, plan] : AllOperatorPlans()) {
      CheckPlan(plan, catalog, scrambled,
                "batch " + std::to_string(batch) + "/" + plan_name, batch);
    }
  }
}

// The morsel-parallel and out-of-core paths obey the same contract as the
// serial in-memory path: any thread count × memory budget × batch size is
// list-identical to the reference evaluator, scramble on or off.
TEST(VexecParity, ThreadsAndBudgetsNeverChangeResults) {
  for (uint64_t seed : {11u, 12u}) {
    Catalog catalog = MakeCatalog(seed);
    for (const auto& [cfg_name, config] : Configs()) {
      for (size_t threads : {2u, 4u}) {
        for (uint64_t budget : {uint64_t{0}, uint64_t{512}}) {
          for (size_t batch : {7u, 1024u}) {
            VexecOptions vopts;
            vopts.batch_size = batch;
            vopts.threads = threads;
            // Tiny morsels so 40-row inputs still split across workers.
            vopts.morsel_rows = 8;
            vopts.memory_budget = budget;
            for (const auto& [plan_name, plan] : AllOperatorPlans()) {
              CheckPlanWithOptions(
                  plan, catalog, config,
                  "seed " + std::to_string(seed) + "/" + cfg_name + "/t" +
                      std::to_string(threads) + "/b" + std::to_string(budget) +
                      "/batch" + std::to_string(batch) + "/" + plan_name,
                  vopts);
            }
          }
        }
      }
    }
  }
}

// N-thread output is byte-identical to the serial vectorized run — the
// determinism contract is vexec-vs-vexec, not just vexec-vs-reference.
// The deterministic stats (everything but the morsel/steal telemetry) must
// agree too.
TEST(VexecParity, FourThreadOutputByteIdenticalToSerial) {
  Catalog catalog;
  TQP_CHECK(
      catalog.RegisterWithInferredFlags("R", Messy(41, 600), Site::kDbms)
          .ok());
  TQP_CHECK(
      catalog.RegisterWithInferredFlags("S", Messy(43, 400), Site::kDbms)
          .ok());
  EngineConfig config;
  config.dbms_scrambles_order = true;
  std::vector<std::pair<std::string, PlanPtr>> plans;
  plans.emplace_back(
      "deep",
      PlanNode::Sort(PlanNode::Coalesce(PlanNode::RdupT(PlanNode::Scan("R"))),
                     {{"Name", true}, {"Val", false}}));
  plans.emplace_back(
      "join",
      PlanNode::Sort(
          PlanNode::ProductT(PlanNode::Coalesce(PlanNode::Scan("R")),
                             PlanNode::RdupT(PlanNode::Scan("S"))),
          {{"1.Name", true}}));
  plans.emplace_back(
      "agg", PlanNode::AggregateT(PlanNode::Scan("R"), {"Name"},
                                  {AggSpec{AggFunc::kCount, "", "n"},
                                   AggSpec{AggFunc::kSum, "Val", "s"}}));
  for (const auto& [plan_name, plan] : plans) {
    for (uint64_t budget : {uint64_t{0}, uint64_t{4096}}) {
      VexecOptions serial;
      serial.memory_budget = budget;
      VexecOptions par = serial;
      par.threads = 4;
      par.morsel_rows = 64;
      ExecStats sstats, pstats;
      Result<Relation> s =
          ExecuteVectorizedPlan(plan, catalog, config, &sstats, serial);
      Result<Relation> p =
          ExecuteVectorizedPlan(plan, catalog, config, &pstats, par);
      const std::string label =
          plan_name + "/budget" + std::to_string(budget);
      ASSERT_TRUE(s.ok() && p.ok()) << label;
      ExpectListIdentical(s.value(), p.value(), label);
      EXPECT_DOUBLE_EQ(sstats.dbms_work, pstats.dbms_work) << label;
      EXPECT_DOUBLE_EQ(sstats.stratum_work, pstats.stratum_work) << label;
      EXPECT_EQ(sstats.tuples_produced, pstats.tuples_produced) << label;
      EXPECT_EQ(sstats.op_counts, pstats.op_counts) << label;
      EXPECT_EQ(sstats.vec_rows, pstats.vec_rows) << label;
      // Spill volume is deterministic; morsel/steal counts are telemetry.
      EXPECT_EQ(sstats.spill_bytes, pstats.spill_bytes) << label;
      EXPECT_EQ(sstats.spill_runs, pstats.spill_runs) << label;
      EXPECT_EQ(sstats.morsels, 0) << label;  // serial run never morselizes
      EXPECT_GT(pstats.morsels, 0) << label;
    }
  }
}

// Under a budget smaller than the materialized input the blocking operators
// must actually go out of core (nonzero spill counters) and still match the
// reference; with no budget they must never touch disk.
TEST(VexecParity, SpillCountersTrackOutOfCoreWork) {
  Catalog catalog;
  TQP_CHECK(
      catalog.RegisterWithInferredFlags("R", Messy(47, 500), Site::kDbms)
          .ok());
  EngineConfig config;
  std::vector<std::pair<std::string, PlanPtr>> plans;
  plans.emplace_back("sort", PlanNode::Sort(PlanNode::Scan("R"),
                                            {{"Name", true}, {"Val", false}}));
  plans.emplace_back("rdup", PlanNode::Rdup(PlanNode::Scan("R")));
  plans.emplace_back("coalesce", PlanNode::Coalesce(PlanNode::Scan("R")));
  plans.emplace_back("aggregate",
                     PlanNode::Aggregate(PlanNode::Scan("R"), {"Name", "Cat"},
                                         {AggSpec{AggFunc::kSum, "Val", "s"},
                                          AggSpec{AggFunc::kAvg, "Val", "a"}}));
  for (const auto& [plan_name, plan] : plans) {
    ExecStats ref_stats;
    Result<Relation> ref = EvaluatePlan(plan, catalog, config, &ref_stats);
    ASSERT_TRUE(ref.ok()) << plan_name;

    VexecOptions unbounded;
    ExecStats mem_stats;
    Result<Relation> mem =
        ExecuteVectorizedPlan(plan, catalog, config, &mem_stats, unbounded);
    ASSERT_TRUE(mem.ok()) << plan_name;
    ExpectListIdentical(ref.value(), mem.value(), plan_name + "/in-memory");
    EXPECT_EQ(mem_stats.spill_bytes, 0) << plan_name;
    EXPECT_EQ(mem_stats.spill_runs, 0) << plan_name;

    VexecOptions tiny;
    tiny.memory_budget = 1024;  // far below 500 materialized rows
    ExecStats spill_stats;
    Result<Relation> spilled =
        ExecuteVectorizedPlan(plan, catalog, config, &spill_stats, tiny);
    ASSERT_TRUE(spilled.ok()) << plan_name;
    ExpectListIdentical(ref.value(), spilled.value(), plan_name + "/spilled");
    EXPECT_GT(spill_stats.spill_bytes, 0) << plan_name;
    EXPECT_GT(spill_stats.spill_runs, 0) << plan_name;

    // Spilling composes with morsel parallelism.
    VexecOptions both = tiny;
    both.threads = 4;
    both.morsel_rows = 64;
    ExecStats both_stats;
    Result<Relation> b =
        ExecuteVectorizedPlan(plan, catalog, config, &both_stats, both);
    ASSERT_TRUE(b.ok()) << plan_name;
    ExpectListIdentical(ref.value(), b.value(), plan_name + "/spill+threads");
    EXPECT_EQ(both_stats.spill_bytes, spill_stats.spill_bytes) << plan_name;
    EXPECT_EQ(both_stats.spill_runs, spill_stats.spill_runs) << plan_name;
  }
}

TEST(VexecParity, EmptyInputs) {
  Catalog catalog;
  RelationGenParams p;
  p.cardinality = 0;
  TQP_CHECK(catalog
                .RegisterWithInferredFlags("R", GenerateRelation(p),
                                           Site::kDbms)
                .ok());
  p.temporal = false;
  TQP_CHECK(catalog
                .RegisterWithInferredFlags("C", GenerateRelation(p),
                                           Site::kDbms)
                .ok());
  EngineConfig config;
  CheckPlan(PlanNode::Coalesce(PlanNode::Scan("R")), catalog, config,
            "empty-coalesce");
  CheckPlan(PlanNode::Rdup(PlanNode::Scan("C")), catalog, config,
            "empty-rdup");
  CheckPlan(PlanNode::Aggregate(PlanNode::Scan("C"), {"Name"},
                                {AggSpec{AggFunc::kSum, "Val", "s"}}),
            catalog, config, "empty-aggregate");
  CheckPlan(PlanNode::ProductT(PlanNode::Scan("R"), PlanNode::Scan("R")),
            catalog, config, "empty-product-t");
}

// Value::Compare treats numerically equal int/double/time cells as EQUAL
// (Int(1) == Double(1.0)), and the reference keys value-equivalence classes
// and group tables on that comparison — so the vectorized hash tables must
// merge mixed-type numerically-equal keys exactly the same way.
TEST(VexecParity, MixedNumericTypesShareClassesAndGroups) {
  Schema s;
  s.Add(Attribute{"Name", ValueType::kString});
  s.Add(Attribute{"Cat", ValueType::kInt});
  s.Add(Attribute{kT1, ValueType::kTime});
  s.Add(Attribute{kT2, ValueType::kTime});
  Relation r(s);
  auto add = [&](const std::string& n, Value cat, TimePoint a, TimePoint b) {
    Tuple t;
    t.push_back(Value::String(n));
    t.push_back(std::move(cat));
    t.push_back(Value::Time(a));
    t.push_back(Value::Time(b));
    r.Append(std::move(t));
  };
  // Same class under Compare (Int(1) == Double(1.0)), adjacent periods:
  // coalT must merge across the type mix; rdupT/ℵT/\T must see one class.
  add("a", Value::Int(1), 1, 5);
  add("a", Value::Double(1.0), 5, 9);
  add("a", Value::Time(1), 9, 12);
  add("b", Value::Double(-0.0), 2, 6);
  add("b", Value::Int(0), 6, 8);
  add("b", Value::Double(0.0), 4, 7);
  Catalog catalog;
  TQP_CHECK(catalog.RegisterWithInferredFlags("M", r, Site::kDbms).ok());
  TQP_CHECK(
      catalog
          .RegisterWithInferredFlags("M2", Messy(3, 10), Site::kDbms)
          .ok());
  for (const auto& [cfg_name, config] : Configs()) {
    auto M = [] { return PlanNode::Scan("M"); };
    CheckPlan(PlanNode::Coalesce(M()), catalog, config,
              "mixed-coalesce/" + cfg_name);
    CheckPlan(PlanNode::RdupT(M()), catalog, config,
              "mixed-rdupt/" + cfg_name);
    CheckPlan(PlanNode::AggregateT(M(), {"Cat"},
                                   {AggSpec{AggFunc::kCount, "", "n"}}),
              catalog, config, "mixed-aggregate-t/" + cfg_name);
    CheckPlan(PlanNode::Aggregate(M(), {"Cat"},
                                  {AggSpec{AggFunc::kCount, "", "n"},
                                   AggSpec{AggFunc::kMin, "Cat", "lo"}}),
              catalog, config, "mixed-aggregate/" + cfg_name);
    CheckPlan(PlanNode::DifferenceT(M(), M()), catalog, config,
              "mixed-difference-t/" + cfg_name);
  }
}

// rdupT's in-place replacement discipline on the exact Figure 3 input.
TEST(VexecParity, FigureThreeRdupT) {
  Schema s;
  s.Add(Attribute{"EmpName", ValueType::kString});
  s.Add(Attribute{kT1, ValueType::kTime});
  s.Add(Attribute{kT2, ValueType::kTime});
  Relation r1(s);
  auto add = [&](const std::string& n, TimePoint a, TimePoint b) {
    Tuple t;
    t.push_back(Value::String(n));
    t.push_back(Value::Time(a));
    t.push_back(Value::Time(b));
    r1.Append(std::move(t));
  };
  add("John", 1, 8);
  add("John", 6, 11);
  add("Anna", 2, 6);
  add("Anna", 2, 6);
  add("Anna", 6, 12);
  Catalog catalog;
  TQP_CHECK(catalog.RegisterWithInferredFlags("R1", r1, Site::kDbms).ok());
  for (const auto& [cfg_name, config] : Configs()) {
    CheckPlan(PlanNode::RdupT(PlanNode::Scan("R1")), catalog, config,
              "fig3-rdupt/" + cfg_name);
    CheckPlan(PlanNode::Coalesce(PlanNode::Scan("R1")), catalog, config,
              "fig3-coalesce/" + cfg_name);
  }
}

// ---- Engine wiring ---------------------------------------------------------

TEST(VexecEngine, VectorizedExecutorMatchesReferenceThroughEngine) {
  const std::vector<std::string> queries = {
      "VALIDTIME SELECT DISTINCT Name FROM R ORDER BY Name ASC",
      "VALIDTIME COALESCED SELECT DISTINCT Name FROM R",
      "SELECT Name FROM R UNION SELECT Name FROM S",
      "SELECT Cat, COUNT(*) AS n FROM R GROUP BY Cat ORDER BY Cat",
      "SELECT Name, Val FROM C WHERE Val > 200 ORDER BY Val DESC",
  };
  Catalog catalog = MakeCatalog(23);

  EngineOptions ref_opts;
  ASSERT_EQ(ref_opts.executor, ExecutorKind::kReference);  // the default
  EngineOptions vec_opts;
  vec_opts.executor = ExecutorKind::kVectorized;
  Engine ref_engine(catalog, ref_opts);
  Engine vec_engine(catalog, vec_opts);

  for (const std::string& q : queries) {
    Result<QueryResult> ref = ref_engine.Query(q);
    Result<QueryResult> vec = vec_engine.Query(q);
    ASSERT_TRUE(ref.ok()) << q << ": " << ref.status().ToString();
    ASSERT_TRUE(vec.ok()) << q << ": " << vec.status().ToString();
    ExpectListIdentical(ref->relation, vec->relation, q);
    EXPECT_EQ(ref->plan_fingerprint, vec->plan_fingerprint) << q;
    ExpectStatsAgree(ref->exec, vec->exec, q);
    // The execution stats are surfaced to the caller on both paths.
    EXPECT_GT(ref->exec.tuples_produced, 0) << q;
    EXPECT_GT(vec->exec.vec_batches, 0) << q;
  }
}

TEST(VexecEngine, ScrambledDbmsMatchesThroughEngineToo) {
  Catalog catalog = MakeCatalog(29);
  EngineOptions ref_opts;
  ref_opts.engine.dbms_scrambles_order = true;
  EngineOptions vec_opts = ref_opts;
  vec_opts.executor = ExecutorKind::kVectorized;
  vec_opts.vexec_batch_size = 33;
  Engine ref_engine(catalog, ref_opts);
  Engine vec_engine(catalog, vec_opts);
  const std::string q =
      "VALIDTIME SELECT DISTINCT Name FROM R ORDER BY Name ASC";
  Result<QueryResult> ref = ref_engine.Query(q);
  Result<QueryResult> vec = vec_engine.Query(q);
  ASSERT_TRUE(ref.ok() && vec.ok());
  ExpectListIdentical(ref->relation, vec->relation, q);
}

TEST(VexecEngine, ThreadsAndBudgetFlowThroughEngineOptions) {
  Catalog catalog = MakeCatalog(31);
  EngineOptions ref_opts;
  EngineOptions vec_opts;
  vec_opts.executor = ExecutorKind::kVectorized;
  vec_opts.vexec_threads = 4;
  vec_opts.vexec_memory_budget = 1024;
  Engine ref_engine(catalog, ref_opts);
  Engine vec_engine(catalog, vec_opts);
  const std::string q =
      "VALIDTIME SELECT DISTINCT Name FROM R ORDER BY Name ASC";
  Result<QueryResult> ref = ref_engine.Query(q);
  Result<QueryResult> vec = vec_engine.Query(q);
  ASSERT_TRUE(ref.ok() && vec.ok());
  ExpectListIdentical(ref->relation, vec->relation, q);
  // The budget reached the executor: the sort of 40 messy rows exceeds 1 KiB.
  EXPECT_GT(vec->exec.spill_bytes, 0);
  EXPECT_EQ(ref->exec.spill_bytes, 0);
}

}  // namespace
}  // namespace tqp
