// End-to-end integration: the paper's running example through the full
// stack — TQL text → initial algebra (Figure 2(a)) → enumeration/cost-based
// optimization → simulated layered execution → the exact Figure 1 result.
#include <gtest/gtest.h>

#include "algebra/printer.h"
#include "core/equivalence.h"
#include "exec/evaluator.h"
#include "opt/optimizer.h"
#include "tql/translator.h"
#include "workload/paper_example.h"

namespace tqp {
namespace {

TEST(PaperExampleTest, FixturesMatchFigureOne) {
  Relation emp = PaperEmployee();
  Relation prj = PaperProject();
  ASSERT_EQ(emp.size(), 5u);
  ASSERT_EQ(prj.size(), 8u);
  EXPECT_EQ(emp.tuple(0).at(0).AsString(), "John");
  EXPECT_EQ(TuplePeriod(emp.tuple(0), emp.schema()), Period(1, 8));
  // EMPLOYEE projected on EmpName has snapshot duplicates (John at time 6).
  EXPECT_FALSE(emp.HasSnapshotDuplicates());  // full tuples are fine
  EXPECT_EQ(PaperExpectedResult().size(), 10u);
}

TEST(PaperExampleTest, InitialPlanEvaluatesToTheExpectedResult) {
  Catalog catalog = PaperCatalog();
  Result<AnnotatedPlan> ann =
      AnnotatedPlan::Make(PaperInitialPlan(), &catalog, PaperContract());
  ASSERT_TRUE(ann.ok()) << ann.status().message();
  Result<Relation> out = Evaluate(ann.value(), EngineConfig{});
  ASSERT_TRUE(out.ok());
  EXPECT_TRUE(EquivalentAsLists(out.value(), PaperExpectedResult()))
      << out->ToTable("got") << PaperExpectedResult().ToTable("expected");
}

TEST(PaperExampleTest, FullStackTqlToResult) {
  Catalog catalog = PaperCatalog();
  Result<TranslatedQuery> q = CompileQuery(PaperQueryText(), catalog);
  ASSERT_TRUE(q.ok()) << q.status().message();

  std::vector<Rule> rules = DefaultRuleSet();
  OptimizerOptions options;
  options.enumeration.max_plans = 4000;
  Result<OptimizeResult> opt =
      Optimize(q->plan, catalog, q->contract, rules, options);
  ASSERT_TRUE(opt.ok()) << opt.status().message();
  EXPECT_LT(opt->best_cost, opt->initial_cost);

  EngineConfig engine;
  engine.dbms_scrambles_order = true;  // honest DBMS order semantics
  Result<AnnotatedPlan> ann =
      AnnotatedPlan::Make(opt->best_plan, &catalog, q->contract);
  ASSERT_TRUE(ann.ok());
  Result<Relation> out = Evaluate(ann.value(), engine);
  ASSERT_TRUE(out.ok());

  // The user-visible contract: the EmpName column sequence matches the
  // paper's table exactly, and the rows agree as multisets.
  Relation expected = PaperExpectedResult();
  EXPECT_TRUE(EquivalentAsMultisets(out.value(), expected))
      << out->ToTable("got") << expected.ToTable("expected");
  EXPECT_TRUE(
      EquivalentAsListsOn(q->contract.order_by, out.value(), expected));
}

TEST(PaperExampleTest, OptimizedPlanIsCheaperInSimulatedExecution) {
  Catalog catalog = PaperCatalog();
  // Use the scaled relations so the work difference is macroscopic.
  Catalog scaled;
  TQP_CHECK(scaled
                .RegisterWithInferredFlags("EMPLOYEE", ScaledEmployee(60),
                                           Site::kDbms)
                .ok());
  TQP_CHECK(scaled
                .RegisterWithInferredFlags("PROJECT", ScaledProject(60),
                                           Site::kDbms)
                .ok());

  Result<TranslatedQuery> q = CompileQuery(PaperQueryText(), scaled);
  ASSERT_TRUE(q.ok());
  std::vector<Rule> rules = DefaultRuleSet();
  OptimizerOptions options;
  options.enumeration.max_plans = 3000;
  Result<OptimizeResult> opt =
      Optimize(q->plan, scaled, q->contract, rules, options);
  ASSERT_TRUE(opt.ok());

  ExecStats initial_stats, best_stats;
  Result<AnnotatedPlan> a = AnnotatedPlan::Make(q->plan, &scaled, q->contract);
  Result<AnnotatedPlan> b =
      AnnotatedPlan::Make(opt->best_plan, &scaled, q->contract);
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_TRUE(Evaluate(a.value(), EngineConfig{}, &initial_stats).ok());
  ASSERT_TRUE(Evaluate(b.value(), EngineConfig{}, &best_stats).ok());
  EXPECT_LT(best_stats.total_work(), initial_stats.total_work())
      << "optimized plan:\n"
      << PrintPlan(opt->best_plan);

  // Both plans must agree on the result.
  Result<Relation> r1 = Evaluate(a.value(), EngineConfig{});
  Result<Relation> r2 = Evaluate(b.value(), EngineConfig{});
  ASSERT_TRUE(r1.ok() && r2.ok());
  EXPECT_TRUE(EquivalentAsMultisets(r1.value(), r2.value()));
}

TEST(PaperExampleTest, ResultIsSortedCoalescedAndSnapshotDuplicateFree) {
  // The user-required format of Section 2.1.
  Catalog catalog = PaperCatalog();
  Result<TranslatedQuery> q = CompileQuery(PaperQueryText(), catalog);
  ASSERT_TRUE(q.ok());
  Result<AnnotatedPlan> ann =
      AnnotatedPlan::Make(q->plan, &catalog, q->contract);
  ASSERT_TRUE(ann.ok());
  Result<Relation> out = Evaluate(ann.value(), EngineConfig{});
  ASSERT_TRUE(out.ok());
  EXPECT_TRUE(out->IsSortedBy({SortKey{"EmpName", true}}));
  EXPECT_TRUE(out->IsCoalesced());
  EXPECT_FALSE(out->HasSnapshotDuplicates());
}

}  // namespace
}  // namespace tqp
