// Verification of the transformation-rule catalogue (Section 4, Figure 4).
//
// Every rule's equivalence type is a *tested claim*: a pool of scenarios is
// built so that each rule's left-hand side matches somewhere; each match is
// applied, both plans are evaluated, and the claimed equivalence must hold
// on the results. A coverage assertion guarantees no rule goes untested.
// Targeted tests additionally exhibit the paper's negative claims (where a
// stronger equivalence does NOT hold).
#include <gtest/gtest.h>

#include <map>

#include "core/equivalence.h"
#include "exec/evaluator.h"
#include "rules/rules.h"
#include "test_util.h"
#include "workload/generator.h"

namespace tqp {
namespace {

struct Scenario {
  std::string name;
  PlanPtr plan;
  QueryContract contract = QueryContract::Multiset();
};

ExprPtr NamePred(const char* value) {
  return Expr::Compare(CompareOp::kEq, Expr::Attr("Name"),
                       Expr::Const(Value::String(value)));
}

ExprPtr CatPred(int64_t v) {
  return Expr::Compare(CompareOp::kLe, Expr::Attr("Cat"),
                       Expr::Const(Value::Int(v)));
}

ExprPtr TimePred(TimePoint v) {
  return Expr::Compare(CompareOp::kGe, Expr::Attr(kT1),
                       Expr::Const(Value::Int(v)));
}

std::vector<ProjItem> NameValItems() {
  return {ProjItem::Pass("Name"), ProjItem::Pass("Val")};
}

std::vector<ProjItem> NameTimeItems() {
  return {ProjItem::Pass("Name"), ProjItem::Pass(kT1), ProjItem::Pass(kT2)};
}

// Builds the shared catalog for one seed. All relations except the DB*
// family live at the stratum so plans need no transfers.
Catalog BuildCatalog(uint64_t seed) {
  Catalog catalog;
  auto must = [](const Status& s) { TQP_CHECK(s.ok()); };

  Relation conv1 = testing_util::RandomConventional(seed);
  Relation conv2 = testing_util::RandomConventional(seed + 17);
  Relation temp1 = testing_util::RandomTemporal(seed + 31);
  Relation temp2 = testing_util::RandomTemporal(seed + 47);
  must(catalog.RegisterWithInferredFlags("CONV1", conv1, Site::kStratum));
  must(catalog.RegisterWithInferredFlags("CONV2", conv2, Site::kStratum));
  must(catalog.RegisterWithInferredFlags("TEMP1", temp1, Site::kStratum));
  must(catalog.RegisterWithInferredFlags("TEMP2", temp2, Site::kStratum));

  must(catalog.RegisterWithInferredFlags(
      "CONV_DF", EvalRdup(conv1, conv1.schema()), Site::kStratum));
  must(catalog.RegisterWithInferredFlags("TCLEAN1", EvalRdupT(temp1),
                                         Site::kStratum));
  must(catalog.RegisterWithInferredFlags("TCLEAN2", EvalRdupT(temp2),
                                         Site::kStratum));
  must(catalog.RegisterWithInferredFlags(
      "TCOAL", EvalCoalesce(EvalRdupT(temp1)), Site::kStratum));

  CatalogEntry sorted;
  sorted.data = EvalSort(conv1, {{"Name", true}});
  sorted.order = {{"Name", true}};
  sorted.site = Site::kStratum;
  must(catalog.Register("CONV_SORTED", sorted));

  // Distinct-attribute relations for associativity (no name clashes).
  auto single_int = [seed](const char* attr, uint64_t salt) {
    Schema s;
    s.Add(Attribute{attr, ValueType::kInt});
    Relation r(s);
    Rng rng(seed * 131 + salt);
    for (int i = 0; i < 5; ++i) {
      Tuple t;
      t.push_back(Value::Int(static_cast<int64_t>(rng.Below(6))));
      r.Append(std::move(t));
    }
    return r;
  };
  must(catalog.RegisterWithInferredFlags("X", single_int("A", 1),
                                         Site::kStratum));
  must(catalog.RegisterWithInferredFlags("Y", single_int("B", 2),
                                         Site::kStratum));
  must(catalog.RegisterWithInferredFlags("Z", single_int("C", 3),
                                         Site::kStratum));

  // DBMS-site copies for transfer-rule scenarios.
  must(catalog.RegisterWithInferredFlags(
      "DB1", testing_util::RandomConventional(seed + 5), Site::kDbms));
  must(catalog.RegisterWithInferredFlags(
      "DB2", testing_util::RandomConventional(seed + 6), Site::kDbms));
  must(catalog.RegisterWithInferredFlags(
      "DBT", testing_util::RandomTemporal(seed + 7), Site::kDbms));
  must(catalog.RegisterWithInferredFlags(
      "STR1", testing_util::RandomConventional(seed + 8), Site::kStratum));
  return catalog;
}

std::vector<Scenario> BuildScenarios(const Catalog& catalog) {
  using P = PlanNode;
  std::vector<Scenario> out;
  auto add = [&out](const std::string& name, PlanPtr plan) {
    out.push_back(Scenario{name, std::move(plan)});
  };

  PlanPtr conv1 = P::Scan("CONV1");
  PlanPtr conv2 = P::Scan("CONV2");
  PlanPtr temp1 = P::Scan("TEMP1");
  PlanPtr temp2 = P::Scan("TEMP2");
  PlanPtr tclean1 = P::Scan("TCLEAN1");
  PlanPtr tclean2 = P::Scan("TCLEAN2");

  std::vector<AggSpec> aggs = {AggSpec{AggFunc::kCount, "", "cnt"},
                               AggSpec{AggFunc::kSum, "Val", "total"}};
  std::vector<AggSpec> minmax = {AggSpec{AggFunc::kMax, "Val", "mx"}};

  // --- D rules ---
  add("rdup(dup-free)", P::Rdup(P::Scan("CONV_DF")));
  add("rdup(any)", P::Rdup(conv1));
  add("rdupT(clean)", P::RdupT(tclean1));
  add("rdupT(any)", P::RdupT(temp1));
  add("rdup(union)", P::Rdup(P::Union(conv1, conv2)));
  add("union(rdup,rdup)", P::Union(P::Rdup(conv1), P::Rdup(conv2)));
  add("rdupT(unionT)", P::RdupT(P::UnionT(temp1, temp2)));
  add("unionT(rdupT,rdupT)", P::UnionT(P::RdupT(temp1), P::RdupT(temp2)));

  // --- C rules ---
  add("coalT(coalesced)", P::Coalesce(P::Scan("TCOAL")));
  add("coalT(any)", P::Coalesce(temp1));
  add("coalT(select)", P::Coalesce(P::Select(temp1, NamePred("n1"))));
  add("select(coalT)", P::Select(P::Coalesce(temp1), NamePred("n1")));
  add("project(coalT)",
      P::Project(P::Coalesce(temp1), NameValItems()));
  add("coalT(unionall(coalT,coalT))",
      P::Coalesce(P::UnionAll(P::Coalesce(temp1), P::Coalesce(temp2))));
  add("coalT(unionT(coalT,coalT))",
      P::Coalesce(P::UnionT(P::Coalesce(temp1), P::Coalesce(temp2))));
  add("coalT(aggT(coalT))",
      P::Coalesce(P::AggregateT(P::Coalesce(temp1), {"Name"}, aggs)));
  add("coalT(project(coalT(clean)))",
      P::Coalesce(P::Project(P::Coalesce(tclean1), NameTimeItems())));
  // Permutation projection: the C8 shape with its strengthened precondition.
  add("coalT(permutation(coalT(clean)))",
      P::Coalesce(P::Project(
          P::Coalesce(tclean1),
          {ProjItem::Pass("Val"), ProjItem::Pass("Name"),
           ProjItem::Pass("Cat"), ProjItem::Pass(kT1), ProjItem::Pass(kT2)})));
  add("coalT(project(coalT(messy)))",
      P::Coalesce(P::Project(P::Coalesce(temp1), NameTimeItems())));
  add("coalT(diffT(clean))", P::Coalesce(P::DifferenceT(tclean1, temp2)));
  add("diffT(coalT(clean),coalT)",
      P::DifferenceT(P::Coalesce(tclean1), P::Coalesce(temp2)));

  // C9/B2: productT with the timestamp-dropping projection.
  {
    Catalog* mutable_catalog = nullptr;
    (void)mutable_catalog;
    PlanPtr prod = P::ProductT(tclean1, tclean2);
    // Enumerate the product schema to build the projection.
    std::vector<Schema> child_schemas = {
        catalog.Find("TCLEAN1")->data.schema(),
        catalog.Find("TCLEAN2")->data.schema()};
    Result<Schema> ps = DeriveSchema(*prod, child_schemas, catalog);
    TQP_CHECK(ps.ok());
    std::vector<ProjItem> items;
    for (const Attribute& a : ps->attrs()) {
      if (a.name == "1.T1" || a.name == "1.T2" || a.name == "2.T1" ||
          a.name == "2.T2") {
        continue;
      }
      items.push_back(ProjItem::Pass(a.name));
    }
    add("coalT(project(productT))",
        P::Coalesce(P::Project(prod, items)));
    PlanPtr messy_prod = P::ProductT(temp1, temp2);
    add("coalT(project(productT(messy)))",
        P::Coalesce(P::Project(messy_prod, items)));
  }

  // --- S rules ---
  add("sort(prefix-sorted)",
      P::Sort(P::Scan("CONV_SORTED"), {{"Name", true}}));
  add("sort(any)", P::Sort(conv1, {{"Val", false}}));
  add("sort(sort)",
      P::Sort(P::Sort(conv1, {{"Name", true}}),
              {{"Name", true}, {"Val", true}}));

  // --- P rules ---
  add("select(select)", P::Select(P::Select(conv1, CatPred(2)),
                                  NamePred("n2")));
  add("select(and)",
      P::Select(conv1, Expr::And(NamePred("n1"), CatPred(2))));
  add("select(project)",
      P::Select(P::Project(conv1, NameValItems()), NamePred("n0")));
  add("select(product)-left",
      P::Select(P::Product(conv1, P::Scan("X")), NamePred("n1")));
  add("select(product)-right",
      P::Select(P::Product(P::Scan("X"), conv2), NamePred("n1")));
  add("select(productT)",
      P::Select(P::ProductT(temp1, temp2),
                Expr::Compare(CompareOp::kEq, Expr::Attr("1.Name"),
                              Expr::Const(Value::String("n1")))));
  add("select(productT)-right",
      P::Select(P::ProductT(temp1, temp2),
                Expr::Compare(CompareOp::kEq, Expr::Attr("2.Name"),
                              Expr::Const(Value::String("n1")))));
  add("select(unionall)",
      P::Select(P::UnionAll(conv1, conv2), NamePred("n1")));
  add("select(union)", P::Select(P::Union(conv1, conv2), NamePred("n1")));
  add("select(unionT)", P::Select(P::UnionT(temp1, temp2), NamePred("n1")));
  add("select(difference)",
      P::Select(P::Difference(conv1, conv2), NamePred("n1")));
  add("select(differenceT)",
      P::Select(P::DifferenceT(temp1, temp2), NamePred("n1")));
  add("select(rdup(temporal))",
      P::Select(P::Rdup(temp1),
                Expr::Compare(CompareOp::kGe, Expr::Attr("1.T1"),
                              Expr::Const(Value::Int(10)))));
  add("select(rdupT)", P::Select(P::RdupT(temp1), NamePred("n1")));
  add("select(rdupT)-timepred", P::Select(P::RdupT(temp1), TimePred(10)));
  add("select(agg)",
      P::Select(P::Aggregate(conv1, {"Name"}, aggs), NamePred("n1")));
  add("select(aggT)",
      P::Select(P::AggregateT(temp1, {"Name"}, aggs), NamePred("n1")));

  // --- J rules ---
  add("project(project)",
      P::Project(P::Project(conv1, NameValItems()),
                 {ProjItem::Pass("Name"),
                  ProjItem{Expr::Arith(ArithOp::kAdd, Expr::Attr("Val"),
                                       Expr::Const(Value::Int(1))),
                           "ValPlus"}}));
  add("project(unionall)",
      P::Project(P::UnionAll(conv1, conv2), NameValItems()));
  add("unionall(project,project)",
      P::UnionAll(P::Project(conv1, NameValItems()),
                  P::Project(conv2, NameValItems())));

  // --- A rules ---
  add("product", P::Product(conv1, conv2));
  add("productT", P::ProductT(temp1, temp2));
  add("product-assoc-left",
      P::Product(P::Product(P::Scan("X"), P::Scan("Y")), P::Scan("Z")));
  add("product-assoc-right",
      P::Product(P::Scan("X"), P::Product(P::Scan("Y"), P::Scan("Z"))));
  add("unionall", P::UnionAll(conv1, conv2));
  add("unionall-assoc",
      P::UnionAll(P::UnionAll(conv1, conv2), P::Scan("CONV_DF")));
  add("union", P::Union(conv1, conv2));
  add("unionT", P::UnionT(temp1, temp2));

  // --- F rules ---
  add("diff(diff)",
      P::Difference(P::Difference(conv1, conv2), P::Scan("CONV_DF")));
  add("diff(unionall)",
      P::Difference(conv1, P::UnionAll(conv2, P::Scan("CONV_DF"))));
  add("diffT(diffT(clean))",
      P::DifferenceT(P::DifferenceT(tclean1, temp2), P::Scan("TCOAL")));

  // --- G rules ---
  add("rdup(product)", P::Rdup(P::Product(conv1, conv2)));
  add("rdup(rdup)", P::Rdup(P::Rdup(conv1)));
  add("rdupT(rdupT)", P::RdupT(P::RdupT(temp1)));
  add("coalT(coalT)", P::Coalesce(P::Coalesce(temp1)));
  add("rdupT(coalT(rdupT))", P::RdupT(P::Coalesce(P::RdupT(temp1))));

  // --- SP rules ---
  add("sort(select)", P::Sort(P::Select(conv1, CatPred(2)), {{"Name", true}}));
  add("select(sort)", P::Select(P::Sort(conv1, {{"Name", true}}), CatPred(2)));
  add("sort(project)",
      P::Sort(P::Project(conv1, {ProjItem::Rename("Name", "N"),
                                 ProjItem::Pass("Val")}),
              {{"N", true}}));
  add("sort(product)",
      P::Sort(P::Product(conv1, P::Scan("X")), {{"Name", true}}));
  add("sort(difference)",
      P::Sort(P::Difference(conv1, conv2), {{"Name", true}}));
  add("sort(differenceT)",
      P::Sort(P::DifferenceT(temp1, temp2), {{"Name", true}}));
  add("sort(rdup(temporal))", P::Sort(P::Rdup(temp1), {{"1.T1", true}}));
  add("sort(rdupT)", P::Sort(P::RdupT(temp1), {{"Name", true}}));
  add("sort(coalT)", P::Sort(P::Coalesce(temp1), {{"Name", true}}));
  add("sort(agg)",
      P::Sort(P::Aggregate(conv1, {"Name"}, aggs), {{"Name", true}}));
  add("sort(aggT)",
      P::Sort(P::AggregateT(temp1, {"Name"}, minmax), {{"Name", true}}));

  // --- T rules (DBMS-site relations) ---
  PlanPtr db1 = P::Scan("DB1");
  PlanPtr db2 = P::Scan("DB2");
  PlanPtr dbt = P::Scan("DBT");
  add("TS(select(db))", P::TransferS(P::Select(db1, CatPred(2))));
  add("select(TS(db))", P::Select(P::TransferS(db1), CatPred(2)));
  add("TS(sort(db))", P::TransferS(P::Sort(db1, {{"Name", true}})));
  add("sort(TS(db))", P::Sort(P::TransferS(db1), {{"Name", true}}));
  add("TS(rdupT(dbt))", P::TransferS(P::RdupT(dbt)));
  add("coalT(TS(dbt))", P::Coalesce(P::TransferS(dbt)));
  add("TS(product(db,db))", P::TransferS(P::Product(db1, db2)));
  add("diff(TS,TS)",
      P::Difference(P::TransferS(db1), P::TransferS(db2)));
  add("TS(TD(str))", P::TransferS(P::TransferD(P::Scan("STR1"))));
  add("TD(TS(db))", P::TransferD(P::TransferS(db1)));
  add("TD(select(str))", P::TransferD(P::Select(P::Scan("STR1"), CatPred(2))));
  add("select(TD(str))", P::Select(P::TransferD(P::Scan("STR1")), CatPred(2)));

  // Contract-bearing scenario for the sort-insertion expanding rule.
  out.push_back(Scenario{"ordered-context", P::Select(conv1, CatPred(2)),
                         QueryContract::List({{"Name", true}})});
  return out;
}

class RuleVerificationTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RuleVerificationTest, EveryRuleHoldsItsClaimedEquivalence) {
  uint64_t seed = GetParam();
  Catalog catalog = BuildCatalog(seed);
  std::vector<Scenario> scenarios = BuildScenarios(catalog);

  RuleSetOptions rule_opts;
  rule_opts.expanding_rules = true;  // verify those too
  std::vector<Rule> rules = DefaultRuleSet(rule_opts);

  EngineConfig engine;
  engine.dbms_scrambles_order = true;  // make DBMS order honesty-checked

  std::map<std::string, int> applications;
  for (const Rule& rule : rules) applications[rule.id()] = 0;

  for (const Scenario& scenario : scenarios) {
    Result<AnnotatedPlan> ann =
        AnnotatedPlan::Make(scenario.plan, &catalog, scenario.contract);
    ASSERT_TRUE(ann.ok()) << scenario.name << ": " << ann.status().message();

    std::vector<PlanPtr> nodes;
    CollectNodes(scenario.plan, &nodes);
    for (const Rule& rule : rules) {
      for (const PlanPtr& node : nodes) {
        std::optional<RuleMatch> match = rule.TryApply(node, ann.value());
        if (!match.has_value()) continue;
        // A rule's equivalence claim relates the two sides *at the matched
        // location* (the effect at the root is exactly what the Figure 5
        // property gating governs, tested separately). So evaluate the
        // location subtree before and after the rewrite.
        Result<AnnotatedPlan> lhs_ann =
            AnnotatedPlan::Make(node, &catalog, QueryContract::Multiset());
        ASSERT_TRUE(lhs_ann.ok()) << rule.id() << " at " << scenario.name;
        Result<Relation> lhs = Evaluate(lhs_ann.value(), engine);
        ASSERT_TRUE(lhs.ok()) << rule.id() << " at " << scenario.name;

        Result<AnnotatedPlan> rhs_ann = AnnotatedPlan::Make(
            match->replacement, &catalog, QueryContract::Multiset());
        ASSERT_TRUE(rhs_ann.ok())
            << rule.id() << " at " << scenario.name << ": "
            << rhs_ann.status().message();
        Result<Relation> rhs = Evaluate(rhs_ann.value(), engine);
        ASSERT_TRUE(rhs.ok()) << rule.id() << " at " << scenario.name;

        EXPECT_TRUE(Equivalent(rule.equivalence(), lhs.value(), rhs.value()))
            << "rule " << rule.id() << " (" << rule.description()
            << ") violated its claimed "
            << EquivalenceTypeName(rule.equivalence()) << " at scenario '"
            << scenario.name << "', seed " << seed << "\nLHS:\n"
            << lhs->ToTable() << "RHS:\n"
            << rhs->ToTable();

        // The whole-plan rewrite must still produce a well-formed plan.
        PlanPtr rewritten =
            ReplaceNode(scenario.plan, node.get(), match->replacement);
        EXPECT_TRUE(
            AnnotatedPlan::Make(rewritten, &catalog, scenario.contract).ok())
            << rule.id() << " at " << scenario.name;
        ++applications[rule.id()];
      }
    }
  }

  for (const auto& [id, count] : applications) {
    EXPECT_GE(count, 1) << "rule " << id
                        << " was never exercised by any scenario";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RuleVerificationTest,
                         ::testing::Values(1, 2, 3, 4, 5));

// ---- Negative claims: the paper's "only ≡X holds" statements -------------

TEST(RuleNegativeTest, C2DoesNotPreserveMultisets) {
  // coalT(r) ≡SM r but in general not ≡M: adjacent fragments merge.
  Relation r = testing_util::TemporalRel({{"a", 1, 0, 3}, {"a", 1, 3, 6}});
  Relation out = EvalCoalesce(r);
  EXPECT_TRUE(SnapshotEquivalentAsMultisets(out, r));
  EXPECT_FALSE(EquivalentAsMultisets(out, r));
}

TEST(RuleNegativeTest, D4DoesNotPreserveSnapshotMultisets) {
  // rdupT(r) ≡SS r but not ≡SM when snapshots carry duplicates.
  Relation r = testing_util::TemporalRel({{"a", 1, 0, 6}, {"a", 1, 2, 8}});
  Relation out = EvalRdupT(r);
  EXPECT_TRUE(SnapshotEquivalentAsSets(out, r));
  EXPECT_FALSE(SnapshotEquivalentAsMultisets(out, r));
}

TEST(RuleNegativeTest, RdupTIsOrderSensitive) {
  // Section 6: multiset-equivalent inputs can produce results that are not
  // multiset equivalent.
  Relation a = testing_util::TemporalRel({{"a", 1, 0, 5}, {"a", 1, 3, 8}});
  Relation b = testing_util::TemporalRel({{"a", 1, 3, 8}, {"a", 1, 0, 5}});
  ASSERT_TRUE(EquivalentAsMultisets(a, b));
  EXPECT_FALSE(EquivalentAsMultisets(EvalRdupT(a), EvalRdupT(b)));
  // But the outputs are snapshot-set equivalent.
  EXPECT_TRUE(SnapshotEquivalentAsSets(EvalRdupT(a), EvalRdupT(b)));
}

TEST(RuleNegativeTest, C10NeedsSnapshotDuplicateFreeLeft) {
  // With snapshot duplicates in the left argument, the two sides of C10 can
  // disagree even as snapshot multisets only under coalescing of duplicates;
  // verify they still agree as snapshot multisets (B3) but show ≡M may fail.
  Relation l = testing_util::TemporalRel(
      {{"a", 1, 0, 4}, {"a", 1, 4, 8}, {"a", 1, 2, 6}});
  Relation r = testing_util::TemporalRel({{"a", 1, 3, 5}});
  Relation lhs = EvalCoalesce(EvalDifferenceT(l, r));
  Relation rhs = EvalDifferenceT(EvalCoalesce(l), EvalCoalesce(r));
  EXPECT_TRUE(SnapshotEquivalentAsMultisets(lhs, rhs));  // B3's claim
}

TEST(RuleNegativeTest, C8NeedsClassPreservingProjection) {
  // The counterexample behind the C8 deviation note: r is snapshot-
  // duplicate-free, but projecting away Val merges the (a,1) and (a,2)
  // classes; the inner coalescing then pairs fragments differently than the
  // outer one, and the two sides of C8 diverge even as multisets. Only the
  // ≡SM level (rule B1) survives.
  Schema s;
  s.Add(Attribute{"Name", ValueType::kString});
  s.Add(Attribute{"Val", ValueType::kInt});
  s.Add(Attribute{kT1, ValueType::kTime});
  s.Add(Attribute{kT2, ValueType::kTime});
  Relation r = testing_util::TemporalRel(
      {{"a", 1, 0, 2}, {"a", 2, 2, 4}, {"a", 1, 2, 4}, {"a", 2, 4, 6}});
  ASSERT_FALSE(r.HasSnapshotDuplicates());

  Schema proj_schema;
  proj_schema.Add(Attribute{"Name", ValueType::kString});
  proj_schema.Add(Attribute{kT1, ValueType::kTime});
  proj_schema.Add(Attribute{kT2, ValueType::kTime});
  std::vector<ProjItem> items = {ProjItem::Pass("Name"), ProjItem::Pass(kT1),
                                 ProjItem::Pass(kT2)};

  Result<Relation> lhs_proj = EvalProject(EvalCoalesce(r), items, proj_schema);
  Result<Relation> rhs_proj = EvalProject(r, items, proj_schema);
  ASSERT_TRUE(lhs_proj.ok() && rhs_proj.ok());
  Relation lhs = EvalCoalesce(lhs_proj.value());
  Relation rhs = EvalCoalesce(rhs_proj.value());
  EXPECT_FALSE(EquivalentAsMultisets(lhs, rhs));  // the paper's ≡L fails
  EXPECT_TRUE(SnapshotEquivalentAsMultisets(lhs, rhs));  // B1 holds
}

TEST(RuleNegativeTest, CoalescingAfterRdupTEnablesD2) {
  // The idiom coalT(rdupT(x)) is snapshot-determined: any further rdupT is
  // the identity (G5 / D2 agreement).
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    Relation x = testing_util::RandomTemporal(seed);
    Relation idiom = EvalCoalesce(EvalRdupT(x));
    EXPECT_TRUE(EquivalentAsLists(EvalRdupT(idiom), idiom)) << seed;
  }
}

}  // namespace
}  // namespace tqp
