// Tests for the tqp::Engine facade: equivalence with the hand-wired
// pipeline, warm-vs-cold determinism of the session caches, plan-cache
// behavior (including the LRU bound), catalog-version invalidation, and the
// concurrent-session guarantees (M threads × K queries byte-identical to a
// fresh single-threaded engine, admission control, mid-flight catalog
// mutation never serving stale or torn state). CI runs this suite under
// TSan.
#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <thread>

#include "api/engine.h"
#include "core/equivalence.h"
#include "test_util.h"
#include "tql/lexer.h"
#include "workload/paper_example.h"

namespace tqp {
namespace {

/// Byte-identical: same tuples, same order, same rendered table.
void ExpectIdentical(const Relation& a, const Relation& b) {
  EXPECT_TRUE(EquivalentAsLists(a, b)) << a.ToTable("a") << b.ToTable("b");
  EXPECT_EQ(a.ToTable(), b.ToTable());
}

/// EMPLOYEE/PROJECT plus two generated relations R (temporal) and S
/// (temporal, different seed) for the workload queries.
Catalog WorkloadCatalog() {
  Catalog catalog = PaperCatalog();
  TQP_CHECK(catalog
                .RegisterWithInferredFlags(
                    "R", testing_util::RandomTemporal(3, 20), Site::kDbms)
                .ok());
  TQP_CHECK(catalog
                .RegisterWithInferredFlags(
                    "S", testing_util::RandomTemporal(8, 16), Site::kDbms)
                .ok());
  return catalog;
}

/// The TQL suite the warm-vs-cold tests sweep: the paper's example plus
/// conventional/temporal queries over the generated relations.
std::vector<std::string> WorkloadQueries() {
  return {
      PaperQueryText(),
      "SELECT Name, Val FROM R WHERE Val > 10",
      "SELECT DISTINCT Name FROM R ORDER BY Name ASC",
      "VALIDTIME SELECT DISTINCT Name FROM R ORDER BY Name ASC",
      "VALIDTIME COALESCED SELECT DISTINCT Name FROM R",
      "SELECT Name FROM R UNION SELECT Name FROM S",
      "SELECT Cat, COUNT(*) AS n FROM R GROUP BY Cat ORDER BY Cat",
  };
}

TEST(ApiEngineTest, FacadeMatchesHandWiredPipeline) {
  // The A/B guarantee: Engine::Query is byte-identical to the hand-wired
  // CompileQuery + Optimize + AnnotatedPlan::Make + Evaluate pipeline with
  // the same (default) models — same relation, fingerprint, costs, and
  // derivation chain, even though the facade skips canonical strings and
  // runs through session caches.
  Catalog catalog = PaperCatalog();

  Result<TranslatedQuery> q = CompileQuery(PaperQueryText(), catalog);
  ASSERT_TRUE(q.ok());
  Result<OptimizeResult> opt =
      Optimize(q->plan, catalog, q->contract, DefaultRuleSet());
  ASSERT_TRUE(opt.ok());
  Result<AnnotatedPlan> ann =
      AnnotatedPlan::Make(opt->best_plan, &catalog, q->contract);
  ASSERT_TRUE(ann.ok());
  ExecStats hand_stats;
  Result<Relation> hand = Evaluate(ann.value(), EngineConfig{}, &hand_stats);
  ASSERT_TRUE(hand.ok());

  Engine engine(PaperCatalog());
  Result<QueryResult> facade = engine.Query(PaperQueryText());
  ASSERT_TRUE(facade.ok()) << facade.status().message();

  ExpectIdentical(facade->relation, hand.value());
  EXPECT_EQ(facade->plan_fingerprint, opt->best_plan->fingerprint());
  EXPECT_EQ(facade->best_cost, opt->best_cost);
  EXPECT_EQ(facade->initial_cost, opt->initial_cost);
  EXPECT_EQ(facade->plans_considered, opt->plans_considered);
  EXPECT_EQ(facade->derivation, opt->derivation);
  EXPECT_EQ(facade->exec.total_work(), hand_stats.total_work());
  EXPECT_FALSE(facade->plan_cache_hit);
}

TEST(ApiEngineTest, WarmRunsMatchColdAcrossWorkload) {
  // For every workload query: the warm engine's second run (plan-cache hit,
  // primed interner/derivation cache) returns the identical relation, chosen
  // fingerprint, and costs as its first run AND as a fresh engine.
  EngineOptions options;
  options.enumeration.max_plans = 1500;
  Engine warm(WorkloadCatalog(), options);

  for (const std::string& text : WorkloadQueries()) {
    SCOPED_TRACE(text);
    Result<QueryResult> first = warm.Query(text);
    ASSERT_TRUE(first.ok()) << first.status().message();
    EXPECT_FALSE(first->plan_cache_hit);

    Result<QueryResult> second = warm.Query(text);
    ASSERT_TRUE(second.ok());
    EXPECT_TRUE(second->plan_cache_hit);

    EngineOptions cold_options;
    cold_options.enumeration.max_plans = 1500;
    Engine cold(WorkloadCatalog(), cold_options);
    Result<QueryResult> fresh = cold.Query(text);
    ASSERT_TRUE(fresh.ok());

    ExpectIdentical(second->relation, first->relation);
    ExpectIdentical(second->relation, fresh->relation);
    EXPECT_EQ(second->plan_fingerprint, first->plan_fingerprint);
    EXPECT_EQ(second->plan_fingerprint, fresh->plan_fingerprint);
    EXPECT_EQ(second->best_cost, fresh->best_cost);
    EXPECT_EQ(second->initial_cost, fresh->initial_cost);
    EXPECT_EQ(second->plans_considered, fresh->plans_considered);
    EXPECT_EQ(second->derivation, fresh->derivation);
  }

  EngineStats stats = warm.stats();
  EXPECT_EQ(stats.plan_cache_hits, WorkloadQueries().size());
  EXPECT_EQ(stats.plan_cache_misses, WorkloadQueries().size());
  EXPECT_EQ(stats.prepares, WorkloadQueries().size());
  EXPECT_EQ(stats.plan_cache_entries, WorkloadQueries().size());
  EXPECT_GT(stats.interner_nodes, 0u);
  EXPECT_GT(stats.derivation_nodes, 0u);
  EXPECT_EQ(stats.invalidations, 0u);
}

TEST(ApiEngineTest, SessionCachesOffIsStillCorrect) {
  // reuse_search_caches / cache_plans only change how much work is redone.
  EngineOptions no_caches;
  no_caches.cache_plans = false;
  no_caches.reuse_search_caches = false;
  Engine bare(WorkloadCatalog(), no_caches);
  Engine cached(WorkloadCatalog());

  Result<QueryResult> a = bare.Query(PaperQueryText());
  Result<QueryResult> b = bare.Query(PaperQueryText());
  Result<QueryResult> c = cached.Query(PaperQueryText());
  ASSERT_TRUE(a.ok() && b.ok() && c.ok());
  EXPECT_FALSE(b->plan_cache_hit);
  ExpectIdentical(a->relation, b->relation);
  ExpectIdentical(a->relation, c->relation);
  EXPECT_EQ(a->plan_fingerprint, c->plan_fingerprint);
  EXPECT_EQ(bare.stats().prepares, 2u);
  EXPECT_EQ(bare.stats().plan_cache_entries, 0u);
}

TEST(ApiEngineTest, PreparedQueryExecutesRepeatedly) {
  Engine engine(PaperCatalog());
  Result<PreparedQuery> prepared = engine.Prepare(PaperQueryText());
  ASSERT_TRUE(prepared.ok());
  EXPECT_FALSE(prepared->from_cache());
  EXPECT_FALSE(prepared->derivation().empty());
  EXPECT_LT(prepared->best_cost(), prepared->initial_cost());

  Result<QueryResult> first = prepared.value().Execute();
  Result<QueryResult> again = prepared.value().Execute();
  ASSERT_TRUE(first.ok() && again.ok());
  ExpectIdentical(first->relation, again->relation);
  EXPECT_EQ(first->plan_fingerprint, prepared->fingerprint());
  // One pipeline run serves any number of executions.
  EXPECT_EQ(engine.stats().prepares, 1u);

  // A later Prepare of the same text is a cache hit sharing the same plan.
  Result<PreparedQuery> reprepared = engine.Prepare(PaperQueryText());
  ASSERT_TRUE(reprepared.ok());
  EXPECT_TRUE(reprepared->from_cache());
  EXPECT_EQ(reprepared->fingerprint(), prepared->fingerprint());
  EXPECT_EQ(engine.stats().prepares, 1u);
}

TEST(ApiEngineTest, PlanKeyedPrepareMatchesTextPath) {
  // A hand-built initial plan prepares to the same chosen plan as its TQL
  // text (the translator emits exactly the Figure 2(a) tree), and repeated
  // plan-keyed preparations hit the fingerprint-keyed cache.
  Engine engine(PaperCatalog());
  Result<PreparedQuery> from_plan =
      engine.Prepare(PaperInitialPlan(), PaperContract());
  ASSERT_TRUE(from_plan.ok()) << from_plan.status().message();
  EXPECT_FALSE(from_plan->from_cache());

  Result<PreparedQuery> from_text = engine.Prepare(PaperQueryText());
  ASSERT_TRUE(from_text.ok());
  EXPECT_EQ(from_plan->fingerprint(), from_text->fingerprint());

  Result<PreparedQuery> again =
      engine.Prepare(PaperInitialPlan(), PaperContract());
  ASSERT_TRUE(again.ok());
  EXPECT_TRUE(again->from_cache());

  Result<QueryResult> a = from_plan.value().Execute();
  Result<QueryResult> b = from_text.value().Execute();
  ASSERT_TRUE(a.ok() && b.ok());
  ExpectIdentical(a->relation, b->relation);
}

TEST(ApiEngineTest, PlanCacheKeysOnTokenStreamNotRawText) {
  // Regression: the plan cache used to key on raw query text, so
  // whitespace/comment variants of one query each paid a full prepare.
  // Keying on the lexed token stream makes every variant below one entry.
  Engine engine(WorkloadCatalog());
  const std::string canonical = "SELECT Name, Val FROM R WHERE Val > 10";
  Result<QueryResult> first = engine.Query(canonical);
  ASSERT_TRUE(first.ok()) << first.status().message();
  EXPECT_FALSE(first->plan_cache_hit);

  const std::vector<std::string> variants = {
      "SELECT  Name,  Val  FROM R WHERE Val > 10",
      "select Name, Val from R where Val > 10",
      "SELECT Name, Val -- projection\nFROM R\nWHERE Val > 10 -- filter",
      "\tSELECT\nName, Val FROM R WHERE Val > 10  ",
  };
  for (const std::string& text : variants) {
    SCOPED_TRACE(text);
    Result<QueryResult> out = engine.Query(text);
    ASSERT_TRUE(out.ok()) << out.status().message();
    EXPECT_TRUE(out->plan_cache_hit);
    ExpectIdentical(out->relation, first->relation);
    EXPECT_EQ(out->plan_fingerprint, first->plan_fingerprint);
  }
  EngineStats stats = engine.stats();
  EXPECT_EQ(stats.prepares, 1u);
  EXPECT_EQ(stats.plan_cache_entries, 1u);
  EXPECT_EQ(stats.plan_cache_hits, variants.size());

  // A genuinely different query still misses.
  Result<QueryResult> other =
      engine.Query("SELECT Name, Val FROM R WHERE Val > 11");
  ASSERT_TRUE(other.ok());
  EXPECT_FALSE(other->plan_cache_hit);
  EXPECT_EQ(engine.stats().plan_cache_entries, 2u);

  // Unlexable text must fail with the lexer's error, never hit the cache —
  // even when the garbage text happens to spell out a cached query's
  // token-stream rendering verbatim (raw-text keys live under their own
  // prefix, disjoint from token keys).
  Result<std::vector<Token>> tokens = Lex(canonical);
  ASSERT_TRUE(tokens.ok());
  Result<QueryResult> collision = engine.Query(TokenStreamKey(tokens.value()));
  EXPECT_FALSE(collision.ok());
}

TEST(ApiEngineTest, BestFirstEngineMatchesBreadthFirstChoice) {
  // The facade threads SearchStrategy through: a best-first engine with a
  // generous bound chooses the same plan (same fingerprint, cost, and
  // relation) as the default breadth-first engine.
  Engine breadth(PaperCatalog());
  EngineOptions directed_options;
  directed_options.enumeration.strategy = SearchStrategy::kBestFirst;
  directed_options.enumeration.cost_prune_factor = 1.5;
  Engine directed(PaperCatalog(), directed_options);

  Result<QueryResult> a = breadth.Query(PaperQueryText());
  Result<QueryResult> b = directed.Query(PaperQueryText());
  ASSERT_TRUE(a.ok() && b.ok()) << a.status().message()
                                << b.status().message();
  ExpectIdentical(a->relation, b->relation);
  EXPECT_EQ(a->plan_fingerprint, b->plan_fingerprint);
  EXPECT_EQ(a->best_cost, b->best_cost);
  // The cost-directed engine considered strictly fewer plans.
  EXPECT_LT(b->plans_considered, a->plans_considered);
}

TEST(ApiEngineTest, CatalogMutationInvalidatesCaches) {
  // A catalog mutation must flush the plan cache and the derivation cache:
  // the next query re-optimizes against the new contents instead of serving
  // a stale plan or stale cardinalities.
  const std::string query =
      "VALIDTIME SELECT DISTINCT Name FROM R ORDER BY Name ASC";
  Catalog catalog;
  TQP_CHECK(catalog
                .RegisterWithInferredFlags(
                    "R",
                    testing_util::TemporalRel(
                        {{"a", 1, 0, 5}, {"b", 2, 2, 9}, {"a", 1, 5, 7}}),
                    Site::kDbms)
                .ok());
  Engine engine(catalog);

  Result<QueryResult> before = engine.Query(query);
  ASSERT_TRUE(before.ok());
  ASSERT_TRUE(engine.Query(query)->plan_cache_hit);  // warm now

  // Replace R's contents through the engine's own catalog handle.
  CatalogEntry updated;
  updated.data = testing_util::TemporalRel(
      {{"c", 7, 1, 4}, {"d", 8, 3, 6}, {"e", 9, 0, 2}});
  updated.site = Site::kDbms;
  ASSERT_TRUE(engine.mutable_catalog().Update("R", std::move(updated)).ok());

  Result<QueryResult> after = engine.Query(query);
  ASSERT_TRUE(after.ok());
  EXPECT_FALSE(after->plan_cache_hit);  // cache was flushed, not served
  EXPECT_FALSE(EquivalentAsMultisets(after->relation, before->relation));

  // The post-mutation answer matches a fresh engine over the same catalog.
  Engine fresh(engine.catalog());
  Result<QueryResult> expected = fresh.Query(query);
  ASSERT_TRUE(expected.ok());
  ExpectIdentical(after->relation, expected->relation);
  EXPECT_EQ(after->plan_fingerprint, expected->plan_fingerprint);
  EXPECT_EQ(after->best_cost, expected->best_cost);

  EngineStats stats = engine.stats();
  EXPECT_EQ(stats.invalidations, 1u);
  EXPECT_EQ(stats.plan_cache_entries, 1u);  // only the re-prepared query
}

TEST(ApiEngineTest, StalePreparedQueryRepreparesTransparently) {
  const std::string query = "SELECT DISTINCT Name FROM R ORDER BY Name ASC";
  Catalog catalog;
  TQP_CHECK(catalog
                .RegisterWithInferredFlags(
                    "R", testing_util::ConventionalRel({{"x", 1}, {"y", 2}}),
                    Site::kDbms)
                .ok());
  Engine engine(catalog);
  Result<PreparedQuery> prepared = engine.Prepare(query);
  ASSERT_TRUE(prepared.ok());

  CatalogEntry updated;
  updated.data = testing_util::ConventionalRel({{"z", 3}});
  updated.site = Site::kDbms;
  ASSERT_TRUE(engine.mutable_catalog().Update("R", std::move(updated)).ok());

  // Executing the pre-mutation handle picks up the new catalog.
  Result<QueryResult> out = prepared.value().Execute();
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->relation.size(), 1u);
  EXPECT_EQ(out->relation.tuple(0).at(0).AsString(), "z");
  EXPECT_EQ(engine.stats().invalidations, 1u);
}

TEST(ApiEngineTest, ExecuteAfterRelationDropFailsCleanly) {
  // Regression: a PreparedQuery whose relation was dropped used to chase a
  // stale catalog entry (null-deref in the derivation's scan annotation).
  // The documented contract is a clean error from the re-prepare.
  const std::string query = "SELECT DISTINCT Name FROM R ORDER BY Name ASC";
  Catalog catalog;
  TQP_CHECK(catalog
                .RegisterWithInferredFlags(
                    "R", testing_util::ConventionalRel({{"x", 1}, {"y", 2}}),
                    Site::kDbms)
                .ok());
  Engine engine(catalog);
  Result<PreparedQuery> prepared = engine.Prepare(query);
  ASSERT_TRUE(prepared.ok());

  ASSERT_TRUE(engine.mutable_catalog().Drop("R"));

  Result<QueryResult> out = prepared.value().Execute();
  ASSERT_FALSE(out.ok());
  EXPECT_NE(out.status().message().find("R"), std::string::npos)
      << out.status().message();
  // The engine stays serviceable for queries over what's left.
  EXPECT_FALSE(engine.Query(query).ok());
}

TEST(ApiEngineTest, ExecuteAfterSameVersionCatalogSwapFailsCleanly) {
  // A handed-out mutable_catalog() reference can *replace* the catalog
  // wholesale with one that coincidentally carries the same version count —
  // the version check alone cannot see that. The conservative
  // flush-on-handout must force a re-prepare, which fails cleanly when the
  // replacement lacks the query's relation.
  const std::string query = "SELECT DISTINCT Name FROM R ORDER BY Name ASC";
  Catalog catalog;
  TQP_CHECK(catalog
                .RegisterWithInferredFlags(
                    "R", testing_util::ConventionalRel({{"x", 1}, {"y", 2}}),
                    Site::kDbms)
                .ok());
  Engine engine(catalog);
  Result<PreparedQuery> prepared = engine.Prepare(query);
  ASSERT_TRUE(prepared.ok());

  // Same number of mutations (version 1), entirely different contents.
  Catalog replacement;
  TQP_CHECK(replacement
                .RegisterWithInferredFlags(
                    "Q", testing_util::ConventionalRel({{"z", 3}}),
                    Site::kDbms)
                .ok());
  ASSERT_EQ(replacement.version(), engine.catalog().version());
  engine.mutable_catalog() = replacement;

  Result<QueryResult> out = prepared.value().Execute();
  ASSERT_FALSE(out.ok());
  EXPECT_NE(out.status().message().find("R"), std::string::npos)
      << out.status().message();
  // And queries against the replacement's contents work.
  Result<QueryResult> q = engine.Query("SELECT Name FROM Q");
  ASSERT_TRUE(q.ok()) << q.status().message();
  EXPECT_EQ(q->relation.size(), 1u);
}

TEST(ApiEngineTest, EnumerateThreadsSessionCaches) {
  Engine engine(PaperCatalog());
  EnumerationOptions options = engine.options().enumeration;
  options.max_plans = 200;
  Result<EnumerationResult> first =
      engine.Enumerate(PaperQueryText(), options);
  ASSERT_TRUE(first.ok());
  EXPECT_GT(first->plans.size(), 1u);
  // The facade path skips canonical serialization by default...
  EXPECT_TRUE(first->plans[0].canonical.empty());
  size_t cold_cache = first->cache_nodes;

  // ...and a re-enumeration against the primed session caches produces the
  // identical plan sequence while deriving almost nothing new.
  Result<EnumerationResult> second =
      engine.Enumerate(PaperQueryText(), options);
  ASSERT_TRUE(second.ok());
  ASSERT_EQ(second->plans.size(), first->plans.size());
  for (size_t i = 0; i < first->plans.size(); ++i) {
    EXPECT_EQ(second->plans[i].fingerprint, first->plans[i].fingerprint);
    EXPECT_EQ(second->plans[i].parent, first->plans[i].parent);
    EXPECT_EQ(second->plans[i].rule_id, first->plans[i].rule_id);
  }
  EXPECT_EQ(second->cache_nodes, cold_cache);  // nothing new to derive
}

TEST(ApiEngineTest, FillCanonicalOffPreservesTheSequence) {
  // fill_canonical only controls the string field, never the search.
  Catalog catalog = PaperCatalog();
  EnumerationOptions with, without;
  with.max_plans = without.max_plans = 300;
  with.fill_canonical = true;
  without.fill_canonical = false;

  Result<EnumerationResult> a = EnumeratePlans(
      PaperInitialPlan(), catalog, PaperContract(), DefaultRuleSet(), with);
  Result<EnumerationResult> b = EnumeratePlans(
      PaperInitialPlan(), catalog, PaperContract(), DefaultRuleSet(), without);
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_EQ(a->plans.size(), b->plans.size());
  EXPECT_EQ(a->matches, b->matches);
  EXPECT_EQ(a->admitted, b->admitted);
  EXPECT_EQ(a->gated_out, b->gated_out);
  EXPECT_EQ(a->memo_hits, b->memo_hits);
  for (size_t i = 0; i < a->plans.size(); ++i) {
    EXPECT_FALSE(a->plans[i].canonical.empty());
    EXPECT_TRUE(b->plans[i].canonical.empty());
    EXPECT_EQ(a->plans[i].fingerprint, b->plans[i].fingerprint);
    EXPECT_EQ(a->plans[i].parent, b->plans[i].parent);
    EXPECT_EQ(a->plans[i].rule_id, b->plans[i].rule_id);
  }
}

TEST(ApiEngineTest, PlanCacheLruEviction) {
  // plan_cache_capacity bounds the cache with least-recently-used eviction;
  // the unbounded default never evicts (the pre-bound behavior).
  const std::string q1 = "SELECT Name, Val FROM R WHERE Val > 1";
  const std::string q2 = "SELECT Name, Val FROM R WHERE Val > 2";
  const std::string q3 = "SELECT Name, Val FROM R WHERE Val > 3";

  EngineOptions options;
  options.plan_cache_capacity = 2;
  Engine engine(WorkloadCatalog(), options);

  ASSERT_TRUE(engine.Query(q1).ok());
  ASSERT_TRUE(engine.Query(q2).ok());
  EXPECT_EQ(engine.stats().plan_cache_entries, 2u);
  EXPECT_EQ(engine.stats().plan_cache_evictions, 0u);

  // Touch q1 so q2 becomes the LRU entry, then insert q3: q2 is evicted.
  EXPECT_TRUE(engine.Query(q1)->plan_cache_hit);
  ASSERT_TRUE(engine.Query(q3).ok());
  EXPECT_EQ(engine.stats().plan_cache_entries, 2u);
  EXPECT_EQ(engine.stats().plan_cache_evictions, 1u);

  EXPECT_TRUE(engine.Query(q1)->plan_cache_hit);   // survived
  EXPECT_FALSE(engine.Query(q2)->plan_cache_hit);  // evicted: full re-prepare
  EXPECT_EQ(engine.stats().plan_cache_evictions, 2u);  // q2's insert evicted q3
  EXPECT_FALSE(engine.Query(q3)->plan_cache_hit);
  EXPECT_EQ(engine.stats().plan_cache_entries, 2u);

  // Results served around evictions are still correct.
  Engine fresh(WorkloadCatalog());
  ExpectIdentical(engine.Query(q2)->relation, fresh.Query(q2)->relation);

  // Capacity 0 = unbounded: the same traffic never evicts.
  Engine unbounded(WorkloadCatalog());
  for (const std::string& q : {q1, q2, q3, q1, q2, q3}) {
    ASSERT_TRUE(unbounded.Query(q).ok());
  }
  EXPECT_EQ(unbounded.stats().plan_cache_entries, 3u);
  EXPECT_EQ(unbounded.stats().plan_cache_evictions, 0u);
}

TEST(ApiEngineTest, ConcurrentSessionsAreByteIdentical) {
  // M threads × K queries × R rounds against ONE shared Engine (shared plan
  // cache, interner, derivation cache, parallel-capable enumeration): every
  // result must be byte-identical to a fresh single-threaded engine's.
  const std::vector<std::string> queries = WorkloadQueries();

  // Expected outcomes from isolated single-threaded engines.
  std::map<std::string, std::string> expected_table;
  std::map<std::string, uint64_t> expected_fp;
  std::map<std::string, double> expected_cost;
  for (const std::string& q : queries) {
    Engine fresh(WorkloadCatalog());
    Result<QueryResult> r = fresh.Query(q);
    ASSERT_TRUE(r.ok()) << r.status().message();
    expected_table[q] = r->relation.ToTable();
    expected_fp[q] = r->plan_fingerprint;
    expected_cost[q] = r->best_cost;
  }

  EngineOptions options;
  options.enumeration.num_threads = 2;  // concurrent sessions × parallel search
  Engine shared(WorkloadCatalog(), options);

  constexpr int kThreads = 4;
  constexpr int kRounds = 3;
  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      // Stagger the starting query per thread so cold misses race.
      for (int round = 0; round < kRounds; ++round) {
        for (size_t i = 0; i < queries.size(); ++i) {
          const std::string& q =
              queries[(i + static_cast<size_t>(t)) % queries.size()];
          Result<QueryResult> r = shared.Query(q);
          if (!r.ok() || r->relation.ToTable() != expected_table[q] ||
              r->plan_fingerprint != expected_fp[q] ||
              r->best_cost != expected_cost[q]) {
            mismatches.fetch_add(1);
          }
        }
      }
    });
  }
  for (std::thread& th : threads) th.join();
  EXPECT_EQ(mismatches.load(), 0);

  EngineStats stats = shared.stats();
  EXPECT_EQ(stats.plan_cache_entries, queries.size());
  // Every query beyond each entry's first prepare was a cache hit; racing
  // cold misses may each run a full pipeline, so prepares >= entries rather
  // than == entries.
  EXPECT_GE(stats.prepares, queries.size());
  EXPECT_GT(stats.plan_cache_hits, 0u);
  EXPECT_EQ(stats.invalidations, 0u);
}

TEST(ApiEngineTest, AdmissionControlBoundsConcurrency) {
  // max_concurrent_queries = 1: four threads hammer the engine, but at most
  // one query is ever inside the gated sections (peak counter proves it),
  // and every result is still correct. cache_plans off so every Query pays
  // the full gated pipeline.
  EngineOptions options;
  options.cache_plans = false;
  options.max_concurrent_queries = 1;
  Engine engine(WorkloadCatalog(), options);
  const std::string query = "SELECT DISTINCT Name FROM R ORDER BY Name ASC";
  Engine fresh(WorkloadCatalog());
  const std::string expected = fresh.Query(query)->relation.ToTable();

  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 5; ++i) {
        Result<QueryResult> r = engine.Query(query);
        if (!r.ok() || r->relation.ToTable() != expected) {
          mismatches.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& th : threads) th.join();
  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_EQ(engine.stats().peak_concurrent_queries, 1u);
  EXPECT_EQ(engine.stats().prepares, 20u);
}

TEST(ApiEngineTest, CatalogMutationMidFlightNeverServesStalePlans) {
  // Readers hammer the engine while the catalog is replaced mid-flight
  // through MutateCatalog. Every observed result must equal the pre- or the
  // post-mutation truth in full — never a stale plan over new data or any
  // torn in-between — and after the mutation the new truth must be served.
  const std::string query =
      "VALIDTIME SELECT DISTINCT Name FROM R ORDER BY Name ASC";
  auto catalog_v1 = [] {
    Catalog catalog;
    TQP_CHECK(catalog
                  .RegisterWithInferredFlags(
                      "R",
                      testing_util::TemporalRel(
                          {{"a", 1, 0, 5}, {"b", 2, 2, 9}, {"a", 1, 5, 7}}),
                      Site::kDbms)
                  .ok());
    return catalog;
  };
  CatalogEntry v2_entry;
  v2_entry.data = testing_util::TemporalRel(
      {{"c", 7, 1, 4}, {"d", 8, 3, 6}, {"e", 9, 0, 2}});
  v2_entry.site = Site::kDbms;

  const std::string before = Engine(catalog_v1()).Query(query)->relation.ToTable();
  Catalog after_catalog = catalog_v1();
  TQP_CHECK(after_catalog.Update("R", v2_entry).ok());
  const std::string after = Engine(std::move(after_catalog))
                                .Query(query)
                                ->relation.ToTable();
  ASSERT_NE(before, after);

  Engine engine(catalog_v1());
  std::atomic<int> torn{0};
  std::atomic<int> post_mutation_before{0};
  std::atomic<bool> mutated{false};
  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&] {
      for (int i = 0; i < 25; ++i) {
        bool mutation_done = mutated.load();
        Result<QueryResult> r = engine.Query(query);
        if (!r.ok()) {
          torn.fetch_add(1);
          continue;
        }
        std::string table = r->relation.ToTable();
        if (table != before && table != after) {
          torn.fetch_add(1);  // a mixed/stale answer
        } else if (mutation_done && table == before) {
          // The mutation completed before this query started, yet it saw
          // the old contents: stale state was served.
          post_mutation_before.fetch_add(1);
        }
      }
    });
  }
  // Let the readers warm up, then swap R's contents mid-traffic.
  Result<QueryResult> warmup = engine.Query(query);
  ASSERT_TRUE(warmup.ok());
  ASSERT_TRUE(engine
                  .MutateCatalog([&](Catalog& catalog) {
                    return catalog.Update("R", v2_entry);
                  })
                  .ok());
  mutated.store(true);
  for (std::thread& th : readers) th.join();

  EXPECT_EQ(torn.load(), 0);
  EXPECT_EQ(post_mutation_before.load(), 0);
  EXPECT_EQ(engine.Query(query)->relation.ToTable(), after);
  EXPECT_EQ(engine.stats().invalidations, 1u);
}

TEST(ApiEngineTest, ParallelEnumerationThreadsThroughTheFacade) {
  // An engine with num_threads = 4 serves byte-identical results, plan
  // fingerprints, costs, and plans_considered as the serial default.
  Engine serial(PaperCatalog());
  EngineOptions options;
  options.enumeration.num_threads = 4;
  Engine parallel(PaperCatalog(), options);

  Result<QueryResult> a = serial.Query(PaperQueryText());
  Result<QueryResult> b = parallel.Query(PaperQueryText());
  ASSERT_TRUE(a.ok() && b.ok()) << a.status().message()
                                << b.status().message();
  ExpectIdentical(a->relation, b->relation);
  EXPECT_EQ(a->plan_fingerprint, b->plan_fingerprint);
  EXPECT_EQ(a->best_cost, b->best_cost);
  EXPECT_EQ(a->initial_cost, b->initial_cost);
  EXPECT_EQ(a->plans_considered, b->plans_considered);
  EXPECT_EQ(a->derivation, b->derivation);
}

TEST(ApiEngineTest, CatalogVersioning) {
  Catalog catalog;
  EXPECT_EQ(catalog.version(), 0u);
  ASSERT_TRUE(catalog
                  .RegisterWithInferredFlags(
                      "A", testing_util::ConventionalRel({{"x", 1}}))
                  .ok());
  EXPECT_EQ(catalog.version(), 1u);

  // Failed mutations do not bump the version.
  EXPECT_FALSE(catalog
                   .RegisterWithInferredFlags(
                       "A", testing_util::ConventionalRel({{"y", 2}}))
                   .ok());
  EXPECT_FALSE(catalog.Drop("NOPE"));
  EXPECT_EQ(catalog.version(), 1u);

  CatalogEntry entry;
  entry.data = testing_util::ConventionalRel({{"y", 2}});
  ASSERT_TRUE(catalog.Update("A", std::move(entry)).ok());
  EXPECT_EQ(catalog.version(), 2u);
  EXPECT_TRUE(catalog.Drop("A"));
  EXPECT_EQ(catalog.version(), 3u);
  EXPECT_FALSE(catalog.Contains("A"));
}

TEST(ApiEngineTest, DependencyKeyedInvalidationKeepsUnrelatedPlans) {
  // Plan-cache invalidation is keyed on each entry's relation-dependency
  // set: updating S evicts exactly the plans reading S, and a plan reading
  // only R survives warm (the over-invalidation regression).
  const std::string qr = "SELECT Name, Val FROM R WHERE Val > 10";
  const std::string qs = "SELECT Name, Val FROM S WHERE Val > 10";
  Engine engine(WorkloadCatalog());
  ASSERT_TRUE(engine.Query(qr).ok());
  ASSERT_TRUE(engine.Query(qs).ok());
  ASSERT_TRUE(engine.Query(qr)->plan_cache_hit);  // both warm
  ASSERT_TRUE(engine.Query(qs)->plan_cache_hit);

  ASSERT_TRUE(engine
                  .MutateCatalog([](Catalog& c) {
                    CatalogEntry e;
                    e.data = testing_util::RandomTemporal(21, 16);
                    return c.Update("S", std::move(e));
                  })
                  .ok());

  Result<QueryResult> r_after = engine.Query(qr);
  ASSERT_TRUE(r_after.ok());
  EXPECT_TRUE(r_after->plan_cache_hit);  // R-plan untouched by S's update
  Result<QueryResult> s_after = engine.Query(qs);
  ASSERT_TRUE(s_after.ok());
  EXPECT_FALSE(s_after->plan_cache_hit);  // S-plan was stale, re-prepared

  EngineStats stats = engine.stats();
  EXPECT_EQ(stats.plan_cache_stale_evictions, 1u);  // only the S-plan
  EXPECT_EQ(stats.invalidations, 1u);

  // Both answers match a fresh engine over the mutated catalog.
  Engine fresh(engine.catalog());
  Result<QueryResult> fresh_r = fresh.Query(qr);
  Result<QueryResult> fresh_s = fresh.Query(qs);
  ASSERT_TRUE(fresh_r.ok());
  ASSERT_TRUE(fresh_s.ok());
  ExpectIdentical(r_after->relation, fresh_r->relation);
  ExpectIdentical(s_after->relation, fresh_s->relation);
}

TEST(ApiEngineTest, PreparedQuerySurvivesUnrelatedMutation) {
  // A PreparedQuery whose plans never read S executes without re-preparing
  // across an S mutation: staleness is judged per relation, not by the
  // global catalog version.
  const std::string qr = "SELECT Name, Val FROM R WHERE Val > 10";
  Engine engine(WorkloadCatalog());
  Result<PreparedQuery> prepared = engine.Prepare(qr);
  ASSERT_TRUE(prepared.ok());
  PreparedQuery handle = prepared.value();
  Result<QueryResult> before = handle.Execute();
  ASSERT_TRUE(before.ok());
  const uint64_t prepares_before = engine.stats().prepares;

  ASSERT_TRUE(engine
                  .MutateCatalog([](Catalog& c) {
                    CatalogEntry e;
                    e.data = testing_util::RandomTemporal(33, 16);
                    return c.Update("S", std::move(e));
                  })
                  .ok());

  Result<QueryResult> after = handle.Execute();
  ASSERT_TRUE(after.ok());
  ExpectIdentical(after->relation, before->relation);
  EXPECT_EQ(engine.stats().prepares, prepares_before);  // no re-prepare ran
}

TEST(ApiEngineTest, IncrementalExecutionSplicesCachedSubplans) {
  // EngineOptions::incremental_execution: repeated execution splices cached
  // subplan results; an update of an unrelated relation leaves them valid
  // (exact per-relation version keys); an update of a read relation forces
  // a full recompute whose bytes match an always-cold engine.
  const std::string qr = "SELECT Name, Val FROM R WHERE Val > 10";
  EngineOptions options;
  options.incremental_execution = true;
  Engine engine(WorkloadCatalog(), options);

  Result<QueryResult> first = engine.Query(qr);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first->exec.result_cache_hits, 0);
  EXPECT_GT(first->exec.result_cache_misses, 0);

  Result<QueryResult> second = engine.Query(qr);
  ASSERT_TRUE(second.ok());
  EXPECT_GT(second->exec.result_cache_hits, 0);  // root splice
  ExpectIdentical(second->relation, first->relation);

  // Updating S (which qr never reads) invalidates nothing qr uses.
  ASSERT_TRUE(engine
                  .MutateCatalog([](Catalog& c) {
                    CatalogEntry e;
                    e.data = testing_util::RandomTemporal(44, 16);
                    return c.Update("S", std::move(e));
                  })
                  .ok());
  Result<QueryResult> third = engine.Query(qr);
  ASSERT_TRUE(third.ok());
  EXPECT_GT(third->exec.result_cache_hits, 0);
  ExpectIdentical(third->relation, first->relation);

  // Updating R invalidates every cached subplan qr reads: full recompute,
  // byte-identical to a cold engine over the same catalog.
  ASSERT_TRUE(engine
                  .MutateCatalog([](Catalog& c) {
                    CatalogEntry e;
                    e.data = testing_util::RandomTemporal(55, 20);
                    return c.Update("R", std::move(e));
                  })
                  .ok());
  Result<QueryResult> fourth = engine.Query(qr);
  ASSERT_TRUE(fourth.ok());
  EXPECT_EQ(fourth->exec.result_cache_hits, 0);  // every dep moved
  Engine cold(engine.catalog());
  Result<QueryResult> expected = cold.Query(qr);
  ASSERT_TRUE(expected.ok());
  ExpectIdentical(fourth->relation, expected->relation);

  EngineStats stats = engine.stats();
  EXPECT_GT(stats.result_cache_hits, 0u);
  EXPECT_GT(stats.result_cache_misses, 0u);
  EXPECT_GT(stats.result_cache_entries, 0u);
  EXPECT_GT(stats.result_cache_bytes, 0u);
  // The JSON rendering (embedded by the service \stats frame) carries the
  // new counters.
  EXPECT_NE(stats.ToJson().find("result_cache_hits"), std::string::npos);
  EXPECT_NE(stats.ToJson().find("plan_cache_stale_evictions"),
            std::string::npos);
}

TEST(ApiEngineTest, SnapshotExportSkipsDependencyStaleEntries) {
  // A snapshot taken between a mutation and the next query must not carry
  // entries the mutation staled: the snapshot stamps the live catalog
  // version, so exporting them would mark stale plans as valid
  // (stale-positive on re-import).
  const std::string qr = "SELECT Name, Val FROM R WHERE Val > 10";
  const std::string qs = "SELECT Name, Val FROM S WHERE Val > 10";
  Engine engine(WorkloadCatalog());
  ASSERT_TRUE(engine.Query(qr).ok());
  ASSERT_TRUE(engine.Query(qs).ok());
  EXPECT_EQ(engine.ExportPlanCache().entries.size(), 2u);

  ASSERT_TRUE(engine
                  .MutateCatalog([](Catalog& c) {
                    CatalogEntry e;
                    e.data = testing_util::RandomTemporal(66, 16);
                    return c.Update("S", std::move(e));
                  })
                  .ok());
  // No query ran since the mutation: the stale S-entry is still in the LRU,
  // but the export filters it out; the R-entry is still valid and ships.
  PlanCacheSnapshot snap = engine.ExportPlanCache();
  ASSERT_EQ(snap.entries.size(), 1u);
  EXPECT_EQ(snap.entries[0].text, qr);

  // The filtered snapshot imports cleanly into a twin engine.
  Engine twin(engine.catalog());
  EXPECT_EQ(twin.ImportPlanCache(snap), 1u);
  Result<QueryResult> warmed = twin.Query(qr);
  ASSERT_TRUE(warmed.ok());
  EXPECT_TRUE(warmed->plan_cache_hit);
}

}  // namespace
}  // namespace tqp
