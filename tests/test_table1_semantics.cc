// CI-enforced Table 1 semantics: the duplicate-handling, coalescing-handling
// and order columns as parameterized property tests over randomized inputs
// (the bench binary prints the same matrix; these tests gate regressions).
#include <gtest/gtest.h>

#include "algebra/derivation.h"
#include "core/equivalence.h"
#include "exec/evaluator.h"
#include "test_util.h"

namespace tqp {
namespace {

class Table1Test : public ::testing::TestWithParam<uint64_t> {
 protected:
  Relation Messy(uint64_t salt, size_t n = 32) {
    return testing_util::RandomTemporal(GetParam() * 131 + salt, n);
  }
  // A relation with neither duplicates nor snapshot duplicates.
  Relation Clean(uint64_t salt) { return EvalRdupT(Messy(salt)); }
  // A coalesced, snapshot-duplicate-free relation.
  Relation Coalesced(uint64_t salt) { return EvalCoalesce(Clean(salt)); }
};

// ---- Duplicates column ----------------------------------------------------

TEST_P(Table1Test, EliminatingOpsNeverEmitDuplicates) {
  Relation messy = Messy(1);
  EXPECT_FALSE(EvalRdup(messy, messy.schema()).HasDuplicates());
  EXPECT_FALSE(EvalRdupT(messy).HasDuplicates());
  Schema out;
  out.Add(Attribute{"Name", ValueType::kString});
  out.Add(Attribute{"cnt", ValueType::kInt});
  Result<Relation> agg = EvalAggregate(
      messy, {"Name"}, {AggSpec{AggFunc::kCount, "", "cnt"}}, out);
  ASSERT_TRUE(agg.ok());
  EXPECT_FALSE(agg->HasDuplicates());
}

TEST_P(Table1Test, RetainingOpsPreserveDuplicateFreedom) {
  // "Retains": the result has distinct tuples whenever the inputs do.
  Relation a = Clean(2);
  Relation b = Clean(3);
  ExprPtr pred = Expr::Compare(CompareOp::kNe, Expr::Attr("Name"),
                               Expr::Const(Value::String("n0")));
  EXPECT_FALSE(EvalSelect(a, pred).HasDuplicates());
  EXPECT_FALSE(EvalSort(a, {{"Val", true}}).HasDuplicates());
  EXPECT_FALSE(EvalDifference(a, b).HasDuplicates());
  EXPECT_FALSE(EvalUnion(a, b, a.schema()).HasDuplicates());
  EXPECT_FALSE(EvalCoalesce(a).HasDuplicates());
  EXPECT_FALSE(EvalDifferenceT(a, b).HasDuplicates());
  EXPECT_FALSE(EvalUnionT(a, b).HasDuplicates());
}

TEST_P(Table1Test, GeneratingOpsCanCreateDuplicates) {
  // "Generates": duplicate-free inputs do not guarantee a duplicate-free
  // output. Projection collapsing distinguishing attributes is the witness.
  Relation a = Clean(4);
  Schema name_only;
  name_only.Add(Attribute{"Cat", ValueType::kInt});
  Result<Relation> proj =
      EvalProject(a, {ProjItem::Pass("Cat")}, name_only);
  ASSERT_TRUE(proj.ok());
  if (a.size() > 4) {
    EXPECT_TRUE(proj->HasDuplicates());
  }
  // ⊎ of a relation with itself duplicates everything.
  Relation doubled = EvalUnionAll(a, a, a.schema());
  if (!a.empty()) {
    EXPECT_TRUE(doubled.HasDuplicates());
  }
}

// ---- Coalescing column ----------------------------------------------------

TEST_P(Table1Test, CoalescingRetainers) {
  Relation c = Coalesced(5);
  ExprPtr pred = Expr::Compare(CompareOp::kNe, Expr::Attr("Name"),
                               Expr::Const(Value::String("n1")));
  EXPECT_TRUE(EvalSelect(c, pred).IsCoalesced());
  EXPECT_TRUE(EvalSort(c, {{"Val", false}}).IsCoalesced());
}

TEST_P(Table1Test, CoalescingDestroyers) {
  // "Destroys": a coalesced input does not guarantee a coalesced output.
  // rdupT's fragments are the canonical witness (John [1,8)+[8,11) in the
  // paper); here the structural fact that the guarantee must be dropped is
  // pinned via the derivation flags.
  Catalog catalog;
  TQP_CHECK(
      catalog.RegisterWithInferredFlags("C", Coalesced(6), Site::kStratum)
          .ok());
  Result<AnnotatedPlan> ann = AnnotatedPlan::Make(
      PlanNode::RdupT(PlanNode::Scan("C")), &catalog,
      QueryContract::Multiset());
  ASSERT_TRUE(ann.ok());
  EXPECT_FALSE(ann->root_info().coalesced);

  Result<AnnotatedPlan> ann2 = AnnotatedPlan::Make(
      PlanNode::UnionAll(PlanNode::Scan("C"), PlanNode::Scan("C")), &catalog,
      QueryContract::Multiset());
  ASSERT_TRUE(ann2.ok());
  EXPECT_FALSE(ann2->root_info().coalesced);
}

TEST_P(Table1Test, CoalesceEnforces) {
  EXPECT_TRUE(EvalCoalesce(Messy(7)).IsCoalesced());
}

// ---- Order column -----------------------------------------------------

TEST_P(Table1Test, OrderColumnHoldsOnData) {
  // For a pipeline of operations over a sorted input, the derived static
  // order must hold on the actual output at every stage.
  Catalog catalog;
  CatalogEntry entry;
  entry.data = EvalSort(Messy(8), {{"Name", true}, {"Cat", true}});
  entry.order = {{"Name", true}, {"Cat", true}};
  entry.site = Site::kStratum;
  TQP_CHECK(catalog.Register("S", entry).ok());

  ExprPtr pred = Expr::Compare(CompareOp::kNe, Expr::Attr("Cat"),
                               Expr::Const(Value::Int(0)));
  std::vector<PlanPtr> plans = {
      PlanNode::Select(PlanNode::Scan("S"), pred),
      PlanNode::RdupT(PlanNode::Scan("S")),
      PlanNode::Coalesce(PlanNode::Scan("S")),
      PlanNode::Project(PlanNode::Scan("S"),
                        {ProjItem::Rename("Name", "N"),
                         ProjItem::Pass(kT1), ProjItem::Pass(kT2)}),
      PlanNode::DifferenceT(PlanNode::RdupT(PlanNode::Scan("S")),
                            PlanNode::Scan("S")),
      PlanNode::Aggregate(PlanNode::Scan("S"), {"Name"},
                          {AggSpec{AggFunc::kCount, "", "c"}}),
  };
  for (const PlanPtr& plan : plans) {
    Result<AnnotatedPlan> ann =
        AnnotatedPlan::Make(plan, &catalog, QueryContract::Multiset());
    ASSERT_TRUE(ann.ok()) << plan->Describe();
    Result<Relation> out = Evaluate(ann.value(), EngineConfig{});
    ASSERT_TRUE(out.ok()) << plan->Describe();
    EXPECT_TRUE(out->IsSortedBy(ann->root_info().order))
        << plan->Describe() << " order "
        << SortSpecToString(ann->root_info().order);
  }
}

// ---- Cardinality column ---------------------------------------------------

TEST_P(Table1Test, CardinalityBounds) {
  Relation a = Messy(9);
  Relation b = Messy(10);
  EXPECT_LE(EvalRdup(a, a.schema()).size(), a.size());
  EXPECT_LE(EvalCoalesce(a).size(), a.size());
  EXPECT_EQ(EvalSort(a, {{"Name", true}}).size(), a.size());
  EXPECT_EQ(EvalUnionAll(a, b, a.schema()).size(), a.size() + b.size());
  Relation u = EvalUnion(a, b, a.schema());
  EXPECT_GE(u.size(), a.size());
  EXPECT_LE(u.size(), a.size() + b.size());
  if (!a.empty()) {
    EXPECT_LE(EvalRdupT(a).size(), 2 * a.size() - 1);
  }
  Relation ut = EvalUnionT(a, b);
  EXPECT_GE(ut.size(), a.size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, Table1Test, ::testing::Range<uint64_t>(1, 13));

}  // namespace
}  // namespace tqp
