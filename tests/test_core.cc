// Unit tests for core primitives: values, periods, schemas, tuples,
// relations.
#include <gtest/gtest.h>

#include "core/catalog.h"
#include "core/period.h"
#include "core/relation.h"
#include "test_util.h"

namespace tqp {
namespace {

using testing_util::ConventionalRel;
using testing_util::TemporalRel;

TEST(ValueTest, TotalOrderWithinTypes) {
  EXPECT_LT(Value::Int(1), Value::Int(2));
  EXPECT_LT(Value::String("Anna"), Value::String("John"));
  EXPECT_LT(Value::Time(5), Value::Time(6));
  EXPECT_EQ(Value::Int(3), Value::Int(3));
  EXPECT_NE(Value::Int(3), Value::Int(4));
}

TEST(ValueTest, NumericCrossTypeComparison) {
  EXPECT_EQ(Value::Int(2).Compare(Value::Double(2.0)), 0);
  EXPECT_LT(Value::Int(1), Value::Double(1.5));
  EXPECT_EQ(Value::Time(7).Compare(Value::Int(7)), 0);
}

TEST(ValueTest, NullOrdersFirst) {
  EXPECT_LT(Value::Null(), Value::Int(0));
  EXPECT_LT(Value::Null(), Value::String(""));
  EXPECT_EQ(Value::Null(), Value::Null());
}

TEST(ValueTest, HashConsistentWithEquality) {
  EXPECT_EQ(Value::Int(42).Hash(), Value::Int(42).Hash());
  EXPECT_EQ(Value::String("x").Hash(), Value::String("x").Hash());
  EXPECT_NE(Value::Int(42).Hash(), Value::Int(43).Hash());
}

TEST(ValueTest, ToString) {
  EXPECT_EQ(Value::Int(5).ToString(), "5");
  EXPECT_EQ(Value::String("hi").ToString(), "hi");
  EXPECT_EQ(Value::Null().ToString(), "NULL");
  EXPECT_EQ(Value::Time(kMaxTime).ToString(), "+inf");
  EXPECT_EQ(Value::Time(kMinTime).ToString(), "-inf");
}

TEST(PeriodTest, ValidityAndContainment) {
  EXPECT_TRUE(Period(1, 8).Valid());
  EXPECT_FALSE(Period(3, 3).Valid());
  EXPECT_FALSE(Period(5, 2).Valid());
  EXPECT_TRUE(Period(1, 8).Contains(1));
  EXPECT_TRUE(Period(1, 8).Contains(7));
  EXPECT_FALSE(Period(1, 8).Contains(8));  // closed-open
}

TEST(PeriodTest, OverlapIsHalfOpen) {
  EXPECT_TRUE(Period(1, 8).Overlaps(Period(6, 11)));
  EXPECT_FALSE(Period(1, 8).Overlaps(Period(8, 11)));  // meets, not overlaps
  EXPECT_FALSE(Period(1, 3).Overlaps(Period(5, 7)));
}

TEST(PeriodTest, AdjacencyIsMeets) {
  EXPECT_TRUE(Period(2, 6).Adjacent(Period(6, 12)));
  EXPECT_TRUE(Period(6, 12).Adjacent(Period(2, 6)));
  EXPECT_FALSE(Period(2, 6).Adjacent(Period(7, 9)));
  EXPECT_FALSE(Period(2, 6).Adjacent(Period(2, 6)));  // equal = overlapping
}

TEST(PeriodTest, SubtractProducesUpToTwoFragments) {
  // Middle cut: two fragments.
  std::vector<Period> two = Period(1, 10).Subtract(Period(4, 6));
  ASSERT_EQ(two.size(), 2u);
  EXPECT_EQ(two[0], Period(1, 4));
  EXPECT_EQ(two[1], Period(6, 10));
  // Left trim.
  std::vector<Period> left = Period(1, 10).Subtract(Period(0, 4));
  ASSERT_EQ(left.size(), 1u);
  EXPECT_EQ(left[0], Period(4, 10));
  // Swallowed entirely.
  EXPECT_TRUE(Period(3, 5).Subtract(Period(1, 8)).empty());
  // Disjoint: unchanged.
  std::vector<Period> same = Period(1, 3).Subtract(Period(5, 9));
  ASSERT_EQ(same.size(), 1u);
  EXPECT_EQ(same[0], Period(1, 3));
}

TEST(PeriodTest, SubtractAllAndNormalize) {
  std::vector<Period> frags =
      SubtractAll(Period(0, 20), {Period(2, 4), Period(10, 12), Period(3, 6)});
  ASSERT_EQ(frags.size(), 3u);
  EXPECT_EQ(frags[0], Period(0, 2));
  EXPECT_EQ(frags[1], Period(6, 10));
  EXPECT_EQ(frags[2], Period(12, 20));

  std::vector<Period> norm =
      NormalizePeriods({Period(5, 7), Period(1, 3), Period(3, 5), Period(6, 9)});
  ASSERT_EQ(norm.size(), 1u);
  EXPECT_EQ(norm[0], Period(1, 9));
}

TEST(SchemaTest, TemporalDetection) {
  Relation r = TemporalRel({{"a", 1, 0, 5}});
  EXPECT_TRUE(r.schema().IsTemporal());
  Relation c = ConventionalRel({{"a", 1}});
  EXPECT_FALSE(c.schema().IsTemporal());
  std::vector<std::string> nt = r.schema().NonTemporalAttrNames();
  ASSERT_EQ(nt.size(), 2u);
  EXPECT_EQ(nt[0], "Name");
  EXPECT_EQ(nt[1], "Val");
}

TEST(SchemaTest, PrefixPredicates) {
  SortSpec a = {{"A", true}};
  SortSpec ab = {{"A", true}, {"B", false}};
  EXPECT_TRUE(IsPrefixOf(a, ab));
  EXPECT_FALSE(IsPrefixOf(ab, a));
  EXPECT_TRUE(IsPrefixOf({}, a));
  // Direction matters.
  SortSpec a_desc = {{"A", false}};
  EXPECT_FALSE(IsPrefixOf(a_desc, ab));
}

TEST(SchemaTest, OrderPrefixOnAttrs) {
  SortSpec order = {{"A", true}, {"B", true}, {"C", true}};
  // Projecting on A and C keeps only the prefix ending before B (Table 1).
  SortSpec kept = OrderPrefixOnAttrs(order, {"A", "C"});
  ASSERT_EQ(kept.size(), 1u);
  EXPECT_EQ(kept[0].attr, "A");
}

TEST(TupleTest, ValueEquivalence) {
  Relation r = TemporalRel({{"a", 1, 0, 5}, {"a", 1, 5, 9}, {"b", 1, 0, 5}});
  EXPECT_TRUE(
      ValueEquivalent(r.tuple(0), r.tuple(1), r.schema()));  // times differ
  EXPECT_FALSE(ValueEquivalent(r.tuple(0), r.tuple(2), r.schema()));
}

TEST(RelationTest, SnapshotExtractsAndDropsTimes) {
  Relation r = TemporalRel({{"a", 1, 1, 8}, {"b", 2, 6, 11}, {"a", 1, 2, 6}});
  Relation snap = r.Snapshot(6);
  EXPECT_FALSE(snap.schema().IsTemporal());
  ASSERT_EQ(snap.size(), 2u);  // [1,8) and [6,11) contain 6; [2,6) does not
  EXPECT_EQ(snap.tuple(0).at(0).AsString(), "a");
  EXPECT_EQ(snap.tuple(1).at(0).AsString(), "b");
}

TEST(RelationTest, DuplicateDetection) {
  EXPECT_TRUE(TemporalRel({{"a", 1, 0, 5}, {"a", 1, 0, 5}}).HasDuplicates());
  EXPECT_FALSE(TemporalRel({{"a", 1, 0, 5}, {"a", 1, 5, 9}}).HasDuplicates());
}

TEST(RelationTest, SnapshotDuplicateDetection) {
  // Overlapping value-equivalent periods => snapshot duplicates.
  EXPECT_TRUE(
      TemporalRel({{"a", 1, 0, 5}, {"a", 1, 3, 9}}).HasSnapshotDuplicates());
  // Adjacent periods do not overlap.
  EXPECT_FALSE(
      TemporalRel({{"a", 1, 0, 5}, {"a", 1, 5, 9}}).HasSnapshotDuplicates());
  // Different values never produce snapshot duplicates.
  EXPECT_FALSE(
      TemporalRel({{"a", 1, 0, 5}, {"b", 1, 0, 5}}).HasSnapshotDuplicates());
}

TEST(RelationTest, CoalescedDetection) {
  EXPECT_FALSE(TemporalRel({{"a", 1, 0, 5}, {"a", 1, 5, 9}}).IsCoalesced());
  EXPECT_TRUE(TemporalRel({{"a", 1, 0, 5}, {"a", 1, 6, 9}}).IsCoalesced());
  EXPECT_TRUE(TemporalRel({{"a", 1, 0, 5}, {"b", 1, 5, 9}}).IsCoalesced());
}

TEST(RelationTest, IsSortedBy) {
  Relation r = TemporalRel({{"a", 2, 0, 5}, {"a", 1, 5, 9}, {"b", 0, 0, 2}});
  EXPECT_TRUE(r.IsSortedBy({{"Name", true}}));
  EXPECT_FALSE(r.IsSortedBy({{"Name", true}, {"Val", true}}));
  EXPECT_TRUE(r.IsSortedBy({{"Name", true}, {"Val", false}}));
}

TEST(RelationTest, TimeEndpoints) {
  Relation r = TemporalRel({{"a", 1, 1, 8}, {"b", 2, 6, 11}});
  std::vector<TimePoint> pts = r.TimeEndpoints();
  ASSERT_EQ(pts.size(), 4u);
  EXPECT_EQ(pts[0], 1);
  EXPECT_EQ(pts[3], 11);
}

TEST(CatalogTest, VerifiesDeclaredMetadata) {
  Catalog catalog;
  CatalogEntry entry;
  entry.data = TemporalRel({{"a", 1, 0, 5}, {"a", 1, 0, 5}});
  entry.duplicate_free = true;  // lie: the data has duplicates
  EXPECT_FALSE(catalog.Register("R", entry).ok());

  CatalogEntry ok_entry;
  ok_entry.data = TemporalRel({{"a", 1, 0, 5}, {"a", 1, 6, 9}});
  ok_entry.duplicate_free = true;
  ok_entry.snapshot_duplicate_free = true;
  ok_entry.coalesced = true;
  EXPECT_TRUE(catalog.Register("R", ok_entry).ok());
  EXPECT_TRUE(catalog.Contains("R"));
  EXPECT_FALSE(catalog.Register("R", ok_entry).ok());  // duplicate name
}

TEST(CatalogTest, InferredFlags) {
  Catalog catalog;
  ASSERT_TRUE(catalog
                  .RegisterWithInferredFlags(
                      "R", TemporalRel({{"a", 1, 0, 5}, {"a", 1, 3, 9}}))
                  .ok());
  const CatalogEntry* e = catalog.Find("R");
  ASSERT_NE(e, nullptr);
  EXPECT_TRUE(e->duplicate_free);
  EXPECT_FALSE(e->snapshot_duplicate_free);
}

TEST(CatalogTest, PerRelationVersionTracking) {
  Catalog catalog;
  EXPECT_EQ(catalog.version(), 0u);
  EXPECT_EQ(catalog.relation_version("R"), 0u);  // never registered

  ASSERT_TRUE(
      catalog.RegisterWithInferredFlags("R", TemporalRel({{"a", 1, 0, 5}}))
          .ok());
  ASSERT_TRUE(
      catalog.RegisterWithInferredFlags("S", TemporalRel({{"b", 2, 1, 4}}))
          .ok());
  EXPECT_EQ(catalog.relation_version("R"), 1u);
  EXPECT_EQ(catalog.relation_version("S"), 2u);
  EXPECT_EQ(catalog.version(), 2u);

  // Updating S moves S's stamp (and the global max), never R's.
  CatalogEntry entry;
  entry.data = TemporalRel({{"c", 3, 2, 6}});
  ASSERT_TRUE(catalog.Update("S", entry).ok());
  EXPECT_EQ(catalog.relation_version("R"), 1u);
  EXPECT_EQ(catalog.relation_version("S"), 3u);
  EXPECT_EQ(catalog.version(), 3u);

  // A failed mutation bumps nothing.
  CatalogEntry bad;
  bad.data = TemporalRel({{"d", 4, 0, 5}, {"d", 4, 0, 5}});
  bad.duplicate_free = true;
  EXPECT_FALSE(catalog.Update("S", bad).ok());
  EXPECT_EQ(catalog.relation_version("S"), 3u);
  EXPECT_EQ(catalog.version(), 3u);
  EXPECT_FALSE(catalog.Drop("missing"));
  EXPECT_EQ(catalog.version(), 3u);

  // Drop is a mutation of the dropped name; the tombstone persists, so a
  // re-register under the same name gets a strictly larger stamp.
  EXPECT_TRUE(catalog.Drop("S"));
  EXPECT_EQ(catalog.relation_version("S"), 4u);
  ASSERT_TRUE(
      catalog.RegisterWithInferredFlags("S", TemporalRel({{"e", 5, 1, 2}}))
          .ok());
  EXPECT_EQ(catalog.relation_version("S"), 5u);
  EXPECT_EQ(catalog.relation_version("R"), 1u);
  EXPECT_EQ(catalog.version(), 5u);
}

TEST(RelationTest, ToTableRendersAllCells) {
  Relation r = TemporalRel({{"a", 1, 0, 5}});
  std::string table = r.ToTable("title");
  EXPECT_NE(table.find("title"), std::string::npos);
  EXPECT_NE(table.find("Name"), std::string::npos);
  EXPECT_NE(table.find("T1"), std::string::npos);
  EXPECT_NE(table.find("a"), std::string::npos);
}

}  // namespace
}  // namespace tqp
