// Tests for the Figure 5 enumeration algorithm: correctness (the empirical
// Theorem 6.1 — every enumerated plan computes an ≡SQL-equivalent result),
// determinism, gating behaviour, and the paper's Section 6 walkthrough
// (reaching the Figure 2(b)/6(b) plan from Figure 2(a)).
#include <gtest/gtest.h>

#include "algebra/printer.h"
#include "core/equivalence.h"
#include "exec/evaluator.h"
#include "opt/enumerate.h"
#include "test_util.h"
#include "workload/paper_example.h"

namespace tqp {
namespace {

using P = PlanNode;

EnumerationOptions SmallOptions(size_t max_plans = 600) {
  EnumerationOptions opts;
  opts.max_plans = max_plans;
  return opts;
}

TEST(EnumerateTest, InitialPlanAlwaysIncluded) {
  Catalog catalog = PaperCatalog();
  std::vector<Rule> rules = DefaultRuleSet();
  Result<EnumerationResult> res = EnumeratePlans(
      PaperInitialPlan(), catalog, PaperContract(), rules, SmallOptions());
  ASSERT_TRUE(res.ok()) << res.status().message();
  ASSERT_GE(res->plans.size(), 2u);
  EXPECT_EQ(res->plans[0].canonical, CanonicalString(PaperInitialPlan()));
  EXPECT_EQ(res->plans[0].parent, -1);
}

TEST(EnumerateTest, PlansAreDistinct) {
  Catalog catalog = PaperCatalog();
  std::vector<Rule> rules = DefaultRuleSet();
  Result<EnumerationResult> res = EnumeratePlans(
      PaperInitialPlan(), catalog, PaperContract(), rules, SmallOptions());
  ASSERT_TRUE(res.ok());
  std::set<std::string> canon;
  for (const EnumeratedPlan& p : res->plans) {
    EXPECT_TRUE(canon.insert(p.canonical).second) << "duplicate plan";
  }
}

TEST(EnumerateTest, Deterministic) {
  Catalog catalog = PaperCatalog();
  std::vector<Rule> rules = DefaultRuleSet();
  Result<EnumerationResult> a = EnumeratePlans(
      PaperInitialPlan(), catalog, PaperContract(), rules, SmallOptions());
  Result<EnumerationResult> b = EnumeratePlans(
      PaperInitialPlan(), catalog, PaperContract(), rules, SmallOptions());
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_EQ(a->plans.size(), b->plans.size());
  for (size_t i = 0; i < a->plans.size(); ++i) {
    EXPECT_EQ(a->plans[i].canonical, b->plans[i].canonical);
    EXPECT_EQ(a->plans[i].rule_id, b->plans[i].rule_id);
  }
}

// The empirical Theorem 6.1: every generated plan evaluates to a result
// related to the initial plan's result by the query's ≡SQL equivalence —
// with the DBMS order scrambling ON, so plans that incorrectly rely on
// DBMS-side order would fail.
TEST(EnumerateTest, AllPlansSatisfyTheContract) {
  Catalog catalog = PaperCatalog();
  std::vector<Rule> rules = DefaultRuleSet();
  Result<EnumerationResult> res = EnumeratePlans(
      PaperInitialPlan(), catalog, PaperContract(), rules, SmallOptions(400));
  ASSERT_TRUE(res.ok());
  ASSERT_GE(res->plans.size(), 50u) << "expected a non-trivial plan space";

  EngineConfig engine;
  engine.dbms_scrambles_order = true;

  Result<AnnotatedPlan> base_ann = AnnotatedPlan::Make(
      res->plans[0].plan, &catalog, PaperContract());
  ASSERT_TRUE(base_ann.ok());
  Result<Relation> base = Evaluate(base_ann.value(), engine);
  ASSERT_TRUE(base.ok());

  const SortSpec& order_by = PaperContract().order_by;
  for (size_t i = 1; i < res->plans.size(); ++i) {
    Result<AnnotatedPlan> ann =
        AnnotatedPlan::Make(res->plans[i].plan, &catalog, PaperContract());
    ASSERT_TRUE(ann.ok()) << "plan " << i;
    Result<Relation> out = Evaluate(ann.value(), engine);
    ASSERT_TRUE(out.ok()) << "plan " << i;
    // ≡SQL for an ORDER BY query: ≡L on the ORDER BY columns and ≡M overall.
    EXPECT_TRUE(EquivalentAsMultisets(base.value(), out.value()))
        << "plan " << i << " (derived via "
        << (res->DerivationOf(i).empty() ? "?" : res->DerivationOf(i).back())
        << "):\n"
        << PrintPlan(res->plans[i].plan);
    EXPECT_TRUE(EquivalentAsListsOn(order_by, base.value(), out.value()))
        << "plan " << i << ":\n" << PrintPlan(res->plans[i].plan);
  }
}

TEST(EnumerateTest, WeakerEquivalenceTypesEnlargeThePlanSpace) {
  Catalog catalog = PaperCatalog();
  std::vector<Rule> rules = DefaultRuleSet();
  using ET = EquivalenceType;

  EnumerationOptions only_list = SmallOptions(4000);
  only_list.admitted = {ET::kList};
  EnumerationOptions with_multiset = SmallOptions(4000);
  with_multiset.admitted = {ET::kList, ET::kMultiset};
  EnumerationOptions all = SmallOptions(4000);

  Result<EnumerationResult> r1 = EnumeratePlans(
      PaperInitialPlan(), catalog, PaperContract(), rules, only_list);
  Result<EnumerationResult> r2 = EnumeratePlans(
      PaperInitialPlan(), catalog, PaperContract(), rules, with_multiset);
  Result<EnumerationResult> r3 =
      EnumeratePlans(PaperInitialPlan(), catalog, PaperContract(), rules, all);
  ASSERT_TRUE(r1.ok() && r2.ok() && r3.ok());
  EXPECT_LT(r1->plans.size(), r2->plans.size());
  EXPECT_LT(r2->plans.size(), r3->plans.size());
}

TEST(EnumerateTest, GatingBlocksUnsafeRewrites) {
  // sort_A(r) ≡M r (S2) must NOT be applied above the sort of an ORDER BY
  // query — OrderRequired holds there — but is admitted when the query is a
  // multiset query.
  Catalog catalog = PaperCatalog();
  std::vector<ProjItem> proj = {ProjItem::Pass("EmpName"),
                                ProjItem::Pass(kT1), ProjItem::Pass(kT2)};
  PlanPtr body = P::Project(P::Scan("EMPLOYEE"), proj);
  PlanPtr plan = P::TransferS(P::Sort(body, {SortKey{"EmpName", true}}));

  std::vector<Rule> rules = DefaultRuleSet();
  Result<EnumerationResult> ordered =
      EnumeratePlans(plan, catalog,
                     QueryContract::List({SortKey{"EmpName", true}}), rules,
                     SmallOptions());
  ASSERT_TRUE(ordered.ok());
  for (const EnumeratedPlan& p : ordered->plans) {
    // Every plan must still sort (no plan may drop the only sort).
    EXPECT_NE(p.canonical.find("sort"), std::string::npos) << p.canonical;
  }

  Result<EnumerationResult> multiset = EnumeratePlans(
      plan, catalog, QueryContract::Multiset(), rules, SmallOptions());
  ASSERT_TRUE(multiset.ok());
  bool some_plan_without_sort = false;
  for (const EnumeratedPlan& p : multiset->plans) {
    if (p.canonical.find("sort") == std::string::npos) {
      some_plan_without_sort = true;
    }
  }
  EXPECT_TRUE(some_plan_without_sort);
}

TEST(EnumerateTest, SetContractAdmitsDuplicateInsensitiveRewrites) {
  // rdup(r) ≡S r (D3) is admitted only under a set contract.
  Catalog catalog;
  TQP_CHECK(catalog
                .RegisterWithInferredFlags(
                    "C", testing_util::RandomConventional(9), Site::kStratum)
                .ok());
  PlanPtr plan = P::Rdup(P::Scan("C"));
  std::vector<Rule> rules = DefaultRuleSet();

  Result<EnumerationResult> set_res = EnumeratePlans(
      plan, catalog, QueryContract::Set(), rules, SmallOptions());
  ASSERT_TRUE(set_res.ok());
  bool dropped = false;
  for (const EnumeratedPlan& p : set_res->plans) {
    if (p.canonical == "scan C") dropped = true;
  }
  EXPECT_TRUE(dropped);

  Result<EnumerationResult> ms_res = EnumeratePlans(
      plan, catalog, QueryContract::Multiset(), rules, SmallOptions());
  ASSERT_TRUE(ms_res.ok());
  for (const EnumeratedPlan& p : ms_res->plans) {
    EXPECT_NE(p.canonical, "scan C");
  }
}

TEST(EnumerateTest, ReachesTheFigure2bPlan) {
  // Section 6's walkthrough result: transfers pushed to the leaves, the top
  // rdupT removed (D2), coalescing pushed below \T (C10) with the right-hand
  // coalescing removed (C2), and the sort pushed into the DBMS below T_S.
  Catalog catalog = PaperCatalog();
  std::vector<Rule> rules = DefaultRuleSet();
  Result<EnumerationResult> res =
      EnumeratePlans(PaperInitialPlan(), catalog, PaperContract(), rules,
                     SmallOptions(4000));
  ASSERT_TRUE(res.ok());

  std::vector<ProjItem> proj = {ProjItem::Pass("EmpName"),
                                ProjItem::Pass(kT1), ProjItem::Pass(kT2)};
  PlanPtr fig2b = P::DifferenceT(
      P::Coalesce(P::RdupT(P::TransferS(P::Sort(
          P::Project(P::Scan("EMPLOYEE"), proj), {SortKey{"EmpName", true}})))),
      P::TransferS(P::Project(P::Scan("PROJECT"), proj)));
  std::string target = CanonicalString(fig2b);

  bool found = false;
  for (const EnumeratedPlan& p : res->plans) {
    if (p.canonical == target) {
      found = true;
      break;
    }
  }
  EXPECT_TRUE(found) << "the Figure 2(b) plan was not enumerated; target:\n"
                     << PrintPlan(fig2b);
}

TEST(EnumerateTest, ExpandingRulesRespectTheGrowthBound) {
  Catalog catalog = PaperCatalog();
  RuleSetOptions opts;
  opts.expanding_rules = true;
  std::vector<Rule> rules = DefaultRuleSet(opts);
  EnumerationOptions eopts = SmallOptions(300);
  eopts.max_plan_growth = 2;
  Result<EnumerationResult> res = EnumeratePlans(
      PaperInitialPlan(), catalog, PaperContract(), rules, eopts);
  ASSERT_TRUE(res.ok());
  size_t cap = PlanSize(PaperInitialPlan()) + 2;
  for (const EnumeratedPlan& p : res->plans) {
    EXPECT_LE(PlanSize(p.plan), cap);
  }
}

TEST(EnumerateTest, RuleAdmittedMatrix) {
  // Directly exercise the Figure 5 disjunction on a node with all
  // properties set / cleared.
  Catalog catalog = PaperCatalog();
  PlanPtr plan = PaperInitialPlan();
  Result<AnnotatedPlan> ann =
      AnnotatedPlan::Make(plan, &catalog, PaperContract());
  ASSERT_TRUE(ann.ok());

  const PlanNode* root = plan.get();  // [T T T]
  const PlanNode* diff =
      plan->child(0)->child(0)->child(0)->child(0).get();  // \T: [- - -]
  using ET = EquivalenceType;
  EXPECT_TRUE(RuleAdmitted(ET::kList, {root}, ann.value()));
  EXPECT_FALSE(RuleAdmitted(ET::kMultiset, {root}, ann.value()));
  EXPECT_FALSE(RuleAdmitted(ET::kSnapshotSet, {root}, ann.value()));
  EXPECT_TRUE(RuleAdmitted(ET::kMultiset, {diff}, ann.value()));
  EXPECT_TRUE(RuleAdmitted(ET::kSnapshotSet, {diff}, ann.value()));
  // A location spanning both is as strict as its strictest member.
  EXPECT_FALSE(RuleAdmitted(ET::kMultiset, {root, diff}, ann.value()));
}

}  // namespace
}  // namespace tqp
