// Tests for the temporal operators: exact Figure 3 behaviour for rdupT,
// coalescing minimality, \T fragment semantics on the running example, and
// parameterized snapshot-reducibility property tests for every temporal
// operation (the defining property of Section 2.2).
#include <gtest/gtest.h>

#include "algebra/derivation.h"
#include "core/equivalence.h"
#include "exec/evaluator.h"
#include "test_util.h"
#include "workload/paper_example.h"

namespace tqp {
namespace {

using testing_util::TemporalRel;

Relation ProjectEmployee() {
  // π_{EmpName,T1,T2}(EMPLOYEE) = R1 of Figure 3.
  Relation e = PaperEmployee();
  Schema out;
  out.Add(Attribute{"EmpName", ValueType::kString});
  out.Add(Attribute{kT1, ValueType::kTime});
  out.Add(Attribute{kT2, ValueType::kTime});
  std::vector<ProjItem> items = {ProjItem::Pass("EmpName"),
                                 ProjItem::Pass(kT1), ProjItem::Pass(kT2)};
  Result<Relation> r = EvalProject(e, items, out);
  TQP_CHECK(r.ok());
  return std::move(r).value();
}

TEST(RdupTTest, FigureThreeExactResult) {
  Relation r3 = EvalRdupT(ProjectEmployee());
  ASSERT_EQ(r3.size(), 4u);
  auto expect_row = [&r3](size_t i, const std::string& n, TimePoint a,
                          TimePoint b) {
    EXPECT_EQ(r3.tuple(i).at(0).AsString(), n) << "row " << i;
    EXPECT_EQ(r3.tuple(i).at(1).AsTime(), a) << "row " << i;
    EXPECT_EQ(r3.tuple(i).at(2).AsTime(), b) << "row " << i;
  };
  // "note the timestamps of the second tuple": John [6,11) became [8,11).
  expect_row(0, "John", 1, 8);
  expect_row(1, "John", 8, 11);
  expect_row(2, "Anna", 2, 6);
  expect_row(3, "Anna", 6, 12);
}

TEST(RdupTest, FigureThreeRenamesTimeAttributes) {
  Relation r1 = ProjectEmployee();
  std::vector<Schema> child = {r1.schema()};
  Catalog empty;
  PlanPtr dup = PlanNode::Rdup(PlanNode::Scan("unused"));
  Result<Schema> out_schema = DeriveSchema(*dup, child, empty);
  ASSERT_TRUE(out_schema.ok());
  EXPECT_FALSE(out_schema->IsTemporal());
  EXPECT_TRUE(out_schema->HasAttr("1.T1"));
  EXPECT_TRUE(out_schema->HasAttr("1.T2"));

  Relation r2 = EvalRdup(r1, out_schema.value());
  ASSERT_EQ(r2.size(), 4u);  // the duplicated Anna [2,6) collapses
  EXPECT_EQ(r2.tuple(2).at(0).AsString(), "Anna");
}

TEST(RdupTTest, RemovesRegularDuplicatesToo) {
  Relation r = TemporalRel({{"a", 1, 0, 5}, {"a", 1, 0, 5}});
  Relation out = EvalRdupT(r);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_FALSE(out.HasSnapshotDuplicates());
}

TEST(RdupTTest, IdentityOnSnapshotDuplicateFreeInput) {
  // Rule D2's semantic basis.
  Relation r = TemporalRel({{"a", 1, 0, 5}, {"a", 1, 5, 9}, {"b", 2, 0, 9}});
  EXPECT_TRUE(EquivalentAsLists(EvalRdupT(r), r));
}

TEST(RdupTTest, ResultNeverHasSnapshotDuplicates) {
  for (uint64_t seed = 1; seed <= 25; ++seed) {
    Relation r = testing_util::RandomTemporal(seed);
    Relation out = EvalRdupT(r);
    EXPECT_FALSE(out.HasSnapshotDuplicates()) << "seed " << seed;
    // Snapshot-set equivalent to the input (rule D4).
    EXPECT_TRUE(SnapshotEquivalentAsSets(out, r)) << "seed " << seed;
  }
}

TEST(CoalesceTest, MergesAdjacentOnly) {
  // Minimality (Section 2.4): coalT merges adjacent periods but must not
  // merge overlapping ones (that is rdupT's job) and must not touch
  // duplicates.
  Relation adjacent = TemporalRel({{"a", 1, 2, 6}, {"a", 1, 6, 12}});
  Relation merged = EvalCoalesce(adjacent);
  ASSERT_EQ(merged.size(), 1u);
  EXPECT_EQ(TuplePeriod(merged.tuple(0), merged.schema()), Period(2, 12));

  Relation overlapping = TemporalRel({{"a", 1, 2, 8}, {"a", 1, 6, 12}});
  EXPECT_EQ(EvalCoalesce(overlapping).size(), 2u);

  Relation duplicates = TemporalRel({{"a", 1, 2, 6}, {"a", 1, 2, 6}});
  EXPECT_EQ(EvalCoalesce(duplicates).size(), 2u);
}

TEST(CoalesceTest, TransitiveMergeKeepsHeadPosition) {
  Relation r = TemporalRel(
      {{"b", 9, 0, 3}, {"a", 1, 2, 6}, {"a", 1, 6, 12}, {"a", 1, 12, 20}});
  Relation out = EvalCoalesce(r);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out.tuple(0).at(0).AsString(), "b");
  EXPECT_EQ(out.tuple(1).at(0).AsString(), "a");
  EXPECT_EQ(TuplePeriod(out.tuple(1), out.schema()), Period(2, 20));
}

TEST(CoalesceTest, GrowingHeadRevisitsEarlierTuples) {
  // After absorbing [6,12), the head [2,6) becomes [2,12) and must then
  // absorb the earlier-scanned-but-skipped [12,15).
  Relation r = TemporalRel({{"a", 1, 2, 6}, {"a", 1, 12, 15}, {"a", 1, 6, 12}});
  Relation out = EvalCoalesce(r);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(TuplePeriod(out.tuple(0), out.schema()), Period(2, 15));
}

TEST(CoalesceTest, EnforcesCoalescedResult) {
  for (uint64_t seed = 1; seed <= 25; ++seed) {
    Relation r = testing_util::RandomTemporal(seed);
    Relation out = EvalCoalesce(r);
    EXPECT_TRUE(out.IsCoalesced()) << "seed " << seed;
    // coalT preserves snapshots at the multiset level (rule C2).
    EXPECT_TRUE(SnapshotEquivalentAsMultisets(out, r)) << "seed " << seed;
  }
}

TEST(CoalesceTest, UniqueResultOnSnapshotEquivalentDupFreeInputs) {
  // "coalescing returns a unique relation for all snapshot-equivalent
  // argument relations whose snapshots do not contain duplicates."
  for (uint64_t seed = 1; seed <= 15; ++seed) {
    Relation r = EvalRdupT(testing_util::RandomTemporal(seed));
    // A snapshot-equivalent variant: split every tuple at its midpoint.
    Relation split(r.schema());
    for (const Tuple& t : r.tuples()) {
      Period p = TuplePeriod(t, r.schema());
      if (p.Duration() >= 2) {
        Tuple a = t, b = t;
        SetTuplePeriod(&a, r.schema(), Period(p.begin, p.begin + 1));
        SetTuplePeriod(&b, r.schema(), Period(p.begin + 1, p.end));
        split.Append(a);
        split.Append(b);
      } else {
        split.Append(t);
      }
    }
    EXPECT_TRUE(EquivalentAsMultisets(EvalCoalesce(r), EvalCoalesce(split)))
        << "seed " << seed;
  }
}

TEST(DifferenceTTest, PaperExampleFragments) {
  Relation left = EvalRdupT(ProjectEmployee());
  Relation project = PaperProject();
  Schema out;
  out.Add(Attribute{"EmpName", ValueType::kString});
  out.Add(Attribute{kT1, ValueType::kTime});
  out.Add(Attribute{kT2, ValueType::kTime});
  std::vector<ProjItem> items = {ProjItem::Pass("EmpName"),
                                 ProjItem::Pass(kT1), ProjItem::Pass(kT2)};
  Result<Relation> right = EvalProject(project, items, out);
  ASSERT_TRUE(right.ok());

  Relation diff = EvalDifferenceT(left, right.value());
  // John [1,8) minus {[2,3),[5,6),[7,8)} = [1,2),[3,5),[6,7);
  // John [8,11) minus {[9,10)} = [8,9),[10,11);
  // Anna [2,6) minus {[3,4),[5,6)} = [2,3),[4,5);
  // Anna [6,12) minus {[7,8),[9,10)} = [6,7),[8,9),[10,12).
  ASSERT_EQ(diff.size(), 10u);
  auto expect_row = [&diff](size_t i, const std::string& n, TimePoint a,
                            TimePoint b) {
    EXPECT_EQ(diff.tuple(i).at(0).AsString(), n) << "row " << i;
    EXPECT_EQ(TuplePeriod(diff.tuple(i), diff.schema()), Period(a, b))
        << "row " << i;
  };
  expect_row(0, "John", 1, 2);
  expect_row(1, "John", 3, 5);
  expect_row(2, "John", 6, 7);
  expect_row(3, "John", 8, 9);
  expect_row(4, "John", 10, 11);
  expect_row(5, "Anna", 2, 3);
  expect_row(6, "Anna", 4, 5);
  expect_row(7, "Anna", 6, 7);
  expect_row(8, "Anna", 8, 9);
  expect_row(9, "Anna", 10, 12);
}

TEST(DifferenceTTest, MultisetSnapshotSemanticsWithDuplicates) {
  // Two copies at [0,10) minus one copy at [2,4): one copy survives
  // everywhere, a second copy survives outside [2,4).
  Relation l = TemporalRel({{"a", 1, 0, 10}, {"a", 1, 0, 10}});
  Relation r = TemporalRel({{"a", 1, 2, 4}});
  Relation out = EvalDifferenceT(l, r);
  for (TimePoint t = 0; t < 10; ++t) {
    size_t expected = (t >= 2 && t < 4) ? 1u : 2u;
    EXPECT_EQ(out.Snapshot(t).size(), expected) << "time " << t;
  }
}

TEST(UnionTTest, SnapshotMaxMultiplicity) {
  Relation l = TemporalRel({{"a", 1, 0, 6}});
  Relation r = TemporalRel({{"a", 1, 4, 10}});
  Relation out = EvalUnionT(l, r);
  for (TimePoint t = 0; t < 10; ++t) {
    EXPECT_EQ(out.Snapshot(t).size(), 1u) << "time " << t;
  }
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(TuplePeriod(out.tuple(1), out.schema()), Period(6, 10));
}

TEST(ProductTTest, KeepsArgumentPeriodsAndOverlap) {
  Relation l = TemporalRel({{"a", 1, 0, 6}});
  Relation r = TemporalRel({{"b", 2, 4, 10}, {"c", 3, 7, 9}});
  Schema ls = l.schema();
  // Output schema: Name, Val, (right) Name2.., via DeriveSchema.
  PlanPtr node = PlanNode::ProductT(PlanNode::Scan("x"), PlanNode::Scan("y"));
  Catalog empty;
  Result<Schema> schema = DeriveSchema(*node, {ls, r.schema()}, empty);
  ASSERT_TRUE(schema.ok());
  Relation out = EvalProductT(l, r, schema.value());
  ASSERT_EQ(out.size(), 1u);  // only [0,6)x[4,10) overlap
  const Schema& os = out.schema();
  EXPECT_EQ(out.tuple(0).at(static_cast<size_t>(os.IndexOf("1.T1"))).AsTime(),
            0);
  EXPECT_EQ(out.tuple(0).at(static_cast<size_t>(os.IndexOf("2.T1"))).AsTime(),
            4);
  EXPECT_EQ(TuplePeriod(out.tuple(0), os), Period(4, 6));
}

TEST(AggregateTTest, ConstancyIntervals) {
  // Two overlapping spells for one group: counts 1,2,1 across the sweep.
  Relation r = TemporalRel({{"a", 5, 0, 6}, {"a", 7, 4, 10}});
  Schema out_schema;
  out_schema.Add(Attribute{"Name", ValueType::kString});
  out_schema.Add(Attribute{"cnt", ValueType::kInt});
  out_schema.Add(Attribute{"mx", ValueType::kInt});
  out_schema.Add(Attribute{kT1, ValueType::kTime});
  out_schema.Add(Attribute{kT2, ValueType::kTime});
  std::vector<AggSpec> aggs = {AggSpec{AggFunc::kCount, "", "cnt"},
                               AggSpec{AggFunc::kMax, "Val", "mx"}};
  Result<Relation> out = EvalAggregateT(r, {"Name"}, aggs, out_schema);
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->size(), 3u);
  EXPECT_EQ(TuplePeriod(out->tuple(0), out_schema), Period(0, 4));
  EXPECT_EQ(out->tuple(0).at(1).AsInt(), 1);
  EXPECT_EQ(out->tuple(0).at(2).AsInt(), 5);
  EXPECT_EQ(TuplePeriod(out->tuple(1), out_schema), Period(4, 6));
  EXPECT_EQ(out->tuple(1).at(1).AsInt(), 2);
  EXPECT_EQ(out->tuple(1).at(2).AsInt(), 7);
  EXPECT_EQ(TuplePeriod(out->tuple(2), out_schema), Period(6, 10));
  EXPECT_EQ(out->tuple(2).at(1).AsInt(), 1);
  EXPECT_EQ(out->tuple(2).at(2).AsInt(), 7);
}

TEST(AggregateTTest, MergesEqualAdjacentResults) {
  // Identical MAX on both sides of an endpoint: intervals merge.
  Relation r = TemporalRel({{"a", 5, 0, 4}, {"a", 5, 4, 8}});
  Schema out_schema;
  out_schema.Add(Attribute{"Name", ValueType::kString});
  out_schema.Add(Attribute{"mx", ValueType::kInt});
  out_schema.Add(Attribute{kT1, ValueType::kTime});
  out_schema.Add(Attribute{kT2, ValueType::kTime});
  std::vector<AggSpec> aggs = {AggSpec{AggFunc::kMax, "Val", "mx"}};
  Result<Relation> out = EvalAggregateT(r, {"Name"}, aggs, out_schema);
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->size(), 1u);
  EXPECT_EQ(TuplePeriod(out->tuple(0), out_schema), Period(0, 8));
}

// ---- Snapshot reducibility (Section 2.2) --------------------------------
// For every temporal operation opT and every time point t:
//   snapshot(opT(r), t) ≡M op(snapshot(r, t)).
// Checked on randomized inputs at every elementary interval.

class SnapshotReducibilityTest : public ::testing::TestWithParam<uint64_t> {};

std::vector<TimePoint> AllEndpoints(const Relation& a, const Relation& b) {
  std::vector<TimePoint> pts = a.TimeEndpoints();
  std::vector<TimePoint> pb = b.TimeEndpoints();
  pts.insert(pts.end(), pb.begin(), pb.end());
  std::sort(pts.begin(), pts.end());
  pts.erase(std::unique(pts.begin(), pts.end()), pts.end());
  return pts;
}

TEST_P(SnapshotReducibilityTest, RdupTReducesToRdup) {
  Relation r = testing_util::RandomTemporal(GetParam());
  Relation out = EvalRdupT(r);
  for (TimePoint t : AllEndpoints(r, out)) {
    Relation snap_in = r.Snapshot(t);
    Relation expected = EvalRdup(snap_in, snap_in.schema());
    EXPECT_TRUE(EquivalentAsMultisets(out.Snapshot(t), expected))
        << "time " << t;
  }
}

TEST_P(SnapshotReducibilityTest, DifferenceTReducesToDifference) {
  Relation l = testing_util::RandomTemporal(GetParam());
  Relation r = testing_util::RandomTemporal(GetParam() + 1000);
  Relation out = EvalDifferenceT(l, r);
  for (TimePoint t : AllEndpoints(l, r)) {
    Relation expected = EvalDifference(l.Snapshot(t), r.Snapshot(t));
    EXPECT_TRUE(EquivalentAsMultisets(out.Snapshot(t), expected))
        << "time " << t;
  }
}

TEST_P(SnapshotReducibilityTest, UnionTReducesToUnion) {
  Relation l = testing_util::RandomTemporal(GetParam());
  Relation r = testing_util::RandomTemporal(GetParam() + 2000);
  Relation out = EvalUnionT(l, r);
  for (TimePoint t : AllEndpoints(l, r)) {
    Relation expected =
        EvalUnion(l.Snapshot(t), r.Snapshot(t), l.Snapshot(t).schema());
    EXPECT_TRUE(EquivalentAsMultisets(out.Snapshot(t), expected))
        << "time " << t;
  }
}

TEST_P(SnapshotReducibilityTest, AggregateTReducesToAggregate) {
  Relation r = testing_util::RandomTemporal(GetParam());
  Schema out_schema;
  out_schema.Add(Attribute{"Name", ValueType::kString});
  out_schema.Add(Attribute{"cnt", ValueType::kInt});
  out_schema.Add(Attribute{"sum", ValueType::kInt});
  out_schema.Add(Attribute{kT1, ValueType::kTime});
  out_schema.Add(Attribute{kT2, ValueType::kTime});
  std::vector<AggSpec> aggs = {AggSpec{AggFunc::kCount, "", "cnt"},
                               AggSpec{AggFunc::kSum, "Val", "sum"}};
  Result<Relation> out = EvalAggregateT(r, {"Name"}, aggs, out_schema);
  ASSERT_TRUE(out.ok());

  Schema snap_schema;
  snap_schema.Add(Attribute{"Name", ValueType::kString});
  snap_schema.Add(Attribute{"cnt", ValueType::kInt});
  snap_schema.Add(Attribute{"sum", ValueType::kInt});
  for (TimePoint t : AllEndpoints(r, out.value())) {
    Relation snap_in = r.Snapshot(t);
    Result<Relation> expected =
        EvalAggregate(snap_in, {"Name"}, aggs, snap_schema);
    ASSERT_TRUE(expected.ok());
    EXPECT_TRUE(
        EquivalentAsMultisets(out->Snapshot(t), expected.value()))
        << "time " << t;
  }
}

TEST_P(SnapshotReducibilityTest, ProductTReducesToProductModuloTimestamps) {
  Relation l = testing_util::RandomTemporal(GetParam(), 10);
  Relation r = testing_util::RandomTemporal(GetParam() + 3000, 10);
  PlanPtr node = PlanNode::ProductT(PlanNode::Scan("x"), PlanNode::Scan("y"));
  Catalog empty;
  Result<Schema> schema = DeriveSchema(*node, {l.schema(), r.schema()}, empty);
  ASSERT_TRUE(schema.ok());
  Relation out = EvalProductT(l, r, schema.value());
  // Compare the non-timestamp columns of each snapshot: ×T additionally
  // retains the argument periods (1.T1..2.T2), which plain × over snapshots
  // does not produce.
  for (TimePoint t : AllEndpoints(l, r)) {
    Relation ls = l.Snapshot(t);
    Relation rs = r.Snapshot(t);
    size_t expected_pairs = ls.size() * rs.size();
    EXPECT_EQ(out.Snapshot(t).size(), expected_pairs) << "time " << t;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SnapshotReducibilityTest,
                         ::testing::Range<uint64_t>(1, 21));

}  // namespace
}  // namespace tqp
