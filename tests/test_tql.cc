// Tests for the TQL front-end: lexer, parser, and translation to initial
// algebra plans with the Definition 5.1 contract.
#include <gtest/gtest.h>

#include "algebra/printer.h"
#include "core/equivalence.h"
#include "exec/evaluator.h"
#include "tql/lexer.h"
#include "tql/translator.h"
#include "workload/paper_example.h"

namespace tqp {
namespace {

TEST(LexerTest, TokenizesKeywordsIdentifiersAndLiterals) {
  Result<std::vector<Token>> toks =
      Lex("SELECT EmpName, 42, 3.5, 'text' FROM employee");
  ASSERT_TRUE(toks.ok());
  EXPECT_TRUE((*toks)[0].IsKeyword("SELECT"));
  EXPECT_EQ((*toks)[1].kind, TokenKind::kIdentifier);
  EXPECT_EQ((*toks)[1].text, "EmpName");
  EXPECT_EQ((*toks)[3].kind, TokenKind::kInteger);
  EXPECT_EQ((*toks)[5].kind, TokenKind::kFloat);
  EXPECT_EQ((*toks)[7].kind, TokenKind::kString);
  EXPECT_EQ((*toks)[7].text, "text");
}

TEST(LexerTest, KeywordsAreCaseInsensitive) {
  Result<std::vector<Token>> toks = Lex("select distinct from");
  ASSERT_TRUE(toks.ok());
  EXPECT_TRUE((*toks)[0].IsKeyword("SELECT"));
  EXPECT_TRUE((*toks)[1].IsKeyword("DISTINCT"));
}

TEST(LexerTest, DottedProductNames) {
  Result<std::vector<Token>> toks = Lex("1.T1 <= 2.Name");
  ASSERT_TRUE(toks.ok());
  EXPECT_EQ((*toks)[0].kind, TokenKind::kIdentifier);
  EXPECT_EQ((*toks)[0].text, "1.T1");
  EXPECT_TRUE((*toks)[1].IsSymbol("<="));
  EXPECT_EQ((*toks)[2].text, "2.Name");
}

TEST(LexerTest, RejectsUnterminatedString) {
  EXPECT_FALSE(Lex("SELECT 'oops").ok());
}

TEST(LexerTest, SkipsLineComments) {
  Result<std::vector<Token>> toks =
      Lex("SELECT -- the projection\n EmpName -- trailing");
  ASSERT_TRUE(toks.ok());
  ASSERT_EQ(toks->size(), 3u);  // SELECT, EmpName, kEnd
  EXPECT_TRUE((*toks)[0].IsKeyword("SELECT"));
  EXPECT_EQ((*toks)[1].text, "EmpName");
  EXPECT_EQ((*toks)[2].kind, TokenKind::kEnd);
  // A lone minus still lexes as an operator.
  Result<std::vector<Token>> minus = Lex("a - b");
  ASSERT_TRUE(minus.ok());
  EXPECT_TRUE((*minus)[1].IsSymbol("-"));
}

TEST(LexerTest, TokenStreamKeyNormalizesSpacingCommentsAndKeywordCase) {
  auto key = [](const std::string& text) {
    Result<std::vector<Token>> toks = Lex(text);
    TQP_CHECK(toks.ok());
    return TokenStreamKey(toks.value());
  };
  EXPECT_EQ(key("SELECT Dept FROM EMPLOYEE"),
            key("select  Dept\n\tFROM -- comment\n EMPLOYEE"));
  // Different token streams must never share a key: the length prefixes
  // keep adjacent tokens from re-associating.
  EXPECT_NE(key("SELECT Dept FROM EMPLOYEE"), key("SELECT Dep FROM EMPLOYEE"));
  EXPECT_NE(key("SELECT 'a b'"), key("SELECT 'a' 'b'"));
  EXPECT_NE(key("SELECT ab"), key("SELECT a b"));
  // Identifier case is significant (only keywords normalize).
  EXPECT_NE(key("SELECT Dept"), key("SELECT DEPT"));
}

TEST(ParserTest, ParsesTheFullGrammar) {
  Result<QueryAst> ast = ParseQuery(
      "VALIDTIME COALESCED SELECT DISTINCT EmpName, Dept AS D "
      "FROM EMPLOYEE, PROJECT WHERE EmpName = 'John' AND T1 >= 3 "
      "ORDER BY EmpName ASC, D DESC");
  ASSERT_TRUE(ast.ok()) << ast.status().message();
  ASSERT_EQ(ast->stmts.size(), 1u);
  const SelectStmt& s = ast->stmts[0];
  EXPECT_TRUE(s.validtime);
  EXPECT_TRUE(s.coalesced);
  EXPECT_TRUE(s.distinct);
  ASSERT_EQ(s.items.size(), 2u);
  EXPECT_EQ(s.items[1].alias, "D");
  ASSERT_EQ(s.from.size(), 2u);
  ASSERT_NE(s.where, nullptr);
  ASSERT_EQ(ast->order_by.size(), 2u);
  EXPECT_FALSE(ast->order_by[1].ascending);
}

TEST(ParserTest, ParsesSetOperations) {
  Result<QueryAst> ast = ParseQuery(
      "SELECT Name FROM A EXCEPT ALL SELECT Name FROM B "
      "UNION SELECT Name FROM C");
  ASSERT_TRUE(ast.ok());
  ASSERT_EQ(ast->stmts.size(), 3u);
  ASSERT_EQ(ast->ops.size(), 2u);
  EXPECT_EQ(ast->ops[0], QueryAst::SetOp::kExceptAll);
  EXPECT_EQ(ast->ops[1], QueryAst::SetOp::kUnion);
}

TEST(ParserTest, ParsesAggregates) {
  Result<QueryAst> ast = ParseQuery(
      "SELECT Dept, COUNT(*) AS n, AVG(Salary) FROM EMP GROUP BY Dept");
  ASSERT_TRUE(ast.ok());
  const SelectStmt& s = ast->stmts[0];
  ASSERT_EQ(s.items.size(), 3u);
  EXPECT_EQ(s.items[1].kind, SelectItem::Kind::kAggregate);
  EXPECT_EQ(s.items[1].agg.func, AggFunc::kCount);
  EXPECT_EQ(s.items[1].alias, "n");
  EXPECT_EQ(s.items[2].agg.func, AggFunc::kAvg);
  ASSERT_EQ(s.group_by.size(), 1u);
}

TEST(ParserTest, RejectsBadSyntax) {
  EXPECT_FALSE(ParseQuery("SELECT FROM x").ok());
  EXPECT_FALSE(ParseQuery("SELECT a").ok());
  EXPECT_FALSE(ParseQuery("SELECT a FROM t WHERE").ok());
  EXPECT_FALSE(ParseQuery("SELECT a FROM t ORDER EmpName").ok());
  EXPECT_FALSE(ParseQuery("SELECT a FROM t garbage").ok());
}

TEST(TranslatorTest, PaperQueryMatchesTheHandBuiltInitialPlan) {
  // The TQL mapping of the running example must produce exactly the
  // Figure 2(a) operator tree.
  Catalog catalog = PaperCatalog();
  Result<TranslatedQuery> q = CompileQuery(PaperQueryText(), catalog);
  ASSERT_TRUE(q.ok()) << q.status().message();
  EXPECT_EQ(CanonicalString(q->plan), CanonicalString(PaperInitialPlan()));
  EXPECT_EQ(q->contract.result_type, ResultType::kList);
  ASSERT_EQ(q->contract.order_by.size(), 1u);
  EXPECT_EQ(q->contract.order_by[0].attr, "EmpName");
}

TEST(TranslatorTest, ContractFollowsDistinctAndOrderBy) {
  Catalog catalog = PaperCatalog();
  Result<TranslatedQuery> multiset =
      CompileQuery("SELECT EmpName FROM EMPLOYEE", catalog);
  ASSERT_TRUE(multiset.ok());
  EXPECT_EQ(multiset->contract.result_type, ResultType::kMultiset);

  Result<TranslatedQuery> set =
      CompileQuery("SELECT DISTINCT EmpName FROM EMPLOYEE", catalog);
  ASSERT_TRUE(set.ok());
  EXPECT_EQ(set->contract.result_type, ResultType::kSet);

  Result<TranslatedQuery> list = CompileQuery(
      "SELECT DISTINCT EmpName FROM EMPLOYEE ORDER BY EmpName", catalog);
  ASSERT_TRUE(list.ok());
  EXPECT_EQ(list->contract.result_type, ResultType::kList);
}

TEST(TranslatorTest, ValidtimeAppendsTimeAttributes) {
  Catalog catalog = PaperCatalog();
  Result<TranslatedQuery> q =
      CompileQuery("VALIDTIME SELECT EmpName FROM EMPLOYEE", catalog);
  ASSERT_TRUE(q.ok());
  Result<AnnotatedPlan> ann =
      AnnotatedPlan::Make(q->plan, &catalog, q->contract);
  ASSERT_TRUE(ann.ok());
  EXPECT_TRUE(ann->root_info().schema.IsTemporal());
}

TEST(TranslatorTest, ConventionalQueryOverTemporalTableTreatsTimesAsData) {
  Catalog catalog = PaperCatalog();
  Result<TranslatedQuery> q = CompileQuery(
      "SELECT EmpName, T1 FROM EMPLOYEE WHERE T2 > 8", catalog);
  ASSERT_TRUE(q.ok());
  EngineConfig engine;
  Result<AnnotatedPlan> ann =
      AnnotatedPlan::Make(q->plan, &catalog, q->contract);
  ASSERT_TRUE(ann.ok());
  Result<Relation> out = Evaluate(ann.value(), engine);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->size(), 2u);  // only [6,11) and [6,12) satisfy T2 > 8
  EXPECT_FALSE(out->schema().IsTemporal());
}

TEST(TranslatorTest, AggregationQueries) {
  Catalog catalog = PaperCatalog();
  Result<TranslatedQuery> q = CompileQuery(
      "SELECT EmpName, COUNT(*) AS spells FROM EMPLOYEE GROUP BY EmpName "
      "ORDER BY EmpName",
      catalog);
  ASSERT_TRUE(q.ok()) << q.status().message();
  Result<AnnotatedPlan> ann =
      AnnotatedPlan::Make(q->plan, &catalog, q->contract);
  ASSERT_TRUE(ann.ok());
  Result<Relation> out = Evaluate(ann.value(), EngineConfig{});
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->size(), 2u);
  EXPECT_EQ(out->tuple(0).at(0).AsString(), "Anna");
  EXPECT_EQ(out->tuple(0).at(1).AsInt(), 3);
  EXPECT_EQ(out->tuple(1).at(0).AsString(), "John");
  EXPECT_EQ(out->tuple(1).at(1).AsInt(), 2);
}

TEST(TranslatorTest, ValidtimeAggregation) {
  Catalog catalog = PaperCatalog();
  Result<TranslatedQuery> q = CompileQuery(
      "VALIDTIME SELECT EmpName, COUNT(*) AS jobs FROM EMPLOYEE "
      "GROUP BY EmpName",
      catalog);
  ASSERT_TRUE(q.ok()) << q.status().message();
  Result<AnnotatedPlan> ann =
      AnnotatedPlan::Make(q->plan, &catalog, q->contract);
  ASSERT_TRUE(ann.ok());
  Result<Relation> out = Evaluate(ann.value(), EngineConfig{});
  ASSERT_TRUE(out.ok());
  EXPECT_TRUE(out->schema().IsTemporal());
  // John holds 1 job in [1,6), 2 in [6,8), 1 in [8,11).
  bool found = false;
  for (const Tuple& t : out->tuples()) {
    if (t.at(0).AsString() == "John" &&
        TuplePeriod(t, out->schema()) == Period(6, 8)) {
      EXPECT_EQ(t.at(1).AsInt(), 2);
      found = true;
    }
  }
  EXPECT_TRUE(found) << out->ToTable();
}

TEST(TranslatorTest, SemanticErrors) {
  Catalog catalog = PaperCatalog();
  EXPECT_FALSE(CompileQuery("SELECT x FROM NOPE", catalog).ok());
  EXPECT_FALSE(CompileQuery("SELECT Missing FROM EMPLOYEE", catalog).ok());
  EXPECT_FALSE(
      CompileQuery("SELECT EmpName FROM EMPLOYEE GROUP BY EmpName", catalog)
          .ok());  // GROUP BY without aggregates
  EXPECT_FALSE(CompileQuery(
                   "SELECT Dept, COUNT(*) AS c FROM EMPLOYEE GROUP BY EmpName",
                   catalog)
                   .ok());  // Dept not grouped
  // VALIDTIME scopes over the whole query from the leading statement; later
  // branches inherit it (the paper's example query relies on this) ...
  EXPECT_TRUE(CompileQuery(
                  "VALIDTIME SELECT EmpName FROM EMPLOYEE UNION ALL "
                  "SELECT EmpName FROM PROJECT",
                  catalog)
                  .ok());
  // ... but a later branch cannot introduce VALIDTIME on its own.
  EXPECT_FALSE(CompileQuery(
                   "SELECT EmpName FROM EMPLOYEE UNION ALL "
                   "VALIDTIME SELECT EmpName FROM PROJECT",
                   catalog)
                   .ok());
}

TEST(TranslatorTest, StandaloneModeOmitsTransfers) {
  // A stand-alone temporal DBMS (no stratum): relations live at the stratum
  // site and no transfer is emitted.
  Catalog catalog;
  TQP_CHECK(catalog
                .RegisterWithInferredFlags("EMPLOYEE", PaperEmployee(),
                                           Site::kStratum)
                .ok());
  TranslatorOptions options;
  options.layered = false;
  Result<TranslatedQuery> q = CompileQuery(
      "VALIDTIME SELECT EmpName FROM EMPLOYEE", catalog, options);
  ASSERT_TRUE(q.ok()) << q.status().message();
  std::vector<PlanPtr> nodes;
  CollectNodes(q->plan, &nodes);
  for (const PlanPtr& n : nodes) {
    EXPECT_NE(n->kind(), OpKind::kTransferS);
    EXPECT_NE(n->kind(), OpKind::kTransferD);
  }
}

TEST(TranslatorTest, MaxUnionExposesAlgebraUnion) {
  Catalog catalog = PaperCatalog();
  Result<TranslatedQuery> q = CompileQuery(
      "VALIDTIME SELECT EmpName FROM EMPLOYEE MAXUNION "
      "SELECT EmpName FROM PROJECT",
      catalog);
  ASSERT_TRUE(q.ok()) << q.status().message();
  std::vector<PlanPtr> nodes;
  CollectNodes(q->plan, &nodes);
  bool has_uniont = false;
  for (const PlanPtr& n : nodes) {
    if (n->kind() == OpKind::kUnionT) has_uniont = true;
  }
  EXPECT_TRUE(has_uniont);
}

}  // namespace
}  // namespace tqp
