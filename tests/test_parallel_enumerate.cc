// Tests for the parallel memo-search driver: an N-thread run must be
// byte-identical to the serial (num_threads = 1) run — the admitted plan
// sequence with parents, rule ids, and canonical strings, the per-plan
// costs, and every counter (matches, admitted, gated_out, memo_hits,
// cost_pruned, expanded, truncated, interner/cache totals) — under both
// search strategies, with pruning, plan caps, and expansion budgets, and
// against warm session caches. CI runs this suite under TSan.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "algebra/intern.h"
#include "opt/enumerate.h"
#include "opt/optimizer.h"
#include "test_util.h"
#include "workload/paper_example.h"

namespace tqp {
namespace {

EnumerationOptions Options(size_t num_threads,
                           SearchStrategy strategy = SearchStrategy::kBreadthFirst,
                           double prune_factor = 0.0,
                           size_t max_expansions = 0) {
  EnumerationOptions opts;
  opts.max_plans = 4000;
  opts.num_threads = num_threads;
  opts.strategy = strategy;
  opts.cost_prune_factor = prune_factor;
  opts.max_expansions = max_expansions;
  return opts;
}

Result<EnumerationResult> RunSearch(const EnumerationOptions& opts,
                                    PlanInterner* interner = nullptr,
                                    DerivationCache* derivation = nullptr) {
  Catalog catalog = PaperCatalog();
  return EnumeratePlans(PaperInitialPlan(), catalog, PaperContract(),
                        DefaultRuleSet(), opts, interner, derivation);
}

/// The byte-identity claim: the admitted plan sequence (with parents, rule
/// ids, and canonical strings), the per-plan costs, and every search
/// counter. The interner/cache session totals are deliberately excluded —
/// they count the parallel driver's speculative materialization too and are
/// documented as non-deterministic driver/session observability.
void ExpectIdenticalOutcome(const EnumerationResult& a,
                            const EnumerationResult& b) {
  ASSERT_EQ(a.plans.size(), b.plans.size());
  for (size_t i = 0; i < a.plans.size(); ++i) {
    EXPECT_EQ(a.plans[i].fingerprint, b.plans[i].fingerprint) << i;
    EXPECT_EQ(a.plans[i].parent, b.plans[i].parent) << i;
    EXPECT_EQ(a.plans[i].rule_id, b.plans[i].rule_id) << i;
    EXPECT_EQ(a.plans[i].canonical, b.plans[i].canonical) << i;
  }
  EXPECT_EQ(a.truncated, b.truncated);
  EXPECT_EQ(a.matches, b.matches);
  EXPECT_EQ(a.admitted, b.admitted);
  EXPECT_EQ(a.gated_out, b.gated_out);
  EXPECT_EQ(a.memo_hits, b.memo_hits);
  EXPECT_EQ(a.cost_pruned, b.cost_pruned);
  EXPECT_EQ(a.expanded, b.expanded);
  EXPECT_EQ(a.costs, b.costs);
}

TEST(ParallelEnumerateTest, BreadthFirstIsByteIdenticalToSerial) {
  Result<EnumerationResult> serial = RunSearch(Options(1));
  ASSERT_TRUE(serial.ok());
  EXPECT_GT(serial->plans.size(), 100u);  // a real search space
  for (size_t threads : {2u, 4u, 8u}) {
    SCOPED_TRACE(threads);
    Result<EnumerationResult> parallel = RunSearch(Options(threads));
    ASSERT_TRUE(parallel.ok());
    ExpectIdenticalOutcome(serial.value(), parallel.value());
  }
}

TEST(ParallelEnumerateTest, BestFirstWithPruningIsByteIdentical) {
  EnumerationOptions serial_opts =
      Options(1, SearchStrategy::kBestFirst, /*prune_factor=*/1.5);
  Result<EnumerationResult> serial = RunSearch(serial_opts);
  ASSERT_TRUE(serial.ok());
  EXPECT_GT(serial->cost_pruned, 0u);  // pruning actually engaged

  for (size_t threads : {2u, 4u}) {
    SCOPED_TRACE(threads);
    Result<EnumerationResult> parallel =
        RunSearch(Options(threads, SearchStrategy::kBestFirst, 1.5));
    ASSERT_TRUE(parallel.ok());
    ExpectIdenticalOutcome(serial.value(), parallel.value());
  }
}

TEST(ParallelEnumerateTest, BreadthFirstWithPruningIsByteIdentical) {
  Result<EnumerationResult> serial =
      RunSearch(Options(1, SearchStrategy::kBreadthFirst, 1.3));
  Result<EnumerationResult> parallel =
      RunSearch(Options(4, SearchStrategy::kBreadthFirst, 1.3));
  ASSERT_TRUE(serial.ok() && parallel.ok());
  EXPECT_GT(serial->cost_pruned, 0u);
  ExpectIdenticalOutcome(serial.value(), parallel.value());
}

TEST(ParallelEnumerateTest, PlanCapTruncationIsByteIdentical) {
  // A cap that cuts the search mid-expansion: the last expanded plan's
  // counters stop at the exact event where the cap was reached, which the
  // parallel replay must reproduce.
  for (size_t cap : {2u, 17u, 120u}) {
    SCOPED_TRACE(cap);
    EnumerationOptions serial_opts = Options(1);
    serial_opts.max_plans = cap;
    EnumerationOptions parallel_opts = Options(4);
    parallel_opts.max_plans = cap;
    Result<EnumerationResult> serial = RunSearch(serial_opts);
    Result<EnumerationResult> parallel = RunSearch(parallel_opts);
    ASSERT_TRUE(serial.ok() && parallel.ok());
    EXPECT_TRUE(serial->truncated);
    ExpectIdenticalOutcome(serial.value(), parallel.value());
  }
}

TEST(ParallelEnumerateTest, ExpansionBudgetIsByteIdentical) {
  for (SearchStrategy strategy :
       {SearchStrategy::kBreadthFirst, SearchStrategy::kBestFirst}) {
    SCOPED_TRACE(static_cast<int>(strategy));
    Result<EnumerationResult> serial =
        RunSearch(Options(1, strategy, 0.0, /*max_expansions=*/37));
    Result<EnumerationResult> parallel =
        RunSearch(Options(4, strategy, 0.0, /*max_expansions=*/37));
    ASSERT_TRUE(serial.ok() && parallel.ok());
    EXPECT_EQ(serial->expanded, 37u);
    ExpectIdenticalOutcome(serial.value(), parallel.value());
  }
}

TEST(ParallelEnumerateTest, WarmSessionCachesAreByteIdenticalToo) {
  // The Engine's invariant, now concurrent: against primed session caches
  // the parallel driver still admits the identical sequence, and a warm
  // re-run of an exhaustive search derives nothing new (in an exhaustive
  // run every admitted plan is expanded, so speculation does exactly the
  // serial driver's work and the cache totals are deterministic too).
  Catalog catalog = PaperCatalog();
  std::vector<Rule> rules = DefaultRuleSet();
  EnumerationOptions opts = Options(4);

  PlanInterner interner;
  DerivationCache derivation;
  Result<EnumerationResult> cold =
      EnumeratePlans(PaperInitialPlan(), catalog, PaperContract(), rules,
                     opts, &interner, &derivation);
  ASSERT_TRUE(cold.ok());
  ASSERT_FALSE(cold->truncated);
  size_t cold_cache = cold->cache_nodes;

  Result<EnumerationResult> warm =
      EnumeratePlans(PaperInitialPlan(), catalog, PaperContract(), rules,
                     opts, &interner, &derivation);
  ASSERT_TRUE(warm.ok());
  ASSERT_EQ(warm->plans.size(), cold->plans.size());
  for (size_t i = 0; i < cold->plans.size(); ++i) {
    EXPECT_EQ(warm->plans[i].fingerprint, cold->plans[i].fingerprint);
    EXPECT_EQ(warm->plans[i].parent, cold->plans[i].parent);
    EXPECT_EQ(warm->plans[i].rule_id, cold->plans[i].rule_id);
  }
  EXPECT_EQ(warm->cache_nodes, cold_cache);  // nothing new to derive

  // And the warm parallel sequence equals the cold serial sequence —
  // including under best-first with pruning, where speculation is heaviest.
  Result<EnumerationResult> warm_pruned =
      EnumeratePlans(PaperInitialPlan(), catalog, PaperContract(), rules,
                     Options(4, SearchStrategy::kBestFirst, 1.5), &interner,
                     &derivation);
  Result<EnumerationResult> serial = RunSearch(
      Options(1, SearchStrategy::kBestFirst, 1.5));
  ASSERT_TRUE(warm_pruned.ok() && serial.ok());
  ExpectIdenticalOutcome(serial.value(), warm_pruned.value());
}

TEST(ParallelEnumerateTest, ContractVariantsAreByteIdentical) {
  Catalog catalog = PaperCatalog();
  std::vector<Rule> rules = DefaultRuleSet();
  for (const QueryContract& contract :
       {QueryContract::Multiset(), QueryContract::Set()}) {
    SCOPED_TRACE(ResultTypeName(contract.result_type));
    Result<EnumerationResult> serial = EnumeratePlans(
        PaperInitialPlan(), catalog, contract, rules, Options(1));
    Result<EnumerationResult> parallel = EnumeratePlans(
        PaperInitialPlan(), catalog, contract, rules, Options(4));
    ASSERT_TRUE(serial.ok() && parallel.ok());
    ExpectIdenticalOutcome(serial.value(), parallel.value());
  }
}

TEST(ParallelEnumerateTest, AutoThreadCountRuns) {
  // num_threads = 0 resolves to the hardware concurrency (>= 1) and must
  // produce the same outcome whichever driver that selects.
  Result<EnumerationResult> serial = RunSearch(Options(1));
  Result<EnumerationResult> any = RunSearch(Options(0));
  ASSERT_TRUE(serial.ok() && any.ok());
  ExpectIdenticalOutcome(serial.value(), any.value());
}

TEST(ParallelEnumerateTest, OptimizerThreadsThroughParallelDriver) {
  // Optimize with num_threads = 4 chooses the identical plan at the
  // identical cost as the serial optimizer.
  Catalog catalog = PaperCatalog();
  OptimizerOptions serial_opt, parallel_opt;
  serial_opt.enumeration = Options(1);
  parallel_opt.enumeration = Options(4);
  Result<OptimizeResult> serial =
      Optimize(PaperInitialPlan(), catalog, PaperContract(), DefaultRuleSet(),
               serial_opt);
  Result<OptimizeResult> parallel =
      Optimize(PaperInitialPlan(), catalog, PaperContract(), DefaultRuleSet(),
               parallel_opt);
  ASSERT_TRUE(serial.ok() && parallel.ok());
  EXPECT_EQ(parallel->best_plan->fingerprint(),
            serial->best_plan->fingerprint());
  EXPECT_EQ(parallel->best_cost, serial->best_cost);
  EXPECT_EQ(parallel->initial_cost, serial->initial_cost);
  EXPECT_EQ(parallel->plans_considered, serial->plans_considered);
  EXPECT_EQ(parallel->derivation, serial->derivation);
}

TEST(ParallelEnumerateTest, LegacyPathRejectsThreads) {
  EnumerationOptions opts = Options(2);
  opts.use_legacy_string_dedup = true;
  Result<EnumerationResult> res = RunSearch(opts);
  EXPECT_FALSE(res.ok());
}

TEST(ParallelEnumerateTest, ConcurrentInternerResolvesEqualPlansToOneNode) {
  // The striped-lock interner under direct contention: many threads intern
  // structurally equal plans concurrently; pointer identity must still
  // coincide with structural equality.
  PlanInterner interner;
  interner.EnableConcurrentAccess();
  const PlanPtr model = PaperInitialPlan();

  constexpr int kThreads = 8;
  constexpr int kRounds = 50;
  std::vector<const PlanNode*> roots(kThreads, nullptr);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      const PlanNode* last = nullptr;
      for (int i = 0; i < kRounds; ++i) {
        // A fresh structural copy per round: every node allocation races
        // with the other threads' interning of the equal structure.
        last = interner.Intern(ClonePlan(model)).get();
      }
      roots[static_cast<size_t>(t)] = last;
    });
  }
  for (std::thread& th : threads) th.join();
  for (int t = 1; t < kThreads; ++t) {
    EXPECT_EQ(roots[static_cast<size_t>(t)], roots[0]);
  }
  // One canonical copy of the plan's nodes, however many threads raced.
  EXPECT_EQ(interner.unique_nodes(), PlanSize(model));
}

TEST(ParallelEnumerateTest, ConcurrentDerivationCacheIsConsistent) {
  // Concurrent Derive/Find of overlapping plans against one cache: all
  // threads must see complete, valid info and the cache ends with exactly
  // one entry per distinct node.
  Catalog catalog = PaperCatalog();
  DerivationCache cache;
  cache.EnableConcurrentAccess();
  PlanInterner interner;
  interner.EnableConcurrentAccess();
  PlanPtr plan = interner.Intern(PaperInitialPlan());

  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 50; ++i) {
        if (!cache.Derive(plan, catalog, CardinalityParams{}).ok()) {
          failures.fetch_add(1);
          return;
        }
        std::vector<PlanPtr> nodes;
        CollectNodes(plan, &nodes);
        for (const PlanPtr& n : nodes) {
          if (cache.Find(n.get()) == nullptr) {
            failures.fetch_add(1);
            return;
          }
        }
      }
    });
  }
  for (std::thread& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(cache.size(), PlanSize(plan));
}

}  // namespace
}  // namespace tqp
