// Tests for the six equivalence types of Section 3, anchored on the exact
// relationships between R1, R2, R3 from Figure 3 that the paper states.
#include <gtest/gtest.h>

#include "core/equivalence.h"
#include "exec/evaluator.h"
#include "test_util.h"
#include "workload/paper_example.h"

namespace tqp {
namespace {

using testing_util::TemporalRel;

// R1 = π_{EmpName,T1,T2}(EMPLOYEE) from Figure 3.
Relation FigureR1() {
  Schema s;
  s.Add(Attribute{"EmpName", ValueType::kString});
  s.Add(Attribute{kT1, ValueType::kTime});
  s.Add(Attribute{kT2, ValueType::kTime});
  Relation r(s);
  auto row = [&r](const std::string& n, TimePoint a, TimePoint b) {
    Tuple t;
    t.push_back(Value::String(n));
    t.push_back(Value::Time(a));
    t.push_back(Value::Time(b));
    r.Append(std::move(t));
  };
  row("John", 1, 8);
  row("John", 6, 11);
  row("Anna", 2, 6);
  row("Anna", 2, 6);
  row("Anna", 6, 12);
  return r;
}

TEST(EquivalenceTest, ListMultisetSetBasics) {
  Relation r1 = TemporalRel({{"a", 1, 0, 5}, {"b", 2, 0, 5}});
  Relation r2 = TemporalRel({{"b", 2, 0, 5}, {"a", 1, 0, 5}});
  EXPECT_FALSE(EquivalentAsLists(r1, r2));
  EXPECT_TRUE(EquivalentAsMultisets(r1, r2));
  EXPECT_TRUE(EquivalentAsSets(r1, r2));

  Relation r3 = TemporalRel({{"a", 1, 0, 5}, {"a", 1, 0, 5}, {"b", 2, 0, 5}});
  EXPECT_FALSE(EquivalentAsMultisets(r1, r3));
  EXPECT_TRUE(EquivalentAsSets(r1, r3));
}

TEST(EquivalenceTest, SchemasMustMatch) {
  Relation a = TemporalRel({{"a", 1, 0, 5}});
  Relation b = PaperEmployee();
  EXPECT_FALSE(EquivalentAsLists(a, b));
  EXPECT_FALSE(EquivalentAsSets(a, b));
}

TEST(EquivalenceTest, FigureThreeR1VersusR2) {
  // R2 = rdup(R1): "not equivalent as lists or as multisets ... however the
  // ≡S equivalence holds". R2's schema renames the time attributes, so we
  // compare R1 against rdup's data with the original schema re-applied to
  // exercise the data-level claim.
  Relation r1 = FigureR1();
  Relation r2_data = EvalRdup(r1, r1.schema());  // same schema: data-level R2
  EXPECT_FALSE(EquivalentAsLists(r1, r2_data));
  EXPECT_FALSE(EquivalentAsMultisets(r1, r2_data));
  EXPECT_TRUE(EquivalentAsSets(r1, r2_data));
}

TEST(EquivalenceTest, FigureThreeR1VersusR3) {
  // R3 = rdupT(R1): "the only equivalence that holds between the two
  // relations is ≡SS".
  Relation r1 = FigureR1();
  Relation r3 = EvalRdupT(r1);
  EXPECT_FALSE(EquivalentAsLists(r1, r3));
  EXPECT_FALSE(EquivalentAsMultisets(r1, r3));
  EXPECT_FALSE(EquivalentAsSets(r1, r3));
  EXPECT_FALSE(SnapshotEquivalentAsLists(r1, r3));
  EXPECT_FALSE(SnapshotEquivalentAsMultisets(r1, r3));
  EXPECT_TRUE(SnapshotEquivalentAsSets(r1, r3));
}

TEST(EquivalenceTest, SortedRelationIsMultisetEquivalent) {
  // R1 ≡M sort_{T1 ASC}(R1), the paper's example before Theorem 3.1.
  Relation r1 = FigureR1();
  Relation sorted = EvalSort(r1, {{kT1, true}});
  EXPECT_TRUE(EquivalentAsMultisets(r1, sorted));
  EXPECT_TRUE(SnapshotEquivalentAsMultisets(r1, sorted));
  EXPECT_FALSE(EquivalentAsLists(r1, sorted));
}

TEST(EquivalenceTest, SnapshotEquivalenceRequiresTemporal) {
  Relation c = testing_util::ConventionalRel({{"a", 1}});
  Relation c2 = testing_util::ConventionalRel({{"a", 1}});
  EXPECT_FALSE(SnapshotEquivalentAsLists(c, c2));  // undefined => false
  EXPECT_TRUE(EquivalentAsLists(c, c2));
}

TEST(EquivalenceTest, Theorem31ImplicationLattice) {
  using ET = EquivalenceType;
  // Rightward along each chain.
  EXPECT_TRUE(Implies(ET::kList, ET::kMultiset));
  EXPECT_TRUE(Implies(ET::kList, ET::kSet));
  EXPECT_TRUE(Implies(ET::kMultiset, ET::kSet));
  EXPECT_TRUE(Implies(ET::kSnapshotList, ET::kSnapshotMultiset));
  EXPECT_TRUE(Implies(ET::kSnapshotMultiset, ET::kSnapshotSet));
  // Downward into the snapshot chain.
  EXPECT_TRUE(Implies(ET::kList, ET::kSnapshotList));
  EXPECT_TRUE(Implies(ET::kMultiset, ET::kSnapshotMultiset));
  EXPECT_TRUE(Implies(ET::kSet, ET::kSnapshotSet));
  EXPECT_TRUE(Implies(ET::kList, ET::kSnapshotSet));
  // Never upward or leftward.
  EXPECT_FALSE(Implies(ET::kMultiset, ET::kList));
  EXPECT_FALSE(Implies(ET::kSet, ET::kMultiset));
  EXPECT_FALSE(Implies(ET::kSnapshotList, ET::kList));
  EXPECT_FALSE(Implies(ET::kSnapshotSet, ET::kSet));
  EXPECT_FALSE(Implies(ET::kSnapshotMultiset, ET::kSnapshotList));
}

// Property check: whenever equivalence E1 holds and Implies(E1, E2), then E2
// holds — validated on randomized relation pairs derived by operations that
// weaken equivalence step by step.
TEST(EquivalenceTest, ImplicationsHoldOnRandomPairs) {
  const EquivalenceType all[] = {
      EquivalenceType::kList,          EquivalenceType::kMultiset,
      EquivalenceType::kSet,           EquivalenceType::kSnapshotList,
      EquivalenceType::kSnapshotMultiset, EquivalenceType::kSnapshotSet,
  };
  for (uint64_t seed = 1; seed <= 20; ++seed) {
    Relation a = testing_util::RandomTemporal(seed);
    // Derive b from a by sorting (≡M), deduping (≡S-ish), or rdupT (≡SS).
    Relation b;
    switch (seed % 3) {
      case 0:
        b = EvalSort(a, {{"Name", true}});
        break;
      case 1:
        b = EvalRdupT(a);
        break;
      default:
        b = a;
        break;
    }
    for (EquivalenceType e1 : all) {
      if (!Equivalent(e1, a, b)) continue;
      for (EquivalenceType e2 : all) {
        if (Implies(e1, e2)) {
          EXPECT_TRUE(Equivalent(e2, a, b))
              << "seed " << seed << ": " << EquivalenceTypeName(e1)
              << " holds but implied " << EquivalenceTypeName(e2)
              << " does not";
        }
      }
    }
  }
}

TEST(EquivalenceTest, ListOnProjectionEquivalence) {
  // ≡L,A compares only the ORDER BY columns.
  Relation a = TemporalRel({{"a", 1, 0, 5}, {"b", 2, 0, 5}});
  Relation b = TemporalRel({{"a", 9, 1, 7}, {"b", 8, 2, 3}});
  EXPECT_TRUE(EquivalentAsListsOn({{"Name", true}}, a, b));
  EXPECT_FALSE(EquivalentAsListsOn({{"Val", true}}, a, b));
}

TEST(EquivalenceTest, HoldingEquivalencesDiagnostic) {
  Relation r1 = FigureR1();
  Relation r3 = EvalRdupT(r1);
  std::vector<EquivalenceType> holds = HoldingEquivalences(r1, r3);
  ASSERT_EQ(holds.size(), 1u);
  EXPECT_EQ(holds[0], EquivalenceType::kSnapshotSet);
}

}  // namespace
}  // namespace tqp
