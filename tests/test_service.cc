// Tests for the service layer: the lock-free latency histogram, the plan
// store's serialization (full operator/expression/value coverage), the
// cross-restart snapshot contract (warm import, wholesale staleness
// rejection, corrupt-file errors, byte-identical warm-vs-cold results), and
// the TCP server end to end (query streaming, error recovery on a live
// connection, concurrent clients, clean shutdown). CI runs this suite under
// TSan as well.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "api/engine.h"
#include "core/latency_histogram.h"
#include "service/loadgen.h"
#include "service/plan_store.h"
#include "service/server.h"
#include "test_util.h"
#include "workload/paper_example.h"

namespace tqp {
namespace {

// ---- Latency histogram -----------------------------------------------------

TEST(LatencyHistogramTest, ExactBelowSubBucketRange) {
  LatencyHistogram h;
  for (uint64_t v = 0; v < LatencyHistogram::kSubBuckets; ++v) h.Record(v);
  EXPECT_EQ(h.count(), LatencyHistogram::kSubBuckets);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), LatencyHistogram::kSubBuckets - 1);
  // Values below kSubBuckets land in exact slots: every percentile is exact.
  EXPECT_EQ(h.Percentile(50), 31u);
  EXPECT_EQ(h.Percentile(100), 63u);
}

TEST(LatencyHistogramTest, RelativeErrorBound) {
  LatencyHistogram h;
  const uint64_t values[] = {100,    999,     1024,      12345,
                             987654, 1234567, 987654321, (1ull << 40) + 17};
  for (uint64_t v : values) {
    h.Reset();
    h.Record(v);
    const uint64_t p = h.Percentile(50);
    EXPECT_GE(p, v);  // upper bucket edge never undershoots
    EXPECT_LE(static_cast<double>(p - v),
              static_cast<double>(v) / LatencyHistogram::kSubBuckets + 1.0)
        << "value " << v;
    EXPECT_EQ(h.min(), v);
    EXPECT_EQ(h.max(), v);
    EXPECT_DOUBLE_EQ(h.Mean(), static_cast<double>(v));
  }
}

TEST(LatencyHistogramTest, PercentileClampsToObservedMax) {
  LatencyHistogram h;
  h.Record(1000);
  h.Record(1001);
  // The bucket edge for 1001 is above the observed max; reporting must clamp.
  EXPECT_EQ(h.Percentile(99.99), 1001u);
}

TEST(LatencyHistogramTest, MergeAndReset) {
  LatencyHistogram a, b;
  for (uint64_t v = 1; v <= 100; ++v) a.Record(v);
  for (uint64_t v = 1000; v <= 1100; ++v) b.Record(v);
  a.Merge(b);
  EXPECT_EQ(a.count(), 201u);
  EXPECT_EQ(a.min(), 1u);
  EXPECT_EQ(a.max(), 1100u);
  a.Reset();
  EXPECT_EQ(a.count(), 0u);
  EXPECT_EQ(a.Percentile(50), 0u);
  EXPECT_EQ(a.min(), 0u);
}

TEST(LatencyHistogramTest, ConcurrentRecordLosesNothing) {
  LatencyHistogram h;
  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, t] {
      for (uint64_t i = 0; i < kPerThread; ++i) {
        h.Record(static_cast<uint64_t>(t) * 1000 + (i % 997));
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(h.count(), kThreads * kPerThread);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 7000 + 996);
}

TEST(LatencyHistogramTest, ToJsonShape) {
  LatencyHistogram h;
  h.Record(10);
  const std::string j = h.ToJson();
  EXPECT_NE(j.find("\"count\":1"), std::string::npos) << j;
  EXPECT_NE(j.find("\"p999\":"), std::string::npos) << j;
}

// ---- Plan serialization ----------------------------------------------------

/// Deep structural equality: the fingerprint is computed bottom-up from
/// payloads, and the serializer is canonical, so fingerprint plus re-rendered
/// bytes equal ⇔ same tree. (PlanNode::Equal is shallow by design.)
void ExpectSamePlan(const PlanPtr& a, const PlanPtr& b) {
  ASSERT_TRUE(a != nullptr);
  ASSERT_TRUE(b != nullptr);
  EXPECT_EQ(a->fingerprint(), b->fingerprint());
  EXPECT_EQ(SerializePlan(a), SerializePlan(b));
}

void ExpectRoundTrip(const PlanPtr& plan) {
  const std::string data = SerializePlan(plan);
  Result<PlanPtr> back = DeserializePlan(data);
  ASSERT_TRUE(back.ok()) << back.status().message() << "\n" << data;
  ExpectSamePlan(plan, *back);
}

/// A predicate exercising every ExprKind and every Value type.
ExprPtr KitchenSinkPredicate() {
  ExprPtr cmp = Expr::Compare(CompareOp::kGe, Expr::Attr("Val"),
                              Expr::Const(Value::Int(-42)));
  ExprPtr arith = Expr::Compare(
      CompareOp::kNe,
      Expr::Arith(ArithOp::kMul, Expr::Attr("Val"),
                  Expr::Const(Value::Double(2.5))),
      Expr::Const(Value::Double(1.0 / 3.0)));
  ExprPtr str = Expr::Compare(CompareOp::kEq, Expr::Attr("Name"),
                              Expr::Const(Value::String(
                                  "needs \"escaping\"\nand spaces")));
  ExprPtr nul = Expr::Compare(CompareOp::kLt, Expr::Attr("Cat"),
                              Expr::Const(Value::Null()));
  ExprPtr overlaps =
      Expr::Overlaps(Expr::Attr("T1"), Expr::Attr("T2"),
                     Expr::Const(Value::Time(100)),
                     Expr::Const(Value::Time(200)));
  return Expr::And(Expr::Or(cmp, Expr::Not(arith)),
                   Expr::And(str, Expr::Or(nul, overlaps)));
}

TEST(PlanStoreTest, ExpressionAndValueRoundTrip) {
  ExpectRoundTrip(PlanNode::Select(PlanNode::Scan("R"),
                                   KitchenSinkPredicate()));
}

TEST(PlanStoreTest, EveryOperatorRoundTrips) {
  const PlanPtr r = PlanNode::Scan("R");
  const PlanPtr s = PlanNode::Scan("a relation\nwith \"odd\" name");
  std::vector<ProjItem> items;
  items.push_back(ProjItem{Expr::Attr("Name"), "Name"});
  items.push_back(ProjItem{
      Expr::Arith(ArithOp::kAdd, Expr::Attr("Val"),
                  Expr::Const(Value::Int(1))),
      "ValPlus"});
  std::vector<AggSpec> aggs;
  aggs.push_back(AggSpec{AggFunc::kCount, "", "n"});
  aggs.push_back(AggSpec{AggFunc::kAvg, "Val", "avg_val"});
  SortSpec sort{SortKey{"Name", true}, SortKey{"Val", false}};

  ExpectRoundTrip(r);
  ExpectRoundTrip(PlanNode::Select(r, KitchenSinkPredicate()));
  ExpectRoundTrip(PlanNode::Project(r, items));
  ExpectRoundTrip(PlanNode::UnionAll(r, s));
  ExpectRoundTrip(PlanNode::Product(r, s));
  ExpectRoundTrip(PlanNode::Difference(r, s));
  ExpectRoundTrip(PlanNode::Aggregate(r, {"Cat", "Name"}, aggs));
  ExpectRoundTrip(PlanNode::Rdup(r));
  ExpectRoundTrip(PlanNode::ProductT(r, s));
  ExpectRoundTrip(PlanNode::DifferenceT(r, s));
  ExpectRoundTrip(PlanNode::AggregateT(r, {}, aggs));
  ExpectRoundTrip(PlanNode::RdupT(r));
  ExpectRoundTrip(PlanNode::Union(r, s));
  ExpectRoundTrip(PlanNode::UnionT(r, s));
  ExpectRoundTrip(PlanNode::Sort(r, sort));
  ExpectRoundTrip(PlanNode::Coalesce(r));
  ExpectRoundTrip(PlanNode::TransferS(r));
  ExpectRoundTrip(PlanNode::TransferD(r));

  // A deep composite: every kind in one tree.
  ExpectRoundTrip(PlanNode::Sort(
      PlanNode::Coalesce(PlanNode::RdupT(PlanNode::AggregateT(
          PlanNode::TransferD(PlanNode::UnionT(
              PlanNode::Select(PlanNode::TransferS(PlanNode::Product(r, s)),
                               KitchenSinkPredicate()),
              PlanNode::DifferenceT(PlanNode::Project(r, items),
                                    PlanNode::Rdup(s)))),
          {"Cat"}, aggs))),
      sort));
}

TEST(PlanStoreTest, DeserializeRejectsGarbage) {
  EXPECT_FALSE(DeserializePlan("").ok());
  EXPECT_FALSE(DeserializePlan("(scan").ok());
  EXPECT_FALSE(DeserializePlan("(warp \"1:R)").ok());
  EXPECT_FALSE(DeserializePlan("(scan \"9999:R)").ok());
  EXPECT_FALSE(DeserializePlan("(select (scan \"1:R))").ok());  // no predicate
  EXPECT_FALSE(DeserializePlan("(scan \"1:R) junk").ok());
  EXPECT_FALSE(DeserializeSnapshot("not-a-snapshot 1 2 3").ok());
}

TEST(PlanStoreTest, SnapshotRoundTripPreservesEverything) {
  PlanCacheSnapshot snap;
  snap.catalog_version = 7;
  snap.catalog_fingerprint = 0xdeadbeefcafeull;
  PlanCacheEntry e;
  e.key = "#tql:select|name|from|r";
  e.text = "SELECT Name FROM R";
  e.contract = QueryContract::List({SortKey{"Name", true}});
  e.initial_plan = PlanNode::Project(
      PlanNode::Scan("R"), {ProjItem{Expr::Attr("Name"), "Name"}});
  e.best_plan = PlanNode::Sort(e.initial_plan, {SortKey{"Name", true}});
  e.best_cost = 12.5;
  e.initial_cost = 99.25;
  e.plans_considered = 1234;
  e.truncated = true;
  e.derivation = {"step one", "step \"two\""};
  snap.entries.push_back(e);

  Result<PlanCacheSnapshot> back = DeserializeSnapshot(SerializeSnapshot(snap));
  ASSERT_TRUE(back.ok()) << back.status().message();
  EXPECT_EQ(back->catalog_version, snap.catalog_version);
  EXPECT_EQ(back->catalog_fingerprint, snap.catalog_fingerprint);
  ASSERT_EQ(back->entries.size(), 1u);
  const PlanCacheEntry& b = back->entries[0];
  EXPECT_EQ(b.key, e.key);
  EXPECT_EQ(b.text, e.text);
  EXPECT_EQ(b.contract.result_type, e.contract.result_type);
  ASSERT_EQ(b.contract.order_by.size(), 1u);
  EXPECT_EQ(b.contract.order_by[0].attr, "Name");
  EXPECT_TRUE(b.contract.order_by[0].ascending);
  EXPECT_DOUBLE_EQ(b.best_cost, e.best_cost);
  EXPECT_DOUBLE_EQ(b.initial_cost, e.initial_cost);
  EXPECT_EQ(b.plans_considered, e.plans_considered);
  EXPECT_TRUE(b.truncated);
  EXPECT_EQ(b.derivation, e.derivation);
  ExpectSamePlan(b.initial_plan, e.initial_plan);
  ExpectSamePlan(b.best_plan, e.best_plan);
}

// ---- Engine export/import + plan-store files -------------------------------

/// EMPLOYEE/PROJECT plus a generated temporal relation, rebuilt identically
/// on each call — the "server restart against the same data" scenario.
Catalog ServiceCatalog() {
  Catalog catalog = PaperCatalog();
  TQP_CHECK(catalog
                .RegisterWithInferredFlags(
                    "R", testing_util::RandomTemporal(3, 20), Site::kDbms)
                .ok());
  return catalog;
}

std::vector<std::string> ServiceQueries() {
  return {
      PaperQueryText(),
      "SELECT Name, Val FROM R WHERE Val > 10",
      "SELECT DISTINCT Name FROM R ORDER BY Name ASC",
      "SELECT Cat, COUNT(*) AS n FROM R GROUP BY Cat ORDER BY Cat",
  };
}

std::string TempPath(const char* name) {
  return ::testing::TempDir() + "/" + name;
}

TEST(PlanStoreTest, FileRoundTripWarmsARestartedEngine) {
  const std::string path = TempPath("tqp_plan_store_roundtrip.snapshot");
  std::remove(path.c_str());

  // First process lifetime: serve the mix, snapshot on the way out.
  std::vector<std::string> cold_tables;
  {
    Engine engine(ServiceCatalog());
    for (const std::string& q : ServiceQueries()) {
      Result<QueryResult> r = engine.Query(q);
      ASSERT_TRUE(r.ok()) << r.status().message();
      cold_tables.push_back(r->relation.ToTable());
    }
    ASSERT_TRUE(SavePlanCache(engine, path).ok());
    EXPECT_EQ(engine.stats().plan_cache_entries, ServiceQueries().size());
  }

  // Second lifetime: identical catalog rebuilt from scratch.
  Engine engine(ServiceCatalog());
  Result<PlanStoreLoadOutcome> loaded = LoadPlanCache(&engine, path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().message();
  EXPECT_FALSE(loaded->file_missing);
  EXPECT_FALSE(loaded->stale);
  EXPECT_EQ(loaded->in_snapshot, ServiceQueries().size());
  EXPECT_EQ(loaded->imported, ServiceQueries().size());
  EXPECT_EQ(engine.stats().plan_cache_imports, ServiceQueries().size());

  // Every query hits the imported cache on first contact and returns the
  // byte-identical relation the cold engine produced.
  size_t i = 0;
  for (const std::string& q : ServiceQueries()) {
    Result<QueryResult> r = engine.Query(q);
    ASSERT_TRUE(r.ok()) << r.status().message();
    EXPECT_TRUE(r->plan_cache_hit) << q;
    EXPECT_EQ(r->relation.ToTable(), cold_tables[i]) << q;
    ++i;
  }
  EXPECT_EQ(engine.stats().prepares, 0u);
  std::remove(path.c_str());
}

TEST(PlanStoreTest, MissingFileIsACleanColdStart) {
  Engine engine(ServiceCatalog());
  Result<PlanStoreLoadOutcome> loaded =
      LoadPlanCache(&engine, TempPath("tqp_plan_store_nonexistent.snapshot"));
  ASSERT_TRUE(loaded.ok());
  EXPECT_TRUE(loaded->file_missing);
  EXPECT_EQ(loaded->imported, 0u);
}

TEST(PlanStoreTest, CorruptFileIsAnErrorNotACrash) {
  const std::string path = TempPath("tqp_plan_store_corrupt.snapshot");
  {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fputs("tqp-plan-cache-v1 1 2 999\n(entry truncated", f);
    std::fclose(f);
  }
  Engine engine(ServiceCatalog());
  Result<PlanStoreLoadOutcome> loaded = LoadPlanCache(&engine, path);
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(engine.stats().plan_cache_imports, 0u);
  std::remove(path.c_str());
}

TEST(PlanStoreTest, StaleCatalogVersionRejectsWholesale) {
  const std::string path = TempPath("tqp_plan_store_stale.snapshot");
  {
    Engine engine(ServiceCatalog());
    ASSERT_TRUE(engine.Query(ServiceQueries()[0]).ok());
    ASSERT_TRUE(SavePlanCache(engine, path).ok());
  }
  // The restarted catalog saw one extra mutation: version differs.
  Catalog catalog = ServiceCatalog();
  TQP_CHECK(catalog
                .RegisterWithInferredFlags(
                    "S", testing_util::RandomTemporal(8, 16), Site::kDbms)
                .ok());
  Engine engine(std::move(catalog));
  Result<PlanStoreLoadOutcome> loaded = LoadPlanCache(&engine, path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().message();
  EXPECT_TRUE(loaded->stale);
  EXPECT_EQ(loaded->imported, 0u);
  EXPECT_EQ(loaded->in_snapshot, 1u);

  // And the engine still serves the query cold, correctly.
  Result<QueryResult> r = engine.Query(ServiceQueries()[0]);
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r->plan_cache_hit);
  std::remove(path.c_str());
}

TEST(PlanStoreTest, ExportImportPreservesLruOrder) {
  EngineOptions options;
  options.plan_cache_capacity = 2;
  Engine a(ServiceCatalog(), options);
  ASSERT_TRUE(a.Query(ServiceQueries()[0]).ok());
  ASSERT_TRUE(a.Query(ServiceQueries()[1]).ok());

  Engine b(ServiceCatalog(), options);
  ASSERT_EQ(b.ImportPlanCache(a.ExportPlanCache()), 2u);
  // A third distinct query must evict the imported LRU entry (queries[0]),
  // proving recency was reproduced, not reset.
  ASSERT_TRUE(b.Query(ServiceQueries()[2]).ok());
  Result<QueryResult> hit = b.Query(ServiceQueries()[1]);
  ASSERT_TRUE(hit.ok());
  EXPECT_TRUE(hit->plan_cache_hit);
  Result<QueryResult> miss = b.Query(ServiceQueries()[0]);
  ASSERT_TRUE(miss.ok());
  EXPECT_FALSE(miss->plan_cache_hit);
}

// ---- Server end to end -----------------------------------------------------

TEST(ServiceServerTest, QueryStreamsSchemaBatchesAndStats) {
  Engine engine(ServiceCatalog());
  ServerOptions opts;
  opts.batch_rows = 4;  // force multiple batch frames
  Server server(&engine, opts);
  ASSERT_TRUE(server.Start().ok());
  ASSERT_NE(server.port(), 0);

  Result<QueryResult> direct = engine.Query("SELECT Name, Val FROM R");
  ASSERT_TRUE(direct.ok());

  ServiceClient client;
  ASSERT_TRUE(client.Connect(server.host(), server.port()).ok());
  Result<QueryOutcome> out =
      client.RunQuery("SELECT Name, Val FROM R", /*capture_raw=*/true);
  ASSERT_TRUE(out.ok()) << out.status().message();
  EXPECT_TRUE(out->ok) << out->error;
  EXPECT_EQ(out->rows, direct->relation.size());
  EXPECT_EQ(out->batches, (direct->relation.size() + 3) / 4);
  EXPECT_NE(out->raw.find("{\"type\":\"schema\""), std::string::npos);
  EXPECT_NE(out->raw.find("\"name\":\"Name\""), std::string::npos);

  Result<std::string> stats = client.Stats();
  ASSERT_TRUE(stats.ok()) << stats.status().message();
  EXPECT_NE(stats->find("\"queries\":1"), std::string::npos) << *stats;
  EXPECT_NE(stats->find("\"engine\":"), std::string::npos) << *stats;

  client.Close();
  server.Stop();
  EXPECT_EQ(server.stats().queries, 1u);
  EXPECT_EQ(server.stats().errors, 0u);
}

TEST(ServiceServerTest, ErrorFrameLeavesConnectionUsable) {
  Engine engine(ServiceCatalog());
  Server server(&engine, ServerOptions{});
  ASSERT_TRUE(server.Start().ok());

  ServiceClient client;
  ASSERT_TRUE(client.Connect(server.host(), server.port()).ok());
  Result<QueryOutcome> bad = client.RunQuery("SELECT FROM nothing !!");
  ASSERT_TRUE(bad.ok()) << bad.status().message();
  EXPECT_FALSE(bad->ok);
  EXPECT_FALSE(bad->error.empty());

  Result<QueryOutcome> good = client.RunQuery("SELECT Name FROM R");
  ASSERT_TRUE(good.ok()) << good.status().message();
  EXPECT_TRUE(good->ok) << good->error;
  EXPECT_GT(good->rows, 0u);
  server.Stop();
  EXPECT_EQ(server.stats().errors, 1u);
}

TEST(ServiceServerTest, ConcurrentClientsThroughLoadgen) {
  Engine engine(ServiceCatalog());
  Server server(&engine, ServerOptions{});
  ASSERT_TRUE(server.Start().ok());

  LoadGenOptions load;
  load.host = server.host();
  load.port = server.port();
  load.clients = 8;
  load.rounds = 3;  // 8 clients × 3 passes × |mix| queries, then stop
  load.queries = ServiceQueries();
  LoadGenReport report;
  Status st = RunLoad(load, &report);
  ASSERT_TRUE(st.ok()) << st.message();
  EXPECT_EQ(report.queries, 8u * 3u * ServiceQueries().size());
  EXPECT_EQ(report.errors, 0u);
  EXPECT_EQ(report.latency_us.count(), report.queries);
  EXPECT_GT(report.rows, 0u);
  // Every query text repeats across clients: the shared plan cache must
  // serve the repeats warm. Concurrent first contacts can each miss (the
  // compile races the store), so the worst case is one miss per client per
  // distinct query.
  EXPECT_GE(report.plan_cache_hits,
            report.queries - load.clients * ServiceQueries().size());
  server.Stop();
  EXPECT_EQ(server.stats().queries, report.queries);
}

TEST(ServiceServerTest, WarmRestartIsByteIdenticalToCold) {
  const std::string path = TempPath("tqp_service_warm_restart.snapshot");
  std::remove(path.c_str());

  LoadGenOptions load;
  load.clients = 2;
  load.rounds = 2;
  load.queries = ServiceQueries();
  load.record_raw = true;

  auto run_against = [&](const ServerOptions& opts,
                         std::vector<std::string>* raws) {
    Engine engine(ServiceCatalog());
    Server server(&engine, opts);
    ASSERT_TRUE(server.Start().ok());
    load.host = server.host();
    load.port = server.port();
    LoadGenReport report;
    Status st = RunLoad(load, &report);
    ASSERT_TRUE(st.ok()) << st.message();
    ASSERT_EQ(report.errors, 0u);
    *raws = report.raw_by_client;
    server.Stop();  // writes the final snapshot when configured
  };

  ServerOptions with_snapshot;
  with_snapshot.snapshot_path = path;
  std::vector<std::string> first_raws, warm_raws, cold_raws;
  run_against(with_snapshot, &first_raws);   // writes snapshot on Stop()
  run_against(with_snapshot, &warm_raws);    // restarts warm from it
  run_against(ServerOptions{}, &cold_raws);  // fresh cold server, no store

  // The deterministic rounds-mode workload makes per-client streams directly
  // comparable: a warm restart changes latency, never a byte of results.
  ASSERT_EQ(warm_raws.size(), cold_raws.size());
  for (size_t i = 0; i < warm_raws.size(); ++i) {
    EXPECT_EQ(warm_raws[i], cold_raws[i]) << "client " << i;
    EXPECT_EQ(warm_raws[i], first_raws[i]) << "client " << i;
  }
  std::remove(path.c_str());
}

TEST(ServiceServerTest, StopUnblocksIdleConnections) {
  Engine engine(ServiceCatalog());
  auto server = std::make_unique<Server>(&engine, ServerOptions{});
  ASSERT_TRUE(server->Start().ok());
  ServiceClient idle1, idle2;
  ASSERT_TRUE(idle1.Connect(server->host(), server->port()).ok());
  ASSERT_TRUE(idle2.Connect(server->host(), server->port()).ok());
  // Stop() must shut down reads and join the connection threads without
  // waiting for the idle clients to say \quit; hanging here fails the test
  // by timeout.
  server->Stop();
  server.reset();
}

}  // namespace
}  // namespace tqp
