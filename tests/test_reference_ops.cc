// The production sweep-based rdupT/coalT must produce *exactly* the same
// lists as the literal transcriptions of the paper's recursive definitions,
// and every evaluated plan's output must actually be sorted by its derived
// static order (the Table 1 Order column made checkable).
#include <gtest/gtest.h>

#include "core/equivalence.h"
#include "exec/evaluator.h"
#include "exec/reference_ops.h"
#include "test_util.h"
#include "tql/translator.h"
#include "workload/paper_example.h"

namespace tqp {
namespace {

class ReferenceEquivalenceTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ReferenceEquivalenceTest, RdupTMatchesTheRecursiveDefinition) {
  Relation r = testing_util::RandomTemporal(GetParam(), 40);
  EXPECT_TRUE(EquivalentAsLists(EvalRdupT(r), EvalRdupTReference(r)));
}

TEST_P(ReferenceEquivalenceTest, CoalesceMatchesTheRecursiveDefinition) {
  Relation r = testing_util::RandomTemporal(GetParam() + 500, 40);
  EXPECT_TRUE(EquivalentAsLists(EvalCoalesce(r), EvalCoalesceReference(r)));
}

INSTANTIATE_TEST_SUITE_P(Seeds, ReferenceEquivalenceTest,
                         ::testing::Range<uint64_t>(1, 31));

TEST(ReferenceOpsTest, FigureThreeAgreement) {
  Relation employee = PaperEmployee();
  Schema out;
  out.Add(Attribute{"EmpName", ValueType::kString});
  out.Add(Attribute{kT1, ValueType::kTime});
  out.Add(Attribute{kT2, ValueType::kTime});
  std::vector<ProjItem> items = {ProjItem::Pass("EmpName"),
                                 ProjItem::Pass(kT1), ProjItem::Pass(kT2)};
  Result<Relation> r1 = EvalProject(employee, items, out);
  ASSERT_TRUE(r1.ok());
  EXPECT_TRUE(
      EquivalentAsLists(EvalRdupT(r1.value()), EvalRdupTReference(r1.value())));
}

// Invariant: for any plan the executor runs, the produced tuple list is
// sorted according to the statically derived order annotation. Exercised
// over a family of TQL queries at both sites.
class OrderAnnotationTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(OrderAnnotationTest, OutputsAreSortedByDerivedOrder) {
  Catalog catalog;
  TQP_CHECK(catalog
                .RegisterWithInferredFlags(
                    "EMPLOYEE", ScaledEmployee(8, GetParam()), Site::kDbms)
                .ok());
  TQP_CHECK(catalog
                .RegisterWithInferredFlags(
                    "PROJECT", ScaledProject(8, GetParam() + 1), Site::kDbms)
                .ok());
  const char* queries[] = {
      "SELECT EmpName, Dept FROM EMPLOYEE ORDER BY EmpName, Dept DESC",
      "VALIDTIME COALESCED SELECT DISTINCT EmpName FROM EMPLOYEE "
      "ORDER BY EmpName",
      "SELECT EmpName, COUNT(*) AS n FROM EMPLOYEE GROUP BY EmpName "
      "ORDER BY EmpName",
      "VALIDTIME SELECT DISTINCT EmpName FROM EMPLOYEE EXCEPT "
      "SELECT EmpName FROM PROJECT ORDER BY EmpName",
      "SELECT Dept FROM EMPLOYEE WHERE EmpName <> 'emp0'",
  };
  EngineConfig engine;
  engine.dbms_scrambles_order = true;
  for (const char* text : queries) {
    Result<TranslatedQuery> q = CompileQuery(text, catalog);
    ASSERT_TRUE(q.ok()) << text << ": " << q.status().message();
    Result<AnnotatedPlan> ann =
        AnnotatedPlan::Make(q->plan, &catalog, q->contract);
    ASSERT_TRUE(ann.ok()) << text;
    Result<Relation> out = Evaluate(ann.value(), engine);
    ASSERT_TRUE(out.ok()) << text;
    EXPECT_TRUE(out->IsSortedBy(ann->root_info().order)) << text;
    if (q->contract.result_type == ResultType::kList) {
      EXPECT_TRUE(out->IsSortedBy(q->contract.order_by)) << text;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, OrderAnnotationTest,
                         ::testing::Range<uint64_t>(1, 9));

}  // namespace
}  // namespace tqp
