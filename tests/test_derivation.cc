// Tests for the static analysis: schema derivation, the Order(r) column of
// Table 1, guarantee propagation, site checking, and the top-down Table 2
// property assignment (the shaded regions of Figure 2(a)).
#include <gtest/gtest.h>

#include "algebra/derivation.h"
#include "algebra/printer.h"
#include "exec/evaluator.h"
#include "test_util.h"
#include "workload/paper_example.h"

namespace tqp {
namespace {

using P = PlanNode;

Catalog StratumCatalog() {
  Catalog catalog;
  Relation temp = testing_util::RandomTemporal(3);
  TQP_CHECK(catalog.RegisterWithInferredFlags("T", temp, Site::kStratum).ok());
  TQP_CHECK(catalog
                .RegisterWithInferredFlags("TCLEAN", EvalRdupT(temp),
                                           Site::kStratum)
                .ok());
  Relation conv = testing_util::RandomConventional(4);
  TQP_CHECK(catalog.RegisterWithInferredFlags("C", conv, Site::kStratum).ok());

  CatalogEntry sorted;
  sorted.data = EvalSort(conv, {{"Name", true}});
  sorted.order = {{"Name", true}};
  sorted.site = Site::kStratum;
  TQP_CHECK(catalog.Register("SORTED", sorted).ok());
  return catalog;
}

TEST(SchemaDerivationTest, ProductRenamesClashes) {
  Catalog catalog = StratumCatalog();
  PlanPtr plan = P::Product(P::Scan("C"), P::Scan("C"));
  Result<AnnotatedPlan> ann =
      AnnotatedPlan::Make(plan, &catalog, QueryContract::Multiset());
  ASSERT_TRUE(ann.ok()) << ann.status().message();
  const Schema& s = ann->root_info().schema;
  EXPECT_TRUE(s.HasAttr("1.Name"));
  EXPECT_TRUE(s.HasAttr("2.Name"));
  EXPECT_FALSE(s.HasAttr("Name"));
}

TEST(SchemaDerivationTest, ProductTSchemaShape) {
  Catalog catalog = StratumCatalog();
  PlanPtr plan = P::ProductT(P::Scan("T"), P::Scan("TCLEAN"));
  Result<AnnotatedPlan> ann =
      AnnotatedPlan::Make(plan, &catalog, QueryContract::Multiset());
  ASSERT_TRUE(ann.ok());
  const Schema& s = ann->root_info().schema;
  // Non-time attrs of both sides (prefixed on clash), the four retained
  // timestamps, and the overlap T1/T2 (rule C9's projection list depends on
  // exactly this shape).
  EXPECT_TRUE(s.HasAttr("1.Name"));
  EXPECT_TRUE(s.HasAttr("2.Name"));
  EXPECT_TRUE(s.HasAttr("1.T1"));
  EXPECT_TRUE(s.HasAttr("2.T2"));
  EXPECT_TRUE(s.IsTemporal());
}

TEST(SchemaDerivationTest, RejectsMalformedPlans) {
  Catalog catalog = StratumCatalog();
  EXPECT_FALSE(AnnotatedPlan::Make(P::Scan("NOPE"), &catalog,
                                   QueryContract::Multiset())
                   .ok());
  // Difference over different schemas.
  EXPECT_FALSE(AnnotatedPlan::Make(
                   P::Difference(P::Scan("C"), P::Scan("T")), &catalog,
                   QueryContract::Multiset())
                   .ok());
  // Temporal op over a conventional input.
  EXPECT_FALSE(AnnotatedPlan::Make(P::RdupT(P::Scan("C")), &catalog,
                                   QueryContract::Multiset())
                   .ok());
  // Selection on an unknown attribute.
  EXPECT_FALSE(AnnotatedPlan::Make(
                   P::Select(P::Scan("C"),
                             Expr::Compare(CompareOp::kEq, Expr::Attr("Zzz"),
                                           Expr::Const(Value::Int(1)))),
                   &catalog, QueryContract::Multiset())
                   .ok());
}

TEST(SiteDerivationTest, TransfersFlipSites) {
  Catalog catalog;
  TQP_CHECK(catalog
                .RegisterWithInferredFlags(
                    "D", testing_util::RandomConventional(5), Site::kDbms)
                .ok());
  PlanPtr plan = P::TransferS(P::Scan("D"));
  Result<AnnotatedPlan> ann =
      AnnotatedPlan::Make(plan, &catalog, QueryContract::Multiset());
  ASSERT_TRUE(ann.ok());
  EXPECT_EQ(ann->root_info().site, Site::kStratum);
  EXPECT_EQ(ann->info(plan->child(0).get()).site, Site::kDbms);

  // TransferS of a stratum-resident input is malformed.
  EXPECT_FALSE(AnnotatedPlan::Make(P::TransferS(P::TransferS(P::Scan("D"))),
                                   &catalog, QueryContract::Multiset())
                   .ok());
  // Mixed-site children without transfers are malformed.
  Catalog mixed;
  TQP_CHECK(mixed
                .RegisterWithInferredFlags(
                    "D", testing_util::RandomConventional(5), Site::kDbms)
                .ok());
  TQP_CHECK(mixed
                .RegisterWithInferredFlags(
                    "S", testing_util::RandomConventional(5), Site::kStratum)
                .ok());
  EXPECT_FALSE(AnnotatedPlan::Make(P::UnionAll(P::Scan("D"), P::Scan("S")),
                                   &mixed, QueryContract::Multiset())
                   .ok());
}

TEST(RelationDepsTest, ScanUnaryAndBinaryDependencySets) {
  Catalog catalog = StratumCatalog();
  // union_all(rdup(C), product(C, SORTED)): every NodeInfo carries the
  // sorted, deduplicated set of base relations its subtree reads.
  PlanPtr scan_c = P::Scan("C");
  PlanPtr rdup = P::Rdup(scan_c);
  PlanPtr self = P::UnionAll(rdup, P::Scan("C"));
  Result<AnnotatedPlan> self_ann =
      AnnotatedPlan::Make(self, &catalog, QueryContract::Multiset());
  ASSERT_TRUE(self_ann.ok());
  EXPECT_EQ(self_ann->info(scan_c.get()).relation_deps(),
            (std::vector<std::string>{"C"}));
  // A unary operator aliases its child's vector — no copy.
  EXPECT_EQ(self_ann->info(rdup.get()).relations,
            self_ann->info(scan_c.get()).relations);
  // Both sides read only C: the union's set stays {"C"} (subset reuse).
  EXPECT_EQ(self_ann->root_info().relation_deps(),
            (std::vector<std::string>{"C"}));

  PlanPtr joined = P::Product(P::Scan("C"), P::Scan("SORTED"));
  Result<AnnotatedPlan> join_ann =
      AnnotatedPlan::Make(joined, &catalog, QueryContract::Multiset());
  ASSERT_TRUE(join_ann.ok());
  EXPECT_EQ(join_ann->root_info().relation_deps(),
            (std::vector<std::string>{"C", "SORTED"}));
}

TEST(OrderDerivationTest, Table1OrderColumn) {
  Catalog catalog = StratumCatalog();
  auto order_of = [&catalog](const PlanPtr& plan) {
    Result<AnnotatedPlan> ann =
        AnnotatedPlan::Make(plan, &catalog, QueryContract::Multiset());
    TQP_CHECK(ann.ok());
    return ann->root_info().order;
  };

  // Scan: the declared order.
  EXPECT_EQ(SortSpecToString(order_of(P::Scan("SORTED"))), "Name ASC");
  // Selection retains order.
  EXPECT_EQ(SortSpecToString(order_of(P::Select(
                P::Scan("SORTED"), Expr::Compare(CompareOp::kEq,
                                                 Expr::Attr("Name"),
                                                 Expr::Const(Value::String(
                                                     "n1")))))),
            "Name ASC");
  // Union ALL is unordered.
  EXPECT_TRUE(order_of(P::UnionAll(P::Scan("SORTED"), P::Scan("C"))).empty());
  // Sort establishes its spec; a stable re-sort refines it.
  SortSpec val = {{"Val", false}};
  EXPECT_EQ(SortSpecToString(order_of(P::Sort(P::Scan("SORTED"), val))),
            "Val DESC, Name ASC");
  // Sorting by a prefix of the existing order keeps the full order.
  EXPECT_EQ(SortSpecToString(order_of(P::Sort(P::Scan("SORTED"),
                                              {{"Name", true}}))),
            "Name ASC");
  // Projection keeps the order prefix on surviving attrs (with renames).
  EXPECT_EQ(SortSpecToString(order_of(P::Project(
                P::Scan("SORTED"),
                {ProjItem::Rename("Name", "N"), ProjItem::Pass("Val")}))),
            "N ASC");
  // rdupT truncates the order at time attributes.
  PlanPtr sorted_t =
      P::Sort(P::Scan("T"), {{"Name", true}, {kT1, true}, {"Val", true}});
  EXPECT_EQ(SortSpecToString(order_of(P::RdupT(sorted_t))), "Name ASC");
}

TEST(OrderDerivationTest, DbmsClearsOrderExceptSortAndScan) {
  Catalog catalog;
  CatalogEntry entry;
  entry.data = EvalSort(testing_util::RandomConventional(6), {{"Name", true}});
  entry.order = {{"Name", true}};
  entry.site = Site::kDbms;
  TQP_CHECK(catalog.Register("D", entry).ok());

  // A DBMS selection loses the declared scan order (Section 4.5).
  PlanPtr sel = P::Select(P::Scan("D"), Expr::Compare(CompareOp::kNe,
                                                      Expr::Attr("Name"),
                                                      Expr::Const(Value::String(
                                                          "zzz"))));
  Result<AnnotatedPlan> ann =
      AnnotatedPlan::Make(P::TransferS(sel), &catalog,
                          QueryContract::Multiset());
  ASSERT_TRUE(ann.ok());
  EXPECT_TRUE(ann->info(sel.get()).order.empty());

  // A DBMS sort keeps its order.
  PlanPtr srt = P::Sort(P::Scan("D"), {{"Val", true}});
  Result<AnnotatedPlan> ann2 = AnnotatedPlan::Make(
      P::TransferS(srt), &catalog, QueryContract::Multiset());
  ASSERT_TRUE(ann2.ok());
  EXPECT_EQ(SortSpecToString(ann2->info(srt.get()).order),
            "Val ASC, Name ASC");
}

TEST(GuaranteeDerivationTest, DuplicateAndCoalescingGuarantees) {
  Catalog catalog = StratumCatalog();
  auto info_of = [&catalog](const PlanPtr& plan) {
    Result<AnnotatedPlan> ann =
        AnnotatedPlan::Make(plan, &catalog, QueryContract::Multiset());
    TQP_CHECK(ann.ok());
    return ann->root_info();
  };

  // rdupT guarantees snapshot-duplicate-freeness; coalT guarantees
  // coalescing but destroys neither.
  NodeInfo i1 = info_of(P::RdupT(P::Scan("T")));
  EXPECT_TRUE(i1.duplicate_free);
  EXPECT_TRUE(i1.snapshot_duplicate_free);
  EXPECT_FALSE(i1.coalesced);  // rdupT destroys coalescing (Table 1)

  NodeInfo i2 = info_of(P::Coalesce(P::RdupT(P::Scan("T"))));
  EXPECT_TRUE(i2.coalesced);
  EXPECT_TRUE(i2.snapshot_duplicate_free);

  // Projection destroys guarantees unless it is a permutation.
  NodeInfo i3 = info_of(P::Project(P::RdupT(P::Scan("T")),
                                   {ProjItem::Pass("Name"),
                                    ProjItem::Pass(kT1),
                                    ProjItem::Pass(kT2)}));
  EXPECT_FALSE(i3.snapshot_duplicate_free);

  NodeInfo i4 = info_of(P::Project(
      P::RdupT(P::Scan("T")),
      {ProjItem::Pass("Val"), ProjItem::Pass("Name"), ProjItem::Pass("Cat"),
       ProjItem::Pass(kT1), ProjItem::Pass(kT2)}));
  EXPECT_TRUE(i4.snapshot_duplicate_free);

  // \T retains the left argument's snapshot-duplicate-freeness.
  NodeInfo i5 = info_of(P::DifferenceT(P::Scan("TCLEAN"), P::Scan("T")));
  EXPECT_TRUE(i5.snapshot_duplicate_free);
  NodeInfo i6 = info_of(P::DifferenceT(P::Scan("T"), P::Scan("TCLEAN")));
  EXPECT_FALSE(i6.snapshot_duplicate_free);
}

TEST(PropertyTest, RootPropertiesFollowContract) {
  Catalog catalog = StratumCatalog();
  PlanPtr plan = P::Scan("C");
  auto props = [&](QueryContract c) {
    Result<AnnotatedPlan> ann = AnnotatedPlan::Make(plan, &catalog, c);
    TQP_CHECK(ann.ok());
    return ann->root_info();
  };
  NodeInfo list = props(QueryContract::List({{"Name", true}}));
  EXPECT_TRUE(list.order_required);
  EXPECT_TRUE(list.duplicates_relevant);
  EXPECT_TRUE(list.period_preserving);

  NodeInfo multiset = props(QueryContract::Multiset());
  EXPECT_FALSE(multiset.order_required);
  EXPECT_TRUE(multiset.duplicates_relevant);

  NodeInfo set = props(QueryContract::Set());
  EXPECT_FALSE(set.order_required);
  EXPECT_FALSE(set.duplicates_relevant);
  EXPECT_TRUE(set.period_preserving);
}

// The Figure 2(a) shaded regions on the paper's own initial plan.
TEST(PropertyTest, PaperPlanRegions) {
  Catalog catalog = PaperCatalog();
  PlanPtr plan = PaperInitialPlan();
  Result<AnnotatedPlan> ann =
      AnnotatedPlan::Make(plan, &catalog, PaperContract());
  ASSERT_TRUE(ann.ok()) << ann.status().message();

  // Navigate: transferS -> sort -> coalT -> rdupT(top) -> \T
  //           \T -> { rdupT(bottom) -> project -> scan, project -> scan }.
  const PlanNode* transfer = plan.get();
  const PlanNode* sort = transfer->child(0).get();
  const PlanNode* coal = sort->child(0).get();
  const PlanNode* rdup_top = coal->child(0).get();
  const PlanNode* diff = rdup_top->child(0).get();
  const PlanNode* rdup_bottom = diff->child(0).get();
  const PlanNode* proj_left = rdup_bottom->child(0).get();
  const PlanNode* proj_right = diff->child(1).get();

  // Order is required only above the sort ("order need not be preserved"
  // region covers everything below it).
  EXPECT_TRUE(ann->info(transfer).order_required);
  EXPECT_TRUE(ann->info(sort).order_required);
  EXPECT_FALSE(ann->info(coal).order_required);
  EXPECT_FALSE(ann->info(diff).order_required);
  EXPECT_FALSE(ann->info(proj_left).order_required);

  // Duplicates are irrelevant below the top rdupT — except for the bottom
  // rdupT itself, whose output feeds \T's duplicate-sensitive left input.
  EXPECT_FALSE(ann->info(diff).duplicates_relevant);
  EXPECT_TRUE(ann->info(rdup_bottom).duplicates_relevant);
  EXPECT_FALSE(ann->info(proj_left).duplicates_relevant);
  EXPECT_FALSE(ann->info(proj_right).duplicates_relevant);

  // Periods need not be preserved below the coalescing (its argument is
  // snapshot-duplicate-free thanks to the top rdupT), nor in the right
  // branch of \T.
  EXPECT_TRUE(ann->info(coal).period_preserving);
  EXPECT_FALSE(ann->info(rdup_top).period_preserving);
  EXPECT_FALSE(ann->info(diff).period_preserving);
  EXPECT_FALSE(ann->info(proj_right).period_preserving);
}

TEST(PropertyTest, MinMaxAggregationMakesDuplicatesIrrelevant) {
  Catalog catalog = StratumCatalog();
  PlanPtr input = P::Scan("C");
  PlanPtr agg_minmax =
      P::Aggregate(input, {"Name"}, {AggSpec{AggFunc::kMax, "Val", "mx"}});
  Result<AnnotatedPlan> a1 =
      AnnotatedPlan::Make(agg_minmax, &catalog, QueryContract::Multiset());
  ASSERT_TRUE(a1.ok());
  EXPECT_FALSE(a1->info(input.get()).duplicates_relevant);

  PlanPtr input2 = P::Scan("C");
  PlanPtr agg_count =
      P::Aggregate(input2, {"Name"}, {AggSpec{AggFunc::kCount, "", "cnt"}});
  Result<AnnotatedPlan> a2 =
      AnnotatedPlan::Make(agg_count, &catalog, QueryContract::Multiset());
  ASSERT_TRUE(a2.ok());
  EXPECT_TRUE(a2->info(input2.get()).duplicates_relevant);
}

TEST(PrinterTest, RendersPropertiesBrackets) {
  Catalog catalog = PaperCatalog();
  Result<AnnotatedPlan> ann =
      AnnotatedPlan::Make(PaperInitialPlan(), &catalog, PaperContract());
  ASSERT_TRUE(ann.ok());
  PrintOptions opts;
  opts.show_properties = true;
  opts.show_site = true;
  std::string text = PrintPlan(ann.value(), opts);
  EXPECT_NE(text.find("[T T T]"), std::string::npos);
  EXPECT_NE(text.find("differenceT"), std::string::npos);
  EXPECT_NE(text.find("@DBMS"), std::string::npos);
}

TEST(PlanTest, CanonicalStringsDistinguishPlans) {
  PlanPtr a = P::Rdup(P::Scan("R"));
  PlanPtr b = P::Rdup(P::Scan("S"));
  PlanPtr c = P::Rdup(P::Scan("R"));
  EXPECT_NE(CanonicalString(a), CanonicalString(b));
  EXPECT_EQ(CanonicalString(a), CanonicalString(c));
  EXPECT_EQ(PlanSize(a), 2u);
}

TEST(PlanTest, ReplaceNodeRebuildsSpine) {
  PlanPtr scan = P::Scan("R");
  PlanPtr plan = P::Rdup(P::Sort(scan, {{"A", true}}));
  PlanPtr replacement = P::Scan("S");
  PlanPtr rewritten = ReplaceNode(plan, scan.get(), replacement);
  EXPECT_EQ(CanonicalString(rewritten), "rdup(sort [A ASC](scan S))");
  // Untouched trees are returned unchanged (shared).
  PlanPtr same = ReplaceNode(plan, replacement.get(), P::Scan("X"));
  EXPECT_EQ(same, plan);
}

}  // namespace
}  // namespace tqp
