// Randomized A/B parity suite for incremental prepared-query re-execution
// (EngineOptions::incremental_execution).
//
// Two engines run the same interleaved stream of catalog updates and query
// executions over identical catalogs: one with the versioned subplan result
// cache on, one always cold. After every execution the incremental engine's
// relation must be LIST-identical (bytes, order, order annotation) to the
// cold engine's — under both executors, both DBMS scramble modes, serial
// and multi-threaded vexec, and with a byte budget small enough to churn
// the cache's LRU eviction. CI runs this suite under ASan+UBSan and TSan.
#include <gtest/gtest.h>

#include <random>
#include <string>
#include <thread>
#include <vector>

#include "api/engine.h"
#include "core/equivalence.h"
#include "test_util.h"
#include "workload/paper_example.h"

namespace tqp {
namespace {

void ExpectListIdentical(const Relation& inc, const Relation& cold,
                         const std::string& label) {
  EXPECT_TRUE(EquivalentAsLists(inc, cold))
      << label << "\n"
      << inc.ToTable("incremental") << cold.ToTable("cold");
  EXPECT_EQ(inc.ToTable(), cold.ToTable()) << label;
  EXPECT_EQ(SortSpecToString(inc.order()), SortSpecToString(cold.order()))
      << label;
}

/// EMPLOYEE/PROJECT (static) plus generated temporal relations A and B (the
/// mutation targets).
Catalog SuiteCatalog() {
  Catalog catalog = PaperCatalog();
  TQP_CHECK(catalog
                .RegisterWithInferredFlags(
                    "A", testing_util::RandomTemporal(3, 32), Site::kDbms)
                .ok());
  TQP_CHECK(catalog
                .RegisterWithInferredFlags(
                    "B", testing_util::RandomTemporal(8, 28), Site::kDbms)
                .ok());
  return catalog;
}

/// Conventional and temporal operators, single- and multi-relation
/// dependency sets, every contract kind: selection/projection, rdup(T),
/// sort, coalescing, union, difference(T), aggregation, and the temporal
/// join of the paper example.
std::vector<std::string> SuiteQueries() {
  return {
      PaperQueryText(),
      "VALIDTIME SELECT Dept, Prj FROM EMPLOYEE, PROJECT WHERE Dept = "
      "'Sales'",
      "SELECT Name, Val FROM A WHERE Val > 40",
      "SELECT DISTINCT Name FROM A ORDER BY Name ASC",
      "VALIDTIME COALESCED SELECT DISTINCT Name FROM A",
      "SELECT Name FROM A UNION SELECT Name FROM B",
      "SELECT Cat, COUNT(*) AS n FROM B GROUP BY Cat ORDER BY Cat",
      "VALIDTIME SELECT DISTINCT Name FROM B ORDER BY Name ASC",
      "SELECT DISTINCT Name FROM A EXCEPT SELECT Name FROM B",
  };
}

struct SuiteConfig {
  const char* label;
  bool scramble;
  ExecutorKind executor;
  size_t threads;
  /// 0 = the engine default; small values force LRU eviction churn.
  uint64_t cache_bytes;
};

EngineOptions MakeOptions(const SuiteConfig& config, bool incremental) {
  EngineOptions options;
  options.enumeration.max_plans = 800;
  options.engine.dbms_scrambles_order = config.scramble;
  options.executor = config.executor;
  options.vexec_threads = config.threads;
  options.incremental_execution = incremental;
  options.result_cache_bytes = config.cache_bytes;
  return options;
}

void RunInterleavedSuite(const SuiteConfig& config) {
  SCOPED_TRACE(config.label);
  Engine inc(SuiteCatalog(), MakeOptions(config, /*incremental=*/true));
  Engine cold(SuiteCatalog(), MakeOptions(config, /*incremental=*/false));

  const std::vector<std::string> queries = SuiteQueries();
  std::mt19937 rng(0x1234u ^ static_cast<unsigned>(config.scramble) ^
                   (static_cast<unsigned>(config.threads) << 8) ^
                   (config.executor == ExecutorKind::kVectorized ? 1u << 16
                                                                 : 0u));
  uint64_t next_data_seed = 1000;
  for (int step = 0; step < 36; ++step) {
    if (rng() % 10 < 3) {
      // Mutate one generated relation, identically in both engines.
      const std::string target = rng() % 2 == 0 ? "A" : "B";
      const uint64_t seed = ++next_data_seed;
      const size_t rows = 20 + rng() % 20;
      auto mutate = [&](Catalog& c) {
        CatalogEntry e;
        e.data = testing_util::RandomTemporal(seed, rows);
        return c.Update(target, std::move(e));
      };
      ASSERT_TRUE(inc.MutateCatalog(mutate).ok());
      ASSERT_TRUE(cold.MutateCatalog(mutate).ok());
      continue;
    }
    const std::string& text = queries[rng() % queries.size()];
    Result<QueryResult> got = inc.Query(text);
    Result<QueryResult> want = cold.Query(text);
    ASSERT_TRUE(want.ok()) << text << ": " << want.status().message();
    ASSERT_TRUE(got.ok()) << text << ": " << got.status().message();
    ExpectListIdentical(got->relation, want->relation,
                        "step " + std::to_string(step) + ": " + text);
    EXPECT_EQ(got->plan_fingerprint, want->plan_fingerprint) << text;
  }

  // The suite must actually have exercised the cache, not just have run
  // with it disabled-in-effect.
  EngineStats stats = inc.stats();
  EXPECT_GT(stats.result_cache_hits, 0u);
  EXPECT_GT(stats.result_cache_misses, 0u);
  EXPECT_EQ(cold.stats().result_cache_misses, 0u);
  if (config.cache_bytes != 0) {
    EXPECT_GT(stats.result_cache_evictions, 0u);
    EXPECT_LE(stats.result_cache_bytes, config.cache_bytes);
  }
}

TEST(IncrementalExecTest, ReferencePlain) {
  RunInterleavedSuite({"ref/plain", false, ExecutorKind::kReference, 1, 0});
}

TEST(IncrementalExecTest, ReferenceScrambled) {
  RunInterleavedSuite(
      {"ref/scrambled", true, ExecutorKind::kReference, 1, 0});
}

TEST(IncrementalExecTest, VectorizedPlainFourThreads) {
  RunInterleavedSuite(
      {"vec/plain/t4", false, ExecutorKind::kVectorized, 4, 0});
}

TEST(IncrementalExecTest, VectorizedScrambledSerial) {
  RunInterleavedSuite(
      {"vec/scrambled/t1", true, ExecutorKind::kVectorized, 1, 0});
}

TEST(IncrementalExecTest, VectorizedScrambledFourThreads) {
  RunInterleavedSuite(
      {"vec/scrambled/t4", true, ExecutorKind::kVectorized, 4, 0});
}

TEST(IncrementalExecTest, TinyCacheEvictionChurn) {
  // A 4 KiB budget cannot hold the working set: entries churn through the
  // LRU tail constantly and parity must still hold on every execution.
  RunInterleavedSuite(
      {"ref/plain/tiny", false, ExecutorKind::kReference, 1, 4096});
}

TEST(IncrementalExecTest, SharedCacheAcrossConcurrentSessions) {
  // One incremental engine, many threads: sessions share the result cache
  // under the engine's reader/writer discipline. Every thread's every
  // result must match the single-threaded cold engine's.
  SuiteConfig config{"shared/concurrent", false, ExecutorKind::kReference, 1,
                     0};
  Engine inc(SuiteCatalog(), MakeOptions(config, /*incremental=*/true));
  Engine cold(SuiteCatalog(), MakeOptions(config, /*incremental=*/false));

  const std::vector<std::string> queries = SuiteQueries();
  std::vector<Relation> expected;
  expected.reserve(queries.size());
  for (const std::string& text : queries) {
    Result<QueryResult> want = cold.Query(text);
    ASSERT_TRUE(want.ok()) << text;
    expected.push_back(std::move(want->relation));
  }

  constexpr int kThreads = 4;
  constexpr int kRounds = 6;
  std::vector<std::thread> workers;
  std::vector<std::string> failures(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t]() {
      std::mt19937 rng(7u * (t + 1));
      for (int round = 0; round < kRounds; ++round) {
        size_t qi = rng() % queries.size();
        Result<QueryResult> got = inc.Query(queries[qi]);
        if (!got.ok()) {
          failures[t] = got.status().message();
          return;
        }
        if (!EquivalentAsLists(got->relation, expected[qi])) {
          failures[t] = "mismatch on " + queries[qi];
          return;
        }
      }
    });
  }
  for (std::thread& w : workers) w.join();
  for (const std::string& f : failures) EXPECT_EQ(f, "");
  EXPECT_GT(inc.stats().result_cache_hits, 0u);
}

}  // namespace
}  // namespace tqp
