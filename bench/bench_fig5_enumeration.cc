// Figure 5 reproduction: the query plan enumeration algorithm.
//
// Prints the plan-space ablation — how many plans each admitted set of
// equivalence types reaches, and how many rule applications the Table 2
// properties gate out — compares the memo-based enumerator against the seed
// implementation (identical plan set, measured speedup, interner/memo
// statistics), then benchmarks enumeration across query sizes and plan caps.
#include <benchmark/benchmark.h>

#include <chrono>
#include <set>

#include "bench_util.h"
#include "opt/enumerate.h"
#include "tql/translator.h"

namespace tqp {

using bench::Banner;

void ReproduceFigure5() {
  Banner("Figure 5 — Plan enumeration: gating ablation on the example query");
  Catalog catalog = PaperCatalog();
  std::vector<Rule> rules = DefaultRuleSet();
  using ET = EquivalenceType;

  struct Config {
    const char* name;
    std::set<ET> admitted;
  };
  std::vector<Config> configs = {
      {"=L only", {ET::kList}},
      {"+ =M", {ET::kList, ET::kMultiset}},
      {"+ =S", {ET::kList, ET::kMultiset, ET::kSet}},
      {"+ =SM", {ET::kList, ET::kMultiset, ET::kSet, ET::kSnapshotMultiset}},
      {"all six",
       {ET::kList, ET::kMultiset, ET::kSet, ET::kSnapshotList,
        ET::kSnapshotMultiset, ET::kSnapshotSet}},
  };

  std::printf("%-10s | %8s | %9s | %9s | %9s\n", "admitted", "plans",
              "matches", "admitted", "gated-out");
  std::printf("%s\n", std::string(60, '-').c_str());
  for (const Config& config : configs) {
    EnumerationOptions opts = bench::SearchOptions(100000);
    opts.admitted = config.admitted;
    Result<EnumerationResult> res = bench::RunPaperSearch(catalog, rules, opts);
    TQP_CHECK(res.ok());
    std::printf("%-10s | %8zu | %9zu | %9zu | %9zu\n", config.name,
                res->plans.size(), res->matches, res->admitted,
                res->gated_out);
  }

  std::printf(
      "\nContract ablation (all six types admitted; the contract drives the "
      "root properties):\n");
  std::printf("%-22s | %8s\n", "contract", "plans");
  std::printf("%s\n", std::string(35, '-').c_str());
  struct CC {
    const char* name;
    QueryContract contract;
  };
  std::vector<CC> contracts = {
      {"list (ORDER BY)", PaperContract()},
      {"multiset", QueryContract::Multiset()},
      {"set (DISTINCT)", QueryContract::Set()},
  };
  for (const CC& cc : contracts) {
    EnumerationOptions opts = bench::SearchOptions(100000);
    Result<EnumerationResult> res = EnumeratePlans(
        PaperInitialPlan(), catalog, cc.contract, rules, opts);
    TQP_CHECK(res.ok());
    std::printf("%-22s | %8zu\n", cc.name, res->plans.size());
  }
  std::printf("\nWeaker result types admit more transformations, exactly the "
              "paper's Section 5 story.\n");
}

// Memo-based enumeration vs the seed implementation: same plan set, same
// counters, and the measured before/after throughput at max_plans = 4000.
void CompareMemoAgainstLegacy() {
  Banner("Memo-based enumeration vs seed string-dedup (max_plans = 4000)");
  Catalog catalog = PaperCatalog();
  std::vector<Rule> rules = DefaultRuleSet();

  auto run = [&](bool legacy, int iters, EnumerationResult* out) {
    EnumerationOptions opts = bench::SearchOptions(4000);
    opts.use_legacy_string_dedup = legacy;
    auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < iters; ++i) {
      Result<EnumerationResult> res = bench::RunPaperSearch(catalog, rules, opts);
      TQP_CHECK(res.ok());
      *out = std::move(res.value());
    }
    std::chrono::duration<double> dt = std::chrono::steady_clock::now() - t0;
    return dt.count() / iters;
  };

  EnumerationResult legacy, memo;
  // One warmup pass each, then the measured passes.
  run(true, 1, &legacy);
  run(false, 1, &memo);
  const int iters = 50;
  double legacy_s = run(true, iters, &legacy);
  double memo_s = run(false, iters, &memo);

  // The refactor must be a pure representation change: identical plan
  // sequence (count, canonical forms, derivation edges) and counters.
  TQP_CHECK(legacy.plans.size() == memo.plans.size());
  for (size_t i = 0; i < legacy.plans.size(); ++i) {
    TQP_CHECK(legacy.plans[i].canonical == memo.plans[i].canonical);
    TQP_CHECK(legacy.plans[i].rule_id == memo.plans[i].rule_id);
    TQP_CHECK(legacy.plans[i].parent == memo.plans[i].parent);
  }
  TQP_CHECK(legacy.matches == memo.matches);
  TQP_CHECK(legacy.admitted == memo.admitted);
  TQP_CHECK(legacy.gated_out == memo.gated_out);
  TQP_CHECK(legacy.truncated == memo.truncated);

  double legacy_pps = static_cast<double>(legacy.plans.size()) / legacy_s;
  double memo_pps = static_cast<double>(memo.plans.size()) / memo_s;
  std::printf("%-28s | %12s | %12s\n", "", "seed (before)", "memo (after)");
  std::printf("%s\n", std::string(60, '-').c_str());
  std::printf("%-28s | %12zu | %12zu\n", "distinct plans",
              legacy.plans.size(), memo.plans.size());
  std::printf("%-28s | %12.2f | %12.2f\n", "ms / enumeration",
              legacy_s * 1e3, memo_s * 1e3);
  std::printf("%-28s | %12.0f | %12.0f\n", "plans / second", legacy_pps,
              memo_pps);
  std::printf("%-28s | %12s | %12zu\n", "memo hits (dup candidates)", "-",
              memo.memo_hits);
  std::printf("%-28s | %12s | %12zu\n", "interner: distinct nodes", "-",
              memo.interner_nodes);
  std::printf("%-28s | %12s | %12zu\n", "interner: hits", "-",
              memo.interner_hits);
  std::printf("%-28s | %12s | %12zu\n", "derivation cache entries", "-",
              memo.cache_nodes);
  std::printf("\nplan set identical; speedup: %.2fx plans/second\n",
              memo_pps / legacy_pps);
  bench::SetMetric("distinct_plans", static_cast<double>(memo.plans.size()));
  bench::SetMetric("legacy_plans_per_s", legacy_pps);
  bench::SetMetric("memo_plans_per_s", memo_pps);
  bench::SetMetric("memo_speedup", memo_pps / legacy_pps);

  // Cost-bounded pruning (off by default): expansion skips plans whose
  // estimated cost exceeds factor x best-so-far.
  std::printf("\nCost-bounded pruning (factor -> plans / expanded / pruned):\n");
  for (double factor : {1.5, 4.0, 16.0}) {
    EnumerationOptions opts = bench::SearchOptions(4000);
    opts.cost_prune_factor = factor;
    Result<EnumerationResult> res = bench::RunPaperSearch(catalog, rules, opts);
    TQP_CHECK(res.ok());
    std::printf("  %5.1f -> %zu plans, %zu expanded, %zu pruned\n", factor,
                res->plans.size(), res->plans.size() - res->cost_pruned,
                res->cost_pruned);
  }
}

namespace {

void BM_EnumeratePaperQuery(benchmark::State& state) {
  Catalog catalog = PaperCatalog();
  std::vector<Rule> rules = DefaultRuleSet();
  EnumerationOptions opts =
      bench::SearchOptions(static_cast<size_t>(state.range(0)));
  size_t plans = 0;
  for (auto _ : state) {
    Result<EnumerationResult> res = EnumeratePlans(
        PaperInitialPlan(), catalog, PaperContract(), rules, opts);
    TQP_CHECK(res.ok());
    plans = res->plans.size();
    benchmark::DoNotOptimize(res);
  }
  state.counters["plans"] = static_cast<double>(plans);
}
BENCHMARK(BM_EnumeratePaperQuery)->Arg(50)->Arg(200)->Arg(1000)->Arg(4000);

void BM_EnumeratePaperQueryLegacy(benchmark::State& state) {
  Catalog catalog = PaperCatalog();
  std::vector<Rule> rules = DefaultRuleSet();
  EnumerationOptions opts =
      bench::SearchOptions(static_cast<size_t>(state.range(0)));
  opts.use_legacy_string_dedup = true;
  size_t plans = 0;
  for (auto _ : state) {
    Result<EnumerationResult> res = EnumeratePlans(
        PaperInitialPlan(), catalog, PaperContract(), rules, opts);
    TQP_CHECK(res.ok());
    plans = res->plans.size();
    benchmark::DoNotOptimize(res);
  }
  state.counters["plans"] = static_cast<double>(plans);
}
BENCHMARK(BM_EnumeratePaperQueryLegacy)->Arg(1000)->Arg(4000);

void BM_EnumerateByQuerySize(benchmark::State& state) {
  // Chains of k selections over a join: plan space grows with k.
  // (EmpName is ambiguous in EMPLOYEE x PROJECT — it gets 1./2. prefixes —
  // so the projection sticks to the unambiguous attributes.)
  Catalog catalog = bench::ScaledCatalog(4);
  TranslatedQuery q =
      bench::ChainQuery(catalog, static_cast<int>(state.range(0)));
  std::vector<Rule> rules = DefaultRuleSet();
  EnumerationOptions opts = bench::SearchOptions(3000);
  size_t plans = 0;
  for (auto _ : state) {
    Result<EnumerationResult> res =
        EnumeratePlans(q.plan, catalog, q.contract, rules, opts);
    TQP_CHECK(res.ok());
    plans = res->plans.size();
  }
  state.counters["predicates"] = static_cast<double>(state.range(0));
  state.counters["plans"] = static_cast<double>(plans);
}
BENCHMARK(BM_EnumerateByQuerySize)->Arg(1)->Arg(2)->Arg(3);

}  // namespace
}  // namespace tqp

int main(int argc, char** argv) {
  tqp::bench::TimedSection("reproduce_figure5", [] { tqp::ReproduceFigure5(); });
  tqp::bench::TimedSection("memo_vs_legacy", [] { tqp::CompareMemoAgainstLegacy(); });
  tqp::bench::WriteBenchJson("fig5_enumeration");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
