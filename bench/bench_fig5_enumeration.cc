// Figure 5 reproduction: the query plan enumeration algorithm.
//
// Prints the plan-space ablation — how many plans each admitted set of
// equivalence types reaches, and how many rule applications the Table 2
// properties gate out — then benchmarks enumeration across query sizes and
// plan caps.
#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "opt/enumerate.h"
#include "tql/translator.h"

namespace tqp {

using bench::Banner;

void ReproduceFigure5() {
  Banner("Figure 5 — Plan enumeration: gating ablation on the example query");
  Catalog catalog = PaperCatalog();
  std::vector<Rule> rules = DefaultRuleSet();
  using ET = EquivalenceType;

  struct Config {
    const char* name;
    std::set<ET> admitted;
  };
  std::vector<Config> configs = {
      {"=L only", {ET::kList}},
      {"+ =M", {ET::kList, ET::kMultiset}},
      {"+ =S", {ET::kList, ET::kMultiset, ET::kSet}},
      {"+ =SM", {ET::kList, ET::kMultiset, ET::kSet, ET::kSnapshotMultiset}},
      {"all six",
       {ET::kList, ET::kMultiset, ET::kSet, ET::kSnapshotList,
        ET::kSnapshotMultiset, ET::kSnapshotSet}},
  };

  std::printf("%-10s | %8s | %9s | %9s | %9s\n", "admitted", "plans",
              "matches", "admitted", "gated-out");
  std::printf("%s\n", std::string(60, '-').c_str());
  for (const Config& config : configs) {
    EnumerationOptions opts;
    opts.max_plans = 100000;
    opts.admitted = config.admitted;
    Result<EnumerationResult> res = EnumeratePlans(
        PaperInitialPlan(), catalog, PaperContract(), rules, opts);
    TQP_CHECK(res.ok());
    std::printf("%-10s | %8zu | %9zu | %9zu | %9zu\n", config.name,
                res->plans.size(), res->matches, res->admitted,
                res->gated_out);
  }

  std::printf(
      "\nContract ablation (all six types admitted; the contract drives the "
      "root properties):\n");
  std::printf("%-22s | %8s\n", "contract", "plans");
  std::printf("%s\n", std::string(35, '-').c_str());
  struct CC {
    const char* name;
    QueryContract contract;
  };
  std::vector<CC> contracts = {
      {"list (ORDER BY)", PaperContract()},
      {"multiset", QueryContract::Multiset()},
      {"set (DISTINCT)", QueryContract::Set()},
  };
  for (const CC& cc : contracts) {
    EnumerationOptions opts;
    opts.max_plans = 100000;
    Result<EnumerationResult> res = EnumeratePlans(
        PaperInitialPlan(), catalog, cc.contract, rules, opts);
    TQP_CHECK(res.ok());
    std::printf("%-22s | %8zu\n", cc.name, res->plans.size());
  }
  std::printf("\nWeaker result types admit more transformations, exactly the "
              "paper's Section 5 story.\n");
}

namespace {

void BM_EnumeratePaperQuery(benchmark::State& state) {
  Catalog catalog = PaperCatalog();
  std::vector<Rule> rules = DefaultRuleSet();
  EnumerationOptions opts;
  opts.max_plans = static_cast<size_t>(state.range(0));
  size_t plans = 0;
  for (auto _ : state) {
    Result<EnumerationResult> res = EnumeratePlans(
        PaperInitialPlan(), catalog, PaperContract(), rules, opts);
    TQP_CHECK(res.ok());
    plans = res->plans.size();
    benchmark::DoNotOptimize(res);
  }
  state.counters["plans"] = static_cast<double>(plans);
}
BENCHMARK(BM_EnumeratePaperQuery)->Arg(50)->Arg(200)->Arg(1000)->Arg(4000);

void BM_EnumerateByQuerySize(benchmark::State& state) {
  // Chains of k selections over a join: plan space grows with k.
  Catalog catalog = bench::ScaledCatalog(4);
  std::string query =
      "VALIDTIME SELECT EmpName, Dept, Prj FROM EMPLOYEE, PROJECT WHERE "
      "Dept = 'dept1'";
  for (int64_t i = 1; i < state.range(0); ++i) {
    query += " AND Prj <> 'prj" + std::to_string(i) + "'";
  }
  Result<TranslatedQuery> q = CompileQuery(query, catalog);
  TQP_CHECK(q.ok());
  std::vector<Rule> rules = DefaultRuleSet();
  EnumerationOptions opts;
  opts.max_plans = 3000;
  size_t plans = 0;
  for (auto _ : state) {
    Result<EnumerationResult> res =
        EnumeratePlans(q->plan, catalog, q->contract, rules, opts);
    TQP_CHECK(res.ok());
    plans = res->plans.size();
  }
  state.counters["predicates"] = static_cast<double>(state.range(0));
  state.counters["plans"] = static_cast<double>(plans);
}
BENCHMARK(BM_EnumerateByQuerySize)->Arg(1)->Arg(2)->Arg(3);

}  // namespace
}  // namespace tqp

int main(int argc, char** argv) {
  tqp::ReproduceFigure5();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
