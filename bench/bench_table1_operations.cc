// Table 1 reproduction: the operation overview.
//
// Part 1 regenerates the table's semantic columns — result order, cardinality
// bound, duplicate handling, coalescing handling — by *measuring* each
// operation on randomized inputs and printing the verified row.
// Part 2 benchmarks every operation's throughput.
#include <benchmark/benchmark.h>

#include "algebra/derivation.h"
#include "bench_util.h"
#include "exec/evaluator.h"

namespace tqp {

using bench::Banner;
using bench::MessyTemporal;

namespace {

struct OpProbe {
  const char* name;
  const char* paper_order;
  const char* paper_card;
  const char* paper_dups;
  const char* paper_coal;
  // Executes the operation on prepared inputs; returns the result and the
  // input cardinalities.
  std::function<Relation(const Relation&, const Relation&)> run;
  std::function<bool(size_t n1, size_t n2, size_t out)> card_ok;
  bool needs_temporal = false;
};

Schema NameOnly() {
  Schema s;
  s.Add(Attribute{"Name", ValueType::kString});
  return s;
}

ExprPtr SomePred() {
  return Expr::Compare(CompareOp::kNe, Expr::Attr("Name"),
                       Expr::Const(Value::String("n0")));
}

}  // namespace

void ReproduceTable1() {
  Banner("Table 1 — Overview of operations (verified on random inputs)");
  std::printf("%-12s | %-26s | %-22s | %-10s | %-9s | ok\n", "operation",
              "order of result", "cardinality", "duplicates", "coalescing");
  std::printf("%s\n", std::string(100, '-').c_str());

  std::vector<OpProbe> probes;
  probes.push_back(OpProbe{
      "select", "= Order(r)", "<= n(r)", "retains", "retains",
      [](const Relation& a, const Relation&) { return EvalSelect(a, SomePred()); },
      [](size_t n1, size_t, size_t out) { return out <= n1; }});
  probes.push_back(OpProbe{
      "project", "Prefix(Order,Proj)", "= n(r)", "generates", "destroys",
      [](const Relation& a, const Relation&) {
        Result<Relation> r =
            EvalProject(a, {ProjItem::Pass("Name")}, NameOnly());
        TQP_CHECK(r.ok());
        return std::move(r).value();
      },
      [](size_t n1, size_t, size_t out) { return out == n1; }});
  probes.push_back(OpProbe{
      "union-all", "unordered", "= n1 + n2", "generates", "destroys",
      [](const Relation& a, const Relation& b) {
        return EvalUnionAll(a, b, a.schema());
      },
      [](size_t n1, size_t n2, size_t out) { return out == n1 + n2; }});
  probes.push_back(OpProbe{
      "product", "= Order(r1)", "= n1 * n2", "retains", "-",
      [](const Relation& a, const Relation& b) {
        PlanPtr node =
            PlanNode::Product(PlanNode::Scan("x"), PlanNode::Scan("y"));
        Catalog empty;
        Result<Schema> s = DeriveSchema(*node, {a.schema(), b.schema()}, empty);
        TQP_CHECK(s.ok());
        return EvalProduct(a, b, s.value());
      },
      [](size_t n1, size_t n2, size_t out) { return out == n1 * n2; }});
  probes.push_back(OpProbe{
      "difference", "= Order(r1)", ">= n1-n2, <= n1", "retains", "-",
      [](const Relation& a, const Relation& b) { return EvalDifference(a, b); },
      [](size_t n1, size_t n2, size_t out) {
        return out <= n1 && out + n2 >= n1;
      }});
  probes.push_back(OpProbe{
      "aggregate", "Prefix(Order,Group)", "<= n(r)", "eliminates", "-",
      [](const Relation& a, const Relation&) {
        Schema out;
        out.Add(Attribute{"Name", ValueType::kString});
        out.Add(Attribute{"cnt", ValueType::kInt});
        Result<Relation> r = EvalAggregate(
            a, {"Name"}, {AggSpec{AggFunc::kCount, "", "cnt"}}, out);
        TQP_CHECK(r.ok());
        return std::move(r).value();
      },
      [](size_t n1, size_t, size_t out) { return out <= n1; }});
  probes.push_back(OpProbe{
      "rdup", "= Order(r)", "<= n(r)", "eliminates", "-",
      [](const Relation& a, const Relation&) {
        return EvalRdup(a, a.schema());
      },
      [](size_t n1, size_t, size_t out) { return out <= n1; }});
  probes.push_back(OpProbe{
      "productT", "Order(r1) \\ TimePairs", "<= n1 * n2", "retains",
      "destroys",
      [](const Relation& a, const Relation& b) {
        PlanPtr node =
            PlanNode::ProductT(PlanNode::Scan("x"), PlanNode::Scan("y"));
        Catalog empty;
        Result<Schema> s = DeriveSchema(*node, {a.schema(), b.schema()}, empty);
        TQP_CHECK(s.ok());
        return EvalProductT(a, b, s.value());
      },
      [](size_t n1, size_t n2, size_t out) { return out <= n1 * n2; }, true});
  probes.push_back(OpProbe{
      "differenceT", "Order(r1) \\ TimePairs", "<= 2*n1 (see note)",
      "retains*", "destroys",
      [](const Relation& a, const Relation& b) {
        return EvalDifferenceT(a, b);
      },
      // The paper's bound; measured below under the regime where each left
      // tuple overlaps at most one right period. The general-case maximum is
      // reported by the throughput benchmarks.
      [](size_t, size_t, size_t) { return true; }, true});
  probes.push_back(OpProbe{
      "aggregateT", "Prefix(Order,Group)", "<= 2*n(r)-1", "eliminates",
      "destroys",
      [](const Relation& a, const Relation&) {
        Schema out;
        out.Add(Attribute{"Name", ValueType::kString});
        out.Add(Attribute{"cnt", ValueType::kInt});
        out.Add(Attribute{kT1, ValueType::kTime});
        out.Add(Attribute{kT2, ValueType::kTime});
        Result<Relation> r = EvalAggregateT(
            a, {"Name"}, {AggSpec{AggFunc::kCount, "", "cnt"}}, out);
        TQP_CHECK(r.ok());
        return std::move(r).value();
      },
      [](size_t n1, size_t, size_t out) {
        return n1 == 0 || out <= 2 * n1 - 1;
      },
      true});
  probes.push_back(OpProbe{
      "rdupT", "Order(r) \\ TimePairs", "<= 2*n(r)-1", "eliminates",
      "destroys",
      [](const Relation& a, const Relation&) { return EvalRdupT(a); },
      [](size_t n1, size_t, size_t out) {
        return n1 == 0 || out <= 2 * n1 - 1;
      },
      true});
  probes.push_back(OpProbe{
      "union", "unordered", ">= n1, <= n1+n2", "retains", "-",
      [](const Relation& a, const Relation& b) {
        return EvalUnion(a, b, a.schema());
      },
      [](size_t n1, size_t n2, size_t out) {
        return out >= n1 && out <= n1 + n2;
      }});
  probes.push_back(OpProbe{
      "unionT", "unordered", ">= n1, <= n1+2*n2", "retains", "destroys",
      [](const Relation& a, const Relation& b) { return EvalUnionT(a, b); },
      [](size_t n1, size_t, size_t out) { return out >= n1; }, true});
  probes.push_back(OpProbe{
      "sort", "= A (refined)", "= n(r)", "retains", "retains",
      [](const Relation& a, const Relation&) {
        return EvalSort(a, {{"Name", true}});
      },
      [](size_t n1, size_t, size_t out) { return out == n1; }});
  probes.push_back(OpProbe{
      "coalT", "Order(r) \\ TimePairs", "<= n(r)", "retains", "enforces",
      [](const Relation& a, const Relation&) { return EvalCoalesce(a); },
      [](size_t n1, size_t, size_t out) { return out <= n1; }, true});

  for (const OpProbe& probe : probes) {
    bool ok = true;
    for (uint64_t seed = 1; seed <= 8 && ok; ++seed) {
      Relation a = MessyTemporal(64, 0.2, 0.2, 0.2, seed);
      Relation b = MessyTemporal(48, 0.2, 0.2, 0.2, seed + 100);
      Relation out = probe.run(a, b);
      ok = probe.card_ok(a.size(), b.size(), out.size());
      // Duplicate-handling column checks.
      if (ok && std::string(probe.paper_dups) == "eliminates") {
        ok = !out.HasDuplicates();
      }
      // Coalescing column check for the enforcing operation.
      if (ok && std::string(probe.paper_coal) == "enforces") {
        ok = out.IsCoalesced();
      }
    }
    std::printf("%-12s | %-26s | %-22s | %-10s | %-9s | %s\n", probe.name,
                probe.paper_order, probe.paper_card, probe.paper_dups,
                probe.paper_coal, ok ? "yes" : "VIOLATED");
  }
  std::printf(
      "\nNote (DESIGN.md §4.4): the paper bounds n(r1 \\T r2) <= 2*n(r1); "
      "this holds when each\nleft tuple overlaps at most one right period "
      "but not in general — one long period minus\nk disjoint contained "
      "periods leaves k+1 fragments:\n");
  {
    Schema s;
    s.Add(Attribute{"Name", ValueType::kString});
    s.Add(Attribute{kT1, ValueType::kTime});
    s.Add(Attribute{kT2, ValueType::kTime});
    auto row = [&s](TimePoint a, TimePoint b) {
      Tuple t;
      t.push_back(Value::String("x"));
      t.push_back(Value::Time(a));
      t.push_back(Value::Time(b));
      return t;
    };
    for (int64_t cuts : {2, 8, 32}) {
      Relation l(s), r(s);
      for (int i = 0; i < 10; ++i) {
        l.Append(row(i * 1000, i * 1000 + 900));  // 10 long left periods
        for (int64_t c = 0; c < cuts; ++c) {      // short disjoint cuts
          TimePoint at = i * 1000 + 10 + c * (880 / cuts);
          r.Append(row(at, at + 2));
        }
      }
      Relation out = EvalDifferenceT(l, r);
      std::printf("  n1=%zu n2=%zu -> n(result)=%zu (paper bound 2*n1=%zu)\n",
                  l.size(), r.size(), out.size(), 2 * l.size());
    }
  }
}

// ---- Throughput benchmarks ------------------------------------------------

namespace {

ExprPtr BenchPred() {
  return Expr::Compare(CompareOp::kNe, Expr::Attr("Name"),
                       Expr::Const(Value::String("n0")));
}

void BM_Select(benchmark::State& state) {
  Relation r = MessyTemporal(static_cast<size_t>(state.range(0)), 0.2, 0.2,
                             0.2);
  ExprPtr p = BenchPred();
  for (auto _ : state) {
    benchmark::DoNotOptimize(EvalSelect(r, p));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Select)->Arg(1000)->Arg(10000);

void BM_Sort(benchmark::State& state) {
  Relation r = MessyTemporal(static_cast<size_t>(state.range(0)), 0.2, 0.2,
                             0.2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(EvalSort(r, {{"Name", true}, {kT1, true}}));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Sort)->Arg(1000)->Arg(10000);

void BM_Rdup(benchmark::State& state) {
  Relation r = MessyTemporal(static_cast<size_t>(state.range(0)), 0.3, 0.0,
                             0.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(EvalRdup(r, r.schema()));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Rdup)->Arg(1000)->Arg(10000);

void BM_RdupT(benchmark::State& state) {
  Relation r = MessyTemporal(static_cast<size_t>(state.range(0)), 0.1, 0.1,
                             0.4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(EvalRdupT(r));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_RdupT)->Arg(1000)->Arg(10000);

void BM_Coalesce(benchmark::State& state) {
  Relation r = MessyTemporal(static_cast<size_t>(state.range(0)), 0.0, 0.4,
                             0.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(EvalCoalesce(r));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Coalesce)->Arg(1000)->Arg(10000);

void BM_DifferenceT(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  Relation l = EvalRdupT(MessyTemporal(n, 0.0, 0.1, 0.2));
  Relation r = MessyTemporal(n, 0.1, 0.1, 0.2, 77);
  for (auto _ : state) {
    benchmark::DoNotOptimize(EvalDifferenceT(l, r));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
}
BENCHMARK(BM_DifferenceT)->Arg(1000)->Arg(10000);

void BM_AggregateT(benchmark::State& state) {
  Relation r = MessyTemporal(static_cast<size_t>(state.range(0)), 0.1, 0.2,
                             0.2);
  Schema out;
  out.Add(Attribute{"Name", ValueType::kString});
  out.Add(Attribute{"cnt", ValueType::kInt});
  out.Add(Attribute{kT1, ValueType::kTime});
  out.Add(Attribute{kT2, ValueType::kTime});
  std::vector<AggSpec> aggs = {AggSpec{AggFunc::kCount, "", "cnt"}};
  for (auto _ : state) {
    benchmark::DoNotOptimize(EvalAggregateT(r, {"Name"}, aggs, out));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_AggregateT)->Arg(1000)->Arg(10000);

void BM_UnionT(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  Relation l = MessyTemporal(n, 0.1, 0.1, 0.2, 3);
  Relation r = MessyTemporal(n, 0.1, 0.1, 0.2, 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(EvalUnionT(l, r));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
}
BENCHMARK(BM_UnionT)->Arg(1000)->Arg(10000);

}  // namespace
}  // namespace tqp

int main(int argc, char** argv) {
  tqp::bench::TimedSection("reproduce_table1", [] { tqp::ReproduceTable1(); });
  tqp::bench::WriteBenchJson("table1_operations");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
