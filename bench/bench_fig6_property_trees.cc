// Figure 6 reproduction: operation trees annotated with the Table 2
// properties along the Section 6 optimization walkthrough:
//   (pre)  the Figure 2(a) initial tree,
//   (a)    after transfer pushdown, D2, and C10,
//   (b)    the final tree with C2 applied and the sort pushed into the DBMS.
#include <benchmark/benchmark.h>

#include "algebra/printer.h"
#include "bench_util.h"
#include "opt/enumerate.h"

namespace tqp {

using bench::Banner;

namespace {

PlanPtr ApplyByIds(PlanPtr plan, const Catalog& catalog,
                   const std::vector<std::string>& rule_ids) {
  std::vector<Rule> rules = DefaultRuleSet();
  for (const std::string& id : rule_ids) {
    const Rule* rule = FindRule(rules, id);
    TQP_CHECK(rule != nullptr);
    Result<AnnotatedPlan> ann =
        AnnotatedPlan::Make(plan, &catalog, PaperContract());
    TQP_CHECK(ann.ok());
    std::vector<PlanPtr> nodes;
    CollectNodes(plan, &nodes);
    bool applied = false;
    for (const PlanPtr& node : nodes) {
      std::optional<RuleMatch> m = rule->TryApply(node, ann.value());
      if (!m.has_value()) continue;
      if (!RuleAdmitted(rule->equivalence(), m->location, ann.value())) {
        continue;
      }
      plan = ReplaceNode(plan, node.get(), m->replacement);
      applied = true;
      break;
    }
    if (!applied) {
      std::fprintf(stderr, "walkthrough rule %s did not apply to:\n%s\n",
                   id.c_str(), PrintPlan(plan).c_str());
      TQP_CHECK(applied);
    }
  }
  return plan;
}

void PrintAnnotated(const char* title, const PlanPtr& plan,
                    const Catalog& catalog) {
  Result<AnnotatedPlan> ann =
      AnnotatedPlan::Make(plan, &catalog, PaperContract());
  TQP_CHECK(ann.ok());
  PrintOptions opts;
  opts.show_properties = true;
  opts.show_site = true;
  std::printf("%s\n%s\n", title, PrintPlan(ann.value(), opts).c_str());
}

}  // namespace

void ReproduceFigure6() {
  Banner(
      "Figure 6 — Operation trees with properties "
      "[OrderRequired DuplicatesRelevant PeriodPreserving]");
  Catalog catalog = PaperCatalog();

  PlanPtr initial = PaperInitialPlan();
  PrintAnnotated("Initial tree (Figure 2(a)):", initial, catalog);

  // Section 6 walkthrough, step by step: push the transfer down (T-USORT
  // moves T_S below the sort, T-U below coalT/rdupT, T-B below \T), remove
  // the top rdupT (D2), push coalescing below the difference (C10).
  PlanPtr mid = ApplyByIds(initial, catalog,
                           {"T-USORT", "T-U", "T-U", "T-B", "D2", "C10"});
  PrintAnnotated("After transfer pushdown, D2, C10 — Figure 6(a):", mid,
                 catalog);

  // Remove the right-hand coalescing (C2: periods need not be preserved in
  // \T's right branch), move the remaining rdupT into the stratum (T-U),
  // then push the sort down the left branch and into the DBMS
  // (SP5/SP8/SP7 + T-USORT').
  PlanPtr final_plan = ApplyByIds(
      mid, catalog, {"C2", "T-U", "SP5", "SP8", "SP7", "T-USORT'"});
  PrintAnnotated("Final tree — Figure 6(b):", final_plan, catalog);
}

namespace {

void BM_WalkthroughRewrites(benchmark::State& state) {
  Catalog catalog = PaperCatalog();
  PlanPtr initial = PaperInitialPlan();
  for (auto _ : state) {
    PlanPtr p = ApplyByIds(initial, catalog,
                           {"T-USORT", "T-U", "T-U", "T-B", "D2", "C10", "C2",
                            "T-U", "SP5", "SP8", "SP7", "T-USORT'"});
    benchmark::DoNotOptimize(p);
  }
}
BENCHMARK(BM_WalkthroughRewrites);

}  // namespace
}  // namespace tqp

int main(int argc, char** argv) {
  tqp::bench::TimedSection("reproduce_figure6", [] { tqp::ReproduceFigure6(); });
  tqp::bench::WriteBenchJson("fig6_property_trees");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
