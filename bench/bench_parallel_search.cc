// Parallel Figure 5 search and concurrent-Engine throughput.
//
// Gates (TQP_CHECKed, CI-enforced):
//
//   * byte-identity: num_threads = 4 produces the identical admitted plan
//     sequence, chosen-plan fingerprint, costs, and search counters as
//     num_threads = 1, under breadth-first and best-first + pruning alike —
//     on the paper workload at max_plans = 4000;
//   * throughput: >= 2x plans/second at 4 threads vs 1 thread on the same
//     workload. The speedup gate only arms on hardware with >= 4 cores and
//     in unsanitized builds (sanitizer scheduling distorts ratios); the
//     identity gates always run.
//
// Plus a concurrent-Engine section: queries/second served by one shared
// Engine at 1/2/4 session threads, warm (plan-cache hits) and cold
// (distinct prepares), printed for the record.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "api/engine.h"
#include "bench_util.h"
#include "opt/enumerate.h"

namespace tqp {

using bench::Banner;

namespace {

constexpr bool BuiltWithSanitizers() {
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
  return true;
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
  return true;
#else
  return false;
#endif
#else
  return false;
#endif
}

double Seconds(std::chrono::steady_clock::time_point t0) {
  std::chrono::duration<double> dt = std::chrono::steady_clock::now() - t0;
  return dt.count();
}

/// The parallel-search workload: the predicate-chain query whose plan space
/// exceeds the 4000-plan cap (the raw paper example's closure is ~174
/// plans — too small to measure thread scaling meaningfully).
struct Workload {
  Catalog catalog;
  TranslatedQuery query;
  std::vector<Rule> rules;

  static Workload Make() {
    Workload w{bench::ScaledCatalog(4), {}, DefaultRuleSet()};
    w.query = bench::ChainQuery(w.catalog, 4);
    return w;
  }
};

EnumerationOptions ParallelOptions(size_t threads, SearchStrategy strategy,
                                   double prune_factor) {
  EnumerationOptions opts = bench::SearchOptions(4000, strategy);
  opts.num_threads = threads;
  opts.cost_prune_factor = prune_factor;
  // The Engine path: plan identity is fingerprint-based, no canonical
  // serialization.
  opts.fill_canonical = false;
  return opts;
}

Result<EnumerationResult> Run(const Workload& w,
                              const EnumerationOptions& opts) {
  return EnumeratePlans(w.query.plan, w.catalog, w.query.contract, w.rules,
                        opts);
}

/// Byte-identity of the search outcome (the interner/cache session totals
/// are driver observability, not search outcome — see enumerate.h).
void CheckIdentical(const EnumerationResult& serial,
                    const EnumerationResult& parallel) {
  TQP_CHECK(serial.plans.size() == parallel.plans.size());
  for (size_t i = 0; i < serial.plans.size(); ++i) {
    TQP_CHECK(serial.plans[i].fingerprint == parallel.plans[i].fingerprint);
    TQP_CHECK(serial.plans[i].parent == parallel.plans[i].parent);
    TQP_CHECK(serial.plans[i].rule_id == parallel.plans[i].rule_id);
  }
  TQP_CHECK(serial.truncated == parallel.truncated);
  TQP_CHECK(serial.matches == parallel.matches);
  TQP_CHECK(serial.admitted == parallel.admitted);
  TQP_CHECK(serial.gated_out == parallel.gated_out);
  TQP_CHECK(serial.memo_hits == parallel.memo_hits);
  TQP_CHECK(serial.cost_pruned == parallel.cost_pruned);
  TQP_CHECK(serial.expanded == parallel.expanded);
  TQP_CHECK(serial.costs == parallel.costs);
}

}  // namespace

void GateParallelByteIdentity() {
  Banner("Parallel search — byte-identity gates (4 threads vs 1)");
  Workload w = Workload::Make();

  struct Config {
    const char* name;
    SearchStrategy strategy;
    double prune;
  };
  for (const Config& config :
       {Config{"breadth-first", SearchStrategy::kBreadthFirst, 0.0},
        Config{"breadth-first + prune 1.5", SearchStrategy::kBreadthFirst,
               1.5},
        Config{"best-first + prune 1.5", SearchStrategy::kBestFirst, 1.5}}) {
    Result<EnumerationResult> serial =
        Run(w, ParallelOptions(1, config.strategy, config.prune));
    Result<EnumerationResult> parallel =
        Run(w, ParallelOptions(4, config.strategy, config.prune));
    TQP_CHECK(serial.ok() && parallel.ok());
    CheckIdentical(serial.value(), parallel.value());
    std::printf(
        "%-28s | %5zu plans | %5zu expanded | %5zu pruned | identical\n",
        config.name, serial->plans.size(), serial->expanded,
        serial->cost_pruned);
  }
  std::printf("\nchosen-plan fingerprints, costs, and every search counter "
              "match at 4 threads.\n");
}

void GateParallelSpeedup() {
  Banner("Parallel search — plans/second by thread count (max_plans = 4000)");
  Workload w = Workload::Make();

  auto plans_per_second = [&](size_t threads) {
    EnumerationOptions opts =
        ParallelOptions(threads, SearchStrategy::kBreadthFirst, 0.0);
    double best = 0.0;
    size_t plans = 0;
    for (int rep = 0; rep < 5; ++rep) {
      auto t0 = std::chrono::steady_clock::now();
      Result<EnumerationResult> res = Run(w, opts);
      double s = Seconds(t0);
      TQP_CHECK(res.ok());
      plans = res->plans.size();
      best = std::max(best, static_cast<double>(plans) / s);
    }
    std::printf("  %zu thread%s: %10.0f plans/s  (%zu plans)\n", threads,
                threads == 1 ? " " : "s", best, plans);
    return best;
  };

  double one = plans_per_second(1);
  double two = plans_per_second(2);
  double four = plans_per_second(4);
  bench::SetMetric("plans_per_s_1_thread", one);
  bench::SetMetric("plans_per_s_2_threads", two);
  bench::SetMetric("plans_per_s_4_threads", four);
  bench::SetMetric("speedup_4_threads", four / one);
  std::printf("\nspeedup: %.2fx at 2 threads, %.2fx at 4 threads\n",
              two / one, four / one);

  unsigned cores = std::thread::hardware_concurrency();
  if (cores < 4 || BuiltWithSanitizers()) {
    std::printf("speedup gate SKIPPED (%u cores, sanitizers %s) — the gate "
                "needs >= 4 cores and an unsanitized build.\n",
                cores, BuiltWithSanitizers() ? "on" : "off");
    return;
  }
  // The acceptance gate: >= 2x plans/second at 4 threads vs 1 thread.
  TQP_CHECK(four >= 2.0 * one);
  std::printf("speedup gate PASSED: %.2fx >= 2x at 4 threads.\n", four / one);
}

void ConcurrentEngineThroughput() {
  Banner("Concurrent Engine — queries/second by session count");
  const std::vector<std::string> queries = bench::MixedWorkloadQueries();

  auto run_sessions = [&](size_t sessions, bool warm) {
    Engine engine(bench::MixedWorkloadCatalog());
    if (warm) {
      for (const std::string& q : queries) TQP_CHECK(engine.Query(q).ok());
    }
    constexpr int kPerThread = 40;
    std::atomic<int> failures{0};
    auto t0 = std::chrono::steady_clock::now();
    std::vector<std::thread> threads;
    threads.reserve(sessions);
    for (size_t s = 0; s < sessions; ++s) {
      threads.emplace_back([&, s] {
        for (int i = 0; i < kPerThread; ++i) {
          const std::string& q =
              queries[(static_cast<size_t>(i) + s) % queries.size()];
          if (!engine.Query(q).ok()) failures.fetch_add(1);
        }
      });
    }
    for (std::thread& th : threads) th.join();
    double s = Seconds(t0);
    TQP_CHECK(failures.load() == 0);
    double qps = static_cast<double>(kPerThread * sessions) / s;
    std::printf("  %zu session%s, %s: %8.0f q/s\n", sessions,
                sessions == 1 ? " " : "s", warm ? "warm" : "cold", qps);
    return qps;
  };

  for (size_t sessions : {1u, 2u, 4u}) {
    bench::SetMetric("warm_qps_" + std::to_string(sessions) + "_sessions",
                     run_sessions(sessions, /*warm=*/true));
  }
  for (size_t sessions : {1u, 2u, 4u}) {
    bench::SetMetric("cold_qps_" + std::to_string(sessions) + "_sessions",
                     run_sessions(sessions, /*warm=*/false));
  }
  std::printf("\none shared Engine; warm = plan-cache hits, cold = first-touch "
              "prepares per engine.\n");
}

namespace {

void BM_ParallelEnumerate(benchmark::State& state) {
  Workload w = Workload::Make();
  EnumerationOptions opts = ParallelOptions(
      static_cast<size_t>(state.range(0)), SearchStrategy::kBreadthFirst, 0.0);
  size_t plans = 0;
  for (auto _ : state) {
    Result<EnumerationResult> res = Run(w, opts);
    TQP_CHECK(res.ok());
    plans = res->plans.size();
    benchmark::DoNotOptimize(res);
  }
  state.counters["plans"] = static_cast<double>(plans);
  state.counters["threads"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_ParallelEnumerate)->Arg(1)->Arg(2)->Arg(4);

}  // namespace
}  // namespace tqp

int main(int argc, char** argv) {
  tqp::bench::TimedSection("byte_identity_gates", [] { tqp::GateParallelByteIdentity(); });
  tqp::bench::TimedSection("speedup_gate", [] { tqp::GateParallelSpeedup(); });
  tqp::bench::TimedSection("concurrent_engine", [] { tqp::ConcurrentEngineThroughput(); });
  tqp::bench::WriteBenchJson("parallel_search");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
