// Best-first (cost-directed) plan search vs the exhaustive Figure 5 loop.
//
// The paper's Figure 5 enumerates the equivalence class breadth-first and
// leaves cost integration open; SearchStrategy::kBestFirst orders the
// frontier by estimated plan cost instead, so the cost model steers which
// plans get expanded at all. This bench gates the payoff on the paper's
// running example at max_plans = 4000:
//
//   * best-first + pruning reaches a plan within 1% of the exhaustive
//     optimum while expanding <= 50% of the plans the exhaustive search
//     expands, and
//   * best-first with unlimited budgets reaches the identical plan set as
//     breadth-first (order-independence of the closure).
//
// Both are TQP_CHECKed, so CI fails if a regression makes cost-directed
// search lose the optimum or its expansion advantage.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <set>

#include "bench_util.h"
#include "opt/enumerate.h"
#include "opt/optimizer.h"

namespace tqp {

using bench::Banner;

namespace {

double MinCost(const EnumerationResult& res) {
  TQP_CHECK(!res.costs.empty());
  return *std::min_element(res.costs.begin(), res.costs.end());
}

/// Exhaustive optimum: every plan costed, none pruned.
double ExhaustiveOptimum(const EnumerationResult& res, const Catalog& catalog) {
  DerivationCache cache;
  QueryContract contract = PaperContract();
  PlanContext ctx(&cache, nullptr, &contract);
  double best = 0.0;
  for (size_t i = 0; i < res.plans.size(); ++i) {
    TQP_CHECK(cache.Derive(res.plans[i].plan, catalog, {}).ok());
    double cost = EstimatePlanCost(res.plans[i].plan, ctx, EngineConfig{});
    if (i == 0 || cost < best) best = cost;
  }
  return best;
}

}  // namespace

void CompareBestFirstAgainstExhaustive() {
  Banner("Best-first (cost-directed) search vs exhaustive (max_plans = 4000)");
  Catalog catalog = PaperCatalog();
  std::vector<Rule> rules = DefaultRuleSet();

  EnumerationOptions exhaustive_opts = bench::SearchOptions(4000);
  Result<EnumerationResult> exhaustive =
      bench::RunPaperSearch(catalog, rules, exhaustive_opts);
  TQP_CHECK(exhaustive.ok());
  double optimum = ExhaustiveOptimum(exhaustive.value(), catalog);
  std::printf("exhaustive: %zu plans, %zu expanded, optimum cost %.1f\n\n",
              exhaustive->plans.size(), exhaustive->expanded, optimum);

  std::printf("%-28s | %8s | %8s | %8s | %10s | %7s\n", "configuration",
              "plans", "expanded", "pruned", "best cost", "vs opt");
  std::printf("%s\n", std::string(84, '-').c_str());

  auto run = [&](const char* name, double factor, size_t max_expansions,
                 SearchStrategy strategy) {
    EnumerationOptions opts = bench::SearchOptions(4000, strategy);
    opts.cost_prune_factor = factor;
    opts.max_expansions = max_expansions;
    Result<EnumerationResult> res = bench::RunPaperSearch(catalog, rules, opts);
    TQP_CHECK(res.ok());
    double best = MinCost(res.value());
    std::printf("%-28s | %8zu | %8zu | %8zu | %10.1f | %6.2f%%\n", name,
                res->plans.size(), res->expanded, res->cost_pruned, best,
                100.0 * (best - optimum) / optimum);
    return res;
  };

  run("breadth-first, prune 1.5", 1.5, 0, SearchStrategy::kBreadthFirst);
  run("breadth-first, prune 1.1", 1.1, 0, SearchStrategy::kBreadthFirst);
  run("best-first, prune 4.0", 4.0, 0, SearchStrategy::kBestFirst);
  run("best-first, prune 2.0", 2.0, 0, SearchStrategy::kBestFirst);
  run("best-first, prune 1.1", 1.1, 0, SearchStrategy::kBestFirst);
  run("best-first, 40 expansions", 0.0, 40, SearchStrategy::kBestFirst);
  Result<EnumerationResult> gated =
      run("best-first, prune 1.5", 1.5, 0, SearchStrategy::kBestFirst);

  // The headline gates: within 1% of the exhaustive optimum at <= 50% of
  // the exhaustive expansion count.
  double gated_best = MinCost(gated.value());
  TQP_CHECK(gated_best <= optimum * 1.01);
  TQP_CHECK(gated->expanded * 2 <= exhaustive->expanded);
  std::printf(
      "\nbest-first @ prune 1.5 reaches %.2f%% of optimum with %.0f%% of the "
      "expansions (gates: <=1%% / <=50%%)\n",
      100.0 * gated_best / optimum,
      100.0 * static_cast<double>(gated->expanded) /
          static_cast<double>(exhaustive->expanded));
  bench::SetMetric("best_cost_pct_of_optimum", 100.0 * gated_best / optimum);
  bench::SetMetric("expanded_pct_of_exhaustive",
                   100.0 * static_cast<double>(gated->expanded) /
                       static_cast<double>(exhaustive->expanded));

  // Order-independence: with unlimited budgets the frontier order cannot
  // change the closure — best-first reaches exactly the breadth-first set.
  EnumerationOptions bf_all =
      bench::SearchOptions(4000, SearchStrategy::kBestFirst);
  Result<EnumerationResult> all = bench::RunPaperSearch(catalog, rules, bf_all);
  TQP_CHECK(all.ok());
  TQP_CHECK(all->plans.size() == exhaustive->plans.size());
  std::set<uint64_t> a, b;
  for (const EnumeratedPlan& p : exhaustive->plans) a.insert(p.fingerprint);
  for (const EnumeratedPlan& p : all->plans) b.insert(p.fingerprint);
  TQP_CHECK(a == b);
  std::printf(
      "unlimited-budget best-first reaches the identical %zu-plan set\n",
      all->plans.size());

  // The memo shard knob (first cut at partitioned search) must not change
  // the admitted sequence.
  EnumerationOptions sharded = exhaustive_opts;
  sharded.shard_memo_by_root_kind = true;
  Result<EnumerationResult> shard_res =
      bench::RunPaperSearch(catalog, rules, sharded);
  TQP_CHECK(shard_res.ok());
  TQP_CHECK(shard_res->plans.size() == exhaustive->plans.size());
  for (size_t i = 0; i < shard_res->plans.size(); ++i) {
    TQP_CHECK(shard_res->plans[i].fingerprint ==
              exhaustive->plans[i].fingerprint);
    TQP_CHECK(shard_res->plans[i].parent == exhaustive->plans[i].parent);
  }
  std::printf("root-kind-sharded memo reproduces the sequence byte-identically\n");
}

namespace {

void BM_Search(benchmark::State& state, SearchStrategy strategy,
               double factor) {
  Catalog catalog = PaperCatalog();
  std::vector<Rule> rules = DefaultRuleSet();
  EnumerationOptions opts = bench::SearchOptions(4000, strategy);
  opts.cost_prune_factor = factor;
  opts.fill_canonical = false;
  size_t expanded = 0, plans = 0;
  for (auto _ : state) {
    Result<EnumerationResult> res = bench::RunPaperSearch(catalog, rules, opts);
    TQP_CHECK(res.ok());
    expanded = res->expanded;
    plans = res->plans.size();
    benchmark::DoNotOptimize(res);
  }
  state.counters["plans"] = static_cast<double>(plans);
  state.counters["expanded"] = static_cast<double>(expanded);
}

void BM_BreadthFirstExhaustive(benchmark::State& state) {
  BM_Search(state, SearchStrategy::kBreadthFirst, 0.0);
}
BENCHMARK(BM_BreadthFirstExhaustive);

void BM_BestFirstPruned(benchmark::State& state) {
  BM_Search(state, SearchStrategy::kBestFirst, 1.5);
}
BENCHMARK(BM_BestFirstPruned);

}  // namespace
}  // namespace tqp

int main(int argc, char** argv) {
  tqp::bench::TimedSection("bestfirst_vs_exhaustive", [] { tqp::CompareBestFirstAgainstExhaustive(); });
  tqp::bench::WriteBenchJson("bestfirst_search");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
