// Figure 4 reproduction: the transformation-rule catalogue.
//
// Prints every rule with its equivalence type (including the two documented
// deviations, C8/C9) and the number of locations where it fires on a pool of
// representative plans; then benchmarks rule matching and application —
// the inner loop of the Figure 5 enumeration.
#include <benchmark/benchmark.h>

#include <map>

#include "bench_util.h"
#include "opt/enumerate.h"
#include "rules/rules.h"
#include "tql/translator.h"

namespace tqp {

using bench::Banner;

namespace {

struct Pool {
  Catalog catalog;
  std::vector<PlanPtr> plans;
};

Pool BuildPool() {
  Pool pool;
  pool.catalog = PaperCatalog();
  TQP_CHECK(pool.catalog
                .RegisterWithInferredFlags(
                    "EMP_CLEAN", EvalRdupT(ScaledEmployee(6)), Site::kDbms)
                .ok());

  pool.plans.push_back(PaperInitialPlan());
  const char* queries[] = {
      "SELECT EmpName, Dept FROM EMPLOYEE WHERE Dept = 'Sales' AND T1 >= 2 "
      "ORDER BY EmpName",
      "VALIDTIME SELECT DISTINCT EmpName FROM EMPLOYEE",
      "VALIDTIME COALESCED SELECT DISTINCT EmpName FROM EMPLOYEE "
      "MAXUNION SELECT EmpName FROM PROJECT",
      "SELECT EmpName, COUNT(*) AS n FROM EMPLOYEE GROUP BY EmpName "
      "ORDER BY EmpName",
      "VALIDTIME SELECT 1.EmpName AS EmpName, Dept, Prj "
      "FROM EMPLOYEE, PROJECT WHERE Dept = 'Sales'",
  };
  for (const char* q : queries) {
    Result<TranslatedQuery> compiled = CompileQuery(q, pool.catalog);
    TQP_CHECK(compiled.ok());
    pool.plans.push_back(compiled->plan);
  }
  return pool;
}

}  // namespace

void ReproduceFigure4() {
  Banner("Figure 4 — Transformation rules (catalogue + fire counts)");
  Pool pool = BuildPool();
  RuleSetOptions opts;
  opts.expanding_rules = true;
  std::vector<Rule> rules = DefaultRuleSet(opts);

  std::map<std::string, size_t> fires;
  for (const PlanPtr& plan : pool.plans) {
    Result<AnnotatedPlan> ann =
        AnnotatedPlan::Make(plan, &pool.catalog, QueryContract::Multiset());
    if (!ann.ok()) continue;
    std::vector<PlanPtr> nodes;
    CollectNodes(plan, &nodes);
    for (const Rule& rule : rules) {
      for (const PlanPtr& node : nodes) {
        if (rule.TryApply(node, ann.value()).has_value()) {
          ++fires[rule.id()];
        }
      }
    }
  }

  std::printf("%-8s %-22s %5s  %s\n", "rule", "equivalence", "fires",
              "description");
  std::printf("%s\n", std::string(110, '-').c_str());
  for (const Rule& rule : rules) {
    std::printf("%-8s %-22s %5zu  %s\n", rule.id().c_str(),
                EquivalenceTypeName(rule.equivalence()), fires[rule.id()],
                rule.description().c_str());
  }
  std::printf(
      "\n%zu directed rules. Every claimed equivalence level is verified on "
      "randomized inputs by tests/test_rules.cc\n(including the documented "
      "C8/C9 deviations from the paper's stated strengths).\n",
      rules.size());
}

namespace {

void BM_RuleMatchingPass(benchmark::State& state) {
  Pool pool = BuildPool();
  std::vector<Rule> rules = DefaultRuleSet();
  Result<AnnotatedPlan> ann = AnnotatedPlan::Make(
      pool.plans[0], &pool.catalog, PaperContract());
  TQP_CHECK(ann.ok());
  std::vector<PlanPtr> nodes;
  CollectNodes(pool.plans[0], &nodes);
  for (auto _ : state) {
    size_t matches = 0;
    for (const Rule& rule : rules) {
      for (const PlanPtr& node : nodes) {
        if (rule.TryApply(node, ann.value()).has_value()) ++matches;
      }
    }
    benchmark::DoNotOptimize(matches);
  }
  state.counters["rules"] = static_cast<double>(rules.size());
  state.counters["locations"] = static_cast<double>(nodes.size());
}
BENCHMARK(BM_RuleMatchingPass);

void BM_SingleRewrite(benchmark::State& state) {
  Pool pool = BuildPool();
  std::vector<Rule> rules = DefaultRuleSet();
  const Rule* c10 = FindRule(rules, "C10");
  TQP_CHECK(c10 != nullptr);
  PlanPtr plan = pool.plans[0];
  Result<AnnotatedPlan> ann =
      AnnotatedPlan::Make(plan, &pool.catalog, PaperContract());
  TQP_CHECK(ann.ok());
  // Locate the coalT node (C10's left-hand side root).
  std::vector<PlanPtr> nodes;
  CollectNodes(plan, &nodes);
  PlanPtr target;
  for (const PlanPtr& n : nodes) {
    if (n->kind() == OpKind::kCoalesce) target = n;
  }
  TQP_CHECK(target != nullptr);
  // D2 must fire first for C10 to match coalT(\T(..)); emulate by removing
  // the top rdupT as the optimizer does.
  const Rule* d2 = FindRule(rules, "D2");
  std::optional<RuleMatch> d2m =
      d2->TryApply(target->child(0), ann.value());
  TQP_CHECK(d2m.has_value());
  plan = ReplaceNode(plan, target->child(0).get(), d2m->replacement);
  Result<AnnotatedPlan> ann2 =
      AnnotatedPlan::Make(plan, &pool.catalog, PaperContract());
  TQP_CHECK(ann2.ok());
  nodes.clear();
  CollectNodes(plan, &nodes);
  for (const PlanPtr& n : nodes) {
    if (n->kind() == OpKind::kCoalesce) target = n;
  }

  for (auto _ : state) {
    std::optional<RuleMatch> m = c10->TryApply(target, ann2.value());
    TQP_CHECK(m.has_value());
    PlanPtr rewritten = ReplaceNode(plan, target.get(), m->replacement);
    benchmark::DoNotOptimize(rewritten);
  }
}
BENCHMARK(BM_SingleRewrite);

void BM_AnnotationAfterRewrite(benchmark::State& state) {
  // The "adjust the properties" step of Figure 5, implemented as a full
  // (linear-time) re-annotation.
  Pool pool = BuildPool();
  for (auto _ : state) {
    for (const PlanPtr& plan : pool.plans) {
      Result<AnnotatedPlan> ann = AnnotatedPlan::Make(
          plan, &pool.catalog, QueryContract::Multiset());
      benchmark::DoNotOptimize(ann);
    }
  }
  state.counters["plans"] = static_cast<double>(pool.plans.size());
}
BENCHMARK(BM_AnnotationAfterRewrite);

}  // namespace
}  // namespace tqp

int main(int argc, char** argv) {
  tqp::bench::TimedSection("reproduce_figure4", [] { tqp::ReproduceFigure4(); });
  tqp::bench::WriteBenchJson("fig4_rules");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
