// The incremental re-execution gate: a prepared multi-relation query
// (temporal coalesce + selective filter over a large messy relation R,
// temporal-joined against a small probe relation A) re-executed after
// single-relation catalog updates, with EngineOptions::incremental_execution
// on vs an always-cold engine.
//
// The plan pins the expensive subtree under its own transferS cut:
//
//     productT( transferS(σ_{Val>cut}(coalT(scan R))),  transferS(scan A) )
//
// so the coalesce of R — the dominant cost — depends only on R. Updating A
// invalidates the A-side cut and the root, but the R-side result splices
// from the versioned subplan cache byte-for-byte.
//
// Gates (TQP_CHECKed, CI-enforced):
//
//   * byte identity: after every update, the incremental engine's relation
//     is list-identical (bytes, order annotation, plan fingerprint) to the
//     cold engine's from-scratch execution — both executors, serial and
//     4-thread vexec, scramble off and on, under every scramble seed;
//   * re-execution speedup: updating A re-executes >= 5x faster on the
//     incremental engine than on the cold one, for the reference executor
//     and for vexec at 1 and 4 threads. The speedup gate arms only in
//     optimized, unsanitized builds; the identity gates always run.
//
// Headline numbers go to BENCH_incremental_exec.json via bench::SetMetric.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "api/engine.h"
#include "bench_util.h"

namespace tqp {

using bench::Banner;
using bench::Row;

using bench::BuiltWithSanitizers;
using bench::OptimizedBuild;

namespace {

double Seconds(std::chrono::steady_clock::time_point t0) {
  std::chrono::duration<double> dt = std::chrono::steady_clock::now() - t0;
  return dt.count();
}

/// The small, frequently-updated probe side: two dozen long periods.
Relation ProbeRelation(uint64_t seed) {
  RelationGenParams a;
  a.cardinality = 24;
  a.num_names = 8;
  a.num_categories = 4;
  a.time_horizon = 4000;
  a.max_period_length = 400;  // long probe periods
  a.seed = seed;
  return GenerateRelation(a);
}

/// R: a large messy temporal relation (duplicates, coalescible adjacency,
/// snapshot overlaps). A: the small probe relation.
Catalog GateCatalog(size_t base_cardinality, uint64_t seed) {
  RelationGenParams r;
  r.cardinality = base_cardinality;
  r.num_names = std::max<size_t>(8, base_cardinality / 16);
  r.num_categories = 16;
  r.num_values = 1000;
  r.time_horizon = 4000;
  r.max_period_length = 50;
  r.duplicate_fraction = 0.05;
  r.adjacency_fraction = 0.35;
  r.overlap_fraction = 0.10;
  r.seed = seed;

  Catalog catalog;
  TQP_CHECK(catalog
                .RegisterWithInferredFlags("R", GenerateRelation(r),
                                           Site::kDbms)
                .ok());
  TQP_CHECK(catalog
                .RegisterWithInferredFlags("A", ProbeRelation(seed + 1),
                                           Site::kDbms)
                .ok());
  return catalog;
}

/// productT(transferS(σ_{Val>985}(coalT(R))), transferS(A)). The selection
/// keeps the coalesce expensive but the join input small, so the work saved
/// by splicing the R-side cut dominates the work that must recompute.
PlanPtr GatePlan() {
  ExprPtr pred = Expr::Compare(CompareOp::kGt, Expr::Attr("Val"),
                               Expr::Const(Value::Int(985)));
  return PlanNode::ProductT(
      PlanNode::TransferS(
          PlanNode::Select(PlanNode::Coalesce(PlanNode::Scan("R")), pred)),
      PlanNode::TransferS(PlanNode::Scan("A")));
}

struct GateConfig {
  const char* label;
  ExecutorKind executor;
  size_t threads;
};

const GateConfig kConfigs[] = {
    {"ref_t1", ExecutorKind::kReference, 1},
    {"vec_t1", ExecutorKind::kVectorized, 1},
    {"vec_t4", ExecutorKind::kVectorized, 4},
};

EngineOptions GateOptions(const GateConfig& config, bool incremental,
                          bool scramble, uint64_t scramble_seed) {
  EngineOptions options;
  // The hand-built plan IS the plan under test: what this bench measures is
  // the cache cut, not the search. One considered plan keeps re-prepare
  // cost symmetric and negligible on both engines.
  options.enumeration.max_plans = 1;
  options.engine.dbms_scrambles_order = scramble;
  options.engine.scramble_seed = scramble_seed;
  options.executor = config.executor;
  options.vexec_threads = config.threads;
  options.incremental_execution = incremental;
  return options;
}

void CheckIdentical(const QueryResult& inc, const QueryResult& cold,
                    const char* label) {
  TQP_CHECK(inc.relation.schema() == cold.relation.schema());
  TQP_CHECK(inc.relation.size() == cold.relation.size());
  for (size_t i = 0; i < inc.relation.size(); ++i) {
    TQP_CHECK(inc.relation.tuple(i) == cold.relation.tuple(i));
  }
  TQP_CHECK(SortSpecToString(inc.relation.order()) ==
            SortSpecToString(cold.relation.order()));
  TQP_CHECK(inc.plan_fingerprint == cold.plan_fingerprint);
  (void)label;
}

Status UpdateProbe(Catalog& catalog, uint64_t seed) {
  CatalogEntry entry;
  entry.data = ProbeRelation(seed);
  return catalog.Update("A", std::move(entry));
}

}  // namespace

// Identity under every configuration: both executors, serial and 4-thread
// vexec, scramble off/on, several scramble seeds. Small scale — this sweep
// also runs under ASan/TSan, where the speedup gate is disarmed.
void GateIncrementalIdentity() {
  Banner("incremental exec — byte-identity sweep (update A, splice R cut)");
  const QueryContract contract = QueryContract::Multiset();
  for (const GateConfig& config : kConfigs) {
    for (bool scramble : {false, true}) {
      for (uint64_t seed : {0x5eedULL, 0xabcdefULL, 0x7777ULL}) {
        Catalog base = GateCatalog(2000, 7);
        Engine inc(base, GateOptions(config, /*incremental=*/true, scramble,
                                     seed));
        Engine cold(base, GateOptions(config, /*incremental=*/false,
                                      scramble, seed));
        Result<PreparedQuery> pi = inc.Prepare(GatePlan(), contract);
        Result<PreparedQuery> pc = cold.Prepare(GatePlan(), contract);
        TQP_CHECK(pi.ok() && pc.ok());
        PreparedQuery qi = pi.value();
        PreparedQuery qc = pc.value();

        // Prime, then three single-relation updates.
        Result<QueryResult> ri = qi.Execute();
        Result<QueryResult> rc = qc.Execute();
        TQP_CHECK(ri.ok() && rc.ok());
        CheckIdentical(ri.value(), rc.value(), config.label);
        for (int iter = 1; iter <= 3; ++iter) {
          const uint64_t data_seed = seed * 131 + iter;
          auto mutate = [&](Catalog& c) { return UpdateProbe(c, data_seed); };
          TQP_CHECK(inc.MutateCatalog(mutate).ok());
          TQP_CHECK(cold.MutateCatalog(mutate).ok());
          ri = qi.Execute();
          rc = qc.Execute();
          TQP_CHECK(ri.ok() && rc.ok());
          CheckIdentical(ri.value(), rc.value(), config.label);
          // The R-side cut must actually have spliced from the cache.
          TQP_CHECK(ri->exec.result_cache_hits > 0);
          TQP_CHECK(rc->exec.result_cache_hits == 0);
        }
      }
    }
  }
  std::printf("identity gates PASSED: both executors, 1 and 4 threads, "
              "scramble off/on, 3 seeds.\n");
}

// The speedup gate: per update of A, the incremental engine re-executes
// >= 5x faster than the always-cold engine, byte-identically.
void GateIncrementalSpeedup() {
  Banner("incremental exec — re-execution speedup after updating A");
  constexpr size_t kBaseCardinality = 120000;
  constexpr int kIters = 5;
  const QueryContract contract = QueryContract::Multiset();

  std::printf("%-8s | %14s | %14s | %8s\n", "config", "incremental ms",
              "cold ms", "speedup");
  std::printf("%s\n", std::string(54, '-').c_str());

  double min_speedup = 0.0;
  for (const GateConfig& config : kConfigs) {
    Catalog base = GateCatalog(kBaseCardinality, 42);
    Engine inc(base, GateOptions(config, /*incremental=*/true,
                                 /*scramble=*/false, 0));
    Engine cold(base, GateOptions(config, /*incremental=*/false,
                                  /*scramble=*/false, 0));
    Result<PreparedQuery> pi = inc.Prepare(GatePlan(), contract);
    Result<PreparedQuery> pc = cold.Prepare(GatePlan(), contract);
    TQP_CHECK(pi.ok() && pc.ok());
    PreparedQuery qi = pi.value();
    PreparedQuery qc = pc.value();

    // Prime both engines (untimed): populates the incremental engine's
    // result cache and pays both sides' one-time warmup.
    Result<QueryResult> ri = qi.Execute();
    Result<QueryResult> rc = qc.Execute();
    TQP_CHECK(ri.ok() && rc.ok());
    CheckIdentical(ri.value(), rc.value(), config.label);

    double inc_s = 0.0;
    double cold_s = 0.0;
    for (int iter = 1; iter <= kIters; ++iter) {
      const uint64_t data_seed = 9000 + iter;
      auto mutate = [&](Catalog& c) { return UpdateProbe(c, data_seed); };
      TQP_CHECK(inc.MutateCatalog(mutate).ok());
      TQP_CHECK(cold.MutateCatalog(mutate).ok());

      auto t0 = std::chrono::steady_clock::now();
      ri = qi.Execute();
      inc_s += Seconds(t0);
      t0 = std::chrono::steady_clock::now();
      rc = qc.Execute();
      cold_s += Seconds(t0);

      TQP_CHECK(ri.ok() && rc.ok());
      CheckIdentical(ri.value(), rc.value(), config.label);
      TQP_CHECK(ri->exec.result_cache_hits > 0);
    }
    inc_s /= kIters;
    cold_s /= kIters;
    const double speedup = cold_s / inc_s;
    std::printf("%-8s | %14.2f | %14.2f | %7.2fx\n", config.label,
                inc_s * 1e3, cold_s * 1e3, speedup);
    bench::SetMetric(std::string(config.label) + "_incremental_ms",
                     inc_s * 1e3);
    bench::SetMetric(std::string(config.label) + "_cold_ms", cold_s * 1e3);
    bench::SetMetric(std::string(config.label) + "_speedup", speedup);
    if (min_speedup == 0.0 || speedup < min_speedup) min_speedup = speedup;

    EngineStats stats = inc.stats();
    bench::SetMetric(std::string(config.label) + "_result_cache_hits",
                     static_cast<double>(stats.result_cache_hits));
    bench::SetMetric(std::string(config.label) + "_result_cache_misses",
                     static_cast<double>(stats.result_cache_misses));
    bench::SetMetric(std::string(config.label) + "_result_cache_bytes",
                     static_cast<double>(stats.result_cache_bytes));
    if (config.executor == ExecutorKind::kVectorized &&
        config.threads == 4) {
      bench::SetJsonMetric("incremental_engine_stats", stats.ToJson());
    }
  }
  bench::SetMetric("min_speedup", min_speedup);

  if (!OptimizedBuild() || BuiltWithSanitizers()) {
    std::printf("speedup gate SKIPPED (optimized=%d, sanitizers=%d) — the "
                "gate needs an optimized, unsanitized build.\n",
                OptimizedBuild() ? 1 : 0, BuiltWithSanitizers() ? 1 : 0);
    return;
  }
  // The acceptance gate: >= 5x on every configuration.
  TQP_CHECK(min_speedup >= 5.0);
  std::printf("speedup gate PASSED: min %.2fx >= 5x.\n", min_speedup);
}

namespace {

void BM_IncrementalReexecute(benchmark::State& state) {
  Catalog base = GateCatalog(static_cast<size_t>(state.range(0)), 42);
  Engine engine(base, GateOptions(kConfigs[0], /*incremental=*/true,
                                  /*scramble=*/false, 0));
  Result<PreparedQuery> prepared =
      engine.Prepare(GatePlan(), QueryContract::Multiset());
  TQP_CHECK(prepared.ok());
  PreparedQuery query = prepared.value();
  TQP_CHECK(query.Execute().ok());  // prime
  uint64_t data_seed = 50000;
  for (auto _ : state) {
    const uint64_t seed = ++data_seed;
    TQP_CHECK(
        engine.MutateCatalog([&](Catalog& c) { return UpdateProbe(c, seed); })
            .ok());
    Result<QueryResult> r = query.Execute();
    TQP_CHECK(r.ok());
    benchmark::DoNotOptimize(r);
  }
  state.counters["cache_hits"] =
      static_cast<double>(engine.stats().result_cache_hits);
}
BENCHMARK(BM_IncrementalReexecute)->Arg(4000)->Arg(20000);

}  // namespace
}  // namespace tqp

int main(int argc, char** argv) {
  tqp::bench::TimedSection("identity", [] { tqp::GateIncrementalIdentity(); });
  tqp::bench::TimedSection("speedup", [] { tqp::GateIncrementalSpeedup(); });
  tqp::bench::WriteBenchJson("incremental_exec");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
