// Extension B: coalescing placement around temporal difference (rule C10).
//
// Section 4.3 notes that after pushing coalescing below \T, the right-hand
// coalescing may be dropped (C2) — "however, in cases when coalescing
// significantly reduces the cardinality of its argument, it might be useful
// to retain it". This bench measures exactly that trade-off: total work of
//   (i)   coalT(rdupT(l)) \T r            (drop right coalescing)
//   (ii)  coalT(rdupT(l)) \T coalT(r)     (retain right coalescing)
//   (iii) coalT(l' \T r)                  (coalesce after the difference)
// as a function of the right argument's adjacency factor (how much coalT
// shrinks it), and reports the crossover.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>

#include "bench_util.h"
#include "core/equivalence.h"
#include "exec/evaluator.h"

namespace tqp {

using bench::Banner;
using bench::MessyTemporal;

namespace {

struct Workload {
  Relation left;   // snapshot-duplicate-free (rdupT applied)
  Relation right;  // adjacency-rich: coalT shrinks it
};

Workload MakeWorkload(size_t n, double adjacency, uint64_t seed) {
  Workload w;
  w.left = EvalRdupT(MessyTemporal(n, 0.0, 0.1, 0.2, seed));
  w.right = MessyTemporal(n * 2, 0.0, adjacency, 0.1, seed + 31);
  return w;
}

// Wall-clock microseconds of one strategy execution (median of `reps`).
template <typename Fn>
double TimeUs(Fn fn, int reps = 5) {
  std::vector<double> samples;
  for (int i = 0; i < reps; ++i) {
    auto start = std::chrono::steady_clock::now();
    fn();
    auto end = std::chrono::steady_clock::now();
    samples.push_back(
        std::chrono::duration<double, std::micro>(end - start).count());
  }
  std::sort(samples.begin(), samples.end());
  return samples[samples.size() / 2];
}

double WorkDropRight(const Workload& w) {
  return TimeUs([&w]() {
    Relation l = EvalCoalesce(w.left);
    benchmark::DoNotOptimize(EvalDifferenceT(l, w.right));
  });
}

double WorkRetainRight(const Workload& w) {
  // Pay the right coalescing; the difference sees fewer right tuples (the
  // sweep inside \T is superlinear in class sizes, so shrinking pays off
  // once enough right tuples merge).
  return TimeUs([&w]() {
    Relation l = EvalCoalesce(w.left);
    Relation r = EvalCoalesce(w.right);
    benchmark::DoNotOptimize(EvalDifferenceT(l, r));
  });
}

double WorkCoalesceAfter(const Workload& w) {
  return TimeUs([&w]() {
    benchmark::DoNotOptimize(EvalCoalesce(EvalDifferenceT(w.left, w.right)));
  });
}

}  // namespace

void ReproduceCoalescingSweep() {
  Banner("Extension B — coalescing placement around \\T (rule C10 / C2)");
  std::printf("%-9s | %-9s | %-12s | %-12s | %-14s | best\n", "adjacency",
              "|coalT(r)|/|r|", "drop right", "retain right",
              "coalesce after");
  std::printf("%s\n", std::string(80, '-').c_str());
  for (double adjacency : {0.0, 0.3, 0.6, 0.9}) {
    double a = 0, b = 0, c = 0, shrink = 0;
    for (uint64_t seed = 1; seed <= 3; ++seed) {
      Workload w = MakeWorkload(1500, adjacency, seed);
      shrink += static_cast<double>(EvalCoalesce(w.right).size()) /
                static_cast<double>(w.right.size());
      a += WorkDropRight(w);
      b += WorkRetainRight(w);
      c += WorkCoalesceAfter(w);
    }
    const char* best = a <= b && a <= c ? "drop-right"
                       : (b <= c ? "retain-right" : "coalesce-after");
    std::printf("%-9.1f | %-13.2f | %-10.0fus | %-10.0fus | %-12.0fus | %s\n",
                adjacency, shrink / 3.0, a / 3.0, b / 3.0, c / 3.0, best);
  }
  std::printf(
      "\nShape check: with few adjacent right tuples, dropping the right "
      "coalescing (C2) wins;\nas adjacency grows, coalescing shrinks the "
      "right input enough to pay for itself —\nthe paper's Section 4.3 "
      "remark (\"when coalescing significantly reduces the cardinality "
      "of its\nargument, it might be useful to retain it\"). In this "
      "implementation the greedy list-\npreserving coalT is itself "
      "quadratic per class, so the winning alternative placement\nis "
      "usually coalescing *after* the difference, whose output is small.\n");

  // Semantics guard: all three strategies agree as snapshot multisets.
  Workload w = MakeWorkload(400, 0.5, 9);
  Relation v1 = EvalDifferenceT(EvalCoalesce(w.left), w.right);
  Relation v2 =
      EvalDifferenceT(EvalCoalesce(w.left), EvalCoalesce(w.right));
  Relation v3 = EvalCoalesce(EvalDifferenceT(w.left, w.right));
  TQP_CHECK(SnapshotEquivalentAsMultisets(v1, v2));
  TQP_CHECK(SnapshotEquivalentAsMultisets(v1, v3));
  std::printf("All three strategies verified snapshot-multiset "
              "equivalent.\n");
}

namespace {

void BM_DropRightCoalescing(benchmark::State& state) {
  Workload w = MakeWorkload(static_cast<size_t>(state.range(0)),
                            static_cast<double>(state.range(1)) / 100.0, 5);
  for (auto _ : state) {
    Relation l = EvalCoalesce(w.left);
    benchmark::DoNotOptimize(EvalDifferenceT(l, w.right));
  }
  state.counters["adjacency_pct"] = static_cast<double>(state.range(1));
}
BENCHMARK(BM_DropRightCoalescing)->Args({2000, 10})->Args({2000, 70});

void BM_RetainRightCoalescing(benchmark::State& state) {
  Workload w = MakeWorkload(static_cast<size_t>(state.range(0)),
                            static_cast<double>(state.range(1)) / 100.0, 5);
  for (auto _ : state) {
    Relation l = EvalCoalesce(w.left);
    Relation r = EvalCoalesce(w.right);
    benchmark::DoNotOptimize(EvalDifferenceT(l, r));
  }
  state.counters["adjacency_pct"] = static_cast<double>(state.range(1));
}
BENCHMARK(BM_RetainRightCoalescing)->Args({2000, 10})->Args({2000, 70});

void BM_CoalesceAfterDifference(benchmark::State& state) {
  Workload w = MakeWorkload(static_cast<size_t>(state.range(0)),
                            static_cast<double>(state.range(1)) / 100.0, 5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        EvalCoalesce(EvalDifferenceT(w.left, w.right)));
  }
  state.counters["adjacency_pct"] = static_cast<double>(state.range(1));
}
BENCHMARK(BM_CoalesceAfterDifference)->Args({2000, 10})->Args({2000, 70});

}  // namespace
}  // namespace tqp

int main(int argc, char** argv) {
  tqp::bench::TimedSection("coalescing_sweep", [] { tqp::ReproduceCoalescingSweep(); });
  tqp::bench::WriteBenchJson("ext_coalescing");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
