// Extension A: stratum vs DBMS placement crossover.
//
// Section 2.1 motivates the layered architecture with two cost asymmetries:
// the DBMS sorts faster than the stratum, but pays dearly for temporal
// operations (complex self-join SQL). This bench sweeps the two knobs and
// reports, for each configuration, where the cost-based optimizer places the
// temporal operations and the sort — and the crossover transfer cost beyond
// which shipping data to the stratum stops paying off.
#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "opt/optimizer.h"
#include "tql/translator.h"

namespace tqp {

using bench::Banner;

namespace {

struct Placement {
  size_t temporal_at_stratum = 0;
  size_t temporal_at_dbms = 0;
  bool sort_at_dbms = false;
  double cost = 0.0;
  double work = 0.0;
};

Placement PlaceQuery(const Catalog& catalog, const TranslatedQuery& q,
                     const EngineConfig& engine) {
  OptimizerOptions options;
  options.engine = engine;
  options.enumeration.max_plans = 2500;
  Result<OptimizeResult> opt =
      Optimize(q.plan, catalog, q.contract, DefaultRuleSet(), options);
  TQP_CHECK(opt.ok());
  Result<AnnotatedPlan> ann =
      AnnotatedPlan::Make(opt->best_plan, &catalog, q.contract);
  TQP_CHECK(ann.ok());

  Placement out;
  out.cost = opt->best_cost;
  std::vector<PlanPtr> nodes;
  CollectNodes(opt->best_plan, &nodes);
  for (const PlanPtr& n : nodes) {
    if (IsTemporalOp(n->kind())) {
      if (ann->info(n.get()).site == Site::kStratum) {
        ++out.temporal_at_stratum;
      } else {
        ++out.temporal_at_dbms;
      }
    }
    if (n->kind() == OpKind::kSort &&
        ann->info(n.get()).site == Site::kDbms) {
      out.sort_at_dbms = true;
    }
  }
  ExecStats stats;
  TQP_CHECK(Evaluate(ann.value(), engine, &stats).ok());
  out.work = stats.total_work();
  return out;
}

}  // namespace

void ReproducePlacementSweep() {
  Banner("Extension A — stratum vs DBMS placement (cost-knob sweep)");
  Catalog catalog = bench::ScaledCatalog(40);
  Result<TranslatedQuery> q = CompileQuery(PaperQueryText(), catalog);
  TQP_CHECK(q.ok());

  std::printf("%-14s %-14s | %12s | %10s | %10s | %10s\n", "transfer/tuple",
              "temporal-pen.", "temporalOps@", "sort@DBMS", "est.cost",
              "sim.work");
  std::printf("%s\n", std::string(86, '-').c_str());
  for (double transfer : {0.5, 2.0, 10.0, 50.0, 250.0}) {
    for (double penalty : {2.0, 25.0, 250.0}) {
      EngineConfig engine;
      engine.transfer_cost_per_tuple = transfer;
      engine.dbms_temporal_penalty = penalty;
      Placement p = PlaceQuery(catalog, q.value(), engine);
      char where[32];
      std::snprintf(where, sizeof(where), "%zuS/%zuD", p.temporal_at_stratum,
                    p.temporal_at_dbms);
      std::printf("%-14.1f %-14.0f | %12s | %10s | %10.0f | %10.0f\n",
                  transfer, penalty, where, p.sort_at_dbms ? "yes" : "no",
                  p.cost, p.work);
    }
  }
  std::printf(
      "\nShape check: cheap transfers + slow DBMS temporal SQL push temporal "
      "ops to the stratum;\nexpensive transfers + tolerable penalties keep "
      "the plan in the DBMS. The sort stays at the\nDBMS whenever a transfer "
      "sits above it (the paper's sort-pushdown story).\n");
}

namespace {

void BM_OptimizeUnderConfig(benchmark::State& state) {
  Catalog catalog = bench::ScaledCatalog(20);
  Result<TranslatedQuery> q = CompileQuery(PaperQueryText(), catalog);
  TQP_CHECK(q.ok());
  EngineConfig engine;
  engine.transfer_cost_per_tuple = static_cast<double>(state.range(0));
  OptimizerOptions options;
  options.engine = engine;
  options.enumeration.max_plans = 1000;
  for (auto _ : state) {
    Result<OptimizeResult> opt =
        Optimize(q->plan, catalog, q->contract, DefaultRuleSet(), options);
    TQP_CHECK(opt.ok());
    benchmark::DoNotOptimize(opt);
  }
  state.counters["transfer_cost"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_OptimizeUnderConfig)->Arg(1)->Arg(50)->Arg(250);

}  // namespace
}  // namespace tqp

int main(int argc, char** argv) {
  tqp::bench::TimedSection("placement_sweep", [] { tqp::ReproducePlacementSweep(); });
  tqp::bench::WriteBenchJson("ext_stratum_placement");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
