// Figure 1 reproduction: the EMPLOYEE/PROJECT relations and the example
// query's result, plus end-to-end latency of the full stack (TQL compile →
// optimize → execute) across data scale.
#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "core/equivalence.h"
#include "opt/optimizer.h"
#include "tql/translator.h"

namespace tqp {

using bench::Banner;

void ReproduceFigure1() {
  Banner("Figure 1 — Example relations and the example query's result");
  std::printf("%s\n", PaperEmployee().ToTable("EMPLOYEE").c_str());
  std::printf("%s\n", PaperProject().ToTable("PROJECT").c_str());

  Catalog catalog = PaperCatalog();
  Result<TranslatedQuery> q = CompileQuery(PaperQueryText(), catalog);
  TQP_CHECK(q.ok());
  Result<AnnotatedPlan> ann =
      AnnotatedPlan::Make(q->plan, &catalog, q->contract);
  TQP_CHECK(ann.ok());
  Result<Relation> out = Evaluate(ann.value(), EngineConfig{});
  TQP_CHECK(out.ok());
  std::printf("%s\n", out->ToTable("Result").c_str());
  std::printf("Matches the paper's table exactly: %s\n",
              EquivalentAsLists(out.value(), PaperExpectedResult()) ? "yes"
                                                                    : "NO");
}

namespace {

void BM_FullStack(benchmark::State& state) {
  Catalog catalog = bench::ScaledCatalog(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    Result<TranslatedQuery> q = CompileQuery(PaperQueryText(), catalog);
    TQP_CHECK(q.ok());
    OptimizerOptions options;
    options.enumeration.max_plans = 600;
    Result<OptimizeResult> opt =
        Optimize(q->plan, catalog, q->contract, DefaultRuleSet(), options);
    TQP_CHECK(opt.ok());
    Result<AnnotatedPlan> ann =
        AnnotatedPlan::Make(opt->best_plan, &catalog, q->contract);
    TQP_CHECK(ann.ok());
    Result<Relation> out = Evaluate(ann.value(), EngineConfig{});
    TQP_CHECK(out.ok());
    benchmark::DoNotOptimize(out);
  }
  state.counters["employees"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_FullStack)->Arg(10)->Arg(50)->Arg(200);

void BM_ExecuteOnly(benchmark::State& state) {
  Catalog catalog = bench::ScaledCatalog(static_cast<size_t>(state.range(0)));
  Result<TranslatedQuery> q = CompileQuery(PaperQueryText(), catalog);
  TQP_CHECK(q.ok());
  OptimizerOptions options;
  options.enumeration.max_plans = 600;
  Result<OptimizeResult> opt =
      Optimize(q->plan, catalog, q->contract, DefaultRuleSet(), options);
  TQP_CHECK(opt.ok());
  Result<AnnotatedPlan> ann =
      AnnotatedPlan::Make(opt->best_plan, &catalog, q->contract);
  TQP_CHECK(ann.ok());
  for (auto _ : state) {
    Result<Relation> out = Evaluate(ann.value(), EngineConfig{});
    TQP_CHECK(out.ok());
    benchmark::DoNotOptimize(out);
  }
  state.counters["employees"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_ExecuteOnly)->Arg(10)->Arg(50)->Arg(200)->Arg(800);

}  // namespace
}  // namespace tqp

int main(int argc, char** argv) {
  tqp::bench::TimedSection("reproduce_figure1", [] { tqp::ReproduceFigure1(); });
  tqp::bench::WriteBenchJson("fig1_example");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
