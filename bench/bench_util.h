// Shared catalog/workload/search setup for the bench mains.
//
// The engine- and search-facing benches all serve the same workloads: the
// paper's running example, a mixed catalog with two messy temporal
// relations, the TQL query suite over it, and the Figure 5 search on a
// predicate-chain query whose plan space actually reaches the bench plan
// caps. Each bench previously wired its own copy; this header is the one
// copy (bench_common.h keeps the lower-level primitives: printing, scaled
// relations, the messy-relation generator).
#ifndef TQP_BENCH_BENCH_UTIL_H_
#define TQP_BENCH_BENCH_UTIL_H_

#include <string>
#include <vector>

#include "bench_common.h"
#include "opt/enumerate.h"
#include "opt/optimizer.h"
#include "tql/translator.h"
#include "workload/paper_example.h"

namespace tqp {
namespace bench {

/// EMPLOYEE/PROJECT at the paper's size plus two messy temporal relations R
/// and S — the catalog the engine-facing benches serve queries against.
inline Catalog MixedWorkloadCatalog() {
  Catalog catalog = ScaledCatalog(4);
  TQP_CHECK(catalog
                .RegisterWithInferredFlags(
                    "R", MessyTemporal(64, 0.2, 0.2, 0.2, 5), Site::kDbms)
                .ok());
  TQP_CHECK(catalog
                .RegisterWithInferredFlags(
                    "S", MessyTemporal(48, 0.1, 0.3, 0.1, 17), Site::kDbms)
                .ok());
  return catalog;
}

/// The TQL suite the engine benches sweep: the paper's example plus
/// conventional/temporal queries over R and S.
inline std::vector<std::string> MixedWorkloadQueries() {
  return {
      PaperQueryText(),
      "VALIDTIME SELECT DISTINCT Name FROM R ORDER BY Name ASC",
      "VALIDTIME COALESCED SELECT DISTINCT Name FROM R",
      "SELECT Name FROM R UNION SELECT Name FROM S",
      "SELECT Cat, COUNT(*) AS n FROM R GROUP BY Cat ORDER BY Cat",
  };
}

/// Baseline Figure 5 search options at a plan cap — the configuration the
/// search benches ablate from.
inline EnumerationOptions SearchOptions(
    size_t max_plans,
    SearchStrategy strategy = SearchStrategy::kBreadthFirst) {
  EnumerationOptions opts;
  opts.max_plans = max_plans;
  opts.strategy = strategy;
  return opts;
}

/// Runs the Figure 5 search over the paper's running example.
inline Result<EnumerationResult> RunPaperSearch(
    const Catalog& catalog, const std::vector<Rule>& rules,
    const EnumerationOptions& options) {
  return EnumeratePlans(PaperInitialPlan(), catalog, PaperContract(), rules,
                        options);
}

/// Optimizes the paper's initial plan under the default rules at a plan
/// cap — the repeated "reach Figure 2(b)" setup of the plan benches.
inline Result<OptimizeResult> OptimizePaperExample(const Catalog& catalog,
                                                   size_t max_plans) {
  OptimizerOptions options;
  options.enumeration = SearchOptions(max_plans);
  return Optimize(PaperInitialPlan(), catalog, PaperContract(),
                  DefaultRuleSet(), options);
}

/// A temporal join with a chain of `predicates` extra selections — the
/// plan-space scaling workload (the paper example's closure is only ~174
/// plans; this one exceeds the 4000-plan cap from 4 predicates up).
inline TranslatedQuery ChainQuery(const Catalog& catalog, int predicates) {
  std::string query =
      "VALIDTIME SELECT Dept, Prj FROM EMPLOYEE, PROJECT WHERE "
      "Dept = 'dept1'";
  for (int i = 1; i < predicates; ++i) {
    query += " AND Prj <> 'prj" + std::to_string(i) + "'";
  }
  Result<TranslatedQuery> q = CompileQuery(query, catalog);
  TQP_CHECK(q.ok());
  return q.value();
}

}  // namespace bench
}  // namespace tqp

#endif  // TQP_BENCH_BENCH_UTIL_H_
