// Shared setup for the bench mains: printing primitives, scaled/messy
// workload relations, catalogs, the TQL query suite, the Figure 5 search
// helpers, and the machine-readable BENCH_<name>.json metric sink. This is
// the single bench header — every bench main includes it and nothing else
// from bench/.
#ifndef TQP_BENCH_BENCH_UTIL_H_
#define TQP_BENCH_BENCH_UTIL_H_

#include <sys/resource.h>

#include <chrono>
#include <cstdarg>
#include <cstdio>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "core/catalog.h"
#include "core/json.h"
#include "exec/evaluator.h"
#include "opt/enumerate.h"
#include "opt/optimizer.h"
#include "tql/translator.h"
#include "workload/generator.h"
#include "workload/paper_example.h"

namespace tqp {
namespace bench {

// ---- Printing --------------------------------------------------------------

inline void Banner(const std::string& title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("================================================================\n");
}

inline void Row(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  std::vprintf(fmt, args);
  va_end(args);
  std::printf("\n");
}

// ---- Build flavor -----------------------------------------------------------
//
// Perf gates arm only in optimized, unsanitized builds; identity gates always
// run. (Sanitized CI jobs still execute every bench end to end.)

constexpr bool BuiltWithSanitizers() {
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
  return true;
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
  return true;
#else
  return false;
#endif
#else
  return false;
#endif
}

constexpr bool OptimizedBuild() {
#ifdef NDEBUG
  return true;
#else
  return false;
#endif
}

/// The compiler that built this bench binary, from its predefined macros.
inline const char* CompilerVersionString() {
#if defined(__clang__)
  return "clang " __clang_version__;
#elif defined(__GNUC__)
  return "gcc " __VERSION__;
#else
  return "unknown";
#endif
}

// ---- Workload relations ----------------------------------------------------

/// A catalog with the paper's relations scaled by `scale` employees.
inline Catalog ScaledCatalog(size_t scale, Site site = Site::kDbms) {
  Catalog catalog;
  TQP_CHECK(catalog
                .RegisterWithInferredFlags("EMPLOYEE", ScaledEmployee(scale),
                                           site)
                .ok());
  TQP_CHECK(catalog
                .RegisterWithInferredFlags("PROJECT", ScaledProject(scale),
                                           site)
                .ok());
  return catalog;
}

/// A messy temporal relation sized n with the given phenomena fractions.
inline Relation MessyTemporal(size_t n, double dup, double adj, double over,
                              uint64_t seed = 99) {
  RelationGenParams p;
  p.cardinality = n;
  p.num_names = std::max<size_t>(4, n / 16);
  p.duplicate_fraction = dup;
  p.adjacency_fraction = adj;
  p.overlap_fraction = over;
  p.time_horizon = static_cast<TimePoint>(8 * n);
  p.max_period_length = 40;
  p.seed = seed;
  return GenerateRelation(p);
}

// ---- Machine-readable bench output ----------------------------------------
//
// Every bench main records its headline numbers with SetMetric and writes
// them as BENCH_<name>.json (metric name → value, one flat JSON object)
// before exiting. CI uploads the files as artifacts, so the perf trajectory
// accumulates run over run instead of living only in scrollback.

/// The metric registry of this bench process.
inline std::map<std::string, double>& BenchMetrics() {
  static std::map<std::string, double> metrics;
  return metrics;
}

/// Pre-rendered JSON metrics (nested objects: ExecStats::ToJson,
/// EngineStats::ToJson, LatencyHistogram::ToJson, LoadGenReport::ToJson).
/// Kept separately so the flat numeric metrics stay grep-able.
inline std::map<std::string, std::string>& BenchJsonMetrics() {
  static std::map<std::string, std::string> metrics;
  return metrics;
}

/// Records one metric (last write wins).
inline void SetMetric(const std::string& name, double value) {
  BenchMetrics()[name] = value;
}

/// Records a pre-rendered JSON value (a *ToJson() string) under `name`. The
/// bench file embeds it verbatim — the same bytes the service layer streams,
/// so the two renderings cannot drift.
inline void SetJsonMetric(const std::string& name, const std::string& json) {
  BenchJsonMetrics()[name] = json;
}

/// Runs a bench section and records its wall time as "<metric>_seconds".
/// The coarse metric every bench main gets for free; flagship benches add
/// domain metrics (plans/s, speedups, rows/s) on top.
template <typename Fn>
inline void TimedSection(const std::string& metric, Fn&& fn) {
  auto t0 = std::chrono::steady_clock::now();
  fn();
  std::chrono::duration<double> dt = std::chrono::steady_clock::now() - t0;
  SetMetric(metric + "_seconds", dt.count());
}

/// Writes BENCH_<bench_name>.json into the working directory. Every file
/// automatically carries the process peak RSS and the machine's hardware
/// thread count, so perf numbers stay interpretable across runners.
inline void WriteBenchJson(const std::string& bench_name) {
  rusage ru{};
  if (getrusage(RUSAGE_SELF, &ru) == 0) {
    // ru_maxrss is KiB on Linux.
    SetMetric("peak_rss_bytes", static_cast<double>(ru.ru_maxrss) * 1024.0);
  }
  SetMetric("hardware_threads",
            static_cast<double>(std::thread::hardware_concurrency()));
  const std::string path = "BENCH_" + bench_name + ".json";
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  // Rendered through the same core/json.h writer the service frames use.
  JsonWriter w;
  w.BeginObject();
  // Build provenance, so a BENCH_*.json artifact identifies the exact
  // revision, build flavor, and compiler behind its numbers. The SHA and
  // build type are stamped by CMake (unknown outside a git checkout).
  w.Key("git_sha").String(
#ifdef TQP_GIT_SHA
      TQP_GIT_SHA
#else
      "unknown"
#endif
  );
  w.Key("build_type").String(
#ifdef TQP_BUILD_TYPE
      TQP_BUILD_TYPE
#else
      "unknown"
#endif
  );
  w.Key("compiler").String(CompilerVersionString());
  w.Key("sanitized").Bool(BuiltWithSanitizers());
  for (const auto& [name, value] : BenchMetrics()) {
    w.Key(name).Double(value);
  }
  for (const auto& [name, json] : BenchJsonMetrics()) {
    w.Key(name).Raw(json);
  }
  w.EndObject();
  std::fprintf(f, "%s\n", w.str().c_str());
  std::fclose(f);
  std::printf("\n[%s: %zu metrics]\n", path.c_str(),
              BenchMetrics().size() + BenchJsonMetrics().size());
}

/// EMPLOYEE/PROJECT at the paper's size plus two messy temporal relations R
/// and S — the catalog the engine-facing benches serve queries against.
inline Catalog MixedWorkloadCatalog() {
  Catalog catalog = ScaledCatalog(4);
  TQP_CHECK(catalog
                .RegisterWithInferredFlags(
                    "R", MessyTemporal(64, 0.2, 0.2, 0.2, 5), Site::kDbms)
                .ok());
  TQP_CHECK(catalog
                .RegisterWithInferredFlags(
                    "S", MessyTemporal(48, 0.1, 0.3, 0.1, 17), Site::kDbms)
                .ok());
  return catalog;
}

/// The TQL suite the engine benches sweep: the paper's example plus
/// conventional/temporal queries over R and S.
inline std::vector<std::string> MixedWorkloadQueries() {
  return {
      PaperQueryText(),
      "VALIDTIME SELECT DISTINCT Name FROM R ORDER BY Name ASC",
      "VALIDTIME COALESCED SELECT DISTINCT Name FROM R",
      "SELECT Name FROM R UNION SELECT Name FROM S",
      "SELECT Cat, COUNT(*) AS n FROM R GROUP BY Cat ORDER BY Cat",
  };
}

/// Baseline Figure 5 search options at a plan cap — the configuration the
/// search benches ablate from.
inline EnumerationOptions SearchOptions(
    size_t max_plans,
    SearchStrategy strategy = SearchStrategy::kBreadthFirst) {
  EnumerationOptions opts;
  opts.max_plans = max_plans;
  opts.strategy = strategy;
  return opts;
}

/// Runs the Figure 5 search over the paper's running example.
inline Result<EnumerationResult> RunPaperSearch(
    const Catalog& catalog, const std::vector<Rule>& rules,
    const EnumerationOptions& options) {
  return EnumeratePlans(PaperInitialPlan(), catalog, PaperContract(), rules,
                        options);
}

/// Optimizes the paper's initial plan under the default rules at a plan
/// cap — the repeated "reach Figure 2(b)" setup of the plan benches.
inline Result<OptimizeResult> OptimizePaperExample(const Catalog& catalog,
                                                   size_t max_plans) {
  OptimizerOptions options;
  options.enumeration = SearchOptions(max_plans);
  return Optimize(PaperInitialPlan(), catalog, PaperContract(),
                  DefaultRuleSet(), options);
}

/// A temporal join with a chain of `predicates` extra selections — the
/// plan-space scaling workload (the paper example's closure is only ~174
/// plans; this one exceeds the 4000-plan cap from 4 predicates up).
inline TranslatedQuery ChainQuery(const Catalog& catalog, int predicates) {
  std::string query =
      "VALIDTIME SELECT Dept, Prj FROM EMPLOYEE, PROJECT WHERE "
      "Dept = 'dept1'";
  for (int i = 1; i < predicates; ++i) {
    query += " AND Prj <> 'prj" + std::to_string(i) + "'";
  }
  Result<TranslatedQuery> q = CompileQuery(query, catalog);
  TQP_CHECK(q.ok());
  return q.value();
}

}  // namespace bench
}  // namespace tqp

#endif  // TQP_BENCH_BENCH_UTIL_H_
