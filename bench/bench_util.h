// Shared catalog/workload/search setup for the bench mains.
//
// The engine- and search-facing benches all serve the same workloads: the
// paper's running example, a mixed catalog with two messy temporal
// relations, the TQL query suite over it, and the Figure 5 search on a
// predicate-chain query whose plan space actually reaches the bench plan
// caps. Each bench previously wired its own copy; this header is the one
// copy (bench_common.h keeps the lower-level primitives: printing, scaled
// relations, the messy-relation generator).
#ifndef TQP_BENCH_BENCH_UTIL_H_
#define TQP_BENCH_BENCH_UTIL_H_

#include <chrono>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "bench_common.h"
#include "opt/enumerate.h"
#include "opt/optimizer.h"
#include "tql/translator.h"
#include "workload/paper_example.h"

namespace tqp {
namespace bench {

// ---- Machine-readable bench output ----------------------------------------
//
// Every bench main records its headline numbers with SetMetric and writes
// them as BENCH_<name>.json (metric name → value, one flat JSON object)
// before exiting. CI uploads the files as artifacts, so the perf trajectory
// accumulates run over run instead of living only in scrollback.

/// The metric registry of this bench process.
inline std::map<std::string, double>& BenchMetrics() {
  static std::map<std::string, double> metrics;
  return metrics;
}

/// Records one metric (last write wins).
inline void SetMetric(const std::string& name, double value) {
  BenchMetrics()[name] = value;
}

/// Runs a bench section and records its wall time as "<metric>_seconds".
/// The coarse metric every bench main gets for free; flagship benches add
/// domain metrics (plans/s, speedups, rows/s) on top.
template <typename Fn>
inline void TimedSection(const std::string& metric, Fn&& fn) {
  auto t0 = std::chrono::steady_clock::now();
  fn();
  std::chrono::duration<double> dt = std::chrono::steady_clock::now() - t0;
  SetMetric(metric + "_seconds", dt.count());
}

/// Writes BENCH_<bench_name>.json into the working directory.
inline void WriteBenchJson(const std::string& bench_name) {
  const std::string path = "BENCH_" + bench_name + ".json";
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(f, "{");
  bool first = true;
  for (const auto& [name, value] : BenchMetrics()) {
    std::fprintf(f, "%s\n  \"%s\": %.17g", first ? "" : ",", name.c_str(),
                 value);
    first = false;
  }
  std::fprintf(f, "\n}\n");
  std::fclose(f);
  std::printf("\n[%s: %zu metrics]\n", path.c_str(), BenchMetrics().size());
}

/// EMPLOYEE/PROJECT at the paper's size plus two messy temporal relations R
/// and S — the catalog the engine-facing benches serve queries against.
inline Catalog MixedWorkloadCatalog() {
  Catalog catalog = ScaledCatalog(4);
  TQP_CHECK(catalog
                .RegisterWithInferredFlags(
                    "R", MessyTemporal(64, 0.2, 0.2, 0.2, 5), Site::kDbms)
                .ok());
  TQP_CHECK(catalog
                .RegisterWithInferredFlags(
                    "S", MessyTemporal(48, 0.1, 0.3, 0.1, 17), Site::kDbms)
                .ok());
  return catalog;
}

/// The TQL suite the engine benches sweep: the paper's example plus
/// conventional/temporal queries over R and S.
inline std::vector<std::string> MixedWorkloadQueries() {
  return {
      PaperQueryText(),
      "VALIDTIME SELECT DISTINCT Name FROM R ORDER BY Name ASC",
      "VALIDTIME COALESCED SELECT DISTINCT Name FROM R",
      "SELECT Name FROM R UNION SELECT Name FROM S",
      "SELECT Cat, COUNT(*) AS n FROM R GROUP BY Cat ORDER BY Cat",
  };
}

/// Baseline Figure 5 search options at a plan cap — the configuration the
/// search benches ablate from.
inline EnumerationOptions SearchOptions(
    size_t max_plans,
    SearchStrategy strategy = SearchStrategy::kBreadthFirst) {
  EnumerationOptions opts;
  opts.max_plans = max_plans;
  opts.strategy = strategy;
  return opts;
}

/// Runs the Figure 5 search over the paper's running example.
inline Result<EnumerationResult> RunPaperSearch(
    const Catalog& catalog, const std::vector<Rule>& rules,
    const EnumerationOptions& options) {
  return EnumeratePlans(PaperInitialPlan(), catalog, PaperContract(), rules,
                        options);
}

/// Optimizes the paper's initial plan under the default rules at a plan
/// cap — the repeated "reach Figure 2(b)" setup of the plan benches.
inline Result<OptimizeResult> OptimizePaperExample(const Catalog& catalog,
                                                   size_t max_plans) {
  OptimizerOptions options;
  options.enumeration = SearchOptions(max_plans);
  return Optimize(PaperInitialPlan(), catalog, PaperContract(),
                  DefaultRuleSet(), options);
}

/// A temporal join with a chain of `predicates` extra selections — the
/// plan-space scaling workload (the paper example's closure is only ~174
/// plans; this one exceeds the 4000-plan cap from 4 predicates up).
inline TranslatedQuery ChainQuery(const Catalog& catalog, int predicates) {
  std::string query =
      "VALIDTIME SELECT Dept, Prj FROM EMPLOYEE, PROJECT WHERE "
      "Dept = 'dept1'";
  for (int i = 1; i < predicates; ++i) {
    query += " AND Prj <> 'prj" + std::to_string(i) + "'";
  }
  Result<TranslatedQuery> q = CompileQuery(query, catalog);
  TQP_CHECK(q.ok());
  return q.value();
}

}  // namespace bench
}  // namespace tqp

#endif  // TQP_BENCH_BENCH_UTIL_H_
