// Repeated-query throughput through the tqp::Engine facade: cold (a fresh
// engine per query — full parse + Figure 5 enumeration + costing every time)
// vs warm (one session engine — primed interner/derivation caches, plan-cache
// hits). Reports queries/second and the session cache counters, and checks
// the acceptance bar: warm repeated-query throughput >= 5x cold on the
// paper's running example, with byte-identical results.
#include <benchmark/benchmark.h>

#include <chrono>
#include <string>
#include <vector>

#include "api/engine.h"
#include "bench_util.h"

namespace tqp {

using bench::Banner;

namespace {

double Seconds(std::chrono::steady_clock::time_point t0) {
  std::chrono::duration<double> dt = std::chrono::steady_clock::now() - t0;
  return dt.count();
}

}  // namespace

// The headline comparison: the same query served repeatedly, cold vs warm.
void CompareWarmAgainstCold() {
  Banner("Engine warm-path throughput — repeated paper query, cold vs warm");
  const std::string query = PaperQueryText();
  const int iters = 30;
  // Built once and copied per engine, so neither side's timing includes
  // relation construction/verification — only query serving.
  const Catalog base = PaperCatalog();

  // Cold: a fresh Engine (empty caches) per query.
  Result<QueryResult> cold_result = Engine(base).Query(query);
  TQP_CHECK(cold_result.ok());
  auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < iters; ++i) {
    Engine engine(base);
    Result<QueryResult> r = engine.Query(query);
    TQP_CHECK(r.ok());
  }
  double cold_s = Seconds(t0) / iters;

  // Warm: one session Engine; every run after the first is a plan-cache hit.
  Engine engine(base);
  Result<QueryResult> warm_result = engine.Query(query);
  TQP_CHECK(warm_result.ok() && !warm_result->plan_cache_hit);
  t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < iters; ++i) {
    warm_result = engine.Query(query);
    TQP_CHECK(warm_result.ok());
  }
  double warm_s = Seconds(t0) / iters;
  TQP_CHECK(warm_result->plan_cache_hit);

  // Warmth must never change the answer: byte-identical relation, same
  // chosen plan, same costs.
  TQP_CHECK(warm_result->relation.ToTable() == cold_result->relation.ToTable());
  TQP_CHECK(warm_result->plan_fingerprint == cold_result->plan_fingerprint);
  TQP_CHECK(warm_result->best_cost == cold_result->best_cost);

  // The deterministic form of the same property: one optimize pipeline
  // served every warm run, all from the plan cache.
  EngineStats stats = engine.stats();
  TQP_CHECK(stats.prepares == 1);
  TQP_CHECK(stats.plan_cache_hits == static_cast<uint64_t>(iters));

  std::printf("%-34s | %12s | %12s\n", "", "cold", "warm");
  std::printf("%s\n", std::string(64, '-').c_str());
  std::printf("%-34s | %12.3f | %12.3f\n", "ms / query", cold_s * 1e3,
              warm_s * 1e3);
  std::printf("%-34s | %12.0f | %12.0f\n", "queries / second", 1.0 / cold_s,
              1.0 / warm_s);
  std::printf("%-34s | %12s | %12llu\n", "plan cache hits", "-",
              static_cast<unsigned long long>(stats.plan_cache_hits));
  std::printf("%-34s | %12s | %12llu\n", "optimize pipelines run", "-",
              static_cast<unsigned long long>(stats.prepares));
  std::printf("%-34s | %12s | %12zu\n", "interner: distinct nodes", "-",
              stats.interner_nodes);
  std::printf("%-34s | %12s | %12zu\n", "derivation cache entries", "-",
              stats.derivation_nodes);
  double speedup = cold_s / warm_s;
  bench::SetMetric("cold_ms_per_query", cold_s * 1e3);
  bench::SetMetric("warm_ms_per_query", warm_s * 1e3);
  bench::SetMetric("warm_speedup", speedup);
  std::printf("\nresults byte-identical; warm speedup: %.1fx queries/second\n",
              speedup);
  TQP_CHECK(speedup >= 5.0);
}

// Secondary: a mixed suite of distinct queries on one session — here the
// plan cache cannot help on first contact, but the shared interner and
// derivation cache amortize overlapping subtrees across queries.
void CompareSessionAgainstIsolated() {
  Banner("Engine session reuse — 5 distinct queries, shared vs fresh caches");
  std::vector<std::string> queries = bench::MixedWorkloadQueries();
  const int rounds = 10;

  auto run = [&](bool shared) {
    auto t0 = std::chrono::steady_clock::now();
    EngineStats last;
    for (int r = 0; r < rounds; ++r) {
      Engine engine(bench::MixedWorkloadCatalog());
      for (const std::string& q : queries) {
        if (shared) {
          TQP_CHECK(engine.Query(q).ok());
        } else {
          Engine isolated(bench::MixedWorkloadCatalog());
          TQP_CHECK(isolated.Query(q).ok());
        }
      }
      last = engine.stats();
    }
    double per_query =
        Seconds(t0) / (rounds * static_cast<double>(queries.size()));
    return std::make_pair(per_query, last);
  };

  auto [isolated_s, isolated_stats] = run(false);
  auto [shared_s, shared_stats] = run(true);
  (void)isolated_stats;

  std::printf("%-34s | %12.3f ms/query\n", "fresh engine per query",
              isolated_s * 1e3);
  std::printf("%-34s | %12.3f ms/query\n", "one session engine",
              shared_s * 1e3);
  std::printf("%-34s | %12zu\n", "session derivation cache entries",
              shared_stats.derivation_nodes);
  std::printf("%-34s | %12zu\n", "session interner nodes",
              shared_stats.interner_nodes);
  std::printf("\nsession speedup on distinct queries: %.2fx\n",
              isolated_s / shared_s);
}

namespace {

void BM_ColdQuery(benchmark::State& state) {
  const std::string query = PaperQueryText();
  for (auto _ : state) {
    Engine engine(PaperCatalog());
    Result<QueryResult> r = engine.Query(query);
    TQP_CHECK(r.ok());
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_ColdQuery);

void BM_WarmQuery(benchmark::State& state) {
  const std::string query = PaperQueryText();
  Engine engine(PaperCatalog());
  TQP_CHECK(engine.Query(query).ok());  // prime
  for (auto _ : state) {
    Result<QueryResult> r = engine.Query(query);
    TQP_CHECK(r.ok());
    benchmark::DoNotOptimize(r);
  }
  state.counters["cache_hits"] =
      static_cast<double>(engine.stats().plan_cache_hits);
}
BENCHMARK(BM_WarmQuery);

void BM_PreparedExecute(benchmark::State& state) {
  // The prepared-statement path: no cache probe, no parsing — just
  // annotation reuse + evaluation.
  Engine engine(PaperCatalog());
  Result<PreparedQuery> prepared = engine.Prepare(PaperQueryText());
  TQP_CHECK(prepared.ok());
  for (auto _ : state) {
    Result<QueryResult> r = prepared.value().Execute();
    TQP_CHECK(r.ok());
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_PreparedExecute);

}  // namespace
}  // namespace tqp

int main(int argc, char** argv) {
  tqp::bench::TimedSection("warm_vs_cold", [] { tqp::CompareWarmAgainstCold(); });
  tqp::bench::TimedSection("session_vs_isolated", [] { tqp::CompareSessionAgainstIsolated(); });
  tqp::bench::WriteBenchJson("engine_warm");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
