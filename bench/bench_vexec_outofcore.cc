// The out-of-core gate: a sort + coalescing pipeline completing under a
// memory budget a quarter of its materialized input size.
//
// Gates (TQP_CHECKed, CI-enforced):
//
//   * the budgeted run actually spills (nonzero ExecStats::spill_bytes /
//     spill_runs) and the unbounded run never does;
//   * list identity: the spilled result is tuple-for-tuple identical to the
//     reference evaluator's and to the unbounded vectorized run's —
//     external merge sort and grace-partitioned coalescing reproduce the
//     in-memory list exactly.
//
// The gates run in every build flavor (there is no timing gate here; going
// out of core is a correctness property, not a speed one). Headline numbers
// land in BENCH_vexec_outofcore.json for the CI perf-trajectory artifacts.
#include <chrono>
#include <cstdio>
#include <string>
#include <utility>

#include "bench_util.h"
#include "core/column_batch.h"
#include "vexec/vexec.h"

namespace tqp {

using bench::Banner;
using bench::Row;

namespace {

double Seconds(std::chrono::steady_clock::time_point t0) {
  std::chrono::duration<double> dt = std::chrono::steady_clock::now() - t0;
  return dt.count();
}

/// A messy temporal relation big enough that its columnar materialization
/// dwarfs the bench budget: heavy adjacency so coalT has real work, wide
/// value domain so sort keys do not degenerate.
Catalog OutOfCoreCatalog(size_t base_cardinality, uint64_t seed) {
  RelationGenParams r;
  r.cardinality = base_cardinality;
  r.num_names = std::max<size_t>(8, base_cardinality / 16);
  r.num_categories = 16;
  r.num_values = 100000;
  r.time_horizon = static_cast<TimePoint>(8 * base_cardinality);
  r.max_period_length = 50;
  r.duplicate_fraction = 0.10;
  r.adjacency_fraction = 0.40;
  r.overlap_fraction = 0.10;
  r.seed = seed;
  Catalog catalog;
  TQP_CHECK(catalog
                .RegisterWithInferredFlags("R", GenerateRelation(r),
                                           Site::kDbms)
                .ok());
  return catalog;
}

/// sort_{Name, Val desc}(coalT(R)) — both blocking operators spill: the
/// sort to merge runs, the coalescing to grace partitions.
PlanPtr OutOfCorePlan() {
  return PlanNode::Sort(PlanNode::Coalesce(PlanNode::Scan("R")),
                        {{"Name", true}, {"Val", false}});
}

struct RunOutcome {
  Relation relation;
  ExecStats stats;
  double seconds = 0.0;
};

RunOutcome RunVectorized(const AnnotatedPlan& ann, const EngineConfig& config,
                         uint64_t budget) {
  VexecOptions opts;
  opts.memory_budget = budget;
  RunOutcome out;
  auto t0 = std::chrono::steady_clock::now();
  Result<Relation> r = ExecuteVectorized(ann, config, &out.stats, opts);
  out.seconds = Seconds(t0);
  TQP_CHECK(r.ok());
  out.relation = std::move(r).value();
  return out;
}

void CheckIdentical(const RunOutcome& a, const RunOutcome& b) {
  TQP_CHECK(a.relation.schema() == b.relation.schema());
  TQP_CHECK(a.relation.size() == b.relation.size());
  for (size_t i = 0; i < a.relation.size(); ++i) {
    TQP_CHECK(a.relation.tuple(i) == b.relation.tuple(i));
  }
  TQP_CHECK(SortSpecToString(a.relation.order()) ==
            SortSpecToString(b.relation.order()));
  TQP_CHECK(a.stats.tuples_produced == b.stats.tuples_produced);
  TQP_CHECK(a.stats.op_counts == b.stats.op_counts);
}

}  // namespace

void GateOutOfCore() {
  Banner("vexec out-of-core — sort(coalT(R)) under a quarter-size budget");
  constexpr size_t kBaseCardinality = 260000;  // ~400k rows after phenomena
  Catalog catalog = OutOfCoreCatalog(kBaseCardinality, 13);
  const Relation& input = catalog.Find("R")->data;
  const uint64_t input_bytes = ColumnTable::FromRelation(input).ApproxBytes();
  const uint64_t budget = input_bytes / 4;
  Row("  R: %zu rows, ~%.1f MiB columnar; budget %.1f MiB", input.size(),
      static_cast<double>(input_bytes) / (1024.0 * 1024.0),
      static_cast<double>(budget) / (1024.0 * 1024.0));

  Result<AnnotatedPlan> ann = AnnotatedPlan::Make(
      OutOfCorePlan(), &catalog, QueryContract::Multiset());
  TQP_CHECK(ann.ok());
  EngineConfig config;

  RunOutcome ref;
  {
    auto t0 = std::chrono::steady_clock::now();
    Result<Relation> r = Evaluate(ann.value(), config, &ref.stats);
    ref.seconds = Seconds(t0);
    TQP_CHECK(r.ok());
    ref.relation = std::move(r).value();
  }
  RunOutcome unbounded = RunVectorized(ann.value(), config, 0);
  RunOutcome spilled = RunVectorized(ann.value(), config, budget);

  CheckIdentical(ref, unbounded);
  CheckIdentical(ref, spilled);
  // The out-of-core gate: the budgeted run went to disk, the unbounded run
  // never did.
  TQP_CHECK(unbounded.stats.spill_bytes == 0);
  TQP_CHECK(unbounded.stats.spill_runs == 0);
  TQP_CHECK(spilled.stats.spill_bytes > 0);
  TQP_CHECK(spilled.stats.spill_runs > 0);

  Row("  reference : %7.2f s", ref.seconds);
  Row("  unbounded : %7.2f s  (no spill)", unbounded.seconds);
  Row("  budgeted  : %7.2f s  (%.1f MiB spilled across %lld runs)",
      spilled.seconds,
      static_cast<double>(spilled.stats.spill_bytes) / (1024.0 * 1024.0),
      static_cast<long long>(spilled.stats.spill_runs));

  bench::SetMetric("input_rows", static_cast<double>(input.size()));
  bench::SetMetric("input_bytes", static_cast<double>(input_bytes));
  bench::SetMetric("memory_budget_bytes", static_cast<double>(budget));
  bench::SetMetric("result_rows", static_cast<double>(ref.relation.size()));
  bench::SetMetric("reference_seconds", ref.seconds);
  bench::SetMetric("unbounded_seconds", unbounded.seconds);
  bench::SetMetric("budgeted_seconds", spilled.seconds);
  bench::SetMetric("spill_bytes",
                   static_cast<double>(spilled.stats.spill_bytes));
  bench::SetMetric("spill_runs",
                   static_cast<double>(spilled.stats.spill_runs));
  bench::SetMetric("budgeted_slowdown",
                   spilled.seconds / unbounded.seconds);
  std::printf("out-of-core identity + spill gates PASSED.\n");
}

}  // namespace tqp

int main() {
  tqp::GateOutOfCore();
  tqp::bench::WriteBenchJson("vexec_outofcore");
  return 0;
}
