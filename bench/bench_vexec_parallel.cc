// The morsel-parallelism gate: the 1M-row coalescing + temporal join + sort
// pipeline at 1 worker vs 4 workers of the work-stealing scheduler.
//
// Gates (TQP_CHECKed, CI-enforced):
//
//   * determinism: the 4-thread result is tuple-for-tuple identical to the
//     serial vectorized run at full scale, and both are identical to the
//     reference evaluator at reduced scale (scramble off and on);
//   * scaling: >= 3x pipeline rows/second at 4 threads over 1 thread at
//     full scale. The scaling gate arms only on machines with >= 4 hardware
//     threads and only in optimized, unsanitized builds; the identity gates
//     always run.
//
// Headline numbers land in BENCH_vexec_parallel.json for the CI
// perf-trajectory artifacts.
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <utility>

#include "bench_util.h"
#include "vexec/vexec.h"

namespace tqp {

using bench::Banner;
using bench::BuiltWithSanitizers;
using bench::OptimizedBuild;
using bench::Row;

namespace {

double Seconds(std::chrono::steady_clock::time_point t0) {
  std::chrono::duration<double> dt = std::chrono::steady_clock::now() - t0;
  return dt.count();
}

/// Same workload family as bench_vexec_pipeline: a large messy temporal
/// relation R joined against a small relation S of long probe periods.
Catalog ParallelCatalog(size_t base_cardinality, uint64_t seed) {
  RelationGenParams r;
  r.cardinality = base_cardinality;
  r.num_names = std::max<size_t>(8, base_cardinality / 16);
  r.num_categories = 16;
  r.num_values = 100000;
  r.time_horizon = static_cast<TimePoint>(8 * base_cardinality);
  r.max_period_length = 50;
  r.duplicate_fraction = 0.05;
  r.adjacency_fraction = 0.35;
  r.overlap_fraction = 0.10;
  r.seed = seed;

  RelationGenParams s;
  s.cardinality = 24;
  s.num_names = 8;
  s.num_categories = 4;
  s.time_horizon = r.time_horizon;
  s.max_period_length = r.time_horizon / 16;
  s.seed = seed + 1;

  Catalog catalog;
  TQP_CHECK(catalog
                .RegisterWithInferredFlags("R", GenerateRelation(r),
                                           Site::kDbms)
                .ok());
  TQP_CHECK(catalog
                .RegisterWithInferredFlags("S", GenerateRelation(s),
                                           Site::kDbms)
                .ok());
  return catalog;
}

/// sort_{1.Name, T1}(coalT(R) ×T S).
PlanPtr ParallelPlan() {
  return PlanNode::Sort(
      PlanNode::ProductT(PlanNode::Coalesce(PlanNode::Scan("R")),
                         PlanNode::Scan("S")),
      {{"1.Name", true}, {"T1", true}});
}

struct RunOutcome {
  Relation relation;
  ExecStats stats;
  double seconds = 0.0;
};

RunOutcome RunVectorized(const AnnotatedPlan& ann, const EngineConfig& config,
                         size_t threads) {
  VexecOptions opts;
  opts.threads = threads;
  RunOutcome out;
  auto t0 = std::chrono::steady_clock::now();
  Result<Relation> r = ExecuteVectorized(ann, config, &out.stats, opts);
  out.seconds = Seconds(t0);
  TQP_CHECK(r.ok());
  out.relation = std::move(r).value();
  return out;
}

void CheckIdentical(const RunOutcome& a, const RunOutcome& b) {
  TQP_CHECK(a.relation.schema() == b.relation.schema());
  TQP_CHECK(a.relation.size() == b.relation.size());
  for (size_t i = 0; i < a.relation.size(); ++i) {
    TQP_CHECK(a.relation.tuple(i) == b.relation.tuple(i));
  }
  TQP_CHECK(SortSpecToString(a.relation.order()) ==
            SortSpecToString(b.relation.order()));
  TQP_CHECK(a.stats.tuples_produced == b.stats.tuples_produced);
  TQP_CHECK(a.stats.op_counts == b.stats.op_counts);
  TQP_CHECK(a.stats.dbms_work == b.stats.dbms_work);
  TQP_CHECK(a.stats.stratum_work == b.stats.stratum_work);
}

}  // namespace

/// Reduced scale: serial vexec, 4-thread vexec, and the reference evaluator
/// must agree, with the DBMS scramble off and on.
void GateParallelIdentity() {
  Banner("vexec parallel — reference identity gate (60k rows, 1 vs 4 threads)");
  Catalog catalog = ParallelCatalog(40000, 7);
  Result<AnnotatedPlan> ann = AnnotatedPlan::Make(
      ParallelPlan(), &catalog, QueryContract::Multiset());
  TQP_CHECK(ann.ok());
  for (bool scramble : {false, true}) {
    EngineConfig config;
    config.dbms_scrambles_order = scramble;
    RunOutcome ref;
    auto t0 = std::chrono::steady_clock::now();
    Result<Relation> r = Evaluate(ann.value(), config, &ref.stats);
    ref.seconds = Seconds(t0);
    TQP_CHECK(r.ok());
    ref.relation = std::move(r).value();
    RunOutcome serial = RunVectorized(ann.value(), config, 1);
    RunOutcome par = RunVectorized(ann.value(), config, 4);
    CheckIdentical(ref, serial);
    CheckIdentical(ref, par);
    Row("  scramble=%d: %zu result rows, serial and 4-thread identical to "
        "reference",
        scramble ? 1 : 0, ref.relation.size());
  }
  std::printf("parallel identity gates PASSED.\n");
}

void GateParallelScaling() {
  Banner("vexec parallel — 1M-row pipeline, 1 thread vs 4 threads");
  constexpr size_t kBaseCardinality = 670000;  // ~1M rows after phenomena
  Catalog catalog = ParallelCatalog(kBaseCardinality, 42);
  Row("  R: %zu rows (base %zu), S: %zu rows",
      catalog.Find("R")->data.size(), kBaseCardinality,
      catalog.Find("S")->data.size());
  Result<AnnotatedPlan> ann = AnnotatedPlan::Make(
      ParallelPlan(), &catalog, QueryContract::Multiset());
  TQP_CHECK(ann.ok());
  EngineConfig config;

  RunOutcome serial = RunVectorized(ann.value(), config, 1);
  // Best of two parallel runs (the first pays allocator + thread warmup).
  RunOutcome par = RunVectorized(ann.value(), config, 4);
  RunOutcome par2 = RunVectorized(ann.value(), config, 4);
  if (par2.seconds < par.seconds) par = std::move(par2);
  // The determinism contract at full scale: byte-identical output.
  CheckIdentical(serial, par);

  const double rows = static_cast<double>(serial.stats.tuples_produced);
  const double serial_rps = rows / serial.seconds;
  const double par_rps = rows / par.seconds;
  const double scaling = par_rps / serial_rps;
  Row("  pipeline rows produced: %.0f (result %zu rows)", rows,
      serial.relation.size());
  Row("  1 thread : %7.2f s  %12.0f rows/s", serial.seconds, serial_rps);
  Row("  4 threads: %7.2f s  %12.0f rows/s  (%lld morsels, %lld steals)",
      par.seconds, par_rps, static_cast<long long>(par.stats.morsels),
      static_cast<long long>(par.stats.steals));
  Row("  scaling: %.2fx", scaling);

  bench::SetMetric("pipeline_rows", rows);
  bench::SetMetric("result_rows",
                   static_cast<double>(serial.relation.size()));
  bench::SetMetric("serial_seconds", serial.seconds);
  bench::SetMetric("parallel_seconds", par.seconds);
  bench::SetMetric("serial_rows_per_s", serial_rps);
  bench::SetMetric("parallel_rows_per_s", par_rps);
  bench::SetMetric("scaling_4_threads", scaling);
  bench::SetMetric("morsels", static_cast<double>(par.stats.morsels));
  bench::SetMetric("steals", static_cast<double>(par.stats.steals));

  if (std::thread::hardware_concurrency() < 4 || !OptimizedBuild() ||
      BuiltWithSanitizers()) {
    std::printf("scaling gate SKIPPED (hw_threads=%u, optimized=%d, "
                "sanitizers=%d) — the gate needs >= 4 hardware threads in an "
                "optimized, unsanitized build.\n",
                std::thread::hardware_concurrency(), OptimizedBuild() ? 1 : 0,
                BuiltWithSanitizers() ? 1 : 0);
    return;
  }
  // The acceptance gate: >= 3x pipeline rows/second at 4 threads.
  TQP_CHECK(par_rps >= 3.0 * serial_rps);
  std::printf("scaling gate PASSED: %.2fx >= 3x.\n", scaling);
}

}  // namespace tqp

int main() {
  tqp::GateParallelIdentity();
  tqp::GateParallelScaling();
  tqp::bench::WriteBenchJson("vexec_parallel");
  return 0;
}
