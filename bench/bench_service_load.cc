// Sustained-load harness for the TCP query service (src/service): hundreds
// of concurrent clients driving one shared Engine through real sockets.
//
// Three phases, each reported as q/s plus p50/p99/p999 from the lock-free
// latency histogram and embedded into BENCH_service_load.json:
//
//   1. baseline  — closed loop, as many clients as admission permits.
//   2. overload  — 2x the clients against the *same* admission cap. The
//                  acceptance bar is graceful degradation: zero errors, the
//                  admission gate saturates exactly at its cap, throughput
//                  holds, and p50 grows by queueing (bounded), not collapse.
//   3. warm-vs-cold restart — a server with a plan-store snapshot must serve
//                  its first wave of optimize-heavy traffic at >= 2x the
//                  cold first-wave q/s, with byte-identical result frames.
//
// Perf gates arm only in optimized, unsanitized builds (identity and
// zero-error gates always run); sanitized CI jobs still execute every phase
// end to end. Flags: --clients=N (overload client count, default 32),
// --duration=S (seconds per load phase, default 2).
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "api/engine.h"
#include "bench_util.h"
#include "service/loadgen.h"
#include "service/plan_store.h"
#include "service/server.h"

namespace tqp {
namespace {

using bench::Banner;
using bench::Row;

size_t g_clients = 32;     // overload phase; baseline runs half
double g_duration_s = 2.0;  // per load phase

const bool kGatesArmed = bench::OptimizedBuild() && !bench::BuiltWithSanitizers();

void ReportPhase(const char* phase, const LoadGenReport& r) {
  Row("  %-10s %8.0f q/s  %6llu queries  %llu errors  p50 %6llu us  "
      "p99 %6llu us  p999 %6llu us",
      phase, r.qps, static_cast<unsigned long long>(r.queries),
      static_cast<unsigned long long>(r.errors),
      static_cast<unsigned long long>(r.latency_us.Percentile(50)),
      static_cast<unsigned long long>(r.latency_us.Percentile(99)),
      static_cast<unsigned long long>(r.latency_us.Percentile(99.9)));
  const std::string p = phase;
  bench::SetMetric(p + "_qps", r.qps);
  bench::SetMetric(p + "_queries", static_cast<double>(r.queries));
  bench::SetMetric(p + "_errors", static_cast<double>(r.errors));
  bench::SetJsonMetric(p + "_latency_us", r.latency_us.ToJson());
}

// ---- Phases 1+2: closed-loop baseline, then 2x overload --------------------

/// The load catalog scales the messy temporal relations up until warm query
/// *evaluation* (the admission-gated section) dominates each round trip —
/// milliseconds of coalescing/dedup per query, not just socket turnarounds.
/// Otherwise the admission gate would sit idle and the overload phase would
/// measure the kernel's TCP stack instead of the service's queueing.
Catalog ServiceLoadCatalog() {
  Catalog catalog = bench::ScaledCatalog(4);
  TQP_CHECK(catalog
                .RegisterWithInferredFlags(
                    "R", bench::MessyTemporal(1200, 0.2, 0.2, 0.2, 5),
                    Site::kDbms)
                .ok());
  TQP_CHECK(catalog
                .RegisterWithInferredFlags(
                    "S", bench::MessyTemporal(800, 0.1, 0.3, 0.1, 17),
                    Site::kDbms)
                .ok());
  return catalog;
}

/// Evaluation-heavy subset of the mixed workload (no sub-100us queries).
std::vector<std::string> ServiceLoadQueries() {
  return {
      "VALIDTIME SELECT DISTINCT Name FROM R ORDER BY Name ASC",
      "VALIDTIME COALESCED SELECT DISTINCT Name FROM R",
      "SELECT Name FROM R UNION SELECT Name FROM S",
  };
}

void RunOverloadPhases() {
  Banner("Service under load — closed loop at the admission cap, then 2x");
  const size_t overload_clients = std::max<size_t>(4, g_clients);
  const size_t base_clients = overload_clients / 2;

  EngineOptions options;
  // The admission cap under test: every query's evaluation passes the gate,
  // so 2x the clients means queueing, never 2x the in-flight work.
  options.max_concurrent_queries = base_clients;
  Engine engine(ServiceLoadCatalog(), options);
  Server server(&engine, ServerOptions{});
  TQP_CHECK(server.Start().ok());

  LoadGenOptions load;
  load.host = server.host();
  load.port = server.port();
  load.queries = ServiceLoadQueries();
  load.duration_s = g_duration_s;

  // Prime the plan cache so both phases measure serving, not first-compiles.
  {
    LoadGenOptions prime = load;
    prime.clients = 2;
    prime.rounds = 1;
    prime.duration_s = 0;
    LoadGenReport r;
    TQP_CHECK(RunLoad(prime, &r).ok());
    TQP_CHECK(r.errors == 0);
  }

  LoadGenReport base;
  load.clients = base_clients;
  TQP_CHECK(RunLoad(load, &base).ok());
  ReportPhase("baseline", base);

  LoadGenReport over;
  load.clients = overload_clients;
  TQP_CHECK(RunLoad(load, &over).ok());
  ReportPhase("overload", over);

  const EngineStats stats = engine.stats();
  server.Stop();
  Row("  admission cap %zu, peak concurrent %llu", base_clients,
      static_cast<unsigned long long>(stats.peak_concurrent_queries));
  bench::SetMetric("admission_cap", static_cast<double>(base_clients));
  bench::SetMetric("peak_concurrent_queries",
                   static_cast<double>(stats.peak_concurrent_queries));
  bench::SetJsonMetric("engine_stats", stats.ToJson());

  // Graceful-degradation gates. Zero errors and the admission bound are
  // correctness properties: they hold in every build flavor. Full
  // saturation (peak == cap) is a perf property — sanitized builds shift
  // the evaluation/IO ratio too much to guarantee it.
  TQP_CHECK(base.errors == 0 && over.errors == 0);
  TQP_CHECK(stats.peak_concurrent_queries <= base_clients);
  if (kGatesArmed) {
    TQP_CHECK(stats.peak_concurrent_queries == base_clients);
  }
  const double p50_ratio =
      base.latency_us.Percentile(50) > 0
          ? static_cast<double>(over.latency_us.Percentile(50)) /
                static_cast<double>(base.latency_us.Percentile(50))
          : 0.0;
  bench::SetMetric("overload_p50_growth", p50_ratio);
  Row("  overload p50 growth %.2fx, throughput ratio %.2fx", p50_ratio,
      base.qps > 0 ? over.qps / base.qps : 0.0);
  if (kGatesArmed) {
    // Queueing, not collapse: closed-loop theory predicts ~2x p50 at 2x
    // clients; 8x leaves room for scheduler noise on small CI runners.
    TQP_CHECK(p50_ratio <= 8.0);
    TQP_CHECK(over.qps >= 0.5 * base.qps);
  }
}

// ---- Phase 3: warm restart vs cold first wave ------------------------------

/// Optimize-heavy mix: join + predicate chains with a large enough plan
/// space that first-contact latency is dominated by the Figure 5 search —
/// exactly what the plan store amortizes across restarts.
std::vector<std::string> FirstWaveQueries() {
  std::vector<std::string> queries;
  for (int predicates = 3; predicates <= 6; ++predicates) {
    std::string q =
        "VALIDTIME SELECT Dept, Prj FROM EMPLOYEE, PROJECT WHERE "
        "Dept = 'dept1'";
    for (int i = 1; i < predicates; ++i) {
      q += " AND Prj <> 'prj" + std::to_string(i) + "'";
    }
    queries.push_back(q);
  }
  return queries;
}

void RunWarmRestartPhase() {
  Banner("Warm restart — plan-store snapshot vs cold first wave");
  const std::string path = "bench_service_load.plan_snapshot";
  std::remove(path.c_str());

  LoadGenOptions load;
  load.clients = 4;
  load.rounds = 2;
  load.queries = FirstWaveQueries();
  load.record_raw = true;

  ServerOptions with_store;
  with_store.snapshot_path = path;

  auto first_wave = [&](const ServerOptions& opts, LoadGenReport* report) {
    Engine engine(bench::ScaledCatalog(4));
    Server server(&engine, opts);
    TQP_CHECK(server.Start().ok());
    load.host = server.host();
    load.port = server.port();
    TQP_CHECK(RunLoad(load, report).ok());
    TQP_CHECK(report->errors == 0);
    server.Stop();  // writes the snapshot when configured
  };

  LoadGenReport cold, warm;
  first_wave(with_store, &cold);  // cold run, snapshots on Stop()
  ReportPhase("cold_start", cold);
  first_wave(with_store, &warm);  // restart: imports the snapshot
  ReportPhase("warm_start", warm);
  std::remove(path.c_str());

  // Byte identity is a correctness gate: a warm restart changes latency,
  // never a byte of results. Compared over schema/batch frames only.
  TQP_CHECK(warm.raw_by_client.size() == cold.raw_by_client.size());
  for (size_t i = 0; i < warm.raw_by_client.size(); ++i) {
    TQP_CHECK(warm.raw_by_client[i] == cold.raw_by_client[i]);
  }
  const double speedup = cold.qps > 0 ? warm.qps / cold.qps : 0.0;
  bench::SetMetric("warm_start_speedup", speedup);
  Row("  warm first wave %.2fx the cold q/s (gate: >= 2x)", speedup);
  if (kGatesArmed) {
    TQP_CHECK(speedup >= 2.0);
  }
}

}  // namespace
}  // namespace tqp

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--clients=", 10) == 0) {
      tqp::g_clients = static_cast<size_t>(std::atoi(argv[i] + 10));
    } else if (std::strncmp(argv[i], "--duration=", 11) == 0) {
      tqp::g_duration_s = std::atof(argv[i] + 11);
    }
  }
  tqp::bench::TimedSection("overload_phases",
                           [] { tqp::RunOverloadPhases(); });
  tqp::bench::TimedSection("warm_restart_phase",
                           [] { tqp::RunWarmRestartPhase(); });
  tqp::bench::WriteBenchJson("service_load");
  return 0;
}
