// The vectorized-executor pipeline gate: coalescing + temporal join + sort
// on a ~1M-row generated temporal relation.
//
// Gates (TQP_CHECKed, CI-enforced):
//
//   * list identity: the vectorized executor's result is tuple-for-tuple
//     identical to the reference evaluator's on the full pipeline, at full
//     scale with the scramble off and at reduced scale with
//     dbms_scrambles_order on, including the simulated cost accounting;
//   * throughput: >= 5x pipeline rows/second over the reference evaluator
//     at full scale. The speedup gate arms only in optimized, unsanitized
//     builds (NDEBUG and no ASan/TSan); the identity gates always run.
//
// Headline numbers are recorded via bench::SetMetric and written to
// BENCH_vexec_pipeline.json for the CI perf-trajectory artifacts.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <string>

#include "bench_util.h"
#include "vexec/vexec.h"

namespace tqp {

using bench::Banner;
using bench::Row;

using bench::BuiltWithSanitizers;
using bench::OptimizedBuild;

namespace {

double Seconds(std::chrono::steady_clock::time_point t0) {
  std::chrono::duration<double> dt = std::chrono::steady_clock::now() - t0;
  return dt.count();
}

/// The pipeline workload: a large messy temporal relation R (exact
/// duplicates, coalescible adjacent fragments, snapshot-duplicate overlaps)
/// joined against a small relation S of long probe periods.
Catalog PipelineCatalog(size_t base_cardinality, uint64_t seed) {
  RelationGenParams r;
  r.cardinality = base_cardinality;
  r.num_names = std::max<size_t>(8, base_cardinality / 16);
  r.num_categories = 16;
  r.num_values = 100000;
  r.time_horizon = static_cast<TimePoint>(8 * base_cardinality);
  r.max_period_length = 50;
  r.duplicate_fraction = 0.05;
  r.adjacency_fraction = 0.35;
  r.overlap_fraction = 0.10;
  r.seed = seed;

  RelationGenParams s;
  s.cardinality = 24;
  s.num_names = 8;
  s.num_categories = 4;
  s.time_horizon = r.time_horizon;
  s.max_period_length = r.time_horizon / 16;  // long probe periods
  s.seed = seed + 1;

  Catalog catalog;
  TQP_CHECK(catalog
                .RegisterWithInferredFlags("R", GenerateRelation(r),
                                           Site::kDbms)
                .ok());
  TQP_CHECK(catalog
                .RegisterWithInferredFlags("S", GenerateRelation(s),
                                           Site::kDbms)
                .ok());
  return catalog;
}

/// sort_{1.Name, T1}(coalT(R) ×T S) — coalescing + temporal join + sort.
PlanPtr PipelinePlan() {
  return PlanNode::Sort(
      PlanNode::ProductT(PlanNode::Coalesce(PlanNode::Scan("R")),
                         PlanNode::Scan("S")),
      {{"1.Name", true}, {"T1", true}});
}

struct RunOutcome {
  Relation relation;
  ExecStats stats;
  double seconds = 0.0;
};

RunOutcome RunReference(const AnnotatedPlan& ann, const EngineConfig& config) {
  RunOutcome out;
  auto t0 = std::chrono::steady_clock::now();
  Result<Relation> r = Evaluate(ann, config, &out.stats);
  out.seconds = Seconds(t0);
  TQP_CHECK(r.ok());
  out.relation = std::move(r).value();
  return out;
}

RunOutcome RunVectorized(const AnnotatedPlan& ann,
                         const EngineConfig& config) {
  RunOutcome out;
  auto t0 = std::chrono::steady_clock::now();
  Result<Relation> r = ExecuteVectorized(ann, config, &out.stats);
  out.seconds = Seconds(t0);
  TQP_CHECK(r.ok());
  out.relation = std::move(r).value();
  return out;
}

void CheckIdentical(const RunOutcome& ref, const RunOutcome& vec) {
  TQP_CHECK(ref.relation.schema() == vec.relation.schema());
  TQP_CHECK(ref.relation.size() == vec.relation.size());
  for (size_t i = 0; i < ref.relation.size(); ++i) {
    TQP_CHECK(ref.relation.tuple(i) == vec.relation.tuple(i));
  }
  TQP_CHECK(SortSpecToString(ref.relation.order()) ==
            SortSpecToString(vec.relation.order()));
  TQP_CHECK(ref.stats.tuples_produced == vec.stats.tuples_produced);
  TQP_CHECK(ref.stats.op_counts == vec.stats.op_counts);
  TQP_CHECK(ref.stats.dbms_work == vec.stats.dbms_work);
  TQP_CHECK(ref.stats.stratum_work == vec.stats.stratum_work);
}

}  // namespace

void GatePipelineIdentityScrambled() {
  Banner("vexec pipeline — list-identity gate (scrambled DBMS, 60k rows)");
  Catalog catalog = PipelineCatalog(40000, 7);
  Result<AnnotatedPlan> ann = AnnotatedPlan::Make(
      PipelinePlan(), &catalog, QueryContract::Multiset());
  TQP_CHECK(ann.ok());
  for (uint64_t seed : {0x5eedULL, 0xabcdefULL}) {
    EngineConfig config;
    config.dbms_scrambles_order = true;
    config.scramble_seed = seed;
    RunOutcome ref = RunReference(ann.value(), config);
    RunOutcome vec = RunVectorized(ann.value(), config);
    CheckIdentical(ref, vec);
    Row("  scramble seed %#llx: %zu result rows, identical",
        static_cast<unsigned long long>(seed), ref.relation.size());
  }
  std::printf("scrambled-order identity gates PASSED.\n");
}

void GatePipelineThroughput() {
  Banner("vexec pipeline — 1M-row coalesce + temporal join + sort");
  constexpr size_t kBaseCardinality = 670000;  // ~1M rows after phenomena
  Catalog catalog = PipelineCatalog(kBaseCardinality, 42);
  const size_t scan_rows = catalog.Find("R")->data.size();
  Row("  R: %zu rows (base %zu), S: %zu rows", scan_rows, kBaseCardinality,
      catalog.Find("S")->data.size());

  Result<AnnotatedPlan> ann = AnnotatedPlan::Make(
      PipelinePlan(), &catalog, QueryContract::Multiset());
  TQP_CHECK(ann.ok());
  EngineConfig config;

  RunOutcome ref = RunReference(ann.value(), config);
  // Best of two vectorized runs (first run pays allocator warmup).
  RunOutcome vec = RunVectorized(ann.value(), config);
  RunOutcome vec2 = RunVectorized(ann.value(), config);
  if (vec2.seconds < vec.seconds) vec = std::move(vec2);
  CheckIdentical(ref, vec);

  const double rows = static_cast<double>(ref.stats.tuples_produced);
  const double ref_rps = rows / ref.seconds;
  const double vec_rps = rows / vec.seconds;
  const double speedup = vec_rps / ref_rps;
  Row("  pipeline rows produced: %.0f (result %zu rows)", rows,
      ref.relation.size());
  Row("  reference : %7.2f s  %12.0f rows/s", ref.seconds, ref_rps);
  Row("  vectorized: %7.2f s  %12.0f rows/s  (%lld batches, %lld "
      "materializations)",
      vec.seconds, vec_rps,
      static_cast<long long>(vec.stats.vec_batches),
      static_cast<long long>(vec.stats.vec_materializations));
  Row("  speedup: %.2fx", speedup);

  bench::SetMetric("pipeline_rows", rows);
  bench::SetMetric("result_rows", static_cast<double>(ref.relation.size()));
  bench::SetMetric("scan_rows", static_cast<double>(scan_rows));
  bench::SetMetric("reference_seconds", ref.seconds);
  bench::SetMetric("vectorized_seconds", vec.seconds);
  bench::SetMetric("reference_rows_per_s", ref_rps);
  bench::SetMetric("vectorized_rows_per_s", vec_rps);
  bench::SetMetric("speedup", speedup);
  bench::SetMetric("vec_batches", static_cast<double>(vec.stats.vec_batches));

  if (!OptimizedBuild() || BuiltWithSanitizers()) {
    std::printf("speedup gate SKIPPED (optimized=%d, sanitizers=%d) — the "
                "gate needs an optimized, unsanitized build.\n",
                OptimizedBuild() ? 1 : 0, BuiltWithSanitizers() ? 1 : 0);
    return;
  }
  // The acceptance gate: >= 5x pipeline rows/second over the reference.
  TQP_CHECK(vec_rps >= 5.0 * ref_rps);
  std::printf("speedup gate PASSED: %.2fx >= 5x.\n", speedup);
}

namespace {

void BM_VexecPipeline(benchmark::State& state) {
  Catalog catalog = PipelineCatalog(static_cast<size_t>(state.range(0)), 42);
  Result<AnnotatedPlan> ann = AnnotatedPlan::Make(
      PipelinePlan(), &catalog, QueryContract::Multiset());
  TQP_CHECK(ann.ok());
  EngineConfig config;
  int64_t rows = 0;
  for (auto _ : state) {
    ExecStats stats;
    Result<Relation> r = ExecuteVectorized(ann.value(), config, &stats);
    TQP_CHECK(r.ok());
    rows = stats.tuples_produced;
    benchmark::DoNotOptimize(r);
  }
  state.counters["rows"] = static_cast<double>(rows);
}
BENCHMARK(BM_VexecPipeline)->Arg(20000)->Arg(100000);

void BM_ReferencePipeline(benchmark::State& state) {
  Catalog catalog = PipelineCatalog(static_cast<size_t>(state.range(0)), 42);
  Result<AnnotatedPlan> ann = AnnotatedPlan::Make(
      PipelinePlan(), &catalog, QueryContract::Multiset());
  TQP_CHECK(ann.ok());
  EngineConfig config;
  for (auto _ : state) {
    ExecStats stats;
    Result<Relation> r = Evaluate(ann.value(), config, &stats);
    TQP_CHECK(r.ok());
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_ReferencePipeline)->Arg(20000)->Arg(100000);

}  // namespace
}  // namespace tqp

int main(int argc, char** argv) {
  tqp::GatePipelineIdentityScrambled();
  tqp::GatePipelineThroughput();
  tqp::bench::WriteBenchJson("vexec_pipeline");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
