// Backend pushdown: executing the maximal conventional subplan under a
// transferS cut inside the DBMS (SQLite) instead of the stratum.
//
// Two claims are gated:
//  1. On a selective filter over a join, SQL pushdown beats in-engine
//     evaluation end-to-end: the stratum materializes every product pair
//     before filtering, while the DBMS streams pairs through its join
//     machinery with the predicate applied in place. Results must stay
//     byte-identical (pushdown is an execution strategy, never a semantics
//     change).
//  2. The calibrated cost model steers the optimizer's transfer placement:
//     a measured-fast backend keeps the conventional operators below the
//     cut (pushdown-friendly plans); a measured-slow backend makes the
//     optimizer hoist the work into the stratum. The placement flip is
//     deterministic and always checked; the wall-clock gate arms only in
//     optimized, unsanitized builds.
#include <benchmark/benchmark.h>

#include <chrono>
#include <string>
#include <vector>

#include "backend/backend.h"
#include "backend/sqlite_backend.h"
#include "bench_util.h"
#include "opt/optimizer.h"
#include "tql/translator.h"

namespace tqp {

using bench::Banner;

namespace {

double Seconds(std::chrono::steady_clock::time_point t0) {
  std::chrono::duration<double> dt = std::chrono::steady_clock::now() - t0;
  return dt.count();
}

Relation BigConventional(uint64_t seed, size_t n) {
  RelationGenParams p;
  p.cardinality = n;
  p.num_names = 40;
  p.num_categories = 3;
  p.duplicate_fraction = 0.1;
  p.temporal = false;
  p.seed = seed;
  return GenerateRelation(p);
}

Catalog PushdownCatalog() {
  Catalog catalog;
  TQP_CHECK(catalog
                .RegisterWithInferredFlags("Big", BigConventional(17, 1500),
                                           Site::kDbms)
                .ok());
  TQP_CHECK(catalog
                .RegisterWithInferredFlags("Dim", BigConventional(23, 400),
                                           Site::kDbms)
                .ok());
  return catalog;
}

/// σ(Big × ρ(Dim)) under the transferS cut: ~600k product pairs, a few
/// percent surviving the filter.
PlanPtr SelectiveJoinPlan() {
  std::vector<ProjItem> renamed = {ProjItem::Rename("Name", "DName"),
                                   ProjItem::Rename("Cat", "DCat"),
                                   ProjItem::Rename("Val", "DVal")};
  ExprPtr pred = Expr::And(
      Expr::Compare(CompareOp::kLt, Expr::Attr("Cat"),
                    Expr::Const(Value::Int(1))),
      Expr::Compare(CompareOp::kGt, Expr::Attr("DVal"),
                    Expr::Const(Value::Int(950))));
  return PlanNode::TransferS(PlanNode::Select(
      PlanNode::Product(PlanNode::Scan("Big"),
                        PlanNode::Project(PlanNode::Scan("Dim"), renamed)),
      pred));
}

}  // namespace

void ComparePushdownAgainstInEngine() {
  Banner("Backend pushdown — selective filter over join, SQLite vs in-engine");
  if (!SqliteBackend::Available()) {
    std::printf("sqlite3 not available in this build; section skipped\n");
    bench::SetMetric("sqlite_available", 0.0);
    return;
  }
  bench::SetMetric("sqlite_available", 1.0);

  Catalog catalog = PushdownCatalog();
  PlanPtr plan = SelectiveJoinPlan();
  const int iters = 3;

  // In-engine reference: the stratum evaluates the whole subtree itself.
  EngineConfig ref_cfg;
  ExecStats ref_stats;
  Result<Relation> ref = EvaluatePlan(plan, catalog, ref_cfg, &ref_stats);
  TQP_CHECK(ref.ok());
  auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < iters; ++i) {
    TQP_CHECK(EvaluatePlan(plan, catalog, ref_cfg, nullptr).ok());
  }
  double ref_s = Seconds(t0) / iters;

  // Pushdown: the same plan with the SQLite backend active. Warm up once so
  // the timed runs measure execution, not the one-time catalog mirror.
  Result<std::unique_ptr<Backend>> be = MakeBackend(BackendKind::kSqlite);
  TQP_CHECK(be.ok());
  EngineConfig push_cfg;
  push_cfg.backend = be.value().get();
  ExecStats push_stats;
  Result<Relation> pushed = EvaluatePlan(plan, catalog, push_cfg, &push_stats);
  TQP_CHECK(pushed.ok());
  TQP_CHECK(push_stats.backend_pushdowns == 1);
  TQP_CHECK(push_stats.backend_fallbacks == 0);
  t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < iters; ++i) {
    TQP_CHECK(EvaluatePlan(plan, catalog, push_cfg, nullptr).ok());
  }
  double push_s = Seconds(t0) / iters;

  // Strategy, not semantics: byte-identical result lists.
  TQP_CHECK(ref.value().ToTable() == pushed.value().ToTable());

  double speedup = ref_s / push_s;
  std::printf("%-34s | %12.1f ms\n", "in-engine (stratum evaluates)",
              ref_s * 1e3);
  std::printf("%-34s | %12.1f ms\n", "pushed down (SQLite executes)",
              push_s * 1e3);
  std::printf("%-34s | %12zu rows\n", "cut-point result",
              pushed.value().size());
  std::printf("%-34s | %12.2fx\n", "pushdown speedup", speedup);
  bench::SetMetric("in_engine_ms", ref_s * 1e3);
  bench::SetMetric("pushdown_ms", push_s * 1e3);
  bench::SetMetric("pushdown_speedup", speedup);
  bench::SetMetric("cut_rows", static_cast<double>(pushed.value().size()));
  bench::SetJsonMetric("pushdown_exec", push_stats.ToJson());

  if (bench::OptimizedBuild() && !bench::BuiltWithSanitizers()) {
    TQP_CHECK(speedup >= 1.2);
  }
}

namespace {

/// Conventional (non-scan, non-transfer) operators the best plan places at
/// the DBMS site — the measure of how much work the optimizer pushes below
/// the cut.
size_t DbmsOpsInBestPlan(const Catalog& catalog, const TranslatedQuery& q,
                         const EngineConfig& engine, double* cost) {
  OptimizerOptions options;
  options.engine = engine;
  options.enumeration.max_plans = 2500;
  Result<OptimizeResult> opt =
      Optimize(q.plan, catalog, q.contract, DefaultRuleSet(), options);
  TQP_CHECK(opt.ok());
  *cost = opt->best_cost;
  Result<AnnotatedPlan> ann =
      AnnotatedPlan::Make(opt->best_plan, &catalog, q.contract);
  TQP_CHECK(ann.ok());
  std::vector<PlanPtr> nodes;
  CollectNodes(opt->best_plan, &nodes);
  size_t at_dbms = 0;
  for (const PlanPtr& n : nodes) {
    if (n->kind() == OpKind::kScan || n->kind() == OpKind::kTransferS ||
        n->kind() == OpKind::kTransferD) {
      continue;
    }
    if (ann->info(n.get()).site == Site::kDbms) ++at_dbms;
  }
  return at_dbms;
}

}  // namespace

void CompareCalibratedPlacement() {
  Banner("Calibrated costs steer transfer placement — slow vs fast backend");
  Catalog catalog = PushdownCatalog();
  Result<TranslatedQuery> q = CompileQuery(
      "SELECT DISTINCT Name FROM Big WHERE Val > 500 ORDER BY Name ASC",
      catalog);
  TQP_CHECK(q.ok());

  EngineConfig base;

  // Synthetic measured profiles: the same backend interface can report a
  // DBMS that is much slower or much faster than the constant model assumes.
  BackendCostProfile slow;
  slow.calibrated = true;
  slow.fingerprint = 1;
  slow.transfer_cost_per_tuple = base.transfer_cost_per_tuple;
  BackendCostProfile fast = slow;
  fast.fingerprint = 2;
  for (int k = 0; k < kOpKindCount; ++k) {
    slow.dbms_op_factor[k] = 64.0;
    fast.dbms_op_factor[k] = 1.0 / 16.0;
  }

  double cost_base = 0.0, cost_slow = 0.0, cost_fast = 0.0;
  size_t ops_base = DbmsOpsInBestPlan(catalog, q.value(), base, &cost_base);
  EngineConfig slow_cfg = base;
  slow_cfg.calibration = &slow;
  size_t ops_slow = DbmsOpsInBestPlan(catalog, q.value(), slow_cfg, &cost_slow);
  EngineConfig fast_cfg = base;
  fast_cfg.calibration = &fast;
  size_t ops_fast = DbmsOpsInBestPlan(catalog, q.value(), fast_cfg, &cost_fast);

  std::printf("%-22s | %16s | %12s\n", "calibration", "DBMS-site ops",
              "best cost");
  std::printf("%s\n", std::string(56, '-').c_str());
  std::printf("%-22s | %16zu | %12.0f\n", "none (constants)", ops_base,
              cost_base);
  std::printf("%-22s | %16zu | %12.0f\n", "slow backend (x64)", ops_slow,
              cost_slow);
  std::printf("%-22s | %16zu | %12.0f\n", "fast backend (/16)", ops_fast,
              cost_fast);
  bench::SetMetric("dbms_ops_uncalibrated", static_cast<double>(ops_base));
  bench::SetMetric("dbms_ops_slow_backend", static_cast<double>(ops_slow));
  bench::SetMetric("dbms_ops_fast_backend", static_cast<double>(ops_fast));
  bench::SetMetric("best_cost_slow_backend", cost_slow);
  bench::SetMetric("best_cost_fast_backend", cost_fast);

  // The deterministic flip (always gated): a measured-fast backend keeps
  // strictly more conventional work below the cut than a measured-slow one,
  // which pushes the transfer down toward the scans.
  TQP_CHECK(ops_fast > ops_slow);
  TQP_CHECK(ops_fast >= ops_base);
  std::printf(
      "\nplacement flip: fast backend keeps %zu conventional ops at the "
      "DBMS, slow backend %zu\n",
      ops_fast, ops_slow);
}

namespace {

void BM_PushdownCut(benchmark::State& state) {
  if (!SqliteBackend::Available()) {
    state.SkipWithError("sqlite3 not available");
    return;
  }
  Catalog catalog = PushdownCatalog();
  PlanPtr plan = SelectiveJoinPlan();
  Result<std::unique_ptr<Backend>> be = MakeBackend(BackendKind::kSqlite);
  TQP_CHECK(be.ok());
  EngineConfig cfg;
  cfg.backend = be.value().get();
  TQP_CHECK(EvaluatePlan(plan, catalog, cfg, nullptr).ok());  // warm mirror
  for (auto _ : state) {
    Result<Relation> r = EvaluatePlan(plan, catalog, cfg, nullptr);
    TQP_CHECK(r.ok());
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_PushdownCut);

}  // namespace
}  // namespace tqp

int main(int argc, char** argv) {
  tqp::bench::TimedSection("pushdown_vs_in_engine",
                           [] { tqp::ComparePushdownAgainstInEngine(); });
  tqp::bench::TimedSection("calibrated_placement",
                           [] { tqp::CompareCalibratedPlacement(); });
  tqp::bench::WriteBenchJson("backend_pushdown");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
