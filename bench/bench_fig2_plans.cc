// Figure 2 reproduction: the initial (a) and optimized (b) operator trees
// for the running example, and the performance gap between them.
//
// Verifies that the optimizer reaches exactly the Figure 2(b) plan shape
// (transfers at the leaves, top rdupT removed via D2, coalescing pushed below
// \T via C10 with C2 clearing the right branch, sort pushed into the DBMS),
// then measures simulated work and wall-clock latency of (a) vs (b) across
// data scale — the paper's qualitative claim is a widening gap.
#include <benchmark/benchmark.h>

#include "algebra/printer.h"
#include "bench_util.h"
#include "core/equivalence.h"
#include "opt/optimizer.h"
#include "tql/translator.h"

namespace tqp {

using bench::Banner;

namespace {

PlanPtr Figure2b() {
  std::vector<ProjItem> proj = {ProjItem::Pass("EmpName"),
                                ProjItem::Pass(kT1), ProjItem::Pass(kT2)};
  return PlanNode::DifferenceT(
      PlanNode::Coalesce(PlanNode::RdupT(PlanNode::TransferS(PlanNode::Sort(
          PlanNode::Project(PlanNode::Scan("EMPLOYEE"), proj),
          {SortKey{"EmpName", true}})))),
      PlanNode::TransferS(PlanNode::Project(PlanNode::Scan("PROJECT"), proj)));
}

}  // namespace

void ReproduceFigure2() {
  Banner("Figure 2 — Algebraic expressions for the example query");
  Catalog catalog = PaperCatalog();

  std::printf("(a) initial plan, entirely computed in the DBMS:\n%s\n",
              PrintPlan(PaperInitialPlan()).c_str());

  Result<OptimizeResult> opt = bench::OptimizePaperExample(catalog, 4000);
  TQP_CHECK(opt.ok());
  std::printf("(b) cost-chosen plan:\n%s\n",
              PrintPlan(opt->best_plan).c_str());
  std::printf("derivation:");
  for (const std::string& r : opt->derivation) std::printf(" %s", r.c_str());

  bool exact = CanonicalString(opt->best_plan) == CanonicalString(Figure2b());
  std::printf("\nreaches the paper's Figure 2(b) tree exactly: %s\n",
              exact ? "yes" : "no (shape-equivalent variant)");
  std::printf("estimated cost: %.0f -> %.0f (%.1fx)\n", opt->initial_cost,
              opt->best_cost, opt->initial_cost / opt->best_cost);
}

namespace {

void RunPlanAtScale(benchmark::State& state, bool optimized) {
  Catalog catalog = bench::ScaledCatalog(static_cast<size_t>(state.range(0)));
  PlanPtr plan = PaperInitialPlan();
  if (optimized) {
    Result<OptimizeResult> opt = bench::OptimizePaperExample(catalog, 600);
    TQP_CHECK(opt.ok());
    plan = opt->best_plan;
  }
  Result<AnnotatedPlan> ann =
      AnnotatedPlan::Make(plan, &catalog, PaperContract());
  TQP_CHECK(ann.ok());
  double work = 0.0;
  for (auto _ : state) {
    ExecStats stats;
    Result<Relation> out = Evaluate(ann.value(), EngineConfig{}, &stats);
    TQP_CHECK(out.ok());
    benchmark::DoNotOptimize(out);
    work = stats.total_work();
  }
  state.counters["sim_work"] = work;
}

void BM_InitialPlan(benchmark::State& state) {
  RunPlanAtScale(state, /*optimized=*/false);
}
BENCHMARK(BM_InitialPlan)->Arg(20)->Arg(100)->Arg(400);

void BM_OptimizedPlan(benchmark::State& state) {
  RunPlanAtScale(state, /*optimized=*/true);
}
BENCHMARK(BM_OptimizedPlan)->Arg(20)->Arg(100)->Arg(400);

}  // namespace
}  // namespace tqp

int main(int argc, char** argv) {
  tqp::bench::TimedSection("reproduce_figure2", [] { tqp::ReproduceFigure2(); });
  tqp::bench::WriteBenchJson("fig2_plans");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
