// Figure 3 reproduction: regular vs temporal duplicate elimination on
// R1 = π_{EmpName,T1,T2}(EMPLOYEE), plus scaling benchmarks of rdup, rdupT
// and coalT under varying duplicate / overlap / adjacency factors.
#include <benchmark/benchmark.h>

#include "algebra/derivation.h"
#include "bench_util.h"
#include "exec/evaluator.h"
#include "exec/reference_ops.h"

namespace tqp {

using bench::Banner;
using bench::MessyTemporal;

void ReproduceFigure3() {
  Banner("Figure 3 — Regular and temporal duplicate elimination");
  Relation employee = PaperEmployee();
  Schema out;
  out.Add(Attribute{"EmpName", ValueType::kString});
  out.Add(Attribute{kT1, ValueType::kTime});
  out.Add(Attribute{kT2, ValueType::kTime});
  std::vector<ProjItem> items = {ProjItem::Pass("EmpName"),
                                 ProjItem::Pass(kT1), ProjItem::Pass(kT2)};
  Result<Relation> r1 = EvalProject(employee, items, out);
  TQP_CHECK(r1.ok());
  std::printf("%s\n",
              r1->ToTable("R1 = project_{EmpName,T1,T2}(EMPLOYEE)").c_str());

  // rdup renames the time attributes: its result is a snapshot relation.
  PlanPtr dup = PlanNode::Rdup(PlanNode::Scan("x"));
  Catalog empty;
  Result<Schema> r2_schema = DeriveSchema(*dup, {r1->schema()}, empty);
  TQP_CHECK(r2_schema.ok());
  Relation r2 = EvalRdup(r1.value(), r2_schema.value());
  std::printf("%s\n", r2.ToTable("R2 = rdup(R1)").c_str());

  Relation r3 = EvalRdupT(r1.value());
  std::printf("%s\n", r3.ToTable("R3 = rdupT(R1)").c_str());
  std::printf("Note the timestamps of R3's second tuple: John [6,11) became "
              "[8,11),\nexactly as in the paper.\n");
}

namespace {

void BM_RdupVsFactor(benchmark::State& state) {
  double dup = static_cast<double>(state.range(1)) / 100.0;
  Relation r = MessyTemporal(static_cast<size_t>(state.range(0)), dup, 0.0,
                             0.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(EvalRdup(r, r.schema()));
  }
  state.counters["dup_pct"] = static_cast<double>(state.range(1));
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(r.size()));
}
BENCHMARK(BM_RdupVsFactor)
    ->Args({5000, 0})
    ->Args({5000, 20})
    ->Args({5000, 60});

void BM_RdupTVsOverlap(benchmark::State& state) {
  double overlap = static_cast<double>(state.range(1)) / 100.0;
  Relation r = MessyTemporal(static_cast<size_t>(state.range(0)), 0.0, 0.0,
                             overlap);
  for (auto _ : state) {
    benchmark::DoNotOptimize(EvalRdupT(r));
  }
  state.counters["overlap_pct"] = static_cast<double>(state.range(1));
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(r.size()));
}
BENCHMARK(BM_RdupTVsOverlap)
    ->Args({5000, 0})
    ->Args({5000, 20})
    ->Args({5000, 60});

void BM_CoalesceVsAdjacency(benchmark::State& state) {
  double adj = static_cast<double>(state.range(1)) / 100.0;
  Relation r = MessyTemporal(static_cast<size_t>(state.range(0)), 0.0, adj,
                             0.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(EvalCoalesce(r));
  }
  state.counters["adjacency_pct"] = static_cast<double>(state.range(1));
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(r.size()));
}
BENCHMARK(BM_CoalesceVsAdjacency)
    ->Args({5000, 0})
    ->Args({5000, 20})
    ->Args({5000, 60});

// Production sweep vs the literal recursive definition (Section 2.5 says
// the definitions "do not imply the actual implementation algorithms"): the
// closed-form sweep wins asymptotically while producing the identical list.
void BM_RdupTReference(benchmark::State& state) {
  Relation r = MessyTemporal(static_cast<size_t>(state.range(0)), 0.1, 0.1,
                             0.4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(EvalRdupTReference(r));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(r.size()));
}
BENCHMARK(BM_RdupTReference)->Arg(1000)->Arg(5000);

// The idiom coalT(rdupT(x)) — the canonical normal form — vs its parts.
void BM_NormalizeIdiom(benchmark::State& state) {
  Relation r = MessyTemporal(static_cast<size_t>(state.range(0)), 0.2, 0.3,
                             0.3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(EvalCoalesce(EvalRdupT(r)));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(r.size()));
}
BENCHMARK(BM_NormalizeIdiom)->Arg(1000)->Arg(10000);

}  // namespace
}  // namespace tqp

int main(int argc, char** argv) {
  tqp::bench::TimedSection("reproduce_figure3", [] { tqp::ReproduceFigure3(); });
  tqp::bench::WriteBenchJson("fig3_duplicates");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
