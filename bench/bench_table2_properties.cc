// Table 2 reproduction: the three applicability properties.
//
// Prints the property definitions with their per-node assignment on the
// paper's plan, then benchmarks the annotation pass (schema + guarantees +
// properties) as a function of plan size — the machinery a rewrite-based
// optimizer re-runs after every transformation (Section 5.3).
#include <benchmark/benchmark.h>

#include "algebra/printer.h"
#include "bench_util.h"
#include "opt/enumerate.h"

namespace tqp {

using bench::Banner;

void ReproduceTable2() {
  Banner("Table 2 — Operation properties");
  std::printf(
      "OrderRequired      : True if the result of the operation must "
      "preserve some order\n"
      "DuplicatesRelevant : True if the operation cannot arbitrarily add or "
      "remove regular duplicates\n"
      "PeriodPreserving   : True if the operation cannot replace its result "
      "with a snapshot-equivalent one\n\n");

  Catalog catalog = PaperCatalog();
  Result<AnnotatedPlan> ann =
      AnnotatedPlan::Make(PaperInitialPlan(), &catalog, PaperContract());
  TQP_CHECK(ann.ok());
  PrintOptions opts;
  opts.show_properties = true;
  std::printf(
      "Assignment on the running example (ORDER BY query, Figure 2(a)); "
      "brackets are\n[OrderRequired DuplicatesRelevant PeriodPreserving]:\n%s\n",
      PrintPlan(ann.value(), opts).c_str());

  std::printf("Per Figure 5, the admitted rule types at each node follow "
              "from the brackets:\n"
              "  [T T T] -> only =L rules      [- T T] -> + =M rules\n"
              "  [- - T] -> + =S rules         [- T -] -> + =SM rules\n"
              "  [- - -] -> all six types\n");
}

namespace {

// A left-deep chain of selections/sorts/coalescings over the scaled data.
PlanPtr DeepPlan(size_t depth) {
  PlanPtr plan = PlanNode::Scan("EMPLOYEE");
  for (size_t i = 0; i < depth; ++i) {
    switch (i % 3) {
      case 0:
        plan = PlanNode::Select(
            plan, Expr::Compare(CompareOp::kNe, Expr::Attr("EmpName"),
                                Expr::Const(Value::String(
                                    "e" + std::to_string(i)))));
        break;
      case 1:
        plan = PlanNode::RdupT(plan);
        break;
      default:
        plan = PlanNode::Coalesce(plan);
        break;
    }
  }
  return PlanNode::TransferS(plan);
}

void BM_AnnotatePlan(benchmark::State& state) {
  Catalog catalog = bench::ScaledCatalog(4);
  PlanPtr plan = DeepPlan(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    Result<AnnotatedPlan> ann =
        AnnotatedPlan::Make(plan, &catalog, PaperContract());
    TQP_CHECK(ann.ok());
    benchmark::DoNotOptimize(ann);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_AnnotatePlan)->RangeMultiplier(2)->Range(4, 256)->Complexity();

void BM_RuleAdmittedCheck(benchmark::State& state) {
  Catalog catalog = PaperCatalog();
  PlanPtr plan = PaperInitialPlan();
  Result<AnnotatedPlan> ann =
      AnnotatedPlan::Make(plan, &catalog, PaperContract());
  TQP_CHECK(ann.ok());
  std::vector<PlanPtr> nodes;
  CollectNodes(plan, &nodes);
  std::vector<const PlanNode*> location;
  for (const PlanPtr& n : nodes) location.push_back(n.get());
  for (auto _ : state) {
    bool admitted = RuleAdmitted(EquivalenceType::kSnapshotMultiset, location,
                                 ann.value());
    benchmark::DoNotOptimize(admitted);
  }
}
BENCHMARK(BM_RuleAdmittedCheck);

}  // namespace
}  // namespace tqp

int main(int argc, char** argv) {
  tqp::bench::TimedSection("reproduce_table2", [] { tqp::ReproduceTable2(); });
  tqp::bench::WriteBenchJson("table2_properties");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
