// Shared helpers for the table/figure reproduction benches.
#ifndef TQP_BENCH_BENCH_COMMON_H_
#define TQP_BENCH_BENCH_COMMON_H_

#include <cstdarg>
#include <cstdio>
#include <functional>
#include <string>

#include "core/catalog.h"
#include "exec/evaluator.h"
#include "workload/generator.h"
#include "workload/paper_example.h"

namespace tqp {
namespace bench {

inline void Banner(const std::string& title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("================================================================\n");
}

inline void Row(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  std::vprintf(fmt, args);
  va_end(args);
  std::printf("\n");
}

/// A catalog with the paper's relations scaled by `scale` employees.
inline Catalog ScaledCatalog(size_t scale, Site site = Site::kDbms) {
  Catalog catalog;
  TQP_CHECK(catalog
                .RegisterWithInferredFlags("EMPLOYEE", ScaledEmployee(scale),
                                           site)
                .ok());
  TQP_CHECK(catalog
                .RegisterWithInferredFlags("PROJECT", ScaledProject(scale),
                                           site)
                .ok());
  return catalog;
}

/// A messy temporal relation sized n with the given phenomena fractions.
inline Relation MessyTemporal(size_t n, double dup, double adj, double over,
                              uint64_t seed = 99) {
  RelationGenParams p;
  p.cardinality = n;
  p.num_names = std::max<size_t>(4, n / 16);
  p.duplicate_fraction = dup;
  p.adjacency_fraction = adj;
  p.overlap_fraction = over;
  p.time_horizon = static_cast<TimePoint>(8 * n);
  p.max_period_length = 40;
  p.seed = seed;
  return GenerateRelation(p);
}

}  // namespace bench
}  // namespace tqp

#endif  // TQP_BENCH_BENCH_COMMON_H_
