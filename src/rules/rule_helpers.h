// Internal helpers shared by the rule-family translation units.
#ifndef TQP_RULES_RULE_HELPERS_H_
#define TQP_RULES_RULE_HELPERS_H_

#include <optional>
#include <string>
#include <vector>

#include "rules/rules.h"

namespace tqp {
namespace rules_internal {

/// Location list builder: the explicitly mentioned operators plus operand
/// subtree roots.
inline std::vector<const PlanNode*> Loc(
    std::initializer_list<const PlanPtr*> nodes) {
  std::vector<const PlanNode*> out;
  for (const PlanPtr* p : nodes) out.push_back(p->get());
  return out;
}

/// True iff every projection item is a plain attribute reference.
inline bool IsPassThroughProjection(const std::vector<ProjItem>& items) {
  for (const ProjItem& item : items) {
    if (item.expr->kind() != ExprKind::kAttr) return false;
  }
  return true;
}

/// True iff no projection item references T1/T2.
inline bool ProjectionIsTimeFree(const std::vector<ProjItem>& items) {
  for (const ProjItem& item : items) {
    if (!item.expr->IsTimeFree()) return false;
  }
  return true;
}

/// True iff the projection keeps T1 and T2 as plain pass-through columns
/// named T1/T2 (the "π_{f1..fn,T1,T2}" shape of rules C8/B1).
inline bool ProjectionKeepsTimes(const std::vector<ProjItem>& items) {
  bool t1 = false, t2 = false;
  for (const ProjItem& item : items) {
    if (item.expr->kind() != ExprKind::kAttr) continue;
    if (item.expr->attr_name() == kT1 && item.name == kT1) t1 = true;
    if (item.expr->attr_name() == kT2 && item.name == kT2) t2 = true;
  }
  return t1 && t2;
}

/// True iff the projection is a pure permutation of `schema`'s attributes
/// (every attribute passed through exactly once under its own name). Such a
/// projection cannot merge value-equivalence classes or introduce snapshot
/// duplicates.
inline bool ProjectionIsPermutationOf(const std::vector<ProjItem>& items,
                                      const Schema& schema) {
  if (items.size() != schema.size()) return false;
  std::vector<bool> used(schema.size(), false);
  for (const ProjItem& item : items) {
    if (item.expr->kind() != ExprKind::kAttr) return false;
    if (item.name != item.expr->attr_name()) return false;
    int idx = schema.IndexOf(item.name);
    if (idx < 0 || used[static_cast<size_t>(idx)]) return false;
    used[static_cast<size_t>(idx)] = true;
  }
  return true;
}

/// True iff every attribute in `spec` avoids T1/T2.
inline bool SortSpecIsTimeFree(const SortSpec& spec) {
  for (const SortKey& k : spec) {
    if (k.attr == kT1 || k.attr == kT2) return false;
  }
  return true;
}

/// Shorthand: the node info of a child subtree root.
inline const NodeInfo& Info(const PlanContext& ann, const PlanPtr& node) {
  return ann.info(node.get());
}

}  // namespace rules_internal
}  // namespace tqp

#endif  // TQP_RULES_RULE_HELPERS_H_
