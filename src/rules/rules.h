// Transformation rules (Section 4) and the default rule catalogue.
//
// Each algebraic equivalence of the paper is represented as one or two
// *directed* rules. A rule carries its equivalence type — the strongest of
// the six types that holds between its two sides — which the enumeration
// algorithm (Figure 5) checks against the Table 2 properties of the
// operations at the matched location. Preconditions ("r does not have
// duplicates in snapshots", "IsPrefixOf(A, Order(r))") are evaluated against
// the static guarantees of the current plan's annotations.
//
// Rule identifiers follow the paper where the paper names them (D1–D6,
// C1–C10, S1–S3); B1–B3 are the ≡SM coalescing variants of Böhlen et al.
// discussed in Section 4.3; the remaining families are the conventional
// rules the paper describes in prose (Section 4.1), sort pushdown
// (Section 4.4), and transfer rules (Section 4.5):
//   P*  selection pushdown/reordering (with temporal counterparts)
//   J*  projection rules
//   A*  commutativity/associativity of ×, ⊎, ∪, ∪T
//   F*  difference rules
//   G*  duplicate-elimination interplay with ×/idempotence
//   SP* sort pushdown
//   T*  transfer rules (stratum ⇄ DBMS)
// A trailing ' marks the right-to-left direction of an equivalence.
#ifndef TQP_RULES_RULES_H_
#define TQP_RULES_RULES_H_

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "algebra/derivation.h"
#include "algebra/plan.h"
#include "core/equivalence.h"

namespace tqp {

/// A successful rule application at some location.
///
/// `replacement` must be a freshly built subtree that *shares* (not clones)
/// the operand subtrees of the matched plan: the enumerator rewrites at a
/// location path and rebuilds only the spine above it (path copying), so
/// everything below the rewritten operators stays physically shared with the
/// source plan — which is what makes hash-consed enumeration cheap.
struct RuleMatch {
  /// Replacement for the matched subtree root.
  PlanPtr replacement;
  /// The operations "at the location" (Section 6): the operators explicitly
  /// mentioned on the rule's left-hand side plus the roots of its operand
  /// subtrees. The enumerator checks the Table 2 properties of exactly these.
  std::vector<const PlanNode*> location;
};

/// One directed transformation rule.
class Rule {
 public:
  using ApplyFn = std::function<std::optional<RuleMatch>(
      const PlanPtr&, const PlanContext&)>;

  /// `root_kinds` lists the operator kinds the rule's left-hand side can
  /// match as the location root, and `child0_kinds` the kinds its first
  /// operand position can take when the left-hand side constrains it; empty
  /// means "any". The enumerator uses both to skip guaranteed non-matches
  /// without the indirect TryApply call — the rule body remains the source
  /// of truth and re-checks the kinds.
  Rule(std::string id, std::string description, EquivalenceType equivalence,
       bool expanding, ApplyFn apply, std::vector<OpKind> root_kinds = {},
       std::vector<OpKind> child0_kinds = {})
      : id_(std::move(id)),
        description_(std::move(description)),
        equivalence_(equivalence),
        expanding_(expanding),
        apply_(std::move(apply)),
        root_kinds_(std::move(root_kinds)),
        child0_kinds_(std::move(child0_kinds)) {}

  const std::string& id() const { return id_; }
  const std::string& description() const { return description_; }
  EquivalenceType equivalence() const { return equivalence_; }
  const std::vector<OpKind>& root_kinds() const { return root_kinds_; }
  const std::vector<OpKind>& child0_kinds() const { return child0_kinds_; }

  /// True iff a location rooted at an operator of kind `k` could match.
  bool MatchesRootKind(OpKind k) const {
    if (root_kinds_.empty()) return true;
    for (OpKind rk : root_kinds_) {
      if (rk == k) return true;
    }
    return false;
  }

  /// True iff the location root `node` passes the first-operand kind filter.
  bool MatchesChild0(const PlanNode& node) const {
    if (child0_kinds_.empty()) return true;
    if (node.arity() == 0) return false;
    OpKind k = node.child(0)->kind();
    for (OpKind ck : child0_kinds_) {
      if (ck == k) return true;
    }
    return false;
  }

  /// True for rules that introduce additional operations (e.g. r → rdup(r)).
  /// The default heuristic of Section 6 excludes them so enumeration
  /// terminates.
  bool expanding() const { return expanding_; }

  /// Attempts to apply the rule with `node` as the location root.
  /// Returns nullopt if the left-hand side does not match or a precondition
  /// fails. Applicability gating per Figure 5 happens in the enumerator.
  /// `ctx` provides the bottom-up annotations the preconditions consult; an
  /// AnnotatedPlan converts implicitly.
  std::optional<RuleMatch> TryApply(const PlanPtr& node,
                                    const PlanContext& ctx) const {
    return apply_(node, ctx);
  }

 private:
  std::string id_;
  std::string description_;
  EquivalenceType equivalence_;
  bool expanding_;
  ApplyFn apply_;
  std::vector<OpKind> root_kinds_;
  std::vector<OpKind> child0_kinds_;
};

/// Which rule families to instantiate.
struct RuleSetOptions {
  bool figure4_rules = true;       // D*, C*, S*, B*
  bool conventional_rules = true;  // P*, J*, A*, F*, G*
  bool sort_pushdown_rules = true; // SP*
  bool transfer_rules = true;      // T*
  /// Include expanding rules such as r → rdup(r); OFF by default so the
  /// enumeration algorithm terminates (Section 6).
  bool expanding_rules = false;
};

/// Builds the default rule catalogue.
std::vector<Rule> DefaultRuleSet(const RuleSetOptions& options = {});

/// Finds a rule by identifier; nullptr if absent.
const Rule* FindRule(const std::vector<Rule>& rules, const std::string& id);

// Internal: family constructors (one translation unit per family).
void AppendFigure4Rules(std::vector<Rule>* out, bool expanding_rules);
void AppendConventionalRules(std::vector<Rule>* out);
void AppendSortPushdownRules(std::vector<Rule>* out);
void AppendTransferRules(std::vector<Rule>* out);

}  // namespace tqp

#endif  // TQP_RULES_RULES_H_
