// Sort pushdown rules (Section 4.4): "if we wish to sort the result of some
// operation, the sorting can be performed on the argument relation(s) for
// that operation if the operation does not destroy the ordering". All
// operations except ⊎, ∪ and ∪T fully or partially preserve the ordering of
// their first argument.
#include <set>

#include "rules/rule_helpers.h"
#include "rules/rules.h"

namespace tqp {

using rules_internal::Info;
using rules_internal::Loc;
using rules_internal::SortSpecIsTimeFree;

namespace {

using ET = EquivalenceType;

std::optional<RuleMatch> NoMatch() { return std::nullopt; }

// sort_A(op(r, ...)) -> op(sort_A(r), ...) for operators that preserve the
// ordering of their first argument.
std::optional<RuleMatch> PushSortThroughFirstChild(const PlanPtr& n,
                                                   OpKind op,
                                                   bool require_time_free) {
  if (n->kind() != OpKind::kSort) return NoMatch();
  const PlanPtr& inner = n->child(0);
  if (inner->kind() != op) return NoMatch();
  if (require_time_free && !SortSpecIsTimeFree(n->sort_spec())) {
    return NoMatch();
  }
  std::vector<PlanPtr> children = inner->children();
  children[0] = PlanNode::Sort(children[0], n->sort_spec());
  PlanPtr rep = PlanNode::WithChildren(inner, std::move(children));
  std::vector<const PlanNode*> loc = {n.get(), inner.get()};
  for (const PlanPtr& c : inner->children()) loc.push_back(c.get());
  return RuleMatch{rep, std::move(loc)};
}

}  // namespace

void AppendSortPushdownRules(std::vector<Rule>* out) {
  // (SP1) sort_A(σp(r)) ≡L σp(sort_A(r)), both directions.
  out->emplace_back(
      "SP1", "sort_A(select_p(r)) -> select_p(sort_A(r))", ET::kList, false,
      [](const PlanPtr& n, const PlanContext& ann) {
        (void)ann;
        return PushSortThroughFirstChild(n, OpKind::kSelect, false);
      },
      std::vector<OpKind>{OpKind::kSort},
      std::vector<OpKind>{OpKind::kSelect});
  out->emplace_back(
      "SP1'", "select_p(sort_A(r)) -> sort_A(select_p(r))", ET::kList, false,
      [](const PlanPtr& n, const PlanContext& ann)
          -> std::optional<RuleMatch> {
        (void)ann;
        if (n->kind() != OpKind::kSelect) return NoMatch();
        const PlanPtr& srt = n->child(0);
        if (srt->kind() != OpKind::kSort) return NoMatch();
        const PlanPtr& r = srt->child(0);
        PlanPtr rep = PlanNode::Sort(PlanNode::Select(r, n->predicate()),
                                     srt->sort_spec());
        return RuleMatch{rep, Loc({&n, &srt, &r})};
      },
      std::vector<OpKind>{OpKind::kSelect},
      std::vector<OpKind>{OpKind::kSort});

  // (SP2) sort_A(πF(r)) ≡L πF(sort_A'(r)) when every key of A is a plain
  // pass-through column; A' uses the input-side names.
  out->emplace_back(
      "SP2",
      "sort_A(project_F(r)) -> project_F(sort_A'(r))  [A passed through]",
      ET::kList, false,
      [](const PlanPtr& n, const PlanContext& ann)
          -> std::optional<RuleMatch> {
        (void)ann;
        if (n->kind() != OpKind::kSort) return NoMatch();
        const PlanPtr& proj = n->child(0);
        if (proj->kind() != OpKind::kProject) return NoMatch();
        SortSpec pushed;
        for (const SortKey& k : n->sort_spec()) {
          bool found = false;
          for (const ProjItem& item : proj->projections()) {
            if (item.name == k.attr &&
                item.expr->kind() == ExprKind::kAttr) {
              pushed.push_back(SortKey{item.expr->attr_name(), k.ascending});
              found = true;
              break;
            }
          }
          if (!found) return NoMatch();
        }
        const PlanPtr& r = proj->child(0);
        PlanPtr rep = PlanNode::Project(PlanNode::Sort(r, pushed),
                                        proj->projections());
        return RuleMatch{rep, Loc({&n, &proj, &r})};
      },
      std::vector<OpKind>{OpKind::kSort},
      std::vector<OpKind>{OpKind::kProject});

  // (SP3) sort_A(r1 × r2) ≡L sort_A'(r1) × r2 when A only references
  // left-side columns.
  out->emplace_back(
      "SP3", "sort_A(r1 x r2) -> sort_A'(r1) x r2  [A from r1]", ET::kList,
      false,
      [](const PlanPtr& n, const PlanContext& ann)
          -> std::optional<RuleMatch> {
        if (n->kind() != OpKind::kSort) return NoMatch();
        const PlanPtr& prod = n->child(0);
        if (prod->kind() != OpKind::kProduct) return NoMatch();
        const PlanPtr& r1 = prod->child(0);
        const PlanPtr& r2 = prod->child(1);
        const Schema& s1 = Info(ann, r1).schema;
        const Schema& s2 = Info(ann, r2).schema;
        SortSpec pushed;
        for (const SortKey& k : n->sort_spec()) {
          // Map the product-output name back to the left-side name.
          std::string name = k.attr;
          if (name.rfind("1.", 0) == 0) name = name.substr(2);
          if (!s1.HasAttr(name)) return NoMatch();
          std::string out_name =
              s2.HasAttr(name) ? "1." + name : name;
          if (out_name != k.attr) return NoMatch();
          pushed.push_back(SortKey{name, k.ascending});
        }
        PlanPtr rep = PlanNode::Product(PlanNode::Sort(r1, pushed), r2);
        return RuleMatch{rep, Loc({&n, &prod, &r1, &r2})};
      },
      std::vector<OpKind>{OpKind::kSort},
      std::vector<OpKind>{OpKind::kProduct});

  // (SP4) sort_A(r1 \ r2) ≡L sort_A(r1) \ r2.
  out->emplace_back(
      "SP4", "sort_A(r1 \\ r2) -> sort_A(r1) \\ r2", ET::kList, false,
      [](const PlanPtr& n, const PlanContext& ann) {
        (void)ann;
        return PushSortThroughFirstChild(n, OpKind::kDifference, false);
      },
      std::vector<OpKind>{OpKind::kSort},
      std::vector<OpKind>{OpKind::kDifference});

  // (SP5) sort_A(r1 \T r2) ≡L sort_A(r1) \T r2, A time-free (\T rewrites
  // the time attributes).
  out->emplace_back(
      "SP5", "sort_A(r1 \\T r2) -> sort_A(r1) \\T r2  [A time-free]",
      ET::kList, false,
      [](const PlanPtr& n, const PlanContext& ann) {
        (void)ann;
        return PushSortThroughFirstChild(n, OpKind::kDifferenceT, true);
      },
      std::vector<OpKind>{OpKind::kSort},
      std::vector<OpKind>{OpKind::kDifferenceT});

  // (SP6) sort_A(rdup(r)) ≡L rdup(sort_A'(r)); the 1.T1/1.T2 renames map
  // back to T1/T2 below the rdup.
  out->emplace_back(
      "SP6", "sort_A(rdup(r)) -> rdup(sort_A'(r))", ET::kList, false,
      [](const PlanPtr& n, const PlanContext& ann)
          -> std::optional<RuleMatch> {
        if (n->kind() != OpKind::kSort) return NoMatch();
        const PlanPtr& dup = n->child(0);
        if (dup->kind() != OpKind::kRdup) return NoMatch();
        const PlanPtr& r = dup->child(0);
        SortSpec pushed = n->sort_spec();
        if (Info(ann, r).schema.IsTemporal()) {
          for (SortKey& k : pushed) {
            if (k.attr == "1.T1") k.attr = kT1;
            if (k.attr == "1.T2") k.attr = kT2;
          }
        }
        PlanPtr rep = PlanNode::Rdup(PlanNode::Sort(r, pushed));
        return RuleMatch{rep, Loc({&n, &dup, &r})};
      },
      std::vector<OpKind>{OpKind::kSort},
      std::vector<OpKind>{OpKind::kRdup});

  // (SP7) sort_A(rdupT(r)) ≡L rdupT(sort_A(r)), A time-free: a stable sort
  // on value attributes preserves the within-class order rdupT depends on.
  out->emplace_back(
      "SP7", "sort_A(rdupT(r)) -> rdupT(sort_A(r))  [A time-free]", ET::kList,
      false,
      [](const PlanPtr& n, const PlanContext& ann) {
        (void)ann;
        return PushSortThroughFirstChild(n, OpKind::kRdupT, true);
      },
      std::vector<OpKind>{OpKind::kSort},
      std::vector<OpKind>{OpKind::kRdupT});

  // (SP8) sort_A(coalT(r)) ≡L coalT(sort_A(r)), A time-free.
  out->emplace_back(
      "SP8", "sort_A(coalT(r)) -> coalT(sort_A(r))  [A time-free]", ET::kList,
      false,
      [](const PlanPtr& n, const PlanContext& ann) {
        (void)ann;
        return PushSortThroughFirstChild(n, OpKind::kCoalesce, true);
      },
      std::vector<OpKind>{OpKind::kSort},
      std::vector<OpKind>{OpKind::kCoalesce});

  // (SP9/SP9T) sort_A(ℵ_{G;F}(r)) ≡L ℵ_{G;F}(sort_A(r)) when attr(A) ⊆ G:
  // groups appear in first-occurrence order, so pre-sorting the input by
  // grouping attributes orders the groups.
  auto push_sort_agg = [](OpKind op) {
    return [op](const PlanPtr& n, const PlanContext& ann)
               -> std::optional<RuleMatch> {
      (void)ann;
      if (n->kind() != OpKind::kSort) return NoMatch();
      const PlanPtr& agg = n->child(0);
      if (agg->kind() != op) return NoMatch();
      std::set<std::string> groups(agg->group_by().begin(),
                                   agg->group_by().end());
      for (const SortKey& k : n->sort_spec()) {
        if (groups.count(k.attr) == 0) return NoMatch();
      }
      const PlanPtr& r = agg->child(0);
      PlanPtr srt = PlanNode::Sort(r, n->sort_spec());
      PlanPtr rep =
          op == OpKind::kAggregate
              ? PlanNode::Aggregate(srt, agg->group_by(), agg->aggregates())
              : PlanNode::AggregateT(srt, agg->group_by(), agg->aggregates());
      return RuleMatch{rep, Loc({&n, &agg, &r})};
    };
  };
  out->emplace_back("SP9",
                    "sort_A(agg_{G;F}(r)) -> agg_{G;F}(sort_A(r))  [A in G]",
                    ET::kList, false, push_sort_agg(OpKind::kAggregate),
      std::vector<OpKind>{OpKind::kSort},
      std::vector<OpKind>{OpKind::kAggregate});
  out->emplace_back("SP9T",
                    "sort_A(aggT_{G;F}(r)) -> aggT_{G;F}(sort_A(r))  [A in G]",
                    ET::kList, false, push_sort_agg(OpKind::kAggregateT),
      std::vector<OpKind>{OpKind::kSort},
      std::vector<OpKind>{OpKind::kAggregateT});
}

}  // namespace tqp
