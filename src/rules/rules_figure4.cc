// The transformation rules of Figure 4: duplicate elimination (D1–D6),
// coalescing (C1–C10), sorting (S1–S3), and the ≡SM coalescing variants of
// Böhlen et al. (B1–B3) discussed in Section 4.3.
#include "rules/rule_helpers.h"
#include "rules/rules.h"

namespace tqp {

using rules_internal::Info;
using rules_internal::IsPassThroughProjection;
using rules_internal::Loc;
using rules_internal::ProjectionIsTimeFree;
using rules_internal::ProjectionKeepsTimes;

namespace {

using ET = EquivalenceType;

std::optional<RuleMatch> NoMatch() { return std::nullopt; }

}  // namespace

void AppendFigure4Rules(std::vector<Rule>* out, bool expanding_rules) {
  // ---- Duplicate elimination -------------------------------------------
  // (D1) rdup(r) ≡L r, if r has no duplicates. Restricted to non-temporal
  // inputs: for temporal inputs rdup renames T1/T2 (Figure 3), so dropping
  // it would change the schema.
  out->emplace_back(
      "D1", "rdup(r) -> r  [r duplicate-free]", ET::kList, false,
      [](const PlanPtr& n, const PlanContext& ann)
          -> std::optional<RuleMatch> {
        if (n->kind() != OpKind::kRdup) return NoMatch();
        const PlanPtr& r = n->child(0);
        if (Info(ann, r).schema.IsTemporal()) return NoMatch();
        if (!Info(ann, r).duplicate_free) return NoMatch();
        return RuleMatch{r, Loc({&n, &r})};
      },
      std::vector<OpKind>{OpKind::kRdup});

  // (D2) rdupT(r) ≡L r, if r has no duplicates in snapshots.
  out->emplace_back(
      "D2", "rdupT(r) -> r  [r snapshot-duplicate-free]", ET::kList, false,
      [](const PlanPtr& n, const PlanContext& ann)
          -> std::optional<RuleMatch> {
        if (n->kind() != OpKind::kRdupT) return NoMatch();
        const PlanPtr& r = n->child(0);
        if (!Info(ann, r).snapshot_duplicate_free) return NoMatch();
        return RuleMatch{r, Loc({&n, &r})};
      },
      std::vector<OpKind>{OpKind::kRdupT});

  // (D3) rdup(r) ≡S r (non-temporal inputs; see D1 note).
  out->emplace_back(
      "D3", "rdup(r) -> r  (set level)", ET::kSet, false,
      [](const PlanPtr& n, const PlanContext& ann)
          -> std::optional<RuleMatch> {
        if (n->kind() != OpKind::kRdup) return NoMatch();
        const PlanPtr& r = n->child(0);
        if (Info(ann, r).schema.IsTemporal()) return NoMatch();
        return RuleMatch{r, Loc({&n, &r})};
      },
      std::vector<OpKind>{OpKind::kRdup});

  // (D4) rdupT(r) ≡SS r.
  out->emplace_back(
      "D4", "rdupT(r) -> r  (snapshot-set level)", ET::kSnapshotSet, false,
      [](const PlanPtr& n, const PlanContext& ann)
          -> std::optional<RuleMatch> {
        (void)ann;
        if (n->kind() != OpKind::kRdupT) return NoMatch();
        const PlanPtr& r = n->child(0);
        return RuleMatch{r, Loc({&n, &r})};
      },
      std::vector<OpKind>{OpKind::kRdupT});

  // (D5) rdup(r1 ∪ r2) ≡L rdup(r1) ∪ rdup(r2), both directions.
  out->emplace_back(
      "D5", "rdup(r1 U r2) -> rdup(r1) U rdup(r2)", ET::kList, false,
      [](const PlanPtr& n, const PlanContext& ann)
          -> std::optional<RuleMatch> {
        (void)ann;
        if (n->kind() != OpKind::kRdup) return NoMatch();
        const PlanPtr& u = n->child(0);
        if (u->kind() != OpKind::kUnion) return NoMatch();
        const PlanPtr& r1 = u->child(0);
        const PlanPtr& r2 = u->child(1);
        PlanPtr rep = PlanNode::Union(PlanNode::Rdup(r1), PlanNode::Rdup(r2));
        return RuleMatch{rep, Loc({&n, &u, &r1, &r2})};
      },
      std::vector<OpKind>{OpKind::kRdup},
      std::vector<OpKind>{OpKind::kUnion});
  out->emplace_back(
      "D5'", "rdup(r1) U rdup(r2) -> rdup(r1 U r2)", ET::kList, false,
      [](const PlanPtr& n, const PlanContext& ann)
          -> std::optional<RuleMatch> {
        (void)ann;
        if (n->kind() != OpKind::kUnion) return NoMatch();
        const PlanPtr& d1 = n->child(0);
        const PlanPtr& d2 = n->child(1);
        if (d1->kind() != OpKind::kRdup || d2->kind() != OpKind::kRdup) {
          return NoMatch();
        }
        const PlanPtr& r1 = d1->child(0);
        const PlanPtr& r2 = d2->child(0);
        PlanPtr rep = PlanNode::Rdup(PlanNode::Union(r1, r2));
        return RuleMatch{rep, Loc({&n, &d1, &d2, &r1, &r2})};
      },
      std::vector<OpKind>{OpKind::kUnion},
      std::vector<OpKind>{OpKind::kRdup});

  // (D6) rdupT(r1 ∪T r2) ≡L rdupT(r1) ∪T rdupT(r2), both directions.
  out->emplace_back(
      "D6", "rdupT(r1 U^T r2) -> rdupT(r1) U^T rdupT(r2)", ET::kList, false,
      [](const PlanPtr& n, const PlanContext& ann)
          -> std::optional<RuleMatch> {
        (void)ann;
        if (n->kind() != OpKind::kRdupT) return NoMatch();
        const PlanPtr& u = n->child(0);
        if (u->kind() != OpKind::kUnionT) return NoMatch();
        const PlanPtr& r1 = u->child(0);
        const PlanPtr& r2 = u->child(1);
        PlanPtr rep =
            PlanNode::UnionT(PlanNode::RdupT(r1), PlanNode::RdupT(r2));
        return RuleMatch{rep, Loc({&n, &u, &r1, &r2})};
      },
      std::vector<OpKind>{OpKind::kRdupT},
      std::vector<OpKind>{OpKind::kUnionT});
  out->emplace_back(
      "D6'", "rdupT(r1) U^T rdupT(r2) -> rdupT(r1 U^T r2)", ET::kList, false,
      [](const PlanPtr& n, const PlanContext& ann)
          -> std::optional<RuleMatch> {
        (void)ann;
        if (n->kind() != OpKind::kUnionT) return NoMatch();
        const PlanPtr& d1 = n->child(0);
        const PlanPtr& d2 = n->child(1);
        if (d1->kind() != OpKind::kRdupT || d2->kind() != OpKind::kRdupT) {
          return NoMatch();
        }
        const PlanPtr& r1 = d1->child(0);
        const PlanPtr& r2 = d2->child(0);
        PlanPtr rep = PlanNode::RdupT(PlanNode::UnionT(r1, r2));
        return RuleMatch{rep, Loc({&n, &d1, &d2, &r1, &r2})};
      },
      std::vector<OpKind>{OpKind::kUnionT},
      std::vector<OpKind>{OpKind::kRdupT});

  // ---- Coalescing -------------------------------------------------------
  // (C1) coalT(r) ≡L r, if r is coalesced.
  out->emplace_back(
      "C1", "coalT(r) -> r  [r coalesced]", ET::kList, false,
      [](const PlanPtr& n, const PlanContext& ann)
          -> std::optional<RuleMatch> {
        if (n->kind() != OpKind::kCoalesce) return NoMatch();
        const PlanPtr& r = n->child(0);
        if (!Info(ann, r).coalesced) return NoMatch();
        return RuleMatch{r, Loc({&n, &r})};
      },
      std::vector<OpKind>{OpKind::kCoalesce});

  // (C2) coalT(r) ≡SM r.
  out->emplace_back(
      "C2", "coalT(r) -> r  (snapshot-multiset level)", ET::kSnapshotMultiset,
      false,
      [](const PlanPtr& n, const PlanContext& ann)
          -> std::optional<RuleMatch> {
        (void)ann;
        if (n->kind() != OpKind::kCoalesce) return NoMatch();
        const PlanPtr& r = n->child(0);
        return RuleMatch{r, Loc({&n, &r})};
      },
      std::vector<OpKind>{OpKind::kCoalesce});

  // (C3) coalT(σP(r)) ≡L σP(coalT(r)), if T1,T2 ∉ attr(P); both directions.
  out->emplace_back(
      "C3", "coalT(select_P(r)) -> select_P(coalT(r))  [P time-free]",
      ET::kList, false,
      [](const PlanPtr& n, const PlanContext& ann)
          -> std::optional<RuleMatch> {
        (void)ann;
        if (n->kind() != OpKind::kCoalesce) return NoMatch();
        const PlanPtr& sel = n->child(0);
        if (sel->kind() != OpKind::kSelect) return NoMatch();
        if (!sel->predicate()->IsTimeFree()) return NoMatch();
        const PlanPtr& r = sel->child(0);
        PlanPtr rep =
            PlanNode::Select(PlanNode::Coalesce(r), sel->predicate());
        return RuleMatch{rep, Loc({&n, &sel, &r})};
      },
      std::vector<OpKind>{OpKind::kCoalesce},
      std::vector<OpKind>{OpKind::kSelect});
  out->emplace_back(
      "C3'", "select_P(coalT(r)) -> coalT(select_P(r))  [P time-free]",
      ET::kList, false,
      [](const PlanPtr& n, const PlanContext& ann)
          -> std::optional<RuleMatch> {
        (void)ann;
        if (n->kind() != OpKind::kSelect) return NoMatch();
        const PlanPtr& coal = n->child(0);
        if (coal->kind() != OpKind::kCoalesce) return NoMatch();
        if (!n->predicate()->IsTimeFree()) return NoMatch();
        const PlanPtr& r = coal->child(0);
        PlanPtr rep =
            PlanNode::Coalesce(PlanNode::Select(r, n->predicate()));
        return RuleMatch{rep, Loc({&n, &coal, &r})};
      },
      std::vector<OpKind>{OpKind::kSelect},
      std::vector<OpKind>{OpKind::kCoalesce});

  // (C4) π_f(coalT(r)) ≡S π_f(r), if T1,T2 ∉ attr(f).
  out->emplace_back(
      "C4", "project_f(coalT(r)) -> project_f(r)  [f time-free, set level]",
      ET::kSet, false,
      [](const PlanPtr& n, const PlanContext& ann)
          -> std::optional<RuleMatch> {
        (void)ann;
        if (n->kind() != OpKind::kProject) return NoMatch();
        const PlanPtr& coal = n->child(0);
        if (coal->kind() != OpKind::kCoalesce) return NoMatch();
        if (!ProjectionIsTimeFree(n->projections())) return NoMatch();
        const PlanPtr& r = coal->child(0);
        PlanPtr rep = PlanNode::Project(r, n->projections());
        return RuleMatch{rep, Loc({&n, &coal, &r})};
      },
      std::vector<OpKind>{OpKind::kProject},
      std::vector<OpKind>{OpKind::kCoalesce});

  // (C5) coalT(coalT(r1) ⊎ coalT(r2)) ≡L coalT(r1 ⊎ r2).
  out->emplace_back(
      "C5", "coalT(coalT(r1) UNION-ALL coalT(r2)) -> coalT(r1 UNION-ALL r2)",
      ET::kList, false,
      [](const PlanPtr& n, const PlanContext& ann)
          -> std::optional<RuleMatch> {
        (void)ann;
        if (n->kind() != OpKind::kCoalesce) return NoMatch();
        const PlanPtr& u = n->child(0);
        if (u->kind() != OpKind::kUnionAll) return NoMatch();
        const PlanPtr& c1 = u->child(0);
        const PlanPtr& c2 = u->child(1);
        if (c1->kind() != OpKind::kCoalesce || c2->kind() != OpKind::kCoalesce) {
          return NoMatch();
        }
        const PlanPtr& r1 = c1->child(0);
        const PlanPtr& r2 = c2->child(0);
        PlanPtr rep = PlanNode::Coalesce(PlanNode::UnionAll(r1, r2));
        return RuleMatch{rep, Loc({&n, &u, &c1, &c2, &r1, &r2})};
      },
      std::vector<OpKind>{OpKind::kCoalesce},
      std::vector<OpKind>{OpKind::kUnionAll});

  // (C6) coalT(coalT(r1) ∪T coalT(r2)) ≡L coalT(r1 ∪T r2).
  out->emplace_back(
      "C6", "coalT(coalT(r1) U^T coalT(r2)) -> coalT(r1 U^T r2)", ET::kList,
      false,
      [](const PlanPtr& n, const PlanContext& ann)
          -> std::optional<RuleMatch> {
        (void)ann;
        if (n->kind() != OpKind::kCoalesce) return NoMatch();
        const PlanPtr& u = n->child(0);
        if (u->kind() != OpKind::kUnionT) return NoMatch();
        const PlanPtr& c1 = u->child(0);
        const PlanPtr& c2 = u->child(1);
        if (c1->kind() != OpKind::kCoalesce || c2->kind() != OpKind::kCoalesce) {
          return NoMatch();
        }
        const PlanPtr& r1 = c1->child(0);
        const PlanPtr& r2 = c2->child(0);
        PlanPtr rep = PlanNode::Coalesce(PlanNode::UnionT(r1, r2));
        return RuleMatch{rep, Loc({&n, &u, &c1, &c2, &r1, &r2})};
      },
      std::vector<OpKind>{OpKind::kCoalesce},
      std::vector<OpKind>{OpKind::kUnionT});

  // (C7) coalT(ℵT(coalT(r))) ≡L coalT(ℵT(r)).
  out->emplace_back(
      "C7", "coalT(aggT(coalT(r))) -> coalT(aggT(r))", ET::kList, false,
      [](const PlanPtr& n, const PlanContext& ann)
          -> std::optional<RuleMatch> {
        (void)ann;
        if (n->kind() != OpKind::kCoalesce) return NoMatch();
        const PlanPtr& agg = n->child(0);
        if (agg->kind() != OpKind::kAggregateT) return NoMatch();
        const PlanPtr& inner = agg->child(0);
        if (inner->kind() != OpKind::kCoalesce) return NoMatch();
        const PlanPtr& r = inner->child(0);
        PlanPtr rep = PlanNode::Coalesce(PlanNode::AggregateT(
            r, agg->group_by(), agg->aggregates()));
        return RuleMatch{rep, Loc({&n, &agg, &inner, &r})};
      },
      std::vector<OpKind>{OpKind::kCoalesce},
      std::vector<OpKind>{OpKind::kAggregateT});

  // (C8) coalT(π_{f,T1,T2}(coalT(r))) ≡L coalT(π_{f,T1,T2}(r)),
  //      if r has no duplicates in snapshots.
  // DEVIATION (verified by test_rules): the paper's stated precondition is
  // insufficient when the projection drops non-time attributes — dropping
  // attributes can merge value-equivalence classes and introduce snapshot
  // duplicates into π(r), after which the two sides diverge even as
  // multisets (see RuleNegativeTest.C8NeedsClassPreservingProjection). We
  // therefore additionally require the projection to be a permutation; the
  // unrestricted shape remains available at the ≡SM level as B1.
  out->emplace_back(
      "C8",
      "coalT(project_{f,T1,T2}(coalT(r))) -> coalT(project_{f,T1,T2}(r))  "
      "[r snapshot-duplicate-free; permutation projection]",
      ET::kList, false,
      [](const PlanPtr& n, const PlanContext& ann)
          -> std::optional<RuleMatch> {
        if (n->kind() != OpKind::kCoalesce) return NoMatch();
        const PlanPtr& proj = n->child(0);
        if (proj->kind() != OpKind::kProject) return NoMatch();
        if (!ProjectionKeepsTimes(proj->projections())) return NoMatch();
        const PlanPtr& inner = proj->child(0);
        if (inner->kind() != OpKind::kCoalesce) return NoMatch();
        const PlanPtr& r = inner->child(0);
        if (!Info(ann, r).snapshot_duplicate_free) return NoMatch();
        if (!rules_internal::ProjectionIsPermutationOf(
                proj->projections(), Info(ann, r).schema)) {
          return NoMatch();
        }
        PlanPtr rep =
            PlanNode::Coalesce(PlanNode::Project(r, proj->projections()));
        return RuleMatch{rep, Loc({&n, &proj, &inner, &r})};
      },
      std::vector<OpKind>{OpKind::kCoalesce},
      std::vector<OpKind>{OpKind::kProject});

  // (C9) coalT(π_A(r1 ×T r2)) ≡ π_A(coalT(r1) ×T coalT(r2)),
  //      A = Ω \ {1.T1,1.T2,2.T1,2.T2}, r1 and r2 snapshot-duplicate-free.
  // DEVIATION (verified by test_rules): the paper claims ≡L; under our
  // left-major ×T list order and head-position coalescing the two sides are
  // multiset-equal but can interleave rows differently, so we claim ≡M.
  // The unrestricted shape remains available at the ≡SM level as B2.
  out->emplace_back(
      "C9",
      "coalT(project_A(r1 xT r2)) -> project_A(coalT(r1) xT coalT(r2))  "
      "[A drops argument timestamps; args snapshot-duplicate-free]",
      ET::kMultiset, false,
      [](const PlanPtr& n, const PlanContext& ann)
          -> std::optional<RuleMatch> {
        if (n->kind() != OpKind::kCoalesce) return NoMatch();
        const PlanPtr& proj = n->child(0);
        if (proj->kind() != OpKind::kProject) return NoMatch();
        const PlanPtr& prod = proj->child(0);
        if (prod->kind() != OpKind::kProductT) return NoMatch();
        const PlanPtr& r1 = prod->child(0);
        const PlanPtr& r2 = prod->child(1);
        if (!Info(ann, r1).snapshot_duplicate_free ||
            !Info(ann, r2).snapshot_duplicate_free) {
          return NoMatch();
        }
        // The projection must pass through every product attribute except
        // the four retained argument timestamps.
        const Schema& prod_schema = Info(ann, prod).schema;
        if (!IsPassThroughProjection(proj->projections())) return NoMatch();
        std::vector<std::string> expected;
        for (const Attribute& a : prod_schema.attrs()) {
          if (a.name == "1.T1" || a.name == "1.T2" || a.name == "2.T1" ||
              a.name == "2.T2") {
            continue;
          }
          expected.push_back(a.name);
        }
        if (proj->projections().size() != expected.size()) return NoMatch();
        for (size_t i = 0; i < expected.size(); ++i) {
          const ProjItem& item = proj->projections()[i];
          if (item.expr->attr_name() != expected[i] ||
              item.name != expected[i]) {
            return NoMatch();
          }
        }
        PlanPtr rep = PlanNode::Project(
            PlanNode::ProductT(PlanNode::Coalesce(r1), PlanNode::Coalesce(r2)),
            proj->projections());
        return RuleMatch{rep, Loc({&n, &proj, &prod, &r1, &r2})};
      },
      std::vector<OpKind>{OpKind::kCoalesce},
      std::vector<OpKind>{OpKind::kProject});

  // (C10) coalT(r1 \T r2) ≡M coalT(r1) \T coalT(r2),
  //       if r1 has no duplicates in snapshots; both directions.
  out->emplace_back(
      "C10",
      "coalT(r1 \\T r2) -> coalT(r1) \\T coalT(r2)  "
      "[r1 snapshot-duplicate-free]",
      ET::kMultiset, false,
      [](const PlanPtr& n, const PlanContext& ann)
          -> std::optional<RuleMatch> {
        if (n->kind() != OpKind::kCoalesce) return NoMatch();
        const PlanPtr& diff = n->child(0);
        if (diff->kind() != OpKind::kDifferenceT) return NoMatch();
        const PlanPtr& r1 = diff->child(0);
        const PlanPtr& r2 = diff->child(1);
        if (!Info(ann, r1).snapshot_duplicate_free) return NoMatch();
        PlanPtr rep = PlanNode::DifferenceT(PlanNode::Coalesce(r1),
                                            PlanNode::Coalesce(r2));
        return RuleMatch{rep, Loc({&n, &diff, &r1, &r2})};
      },
      std::vector<OpKind>{OpKind::kCoalesce},
      std::vector<OpKind>{OpKind::kDifferenceT});
  out->emplace_back(
      "C10'",
      "coalT(r1) \\T coalT(r2) -> coalT(r1 \\T r2)  "
      "[r1 snapshot-duplicate-free]",
      ET::kMultiset, false,
      [](const PlanPtr& n, const PlanContext& ann)
          -> std::optional<RuleMatch> {
        if (n->kind() != OpKind::kDifferenceT) return NoMatch();
        const PlanPtr& c1 = n->child(0);
        const PlanPtr& c2 = n->child(1);
        if (c1->kind() != OpKind::kCoalesce || c2->kind() != OpKind::kCoalesce) {
          return NoMatch();
        }
        const PlanPtr& r1 = c1->child(0);
        const PlanPtr& r2 = c2->child(0);
        if (!Info(ann, r1).snapshot_duplicate_free) return NoMatch();
        PlanPtr rep = PlanNode::Coalesce(PlanNode::DifferenceT(r1, r2));
        return RuleMatch{rep, Loc({&n, &c1, &c2, &r1, &r2})};
      },
      std::vector<OpKind>{OpKind::kDifferenceT},
      std::vector<OpKind>{OpKind::kCoalesce});

  // ---- Sorting ----------------------------------------------------------
  // (S1) sort_A(r) ≡L r, if IsPrefixOf(A, Order(r)).
  out->emplace_back(
      "S1", "sort_A(r) -> r  [A prefix of Order(r)]", ET::kList, false,
      [](const PlanPtr& n, const PlanContext& ann)
          -> std::optional<RuleMatch> {
        if (n->kind() != OpKind::kSort) return NoMatch();
        const PlanPtr& r = n->child(0);
        if (!IsPrefixOf(n->sort_spec(), Info(ann, r).order)) return NoMatch();
        return RuleMatch{r, Loc({&n, &r})};
      },
      std::vector<OpKind>{OpKind::kSort});

  // (S2) sort_A(r) ≡M r.
  out->emplace_back(
      "S2", "sort_A(r) -> r  (multiset level)", ET::kMultiset, false,
      [](const PlanPtr& n, const PlanContext& ann)
          -> std::optional<RuleMatch> {
        (void)ann;
        if (n->kind() != OpKind::kSort) return NoMatch();
        const PlanPtr& r = n->child(0);
        return RuleMatch{r, Loc({&n, &r})};
      },
      std::vector<OpKind>{OpKind::kSort});

  // (S3) sort_A(sort_B(r)) ≡L sort_A(r), if IsPrefixOf(B, A).
  out->emplace_back(
      "S3", "sort_A(sort_B(r)) -> sort_A(r)  [B prefix of A]", ET::kList,
      false,
      [](const PlanPtr& n, const PlanContext& ann)
          -> std::optional<RuleMatch> {
        (void)ann;
        if (n->kind() != OpKind::kSort) return NoMatch();
        const PlanPtr& inner = n->child(0);
        if (inner->kind() != OpKind::kSort) return NoMatch();
        if (!IsPrefixOf(inner->sort_spec(), n->sort_spec())) return NoMatch();
        const PlanPtr& r = inner->child(0);
        PlanPtr rep = PlanNode::Sort(r, n->sort_spec());
        return RuleMatch{rep, Loc({&n, &inner, &r})};
      },
      std::vector<OpKind>{OpKind::kSort},
      std::vector<OpKind>{OpKind::kSort});

  // ---- Böhlen et al. ≡SM coalescing variants (Section 4.3) --------------
  // (B1) coalT(π_{f,T1,T2}(coalT(r))) ≡SM coalT(π_{f,T1,T2}(r)).
  out->emplace_back(
      "B1",
      "coalT(project_{f,T1,T2}(coalT(r))) -> coalT(project_{f,T1,T2}(r))  "
      "(snapshot-multiset level)",
      ET::kSnapshotMultiset, false,
      [](const PlanPtr& n, const PlanContext& ann)
          -> std::optional<RuleMatch> {
        (void)ann;
        if (n->kind() != OpKind::kCoalesce) return NoMatch();
        const PlanPtr& proj = n->child(0);
        if (proj->kind() != OpKind::kProject) return NoMatch();
        if (!ProjectionKeepsTimes(proj->projections())) return NoMatch();
        const PlanPtr& inner = proj->child(0);
        if (inner->kind() != OpKind::kCoalesce) return NoMatch();
        const PlanPtr& r = inner->child(0);
        PlanPtr rep =
            PlanNode::Coalesce(PlanNode::Project(r, proj->projections()));
        return RuleMatch{rep, Loc({&n, &proj, &inner, &r})};
      },
      std::vector<OpKind>{OpKind::kCoalesce},
      std::vector<OpKind>{OpKind::kProject});

  // (B3) coalT(r1 \T r2) ≡SM coalT(r1) \T coalT(r2) (no precondition).
  out->emplace_back(
      "B3",
      "coalT(r1 \\T r2) -> coalT(r1) \\T coalT(r2)  "
      "(snapshot-multiset level)",
      ET::kSnapshotMultiset, false,
      [](const PlanPtr& n, const PlanContext& ann)
          -> std::optional<RuleMatch> {
        (void)ann;
        if (n->kind() != OpKind::kCoalesce) return NoMatch();
        const PlanPtr& diff = n->child(0);
        if (diff->kind() != OpKind::kDifferenceT) return NoMatch();
        const PlanPtr& r1 = diff->child(0);
        const PlanPtr& r2 = diff->child(1);
        PlanPtr rep = PlanNode::DifferenceT(PlanNode::Coalesce(r1),
                                            PlanNode::Coalesce(r2));
        return RuleMatch{rep, Loc({&n, &diff, &r1, &r2})};
      },
      std::vector<OpKind>{OpKind::kCoalesce},
      std::vector<OpKind>{OpKind::kDifferenceT});

  // ---- Expanding rules (excluded by the default heuristic, Section 6) ---
  if (expanding_rules) {
    // r ≡S rdup(r): introduces a duplicate elimination.
    out->emplace_back(
        "X1", "r -> rdup(r)  (set level, expanding)", ET::kSet, true,
        [](const PlanPtr& n, const PlanContext& ann)
            -> std::optional<RuleMatch> {
          if (Info(ann, n).schema.IsTemporal()) return NoMatch();
          if (n->kind() == OpKind::kRdup) return NoMatch();
          return RuleMatch{PlanNode::Rdup(n), Loc({&n})};
        });
    // r ≡SS rdupT(r).
    out->emplace_back(
        "X2", "r -> rdupT(r)  (snapshot-set level, expanding)",
        ET::kSnapshotSet, true,
        [](const PlanPtr& n, const PlanContext& ann)
            -> std::optional<RuleMatch> {
          if (!Info(ann, n).schema.IsTemporal()) return NoMatch();
          if (n->kind() == OpKind::kRdupT) return NoMatch();
          return RuleMatch{PlanNode::RdupT(n), Loc({&n})};
        });
    // r ≡SM coalT(r).
    out->emplace_back(
        "X3", "r -> coalT(r)  (snapshot-multiset level, expanding)",
        ET::kSnapshotMultiset, true,
        [](const PlanPtr& n, const PlanContext& ann)
            -> std::optional<RuleMatch> {
          if (!Info(ann, n).schema.IsTemporal()) return NoMatch();
          if (n->kind() == OpKind::kCoalesce) return NoMatch();
          return RuleMatch{PlanNode::Coalesce(n), Loc({&n})};
        });
    // sort_A insertion at multiset level: r ≡M sort_A(r) for the contract's
    // ORDER BY list (the enumerator provides locations; A comes from the
    // contract).
    out->emplace_back(
        "X4", "r -> sort_A(r)  (multiset level, expanding; A = ORDER BY)",
        ET::kMultiset, true,
        [](const PlanPtr& n, const PlanContext& ann)
            -> std::optional<RuleMatch> {
          const SortSpec& spec = ann.contract().order_by;
          if (spec.empty()) return NoMatch();
          if (n->kind() == OpKind::kSort) return NoMatch();
          for (const SortKey& k : spec) {
            if (!Info(ann, n).schema.HasAttr(k.attr)) return NoMatch();
          }
          return RuleMatch{PlanNode::Sort(n, spec), Loc({&n})};
        });
  }
}

}  // namespace tqp
