// Transfer rules (Section 4.5): moving operations between the stratum and
// the DBMS. Moving an operation across sites preserves only ≡M because the
// DBMS does not guarantee result order — with sort as the only exception.
//
// The rules below push T_S (DBMS → stratum) downward, which relocates the
// operation above it into the stratum; the primed directions pull T_S upward,
// relocating the operation into the DBMS. Symmetric rules exist for T_D.
// Round trips cancel (T-ID rules).
#include "rules/rule_helpers.h"
#include "rules/rules.h"

namespace tqp {

using rules_internal::Loc;

namespace {

using ET = EquivalenceType;

std::optional<RuleMatch> NoMatch() { return std::nullopt; }

bool IsRelocatableUnary(OpKind k) {
  switch (k) {
    case OpKind::kSelect:
    case OpKind::kProject:
    case OpKind::kRdup:
    case OpKind::kAggregate:
    case OpKind::kSort:
    case OpKind::kRdupT:
    case OpKind::kCoalesce:
    case OpKind::kAggregateT:
      return true;
    default:
      return false;
  }
}

bool IsRelocatableBinary(OpKind k) {
  switch (k) {
    case OpKind::kUnionAll:
    case OpKind::kUnion:
    case OpKind::kProduct:
    case OpKind::kDifference:
    case OpKind::kProductT:
    case OpKind::kDifferenceT:
    case OpKind::kUnionT:
      return true;
    default:
      return false;
  }
}

}  // namespace

void AppendTransferRules(std::vector<Rule>* out) {
  // (T-ID1) T_S(T_D(r)) ≡L r;  (T-ID2) T_D(T_S(r)) ≡L r.
  out->emplace_back(
      "T-ID1", "transferS(transferD(r)) -> r", ET::kList, false,
      [](const PlanPtr& n, const PlanContext& ann)
          -> std::optional<RuleMatch> {
        (void)ann;
        if (n->kind() != OpKind::kTransferS) return NoMatch();
        const PlanPtr& td = n->child(0);
        if (td->kind() != OpKind::kTransferD) return NoMatch();
        const PlanPtr& r = td->child(0);
        return RuleMatch{r, Loc({&n, &td, &r})};
      },
      std::vector<OpKind>{OpKind::kTransferS},
      std::vector<OpKind>{OpKind::kTransferD});
  out->emplace_back(
      "T-ID2", "transferD(transferS(r)) -> r", ET::kList, false,
      [](const PlanPtr& n, const PlanContext& ann)
          -> std::optional<RuleMatch> {
        (void)ann;
        if (n->kind() != OpKind::kTransferD) return NoMatch();
        const PlanPtr& ts = n->child(0);
        if (ts->kind() != OpKind::kTransferS) return NoMatch();
        const PlanPtr& r = ts->child(0);
        return RuleMatch{r, Loc({&n, &ts, &r})};
      },
      std::vector<OpKind>{OpKind::kTransferD},
      std::vector<OpKind>{OpKind::kTransferS});

  // (T-U) T_S(op(r)) -> op(T_S(r)): relocate a unary operation from the DBMS
  // to the stratum (push the transfer down). ≡M in general, ≡L for sort.
  out->emplace_back(
      "T-U", "transferS(op(r)) -> op(transferS(r))  (op to stratum)",
      ET::kMultiset, false,
      [](const PlanPtr& n, const PlanContext& ann)
          -> std::optional<RuleMatch> {
        (void)ann;
        if (n->kind() != OpKind::kTransferS) return NoMatch();
        const PlanPtr& op = n->child(0);
        if (!IsRelocatableUnary(op->kind())) return NoMatch();
        if (op->kind() == OpKind::kSort) return NoMatch();  // T-USORT
        const PlanPtr& r = op->child(0);
        PlanPtr rep =
            PlanNode::WithChildren(op, {PlanNode::TransferS(r)});
        return RuleMatch{rep, Loc({&n, &op, &r})};
      },
      std::vector<OpKind>{OpKind::kTransferS},
      std::vector<OpKind>{OpKind::kSelect, OpKind::kProject, OpKind::kRdup, OpKind::kAggregate, OpKind::kRdupT, OpKind::kCoalesce, OpKind::kAggregateT});
  // (T-U') op(T_S(r)) -> T_S(op(r)): relocate a unary operation into the
  // DBMS (pull the transfer up).
  out->emplace_back(
      "T-U'", "op(transferS(r)) -> transferS(op(r))  (op to DBMS)",
      ET::kMultiset, false,
      [](const PlanPtr& n, const PlanContext& ann)
          -> std::optional<RuleMatch> {
        (void)ann;
        if (!IsRelocatableUnary(n->kind())) return NoMatch();
        if (n->kind() == OpKind::kSort) return NoMatch();  // T-USORT'
        const PlanPtr& ts = n->child(0);
        if (ts->kind() != OpKind::kTransferS) return NoMatch();
        const PlanPtr& r = ts->child(0);
        PlanPtr rep =
            PlanNode::TransferS(PlanNode::WithChildren(n, {r}));
        return RuleMatch{rep, Loc({&n, &ts, &r})};
      },
      std::vector<OpKind>{OpKind::kSelect, OpKind::kProject, OpKind::kRdup, OpKind::kAggregate, OpKind::kRdupT, OpKind::kCoalesce, OpKind::kAggregateT},
      std::vector<OpKind>{OpKind::kTransferS});

  // (T-USORT / T-USORT') the sort exception: relocating a sort preserves ≡L.
  out->emplace_back(
      "T-USORT", "transferS(sort_A(r)) -> sort_A(transferS(r))", ET::kList,
      false,
      [](const PlanPtr& n, const PlanContext& ann)
          -> std::optional<RuleMatch> {
        (void)ann;
        if (n->kind() != OpKind::kTransferS) return NoMatch();
        const PlanPtr& op = n->child(0);
        if (op->kind() != OpKind::kSort) return NoMatch();
        const PlanPtr& r = op->child(0);
        PlanPtr rep = PlanNode::Sort(PlanNode::TransferS(r), op->sort_spec());
        return RuleMatch{rep, Loc({&n, &op, &r})};
      },
      std::vector<OpKind>{OpKind::kTransferS},
      std::vector<OpKind>{OpKind::kSort});
  out->emplace_back(
      "T-USORT'", "sort_A(transferS(r)) -> transferS(sort_A(r))", ET::kList,
      false,
      [](const PlanPtr& n, const PlanContext& ann)
          -> std::optional<RuleMatch> {
        (void)ann;
        if (n->kind() != OpKind::kSort) return NoMatch();
        const PlanPtr& ts = n->child(0);
        if (ts->kind() != OpKind::kTransferS) return NoMatch();
        const PlanPtr& r = ts->child(0);
        PlanPtr rep =
            PlanNode::TransferS(PlanNode::Sort(r, n->sort_spec()));
        return RuleMatch{rep, Loc({&n, &ts, &r})};
      },
      std::vector<OpKind>{OpKind::kSort},
      std::vector<OpKind>{OpKind::kTransferS});

  // (T-B) T_S(op(r1, r2)) -> op(T_S(r1), T_S(r2)): relocate a binary
  // operation to the stratum.
  out->emplace_back(
      "T-B", "transferS(op(r1,r2)) -> op(transferS(r1), transferS(r2))",
      ET::kMultiset, false,
      [](const PlanPtr& n, const PlanContext& ann)
          -> std::optional<RuleMatch> {
        (void)ann;
        if (n->kind() != OpKind::kTransferS) return NoMatch();
        const PlanPtr& op = n->child(0);
        if (!IsRelocatableBinary(op->kind())) return NoMatch();
        const PlanPtr& r1 = op->child(0);
        const PlanPtr& r2 = op->child(1);
        PlanPtr rep = PlanNode::WithChildren(
            op, {PlanNode::TransferS(r1), PlanNode::TransferS(r2)});
        return RuleMatch{rep, Loc({&n, &op, &r1, &r2})};
      },
      std::vector<OpKind>{OpKind::kTransferS},
      std::vector<OpKind>{OpKind::kUnionAll, OpKind::kUnion, OpKind::kProduct, OpKind::kDifference, OpKind::kProductT, OpKind::kDifferenceT, OpKind::kUnionT});
  // (T-B') op(T_S(r1), T_S(r2)) -> T_S(op(r1, r2)).
  out->emplace_back(
      "T-B'", "op(transferS(r1), transferS(r2)) -> transferS(op(r1,r2))",
      ET::kMultiset, false,
      [](const PlanPtr& n, const PlanContext& ann)
          -> std::optional<RuleMatch> {
        (void)ann;
        if (!IsRelocatableBinary(n->kind())) return NoMatch();
        const PlanPtr& t1 = n->child(0);
        const PlanPtr& t2 = n->child(1);
        if (t1->kind() != OpKind::kTransferS ||
            t2->kind() != OpKind::kTransferS) {
          return NoMatch();
        }
        const PlanPtr& r1 = t1->child(0);
        const PlanPtr& r2 = t2->child(0);
        PlanPtr rep =
            PlanNode::TransferS(PlanNode::WithChildren(n, {r1, r2}));
        return RuleMatch{rep, Loc({&n, &t1, &t2, &r1, &r2})};
      },
      std::vector<OpKind>{OpKind::kUnionAll, OpKind::kUnion, OpKind::kProduct, OpKind::kDifference, OpKind::kProductT, OpKind::kDifferenceT, OpKind::kUnionT},
      std::vector<OpKind>{OpKind::kTransferS});

  // (T-D / T-D') the symmetric T_D rules: op(T_D(r)) ⇄ T_D(op(r)).
  out->emplace_back(
      "T-D", "transferD(op(r)) -> op(transferD(r))  (op to DBMS)",
      ET::kMultiset, false,
      [](const PlanPtr& n, const PlanContext& ann)
          -> std::optional<RuleMatch> {
        (void)ann;
        if (n->kind() != OpKind::kTransferD) return NoMatch();
        const PlanPtr& op = n->child(0);
        if (!IsRelocatableUnary(op->kind())) return NoMatch();
        const PlanPtr& r = op->child(0);
        PlanPtr rep =
            PlanNode::WithChildren(op, {PlanNode::TransferD(r)});
        return RuleMatch{rep, Loc({&n, &op, &r})};
      },
      std::vector<OpKind>{OpKind::kTransferD},
      std::vector<OpKind>{OpKind::kSelect, OpKind::kProject, OpKind::kRdup, OpKind::kAggregate, OpKind::kSort, OpKind::kRdupT, OpKind::kCoalesce, OpKind::kAggregateT});
  out->emplace_back(
      "T-D'", "op(transferD(r)) -> transferD(op(r))  (op to stratum)",
      ET::kMultiset, false,
      [](const PlanPtr& n, const PlanContext& ann)
          -> std::optional<RuleMatch> {
        (void)ann;
        if (!IsRelocatableUnary(n->kind())) return NoMatch();
        const PlanPtr& td = n->child(0);
        if (td->kind() != OpKind::kTransferD) return NoMatch();
        const PlanPtr& r = td->child(0);
        PlanPtr rep =
            PlanNode::TransferD(PlanNode::WithChildren(n, {r}));
        return RuleMatch{rep, Loc({&n, &td, &r})};
      },
      std::vector<OpKind>{OpKind::kSelect, OpKind::kProject, OpKind::kRdup, OpKind::kAggregate, OpKind::kSort, OpKind::kRdupT, OpKind::kCoalesce, OpKind::kAggregateT},
      std::vector<OpKind>{OpKind::kTransferD});
}

std::vector<Rule> DefaultRuleSet(const RuleSetOptions& options) {
  std::vector<Rule> out;
  if (options.figure4_rules) {
    AppendFigure4Rules(&out, options.expanding_rules);
  }
  if (options.conventional_rules) AppendConventionalRules(&out);
  if (options.sort_pushdown_rules) AppendSortPushdownRules(&out);
  if (options.transfer_rules) AppendTransferRules(&out);
  return out;
}

const Rule* FindRule(const std::vector<Rule>& rules, const std::string& id) {
  for (const Rule& r : rules) {
    if (r.id() == id) return &r;
  }
  return nullptr;
}

}  // namespace tqp
