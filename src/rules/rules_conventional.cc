// Conventional transformation rules extended to lists, with temporal
// counterparts (Section 4.1): selection pushdown (P*), projection rules (J*),
// commutativity/associativity (A*), difference rules (F*), and duplicate
// elimination interplay (G*), plus the remaining Böhlen ≡SM variant (B2).
#include <set>

#include "rules/rule_helpers.h"
#include "rules/rules.h"

namespace tqp {

using rules_internal::Info;
using rules_internal::IsPassThroughProjection;
using rules_internal::Loc;

namespace {

using ET = EquivalenceType;
using Mapping = std::vector<std::pair<std::string, std::string>>;

std::optional<RuleMatch> NoMatch() { return std::nullopt; }

// Output-name -> child-name mapping for one side of a product. `mine` is the
// side's schema, `other` the opposite side's; `prefix` is "1." for the left
// side and "2." for the right. For ×T the time attributes are excluded
// (predicates pushed through ×T must be time-free anyway).
Mapping ProductSideMapping(const Schema& mine, const Schema& other,
                           const char* prefix, bool temporal) {
  Mapping out;
  for (const Attribute& a : mine.attrs()) {
    if (temporal && (a.name == kT1 || a.name == kT2)) continue;
    std::string out_name =
        other.HasAttr(a.name) ? std::string(prefix) + a.name : a.name;
    out.emplace_back(out_name, a.name);
  }
  return out;
}

// True iff every attribute referenced by `pred` appears as an output name in
// `mapping` (i.e. the predicate only touches this product side).
bool PredicateCoveredBy(const ExprPtr& pred, const Mapping& mapping) {
  for (const std::string& a : pred->ReferencedAttrs()) {
    bool found = false;
    for (const auto& [out_name, in_name] : mapping) {
      if (out_name == a) {
        found = true;
        break;
      }
    }
    if (!found) return false;
  }
  return true;
}

// Substitutes projection definitions into an expression: attribute references
// to an item's output name are replaced by the item's expression.
ExprPtr Substitute(const ExprPtr& e, const std::vector<ProjItem>& defs) {
  if (e->kind() == ExprKind::kAttr) {
    for (const ProjItem& item : defs) {
      if (item.name == e->attr_name()) return item.expr;
    }
    return e;
  }
  if (e->children().empty()) return e;
  std::vector<ExprPtr> kids;
  for (const ExprPtr& c : e->children()) kids.push_back(Substitute(c, defs));
  switch (e->kind()) {
    case ExprKind::kCompare:
      return Expr::Compare(e->compare_op(), kids[0], kids[1]);
    case ExprKind::kAnd:
      return Expr::And(kids[0], kids[1]);
    case ExprKind::kOr:
      return Expr::Or(kids[0], kids[1]);
    case ExprKind::kNot:
      return Expr::Not(kids[0]);
    case ExprKind::kArith:
      return Expr::Arith(e->arith_op(), kids[0], kids[1]);
    case ExprKind::kOverlaps:
      return Expr::Overlaps(kids[0], kids[1], kids[2], kids[3]);
    default:
      return e;
  }
}

// Select-pushdown through a product side, shared by P4/P5 and their ×T
// counterparts.
std::optional<RuleMatch> PushSelectThroughProduct(const PlanPtr& n,
                                                  const PlanContext& ann,
                                                  bool temporal, bool left) {
  OpKind prod_kind = temporal ? OpKind::kProductT : OpKind::kProduct;
  if (n->kind() != OpKind::kSelect) return NoMatch();
  const PlanPtr& prod = n->child(0);
  if (prod->kind() != prod_kind) return NoMatch();
  if (temporal && !n->predicate()->IsTimeFree()) return NoMatch();
  const PlanPtr& r1 = prod->child(0);
  const PlanPtr& r2 = prod->child(1);
  const Schema& s1 = Info(ann, r1).schema;
  const Schema& s2 = Info(ann, r2).schema;
  Mapping mapping = left ? ProductSideMapping(s1, s2, "1.", temporal)
                         : ProductSideMapping(s2, s1, "2.", temporal);
  if (!PredicateCoveredBy(n->predicate(), mapping)) return NoMatch();
  ExprPtr pushed = n->predicate()->RenameAttrs(mapping);
  PlanPtr sel = PlanNode::Select(left ? r1 : r2, pushed);
  PlanPtr rep;
  if (temporal) {
    rep = left ? PlanNode::ProductT(sel, r2) : PlanNode::ProductT(r1, sel);
  } else {
    rep = left ? PlanNode::Product(sel, r2) : PlanNode::Product(r1, sel);
  }
  return RuleMatch{rep, Loc({&n, &prod, &r1, &r2})};
}

}  // namespace

void AppendConventionalRules(std::vector<Rule>* out) {
  // ---- P: selection rules ----------------------------------------------
  // (P1) σp(σq(r)) ≡L σq(σp(r)).
  out->emplace_back(
      "P1", "select_p(select_q(r)) -> select_q(select_p(r))", ET::kList,
      false,
      [](const PlanPtr& n, const PlanContext& ann)
          -> std::optional<RuleMatch> {
        (void)ann;
        if (n->kind() != OpKind::kSelect) return NoMatch();
        const PlanPtr& inner = n->child(0);
        if (inner->kind() != OpKind::kSelect) return NoMatch();
        const PlanPtr& r = inner->child(0);
        PlanPtr rep = PlanNode::Select(PlanNode::Select(r, n->predicate()),
                                       inner->predicate());
        return RuleMatch{rep, Loc({&n, &inner, &r})};
      },
      std::vector<OpKind>{OpKind::kSelect},
      std::vector<OpKind>{OpKind::kSelect});

  // (P2) σp∧q(r) ≡L σp(σq(r)) and back.
  out->emplace_back(
      "P2", "select_{p AND q}(r) -> select_p(select_q(r))", ET::kList, false,
      [](const PlanPtr& n, const PlanContext& ann)
          -> std::optional<RuleMatch> {
        (void)ann;
        if (n->kind() != OpKind::kSelect) return NoMatch();
        if (n->predicate()->kind() != ExprKind::kAnd) return NoMatch();
        const PlanPtr& r = n->child(0);
        ExprPtr p = n->predicate()->children()[0];
        ExprPtr q = n->predicate()->children()[1];
        PlanPtr rep = PlanNode::Select(PlanNode::Select(r, q), p);
        return RuleMatch{rep, Loc({&n, &r})};
      },
      std::vector<OpKind>{OpKind::kSelect});
  out->emplace_back(
      "P2'", "select_p(select_q(r)) -> select_{p AND q}(r)", ET::kList, false,
      [](const PlanPtr& n, const PlanContext& ann)
          -> std::optional<RuleMatch> {
        (void)ann;
        if (n->kind() != OpKind::kSelect) return NoMatch();
        const PlanPtr& inner = n->child(0);
        if (inner->kind() != OpKind::kSelect) return NoMatch();
        const PlanPtr& r = inner->child(0);
        PlanPtr rep = PlanNode::Select(
            r, Expr::And(n->predicate(), inner->predicate()));
        return RuleMatch{rep, Loc({&n, &inner, &r})};
      },
      std::vector<OpKind>{OpKind::kSelect},
      std::vector<OpKind>{OpKind::kSelect});

  // (P3) σp(πF(r)) ≡L πF(σp'(r)), p' = p with projection defs substituted.
  out->emplace_back(
      "P3", "select_p(project_F(r)) -> project_F(select_p'(r))", ET::kList,
      false,
      [](const PlanPtr& n, const PlanContext& ann)
          -> std::optional<RuleMatch> {
        (void)ann;
        if (n->kind() != OpKind::kSelect) return NoMatch();
        const PlanPtr& proj = n->child(0);
        if (proj->kind() != OpKind::kProject) return NoMatch();
        const PlanPtr& r = proj->child(0);
        ExprPtr pushed = Substitute(n->predicate(), proj->projections());
        PlanPtr rep = PlanNode::Project(PlanNode::Select(r, pushed),
                                        proj->projections());
        return RuleMatch{rep, Loc({&n, &proj, &r})};
      },
      std::vector<OpKind>{OpKind::kSelect},
      std::vector<OpKind>{OpKind::kProject});

  // (P4/P5) σp over × pushes into the side covering attr(p); ≡L.
  out->emplace_back(
      "P4", "select_p(r1 x r2) -> select_p(r1) x r2  [attr(p) in r1]",
      ET::kList, false,
      [](const PlanPtr& n, const PlanContext& ann) {
        return PushSelectThroughProduct(n, ann, /*temporal=*/false,
                                        /*left=*/true);
      },
      std::vector<OpKind>{OpKind::kSelect},
      std::vector<OpKind>{OpKind::kProduct});
  out->emplace_back(
      "P5", "select_p(r1 x r2) -> r1 x select_p(r2)  [attr(p) in r2]",
      ET::kList, false,
      [](const PlanPtr& n, const PlanContext& ann) {
        return PushSelectThroughProduct(n, ann, /*temporal=*/false,
                                        /*left=*/false);
      },
      std::vector<OpKind>{OpKind::kSelect},
      std::vector<OpKind>{OpKind::kProduct});
  // (P4T/P5T) temporal counterparts; p must be time-free.
  out->emplace_back(
      "P4T", "select_p(r1 xT r2) -> select_p(r1) xT r2  [p time-free, in r1]",
      ET::kList, false,
      [](const PlanPtr& n, const PlanContext& ann) {
        return PushSelectThroughProduct(n, ann, /*temporal=*/true,
                                        /*left=*/true);
      },
      std::vector<OpKind>{OpKind::kSelect},
      std::vector<OpKind>{OpKind::kProductT});
  out->emplace_back(
      "P5T", "select_p(r1 xT r2) -> r1 xT select_p(r2)  [p time-free, in r2]",
      ET::kList, false,
      [](const PlanPtr& n, const PlanContext& ann) {
        return PushSelectThroughProduct(n, ann, /*temporal=*/true,
                                        /*left=*/false);
      },
      std::vector<OpKind>{OpKind::kSelect},
      std::vector<OpKind>{OpKind::kProductT});

  // (P6) σp(r1 ⊎ r2) ≡L σp(r1) ⊎ σp(r2); (P7) the ∪ counterpart;
  // (P7T) the ∪T counterpart with a time-free predicate.
  auto push_select_binary = [](OpKind op, bool need_time_free) {
    return [op, need_time_free](const PlanPtr& n, const PlanContext& ann)
               -> std::optional<RuleMatch> {
      (void)ann;
      if (n->kind() != OpKind::kSelect) return NoMatch();
      const PlanPtr& b = n->child(0);
      if (b->kind() != op) return NoMatch();
      if (need_time_free && !n->predicate()->IsTimeFree()) return NoMatch();
      const PlanPtr& r1 = b->child(0);
      const PlanPtr& r2 = b->child(1);
      PlanPtr s1 = PlanNode::Select(r1, n->predicate());
      PlanPtr s2 = PlanNode::Select(r2, n->predicate());
      PlanPtr rep;
      switch (op) {
        case OpKind::kUnionAll:
          rep = PlanNode::UnionAll(s1, s2);
          break;
        case OpKind::kUnion:
          rep = PlanNode::Union(s1, s2);
          break;
        case OpKind::kUnionT:
          rep = PlanNode::UnionT(s1, s2);
          break;
        case OpKind::kDifference:
          rep = PlanNode::Difference(s1, s2);
          break;
        case OpKind::kDifferenceT:
          rep = PlanNode::DifferenceT(s1, s2);
          break;
        default:
          return NoMatch();
      }
      return RuleMatch{rep, Loc({&n, &b, &r1, &r2})};
    };
  };
  out->emplace_back("P6",
                    "select_p(r1 UNION-ALL r2) -> select_p(r1) UNION-ALL "
                    "select_p(r2)",
                    ET::kList, false,
                    push_select_binary(OpKind::kUnionAll, false),
      std::vector<OpKind>{OpKind::kSelect},
      std::vector<OpKind>{OpKind::kUnionAll});
  out->emplace_back("P7", "select_p(r1 U r2) -> select_p(r1) U select_p(r2)",
                    ET::kList, false,
                    push_select_binary(OpKind::kUnion, false),
      std::vector<OpKind>{OpKind::kSelect},
      std::vector<OpKind>{OpKind::kUnion});
  out->emplace_back(
      "P7T",
      "select_p(r1 U^T r2) -> select_p(r1) U^T select_p(r2)  [p time-free]",
      ET::kList, false, push_select_binary(OpKind::kUnionT, true),
      std::vector<OpKind>{OpKind::kSelect},
      std::vector<OpKind>{OpKind::kUnionT});

  // (P8/P8T) σp distributes over difference.
  out->emplace_back("P8",
                    "select_p(r1 \\ r2) -> select_p(r1) \\ select_p(r2)",
                    ET::kList, false,
                    push_select_binary(OpKind::kDifference, false),
      std::vector<OpKind>{OpKind::kSelect},
      std::vector<OpKind>{OpKind::kDifference});
  out->emplace_back(
      "P8T",
      "select_p(r1 \\T r2) -> select_p(r1) \\T select_p(r2)  [p time-free]",
      ET::kList, false, push_select_binary(OpKind::kDifferenceT, true),
      std::vector<OpKind>{OpKind::kSelect},
      std::vector<OpKind>{OpKind::kDifferenceT});

  // (P9) σp(rdup(r)) ≡L rdup(σp'(r)); p' maps the 1.T1/1.T2 renames back.
  out->emplace_back(
      "P9", "select_p(rdup(r)) -> rdup(select_p'(r))", ET::kList, false,
      [](const PlanPtr& n, const PlanContext& ann)
          -> std::optional<RuleMatch> {
        if (n->kind() != OpKind::kSelect) return NoMatch();
        const PlanPtr& dup = n->child(0);
        if (dup->kind() != OpKind::kRdup) return NoMatch();
        const PlanPtr& r = dup->child(0);
        ExprPtr pushed = n->predicate();
        if (Info(ann, r).schema.IsTemporal()) {
          pushed = pushed->RenameAttrs(
              {{"1.T1", kT1}, {"1.T2", kT2}});
        }
        PlanPtr rep = PlanNode::Rdup(PlanNode::Select(r, pushed));
        return RuleMatch{rep, Loc({&n, &dup, &r})};
      },
      std::vector<OpKind>{OpKind::kSelect},
      std::vector<OpKind>{OpKind::kRdup});

  // (P9T) σp(rdupT(r)) ≡L rdupT(σp(r)), p time-free.
  out->emplace_back(
      "P9T", "select_p(rdupT(r)) -> rdupT(select_p(r))  [p time-free]",
      ET::kList, false,
      [](const PlanPtr& n, const PlanContext& ann)
          -> std::optional<RuleMatch> {
        (void)ann;
        if (n->kind() != OpKind::kSelect) return NoMatch();
        const PlanPtr& dup = n->child(0);
        if (dup->kind() != OpKind::kRdupT) return NoMatch();
        if (!n->predicate()->IsTimeFree()) return NoMatch();
        const PlanPtr& r = dup->child(0);
        PlanPtr rep = PlanNode::RdupT(PlanNode::Select(r, n->predicate()));
        return RuleMatch{rep, Loc({&n, &dup, &r})};
      },
      std::vector<OpKind>{OpKind::kSelect},
      std::vector<OpKind>{OpKind::kRdupT});

  // (P10/P10T) σp over aggregation when attr(p) ⊆ grouping attributes.
  auto push_select_agg = [](OpKind op) {
    return [op](const PlanPtr& n, const PlanContext& ann)
               -> std::optional<RuleMatch> {
      (void)ann;
      if (n->kind() != OpKind::kSelect) return NoMatch();
      const PlanPtr& agg = n->child(0);
      if (agg->kind() != op) return NoMatch();
      std::set<std::string> groups(agg->group_by().begin(),
                                   agg->group_by().end());
      for (const std::string& a : n->predicate()->ReferencedAttrs()) {
        if (groups.count(a) == 0) return NoMatch();
      }
      const PlanPtr& r = agg->child(0);
      PlanPtr sel = PlanNode::Select(r, n->predicate());
      PlanPtr rep =
          op == OpKind::kAggregate
              ? PlanNode::Aggregate(sel, agg->group_by(), agg->aggregates())
              : PlanNode::AggregateT(sel, agg->group_by(), agg->aggregates());
      return RuleMatch{rep, Loc({&n, &agg, &r})};
    };
  };
  out->emplace_back("P10",
                    "select_p(agg_{G;F}(r)) -> agg_{G;F}(select_p(r))  "
                    "[attr(p) in G]",
                    ET::kList, false, push_select_agg(OpKind::kAggregate),
      std::vector<OpKind>{OpKind::kSelect},
      std::vector<OpKind>{OpKind::kAggregate});
  out->emplace_back("P10T",
                    "select_p(aggT_{G;F}(r)) -> aggT_{G;F}(select_p(r))  "
                    "[attr(p) in G]",
                    ET::kList, false, push_select_agg(OpKind::kAggregateT),
      std::vector<OpKind>{OpKind::kSelect},
      std::vector<OpKind>{OpKind::kAggregateT});

  // ---- J: projection rules ----------------------------------------------
  // (J1) πA(πB(r)) ≡L π(A∘B)(r).
  out->emplace_back(
      "J1", "project_A(project_B(r)) -> project_{A.B}(r)", ET::kList, false,
      [](const PlanPtr& n, const PlanContext& ann)
          -> std::optional<RuleMatch> {
        (void)ann;
        if (n->kind() != OpKind::kProject) return NoMatch();
        const PlanPtr& inner = n->child(0);
        if (inner->kind() != OpKind::kProject) return NoMatch();
        const PlanPtr& r = inner->child(0);
        std::vector<ProjItem> composed;
        for (const ProjItem& item : n->projections()) {
          composed.push_back(
              ProjItem{Substitute(item.expr, inner->projections()), item.name});
        }
        PlanPtr rep = PlanNode::Project(r, std::move(composed));
        return RuleMatch{rep, Loc({&n, &inner, &r})};
      },
      std::vector<OpKind>{OpKind::kProject},
      std::vector<OpKind>{OpKind::kProject});

  // (J2) πF(r1 ⊎ r2) ≡L πF(r1) ⊎ πF(r2), both directions.
  out->emplace_back(
      "J2", "project_F(r1 UNION-ALL r2) -> project_F(r1) UNION-ALL "
            "project_F(r2)",
      ET::kList, false,
      [](const PlanPtr& n, const PlanContext& ann)
          -> std::optional<RuleMatch> {
        (void)ann;
        if (n->kind() != OpKind::kProject) return NoMatch();
        const PlanPtr& u = n->child(0);
        if (u->kind() != OpKind::kUnionAll) return NoMatch();
        const PlanPtr& r1 = u->child(0);
        const PlanPtr& r2 = u->child(1);
        PlanPtr rep =
            PlanNode::UnionAll(PlanNode::Project(r1, n->projections()),
                               PlanNode::Project(r2, n->projections()));
        return RuleMatch{rep, Loc({&n, &u, &r1, &r2})};
      },
      std::vector<OpKind>{OpKind::kProject},
      std::vector<OpKind>{OpKind::kUnionAll});
  out->emplace_back(
      "J2'", "project_F(r1) UNION-ALL project_F(r2) -> project_F(r1 "
             "UNION-ALL r2)",
      ET::kList, false,
      [](const PlanPtr& n, const PlanContext& ann)
          -> std::optional<RuleMatch> {
        if (n->kind() != OpKind::kUnionAll) return NoMatch();
        const PlanPtr& p1 = n->child(0);
        const PlanPtr& p2 = n->child(1);
        if (p1->kind() != OpKind::kProject || p2->kind() != OpKind::kProject) {
          return NoMatch();
        }
        // The two projection lists must be identical, and the inputs must
        // have equal schemas for the merged projection to be well-formed.
        if (p1->projections().size() != p2->projections().size()) {
          return NoMatch();
        }
        for (size_t i = 0; i < p1->projections().size(); ++i) {
          if (p1->projections()[i].name != p2->projections()[i].name ||
              p1->projections()[i].expr->ToString() !=
                  p2->projections()[i].expr->ToString()) {
            return NoMatch();
          }
        }
        const PlanPtr& r1 = p1->child(0);
        const PlanPtr& r2 = p2->child(0);
        if (Info(ann, r1).schema != Info(ann, r2).schema) return NoMatch();
        PlanPtr rep = PlanNode::Project(PlanNode::UnionAll(r1, r2),
                                        p1->projections());
        return RuleMatch{rep, Loc({&n, &p1, &p2, &r1, &r2})};
      },
      std::vector<OpKind>{OpKind::kUnionAll},
      std::vector<OpKind>{OpKind::kProject});

  // ---- A: commutativity / associativity ---------------------------------
  // (A1) r1 × r2 ≡M π_reorder(r2 × r1).
  out->emplace_back(
      "A1", "r1 x r2 -> project(r2 x r1)  (multiset level)", ET::kMultiset,
      false,
      [](const PlanPtr& n, const PlanContext& ann)
          -> std::optional<RuleMatch> {
        if (n->kind() != OpKind::kProduct) return NoMatch();
        const PlanPtr& r1 = n->child(0);
        const PlanPtr& r2 = n->child(1);
        const Schema& s1 = Info(ann, r1).schema;
        const Schema& s2 = Info(ann, r2).schema;
        // Output attribute i of r1×r2 corresponds to an attribute of r2×r1
        // with the 1./2. prefixes swapped.
        std::vector<ProjItem> items;
        for (const Attribute& a : s1.attrs()) {
          std::string orig = s2.HasAttr(a.name) ? "1." + a.name : a.name;
          std::string swapped = s2.HasAttr(a.name) ? "2." + a.name : a.name;
          items.push_back(ProjItem{Expr::Attr(swapped), orig});
        }
        for (const Attribute& a : s2.attrs()) {
          std::string orig = s1.HasAttr(a.name) ? "2." + a.name : a.name;
          std::string swapped = s1.HasAttr(a.name) ? "1." + a.name : a.name;
          items.push_back(ProjItem{Expr::Attr(swapped), orig});
        }
        PlanPtr rep = PlanNode::Project(PlanNode::Product(r2, r1),
                                        std::move(items));
        return RuleMatch{rep, Loc({&n, &r1, &r2})};
      },
      std::vector<OpKind>{OpKind::kProduct});

  // (A1T) r1 ×T r2 ≡M π_reorder(r2 ×T r1) (swaps the retained timestamps).
  out->emplace_back(
      "A1T", "r1 xT r2 -> project(r2 xT r1)  (multiset level)", ET::kMultiset,
      false,
      [](const PlanPtr& n, const PlanContext& ann)
          -> std::optional<RuleMatch> {
        if (n->kind() != OpKind::kProductT) return NoMatch();
        const PlanPtr& r1 = n->child(0);
        const PlanPtr& r2 = n->child(1);
        const Schema& s1 = Info(ann, r1).schema;
        const Schema& s2 = Info(ann, r2).schema;
        // Bail out when data attributes collide with the retained timestamp
        // names (possible after nested ×T).
        for (const char* reserved : {"1.T1", "1.T2", "2.T1", "2.T2"}) {
          if (s1.HasAttr(reserved) || s2.HasAttr(reserved)) return NoMatch();
        }
        std::vector<ProjItem> items;
        for (const Attribute& a : s1.attrs()) {
          if (a.name == kT1 || a.name == kT2) continue;
          std::string orig = s2.HasAttr(a.name) ? "1." + a.name : a.name;
          std::string swapped = s2.HasAttr(a.name) ? "2." + a.name : a.name;
          items.push_back(ProjItem{Expr::Attr(swapped), orig});
        }
        for (const Attribute& a : s2.attrs()) {
          if (a.name == kT1 || a.name == kT2) continue;
          std::string orig = s1.HasAttr(a.name) ? "2." + a.name : a.name;
          std::string swapped = s1.HasAttr(a.name) ? "1." + a.name : a.name;
          items.push_back(ProjItem{Expr::Attr(swapped), orig});
        }
        items.push_back(ProjItem{Expr::Attr("2.T1"), "1.T1"});
        items.push_back(ProjItem{Expr::Attr("2.T2"), "1.T2"});
        items.push_back(ProjItem{Expr::Attr("1.T1"), "2.T1"});
        items.push_back(ProjItem{Expr::Attr("1.T2"), "2.T2"});
        items.push_back(ProjItem::Pass(kT1));
        items.push_back(ProjItem::Pass(kT2));
        PlanPtr rep = PlanNode::Project(PlanNode::ProductT(r2, r1),
                                        std::move(items));
        return RuleMatch{rep, Loc({&n, &r1, &r2})};
      },
      std::vector<OpKind>{OpKind::kProductT});

  // (A2) (r1 × r2) × r3 ≡L r1 × (r2 × r3) when no attribute names clash.
  auto no_clash = [](const Schema& a, const Schema& b, const Schema& c) {
    for (const Attribute& x : a.attrs()) {
      if (b.HasAttr(x.name) || c.HasAttr(x.name)) return false;
    }
    for (const Attribute& x : b.attrs()) {
      if (c.HasAttr(x.name)) return false;
    }
    return true;
  };
  out->emplace_back(
      "A2", "(r1 x r2) x r3 -> r1 x (r2 x r3)  [no name clashes]", ET::kList,
      false,
      [no_clash](const PlanPtr& n, const PlanContext& ann)
          -> std::optional<RuleMatch> {
        if (n->kind() != OpKind::kProduct) return NoMatch();
        const PlanPtr& lp = n->child(0);
        if (lp->kind() != OpKind::kProduct) return NoMatch();
        const PlanPtr& r1 = lp->child(0);
        const PlanPtr& r2 = lp->child(1);
        const PlanPtr& r3 = n->child(1);
        if (!no_clash(Info(ann, r1).schema, Info(ann, r2).schema,
                      Info(ann, r3).schema)) {
          return NoMatch();
        }
        PlanPtr rep = PlanNode::Product(r1, PlanNode::Product(r2, r3));
        return RuleMatch{rep, Loc({&n, &lp, &r1, &r2, &r3})};
      },
      std::vector<OpKind>{OpKind::kProduct},
      std::vector<OpKind>{OpKind::kProduct});
  out->emplace_back(
      "A2'", "r1 x (r2 x r3) -> (r1 x r2) x r3  [no name clashes]", ET::kList,
      false,
      [no_clash](const PlanPtr& n, const PlanContext& ann)
          -> std::optional<RuleMatch> {
        if (n->kind() != OpKind::kProduct) return NoMatch();
        const PlanPtr& rp = n->child(1);
        if (rp->kind() != OpKind::kProduct) return NoMatch();
        const PlanPtr& r1 = n->child(0);
        const PlanPtr& r2 = rp->child(0);
        const PlanPtr& r3 = rp->child(1);
        if (!no_clash(Info(ann, r1).schema, Info(ann, r2).schema,
                      Info(ann, r3).schema)) {
          return NoMatch();
        }
        PlanPtr rep = PlanNode::Product(PlanNode::Product(r1, r2), r3);
        return RuleMatch{rep, Loc({&n, &rp, &r1, &r2, &r3})};
      },
      std::vector<OpKind>{OpKind::kProduct});

  // (A3) r1 ⊎ r2 ≡M r2 ⊎ r1;  (A4) ⊎ associativity ≡L;
  // (A5) ∪ commutativity ≡M;  (A5T) ∪T commutativity ≡SM.
  out->emplace_back(
      "A3", "r1 UNION-ALL r2 -> r2 UNION-ALL r1  (multiset level)",
      ET::kMultiset, false,
      [](const PlanPtr& n, const PlanContext& ann)
          -> std::optional<RuleMatch> {
        (void)ann;
        if (n->kind() != OpKind::kUnionAll) return NoMatch();
        const PlanPtr& r1 = n->child(0);
        const PlanPtr& r2 = n->child(1);
        return RuleMatch{PlanNode::UnionAll(r2, r1), Loc({&n, &r1, &r2})};
      },
      std::vector<OpKind>{OpKind::kUnionAll});
  out->emplace_back(
      "A4", "(r1 UNION-ALL r2) UNION-ALL r3 -> r1 UNION-ALL (r2 UNION-ALL "
            "r3)",
      ET::kList, false,
      [](const PlanPtr& n, const PlanContext& ann)
          -> std::optional<RuleMatch> {
        (void)ann;
        if (n->kind() != OpKind::kUnionAll) return NoMatch();
        const PlanPtr& lu = n->child(0);
        if (lu->kind() != OpKind::kUnionAll) return NoMatch();
        const PlanPtr& r1 = lu->child(0);
        const PlanPtr& r2 = lu->child(1);
        const PlanPtr& r3 = n->child(1);
        PlanPtr rep = PlanNode::UnionAll(r1, PlanNode::UnionAll(r2, r3));
        return RuleMatch{rep, Loc({&n, &lu, &r1, &r2, &r3})};
      },
      std::vector<OpKind>{OpKind::kUnionAll},
      std::vector<OpKind>{OpKind::kUnionAll});
  out->emplace_back(
      "A5", "r1 U r2 -> r2 U r1  (multiset level)", ET::kMultiset, false,
      [](const PlanPtr& n, const PlanContext& ann)
          -> std::optional<RuleMatch> {
        (void)ann;
        if (n->kind() != OpKind::kUnion) return NoMatch();
        const PlanPtr& r1 = n->child(0);
        const PlanPtr& r2 = n->child(1);
        return RuleMatch{PlanNode::Union(r2, r1), Loc({&n, &r1, &r2})};
      },
      std::vector<OpKind>{OpKind::kUnion});
  out->emplace_back(
      "A5T", "r1 U^T r2 -> r2 U^T r1  (snapshot-multiset level)",
      ET::kSnapshotMultiset, false,
      [](const PlanPtr& n, const PlanContext& ann)
          -> std::optional<RuleMatch> {
        (void)ann;
        if (n->kind() != OpKind::kUnionT) return NoMatch();
        const PlanPtr& r1 = n->child(0);
        const PlanPtr& r2 = n->child(1);
        return RuleMatch{PlanNode::UnionT(r2, r1), Loc({&n, &r1, &r2})};
      },
      std::vector<OpKind>{OpKind::kUnionT});

  // ---- F: difference rules ----------------------------------------------
  // (F1) (r1 \ r2) \ r3 ≡L r1 \ (r2 ⊎ r3), both directions.
  out->emplace_back(
      "F1", "(r1 \\ r2) \\ r3 -> r1 \\ (r2 UNION-ALL r3)", ET::kList, false,
      [](const PlanPtr& n, const PlanContext& ann)
          -> std::optional<RuleMatch> {
        (void)ann;
        if (n->kind() != OpKind::kDifference) return NoMatch();
        const PlanPtr& ld = n->child(0);
        if (ld->kind() != OpKind::kDifference) return NoMatch();
        const PlanPtr& r1 = ld->child(0);
        const PlanPtr& r2 = ld->child(1);
        const PlanPtr& r3 = n->child(1);
        PlanPtr rep =
            PlanNode::Difference(r1, PlanNode::UnionAll(r2, r3));
        return RuleMatch{rep, Loc({&n, &ld, &r1, &r2, &r3})};
      },
      std::vector<OpKind>{OpKind::kDifference},
      std::vector<OpKind>{OpKind::kDifference});
  out->emplace_back(
      "F1'", "r1 \\ (r2 UNION-ALL r3) -> (r1 \\ r2) \\ r3", ET::kList, false,
      [](const PlanPtr& n, const PlanContext& ann)
          -> std::optional<RuleMatch> {
        (void)ann;
        if (n->kind() != OpKind::kDifference) return NoMatch();
        const PlanPtr& u = n->child(1);
        if (u->kind() != OpKind::kUnionAll) return NoMatch();
        const PlanPtr& r1 = n->child(0);
        const PlanPtr& r2 = u->child(0);
        const PlanPtr& r3 = u->child(1);
        PlanPtr rep =
            PlanNode::Difference(PlanNode::Difference(r1, r2), r3);
        return RuleMatch{rep, Loc({&n, &u, &r1, &r2, &r3})};
      },
      std::vector<OpKind>{OpKind::kDifference});

  // (F1T) (r1 \T r2) \T r3 ≡L r1 \T (r2 ⊎ r3), r1 snapshot-duplicate-free.
  out->emplace_back(
      "F1T",
      "(r1 \\T r2) \\T r3 -> r1 \\T (r2 UNION-ALL r3)  "
      "[r1 snapshot-duplicate-free]",
      ET::kList, false,
      [](const PlanPtr& n, const PlanContext& ann)
          -> std::optional<RuleMatch> {
        if (n->kind() != OpKind::kDifferenceT) return NoMatch();
        const PlanPtr& ld = n->child(0);
        if (ld->kind() != OpKind::kDifferenceT) return NoMatch();
        const PlanPtr& r1 = ld->child(0);
        if (!Info(ann, r1).snapshot_duplicate_free) return NoMatch();
        const PlanPtr& r2 = ld->child(1);
        const PlanPtr& r3 = n->child(1);
        PlanPtr rep =
            PlanNode::DifferenceT(r1, PlanNode::UnionAll(r2, r3));
        return RuleMatch{rep, Loc({&n, &ld, &r1, &r2, &r3})};
      },
      std::vector<OpKind>{OpKind::kDifferenceT},
      std::vector<OpKind>{OpKind::kDifferenceT});

  // ---- G: duplicate-elimination interplay --------------------------------
  // (G1) rdup(r1 × r2) ≡L rdup(r1) × rdup(r2) (non-temporal arguments).
  out->emplace_back(
      "G1", "rdup(r1 x r2) -> rdup(r1) x rdup(r2)", ET::kList, false,
      [](const PlanPtr& n, const PlanContext& ann)
          -> std::optional<RuleMatch> {
        if (n->kind() != OpKind::kRdup) return NoMatch();
        const PlanPtr& prod = n->child(0);
        if (prod->kind() != OpKind::kProduct) return NoMatch();
        const PlanPtr& r1 = prod->child(0);
        const PlanPtr& r2 = prod->child(1);
        if (Info(ann, r1).schema.IsTemporal() ||
            Info(ann, r2).schema.IsTemporal()) {
          return NoMatch();  // rdup renaming would differ between the sides
        }
        PlanPtr rep =
            PlanNode::Product(PlanNode::Rdup(r1), PlanNode::Rdup(r2));
        return RuleMatch{rep, Loc({&n, &prod, &r1, &r2})};
      },
      std::vector<OpKind>{OpKind::kRdup},
      std::vector<OpKind>{OpKind::kProduct});

  // (G2) rdup(rdup(r)) ≡L rdup(r); (G3/G4) rdupT and coalT idempotence.
  auto idempotent = [](OpKind op) {
    return [op](const PlanPtr& n, const PlanContext& ann)
               -> std::optional<RuleMatch> {
      (void)ann;
      if (n->kind() != op) return NoMatch();
      const PlanPtr& inner = n->child(0);
      if (inner->kind() != op) return NoMatch();
      return RuleMatch{inner, Loc({&n, &inner})};
    };
  };
  out->emplace_back("G2", "rdup(rdup(r)) -> rdup(r)", ET::kList, false,
                    idempotent(OpKind::kRdup),
      std::vector<OpKind>{OpKind::kRdup},
      std::vector<OpKind>{OpKind::kRdup});
  out->emplace_back("G3", "rdupT(rdupT(r)) -> rdupT(r)", ET::kList, false,
                    idempotent(OpKind::kRdupT),
      std::vector<OpKind>{OpKind::kRdupT},
      std::vector<OpKind>{OpKind::kRdupT});
  out->emplace_back("G4", "coalT(coalT(r)) -> coalT(r)", ET::kList, false,
                    idempotent(OpKind::kCoalesce),
      std::vector<OpKind>{OpKind::kCoalesce},
      std::vector<OpKind>{OpKind::kCoalesce});

  // (G5) rdupT(coalT(rdupT(r))) ≡L coalT(rdupT(r)): after the rdupT+coalT
  // idiom the relation is snapshot-duplicate-free, so the outer rdupT is
  // superfluous (this also falls out of D2 via the guarantees).
  out->emplace_back(
      "G5", "rdupT(coalT(rdupT(r))) -> coalT(rdupT(r))", ET::kList, false,
      [](const PlanPtr& n, const PlanContext& ann)
          -> std::optional<RuleMatch> {
        (void)ann;
        if (n->kind() != OpKind::kRdupT) return NoMatch();
        const PlanPtr& coal = n->child(0);
        if (coal->kind() != OpKind::kCoalesce) return NoMatch();
        if (coal->child(0)->kind() != OpKind::kRdupT) return NoMatch();
        return RuleMatch{coal, Loc({&n, &coal})};
      },
      std::vector<OpKind>{OpKind::kRdupT},
      std::vector<OpKind>{OpKind::kCoalesce});

  // (B2) coalT(π_A(r1 ×T r2)) ≡SM π_A(coalT(r1) ×T coalT(r2)), the Böhlen
  // variant of C9 without preconditions.
  out->emplace_back(
      "B2",
      "coalT(project_A(r1 xT r2)) -> project_A(coalT(r1) xT coalT(r2))  "
      "(snapshot-multiset level)",
      ET::kSnapshotMultiset, false,
      [](const PlanPtr& n, const PlanContext& ann)
          -> std::optional<RuleMatch> {
        if (n->kind() != OpKind::kCoalesce) return NoMatch();
        const PlanPtr& proj = n->child(0);
        if (proj->kind() != OpKind::kProject) return NoMatch();
        const PlanPtr& prod = proj->child(0);
        if (prod->kind() != OpKind::kProductT) return NoMatch();
        if (!IsPassThroughProjection(proj->projections())) return NoMatch();
        // The projection must drop the retained argument timestamps and keep
        // T1/T2 (same structural condition as C9).
        const Schema& prod_schema = Info(ann, prod).schema;
        std::vector<std::string> expected;
        for (const Attribute& a : prod_schema.attrs()) {
          if (a.name == "1.T1" || a.name == "1.T2" || a.name == "2.T1" ||
              a.name == "2.T2") {
            continue;
          }
          expected.push_back(a.name);
        }
        if (proj->projections().size() != expected.size()) return NoMatch();
        for (size_t i = 0; i < expected.size(); ++i) {
          const ProjItem& item = proj->projections()[i];
          if (item.expr->attr_name() != expected[i] ||
              item.name != expected[i]) {
            return NoMatch();
          }
        }
        const PlanPtr& r1 = prod->child(0);
        const PlanPtr& r2 = prod->child(1);
        PlanPtr rep = PlanNode::Project(
            PlanNode::ProductT(PlanNode::Coalesce(r1), PlanNode::Coalesce(r2)),
            proj->projections());
        return RuleMatch{rep, Loc({&n, &proj, &prod, &r1, &r2})};
      },
      std::vector<OpKind>{OpKind::kCoalesce},
      std::vector<OpKind>{OpKind::kProject});
}

}  // namespace tqp
