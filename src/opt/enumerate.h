// The query plan enumeration algorithm of Figure 5.
//
// A deterministic worklist explores the space of plans reachable from the
// initial plan through the given transformation rules. A rule of equivalence
// type T is applicable at a location l iff the Table 2 properties of every
// operation at l admit T (the disjunction in Figure 5):
//
//   ≡L   always
//   ≡M   ∀op∈l ¬OrderRequired
//   ≡S   ∀op∈l ¬DuplicatesRelevant ∧ ¬OrderRequired
//   ≡SL  ∀op∈l ¬PeriodPreserving
//   ≡SM  ∀op∈l ¬OrderRequired ∧ ¬PeriodPreserving
//   ≡SS  ∀op∈l ¬DuplicatesRelevant ∧ ¬OrderRequired ∧ ¬PeriodPreserving
//
// Per Section 4.5, an ≡L rule whose location contains DBMS-site operations is
// weakened to ≡M (the DBMS does not guarantee result order), except for
// order-safe rules (the sort relocation rules and sort elimination).
//
// Termination: the default rule set excludes expanding rules (Section 6) and
// a plan-size growth bound caps rule chains that grow plans (e.g. repeated
// commutativity wrappers); plan dedup uses canonical serialization.
#ifndef TQP_OPT_ENUMERATE_H_
#define TQP_OPT_ENUMERATE_H_

#include <set>
#include <string>
#include <vector>

#include "rules/rules.h"

namespace tqp {

/// Options controlling the enumeration.
struct EnumerationOptions {
  /// Stop after this many distinct plans (the initial plan counts).
  size_t max_plans = 4000;
  /// Skip replacement plans that exceed the initial size by this many nodes.
  size_t max_plan_growth = 8;
  /// Which equivalence types may be exploited; the Figure 5 gating applies on
  /// top of this. Restricting this set is the ablation knob of
  /// bench_fig5_enumeration.
  std::set<EquivalenceType> admitted = {
      EquivalenceType::kList,         EquivalenceType::kMultiset,
      EquivalenceType::kSet,          EquivalenceType::kSnapshotList,
      EquivalenceType::kSnapshotMultiset, EquivalenceType::kSnapshotSet,
  };
};

/// One enumerated plan with its derivation edge.
struct EnumeratedPlan {
  PlanPtr plan;
  std::string canonical;
  /// Index of the plan this one was derived from; -1 for the initial plan.
  int parent = -1;
  /// Rule that produced it (empty for the initial plan).
  std::string rule_id;
};

/// The enumeration outcome.
struct EnumerationResult {
  std::vector<EnumeratedPlan> plans;
  bool truncated = false;
  /// Rule applications attempted (match found) / admitted by the gating.
  size_t matches = 0;
  size_t admitted = 0;
  /// Applications rejected by the Figure 5 property gating.
  size_t gated_out = 0;

  /// Reconstructs the rule chain that derived plan `index` from the initial
  /// plan (oldest first).
  std::vector<std::string> DerivationOf(size_t index) const;
};

/// Runs the Figure 5 algorithm. Fails only if the initial plan is malformed.
Result<EnumerationResult> EnumeratePlans(const PlanPtr& initial,
                                         const Catalog& catalog,
                                         const QueryContract& contract,
                                         const std::vector<Rule>& rules,
                                         const EnumerationOptions& options = {});

/// True iff a rule of type `equiv` is admitted at a location given the
/// properties of the location's operations (the Figure 5 disjunction).
/// Exposed for tests and the property benches.
bool RuleAdmitted(EquivalenceType equiv,
                  const std::vector<const PlanNode*>& location,
                  const AnnotatedPlan& ann);

/// Rules that may keep their ≡L claim when their location includes DBMS-site
/// operations (Section 4.5's sort exception).
bool IsOrderSafeAcrossSites(const std::string& rule_id);

}  // namespace tqp

#endif  // TQP_OPT_ENUMERATE_H_
