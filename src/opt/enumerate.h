// The query plan enumeration algorithm of Figure 5, memo-based.
//
// A deterministic worklist explores the space of plans reachable from the
// initial plan through the given transformation rules. A rule of equivalence
// type T is applicable at a location l iff the Table 2 properties of every
// operation at l admit T (the disjunction in Figure 5):
//
//   ≡L   always
//   ≡M   ∀op∈l ¬OrderRequired
//   ≡S   ∀op∈l ¬DuplicatesRelevant ∧ ¬OrderRequired
//   ≡SL  ∀op∈l ¬PeriodPreserving
//   ≡SM  ∀op∈l ¬OrderRequired ∧ ¬PeriodPreserving
//   ≡SS  ∀op∈l ¬DuplicatesRelevant ∧ ¬OrderRequired ∧ ¬PeriodPreserving
//
// Per Section 4.5, an ≡L rule whose location contains DBMS-site operations is
// weakened to ≡M (the DBMS does not guarantee result order), except for
// order-safe rules (the sort relocation rules and sort elimination).
//
// Search structure: every produced plan is hash-consed through a
// PlanInterner, so plan identity is a pointer comparison and the set of
// explored plans is a memo keyed by canonical root (an O(1) probe per
// candidate, instead of the seed implementation's canonical-string
// serialization). Rules rewrite at a location path — only the spine above
// the rewritten node is rebuilt — and each distinct plan is annotated exactly
// once, against a cross-plan DerivationCache of bottom-up node information.
// The legacy string-dedup worklist is kept behind
// EnumerationOptions::use_legacy_string_dedup for A/B measurement
// (bench_fig5_enumeration); both produce the identical plan sequence.
//
// Frontier ordering: unexpanded plans are held in a frontier that is either
// FIFO (breadth-first, the default — the exact Figure 5 order) or a priority
// queue keyed by estimated plan cost with admission-index tie-break
// (best-first, cost-directed). Cost-bounded pruning and an explicit
// expansion budget apply under either order; see EnumerationOptions.
//
// Parallelism: with EnumerationOptions::num_threads > 1, worker threads
// expand plans (rule matching, gating, candidate fingerprints — the pure,
// memo-independent part) from a shared work-stealing frontier while the
// calling thread replays admission serially in the exact single-threaded
// order. The admitted plan set, derivation edges, costs, and all counters
// are byte-identical to the serial run by construction; see
// enumerate_internal.h for the expand/replay split.
//
// Termination: the default rule set excludes expanding rules (Section 6) and
// a plan-size growth bound caps rule chains that grow plans (e.g. repeated
// commutativity wrappers).
#ifndef TQP_OPT_ENUMERATE_H_
#define TQP_OPT_ENUMERATE_H_

#include <set>
#include <string>
#include <vector>

#include "exec/cost_model.h"
#include "rules/rules.h"

namespace tqp {

class PlanInterner;

/// How the memo enumerator orders its frontier of unexpanded plans.
enum class SearchStrategy {
  /// Expand plans in admission order (the paper's Figure 5 loop). The
  /// default: exhaustive up to the budgets, and the reference order the A/B
  /// byte-identity checks compare against.
  kBreadthFirst,
  /// Expand the cheapest unexpanded plan first (cost-directed), under the
  /// same cost model the optimizer's final choice uses. With a pruning
  /// factor and/or an expansion budget this reaches near-optimal plans
  /// while expanding a fraction of the space (bench_bestfirst_search).
  /// Ties break on admission index, so the search stays deterministic.
  kBestFirst,
};

/// Options controlling the enumeration.
struct EnumerationOptions {
  /// Stop after this many distinct plans admitted to the memo (the initial
  /// plan counts). Raw rule matches and memo hits do not count.
  size_t max_plans = 4000;
  /// Skip replacement plans that exceed the initial size by this many nodes.
  size_t max_plan_growth = 8;
  /// Which equivalence types may be exploited; the Figure 5 gating applies on
  /// top of this. Restricting this set is the ablation knob of
  /// bench_fig5_enumeration.
  std::set<EquivalenceType> admitted = {
      EquivalenceType::kList,         EquivalenceType::kMultiset,
      EquivalenceType::kSet,          EquivalenceType::kSnapshotList,
      EquivalenceType::kSnapshotMultiset, EquivalenceType::kSnapshotSet,
  };
  /// Frontier ordering; see SearchStrategy. Only the memo path supports
  /// kBestFirst (the legacy path rejects it).
  SearchStrategy strategy = SearchStrategy::kBreadthFirst;
  /// Cost-bounded pruning: when > 0, a plan whose estimated cost exceeds
  /// `cost_prune_factor` times the cheapest cost seen so far is still
  /// admitted to the result but never expanded. The decision is made when
  /// the plan is popped from the frontier, against the bound at that moment;
  /// the bound only ever tightens, so a plan that fails the check once could
  /// never pass it later — pruned plans are final and are not re-queued,
  /// which makes `cost_pruned` a deterministic function of the admitted
  /// sequence under both strategies. 0 (default) disables pruning, so
  /// exhaustive benches and the completeness tests are unaffected. Only the
  /// memo path supports pruning.
  double cost_prune_factor = 0.0;
  /// Adaptive pruning feedback (off by default; requires cost_prune_factor
  /// > 0): every time the incumbent best cost improves, the *effective*
  /// pruning factor is multiplied by `adaptive_prune_decay`, never dropping
  /// below `adaptive_prune_floor` — the search prunes more aggressively the
  /// better the plans it has already found. The effective factor is a
  /// deterministic function of the admitted plan sequence (improvements
  /// happen at admission, which is serial under every driver), so repeated
  /// runs, warm caches, and the parallel driver remain byte-identical with
  /// the feedback on (tests/test_enumerate_cost.cc).
  bool adaptive_pruning = false;
  /// Multiplicative tightening applied to the effective pruning factor on
  /// each incumbent improvement.
  double adaptive_prune_decay = 0.9;
  /// Lower bound of the effective pruning factor under adaptive tightening.
  /// Clamped to cost_prune_factor, so the feedback can only ever tighten
  /// the configured factor, never raise it.
  double adaptive_prune_floor = 1.05;
  /// Exploration budget: stop after this many plans have been expanded
  /// (pruned pops do not count). 0 (default) = unlimited. Only the memo
  /// path enforces it.
  size_t max_expansions = 0;
  /// Shard the memo by the root operator kind of the probed plan: each shard
  /// is an independent hash table, so probes for plans of different root
  /// kinds never touch the same structure. Sharding only routes probes; the
  /// admitted plan sequence is byte-identical either way. The parallel
  /// driver (num_threads > 1) always runs with the sharded memo.
  bool shard_memo_by_root_kind = false;
  /// Threads for the memo search. 1 (default) runs the serial driver — the
  /// lock-free fast path, byte-identical to every earlier release. >1 runs
  /// the parallel driver: worker threads expand and materialize plans from
  /// a shared work-stealing frontier while the calling thread replays
  /// admission serially, so the admitted plan sequence (fingerprints,
  /// parents, rule ids, canonical strings), the per-plan costs, and every
  /// search counter (matches, admitted, gated_out, memo_hits, cost_pruned,
  /// expanded, truncated) are byte-identical to the num_threads=1 run under
  /// either search strategy, with pruning and budgets included
  /// (tests/test_parallel_enumerate.cc locks this; bench_parallel_search
  /// gates the speedup). Only the interner/cache session totals may differ
  /// — they additionally count speculative work. 0 = one thread per
  /// hardware core. The parallel driver switches any session
  /// interner/derivation pair it is given into concurrent (striped-lock)
  /// mode permanently. The legacy string-dedup path rejects
  /// num_threads > 1.
  size_t num_threads = 1;
  /// Cost/cardinality models backing the pruning bound and the best-first
  /// frontier order.
  EngineConfig cost_engine;
  CardinalityParams cardinality;
  /// Run the seed implementation (canonical-string dedup, two annotation
  /// passes per plan, no interning). Kept as the before-side of the
  /// before/after comparison in bench_fig5_enumeration.
  bool use_legacy_string_dedup = false;
  /// Fill EnumeratedPlan::canonical with the plan's canonical string. Plan
  /// identity is fingerprint/pointer-based, so the memo path only serializes
  /// for callers that assert on strings (tests, the A/B bench); the Engine
  /// facade turns this off. The legacy path always fills it — the string IS
  /// its dedup key.
  bool fill_canonical = true;
  /// Per-query span recorder (core/trace.h); non-owning, nullptr = untraced.
  /// The enumeration drivers emit one span per run with the search counters
  /// as attributes, plus per-expansion spans on the serial memo path.
  Tracer* tracer = nullptr;
};

/// One enumerated plan with its derivation edge.
struct EnumeratedPlan {
  PlanPtr plan;
  std::string canonical;
  /// Structural fingerprint of the plan (equals plan->fingerprint()).
  uint64_t fingerprint = 0;
  /// Index of the plan this one was derived from; -1 for the initial plan.
  int parent = -1;
  /// Rule that produced it (empty for the initial plan).
  std::string rule_id;
};

/// The enumeration outcome.
struct EnumerationResult {
  std::vector<EnumeratedPlan> plans;
  bool truncated = false;
  /// Rule applications attempted (match found) / admitted by the gating.
  size_t matches = 0;
  size_t admitted = 0;
  /// Applications rejected by the Figure 5 property gating.
  size_t gated_out = 0;
  /// Candidates dropped because their canonical root was already in the memo
  /// (the memo path's analogue of a string-dedup rejection).
  size_t memo_hits = 0;
  /// Distinct plan nodes owned by the interning table at the end.
  /// Session/driver totals, not search outcomes: with session caches they
  /// accumulate across queries, and under the parallel driver they include
  /// speculative materialization of candidates the admission loop later
  /// dropped. All other counters are deterministic across drivers.
  size_t interner_nodes = 0;
  /// Intern() visits resolved to an already-canonical node (same caveat).
  size_t interner_hits = 0;
  /// Bottom-up derivation-cache entries at the end (same caveat).
  size_t cache_nodes = 0;
  /// Plans admitted to the result but not expanded due to cost pruning.
  size_t cost_pruned = 0;
  /// Plans actually expanded (popped from the frontier and not pruned).
  /// Equals plans.size() for an exhaustive run, on the memo and legacy
  /// paths alike.
  size_t expanded = 0;
  /// Estimated cost of each admitted plan, aligned with `plans`. Filled only
  /// when the enumeration costs plans at all (pruning enabled or best-first
  /// strategy); empty otherwise. Computed against the same derivation cache
  /// and models the optimizer's final choice uses, so Optimize can reuse
  /// these instead of re-costing the whole set.
  std::vector<double> costs;

  /// Reconstructs the rule chain that derived plan `index` from the initial
  /// plan (oldest first). Robust to plans whose parents appear at any
  /// earlier index, regardless of expansion order.
  std::vector<std::string> DerivationOf(size_t index) const;
};

/// Runs the Figure 5 algorithm. Fails only if the initial plan is malformed.
Result<EnumerationResult> EnumeratePlans(const PlanPtr& initial,
                                         const Catalog& catalog,
                                         const QueryContract& contract,
                                         const std::vector<Rule>& rules,
                                         const EnumerationOptions& options = {});

/// Same, threading session-scoped search state: `interner` hash-conses every
/// admitted plan and `derivation` memoizes bottom-up node information, so a
/// caller serving repeated queries (tqp::Engine) pays for subtree derivation
/// only the first time a subtree appears anywhere in the session. Either may
/// be nullptr (a call-local one is used). A shared cache is only sound
/// against one catalog version and one CardinalityParams setting — the
/// Engine invalidates both on catalog mutation. The legacy string-dedup path
/// does not intern and ignores both. The enumerated plan sequence is
/// independent of cache warmth (warm/cold runs are byte-identical); only the
/// interner/cache counters in EnumerationResult reflect session totals.
Result<EnumerationResult> EnumeratePlans(const PlanPtr& initial,
                                         const Catalog& catalog,
                                         const QueryContract& contract,
                                         const std::vector<Rule>& rules,
                                         const EnumerationOptions& options,
                                         PlanInterner* interner,
                                         DerivationCache* derivation);

/// True iff a rule of type `equiv` is admitted at a location given the
/// properties of the location's operations (the Figure 5 disjunction).
/// Exposed for tests and the property benches; an AnnotatedPlan converts
/// implicitly into the PlanContext view.
bool RuleAdmitted(EquivalenceType equiv,
                  const std::vector<const PlanNode*>& location,
                  const PlanContext& ctx);

/// Rules that may keep their ≡L claim when their location includes DBMS-site
/// operations (Section 4.5's sort exception).
bool IsOrderSafeAcrossSites(const std::string& rule_id);

}  // namespace tqp

#endif  // TQP_OPT_ENUMERATE_H_
