#include "opt/enumerate.h"

#include <unordered_set>

namespace tqp {

std::vector<std::string> EnumerationResult::DerivationOf(size_t index) const {
  std::vector<std::string> chain;
  int i = static_cast<int>(index);
  while (i >= 0 && !plans[static_cast<size_t>(i)].rule_id.empty()) {
    chain.push_back(plans[static_cast<size_t>(i)].rule_id);
    i = plans[static_cast<size_t>(i)].parent;
  }
  std::reverse(chain.begin(), chain.end());
  return chain;
}

bool RuleAdmitted(EquivalenceType equiv,
                  const std::vector<const PlanNode*>& location,
                  const AnnotatedPlan& ann) {
  bool need_no_order = false, need_no_dups = false, need_no_periods = false;
  switch (equiv) {
    case EquivalenceType::kList:
      return true;
    case EquivalenceType::kMultiset:
      need_no_order = true;
      break;
    case EquivalenceType::kSet:
      need_no_order = true;
      need_no_dups = true;
      break;
    case EquivalenceType::kSnapshotList:
      need_no_periods = true;
      break;
    case EquivalenceType::kSnapshotMultiset:
      need_no_order = true;
      need_no_periods = true;
      break;
    case EquivalenceType::kSnapshotSet:
      need_no_order = true;
      need_no_dups = true;
      need_no_periods = true;
      break;
  }
  for (const PlanNode* op : location) {
    const NodeInfo& info = ann.info(op);
    if (need_no_order && info.order_required) return false;
    if (need_no_dups && info.duplicates_relevant) return false;
    if (need_no_periods && info.period_preserving) return false;
  }
  return true;
}

bool IsOrderSafeAcrossSites(const std::string& rule_id) {
  return rule_id == "T-USORT" || rule_id == "T-USORT'" || rule_id == "S1" ||
         rule_id == "S3";
}

Result<EnumerationResult> EnumeratePlans(const PlanPtr& initial,
                                         const Catalog& catalog,
                                         const QueryContract& contract,
                                         const std::vector<Rule>& rules,
                                         const EnumerationOptions& options) {
  // The initial plan must be well-formed; everything downstream re-validates.
  {
    Result<AnnotatedPlan> check =
        AnnotatedPlan::Make(initial, &catalog, contract);
    if (!check.ok()) return check.status();
  }

  EnumerationResult result;
  std::unordered_set<std::string> seen;
  size_t size_cap = PlanSize(initial) + options.max_plan_growth;

  result.plans.push_back(
      EnumeratedPlan{initial, CanonicalString(initial), -1, ""});
  seen.insert(result.plans[0].canonical);

  for (size_t p = 0; p < result.plans.size(); ++p) {
    if (result.plans.size() >= options.max_plans) {
      result.truncated = true;
      break;
    }
    PlanPtr plan = result.plans[p].plan;
    Result<AnnotatedPlan> ann_res =
        AnnotatedPlan::Make(plan, &catalog, contract);
    if (!ann_res.ok()) continue;  // defensive: skip invalid derived plans
    const AnnotatedPlan& ann = ann_res.value();

    std::vector<PlanPtr> locations;
    CollectNodes(plan, &locations);

    for (const Rule& rule : rules) {
      for (const PlanPtr& loc : locations) {
        std::optional<RuleMatch> match = rule.TryApply(loc, ann);
        if (!match.has_value()) continue;
        ++result.matches;

        // Section 4.5: ≡L rules are weakened to ≡M when the location spans
        // DBMS-site operations, except the order-safe sort rules.
        EquivalenceType effective = rule.equivalence();
        if (effective == EquivalenceType::kList &&
            !IsOrderSafeAcrossSites(rule.id())) {
          for (const PlanNode* op : match->location) {
            if (ann.info(op).site == Site::kDbms) {
              effective = EquivalenceType::kMultiset;
              break;
            }
          }
        }

        if (options.admitted.count(effective) == 0) continue;
        if (!RuleAdmitted(effective, match->location, ann)) {
          ++result.gated_out;
          continue;
        }
        ++result.admitted;

        PlanPtr rewritten = ReplaceNode(plan, loc.get(), match->replacement);
        if (PlanSize(rewritten) > size_cap) continue;
        std::string canon = CanonicalString(rewritten);
        if (!seen.insert(canon).second) continue;
        // Re-validate: a rewrite may produce a site-inconsistent or
        // schema-invalid plan in rare compositions; those are dropped.
        if (!AnnotatedPlan::Make(rewritten, &catalog, contract).ok()) {
          seen.erase(canon);
          continue;
        }
        result.plans.push_back(EnumeratedPlan{rewritten, std::move(canon),
                                              static_cast<int>(p), rule.id()});
        if (result.plans.size() >= options.max_plans) break;
      }
      if (result.plans.size() >= options.max_plans) break;
    }
  }
  if (result.plans.size() >= options.max_plans) result.truncated = true;
  return result;
}

}  // namespace tqp
