#include "opt/enumerate.h"

#include <array>
#include <deque>
#include <optional>
#include <queue>
#include <unordered_map>
#include <unordered_set>

#include "algebra/intern.h"

namespace tqp {

std::vector<std::string> EnumerationResult::DerivationOf(size_t index) const {
  std::vector<std::string> chain;
  int i = static_cast<int>(index);
  while (i >= 0 && !plans[static_cast<size_t>(i)].rule_id.empty()) {
    chain.push_back(plans[static_cast<size_t>(i)].rule_id);
    i = plans[static_cast<size_t>(i)].parent;
  }
  std::reverse(chain.begin(), chain.end());
  return chain;
}

bool RuleAdmitted(EquivalenceType equiv,
                  const std::vector<const PlanNode*>& location,
                  const PlanContext& ctx) {
  bool need_no_order = false, need_no_dups = false, need_no_periods = false;
  switch (equiv) {
    case EquivalenceType::kList:
      return true;
    case EquivalenceType::kMultiset:
      need_no_order = true;
      break;
    case EquivalenceType::kSet:
      need_no_order = true;
      need_no_dups = true;
      break;
    case EquivalenceType::kSnapshotList:
      need_no_periods = true;
      break;
    case EquivalenceType::kSnapshotMultiset:
      need_no_order = true;
      need_no_periods = true;
      break;
    case EquivalenceType::kSnapshotSet:
      need_no_order = true;
      need_no_dups = true;
      need_no_periods = true;
      break;
  }
  for (const PlanNode* op : location) {
    NodeProps props = ctx.props(op);
    if (need_no_order && props.order_required) return false;
    if (need_no_dups && props.duplicates_relevant) return false;
    if (need_no_periods && props.period_preserving) return false;
  }
  return true;
}

bool IsOrderSafeAcrossSites(const std::string& rule_id) {
  return rule_id == "T-USORT" || rule_id == "T-USORT'" || rule_id == "S1" ||
         rule_id == "S3";
}

namespace {

// Bound on a plan's unfolded (per-occurrence) node count: the per-plan walks
// are linear in it, and adversarial DAG chains could otherwise make it
// exponential in the node count.
constexpr size_t kMaxUnfoldedPlanSize = 1u << 20;

// Section 4.5: ≡L rules are weakened to ≡M when the location spans DBMS-site
// operations, except the order-safe sort rules.
EquivalenceType EffectiveEquivalence(const Rule& rule, const RuleMatch& match,
                                     const PlanContext& ctx) {
  EquivalenceType effective = rule.equivalence();
  if (effective == EquivalenceType::kList &&
      !IsOrderSafeAcrossSites(rule.id())) {
    for (const PlanNode* op : match.location) {
      if (ctx.info(op).site == Site::kDbms) {
        return EquivalenceType::kMultiset;
      }
    }
  }
  return effective;
}

// The seed implementation: canonical-string dedup, a full rule × location
// scan per plan, and two annotation passes per distinct plan. Retained
// verbatim as the "before" side of bench_fig5_enumeration's A/B comparison;
// it must keep producing the identical plan sequence as the memo path.
Result<EnumerationResult> EnumerateLegacy(const PlanPtr& initial,
                                          const Catalog& catalog,
                                          const QueryContract& contract,
                                          const std::vector<Rule>& rules,
                                          const EnumerationOptions& options) {
  if (initial->subtree_size() > kMaxUnfoldedPlanSize) {
    return Status::InvalidArgument("initial plan too large when unfolded");
  }
  if (options.strategy != SearchStrategy::kBreadthFirst) {
    return Status::InvalidArgument(
        "legacy enumeration supports breadth-first only; use the memo "
        "enumerator for cost-directed search");
  }
  // The seed algorithm rewrites with ReplaceNode (which replaces every
  // occurrence of a node object), so it is only sound on proper trees;
  // reject shared-subtree inputs exactly as the seed's annotation pass did.
  // The memo path handles them (path-based rewrites, per-occurrence props).
  {
    std::vector<PlanPtr> nodes;
    CollectNodes(initial, &nodes);
    std::unordered_set<const PlanNode*> unique;
    for (const PlanPtr& n : nodes) unique.insert(n.get());
    if (unique.size() != nodes.size()) {
      return Status::InvalidArgument(
          "legacy enumeration requires a proper tree plan (no shared "
          "subtrees); use the memo enumerator");
    }
  }
  {
    Result<AnnotatedPlan> check =
        AnnotatedPlan::Make(initial, &catalog, contract, options.cardinality);
    if (!check.ok()) return check.status();
  }

  EnumerationResult result;
  std::unordered_set<std::string> seen;
  size_t size_cap = PlanSize(initial) + options.max_plan_growth;

  result.plans.push_back(EnumeratedPlan{initial, CanonicalString(initial),
                                        initial->fingerprint(), -1, ""});
  seen.insert(result.plans[0].canonical);

  for (size_t p = 0; p < result.plans.size(); ++p) {
    if (result.plans.size() >= options.max_plans) {
      result.truncated = true;
      break;
    }
    PlanPtr plan = result.plans[p].plan;
    Result<AnnotatedPlan> ann_res =
        AnnotatedPlan::Make(plan, &catalog, contract, options.cardinality);
    if (!ann_res.ok()) continue;  // defensive: skip invalid derived plans
    ++result.expanded;
    const AnnotatedPlan& ann = ann_res.value();

    std::vector<PlanPtr> locations;
    CollectNodes(plan, &locations);

    for (const Rule& rule : rules) {
      for (const PlanPtr& loc : locations) {
        std::optional<RuleMatch> match = rule.TryApply(loc, ann);
        if (!match.has_value()) continue;
        ++result.matches;

        EquivalenceType effective = EffectiveEquivalence(rule, *match, ann);
        if (options.admitted.count(effective) == 0) continue;
        if (!RuleAdmitted(effective, match->location, ann)) {
          ++result.gated_out;
          continue;
        }
        ++result.admitted;

        PlanPtr rewritten = ReplaceNode(plan, loc.get(), match->replacement);
        if (PlanSize(rewritten) > size_cap) continue;
        std::string canon = CanonicalString(rewritten);
        if (!seen.insert(canon).second) continue;
        // Re-validate: a rewrite may produce a site-inconsistent or
        // schema-invalid plan in rare compositions; those are dropped.
        if (!AnnotatedPlan::Make(rewritten, &catalog, contract,
                                 options.cardinality)
                 .ok()) {
          seen.erase(canon);
          continue;
        }
        result.plans.push_back(EnumeratedPlan{rewritten, std::move(canon),
                                              rewritten->fingerprint(),
                                              static_cast<int>(p), rule.id()});
        if (result.plans.size() >= options.max_plans) break;
      }
      if (result.plans.size() >= options.max_plans) break;
    }
  }
  if (result.plans.size() >= options.max_plans) result.truncated = true;
  return result;
}

// Canonical strings of interned plans, memoized per canonical node so the
// serialization of a shared subtree is built once across the whole plan
// space. Produces byte-identical output to CanonicalString().
class CanonicalCache {
 public:
  const std::string& Of(const PlanPtr& plan) {
    auto it = memo_.find(plan.get());
    if (it != memo_.end()) return it->second;
    std::string out = plan->Describe();
    if (!plan->children().empty()) {
      out += "(";
      for (size_t i = 0; i < plan->children().size(); ++i) {
        if (i > 0) out += ",";
        out += Of(plan->child(i));
      }
      out += ")";
    }
    return memo_.emplace(plan.get(), std::move(out)).first->second;
  }

 private:
  std::unordered_map<const PlanNode*, std::string> memo_;
};

// The memo over admitted plans: fingerprint -> indices in result.plans,
// optionally sharded by the probed plan's root-operator kind. Sharding is a
// first cut at partitioned search — each shard is an independent hash table,
// so a future parallel driver can probe and grow partitions without
// cross-shard coordination. It only routes probes: the admitted plan
// sequence is identical with sharding on or off, because a plan's root kind
// is a pure function of the plan and every probe/insert for one plan goes
// to the same shard.
class MemoIndex {
 public:
  MemoIndex(bool sharded, size_t reserve_hint)
      : shards_(sharded ? kOpKindCount : 1) {
    for (auto& shard : shards_) {
      shard.reserve(reserve_hint / shards_.size() + 1);
    }
  }

  const std::vector<size_t>* Find(OpKind root_kind, uint64_t fp) const {
    const Shard& shard = shards_[ShardOf(root_kind)];
    auto it = shard.find(fp);
    return it == shard.end() ? nullptr : &it->second;
  }

  void Add(OpKind root_kind, uint64_t fp, size_t plan_index) {
    shards_[ShardOf(root_kind)][fp].push_back(plan_index);
  }

 private:
  using Shard = std::unordered_map<uint64_t, std::vector<size_t>>;

  size_t ShardOf(OpKind kind) const {
    return shards_.size() == 1 ? 0 : static_cast<size_t>(kind);
  }

  std::vector<Shard> shards_;
};

// The frontier of unexpanded plan indices. Breadth-first consumes admitted
// plans in index order (the exact Figure 5 worklist); best-first pops the
// cheapest plan first, breaking cost ties on the admission index so repeated
// runs pop in the identical order.
class Frontier {
 public:
  explicit Frontier(bool best_first) : best_first_(best_first) {}

  /// Breadth-first reads plans straight out of result.plans, so only the
  /// best-first heap needs explicit pushes.
  void Push(size_t index, double cost) {
    if (best_first_) heap_.emplace(cost, index);
  }

  /// Next plan index to consider, or nullopt when the frontier is drained.
  /// `admitted` is the current result.plans.size().
  std::optional<size_t> Pop(size_t admitted) {
    if (best_first_) {
      if (heap_.empty()) return std::nullopt;
      size_t index = heap_.top().second;
      heap_.pop();
      return index;
    }
    if (next_ >= admitted) return std::nullopt;
    return next_++;
  }

 private:
  bool best_first_;
  size_t next_ = 0;  // breadth-first cursor
  // (cost, admission index), cheapest first; index tie-break via
  // std::greater on the pair.
  std::priority_queue<std::pair<double, size_t>,
                      std::vector<std::pair<double, size_t>>,
                      std::greater<std::pair<double, size_t>>>
      heap_;
};

// The memo path: hash-consed plans, pointer-keyed dedup, path-copy rewrites,
// one annotation per distinct plan against a shared bottom-up cache, and
// optional cost-bounded pruning.
Result<EnumerationResult> EnumerateMemo(const PlanPtr& initial,
                                        const Catalog& catalog,
                                        const QueryContract& contract,
                                        const std::vector<Rule>& rules,
                                        const EnumerationOptions& options,
                                        PlanInterner* ext_interner,
                                        DerivationCache* ext_derivation) {
  if (initial->subtree_size() > kMaxUnfoldedPlanSize) {
    return Status::InvalidArgument("initial plan too large when unfolded");
  }

  // Session-scoped state when the caller provides it (cross-query reuse in
  // tqp::Engine), call-local otherwise. Warmth never changes which plans are
  // admitted or their order: interning only affects pointer identity, and a
  // cached node is guaranteed to head a valid subtree under the same catalog.
  PlanInterner local_interner;
  DerivationCache local_derivation;
  PlanInterner& interner = ext_interner ? *ext_interner : local_interner;
  DerivationCache& cache = ext_derivation ? *ext_derivation : local_derivation;
  CanonicalCache canon;

  PlanPtr root = interner.Intern(initial);
  TQP_RETURN_IF_ERROR(cache.Derive(root, catalog, options.cardinality));

  const bool pruning = options.cost_prune_factor > 0.0;
  const bool best_first = options.strategy == SearchStrategy::kBestFirst;
  // Plans are costed whenever cost can steer the search: for the pruning
  // bound, or to order the best-first frontier.
  const bool costing = pruning || best_first;

  EnumerationResult result;
  // Memo: plan fingerprint -> indices in result.plans (optionally sharded by
  // root kind). Probed BEFORE a candidate rewrite is materialized
  // (FingerprintAtPath walks the spine without constructing a node); a hit
  // is confirmed structurally with EqualsWithReplacement, so fingerprint
  // collisions can never merge distinct plans — they only make the bucket
  // vector longer than one.
  MemoIndex memo(options.shard_memo_by_root_kind,
                 std::min<size_t>(options.max_plans, 4096));
  std::vector<double>& costs = result.costs;
  double best_cost = 0.0;

  // Annotation view for rules and gating: bottom-up facts come straight from
  // the shared derivation cache (zero per-plan copies); the Table 2
  // properties of the plan being expanded live in `props`, rebuilt per plan
  // by a single cheap walk.
  PlanContext::PropsTable props;
  PlanContext ctx(&cache, &props, &contract);
  // Costing runs against a context of its own, backed solely by the shared
  // derivation cache: each plan is costed right after it is derived, so
  // every bottom-up fact it needs is present, and the context cannot read
  // the *expanding* plan's props table or occurrence window (which describe
  // the parent, not the rewritten plan). The cost model consults bottom-up
  // information only, so no props backing is needed.
  PlanContext cost_ctx(&cache, /*props=*/nullptr, &contract);

  // Computes the Table 2 properties of every node occurrence of `plan`, one
  // entry per occurrence in pre-order — the same order CollectLocations
  // uses, so occurrence i of the props table is location i. The walk
  // touches exactly subtree_size() occurrences, which the enumeration's
  // size bound keeps small.
  struct PropsWalker {
    const DerivationCache& cache;
    PlanContext::PropsTable* table;
    // Every node of an expanded plan was derived into the cache when the
    // plan was admitted, so a miss here means the cache and the plan set
    // went out of sync — an internal invariant violation, never valid input.
    // DCHECK loudly in debug builds; in release, flag the walk as failed so
    // the enumeration surfaces an error status instead of dereferencing
    // null.
    bool ok = true;

    void Visit(const PlanPtr& node, const NodeProps& p) {
      table->push_back({node.get(), p});
      for (size_t i = 0; i < node->arity(); ++i) {
        bool ldf = false, lsdf = false, csdf = false;
        switch (node->kind()) {
          case OpKind::kDifference:
          case OpKind::kDifferenceT: {
            const NodeInfo* left = cache.Find(node->child(0).get());
            TQP_DCHECK(left != nullptr &&
                       "derivation cache miss under a difference node");
            if (left == nullptr) {
              ok = false;
              return;
            }
            ldf = left->duplicate_free;
            lsdf = left->snapshot_duplicate_free;
            break;
          }
          case OpKind::kCoalesce: {
            const NodeInfo* child = cache.Find(node->child(i).get());
            TQP_DCHECK(child != nullptr &&
                       "derivation cache miss under a coalesce node");
            if (child == nullptr) {
              ok = false;
              return;
            }
            csdf = child->snapshot_duplicate_free;
            break;
          }
          default:
            break;
        }
        Visit(node->child(i), DeriveChildProps(*node, i, p, ldf, lsdf, csdf));
        if (!ok) return;
      }
    }
  };
  PropsWalker props_walker{cache, &props};
  NodeProps root_props{contract.result_type == ResultType::kList,
                       contract.result_type != ResultType::kSet,
                       /*period_preserving=*/true};

  size_t size_cap = root->subtree_size() + options.max_plan_growth;

  // Canonical strings are presentation-only here (identity is the
  // fingerprint-keyed memo); skip serialization entirely when the caller
  // doesn't assert on them.
  auto canon_of = [&](const PlanPtr& p) {
    return options.fill_canonical ? canon.Of(p) : std::string();
  };

  result.plans.push_back(
      EnumeratedPlan{root, canon_of(root), root->fingerprint(), -1, ""});
  memo.Add(root->kind(), root->fingerprint(), 0);
  Frontier frontier(best_first);
  if (costing) {
    // The root is costed only now, after cache.Derive(root) above made its
    // bottom-up facts (cardinalities, sites) available.
    best_cost = EstimatePlanCost(root, cost_ctx, options.cost_engine);
    costs.push_back(best_cost);
  }
  frontier.Push(0, costing ? costs[0] : 0.0);

  // Per-plan location index: locations in pre-order, plus per-root-kind
  // buckets so each rule only visits locations it could match (in the same
  // pre-order, so the admission sequence is identical to a full scan).
  std::vector<PlanLocation> locations;
  std::array<std::vector<uint32_t>, kOpKindCount> by_kind;

  while (true) {
    if (result.plans.size() >= options.max_plans) {
      result.truncated = true;
      break;
    }
    std::optional<size_t> popped = frontier.Pop(result.plans.size());
    if (!popped.has_value()) break;
    size_t p = *popped;
    // The pruning decision happens at pop time, against the bound as it
    // stands now. best_cost only ever tightens, so a plan failing here could
    // never pass later — pruned plans are final, never re-queued — and every
    // admitted plan is popped exactly once unless a budget ends the search
    // first, which makes cost_pruned deterministic under both strategies.
    if (pruning && costs[p] > best_cost * options.cost_prune_factor) {
      ++result.cost_pruned;
      continue;
    }
    if (options.max_expansions > 0 &&
        result.expanded >= options.max_expansions) {
      // Expansion budget exhausted with this (unpruned) plan still pending.
      result.truncated = true;
      break;
    }
    ++result.expanded;
    PlanPtr plan = result.plans[p].plan;

    props.clear();
    props.reserve(plan->subtree_size());
    props_walker.ok = true;
    props_walker.Visit(plan, root_props);
    if (!props_walker.ok) {
      return Status::Error(
          "internal: derivation cache miss while computing Table 2 "
          "properties");
    }

    locations.clear();
    CollectLocations(plan, &locations);
    for (auto& bucket : by_kind) bucket.clear();
    for (uint32_t i = 0; i < locations.size(); ++i) {
      by_kind[static_cast<size_t>(locations[i].node->kind())].push_back(i);
    }

    // Attempts one rule application at location index `li`; returns false
    // once the plan cap is hit.
    auto try_location = [&](const Rule& rule, uint32_t li) {
      const PlanLocation& loc = locations[li];
      if (!rule.MatchesChild0(*loc.node)) return true;
      // Gate against the matched occurrence(s) only: restrict property
      // lookups to the pre-order span of the matched subtree.
      ctx.SetOccurrenceWindow(li, li + loc.node->subtree_size());
      std::optional<RuleMatch> match = rule.TryApply(loc.node, ctx);
      if (!match.has_value()) return true;
      ++result.matches;

      EquivalenceType effective = EffectiveEquivalence(rule, *match, ctx);
      if (options.admitted.count(effective) == 0) return true;
      if (!RuleAdmitted(effective, match->location, ctx)) {
        ++result.gated_out;
        return true;
      }
      ++result.admitted;

      // O(1) size bound check before any rewriting happens.
      size_t new_size = plan->subtree_size() - loc.node->subtree_size() +
                        match->replacement->subtree_size();
      if (new_size > size_cap) return true;

      // Probe the memo before materializing the rewrite: a duplicate
      // candidate costs one spine hash walk and one confirmed probe. The
      // candidate's root kind (its memo shard) is known without
      // materializing anything: a root rewrite adopts the replacement's
      // kind, any deeper rewrite keeps the plan's.
      uint64_t cand_fp = FingerprintAtPath(plan, loc.path,
                                           match->replacement->fingerprint());
      OpKind cand_kind =
          loc.path.empty() ? match->replacement->kind() : plan->kind();
      if (const std::vector<size_t>* bucket = memo.Find(cand_kind, cand_fp)) {
        for (size_t idx : *bucket) {
          if (EqualsWithReplacement(result.plans[idx].plan, plan, loc.path,
                                    match->replacement)) {
            ++result.memo_hits;
            return true;
          }
        }
      }

      PlanPtr rewritten = interner.RewriteInterned(
          plan, loc.path, std::move(match->replacement));
      TQP_DCHECK(rewritten->fingerprint() == cand_fp);
      TQP_DCHECK(rewritten->kind() == cand_kind);
      // Validate: only nodes the cache has never seen (the rebuilt spine)
      // are actually derived; a cached node heads a known-valid subtree.
      if (!cache.Derive(rewritten, catalog, options.cardinality).ok()) {
        return true;  // invalid composition; not memoized
      }
      size_t new_index = result.plans.size();
      memo.Add(cand_kind, cand_fp, new_index);
      result.plans.push_back(EnumeratedPlan{rewritten, canon_of(rewritten),
                                            rewritten->fingerprint(),
                                            static_cast<int>(p), rule.id()});
      if (costing) {
        // Costed against cost_ctx, never ctx: the occurrence window above
        // still describes the *parent's* matched location, and the props
        // table describes the parent plan — neither may leak into the
        // rewritten plan's cost. cache.Derive just ran, so every bottom-up
        // fact the cost model reads is present.
        double cost =
            EstimatePlanCost(rewritten, cost_ctx, options.cost_engine);
        costs.push_back(cost);
        if (cost < best_cost) best_cost = cost;
        frontier.Push(new_index, cost);
      } else {
        frontier.Push(new_index, 0.0);
      }
      return result.plans.size() < options.max_plans;
    };

    bool keep_going = true;
    for (const Rule& rule : rules) {
      const std::vector<OpKind>& kinds = rule.root_kinds();
      if (kinds.size() == 1) {
        for (uint32_t idx : by_kind[static_cast<size_t>(kinds[0])]) {
          keep_going = try_location(rule, idx);
          if (!keep_going) break;
        }
      } else if (kinds.empty()) {
        for (uint32_t idx = 0; idx < locations.size(); ++idx) {
          keep_going = try_location(rule, idx);
          if (!keep_going) break;
        }
      } else {
        for (uint32_t idx = 0; idx < locations.size(); ++idx) {
          if (!rule.MatchesRootKind(locations[idx].node->kind())) continue;
          keep_going = try_location(rule, idx);
          if (!keep_going) break;
        }
      }
      if (!keep_going) break;
    }
  }
  if (result.plans.size() >= options.max_plans) result.truncated = true;

  result.interner_nodes = interner.unique_nodes();
  result.interner_hits = interner.hits();
  result.cache_nodes = cache.size();
  return result;
}

}  // namespace

Result<EnumerationResult> EnumeratePlans(const PlanPtr& initial,
                                         const Catalog& catalog,
                                         const QueryContract& contract,
                                         const std::vector<Rule>& rules,
                                         const EnumerationOptions& options) {
  return EnumeratePlans(initial, catalog, contract, rules, options,
                        /*interner=*/nullptr, /*derivation=*/nullptr);
}

Result<EnumerationResult> EnumeratePlans(const PlanPtr& initial,
                                         const Catalog& catalog,
                                         const QueryContract& contract,
                                         const std::vector<Rule>& rules,
                                         const EnumerationOptions& options,
                                         PlanInterner* interner,
                                         DerivationCache* derivation) {
  if (options.use_legacy_string_dedup) {
    return EnumerateLegacy(initial, catalog, contract, rules, options);
  }
  return EnumerateMemo(initial, catalog, contract, rules, options, interner,
                       derivation);
}

}  // namespace tqp
