#include "opt/enumerate.h"

#include <algorithm>
#include <optional>
#include <thread>
#include <unordered_set>

#include "core/trace.h"
#include "opt/enumerate_internal.h"

namespace tqp {

std::vector<std::string> EnumerationResult::DerivationOf(size_t index) const {
  std::vector<std::string> chain;
  int i = static_cast<int>(index);
  while (i >= 0 && !plans[static_cast<size_t>(i)].rule_id.empty()) {
    chain.push_back(plans[static_cast<size_t>(i)].rule_id);
    i = plans[static_cast<size_t>(i)].parent;
  }
  std::reverse(chain.begin(), chain.end());
  return chain;
}

bool RuleAdmitted(EquivalenceType equiv,
                  const std::vector<const PlanNode*>& location,
                  const PlanContext& ctx) {
  bool need_no_order = false, need_no_dups = false, need_no_periods = false;
  switch (equiv) {
    case EquivalenceType::kList:
      return true;
    case EquivalenceType::kMultiset:
      need_no_order = true;
      break;
    case EquivalenceType::kSet:
      need_no_order = true;
      need_no_dups = true;
      break;
    case EquivalenceType::kSnapshotList:
      need_no_periods = true;
      break;
    case EquivalenceType::kSnapshotMultiset:
      need_no_order = true;
      need_no_periods = true;
      break;
    case EquivalenceType::kSnapshotSet:
      need_no_order = true;
      need_no_dups = true;
      need_no_periods = true;
      break;
  }
  for (const PlanNode* op : location) {
    NodeProps props = ctx.props(op);
    if (need_no_order && props.order_required) return false;
    if (need_no_dups && props.duplicates_relevant) return false;
    if (need_no_periods && props.period_preserving) return false;
  }
  return true;
}

bool IsOrderSafeAcrossSites(const std::string& rule_id) {
  return rule_id == "T-USORT" || rule_id == "T-USORT'" || rule_id == "S1" ||
         rule_id == "S3";
}

namespace {

using enumerate_internal::CandidateEvent;
using enumerate_internal::EnumerateMemoParallel;
using enumerate_internal::kMaxUnfoldedPlanSize;
using enumerate_internal::PlanExpander;
using enumerate_internal::SearchState;

// The seed implementation: canonical-string dedup, a full rule × location
// scan per plan, and two annotation passes per distinct plan. Retained
// verbatim as the "before" side of bench_fig5_enumeration's A/B comparison;
// it must keep producing the identical plan sequence as the memo path.
Result<EnumerationResult> EnumerateLegacy(const PlanPtr& initial,
                                          const Catalog& catalog,
                                          const QueryContract& contract,
                                          const std::vector<Rule>& rules,
                                          const EnumerationOptions& options) {
  if (initial->subtree_size() > kMaxUnfoldedPlanSize) {
    return Status::InvalidArgument("initial plan too large when unfolded");
  }
  if (options.strategy != SearchStrategy::kBreadthFirst) {
    return Status::InvalidArgument(
        "legacy enumeration supports breadth-first only; use the memo "
        "enumerator for cost-directed search");
  }
  // The seed algorithm rewrites with ReplaceNode (which replaces every
  // occurrence of a node object), so it is only sound on proper trees;
  // reject shared-subtree inputs exactly as the seed's annotation pass did.
  // The memo path handles them (path-based rewrites, per-occurrence props).
  {
    std::vector<PlanPtr> nodes;
    CollectNodes(initial, &nodes);
    std::unordered_set<const PlanNode*> unique;
    for (const PlanPtr& n : nodes) unique.insert(n.get());
    if (unique.size() != nodes.size()) {
      return Status::InvalidArgument(
          "legacy enumeration requires a proper tree plan (no shared "
          "subtrees); use the memo enumerator");
    }
  }
  {
    Result<AnnotatedPlan> check =
        AnnotatedPlan::Make(initial, &catalog, contract, options.cardinality);
    if (!check.ok()) return check.status();
  }

  EnumerationResult result;
  std::unordered_set<std::string> seen;
  size_t size_cap = PlanSize(initial) + options.max_plan_growth;

  result.plans.push_back(EnumeratedPlan{initial, CanonicalString(initial),
                                        initial->fingerprint(), -1, ""});
  seen.insert(result.plans[0].canonical);

  for (size_t p = 0; p < result.plans.size(); ++p) {
    if (result.plans.size() >= options.max_plans) {
      result.truncated = true;
      break;
    }
    PlanPtr plan = result.plans[p].plan;
    Result<AnnotatedPlan> ann_res =
        AnnotatedPlan::Make(plan, &catalog, contract, options.cardinality);
    if (!ann_res.ok()) continue;  // defensive: skip invalid derived plans
    ++result.expanded;
    const AnnotatedPlan& ann = ann_res.value();

    std::vector<PlanPtr> locations;
    CollectNodes(plan, &locations);

    for (const Rule& rule : rules) {
      for (const PlanPtr& loc : locations) {
        std::optional<RuleMatch> match = rule.TryApply(loc, ann);
        if (!match.has_value()) continue;
        ++result.matches;

        EquivalenceType effective =
            enumerate_internal::EffectiveEquivalence(rule, *match, ann);
        if (options.admitted.count(effective) == 0) continue;
        if (!RuleAdmitted(effective, match->location, ann)) {
          ++result.gated_out;
          continue;
        }
        ++result.admitted;

        PlanPtr rewritten = ReplaceNode(plan, loc.get(), match->replacement);
        if (PlanSize(rewritten) > size_cap) continue;
        std::string canon = CanonicalString(rewritten);
        if (!seen.insert(canon).second) continue;
        // Re-validate: a rewrite may produce a site-inconsistent or
        // schema-invalid plan in rare compositions; those are dropped.
        if (!AnnotatedPlan::Make(rewritten, &catalog, contract,
                                 options.cardinality)
                 .ok()) {
          seen.erase(canon);
          continue;
        }
        result.plans.push_back(EnumeratedPlan{rewritten, std::move(canon),
                                              rewritten->fingerprint(),
                                              static_cast<int>(p), rule.id()});
        if (result.plans.size() >= options.max_plans) break;
      }
      if (result.plans.size() >= options.max_plans) break;
    }
  }
  if (result.plans.size() >= options.max_plans) result.truncated = true;
  return result;
}

// The serial memo path: hash-consed plans, pointer-keyed dedup, path-copy
// rewrites, one annotation per distinct plan against a shared bottom-up
// cache, and optional cost-bounded pruning. Structured as expand-then-replay
// over the shared SearchState so that the parallel driver — which runs the
// same replay against events computed on worker threads — is byte-identical
// by construction.
Result<EnumerationResult> EnumerateMemo(const PlanPtr& initial,
                                        const Catalog& catalog,
                                        const QueryContract& contract,
                                        const std::vector<Rule>& rules,
                                        const EnumerationOptions& options,
                                        PlanInterner* ext_interner,
                                        DerivationCache* ext_derivation) {
  if (initial->subtree_size() > kMaxUnfoldedPlanSize) {
    return Status::InvalidArgument("initial plan too large when unfolded");
  }

  // Session-scoped state when the caller provides it (cross-query reuse in
  // tqp::Engine), call-local otherwise. Warmth never changes which plans are
  // admitted or their order: interning only affects pointer identity, and a
  // cached node is guaranteed to head a valid subtree under the same catalog.
  PlanInterner local_interner;
  DerivationCache local_derivation;
  PlanInterner& interner = ext_interner ? *ext_interner : local_interner;
  DerivationCache& cache = ext_derivation ? *ext_derivation : local_derivation;

  SearchState state(catalog, contract, options, interner, cache);
  TQP_RETURN_IF_ERROR(state.Start(initial));
  PlanExpander expander(cache, contract, rules, options, state.size_cap());

  std::vector<CandidateEvent> events;
  while (true) {
    std::optional<size_t> popped = state.NextToExpand();
    if (!popped.has_value()) break;
    size_t p = *popped;
    TraceSpan span(options.tracer, "opt", "expand");
    events.clear();
    TQP_RETURN_IF_ERROR(expander.Expand(state.plan(p), &events));
    for (CandidateEvent& ev : events) {
      if (!state.ReplayEvent(ev, p)) break;  // plan cap reached
    }
    if (span.active()) {
      span.Arg("plan", static_cast<uint64_t>(p));
      span.Arg("candidates", static_cast<uint64_t>(events.size()));
    }
  }
  return state.Finish();
}

}  // namespace

Result<EnumerationResult> EnumeratePlans(const PlanPtr& initial,
                                         const Catalog& catalog,
                                         const QueryContract& contract,
                                         const std::vector<Rule>& rules,
                                         const EnumerationOptions& options) {
  return EnumeratePlans(initial, catalog, contract, rules, options,
                        /*interner=*/nullptr, /*derivation=*/nullptr);
}

Result<EnumerationResult> EnumeratePlans(const PlanPtr& initial,
                                         const Catalog& catalog,
                                         const QueryContract& contract,
                                         const std::vector<Rule>& rules,
                                         const EnumerationOptions& options,
                                         PlanInterner* interner,
                                         DerivationCache* derivation) {
  size_t threads = options.num_threads != 0
                       ? options.num_threads
                       : std::max<size_t>(1, std::thread::hardware_concurrency());
  TraceSpan span(options.tracer, "opt", "enumerate");
  if (span.active()) {
    span.Arg("driver", options.use_legacy_string_dedup
                           ? "legacy"
                           : (threads > 1 ? "parallel" : "memo"));
    span.Arg("strategy", options.strategy == SearchStrategy::kBestFirst
                             ? "best_first"
                             : "breadth_first");
  }
  Result<EnumerationResult> res = [&]() -> Result<EnumerationResult> {
    if (options.use_legacy_string_dedup) {
      if (threads > 1) {
        return Status::InvalidArgument(
            "legacy enumeration is single-threaded; the parallel driver "
            "requires the memo enumerator");
      }
      return EnumerateLegacy(initial, catalog, contract, rules, options);
    }
    if (threads > 1) {
      return EnumerateMemoParallel(initial, catalog, contract, rules, options,
                                   interner, derivation);
    }
    return EnumerateMemo(initial, catalog, contract, rules, options, interner,
                         derivation);
  }();
  if (span.active() && res.ok()) {
    const EnumerationResult& r = res.value();
    span.Arg("plans", static_cast<uint64_t>(r.plans.size()));
    span.Arg("expanded", static_cast<uint64_t>(r.expanded));
    span.Arg("memo_hits", static_cast<uint64_t>(r.memo_hits));
    span.Arg("cost_pruned", static_cast<uint64_t>(r.cost_pruned));
    span.Arg("gated_out", static_cast<uint64_t>(r.gated_out));
  }
  return res;
}

}  // namespace tqp
