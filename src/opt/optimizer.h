// Cost-based plan selection over the enumerated plan space.
//
// The paper's Section 6 deliberately stops at correct-plan generation and
// leaves heuristics/cost integration as future work; this module supplies
// the natural completion: enumerate with Figure 5, estimate each plan's cost
// under the layered-architecture cost model, and pick the cheapest. The
// benchmarks ablate the pieces (gating sets, cost coefficients).
#ifndef TQP_OPT_OPTIMIZER_H_
#define TQP_OPT_OPTIMIZER_H_

#include <string>
#include <vector>

#include "exec/cost_model.h"
#include "opt/enumerate.h"

namespace tqp {

class PlanInterner;

/// Options for the full optimization pipeline.
struct OptimizerOptions {
  EnumerationOptions enumeration;
  EngineConfig engine;
  CardinalityParams cardinality;
};

/// Outcome of optimization.
struct OptimizeResult {
  PlanPtr best_plan;
  double best_cost = 0.0;
  double initial_cost = 0.0;
  size_t plans_considered = 0;
  bool truncated = false;
  /// Rules applied along the derivation of the best plan (oldest first).
  std::vector<std::string> derivation;
};

/// Enumerates equivalent plans and returns the cheapest under the cost model.
Result<OptimizeResult> Optimize(const PlanPtr& initial, const Catalog& catalog,
                                const QueryContract& contract,
                                const std::vector<Rule>& rules,
                                const OptimizerOptions& options = {});

/// Same, threading session-scoped search state (see the EnumeratePlans
/// overload): the enumeration interns through `interner` and both the
/// enumeration's validation and the costing loop share `derivation`, so a
/// repeated or structurally overlapping query re-derives almost nothing.
/// Either may be nullptr. The chosen plan, costs, and derivation chain are
/// identical to a cold call — cache warmth only changes how much work is
/// re-done, never the outcome.
Result<OptimizeResult> Optimize(const PlanPtr& initial, const Catalog& catalog,
                                const QueryContract& contract,
                                const std::vector<Rule>& rules,
                                const OptimizerOptions& options,
                                PlanInterner* interner,
                                DerivationCache* derivation);

}  // namespace tqp

#endif  // TQP_OPT_OPTIMIZER_H_
