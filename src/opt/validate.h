// Advisory validation of order-sensitive operations (Section 6).
//
// rdupT, coalT, \T and ∪T are order-sensitive: multiset-equivalent inputs
// may produce results that are not multiset equivalent. The paper assumes
// initial plans contain these operations "only when they preserve multiset
// equivalence" and lists the safe shapes (coalT combined with rdupT; coalT
// over a snapshot-duplicate-free argument; \T with a snapshot-duplicate-free
// left argument). This checker makes the assumption executable: it walks an
// annotated plan and reports every order-sensitive operation whose static
// guarantees do not establish one of the safe shapes.
#ifndef TQP_OPT_VALIDATE_H_
#define TQP_OPT_VALIDATE_H_

#include <string>
#include <vector>

#include "algebra/derivation.h"

namespace tqp {

/// One advisory finding.
struct ValidationWarning {
  const PlanNode* node = nullptr;
  std::string message;
};

/// Returns a warning for every order-sensitive operation that is not in one
/// of the paper's safe shapes. An empty result means the plan is a suitable
/// input to the enumeration algorithm of Figure 5.
std::vector<ValidationWarning> ValidateOrderSensitivity(
    const AnnotatedPlan& plan);

}  // namespace tqp

#endif  // TQP_OPT_VALIDATE_H_
