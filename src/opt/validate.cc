#include "opt/validate.h"

#include <set>
#include <utility>

namespace tqp {

namespace {

// `normalized` is true inside a coalT(rdupT(·)) scope: the idiom maps every
// snapshot-set-equivalent input to the same relation, so the order
// sensitivity of operations below it cannot reach the result (this is what
// legitimizes the paper's own Figure 2(a) plan, whose bottom rdupT feeds \T
// under a top-level coalT∘rdupT).
//
// Hash-consed plans may share subtrees; `seen` keeps the walk linear in the
// number of distinct (node, scope) states and each warning unique.
void Visit(const AnnotatedPlan& plan, const PlanPtr& node, bool normalized,
           std::set<std::pair<const PlanNode*, bool>>* seen,
           std::vector<ValidationWarning>* out) {
  if (!seen->emplace(node.get(), normalized).second) return;
  const NodeInfo* child_info =
      node->arity() > 0 ? &plan.info(node->child(0).get()) : nullptr;
  if (!normalized) {
    switch (node->kind()) {
      case OpKind::kRdupT: {
        if (!child_info->snapshot_duplicate_free) {
          out->push_back(ValidationWarning{
              node.get(),
              "rdupT over a possibly snapshot-duplicated input outside a "
              "coalT(rdupT(.)) scope: the result depends on the input "
              "order"});
        }
        break;
      }
      case OpKind::kCoalesce: {
        if (!child_info->snapshot_duplicate_free &&
            node->child(0)->kind() != OpKind::kRdupT) {
          out->push_back(ValidationWarning{
              node.get(),
              "coalT over a possibly snapshot-duplicated input: greedy "
              "adjacency merging depends on the input order"});
        }
        break;
      }
      case OpKind::kDifferenceT: {
        if (!plan.info(node->child(0).get()).snapshot_duplicate_free) {
          out->push_back(ValidationWarning{
              node.get(),
              "\\T with a possibly snapshot-duplicated left argument: "
              "fragment attribution depends on the input order"});
        }
        break;
      }
      case OpKind::kUnionT: {
        if (!plan.info(node->child(0).get()).snapshot_duplicate_free ||
            !plan.info(node->child(1).get()).snapshot_duplicate_free) {
          out->push_back(ValidationWarning{
              node.get(),
              "unionT over possibly snapshot-duplicated arguments: the "
              "result's tuple layout depends on the input order"});
        }
        break;
      }
      default:
        break;
    }
  }
  bool enters_idiom = node->kind() == OpKind::kCoalesce &&
                      node->child(0)->kind() == OpKind::kRdupT;
  for (const PlanPtr& c : node->children()) {
    Visit(plan, c, normalized || enters_idiom, seen, out);
  }
}

}  // namespace

std::vector<ValidationWarning> ValidateOrderSensitivity(
    const AnnotatedPlan& plan) {
  std::vector<ValidationWarning> out;
  std::set<std::pair<const PlanNode*, bool>> seen;
  Visit(plan, plan.plan(), /*normalized=*/false, &seen, &out);
  return out;
}

}  // namespace tqp
