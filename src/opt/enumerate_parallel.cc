// The parallel memo-search driver: deterministic parallelism for Figure 5.
//
// Expanding one plan — the Table 2 props walk, rule matching, gating,
// candidate fingerprinting, plus interning, validation, and costing of each
// admissible candidate — is a pure-per-plan computation: it reads only the
// plan's immutable nodes, the rules, and the concurrent interner/derivation
// cache, whose inserts are idempotent and structural. Admission — memo
// probes, counter updates, the frontier — is inherently order-dependent.
// The driver therefore splits them:
//
//   * N-1 worker threads pull plan indices from a shared frontier queue and
//     expand + materialize them into CandidateEvent lists, in any order
//     (idle workers steal whatever is pending; under best-first the queue
//     is cost-ordered so speculation tracks the authoritative pop order).
//   * The calling thread runs the authoritative SearchState loop: it pops
//     plans in the exact serial order, applies pruning/budget decisions,
//     and replays each plan's events serially — by then an event replay is
//     just an O(1) pointer-confirmed memo probe plus counter/frontier
//     pushes. When it reaches a plan no worker has claimed yet, it expands
//     the plan inline rather than wait.
//
// Because every admission decision happens on the calling thread in the
// serial order, the admitted plan sequence (with parents, rule ids, and
// canonical strings), the costs, and all search counters (matches,
// admitted, gated_out, memo_hits, cost_pruned, expanded, truncated) are
// byte-identical to the serial driver. Speculation can only waste worker
// time (a pruned or truncated plan's expansion is discarded) — it never
// changes the outcome; only the interner/cache *session totals* reflect it.
// The memo is always root-kind sharded here (routing keeps the buckets
// short; sharding is sequence-neutral, see MemoIndex).
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <queue>
#include <thread>
#include <utility>
#include <vector>

#include "opt/enumerate_internal.h"

namespace tqp {
namespace enumerate_internal {

namespace {

/// One plan's expansion slot. `state` transitions kPending → kRunning →
/// kDone (a worker, or the admission thread claiming/helping inline), or
/// kPending → kCancelled (pruned before anyone started). All transitions
/// happen under the driver mutex.
struct Slot {
  enum State : uint8_t { kPending, kRunning, kDone, kCancelled };
  State state = kPending;
  Status status = Status::OK();
  std::vector<CandidateEvent> events;
};

/// The work-stealing frontier shared by the workers: pending plan indices
/// plus everything needed to hand one to a thief. Breadth-first pushes in
/// admission order (= pop order); best-first pushes with the plan's cost so
/// workers speculate on the cheapest — most-likely-next — plans first.
struct WorkQueue {
  struct Task {
    double priority = 0.0;  // cost under best-first, admission index else
    size_t index = 0;
    PlanPtr plan;
  };
  struct ByPriority {
    bool operator()(const Task& a, const Task& b) const {
      // Cheapest first; admission-index tie-break for determinism of the
      // *speculation order* (the search outcome never depends on it).
      return a.priority != b.priority ? a.priority > b.priority
                                      : a.index > b.index;
    }
  };

  explicit WorkQueue(bool best_first) : best_first(best_first) {}

  void Push(Task task) {
    if (best_first) {
      heap.push(std::move(task));
    } else {
      fifo.push_back(std::move(task));
    }
  }

  bool Empty() const { return best_first ? heap.empty() : fifo.empty(); }

  Task Pop() {
    if (best_first) {
      Task t = heap.top();
      heap.pop();
      return t;
    }
    Task t = std::move(fifo.front());
    fifo.pop_front();
    return t;
  }

  const bool best_first;
  std::deque<Task> fifo;
  std::priority_queue<Task, std::vector<Task>, ByPriority> heap;
};

}  // namespace

Result<EnumerationResult> EnumerateMemoParallel(
    const PlanPtr& initial, const Catalog& catalog,
    const QueryContract& contract, const std::vector<Rule>& rules,
    const EnumerationOptions& options, PlanInterner* ext_interner,
    DerivationCache* ext_derivation) {
  if (initial->subtree_size() > kMaxUnfoldedPlanSize) {
    return Status::InvalidArgument("initial plan too large when unfolded");
  }

  EnumerationOptions opts = options;
  opts.shard_memo_by_root_kind = true;
  size_t num_threads = opts.num_threads != 0
                           ? opts.num_threads
                           : std::max<size_t>(
                                 1, std::thread::hardware_concurrency());
  TQP_CHECK(num_threads >= 2);

  PlanInterner local_interner;
  DerivationCache local_derivation;
  PlanInterner& interner = ext_interner ? *ext_interner : local_interner;
  DerivationCache& cache = ext_derivation ? *ext_derivation : local_derivation;
  // Workers intern and derive speculatively, so both structures must take
  // their striped locks for the whole call (and, for an external pair,
  // from now on — concurrent mode is one-way).
  interner.EnableConcurrentAccess();
  cache.EnableConcurrentAccess();

  SearchState state(catalog, contract, opts, interner, cache);
  TQP_RETURN_IF_ERROR(state.Start(initial));

  // ---- Shared driver state (guarded by mu). ----
  std::mutex mu;
  // One condition for everything: task pushed, slot completed, shutdown.
  // Workers wait for tasks; the admission thread waits for the slot it
  // needs — or for a task it can help with instead of idling.
  std::condition_variable cv;
  WorkQueue queue(opts.strategy == SearchStrategy::kBestFirst);
  std::deque<Slot> slots;  // index-aligned with result.plans
  bool shutdown = false;

  slots.emplace_back();
  {
    std::lock_guard<std::mutex> lock(mu);
    queue.Push({0.0, 0, state.plan(0)});
  }

  const bool costing = state.costing();
  // Expansion + materialization of one plan, shared by workers and the
  // admission thread's inline path. Pure per plan: candidate events are a
  // function of the plan alone, and MaterializeEvent's interning/derivation
  // are idempotent against the concurrent session structures.
  auto expand_plan = [&](PlanExpander& expander, const PlanContext& cost_ctx,
                         const PlanPtr& plan,
                         std::vector<CandidateEvent>* events) -> Status {
    TQP_RETURN_IF_ERROR(expander.Expand(plan, events));
    for (CandidateEvent& ev : *events) {
      MaterializeEvent(ev, plan, interner, cache, catalog, opts, costing,
                       cost_ctx);
    }
    return Status::OK();
  };

  // Pops the next startable task, skipping cancelled/claimed ones.
  // `mu` must be held.
  auto claim_task = [&]() -> std::optional<WorkQueue::Task> {
    while (!queue.Empty()) {
      WorkQueue::Task task = queue.Pop();
      // A pruned plan's slot was cancelled; a claimed one is being expanded
      // by someone else. Either way the work is gone.
      if (slots[task.index].state != Slot::kPending) continue;
      slots[task.index].state = Slot::kRunning;
      return task;
    }
    return std::nullopt;
  };
  // Expands `task` into its slot; call with `lock` held, returns with it
  // held (the expansion itself runs unlocked).
  auto run_task = [&](PlanExpander& expander, const PlanContext& cost_ctx,
                      const WorkQueue::Task& task,
                      std::unique_lock<std::mutex>& lock) {
    lock.unlock();
    std::vector<CandidateEvent> events;
    Status status = expand_plan(expander, cost_ctx, task.plan, &events);
    lock.lock();
    Slot& slot = slots[task.index];
    slot.status = std::move(status);
    slot.events = std::move(events);
    slot.state = Slot::kDone;
    cv.notify_all();
  };

  auto worker_loop = [&]() {
    PlanExpander expander(cache, contract, rules, opts, state.size_cap());
    PlanContext cost_ctx(&cache, /*props=*/nullptr, &contract);
    std::unique_lock<std::mutex> lock(mu);
    while (true) {
      cv.wait(lock, [&] { return shutdown || !queue.Empty(); });
      if (shutdown) return;
      std::optional<WorkQueue::Task> task = claim_task();
      if (task.has_value()) run_task(expander, cost_ctx, *task, lock);
    }
  };

  std::vector<std::thread> workers;
  workers.reserve(num_threads - 1);
  for (size_t i = 0; i + 1 < num_threads; ++i) {
    workers.emplace_back(worker_loop);
  }

  // The admission thread's own expander, for plans it claims inline.
  PlanExpander inline_expander(cache, contract, rules, opts,
                               state.size_cap());
  PlanContext inline_cost_ctx(&cache, /*props=*/nullptr, &contract);

  // Feed admissions into the worker queue, and release pruned slots so
  // workers skip them.
  state.SetHooks(
      /*on_admitted=*/[&](size_t index) {
        std::lock_guard<std::mutex> lock(mu);
        slots.emplace_back();
        queue.Push({state.costing() ? state.cost(index)
                                    : static_cast<double>(index),
                    index, state.plan(index)});
        cv.notify_all();
      },
      /*on_pruned=*/[&](size_t index) {
        std::lock_guard<std::mutex> lock(mu);
        if (slots[index].state == Slot::kPending) {
          slots[index].state = Slot::kCancelled;
        }
      });

  // ---- The authoritative admission loop (byte-identical to the serial
  // driver: same pops, same prune/budget decisions, same replay order). ----
  Status failure = Status::OK();
  while (true) {
    std::optional<size_t> popped = state.NextToExpand();
    if (!popped.has_value()) break;
    size_t p = *popped;

    // Obtain plan p's expansion. If no worker has started it, expand it
    // inline; while a worker is on it, help with other pending expansions
    // instead of idling — so all num_threads threads expand in steady state.
    std::vector<CandidateEvent>* events = nullptr;
    {
      std::unique_lock<std::mutex> lock(mu);
      while (true) {
        Slot& slot = slots[p];
        if (slot.state == Slot::kDone) {
          if (!slot.status.ok()) failure = slot.status;
          events = &slot.events;
          break;
        }
        if (slot.state == Slot::kPending) {
          slot.state = Slot::kRunning;
          run_task(inline_expander, inline_cost_ctx,
                   {0.0, p, state.plan(p)}, lock);
          continue;  // now kDone
        }
        // A worker owns p: steal some other pending expansion meanwhile.
        std::optional<WorkQueue::Task> other = claim_task();
        if (other.has_value()) {
          run_task(inline_expander, inline_cost_ctx, *other, lock);
          continue;
        }
        cv.wait(lock, [&] {
          return slots[p].state == Slot::kDone || !queue.Empty();
        });
      }
    }
    if (!failure.ok()) break;

    bool keep_going = true;
    for (CandidateEvent& ev : *events) {
      keep_going = state.ReplayMaterializedEvent(ev, p);
      if (!keep_going) break;  // plan cap reached; loop head sets truncated
    }
    {
      // Replayed slots are drained eagerly — events pin candidate plans.
      std::lock_guard<std::mutex> lock(mu);
      slots[p].events.clear();
      slots[p].events.shrink_to_fit();
    }
  }

  {
    std::lock_guard<std::mutex> lock(mu);
    shutdown = true;
  }
  cv.notify_all();
  for (std::thread& worker : workers) worker.join();

  if (!failure.ok()) return failure;
  return state.Finish();
}

}  // namespace enumerate_internal
}  // namespace tqp
