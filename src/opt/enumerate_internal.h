// Internal machinery shared by the serial and parallel memo enumerators.
// Not part of the public API — include only from src/opt/enumerate*.cc.
//
// The split that makes deterministic parallelism possible:
//
//   * PlanExpander — expands ONE plan into its ordered list of
//     CandidateEvents (rule matching, Table 2 gating, candidate
//     fingerprints). This is the expensive part, and it is a pure function
//     of the plan: it reads only the plan's nodes, the rules, and the
//     (concurrent-safe) derivation cache — never the memo, frontier, or
//     counters. Expansions of distinct plans can therefore run on any
//     thread, in any order, and always produce the same events.
//   * SearchState — the serial admission state (memo, frontier, interner,
//     costs, counters). Replaying a plan's events in order against it
//     reproduces the exact single-threaded Figure 5 loop, so the parallel
//     driver's results are byte-identical to the serial driver's by
//     construction: parallelism moves expansion off the admission thread,
//     and admission itself never changes.
#ifndef TQP_OPT_ENUMERATE_INTERNAL_H_
#define TQP_OPT_ENUMERATE_INTERNAL_H_

#include <algorithm>
#include <array>
#include <functional>
#include <optional>
#include <queue>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "algebra/intern.h"
#include "opt/enumerate.h"

namespace tqp {
namespace enumerate_internal {

// Bound on a plan's unfolded (per-occurrence) node count: the per-plan walks
// are linear in it, and adversarial DAG chains could otherwise make it
// exponential in the node count.
constexpr size_t kMaxUnfoldedPlanSize = 1u << 20;

// Section 4.5: ≡L rules are weakened to ≡M when the location spans DBMS-site
// operations, except the order-safe sort rules.
inline EquivalenceType EffectiveEquivalence(const Rule& rule,
                                            const RuleMatch& match,
                                            const PlanContext& ctx) {
  EquivalenceType effective = rule.equivalence();
  if (effective == EquivalenceType::kList &&
      !IsOrderSafeAcrossSites(rule.id())) {
    for (const PlanNode* op : match.location) {
      if (ctx.info(op).site == Site::kDbms) {
        return EquivalenceType::kMultiset;
      }
    }
  }
  return effective;
}

// Canonical strings of interned plans, memoized per canonical node so the
// serialization of a shared subtree is built once across the whole plan
// space. Produces byte-identical output to CanonicalString().
class CanonicalCache {
 public:
  const std::string& Of(const PlanPtr& plan) {
    auto it = memo_.find(plan.get());
    if (it != memo_.end()) return it->second;
    std::string out = plan->Describe();
    if (!plan->children().empty()) {
      out += "(";
      for (size_t i = 0; i < plan->children().size(); ++i) {
        if (i > 0) out += ",";
        out += Of(plan->child(i));
      }
      out += ")";
    }
    return memo_.emplace(plan.get(), std::move(out)).first->second;
  }

 private:
  std::unordered_map<const PlanNode*, std::string> memo_;
};

// The memo over admitted plans: fingerprint -> indices in result.plans,
// optionally sharded by the probed plan's root-operator kind. Each shard is
// an independent hash table, so probes for plans of different root kinds
// never touch the same structure. Sharding only routes probes: the admitted
// plan sequence is identical with sharding on or off, because a plan's root
// kind is a pure function of the plan and every probe/insert for one plan
// goes to the same shard. The parallel driver turns sharding on
// unconditionally (its admission thread owns all shards; routing keeps the
// buckets short).
class MemoIndex {
 public:
  MemoIndex(bool sharded, size_t reserve_hint)
      : shards_(sharded ? kOpKindCount : 1) {
    for (auto& shard : shards_) {
      shard.reserve(reserve_hint / shards_.size() + 1);
    }
  }

  const std::vector<size_t>* Find(OpKind root_kind, uint64_t fp) const {
    const Shard& shard = shards_[ShardOf(root_kind)];
    auto it = shard.find(fp);
    return it == shard.end() ? nullptr : &it->second;
  }

  void Add(OpKind root_kind, uint64_t fp, size_t plan_index) {
    shards_[ShardOf(root_kind)][fp].push_back(plan_index);
  }

 private:
  using Shard = std::unordered_map<uint64_t, std::vector<size_t>>;

  size_t ShardOf(OpKind kind) const {
    return shards_.size() == 1 ? 0 : static_cast<size_t>(kind);
  }

  std::vector<Shard> shards_;
};

// The frontier of unexpanded plan indices. Breadth-first consumes admitted
// plans in index order (the exact Figure 5 worklist); best-first pops the
// cheapest plan first, breaking cost ties on the admission index so repeated
// runs pop in the identical order.
class Frontier {
 public:
  explicit Frontier(bool best_first) : best_first_(best_first) {}

  /// Breadth-first reads plans straight out of result.plans, so only the
  /// best-first heap needs explicit pushes.
  void Push(size_t index, double cost) {
    if (best_first_) heap_.emplace(cost, index);
  }

  /// Next plan index to consider, or nullopt when the frontier is drained.
  /// `admitted` is the current result.plans.size().
  std::optional<size_t> Pop(size_t admitted) {
    if (best_first_) {
      if (heap_.empty()) return std::nullopt;
      size_t index = heap_.top().second;
      heap_.pop();
      return index;
    }
    if (next_ >= admitted) return std::nullopt;
    return next_++;
  }

 private:
  bool best_first_;
  size_t next_ = 0;  // breadth-first cursor
  // (cost, admission index), cheapest first; index tie-break via
  // std::greater on the pair.
  std::priority_queue<std::pair<double, size_t>,
                      std::vector<std::pair<double, size_t>>,
                      std::greater<std::pair<double, size_t>>>
      heap_;
};

// The memo-independent outcome of one rule match at one location: everything
// the admission step needs, recorded in the exact order the Figure 5 loop
// visits candidates. Non-matches produce no event; every event increments
// `matches` at replay.
struct CandidateEvent {
  enum class Outcome : uint8_t {
    kTypeSkipped,  // effective equivalence not in options.admitted
    kGatedOut,     // rejected by the Table 2 property gating
    kSizeCapped,   // admitted by the gating; exceeds the plan-size cap
    kCandidate,    // admissible: probe the memo, admit on a confirmed miss
  };
  Outcome outcome = Outcome::kTypeSkipped;
  const Rule* rule = nullptr;
  // Filled for kCandidate only:
  PlanPath path;        // rewrite location in the expanded plan
  PlanPtr replacement;  // freshly built by the rule; interned at admission
  uint64_t fingerprint = 0;  // root fingerprint of the would-be plan
  OpKind root_kind = OpKind::kScan;  // its memo shard

  // Filled by MaterializeEvent (parallel workers only): the interned
  // candidate with its validity and cost, so admission does no per-plan
  // work beyond the memo probe. All three are pure functions of the
  // candidate given the (concurrent) interner/cache.
  PlanPtr rewritten;
  bool valid = false;
  double cost = 0.0;
};

/// Materializes a kCandidate event off the admission thread: interns the
/// rewrite (concurrent interner), validates it against the shared derivation
/// cache, and — when the search costs plans — costs it. Interning and
/// derivation are idempotent and structural, so speculative materialization
/// of a candidate the admission loop later drops (memo hit, pruned parent,
/// truncation) can never change the search outcome; it only adds to the
/// interner/cache *session totals*, which are not part of the determinism
/// contract. `cost_ctx` must be backed by `cache` alone.
inline void MaterializeEvent(CandidateEvent& ev, const PlanPtr& parent,
                             PlanInterner& interner, DerivationCache& cache,
                             const Catalog& catalog,
                             const EnumerationOptions& options, bool costing,
                             const PlanContext& cost_ctx) {
  if (ev.outcome != CandidateEvent::Outcome::kCandidate) return;
  ev.rewritten =
      interner.RewriteInterned(parent, ev.path, std::move(ev.replacement));
  TQP_DCHECK(ev.rewritten->fingerprint() == ev.fingerprint);
  TQP_DCHECK(ev.rewritten->kind() == ev.root_kind);
  ev.valid = cache.Derive(ev.rewritten, catalog, options.cardinality).ok();
  if (costing && ev.valid) {
    ev.cost = EstimatePlanCost(ev.rewritten, cost_ctx, options.cost_engine);
  }
}

// Expands one plan into its ordered candidate-event list: Table 2 props
// walk, location index, kind dispatch, rule matching, gating, candidate
// fingerprints. One expander per thread — it owns per-plan scratch. Reads
// the derivation cache only through const Find (concurrent-safe when the
// cache is in concurrent mode).
class PlanExpander {
 public:
  PlanExpander(const DerivationCache& cache, const QueryContract& contract,
               const std::vector<Rule>& rules,
               const EnumerationOptions& options, size_t size_cap)
      : cache_(cache),
        contract_(contract),
        rules_(rules),
        options_(options),
        size_cap_(size_cap),
        ctx_(&cache, &props_, &contract_),
        root_props_{contract.result_type == ResultType::kList,
                    contract.result_type != ResultType::kSet,
                    /*period_preserving=*/true} {}

  /// Appends `plan`'s events to `out` in the canonical candidate order (the
  /// order the serial Figure 5 loop would produce them). Fails only on an
  /// internal derivation-cache miss.
  Status Expand(const PlanPtr& plan, std::vector<CandidateEvent>* out) {
    props_.clear();
    props_.reserve(plan->subtree_size());
    walk_ok_ = true;
    VisitProps(plan, root_props_);
    if (!walk_ok_) {
      return Status::Error(
          "internal: derivation cache miss while computing Table 2 "
          "properties");
    }

    locations_.clear();
    CollectLocations(plan, &locations_);
    for (auto& bucket : by_kind_) bucket.clear();
    for (uint32_t i = 0; i < locations_.size(); ++i) {
      by_kind_[static_cast<size_t>(locations_[i].node->kind())].push_back(i);
    }

    // The same rule × location dispatch as the serial loop: per-kind buckets
    // preserve pre-order within a kind, so the event order equals the order
    // a full scan in pre-order would produce for each rule.
    for (const Rule& rule : rules_) {
      const std::vector<OpKind>& kinds = rule.root_kinds();
      if (kinds.size() == 1) {
        for (uint32_t idx : by_kind_[static_cast<size_t>(kinds[0])]) {
          TryLocation(rule, idx, plan, out);
        }
      } else if (kinds.empty()) {
        for (uint32_t idx = 0; idx < locations_.size(); ++idx) {
          TryLocation(rule, idx, plan, out);
        }
      } else {
        for (uint32_t idx = 0; idx < locations_.size(); ++idx) {
          if (!rule.MatchesRootKind(locations_[idx].node->kind())) continue;
          TryLocation(rule, idx, plan, out);
        }
      }
    }
    return Status::OK();
  }

 private:
  // Computes the Table 2 properties of every node occurrence of `plan`, one
  // entry per occurrence in pre-order — the same order CollectLocations
  // uses, so occurrence i of the props table is location i. The walk
  // touches exactly subtree_size() occurrences, which the enumeration's
  // size bound keeps small. Every node of an expanded plan was derived into
  // the cache when the plan was admitted, so a miss here means the cache
  // and the plan set went out of sync — an internal invariant violation,
  // never valid input. DCHECK loudly in debug builds; in release, flag the
  // walk as failed so the enumeration surfaces an error status instead of
  // dereferencing null.
  void VisitProps(const PlanPtr& node, const NodeProps& p) {
    props_.push_back({node.get(), p});
    for (size_t i = 0; i < node->arity(); ++i) {
      bool ldf = false, lsdf = false, csdf = false;
      switch (node->kind()) {
        case OpKind::kDifference:
        case OpKind::kDifferenceT: {
          const NodeInfo* left = cache_.Find(node->child(0).get());
          TQP_DCHECK(left != nullptr &&
                     "derivation cache miss under a difference node");
          if (left == nullptr) {
            walk_ok_ = false;
            return;
          }
          ldf = left->duplicate_free;
          lsdf = left->snapshot_duplicate_free;
          break;
        }
        case OpKind::kCoalesce: {
          const NodeInfo* child = cache_.Find(node->child(i).get());
          TQP_DCHECK(child != nullptr &&
                     "derivation cache miss under a coalesce node");
          if (child == nullptr) {
            walk_ok_ = false;
            return;
          }
          csdf = child->snapshot_duplicate_free;
          break;
        }
        default:
          break;
      }
      VisitProps(node->child(i), DeriveChildProps(*node, i, p, ldf, lsdf, csdf));
      if (!walk_ok_) return;
    }
  }

  // One rule application attempt at location index `li`; emits one event iff
  // the rule matches.
  void TryLocation(const Rule& rule, uint32_t li, const PlanPtr& plan,
                   std::vector<CandidateEvent>* out) {
    const PlanLocation& loc = locations_[li];
    if (!rule.MatchesChild0(*loc.node)) return;
    // Gate against the matched occurrence(s) only: restrict property
    // lookups to the pre-order span of the matched subtree.
    ctx_.SetOccurrenceWindow(li, li + loc.node->subtree_size());
    std::optional<RuleMatch> match = rule.TryApply(loc.node, ctx_);
    if (!match.has_value()) return;

    CandidateEvent ev;
    ev.rule = &rule;
    EquivalenceType effective = EffectiveEquivalence(rule, *match, ctx_);
    if (options_.admitted.count(effective) == 0) {
      ev.outcome = CandidateEvent::Outcome::kTypeSkipped;
    } else if (!RuleAdmitted(effective, match->location, ctx_)) {
      ev.outcome = CandidateEvent::Outcome::kGatedOut;
    } else {
      // O(1) size bound check before any rewriting happens.
      size_t new_size = plan->subtree_size() - loc.node->subtree_size() +
                        match->replacement->subtree_size();
      if (new_size > size_cap_) {
        ev.outcome = CandidateEvent::Outcome::kSizeCapped;
      } else {
        // The candidate's identity is known without materializing anything:
        // FingerprintAtPath walks the spine without constructing a node, and
        // a root rewrite adopts the replacement's kind while any deeper
        // rewrite keeps the plan's.
        ev.outcome = CandidateEvent::Outcome::kCandidate;
        ev.path = loc.path;
        ev.fingerprint = FingerprintAtPath(plan, loc.path,
                                           match->replacement->fingerprint());
        ev.root_kind =
            loc.path.empty() ? match->replacement->kind() : plan->kind();
        ev.replacement = std::move(match->replacement);
      }
    }
    out->push_back(std::move(ev));
  }

  const DerivationCache& cache_;
  const QueryContract& contract_;
  const std::vector<Rule>& rules_;
  const EnumerationOptions& options_;
  size_t size_cap_;

  // Per-plan scratch.
  PlanContext::PropsTable props_;
  PlanContext ctx_;
  NodeProps root_props_;
  bool walk_ok_ = true;
  std::vector<PlanLocation> locations_;
  std::array<std::vector<uint32_t>, kOpKindCount> by_kind_;
};

// The serial admission state of one memo search: memo, frontier, costing,
// counters. Both drivers run the identical pop → prune → budget → replay
// loop against it; they differ only in where PlanExpander::Expand runs.
class SearchState {
 public:
  SearchState(const Catalog& catalog, const QueryContract& contract,
              const EnumerationOptions& options, PlanInterner& interner,
              DerivationCache& cache)
      : catalog_(catalog),
        contract_(contract),
        options_(options),
        interner_(interner),
        cache_(cache),
        pruning_(options.cost_prune_factor > 0.0),
        best_first_(options.strategy == SearchStrategy::kBestFirst),
        costing_(pruning_ || best_first_),
        prune_factor_(options.cost_prune_factor),
        memo_(options.shard_memo_by_root_kind,
              std::min<size_t>(options.max_plans, 4096)),
        frontier_(best_first_),
        // Costing runs against a context backed solely by the shared
        // derivation cache: each plan is costed right after it is derived,
        // so every bottom-up fact it needs is present, and the context
        // cannot read the *expanding* plan's props table or occurrence
        // window (which describe the parent, not the rewritten plan).
        cost_ctx_(&cache, /*props=*/nullptr, &contract_) {}

  /// Interns, validates, and admits the initial plan; must be called once
  /// before the driver loop.
  Status Start(const PlanPtr& initial) {
    PlanPtr root = interner_.Intern(initial);
    TQP_RETURN_IF_ERROR(cache_.Derive(root, catalog_, options_.cardinality));
    size_cap_ = root->subtree_size() + options_.max_plan_growth;
    result_.plans.push_back(
        EnumeratedPlan{root, CanonOf(root), root->fingerprint(), -1, ""});
    memo_.Add(root->kind(), root->fingerprint(), 0);
    if (costing_) {
      // The root is costed only now, after cache.Derive(root) above made its
      // bottom-up facts (cardinalities, sites) available.
      best_cost_ = EstimatePlanCost(root, cost_ctx_, options_.cost_engine);
      result_.costs.push_back(best_cost_);
    }
    frontier_.Push(0, costing_ ? result_.costs[0] : 0.0);
    return Status::OK();
  }

  /// The driver loop head: pops the next plan to consider and applies the
  /// pruning decision and expansion budget, updating counters exactly as the
  /// single-threaded Figure 5 loop does. Returns the index to expand, or
  /// nullopt when the search is over (frontier drained, plan cap, or budget
  /// exhausted — the cap/budget cases also set `truncated`).
  std::optional<size_t> NextToExpand() {
    while (true) {
      if (result_.plans.size() >= options_.max_plans) {
        result_.truncated = true;
        return std::nullopt;
      }
      std::optional<size_t> popped = frontier_.Pop(result_.plans.size());
      if (!popped.has_value()) return std::nullopt;
      size_t p = *popped;
      // The pruning decision happens at pop time, against the bound as it
      // stands now. best_cost only ever tightens — and under adaptive
      // pruning so does the effective factor — so a plan failing here could
      // never pass later: pruned plans are final, never re-queued, and
      // every admitted plan is popped exactly once unless a budget ends
      // the search first, which makes cost_pruned deterministic under both
      // strategies.
      if (pruning_ && result_.costs[p] > best_cost_ * prune_factor_) {
        ++result_.cost_pruned;
        if (on_pruned_) on_pruned_(p);
        continue;
      }
      if (options_.max_expansions > 0 &&
          result_.expanded >= options_.max_expansions) {
        // Expansion budget exhausted with this (unpruned) plan still
        // pending.
        result_.truncated = true;
        return std::nullopt;
      }
      ++result_.expanded;
      return p;
    }
  }

  /// Serial replay of one candidate event of expanded plan `p`: the dedup
  /// probe confirms structurally (EqualsWithReplacement) and a memo miss is
  /// materialized on the spot — interned, validated, costed. Returns false
  /// once the plan cap is reached (stop replaying).
  bool ReplayEvent(CandidateEvent& ev, size_t p) {
    // A hit is confirmed structurally, so fingerprint collisions can never
    // merge distinct plans — they only make the bucket longer than one.
    const PlanPtr& plan = result_.plans[p].plan;
    auto confirm = [&](const PlanPtr& admitted) {
      return EqualsWithReplacement(admitted, plan, ev.path, ev.replacement);
    };
    // Materialize only on a confirmed memo miss: a duplicate candidate
    // costs one probe and allocates nothing.
    auto materialize = [&] {
      ev.rewritten =
          interner_.RewriteInterned(plan, ev.path, std::move(ev.replacement));
      TQP_DCHECK(ev.rewritten->fingerprint() == ev.fingerprint);
      TQP_DCHECK(ev.rewritten->kind() == ev.root_kind);
      // Validate: only nodes the cache has never seen (the rebuilt spine)
      // are actually derived; a cached node heads a known-valid subtree.
      ev.valid = cache_.Derive(ev.rewritten, catalog_, options_.cardinality).ok();
      if (costing_ && ev.valid) {
        // Costed against cost_ctx_, never the expander's window-scoped
        // context. cache.Derive just ran, so every bottom-up fact the cost
        // model reads is present.
        ev.cost = EstimatePlanCost(ev.rewritten, cost_ctx_, options_.cost_engine);
      }
    };
    return ReplayEventImpl(ev, p, confirm, materialize);
  }

  /// The parallel driver's replay: identical admission decisions and
  /// counters, against events a worker already materialized
  /// (MaterializeEvent). The probe confirms by pointer equality — the
  /// candidate and every admitted plan are canonical interner nodes, so
  /// pointer identity coincides with the structural check above.
  bool ReplayMaterializedEvent(CandidateEvent& ev, size_t p) {
    auto confirm = [&](const PlanPtr& admitted) {
      return admitted.get() == ev.rewritten.get();
    };
    auto materialize = [] {};  // already done on the worker
    return ReplayEventImpl(ev, p, confirm, materialize);
  }

  /// Finalizes counters and hands the result out.
  EnumerationResult Finish() {
    if (result_.plans.size() >= options_.max_plans) result_.truncated = true;
    result_.interner_nodes = interner_.unique_nodes();
    result_.interner_hits = interner_.hits();
    result_.cache_nodes = cache_.size();
    return std::move(result_);
  }

  /// Hooks for the parallel driver: admitted plans feed the worker queue,
  /// pruned plans cancel their speculative expansion. Unset (and never
  /// called) in the serial driver.
  void SetHooks(std::function<void(size_t)> on_admitted,
                std::function<void(size_t)> on_pruned) {
    on_admitted_ = std::move(on_admitted);
    on_pruned_ = std::move(on_pruned);
  }

  const EnumerationResult& result() const { return result_; }
  const PlanPtr& plan(size_t index) const { return result_.plans[index].plan; }
  double cost(size_t index) const { return result_.costs[index]; }
  bool costing() const { return costing_; }
  size_t size_cap() const { return size_cap_; }

 private:
  /// The admission skeleton both replays share — counters, memo probe,
  /// admission, costing, frontier push, cap check — parameterized on how a
  /// probe hit is confirmed and how a memo miss obtains its materialized
  /// candidate (filling ev.rewritten/valid/cost). One copy keeps the
  /// serial/parallel byte-identity true by construction.
  template <typename Confirm, typename Materialize>
  bool ReplayEventImpl(CandidateEvent& ev, size_t p, Confirm&& confirm,
                       Materialize&& materialize) {
    ++result_.matches;
    switch (ev.outcome) {
      case CandidateEvent::Outcome::kTypeSkipped:
        return true;
      case CandidateEvent::Outcome::kGatedOut:
        ++result_.gated_out;
        return true;
      case CandidateEvent::Outcome::kSizeCapped:
        ++result_.admitted;
        return true;
      case CandidateEvent::Outcome::kCandidate:
        break;
    }
    ++result_.admitted;

    if (const std::vector<size_t>* bucket =
            memo_.Find(ev.root_kind, ev.fingerprint)) {
      for (size_t idx : *bucket) {
        if (confirm(result_.plans[idx].plan)) {
          ++result_.memo_hits;
          return true;
        }
      }
    }
    materialize();
    if (!ev.valid) {
      return true;  // invalid composition; not memoized
    }
    size_t new_index = result_.plans.size();
    memo_.Add(ev.root_kind, ev.fingerprint, new_index);
    result_.plans.push_back(EnumeratedPlan{ev.rewritten, CanonOf(ev.rewritten),
                                           ev.fingerprint,
                                           static_cast<int>(p),
                                           ev.rule->id()});
    if (costing_) {
      result_.costs.push_back(ev.cost);
      if (ev.cost < best_cost_) {
        best_cost_ = ev.cost;
        // Adaptive feedback: each incumbent improvement tightens the
        // effective pruning factor toward the floor. The floor is clamped
        // to the configured factor so tightening can only ever LOWER the
        // factor — otherwise a cost_prune_factor below the floor would be
        // raised by its first improvement, breaking the "a plan that fails
        // the pop-time check once could never pass later" invariant. Runs
        // at admission (the serial replay under every driver), so the
        // factor's trajectory is a pure function of the admitted sequence.
        if (pruning_ && options_.adaptive_pruning) {
          double floor = std::min(options_.adaptive_prune_floor,
                                  options_.cost_prune_factor);
          prune_factor_ = std::max(
              floor, prune_factor_ * options_.adaptive_prune_decay);
        }
      }
      frontier_.Push(new_index, ev.cost);
    } else {
      frontier_.Push(new_index, 0.0);
    }
    if (on_admitted_) on_admitted_(new_index);
    return result_.plans.size() < options_.max_plans;
  }

  std::string CanonOf(const PlanPtr& p) {
    // Canonical strings are presentation-only here (identity is the
    // fingerprint-keyed memo); skip serialization entirely when the caller
    // doesn't assert on them.
    return options_.fill_canonical ? canon_.Of(p) : std::string();
  }

  const Catalog& catalog_;
  const QueryContract& contract_;
  const EnumerationOptions& options_;
  PlanInterner& interner_;
  DerivationCache& cache_;
  const bool pruning_;
  const bool best_first_;
  const bool costing_;
  /// The effective pruning factor: fixed at cost_prune_factor, or tightened
  /// on each incumbent improvement under adaptive_pruning.
  double prune_factor_;

  EnumerationResult result_;
  MemoIndex memo_;
  Frontier frontier_;
  CanonicalCache canon_;
  PlanContext cost_ctx_;
  double best_cost_ = 0.0;
  size_t size_cap_ = 0;
  std::function<void(size_t)> on_admitted_;
  std::function<void(size_t)> on_pruned_;
};

/// The parallel driver (enumerate_parallel.cc): worker threads expand plans
/// from a shared frontier queue while the calling thread replays admission
/// serially. Byte-identical to the serial driver by construction; requires
/// options.num_threads >= 2.
Result<EnumerationResult> EnumerateMemoParallel(
    const PlanPtr& initial, const Catalog& catalog,
    const QueryContract& contract, const std::vector<Rule>& rules,
    const EnumerationOptions& options, PlanInterner* ext_interner,
    DerivationCache* ext_derivation);

}  // namespace enumerate_internal
}  // namespace tqp

#endif  // TQP_OPT_ENUMERATE_INTERNAL_H_
