#include "opt/optimizer.h"

#include "core/trace.h"

namespace tqp {

Result<OptimizeResult> Optimize(const PlanPtr& initial, const Catalog& catalog,
                                const QueryContract& contract,
                                const std::vector<Rule>& rules,
                                const OptimizerOptions& options) {
  return Optimize(initial, catalog, contract, rules, options,
                  /*interner=*/nullptr, /*derivation=*/nullptr);
}

Result<OptimizeResult> Optimize(const PlanPtr& initial, const Catalog& catalog,
                                const QueryContract& contract,
                                const std::vector<Rule>& rules,
                                const OptimizerOptions& options,
                                PlanInterner* interner,
                                DerivationCache* derivation) {
  // The enumeration shares the optimizer's cost and cardinality models, so
  // cost-bounded pruning (when enabled) bounds against the same costs the
  // final plan choice uses.
  EnumerationOptions enum_options = options.enumeration;
  enum_options.cardinality = options.cardinality;
  enum_options.cost_engine = options.engine;
  TQP_ASSIGN_OR_RETURN(enumeration,
                       EnumeratePlans(initial, catalog, contract, rules,
                                      enum_options, interner, derivation));

  OptimizeResult out;
  out.plans_considered = enumeration.plans.size();
  out.truncated = enumeration.truncated;

  size_t best_index = 0;
  double best_cost = 0.0;
  TraceSpan span(enum_options.tracer, "opt", "cost");
  if (enumeration.costs.size() == enumeration.plans.size()) {
    // A cost-directed enumeration (pruning or best-first) already costed
    // every admitted plan against the same derivation cache and models this
    // loop would use; reuse those costs instead of re-deriving the set.
    for (size_t i = 0; i < enumeration.costs.size(); ++i) {
      if (i == 0) out.initial_cost = enumeration.costs[i];
      if (i == 0 || enumeration.costs[i] < best_cost) {
        best_cost = enumeration.costs[i];
        best_index = i;
      }
    }
  } else {
    // Cost every plan against one shared bottom-up derivation cache — the
    // enumerated plans are structurally overlapping, so most nodes are
    // derived once across the whole set. With a session cache this is the
    // same cache the enumeration validated against, so it is already fully
    // primed.
    DerivationCache local_cache;
    DerivationCache& cache = derivation ? *derivation : local_cache;
    PlanContext ctx(&cache, nullptr, &contract);
    for (size_t i = 0; i < enumeration.plans.size(); ++i) {
      const PlanPtr& plan = enumeration.plans[i].plan;
      if (!cache.Derive(plan, catalog, options.cardinality).ok()) continue;
      double cost = EstimatePlanCost(plan, ctx, options.engine);
      if (i == 0) out.initial_cost = cost;
      if (i == 0 || cost < best_cost) {
        best_cost = cost;
        best_index = i;
      }
    }
  }
  if (span.active()) {
    span.Arg("plans", static_cast<uint64_t>(enumeration.plans.size()));
    span.Arg("reused_enum_costs",
             uint64_t{enumeration.costs.size() == enumeration.plans.size()});
  }
  out.best_plan = enumeration.plans[best_index].plan;
  out.best_cost = best_cost;
  out.derivation = enumeration.DerivationOf(best_index);
  return out;
}

}  // namespace tqp
