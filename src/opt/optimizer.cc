#include "opt/optimizer.h"

namespace tqp {

Result<OptimizeResult> Optimize(const PlanPtr& initial, const Catalog& catalog,
                                const QueryContract& contract,
                                const std::vector<Rule>& rules,
                                const OptimizerOptions& options) {
  TQP_ASSIGN_OR_RETURN(enumeration,
                       EnumeratePlans(initial, catalog, contract, rules,
                                      options.enumeration));

  OptimizeResult out;
  out.plans_considered = enumeration.plans.size();
  out.truncated = enumeration.truncated;

  size_t best_index = 0;
  double best_cost = 0.0;
  for (size_t i = 0; i < enumeration.plans.size(); ++i) {
    Result<AnnotatedPlan> ann = AnnotatedPlan::Make(
        enumeration.plans[i].plan, &catalog, contract, options.cardinality);
    if (!ann.ok()) continue;
    double cost = EstimatePlanCost(ann.value(), options.engine);
    if (i == 0) out.initial_cost = cost;
    if (i == 0 || cost < best_cost) {
      best_cost = cost;
      best_index = i;
    }
  }
  out.best_plan = enumeration.plans[best_index].plan;
  out.best_cost = best_cost;
  out.derivation = enumeration.DerivationOf(best_index);
  return out;
}

}  // namespace tqp
