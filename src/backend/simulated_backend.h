// The historical "simulated DBMS": no native execution, constant costs, and
// the deterministic order scramble that models "unspecified DBMS order".
// Default backend — every pre-backend byte-identity suite runs against it
// unchanged.
#ifndef TQP_BACKEND_SIMULATED_BACKEND_H_
#define TQP_BACKEND_SIMULATED_BACKEND_H_

#include <string>
#include <vector>

#include "backend/backend.h"

namespace tqp {

class SimulatedBackend : public Backend {
 public:
  BackendKind kind() const override { return BackendKind::kSimulated; }
  Status SyncCatalog(const Catalog& catalog) override;
  bool SupportsPushdown() const override { return false; }
  bool CanPush(const PlanPtr& plan, const AnnotatedPlan& ann) const override;
  Result<Relation> ExecuteSubplan(const PlanPtr& plan,
                                  const AnnotatedPlan& ann) override;
  BackendCostProfile Calibrate(const EngineConfig& config) override;
  Status CreateTable(const std::string& table, const Schema& schema) override;
  Status Load(const std::string& table, const Relation& rows) override;
  Result<Relation> ExecuteSql(const std::string& sql,
                              const std::vector<Value>& params,
                              const Schema& out_schema) override;

  // ---- The scramble, shared by exec and vexec ----

  /// Seeded bit-mix of a tuple hash; the single source of truth for the
  /// scramble key (vexec feeds columnar row hashes through the same mix).
  static uint64_t MixHash(uint64_t tuple_hash, uint64_t seed) {
    uint64_t h = tuple_hash ^ seed;
    h ^= h >> 33;
    h *= 0xff51afd7ed558ccdULL;
    h ^= h >> 33;
    return h;
  }

  static uint64_t ScrambleKey(const Tuple& t, uint64_t seed) {
    return MixHash(t.Hash(), seed);
  }

  /// Deterministic "unspecified DBMS order": reorder tuples by a seeded
  /// hash. The result is a function of the tuple multiset only — any
  /// dependence of downstream results on the input *order* is thereby
  /// surfaced in tests.
  static void ScrambleRelation(Relation* r, uint64_t seed);
};

}  // namespace tqp

#endif  // TQP_BACKEND_SIMULATED_BACKEND_H_
