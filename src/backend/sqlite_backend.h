// SQL pushdown to an embedded SQLite database (system sqlite3).
//
// DBMS-site catalog relations are mirrored as positional tables
// ("rel_<name>", columns c0..cN-1, rowid = list position); conventional cut
// subplans run as one serialized SQL statement each (sql_serializer.h). The
// mirror is keyed on a content fingerprint of the DBMS-site relations, so
// repeated syncs are no-ops and a file-backed database written by an
// earlier process is reused across restarts without reloading.
//
// Compiled against system sqlite3 when available (TQP_HAVE_SQLITE3,
// detected by CMake); otherwise Available() is false and Open() fails,
// and everything falls back to the SimulatedBackend.
#ifndef TQP_BACKEND_SQLITE_BACKEND_H_
#define TQP_BACKEND_SQLITE_BACKEND_H_

#include <memory>
#include <string>
#include <vector>

#include "backend/backend.h"

namespace tqp {

class SqliteBackend : public Backend {
 public:
  /// True iff this build links sqlite3 with window-function support.
  static bool Available();

  /// Opens a backend over a private in-memory database (empty path) or a
  /// file-backed one whose catalog mirror survives restarts.
  static Result<std::unique_ptr<SqliteBackend>> Open(
      const std::string& db_path = "");

  ~SqliteBackend() override;

  BackendKind kind() const override { return BackendKind::kSqlite; }
  Status SyncCatalog(const Catalog& catalog) override;
  bool SupportsPushdown() const override { return true; }
  bool CanPush(const PlanPtr& plan, const AnnotatedPlan& ann) const override;
  Result<Relation> ExecuteSubplan(const PlanPtr& plan,
                                  const AnnotatedPlan& ann) override;
  BackendCostProfile Calibrate(const EngineConfig& config) override;
  Status CreateTable(const std::string& table, const Schema& schema) override;
  Status Load(const std::string& table, const Relation& rows) override;
  Result<Relation> ExecuteSql(const std::string& sql,
                              const std::vector<Value>& params,
                              const Schema& out_schema) override;

  /// Number of full catalog mirrors loaded since Open. Stays 0 when a
  /// file-backed mirror from an earlier process was reused.
  int64_t mirror_loads() const;

 private:
  SqliteBackend();
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace tqp

#endif  // TQP_BACKEND_SQLITE_BACKEND_H_
