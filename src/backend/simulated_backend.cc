#include "backend/simulated_backend.h"

#include <algorithm>

namespace tqp {

Status SimulatedBackend::SyncCatalog(const Catalog& catalog) {
  (void)catalog;  // relations already live in the catalog the engine reads
  return Status::OK();
}

bool SimulatedBackend::CanPush(const PlanPtr& plan,
                               const AnnotatedPlan& ann) const {
  (void)plan;
  (void)ann;
  return false;
}

Result<Relation> SimulatedBackend::ExecuteSubplan(const PlanPtr& plan,
                                                  const AnnotatedPlan& ann) {
  (void)plan;
  (void)ann;
  return Status::Error("SimulatedBackend has no native execution");
}

BackendCostProfile SimulatedBackend::Calibrate(const EngineConfig& config) {
  // The simulated DBMS *is* the constant cost model: conventional operators
  // at unit cost, temporal ones at the configured penalty. A calibrated
  // profile built from these constants costs every plan byte-identically to
  // the uncalibrated path.
  BackendCostProfile p;
  p.calibrated = true;
  for (size_t k = 0; k < kOpKindCount; ++k) {
    p.dbms_op_factor[k] = IsTemporalOp(static_cast<OpKind>(k))
                              ? config.dbms_temporal_penalty
                              : 1.0;
  }
  p.transfer_cost_per_tuple = config.transfer_cost_per_tuple;
  p.fingerprint = 0x51e0a7ed ^ static_cast<uint64_t>(config.dbms_temporal_penalty) ^
                  (static_cast<uint64_t>(config.transfer_cost_per_tuple) << 32);
  return p;
}

Status SimulatedBackend::CreateTable(const std::string& table,
                                     const Schema& schema) {
  (void)table;
  (void)schema;
  return Status::Error("SimulatedBackend has no storage");
}

Status SimulatedBackend::Load(const std::string& table, const Relation& rows) {
  (void)table;
  (void)rows;
  return Status::Error("SimulatedBackend has no storage");
}

Result<Relation> SimulatedBackend::ExecuteSql(const std::string& sql,
                                              const std::vector<Value>& params,
                                              const Schema& out_schema) {
  (void)sql;
  (void)params;
  (void)out_schema;
  return Status::Error("SimulatedBackend does not speak SQL");
}

void SimulatedBackend::ScrambleRelation(Relation* r, uint64_t seed) {
  std::stable_sort(r->mutable_tuples().begin(), r->mutable_tuples().end(),
                   [&](const Tuple& a, const Tuple& b) {
                     uint64_t ha = ScrambleKey(a, seed);
                     uint64_t hb = ScrambleKey(b, seed);
                     if (ha != hb) return ha < hb;
                     return a.Compare(b) < 0;
                   });
}

}  // namespace tqp
