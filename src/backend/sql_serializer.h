// Serialization of maximal conventional subplans to SQL (the GProM/PUG
// sql_serializer idea applied to the paper's transfer cut).
//
// The serializer turns a conventional operator subtree into one SQL
// statement whose result is the *exact list* the reference evaluator would
// produce: every operator becomes a CTE carrying its value columns
// positionally (c0..cN-1) plus a scalar `ord` column encoding the list
// position, and the final SELECT orders by it. List-sensitive operators
// (⊎, ∪, \, sort, rdup, ℵ) derive their output `ord` from their inputs'
// via window functions, so duplicates and ordering semantics (Table 1)
// survive the round trip through the DBMS.
//
// Anything whose semantics SQL cannot reproduce byte-identically is
// *refused* (Check returns an error): temporal operators, transfers,
// division (NULL-on-zero + always-double), time↔string comparisons (the
// stratum's type-rank order disagrees with SQLite affinity order there),
// string-typed predicates, SUM/AVG over non-int columns, MIN/MAX over
// doubles, and duplicate-sensitive operators over double columns (equal
// -0.0/0.0 keys make the surviving representative ambiguous). Refused
// subtrees are evaluated in-engine — correctness never depends on the
// backend.
#ifndef TQP_BACKEND_SQL_SERIALIZER_H_
#define TQP_BACKEND_SQL_SERIALIZER_H_

#include <string>
#include <vector>

#include "algebra/derivation.h"
#include "algebra/plan.h"

namespace tqp {

/// One SQL statement plus its positional `?` parameters (constants are
/// always bound, never inlined).
struct SerializedSql {
  std::string sql;
  std::vector<Value> params;
};

class SqlSerializer {
 public:
  explicit SqlSerializer(const AnnotatedPlan& ann) : ann_(ann) {}

  /// OK iff the subtree can be serialized with exact list semantics; the
  /// error message names the first refusal reason (for diagnostics).
  Status Check(const PlanPtr& node) const;
  bool CanSerialize(const PlanPtr& node) const { return Check(node).ok(); }

  /// The SQL for the subtree. Columns are c0..cN-1 positionally matching
  /// the node's derived schema; rows arrive in exact reference list order.
  Result<SerializedSql> Serialize(const PlanPtr& node) const;

  /// Backend table mirroring the catalog relation `rel_name`.
  static std::string MirrorTable(const std::string& rel_name) {
    return "rel_" + rel_name;
  }

 private:
  const AnnotatedPlan& ann_;
};

}  // namespace tqp

#endif  // TQP_BACKEND_SQL_SERIALIZER_H_
