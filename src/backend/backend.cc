#include "backend/backend.h"

#include <vector>

#include "backend/simulated_backend.h"
#include "backend/sqlite_backend.h"
#include "core/trace.h"
#include "exec/evaluator.h"

namespace tqp {

const char* BackendKindName(BackendKind kind) {
  switch (kind) {
    case BackendKind::kSimulated:
      return "simulated";
    case BackendKind::kSqlite:
      return "sqlite";
  }
  return "unknown";
}

Result<std::unique_ptr<Backend>> MakeBackend(BackendKind kind,
                                             const std::string& db_path) {
  switch (kind) {
    case BackendKind::kSimulated:
      return std::unique_ptr<Backend>(new SimulatedBackend());
    case BackendKind::kSqlite: {
      TQP_ASSIGN_OR_RETURN(be, SqliteBackend::Open(db_path));
      return std::unique_ptr<Backend>(std::move(be));
    }
  }
  return Status::InvalidArgument("unknown backend kind");
}

bool CanPushCut(Backend& backend, const PlanPtr& cut,
                const AnnotatedPlan& ann) {
  return backend.SupportsPushdown() && backend.CanPush(cut, ann);
}

Result<Relation> ExecuteCutPoint(Backend& backend, const PlanPtr& cut,
                                 const AnnotatedPlan& ann,
                                 const EngineConfig& config) {
  {
    TraceSpan sync(config.tracer, "backend", "sync_catalog");
    TQP_RETURN_IF_ERROR(backend.SyncCatalog(ann.catalog()));
  }

  // Split the cut into its top sort chain and the base below it. Under the
  // scramble contract every non-sort DBMS result's visible order is the
  // deterministic scramble of its multiset, so the base is fetched, put into
  // scramble order, and the sorts are replayed in the stratum — reproducing
  // the reference evaluator's list exactly. With scrambling off the SQL ord
  // column already is the reference list order and the stable sorts replay
  // over it unchanged.
  std::vector<const PlanNode*> sorts;  // outermost first
  PlanPtr base = cut;
  while (base->kind() == OpKind::kSort) {
    sorts.push_back(base.get());
    base = base->child(0);
  }

  TraceSpan span(config.tracer, "backend", "execute_subplan");
  TQP_ASSIGN_OR_RETURN(fetched, backend.ExecuteSubplan(base, ann));
  Relation result = std::move(fetched);
  if (span.active()) {
    span.Arg("rows", static_cast<uint64_t>(result.size()));
    span.Arg("sorts_replayed", static_cast<uint64_t>(sorts.size()));
  }
  if (config.dbms_scrambles_order && base->kind() != OpKind::kScan) {
    SimulatedBackend::ScrambleRelation(&result, config.scramble_seed);
  }
  for (auto it = sorts.rbegin(); it != sorts.rend(); ++it) {
    result = EvalSort(result, (*it)->sort_spec());
  }
  return result;
}

}  // namespace tqp
