// The stratum⇄DBMS boundary (Section 2.1/4.5) as a pluggable interface.
//
// The paper's layered architecture runs maximal conventional subplans below
// each transferS cut inside a conventional DBMS and only the temporal
// stratum work above it. A Backend is that DBMS: the stratum mirrors
// DBMS-site catalog relations into it (SyncCatalog), asks whether a cut
// subtree is expressible there (CanPush), and fetches the cut-point result
// (ExecuteSubplan) instead of evaluating the subtree itself. Table 1/Table 2
// contracts at the boundary stay enforced by the stratum: the fetched list
// must be exactly what the reference evaluator would have produced, scramble
// honesty included (see ExecuteCutPoint).
#ifndef TQP_BACKEND_BACKEND_H_
#define TQP_BACKEND_BACKEND_H_

#include <memory>
#include <string>
#include <vector>

#include "algebra/derivation.h"
#include "algebra/plan.h"
#include "exec/cost_model.h"

namespace tqp {

/// Selectable backend implementations (EngineOptions::backend).
enum class BackendKind {
  kSimulated,  // in-engine evaluation + scramble; the historical behavior
  kSqlite,     // SQL pushdown to an embedded SQLite database
};

const char* BackendKindName(BackendKind k);

/// A conventional DBMS below the stratum.
///
/// Implementations must be safe for concurrent use from multiple query
/// threads (the Engine shares one backend across sessions).
class Backend {
 public:
  virtual ~Backend() = default;

  virtual BackendKind kind() const = 0;
  const char* name() const { return BackendKindName(kind()); }

  /// Mirrors the DBMS-site relations of `catalog` into the backend. Keyed on
  /// the catalog contents: a repeated call with unchanged relations is a
  /// cheap no-op, and a file-backed mirror written by an earlier process is
  /// reused instead of reloaded. Called automatically before each cut-point
  /// execution.
  virtual Status SyncCatalog(const Catalog& catalog) = 0;

  /// False = the engine never consults CanPush/ExecuteSubplan and evaluates
  /// every subtree itself (SimulatedBackend).
  virtual bool SupportsPushdown() const = 0;

  /// True iff the subtree rooted at `plan` can be executed natively with
  /// exact list semantics. Conservative: anything refused is evaluated
  /// in-engine, which is always correct.
  virtual bool CanPush(const PlanPtr& plan, const AnnotatedPlan& ann) const = 0;

  /// Executes the subtree natively and returns its result in the exact
  /// reference list order (before any scramble; see ExecuteCutPoint).
  virtual Result<Relation> ExecuteSubplan(const PlanPtr& plan,
                                          const AnnotatedPlan& ann) = 0;

  /// Measures per-operator backend cost behavior for the optimizer. The
  /// SimulatedBackend returns the EngineConfig constants (cost model
  /// byte-identical to the pre-backend one); real backends probe themselves.
  virtual BackendCostProfile Calibrate(const EngineConfig& config) = 0;

  // ---- Raw DBMS primitives (exercised directly by tests/examples) ----

  /// Creates (or replaces) a backend table with positional columns c0..cN-1
  /// typed after `schema`.
  virtual Status CreateTable(const std::string& table,
                             const Schema& schema) = 0;

  /// Bulk-loads tuples into a table created by CreateTable, preserving list
  /// order as the backend's stored order.
  virtual Status Load(const std::string& table, const Relation& rows) = 0;

  /// Executes one SQL statement with positional `?` parameters; rows are
  /// decoded according to `out_schema`.
  virtual Result<Relation> ExecuteSql(const std::string& sql,
                                      const std::vector<Value>& params,
                                      const Schema& out_schema) = 0;
};

/// Constructs a backend. `db_path` applies to kSqlite only: empty = private
/// in-memory database, otherwise a file-backed database whose catalog mirror
/// survives restarts. Fails if the requested backend is not available in
/// this build (e.g. kSqlite without system sqlite3).
Result<std::unique_ptr<Backend>> MakeBackend(BackendKind kind,
                                             const std::string& db_path = "");

/// True iff the subtree under a transferS cut can be fetched from `backend`.
bool CanPushCut(Backend& backend, const PlanPtr& cut, const AnnotatedPlan& ann);

/// Fetches the result of transferS(cut) through the backend, reproducing the
/// reference evaluator's list exactly — including the deterministic scramble
/// when `config.dbms_scrambles_order` (a conventional operator's output
/// multiset is order-independent, and the scramble is a pure function of
/// that multiset; top-of-cut sort chains are replayed in the stratum so
/// their DBMS-honored order survives). On error the caller falls back to
/// in-engine evaluation.
Result<Relation> ExecuteCutPoint(Backend& backend, const PlanPtr& cut,
                                 const AnnotatedPlan& ann,
                                 const EngineConfig& config);

}  // namespace tqp

#endif  // TQP_BACKEND_BACKEND_H_
