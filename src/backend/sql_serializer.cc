#include "backend/sql_serializer.h"

#include <functional>
#include <string>
#include <vector>

namespace tqp {

namespace {

bool NumericType(ValueType t) {
  return t == ValueType::kInt || t == ValueType::kDouble ||
         t == ValueType::kTime;
}

// "c0, c1, ..., c{n-1}"
std::string BareCols(size_t n) {
  std::string s;
  for (size_t i = 0; i < n; ++i) {
    if (i) s += ", ";
    s += "c" + std::to_string(i);
  }
  return s;
}

// "a.c0 AS c0, a.c1 AS c1, ..." with an optional output-index offset
// ("b.c0 AS c3, ..." for the right side of a product).
std::string AliasedCols(const std::string& alias, size_t n, size_t out_base = 0) {
  std::string s;
  for (size_t i = 0; i < n; ++i) {
    if (i) s += ", ";
    s += alias + ".c" + std::to_string(i) + " AS c" + std::to_string(out_base + i);
  }
  return s;
}

// "s.c0, s.c1, ..." — GROUP BY / PARTITION BY key list.
std::string QualifiedCols(const std::string& alias, size_t n) {
  std::string s;
  for (size_t i = 0; i < n; ++i) {
    if (i) s += ", ";
    s += alias + ".c" + std::to_string(i);
  }
  return s;
}

// "a.c0 IS b.c0 AND ..." — null-safe equi-join over all columns.
std::string NullSafeJoin(const std::string& a, const std::string& b, size_t n) {
  std::string s;
  for (size_t i = 0; i < n; ++i) {
    if (i) s += " AND ";
    s += a + ".c" + std::to_string(i) + " IS " + b + ".c" + std::to_string(i);
  }
  return s;
}

const char* CompareToken(CompareOp op) {
  switch (op) {
    case CompareOp::kEq: return "=";
    case CompareOp::kNe: return "<>";
    case CompareOp::kLt: return "<";
    case CompareOp::kLe: return "<=";
    case CompareOp::kGt: return ">";
    case CompareOp::kGe: return ">=";
  }
  return "=";
}

const char* ArithToken(ArithOp op) {
  switch (op) {
    case ArithOp::kAdd: return "+";
    case ArithOp::kSub: return "-";
    case ArithOp::kMul: return "*";
    case ArithOp::kDiv: return "/";
  }
  return "+";
}

Status Refuse(const std::string& what) {
  return Status::Error("not pushable: " + what);
}

// ---- Expression translation --------------------------------------------
//
// Expressions translate to SQL that mirrors the stratum evaluator's exact
// semantics (expr.cc), which differ from SQL three-valued logic: AND
// short-circuits on a non-null false lhs *before* null-poisoning on the rhs
// (NULL AND 0 is NULL in the stratum, 0 in SQL), all arithmetic happens in
// double with integral results truncated toward zero, and comparisons
// return 1/0/NULL values. Each construct becomes a CASE expression encoding
// the stratum's evaluation order.

struct ExprTr {
  const Schema& schema;
  // Column reference for attribute index i ("s.c3", or the product-fused
  // "a.c0"/"b.c1" split).
  std::function<std::string(size_t)> col;
  std::vector<Value>* params;  // nullptr => check only, emit nothing

  Result<std::string> Tr(const ExprPtr& e) const {
    switch (e->kind()) {
      case ExprKind::kAttr: {
        int idx = schema.IndexOf(e->attr_name());
        if (idx < 0) return Refuse("unknown attribute " + e->attr_name());
        return col(static_cast<size_t>(idx));
      }
      case ExprKind::kConst: {
        if (e->constant().is_null()) return std::string("NULL");
        if (params == nullptr) return std::string("?1");  // check-only
        // Numbered parameter: the CASE translations splice an operand's SQL
        // more than once, and every occurrence must bind this one value (a
        // bare "?" would mint a fresh — unbound — parameter per splice).
        params->push_back(e->constant());
        return "?" + std::to_string(params->size());
      }
      case ExprKind::kCompare: {
        TQP_ASSIGN_OR_RETURN(lt, DeriveExprType(e->children()[0], schema));
        TQP_ASSIGN_OR_RETURN(rt, DeriveExprType(e->children()[1], schema));
        // The stratum's type-rank order puts time above string; SQLite puts
        // every INTEGER below every TEXT.
        if ((lt == ValueType::kTime && rt == ValueType::kString) ||
            (lt == ValueType::kString && rt == ValueType::kTime)) {
          return Refuse("time vs string comparison");
        }
        TQP_ASSIGN_OR_RETURN(l, Tr(e->children()[0]));
        TQP_ASSIGN_OR_RETURN(r, Tr(e->children()[1]));
        return "CASE WHEN (" + l + ") IS NULL OR (" + r +
               ") IS NULL THEN NULL WHEN (" + l + ") " +
               CompareToken(e->compare_op()) + " (" + r +
               ") THEN 1 ELSE 0 END";
      }
      case ExprKind::kAnd: {
        TQP_RETURN_IF_ERROR(CheckBoolOperand(e->children()[0]));
        TQP_RETURN_IF_ERROR(CheckBoolOperand(e->children()[1]));
        TQP_ASSIGN_OR_RETURN(l, Tr(e->children()[0]));
        TQP_ASSIGN_OR_RETURN(r, Tr(e->children()[1]));
        // Stratum AND: non-null false lhs wins before null-poisoning.
        return "CASE WHEN (" + l + ") = 0 THEN 0 WHEN (" + l +
               ") IS NULL OR (" + r + ") IS NULL THEN NULL WHEN (" + r +
               ") <> 0 THEN 1 ELSE 0 END";
      }
      case ExprKind::kOr: {
        TQP_RETURN_IF_ERROR(CheckBoolOperand(e->children()[0]));
        TQP_RETURN_IF_ERROR(CheckBoolOperand(e->children()[1]));
        TQP_ASSIGN_OR_RETURN(l, Tr(e->children()[0]));
        TQP_ASSIGN_OR_RETURN(r, Tr(e->children()[1]));
        return "CASE WHEN (" + l + ") IS NOT NULL AND (" + l +
               ") <> 0 THEN 1 WHEN (" + l + ") IS NULL OR (" + r +
               ") IS NULL THEN NULL WHEN (" + r + ") <> 0 THEN 1 ELSE 0 END";
      }
      case ExprKind::kNot: {
        TQP_RETURN_IF_ERROR(CheckBoolOperand(e->children()[0]));
        TQP_ASSIGN_OR_RETURN(x, Tr(e->children()[0]));
        return "CASE WHEN (" + x + ") IS NULL THEN NULL WHEN (" + x +
               ") = 0 THEN 1 ELSE 0 END";
      }
      case ExprKind::kArith: {
        if (e->arith_op() == ArithOp::kDiv) {
          return Refuse("division (NULL-on-zero, always-double result)");
        }
        TQP_ASSIGN_OR_RETURN(lt, DeriveExprType(e->children()[0], schema));
        TQP_ASSIGN_OR_RETURN(rt, DeriveExprType(e->children()[1], schema));
        if (!NumericType(lt) || !NumericType(rt)) {
          return Refuse("non-numeric arithmetic operand");
        }
        TQP_ASSIGN_OR_RETURN(l, Tr(e->children()[0]));
        TQP_ASSIGN_OR_RETURN(r, Tr(e->children()[1]));
        // The stratum computes in double and truncates integral results
        // toward zero (static_cast); CAST(REAL AS INTEGER) does the same.
        std::string core = "CAST((" + l + ") AS REAL) " +
                           std::string(ArithToken(e->arith_op())) + " CAST((" +
                           r + ") AS REAL)";
        bool integral = lt != ValueType::kDouble && rt != ValueType::kDouble;
        if (integral) return "CAST(" + core + " AS INTEGER)";
        return "(" + core + ")";
      }
      case ExprKind::kOverlaps: {
        std::vector<std::string> ops;
        for (const ExprPtr& c : e->children()) {
          TQP_ASSIGN_OR_RETURN(t, DeriveExprType(c, schema));
          if (!NumericType(t) && t != ValueType::kNull) {
            return Refuse("non-numeric OVERLAPS operand");
          }
          TQP_ASSIGN_OR_RETURN(s, Tr(c));
          ops.push_back(std::move(s));
        }
        return "CASE WHEN (" + ops[0] + ") IS NULL OR (" + ops[1] +
               ") IS NULL OR (" + ops[2] + ") IS NULL OR (" + ops[3] +
               ") IS NULL THEN NULL WHEN (" + ops[0] + ") < (" + ops[3] +
               ") AND (" + ops[2] + ") < (" + ops[1] +
               ") THEN 1 ELSE 0 END";
      }
    }
    return Status::Error("unreachable expression kind");
  }

  // AND/OR/NOT operands feed NumericValue() in the stratum; a string there
  // would be a crash in-engine and a text-affinity comparison in SQL.
  Status CheckBoolOperand(const ExprPtr& e) const {
    TQP_ASSIGN_OR_RETURN(t, DeriveExprType(e, schema));
    if (t == ValueType::kString) return Refuse("string boolean operand");
    return Status::OK();
  }
};

std::string SimpleColRefFn(size_t i) { return "s.c" + std::to_string(i); }

// ---- Per-operator checks ------------------------------------------------

bool AnyDoubleColumn(const Schema& s) {
  for (const Attribute& a : s.attrs()) {
    if (a.type == ValueType::kDouble) return true;
  }
  return false;
}

}  // namespace

Status SqlSerializer::Check(const PlanPtr& node) const {
  const NodeInfo& info = ann_.info(node.get());
  switch (node->kind()) {
    case OpKind::kScan: {
      const CatalogEntry* e = ann_.catalog().Find(node->rel_name());
      if (e == nullptr) return Refuse("unknown relation " + node->rel_name());
      if (e->site != Site::kDbms) {
        return Refuse("relation " + node->rel_name() + " not at DBMS site");
      }
      if (node->rel_name().find('"') != std::string::npos) {
        return Refuse("unquotable relation name");
      }
      return Status::OK();
    }
    case OpKind::kSelect: {
      const Schema& in = ann_.info(node->child(0).get()).schema;
      ExprTr tr{in, SimpleColRefFn, nullptr};
      TQP_ASSIGN_OR_RETURN(t, DeriveExprType(node->predicate(), in));
      if (t == ValueType::kString) return Refuse("string-typed predicate");
      TQP_ASSIGN_OR_RETURN(sql, tr.Tr(node->predicate()));
      (void)sql;
      return Check(node->child(0));
    }
    case OpKind::kProject: {
      const Schema& in = ann_.info(node->child(0).get()).schema;
      ExprTr tr{in, SimpleColRefFn, nullptr};
      for (const ProjItem& item : node->projections()) {
        TQP_ASSIGN_OR_RETURN(sql, tr.Tr(item.expr));
        (void)sql;
      }
      return Check(node->child(0));
    }
    case OpKind::kUnionAll:
    case OpKind::kProduct:
      TQP_RETURN_IF_ERROR(Check(node->child(0)));
      return Check(node->child(1));
    case OpKind::kUnion:
    case OpKind::kDifference: {
      // Duplicate counting partitions by full tuples; a double column can
      // hold distinct Compare-equal keys (-0.0/0.0) whose surviving
      // representative SQL leaves unspecified.
      if (AnyDoubleColumn(info.schema)) {
        return Refuse("duplicate-sensitive operator over double column");
      }
      TQP_RETURN_IF_ERROR(Check(node->child(0)));
      return Check(node->child(1));
    }
    case OpKind::kRdup: {
      const Schema& in = ann_.info(node->child(0).get()).schema;
      if (in.IsTemporal()) return Refuse("rdup over temporal schema");
      if (AnyDoubleColumn(in)) {
        return Refuse("rdup over double column");
      }
      return Check(node->child(0));
    }
    case OpKind::kSort: {
      const Schema& in = ann_.info(node->child(0).get()).schema;
      for (const SortKey& k : node->sort_spec()) {
        if (in.IndexOf(k.attr) < 0) {
          return Refuse("sort key " + k.attr + " not in schema");
        }
      }
      return Check(node->child(0));
    }
    case OpKind::kAggregate: {
      const Schema& in = ann_.info(node->child(0).get()).schema;
      for (const std::string& g : node->group_by()) {
        int idx = in.IndexOf(g);
        if (idx < 0) return Refuse("group key " + g + " not in schema");
        if (in.attr(static_cast<size_t>(idx)).type == ValueType::kDouble) {
          return Refuse("grouping on double column");
        }
      }
      for (const AggSpec& a : node->aggregates()) {
        if (a.func == AggFunc::kCount) continue;  // COUNT counts all rows
        int idx = in.IndexOf(a.attr);
        if (idx < 0) return Refuse("aggregate input " + a.attr + " missing");
        ValueType t = in.attr(static_cast<size_t>(idx)).type;
        if (a.func == AggFunc::kSum || a.func == AggFunc::kAvg) {
          // The stratum accumulates in double and, for SUM, casts back by
          // the *input* type; only int inputs round-trip exactly.
          if (t != ValueType::kInt) return Refuse("SUM/AVG over non-int");
        } else if (t == ValueType::kDouble) {  // kMin / kMax
          return Refuse("MIN/MAX over double column");
        }
      }
      return Check(node->child(0));
    }
    case OpKind::kProductT:
    case OpKind::kDifferenceT:
    case OpKind::kAggregateT:
    case OpKind::kRdupT:
    case OpKind::kUnionT:
    case OpKind::kCoalesce:
      return Refuse("temporal operator");
    case OpKind::kTransferS:
    case OpKind::kTransferD:
      return Refuse("nested transfer");
  }
  return Status::Error("unreachable operator kind");
}

namespace {

struct SqlBuilder {
  const AnnotatedPlan& ann;
  std::vector<std::string> ctes;
  std::vector<Value>* params;
  int next_id = 0;

  std::string NewCte(const std::string& body) {
    std::string name = "t" + std::to_string(next_id++);
    ctes.push_back(name + " AS (" + body + ")");
    return name;
  }

  const Schema& SchemaOf(const PlanPtr& n) const {
    return ann.info(n.get()).schema;
  }

  // Body of a fused "σ over ×" or a bare "×": the product pairs stream
  // through the DBMS's join machinery with the predicate applied in place,
  // and ROW_NUMBER over (left ord, right ord) restores the exact
  // left-major product order restricted to survivors.
  Result<std::string> ProductBody(const PlanPtr& product,
                                  const ExprPtr& predicate) {
    size_t la = SchemaOf(product->child(0)).size();
    size_t lb = SchemaOf(product->child(1)).size();
    TQP_ASSIGN_OR_RETURN(l, Emit(product->child(0)));
    TQP_ASSIGN_OR_RETURN(r, Emit(product->child(1)));
    std::string body = "SELECT " + AliasedCols("a", la) + ", " +
                       AliasedCols("b", lb, la) +
                       ", ROW_NUMBER() OVER (ORDER BY a.ord, b.ord) AS ord "
                       "FROM " + l + " AS a, " + r + " AS b";
    if (predicate != nullptr) {
      const Schema& ps = SchemaOf(product);
      ExprTr tr{ps,
                [la](size_t i) {
                  return i < la ? "a.c" + std::to_string(i)
                                : "b.c" + std::to_string(i - la);
                },
                params};
      TQP_ASSIGN_OR_RETURN(pred, tr.Tr(predicate));
      body += " WHERE " + pred;
    }
    return body;
  }

  // Emits the subtree as CTEs and returns the name of its CTE. Every CTE
  // has columns c0..cN-1 plus ord (exact reference list position key).
  Result<std::string> Emit(const PlanPtr& node) {
    const Schema& schema = SchemaOf(node);
    size_t n = schema.size();
    switch (node->kind()) {
      case OpKind::kScan:
        return NewCte("SELECT " + BareCols(n) + ", rowid AS ord FROM \"" +
                      SqlSerializer::MirrorTable(node->rel_name()) + "\"");
      case OpKind::kSelect: {
        if (node->child(0)->kind() == OpKind::kProduct) {
          TQP_ASSIGN_OR_RETURN(
              body, ProductBody(node->child(0), node->predicate()));
          return NewCte(body);
        }
        const Schema& in = SchemaOf(node->child(0));
        TQP_ASSIGN_OR_RETURN(c, Emit(node->child(0)));
        ExprTr tr{in, SimpleColRefFn, params};
        TQP_ASSIGN_OR_RETURN(pred, tr.Tr(node->predicate()));
        return NewCte("SELECT " + AliasedCols("s", n) +
                      ", s.ord AS ord FROM " + c + " AS s WHERE " + pred);
      }
      case OpKind::kProduct: {
        TQP_ASSIGN_OR_RETURN(body, ProductBody(node, nullptr));
        return NewCte(body);
      }
      case OpKind::kProject: {
        const Schema& in = SchemaOf(node->child(0));
        TQP_ASSIGN_OR_RETURN(c, Emit(node->child(0)));
        ExprTr tr{in, SimpleColRefFn, params};
        std::string body = "SELECT ";
        const std::vector<ProjItem>& items = node->projections();
        for (size_t i = 0; i < items.size(); ++i) {
          TQP_ASSIGN_OR_RETURN(e, tr.Tr(items[i].expr));
          if (i) body += ", ";
          body += "(" + e + ") AS c" + std::to_string(i);
        }
        body += ", s.ord AS ord FROM " + c + " AS s";
        return NewCte(body);
      }
      case OpKind::kUnionAll: {
        TQP_ASSIGN_OR_RETURN(l, Emit(node->child(0)));
        TQP_ASSIGN_OR_RETURN(r, Emit(node->child(1)));
        return NewCte(
            "SELECT " + BareCols(n) +
            ", ROW_NUMBER() OVER (ORDER BY u_side, u_ord) AS ord FROM ("
            "SELECT " + AliasedCols("s", n) +
            ", 0 AS u_side, s.ord AS u_ord FROM " + l + " AS s "
            "UNION ALL SELECT " + AliasedCols("s", n) +
            ", 1 AS u_side, s.ord AS u_ord FROM " + r + " AS s)");
      }
      case OpKind::kUnion: {
        // ∪ keeps all left occurrences plus the right occurrences whose
        // per-value rank exceeds the left multiplicity (max-multiplicity
        // union), right survivors in right order after all left rows.
        TQP_ASSIGN_OR_RETURN(l, Emit(node->child(0)));
        TQP_ASSIGN_OR_RETURN(r, Emit(node->child(1)));
        std::string ranked_right =
            "SELECT " + AliasedCols("s", n) + ", s.ord AS ord"
            ", ROW_NUMBER() OVER (PARTITION BY " + QualifiedCols("s", n) +
            " ORDER BY s.ord) AS rn FROM " + r + " AS s";
        std::string left_counts =
            "SELECT " + AliasedCols("s", n) + ", COUNT(*) AS cnt FROM " + l +
            " AS s GROUP BY " + QualifiedCols("s", n);
        return NewCte(
            "SELECT " + BareCols(n) +
            ", ROW_NUMBER() OVER (ORDER BY u_side, u_ord) AS ord FROM ("
            "SELECT " + AliasedCols("s", n) +
            ", 0 AS u_side, s.ord AS u_ord FROM " + l + " AS s "
            "UNION ALL SELECT " + AliasedCols("rr", n) +
            ", 1 AS u_side, rr.ord AS u_ord FROM (" + ranked_right +
            ") AS rr LEFT JOIN (" + left_counts + ") AS lc ON " +
            NullSafeJoin("rr", "lc", n) +
            " WHERE rr.rn > COALESCE(lc.cnt, 0))");
      }
      case OpKind::kDifference: {
        // Each right occurrence cancels the earliest surviving matching
        // left occurrence: survivors are left occurrences whose per-value
        // rank exceeds the right multiplicity, in left order.
        TQP_ASSIGN_OR_RETURN(l, Emit(node->child(0)));
        TQP_ASSIGN_OR_RETURN(r, Emit(node->child(1)));
        std::string ranked_left =
            "SELECT " + AliasedCols("s", n) + ", s.ord AS ord"
            ", ROW_NUMBER() OVER (PARTITION BY " + QualifiedCols("s", n) +
            " ORDER BY s.ord) AS rn FROM " + l + " AS s";
        std::string right_counts =
            "SELECT " + AliasedCols("s", n) + ", COUNT(*) AS cnt FROM " + r +
            " AS s GROUP BY " + QualifiedCols("s", n);
        return NewCte("SELECT " + AliasedCols("ll", n) +
                      ", ll.ord AS ord FROM (" + ranked_left +
                      ") AS ll LEFT JOIN (" + right_counts + ") AS rc ON " +
                      NullSafeJoin("ll", "rc", n) +
                      " WHERE ll.rn > COALESCE(rc.cnt, 0)");
      }
      case OpKind::kRdup: {
        TQP_ASSIGN_OR_RETURN(c, Emit(node->child(0)));
        return NewCte("SELECT " + AliasedCols("s", n) +
                      ", MIN(s.ord) AS ord FROM " + c + " AS s GROUP BY " +
                      QualifiedCols("s", n));
      }
      case OpKind::kSort: {
        const Schema& in = SchemaOf(node->child(0));
        TQP_ASSIGN_OR_RETURN(c, Emit(node->child(0)));
        std::string keys;
        for (const SortKey& k : node->sort_spec()) {
          int idx = in.IndexOf(k.attr);
          if (idx < 0) return Refuse("sort key " + k.attr + " not in schema");
          keys += "s.c" + std::to_string(idx) +
                  (k.ascending ? " ASC, " : " DESC, ");
        }
        // Stable: ties keep input order via the input's ord. SQLite's
        // NULLS-first-ASC / NULLS-last-DESC matches the stratum's total
        // value order (nulls rank lowest).
        return NewCte("SELECT " + AliasedCols("s", n) +
                      ", ROW_NUMBER() OVER (ORDER BY " + keys +
                      "s.ord) AS ord FROM " + c + " AS s");
      }
      case OpKind::kAggregate: {
        const Schema& in = SchemaOf(node->child(0));
        TQP_ASSIGN_OR_RETURN(c, Emit(node->child(0)));
        const std::vector<std::string>& group = node->group_by();
        std::string body = "SELECT ";
        std::string keys;
        for (size_t i = 0; i < group.size(); ++i) {
          int idx = in.IndexOf(group[i]);
          if (idx < 0) return Refuse("group key missing");
          if (i) keys += ", ";
          keys += "s.c" + std::to_string(idx);
          body += "s.c" + std::to_string(idx) + " AS c" + std::to_string(i) +
                  ", ";
        }
        const std::vector<AggSpec>& aggs = node->aggregates();
        for (size_t j = 0; j < aggs.size(); ++j) {
          const AggSpec& a = aggs[j];
          std::string e;
          if (a.func == AggFunc::kCount) {
            // The stratum's COUNT counts every row, nulls included.
            e = "COUNT(*)";
          } else {
            int idx = in.IndexOf(a.attr);
            if (idx < 0) return Refuse("aggregate input missing");
            std::string col = "s.c" + std::to_string(idx);
            switch (a.func) {
              case AggFunc::kSum:
                // All-null group => NULL; else double-accumulated sum cast
                // back to int (exact for int inputs), as the stratum does.
                e = "CASE WHEN COUNT(" + col +
                    ") = 0 THEN NULL ELSE CAST(TOTAL(" + col +
                    ") AS INTEGER) END";
                break;
              case AggFunc::kAvg:
                e = "AVG(" + col + ")";
                break;
              case AggFunc::kMin:
                e = "MIN(" + col + ")";
                break;
              case AggFunc::kMax:
                e = "MAX(" + col + ")";
                break;
              case AggFunc::kCount:
                break;  // handled above
            }
          }
          body += e + " AS c" + std::to_string(group.size() + j) + ", ";
        }
        // Groups surface in first-occurrence order via MIN(ord).
        body += "MIN(s.ord) AS ord FROM " + c + " AS s";
        if (!keys.empty()) {
          body += " GROUP BY " + keys;
        } else {
          // SQL's global aggregate yields one row on empty input; the
          // stratum's ℵ yields none.
          body += " HAVING COUNT(*) > 0";
        }
        return NewCte(body);
      }
      default:
        return Refuse(std::string("operator ") + OpKindName(node->kind()));
    }
  }
};

}  // namespace

Result<SerializedSql> SqlSerializer::Serialize(const PlanPtr& node) const {
  TQP_RETURN_IF_ERROR(Check(node));
  SerializedSql out;
  SqlBuilder b{ann_, {}, &out.params, 0};
  TQP_ASSIGN_OR_RETURN(top, b.Emit(node));
  size_t n = ann_.info(node.get()).schema.size();
  std::string sql = "WITH ";
  for (size_t i = 0; i < b.ctes.size(); ++i) {
    if (i) sql += ", ";
    sql += b.ctes[i];
  }
  sql += " SELECT " + BareCols(n) + " FROM " + top + " ORDER BY ord";
  out.sql = std::move(sql);
  return out;
}

}  // namespace tqp
