#include "backend/sqlite_backend.h"

#ifdef TQP_HAVE_SQLITE3

#include <sqlite3.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <functional>
#include <mutex>

#include "backend/sql_serializer.h"
#include "core/hash.h"
#include "exec/evaluator.h"

namespace tqp {

namespace {

// Window functions (ROW_NUMBER) arrived in 3.25.0; the serializer's list
// semantics depend on them.
constexpr int kMinSqliteVersion = 3025000;

const char* SqlType(ValueType t) {
  switch (t) {
    case ValueType::kInt:
    case ValueType::kTime:
      return " INTEGER";
    case ValueType::kDouble:
      return " REAL";
    case ValueType::kString:
      return " TEXT";
    case ValueType::kNull:
      return "";  // no affinity; the column only ever holds NULLs
  }
  return "";
}

Status ExecRaw(sqlite3* db, const std::string& sql) {
  char* err = nullptr;
  if (sqlite3_exec(db, sql.c_str(), nullptr, nullptr, &err) != SQLITE_OK) {
    std::string msg = err != nullptr ? err : "unknown sqlite error";
    sqlite3_free(err);
    return Status::Error("sqlite: " + msg);
  }
  return Status::OK();
}

int BindValue(sqlite3_stmt* st, int idx, const Value& v) {
  switch (v.type()) {
    case ValueType::kNull:
      return sqlite3_bind_null(st, idx);
    case ValueType::kInt:
      return sqlite3_bind_int64(st, idx, v.AsInt());
    case ValueType::kTime:
      return sqlite3_bind_int64(st, idx, v.AsTime());
    case ValueType::kDouble:
      return sqlite3_bind_double(st, idx, v.AsDouble());
    case ValueType::kString:
      return sqlite3_bind_text(st, idx, v.AsString().c_str(),
                               static_cast<int>(v.AsString().size()),
                               SQLITE_TRANSIENT);
  }
  return SQLITE_MISUSE;
}

Value DecodeColumn(sqlite3_stmt* st, int i, ValueType t) {
  if (sqlite3_column_type(st, i) == SQLITE_NULL) return Value::Null();
  switch (t) {
    case ValueType::kInt:
      return Value::Int(sqlite3_column_int64(st, i));
    case ValueType::kTime:
      return Value::Time(sqlite3_column_int64(st, i));
    case ValueType::kDouble:
      return Value::Double(sqlite3_column_double(st, i));
    case ValueType::kString:
      return Value::String(
          reinterpret_cast<const char*>(sqlite3_column_text(st, i)));
    case ValueType::kNull:
      return Value::Null();
  }
  return Value::Null();
}

/// Order-sensitive digest of the DBMS-site relations: names, schemas, and
/// every tuple. This — not the catalog pointer or version — keys the
/// mirror, so a file-backed mirror written by another process (or an
/// unrelated catalog object with identical contents) is recognized.
uint64_t CatalogContentFingerprint(const Catalog& catalog) {
  uint64_t h = 0x7ab1e5cafe;
  for (const std::string& name : catalog.Names()) {
    const CatalogEntry* e = catalog.Find(name);
    if (e == nullptr || e->site != Site::kDbms) continue;
    h = HashCombine(h, std::hash<std::string>{}(name));
    for (const Attribute& a : e->data.schema().attrs()) {
      h = HashCombine(h, std::hash<std::string>{}(a.name));
      h = HashCombine(h, static_cast<uint64_t>(a.type));
    }
    h = HashCombine(h, e->data.size());
    for (const Tuple& t : e->data.tuples()) {
      h = HashCombine(h, t.Hash());
    }
  }
  return h;
}

}  // namespace

struct SqliteBackend::Impl {
  sqlite3* db = nullptr;
  // One statement at a time: sqlite connections are not meant for
  // concurrent statement execution, and a single coarse lock keeps the
  // backend trivially TSan-clean under the multi-tenant engine.
  mutable std::mutex mu;
  uint64_t mirrored_fp = 0;  // content fingerprint of the current mirror
  int64_t mirror_loads = 0;

  Status CreateTableLocked(const std::string& table, const Schema& schema) {
    TQP_RETURN_IF_ERROR(ExecRaw(db, "DROP TABLE IF EXISTS \"" + table + "\""));
    std::string sql = "CREATE TABLE \"" + table + "\" (";
    for (size_t i = 0; i < schema.size(); ++i) {
      if (i) sql += ", ";
      sql += "c" + std::to_string(i) + SqlType(schema.attr(i).type);
    }
    sql += ")";
    return ExecRaw(db, sql);
  }

  Status LoadLocked(const std::string& table, const Relation& rows) {
    std::string sql = "INSERT INTO \"" + table + "\" VALUES (";
    for (size_t i = 0; i < rows.schema().size(); ++i) {
      sql += i ? ", ?" : "?";
    }
    sql += ")";
    sqlite3_stmt* st = nullptr;
    if (sqlite3_prepare_v2(db, sql.c_str(), -1, &st, nullptr) != SQLITE_OK) {
      return Status::Error(std::string("sqlite prepare: ") +
                           sqlite3_errmsg(db));
    }
    for (const Tuple& t : rows.tuples()) {
      for (size_t i = 0; i < t.size(); ++i) {
        if (BindValue(st, static_cast<int>(i) + 1, t.at(i)) != SQLITE_OK) {
          sqlite3_finalize(st);
          return Status::Error(std::string("sqlite bind: ") +
                               sqlite3_errmsg(db));
        }
      }
      if (sqlite3_step(st) != SQLITE_DONE) {
        sqlite3_finalize(st);
        return Status::Error(std::string("sqlite insert: ") +
                             sqlite3_errmsg(db));
      }
      sqlite3_reset(st);
    }
    sqlite3_finalize(st);
    return Status::OK();
  }

  Result<Relation> ExecuteSqlLocked(const std::string& sql,
                                    const std::vector<Value>& params,
                                    const Schema& out_schema) {
    sqlite3_stmt* st = nullptr;
    if (sqlite3_prepare_v2(db, sql.c_str(), -1, &st, nullptr) != SQLITE_OK) {
      return Status::Error(std::string("sqlite prepare: ") +
                           sqlite3_errmsg(db));
    }
    for (size_t i = 0; i < params.size(); ++i) {
      if (BindValue(st, static_cast<int>(i) + 1, params[i]) != SQLITE_OK) {
        sqlite3_finalize(st);
        return Status::Error(std::string("sqlite bind: ") +
                             sqlite3_errmsg(db));
      }
    }
    size_t width = out_schema.size();
    Relation out(out_schema);
    int rc;
    while ((rc = sqlite3_step(st)) == SQLITE_ROW) {
      if (static_cast<size_t>(sqlite3_column_count(st)) != width) {
        sqlite3_finalize(st);
        return Status::Error("sqlite: column count mismatch");
      }
      Tuple t;
      for (size_t i = 0; i < width; ++i) {
        t.push_back(DecodeColumn(st, static_cast<int>(i),
                                 out_schema.attr(i).type));
      }
      out.Append(std::move(t));
    }
    if (rc != SQLITE_DONE) {
      Status s = Status::Error(std::string("sqlite step: ") +
                               sqlite3_errmsg(db));
      sqlite3_finalize(st);
      return s;
    }
    sqlite3_finalize(st);
    return out;
  }
};

bool SqliteBackend::Available() {
  return sqlite3_libversion_number() >= kMinSqliteVersion;
}

SqliteBackend::SqliteBackend() : impl_(new Impl()) {}

SqliteBackend::~SqliteBackend() {
  if (impl_ != nullptr && impl_->db != nullptr) sqlite3_close(impl_->db);
}

Result<std::unique_ptr<SqliteBackend>> SqliteBackend::Open(
    const std::string& db_path) {
  if (!Available()) {
    return Status::Error("system sqlite3 too old (need >= 3.25 for window "
                         "functions)");
  }
  std::string target = db_path.empty() ? ":memory:" : db_path;
  sqlite3* db = nullptr;
  int flags = SQLITE_OPEN_READWRITE | SQLITE_OPEN_CREATE |
              SQLITE_OPEN_FULLMUTEX;
  if (sqlite3_open_v2(target.c_str(), &db, flags, nullptr) != SQLITE_OK) {
    std::string msg = db != nullptr ? sqlite3_errmsg(db) : "open failed";
    if (db != nullptr) sqlite3_close(db);
    return Status::Error("sqlite open '" + target + "': " + msg);
  }
  std::unique_ptr<SqliteBackend> be(new SqliteBackend());
  be->impl_->db = db;
  TQP_RETURN_IF_ERROR(ExecRaw(
      db, "CREATE TABLE IF NOT EXISTS tqp_meta (key TEXT PRIMARY KEY, "
          "value TEXT)"));
  // A file-backed database may already mirror a catalog from an earlier
  // process; adopt its fingerprint so SyncCatalog can reuse it.
  sqlite3_stmt* st = nullptr;
  if (sqlite3_prepare_v2(db,
                         "SELECT value FROM tqp_meta WHERE key='catalog_fp'",
                         -1, &st, nullptr) == SQLITE_OK) {
    if (sqlite3_step(st) == SQLITE_ROW) {
      const char* v = reinterpret_cast<const char*>(sqlite3_column_text(st, 0));
      if (v != nullptr) {
        be->impl_->mirrored_fp = std::strtoull(v, nullptr, 16);
      }
    }
    sqlite3_finalize(st);
  }
  return be;
}

Status SqliteBackend::SyncCatalog(const Catalog& catalog) {
  uint64_t fp = CatalogContentFingerprint(catalog);
  std::lock_guard<std::mutex> lock(impl_->mu);
  if (fp == impl_->mirrored_fp) return Status::OK();

  Status st = [&]() -> Status {
    TQP_RETURN_IF_ERROR(ExecRaw(impl_->db, "BEGIN IMMEDIATE"));
    // Drop every stale mirror table, then rebuild from the catalog.
    std::vector<std::string> stale;
    {
      sqlite3_stmt* q = nullptr;
      if (sqlite3_prepare_v2(impl_->db,
                             "SELECT name FROM sqlite_master WHERE "
                             "type='table' AND name LIKE 'rel!_%' ESCAPE '!'",
                             -1, &q, nullptr) != SQLITE_OK) {
        return Status::Error(std::string("sqlite prepare: ") +
                             sqlite3_errmsg(impl_->db));
      }
      while (sqlite3_step(q) == SQLITE_ROW) {
        stale.emplace_back(
            reinterpret_cast<const char*>(sqlite3_column_text(q, 0)));
      }
      sqlite3_finalize(q);
    }
    for (const std::string& t : stale) {
      TQP_RETURN_IF_ERROR(ExecRaw(impl_->db, "DROP TABLE \"" + t + "\""));
    }
    for (const std::string& name : catalog.Names()) {
      const CatalogEntry* e = catalog.Find(name);
      if (e == nullptr || e->site != Site::kDbms) continue;
      std::string table = SqlSerializer::MirrorTable(name);
      TQP_RETURN_IF_ERROR(impl_->CreateTableLocked(table, e->data.schema()));
      TQP_RETURN_IF_ERROR(impl_->LoadLocked(table, e->data));
    }
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(fp));
    TQP_RETURN_IF_ERROR(
        ExecRaw(impl_->db,
                std::string("INSERT INTO tqp_meta (key, value) VALUES "
                            "('catalog_fp', '") +
                    buf +
                    "') ON CONFLICT(key) DO UPDATE SET value=excluded.value"));
    return ExecRaw(impl_->db, "COMMIT");
  }();
  if (!st.ok()) {
    (void)ExecRaw(impl_->db, "ROLLBACK");
    return st;
  }
  impl_->mirrored_fp = fp;
  ++impl_->mirror_loads;
  return Status::OK();
}

bool SqliteBackend::CanPush(const PlanPtr& plan,
                            const AnnotatedPlan& ann) const {
  return SqlSerializer(ann).CanSerialize(plan);
}

Result<Relation> SqliteBackend::ExecuteSubplan(const PlanPtr& plan,
                                               const AnnotatedPlan& ann) {
  SqlSerializer ser(ann);
  TQP_ASSIGN_OR_RETURN(ss, ser.Serialize(plan));
  return ExecuteSql(ss.sql, ss.params, ann.info(plan.get()).schema);
}

Status SqliteBackend::CreateTable(const std::string& table,
                                  const Schema& schema) {
  std::lock_guard<std::mutex> lock(impl_->mu);
  return impl_->CreateTableLocked(table, schema);
}

Status SqliteBackend::Load(const std::string& table, const Relation& rows) {
  std::lock_guard<std::mutex> lock(impl_->mu);
  return impl_->LoadLocked(table, rows);
}

Result<Relation> SqliteBackend::ExecuteSql(const std::string& sql,
                                           const std::vector<Value>& params,
                                           const Schema& out_schema) {
  std::lock_guard<std::mutex> lock(impl_->mu);
  return impl_->ExecuteSqlLocked(sql, params, out_schema);
}

int64_t SqliteBackend::mirror_loads() const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  return impl_->mirror_loads;
}

// ---- Calibration --------------------------------------------------------

namespace {

double TimeUs(const std::function<void()>& fn) {
  fn();  // warm-up
  double best = 1e18;
  for (int rep = 0; rep < 3; ++rep) {
    auto t0 = std::chrono::steady_clock::now();
    fn();
    auto t1 = std::chrono::steady_clock::now();
    double us =
        std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0).count() /
        1000.0;
    best = std::min(best, us);
  }
  return std::max(best, 0.5);  // clock-resolution floor
}

/// Quantize a measured ratio to the nearest power of two in [1/64, 64]:
/// run-to-run timing jitter collapses to a stable bucket, so the profile
/// fingerprint (and with it plan-cache validity) is reproducible.
double QuantizeFactor(double f) {
  f = std::max(1.0 / 64.0, std::min(64.0, f));
  int e = static_cast<int>(std::lround(std::log2(f)));
  return std::ldexp(1.0, e);
}

}  // namespace

BackendCostProfile SqliteBackend::Calibrate(const EngineConfig& config) {
  BackendCostProfile p;
  p.transfer_cost_per_tuple = config.transfer_cost_per_tuple;
  for (size_t k = 0; k < kOpKindCount; ++k) {
    p.dbms_op_factor[k] = IsTemporalOp(static_cast<OpKind>(k))
                              ? config.dbms_temporal_penalty
                              : 1.0;
  }

  // Deterministic conventional probe data.
  Schema ps(std::vector<Attribute>{{"K", ValueType::kInt},
                                   {"V", ValueType::kInt},
                                   {"S", ValueType::kString}});
  Relation probe(ps);
  for (int i = 0; i < 1500; ++i) {
    Tuple t;
    t.push_back(Value::Int(i % 97));
    t.push_back(Value::Int((i * 7) % 1001));
    t.push_back(Value::String("s" + std::to_string(i % 13)));
    probe.Append(std::move(t));
  }
  Relation small(ps);
  for (int i = 0; i < 150; ++i) {
    Tuple t;
    t.push_back(Value::Int(i % 23));
    t.push_back(Value::Int((i * 11) % 311));
    t.push_back(Value::String("t" + std::to_string(i % 7)));
    small.Append(std::move(t));
  }
  if (!CreateTable("cal_probe", ps).ok() || !Load("cal_probe", probe).ok() ||
      !CreateTable("cal_small", ps).ok() || !Load("cal_small", small).ok()) {
    return p;  // probes unavailable; keep the constant model
  }

  // One representative per cost class, stratum vs backend, with the fetch
  // cost included on the backend side (that is what pushdown pays).
  struct ClassProbe {
    std::vector<OpKind> kinds;
    std::function<void()> stratum;
    std::function<void()> backend;
  };
  ExprPtr sel_pred = Expr::Compare(CompareOp::kLt, Expr::Attr("V"),
                                   Expr::Const(Value::Int(500)));
  Schema pair_schema(std::vector<Attribute>{{"K1", ValueType::kInt},
                                            {"V1", ValueType::kInt},
                                            {"S1", ValueType::kString},
                                            {"K2", ValueType::kInt},
                                            {"V2", ValueType::kInt},
                                            {"S2", ValueType::kString}});
  Schema agg_schema(std::vector<Attribute>{{"K", ValueType::kInt},
                                           {"n", ValueType::kInt},
                                           {"sv", ValueType::kInt}});
  Schema count_schema(std::vector<Attribute>{{"n", ValueType::kInt}});
  SortSpec sort_spec{{"V", true}, {"K", true}};
  std::vector<AggSpec> aggs{{AggFunc::kCount, "", "n"},
                            {AggFunc::kSum, "V", "sv"}};
  auto run_sql = [this](const std::string& sql, const Schema& out) {
    auto r = ExecuteSql(sql, {}, out);
    (void)r;
  };
  std::vector<ClassProbe> probes;
  probes.push_back(
      {{OpKind::kScan, OpKind::kSelect, OpKind::kProject, OpKind::kUnionAll},
       [&] { EvalSelect(probe, sel_pred); },
       [&] { run_sql("SELECT c0, c1, c2 FROM cal_probe WHERE c1 < 500", ps); }});
  probes.push_back(
      {{OpKind::kUnion, OpKind::kDifference, OpKind::kRdup},
       [&] { EvalRdup(probe, ps); },
       [&] {
         run_sql("SELECT c0, c1, c2 FROM cal_probe GROUP BY c0, c1, c2", ps);
       }});
  probes.push_back(
      {{OpKind::kProduct},
       [&] { EvalProduct(small, small, pair_schema); },
       [&] {
         run_sql("SELECT a.c0, a.c1, a.c2, b.c0, b.c1, b.c2 FROM cal_small "
                 "AS a, cal_small AS b",
                 pair_schema);
       }});
  probes.push_back(
      {{OpKind::kSort},
       [&] { EvalSort(probe, sort_spec); },
       [&] {
         run_sql("SELECT c0, c1, c2 FROM cal_probe ORDER BY c1, c0", ps);
       }});
  probes.push_back(
      {{OpKind::kAggregate},
       [&] {
         auto r = EvalAggregate(probe, {"K"}, aggs, agg_schema);
         (void)r;
       },
       [&] {
         run_sql("SELECT c0, COUNT(*), CAST(TOTAL(c1) AS INTEGER) FROM "
                 "cal_probe GROUP BY c0",
                 agg_schema);
       }});

  for (const ClassProbe& cp : probes) {
    double t_stratum = TimeUs(cp.stratum);
    double t_backend = TimeUs(cp.backend);
    // The cost model charges stratum work `units * stratum_cpu_factor` and
    // DBMS work `units * factor`; equal wall time therefore means
    // factor = stratum_cpu_factor * (t_backend / t_stratum).
    double f =
        QuantizeFactor(config.stratum_cpu_factor * t_backend / t_stratum);
    for (OpKind k : cp.kinds) {
      p.dbms_op_factor[static_cast<size_t>(k)] = f;
    }
  }
  (void)ExecuteSql("DROP TABLE IF EXISTS cal_probe", {}, count_schema);
  (void)ExecuteSql("DROP TABLE IF EXISTS cal_small", {}, count_schema);

  uint64_t fp = 0x5ca1e0b5;
  for (size_t k = 0; k < kOpKindCount; ++k) {
    fp = HashCombine(fp, static_cast<uint64_t>(
                             std::lround(std::log2(p.dbms_op_factor[k]) * 4)));
  }
  fp = HashCombine(fp, static_cast<uint64_t>(p.transfer_cost_per_tuple * 16));
  p.fingerprint = fp;
  p.calibrated = true;
  return p;
}

}  // namespace tqp

#else  // !TQP_HAVE_SQLITE3

namespace tqp {

struct SqliteBackend::Impl {};

bool SqliteBackend::Available() { return false; }

SqliteBackend::SqliteBackend() = default;
SqliteBackend::~SqliteBackend() = default;

Result<std::unique_ptr<SqliteBackend>> SqliteBackend::Open(
    const std::string& db_path) {
  (void)db_path;
  return Status::Error("built without sqlite3 (install libsqlite3-dev)");
}

Status SqliteBackend::SyncCatalog(const Catalog&) {
  return Status::Error("sqlite3 unavailable");
}
bool SqliteBackend::CanPush(const PlanPtr&, const AnnotatedPlan&) const {
  return false;
}
Result<Relation> SqliteBackend::ExecuteSubplan(const PlanPtr&,
                                               const AnnotatedPlan&) {
  return Status::Error("sqlite3 unavailable");
}
BackendCostProfile SqliteBackend::Calibrate(const EngineConfig&) {
  return BackendCostProfile{};
}
Status SqliteBackend::CreateTable(const std::string&, const Schema&) {
  return Status::Error("sqlite3 unavailable");
}
Status SqliteBackend::Load(const std::string&, const Relation&) {
  return Status::Error("sqlite3 unavailable");
}
Result<Relation> SqliteBackend::ExecuteSql(const std::string&,
                                           const std::vector<Value>&,
                                           const Schema&) {
  return Status::Error("sqlite3 unavailable");
}
int64_t SqliteBackend::mirror_loads() const { return 0; }

}  // namespace tqp

#endif  // TQP_HAVE_SQLITE3
