#include "api/engine.h"

#include <cstdio>
#include <utility>

#include "tql/lexer.h"

namespace tqp {

namespace {

/// Plan-cache key for a TQL query: the lexed token stream, so whitespace,
/// "--" comments, and keyword-case variants of one query share a cache
/// entry. Unlexable text is keyed by the raw string under its own prefix —
/// such a query cannot compile, so the key only routes it to the real
/// CompileQuery error, and the prefix keeps it from ever colliding with a
/// lexable query's token key (a raw string can contain anything, including
/// a verbatim copy of some other query's token rendering). All prefixes are
/// likewise disjoint from the "#plan:" keys of hand-built plans.
std::string TextPlanCacheKey(const std::string& text) {
  Result<std::vector<Token>> tokens = Lex(text);
  if (!tokens.ok()) return "#rawtext:" + text;
  return "#tql:" + TokenStreamKey(tokens.value());
}

}  // namespace

EngineOptions::EngineOptions() : rules(DefaultRuleSet()) {
  // The facade's plan identity is fingerprint/pointer-based end to end;
  // canonical strings are only for callers that assert on them.
  enumeration.fill_canonical = false;
}

/// The immutable outcome of one compile+optimize run, shared between the
/// plan cache and every PreparedQuery handed out for it.
struct PreparedQuery::State {
  /// Plan-cache key this state is stored under.
  std::string key;
  /// Original query text; empty for plan-keyed preparations.
  std::string text;
  QueryContract contract;
  PlanPtr initial_plan;
  PlanPtr best_plan;
  double best_cost = 0.0;
  double initial_cost = 0.0;
  size_t plans_considered = 0;
  bool truncated = false;
  std::vector<std::string> derivation;
  /// Catalog version the optimization ran under; a mismatch with the live
  /// catalog marks this state stale.
  uint64_t catalog_version = 0;
};

const PlanPtr& PreparedQuery::initial_plan() const {
  return state_->initial_plan;
}
const PlanPtr& PreparedQuery::best_plan() const { return state_->best_plan; }
uint64_t PreparedQuery::fingerprint() const {
  return state_->best_plan->fingerprint();
}
double PreparedQuery::best_cost() const { return state_->best_cost; }
double PreparedQuery::initial_cost() const { return state_->initial_cost; }
size_t PreparedQuery::plans_considered() const {
  return state_->plans_considered;
}
const std::vector<std::string>& PreparedQuery::derivation() const {
  return state_->derivation;
}
const QueryContract& PreparedQuery::contract() const {
  return state_->contract;
}

Result<QueryResult> PreparedQuery::Execute() {
  engine_->SyncWithCatalog();
  if (state_->catalog_version != engine_->catalog_.version()) {
    // The catalog moved on since this query was prepared: re-prepare against
    // the live catalog rather than run a stale plan.
    Result<PreparedQuery> fresh =
        state_->text.empty()
            ? engine_->Prepare(state_->initial_plan, state_->contract)
            : engine_->Prepare(state_->text);
    if (!fresh.ok()) return fresh.status();
    state_ = fresh.value().state_;
    from_cache_ = fresh.value().from_cache_;
  }

  const bool reuse = engine_->options_.reuse_search_caches;
  Result<AnnotatedPlan> ann = AnnotatedPlan::Make(
      state_->best_plan, &engine_->catalog_, state_->contract,
      engine_->options_.cardinality,
      reuse ? engine_->derivation_.get() : nullptr);
  if (!ann.ok()) return ann.status();

  QueryResult out;
  Result<Relation> relation =
      Evaluate(ann.value(), engine_->options_.engine, &out.exec);
  if (!relation.ok()) return relation.status();
  out.relation = std::move(relation).value();
  out.best_cost = state_->best_cost;
  out.initial_cost = state_->initial_cost;
  out.plans_considered = state_->plans_considered;
  out.truncated = state_->truncated;
  out.derivation = state_->derivation;
  out.plan_fingerprint = state_->best_plan->fingerprint();
  out.plan_cache_hit = from_cache_;
  return out;
}

Engine::Engine(Catalog catalog, EngineOptions options)
    : catalog_(std::move(catalog)),
      options_(std::move(options)),
      caches_version_(catalog_.version()),
      interner_(std::make_unique<PlanInterner>()),
      derivation_(std::make_unique<DerivationCache>()) {}

Engine::~Engine() = default;

void Engine::ClearCaches() {
  interner_ = std::make_unique<PlanInterner>();
  derivation_ = std::make_unique<DerivationCache>();
  plan_cache_.clear();
  caches_version_ = catalog_.version();
}

void Engine::SyncWithCatalog() {
  if (caches_version_ == catalog_.version()) return;
  // Everything cached was derived under an older catalog: relation contents
  // drive cardinalities and validation, so all of it is suspect. Flush
  // rather than serve anything stale.
  ++stats_.invalidations;
  ClearCaches();
}

Result<std::shared_ptr<const PreparedQuery::State>> Engine::PrepareImpl(
    const std::string& key, const std::string& text, const PlanPtr& initial,
    const QueryContract& contract) {
  ++stats_.prepares;
  const bool reuse = options_.reuse_search_caches;
  PlanPtr root = reuse ? interner_->Intern(initial) : initial;

  OptimizerOptions opt;
  opt.enumeration = options_.enumeration;
  opt.engine = options_.engine;
  opt.cardinality = options_.cardinality;
  TQP_ASSIGN_OR_RETURN(
      optimized,
      Optimize(root, catalog_, contract, options_.rules, opt,
               reuse ? interner_.get() : nullptr,
               reuse ? derivation_.get() : nullptr));

  auto state = std::make_shared<PreparedQuery::State>();
  state->key = key;
  state->text = text;
  state->contract = contract;
  state->initial_plan = root;
  state->best_plan = optimized.best_plan;
  state->best_cost = optimized.best_cost;
  state->initial_cost = optimized.initial_cost;
  state->plans_considered = optimized.plans_considered;
  state->truncated = optimized.truncated;
  state->derivation = std::move(optimized.derivation);
  state->catalog_version = catalog_.version();

  std::shared_ptr<const PreparedQuery::State> shared = state;
  if (options_.cache_plans) plan_cache_[key] = shared;
  return shared;
}

Result<PreparedQuery> Engine::Prepare(const std::string& text) {
  SyncWithCatalog();
  // Token-stream keying: "SELECT  x" with extra spaces or a trailing
  // comment hits the entry its normalized twin created. The original text
  // is still what a stale PreparedQuery re-prepares from; re-lexing it
  // reproduces the same key. With the plan cache off the key is never
  // looked up or stored, so skip computing it.
  std::string key = options_.cache_plans ? TextPlanCacheKey(text) : text;
  if (options_.cache_plans) {
    auto it = plan_cache_.find(key);
    if (it != plan_cache_.end()) {
      ++stats_.plan_cache_hits;
      return PreparedQuery(this, it->second, /*from_cache=*/true);
    }
  }
  ++stats_.plan_cache_misses;
  TQP_ASSIGN_OR_RETURN(compiled,
                       CompileQuery(text, catalog_, options_.translator));
  TQP_ASSIGN_OR_RETURN(
      state, PrepareImpl(key, text, compiled.plan, compiled.contract));
  return PreparedQuery(this, state, /*from_cache=*/false);
}

Result<PreparedQuery> Engine::Prepare(const PlanPtr& initial,
                                      const QueryContract& contract) {
  SyncWithCatalog();
  // Key hand-built plans by structural fingerprint + contract. Fingerprints
  // are 64-bit and never trusted blindly anywhere in this codebase: a cache
  // hit is confirmed structurally before it is served.
  char fp[32];
  std::snprintf(fp, sizeof(fp), "#plan:%016llx",
                static_cast<unsigned long long>(initial->fingerprint()));
  std::string key = std::string(fp) + "/" +
                    ResultTypeName(contract.result_type) + "/" +
                    SortSpecToString(contract.order_by);
  if (options_.cache_plans) {
    auto it = plan_cache_.find(key);
    if (it != plan_cache_.end() &&
        PlanNode::Equal(it->second->initial_plan, initial)) {
      ++stats_.plan_cache_hits;
      return PreparedQuery(this, it->second, /*from_cache=*/true);
    }
  }
  ++stats_.plan_cache_misses;
  TQP_ASSIGN_OR_RETURN(state,
                       PrepareImpl(key, /*text=*/"", initial, contract));
  return PreparedQuery(this, state, /*from_cache=*/false);
}

Result<QueryResult> Engine::Query(const std::string& text) {
  TQP_ASSIGN_OR_RETURN(prepared, Prepare(text));
  return prepared.Execute();
}

Result<TranslatedQuery> Engine::Compile(const std::string& text) const {
  return CompileQuery(text, catalog_, options_.translator);
}

Result<EnumerationResult> Engine::Enumerate(const std::string& text,
                                            EnumerationOptions options) {
  SyncWithCatalog();
  TQP_ASSIGN_OR_RETURN(compiled,
                       CompileQuery(text, catalog_, options_.translator));
  // A session DerivationCache is only sound for one cost/cardinality
  // parameterization; force the Engine's unified models.
  options.cardinality = options_.cardinality;
  options.cost_engine = options_.engine;
  const bool reuse = options_.reuse_search_caches;
  PlanPtr root = reuse ? interner_->Intern(compiled.plan) : compiled.plan;
  return EnumeratePlans(root, catalog_, compiled.contract, options_.rules,
                        options, reuse ? interner_.get() : nullptr,
                        reuse ? derivation_.get() : nullptr);
}

EngineStats Engine::stats() const {
  EngineStats out = stats_;
  out.plan_cache_entries = plan_cache_.size();
  out.interner_nodes = interner_->unique_nodes();
  out.interner_hits = interner_->hits();
  out.derivation_nodes = derivation_->size();
  return out;
}

}  // namespace tqp
