#include "api/engine.h"

#include <cstdio>
#include <utility>

#include <algorithm>
#include <chrono>
#include <optional>
#include <set>

#include "backend/simulated_backend.h"
#include "core/hash.h"
#include "core/json.h"
#include "core/metrics.h"
#include "core/profile.h"
#include "core/trace.h"
#include "exec/result_cache.h"
#include "tql/lexer.h"

namespace tqp {

namespace {

/// Plan-cache key for a TQL query: the lexed token stream, so whitespace,
/// "--" comments, and keyword-case variants of one query share a cache
/// entry. Unlexable text is keyed by the raw string under its own prefix —
/// such a query cannot compile, so the key only routes it to the real
/// CompileQuery error, and the prefix keeps it from ever colliding with a
/// lexable query's token key (a raw string can contain anything, including
/// a verbatim copy of some other query's token rendering). All prefixes are
/// likewise disjoint from the "#plan:" keys of hand-built plans.
std::string TextPlanCacheKey(const std::string& text) {
  Result<std::vector<Token>> tokens = Lex(text);
  if (!tokens.ok()) return "#rawtext:" + text;
  return "#tql:" + TokenStreamKey(tokens.value());
}

/// How many times Execute() retries when the catalog keeps mutating out
/// from under its re-prepared state before giving up.
constexpr int kMaxExecuteReprepares = 8;

/// Result-cache byte budget when EngineOptions::result_cache_bytes is 0.
constexpr uint64_t kDefaultResultCacheBytes = 64ull << 20;

/// Slow-query log bound: the oldest entries fall off beyond it.
constexpr size_t kSlowLogCapacity = 64;

void CollectScanRelations(const PlanPtr& plan, std::set<std::string>* out) {
  if (plan->kind() == OpKind::kScan) out->insert(plan->rel_name());
  for (const PlanPtr& c : plan->children()) CollectScanRelations(c, out);
}

/// The relation-dependency set of a prepared state — every relation either
/// of its plans reads — stamped with the live per-relation catalog versions.
/// Sorted by name (std::set iteration), so comparisons are deterministic.
std::vector<std::pair<std::string, uint64_t>> StampDepVersions(
    const PlanPtr& initial, const PlanPtr& best, const Catalog& catalog) {
  std::set<std::string> names;
  CollectScanRelations(initial, &names);
  if (best != nullptr) CollectScanRelations(best, &names);
  std::vector<std::pair<std::string, uint64_t>> out;
  out.reserve(names.size());
  for (const std::string& name : names) {
    out.emplace_back(name, catalog.relation_version(name));
  }
  return out;
}

}  // namespace

EngineOptions::EngineOptions() : rules(DefaultRuleSet()) {
  // The facade's plan identity is fingerprint/pointer-based end to end;
  // canonical strings are only for callers that assert on them.
  enumeration.fill_canonical = false;
}

/// The immutable outcome of one compile+optimize run, shared between the
/// plan cache and every PreparedQuery handed out for it.
struct PreparedQuery::State {
  /// Plan-cache key this state is stored under.
  std::string key;
  /// Original query text; empty for plan-keyed preparations.
  std::string text;
  QueryContract contract;
  PlanPtr initial_plan;
  PlanPtr best_plan;
  double best_cost = 0.0;
  double initial_cost = 0.0;
  size_t plans_considered = 0;
  bool truncated = false;
  std::vector<std::string> derivation;
  /// Catalog version the optimization ran under.
  uint64_t catalog_version = 0;
  /// Every relation the initial or best plan reads, with the per-relation
  /// catalog version it carried at preparation. Staleness is judged against
  /// this set, not the global version: a mutation of a relation outside it
  /// neither evicts the cache entry nor forces Execute() to re-prepare.
  std::vector<std::pair<std::string, uint64_t>> dep_versions;
  /// Engine cache epoch the optimization ran under (bumped on every cache
  /// flush). Catches what the version alone cannot: a catalog *replaced*
  /// through mutable_catalog() can coincidentally carry the same version
  /// count as the old one, and a stale state must still never execute
  /// against it.
  uint64_t engine_epoch = 0;
};

const PlanPtr& PreparedQuery::initial_plan() const {
  return state_->initial_plan;
}
const PlanPtr& PreparedQuery::best_plan() const { return state_->best_plan; }
uint64_t PreparedQuery::fingerprint() const {
  return state_->best_plan->fingerprint();
}
double PreparedQuery::best_cost() const { return state_->best_cost; }
double PreparedQuery::initial_cost() const { return state_->initial_cost; }
size_t PreparedQuery::plans_considered() const {
  return state_->plans_considered;
}
const std::vector<std::string>& PreparedQuery::derivation() const {
  return state_->derivation;
}
const QueryContract& PreparedQuery::contract() const {
  return state_->contract;
}

Result<QueryResult> PreparedQuery::Execute() {
  return ExecuteRun(QueryRunOptions{}, /*external=*/nullptr);
}

Result<QueryResult> PreparedQuery::Execute(const QueryRunOptions& run) {
  return ExecuteRun(run, /*external=*/nullptr);
}

Result<QueryResult> PreparedQuery::ExecuteRun(const QueryRunOptions& run,
                                              Tracer* external) {
  // An external tracer (Engine::Query's traced path) already carries the
  // prepare spans; otherwise stand up a per-call Tracer on demand. The
  // common untraced path never constructs one (a Tracer stamps its epoch
  // from the clock).
  std::optional<Tracer> local;
  Tracer* tracer = external;
  if (tracer == nullptr &&
      (run.trace || engine_->options_.trace_queries)) {
    tracer = &local.emplace();
  }
  const bool want_profile =
      run.profile || engine_->options_.profile_queries;
  for (int attempt = 0; attempt < kMaxExecuteReprepares; ++attempt) {
    {
      // Evaluation runs under the shared catalog lock, gated by admission
      // control. The ticket is taken before the lock (lock order: semaphore
      // → catalog → state), and released before any re-prepare — Prepare
      // takes its own ticket, so permits never nest.
      Engine::AdmissionTicket ticket(engine_);
      std::shared_lock<std::shared_mutex> cat(engine_->catalog_mu_);
      engine_->SyncWithCatalog();
      if (engine_->StateIsCurrent(*state_)) {
        Result<QueryResult> res =
            engine_->ExecuteState(*state_, from_cache_, tracer, want_profile);
        if (!res.ok()) return res.status();
        QueryResult out = std::move(res).value();
        if (tracer != nullptr) out.trace_json = tracer->ToChromeJson();
        return out;
      }
    }
    // The catalog moved on since this query was prepared: re-prepare against
    // the live catalog rather than run a stale plan, then re-verify.
    Result<PreparedQuery> fresh =
        state_->text.empty()
            ? engine_->Prepare(state_->initial_plan, state_->contract)
            : engine_->Prepare(state_->text);
    if (!fresh.ok()) return fresh.status();
    state_ = fresh.value().state_;
    from_cache_ = fresh.value().from_cache_;
  }
  return Status::Error(
      "catalog kept mutating while Execute was re-preparing; giving up");
}

Engine::AdmissionTicket::AdmissionTicket(Engine* engine)
    : engine_(engine), permit_(engine->query_sem_.get()) {
  uint64_t now = engine_->in_flight_.fetch_add(1, std::memory_order_relaxed) + 1;
  uint64_t peak = engine_->peak_in_flight_.load(std::memory_order_relaxed);
  while (now > peak && !engine_->peak_in_flight_.compare_exchange_weak(
                           peak, now, std::memory_order_relaxed)) {
  }
}

Engine::AdmissionTicket::~AdmissionTicket() {
  engine_->in_flight_.fetch_sub(1, std::memory_order_relaxed);
}

Engine::Engine(Catalog catalog, EngineOptions options)
    : catalog_(std::move(catalog)),
      options_(std::move(options)),
      caches_version_(catalog_.version()),
      interner_(std::make_unique<PlanInterner>()),
      derivation_(std::make_unique<DerivationCache>()) {
  // The backend below the stratum. A construction failure (e.g. kSqlite in
  // a build without sqlite3) degrades to the simulated backend: every query
  // still runs, just without pushdown.
  auto made = MakeBackend(options_.backend, options_.backend_db_path);
  if (made.ok()) {
    backend_ = std::move(made.value());
  } else {
    backend_ = std::make_unique<SimulatedBackend>();
  }
  if (options_.calibrate_backend) {
    calibration_ = backend_->Calibrate(options_.engine);
  }
  // The executors and the cost model reach the backend through the unified
  // EngineConfig; both pointers live exactly as long as this Engine.
  options_.engine.backend = backend_.get();
  options_.engine.calibration =
      calibration_.calibrated ? &calibration_ : nullptr;
  stats_.backend_name = backend_->name();
  stats_.calibration_fingerprint =
      calibration_.calibrated ? calibration_.fingerprint : 0;
  // The subplan result cache. Never inherited from a passed-in options
  // struct: like the backend pointer, it must belong to *this* engine.
  options_.engine.result_cache = nullptr;
  options_.engine.result_cache_env = 0;
  if (options_.incremental_execution) {
    result_cache_ = std::make_unique<SubplanResultCache>(
        options_.result_cache_bytes == 0 ? kDefaultResultCacheBytes
                                         : options_.result_cache_bytes);
    options_.engine.result_cache = result_cache_.get();
    // Everything outside the plan that shapes executor output bytes:
    // scramble mode and seed, backend identity, calibration. Results cached
    // under one environment can never match a probe from another.
    uint64_t env = HashMix64(options_.engine.dbms_scrambles_order ? 1 : 2);
    env = HashCombine(env, options_.engine.scramble_seed);
    env = HashCombine(env, HashString(backend_->name()));
    env = HashCombine(env, calibration_.calibrated ? calibration_.fingerprint
                                                   : 0);
    options_.engine.result_cache_env = env;
  }
  // Session caches are shared by every concurrent session of this Engine.
  interner_->EnableConcurrentAccess();
  derivation_->EnableConcurrentAccess();
  if (options_.max_concurrent_queries > 0) {
    query_sem_ = std::make_unique<Semaphore>(options_.max_concurrent_queries);
  }
  // Per-query metric pointers, resolved once: the hot path only does
  // relaxed atomic adds against them.
  if (options_.publish_metrics) {
    MetricsRegistry& reg = MetricsRegistry::Global();
    metric_queries_ =
        reg.GetCounter("tqp_queries_total", "Queries executed by the engine");
    metric_rows_ =
        reg.GetCounter("tqp_query_rows_total", "Result rows produced");
    metric_slow_ = reg.GetCounter(
        "tqp_slow_queries_total",
        "Queries at or above the slow-query threshold");
    metric_latency_ = reg.GetHistogram(
        "tqp_query_latency_us", "Executor wall time per query (microseconds)");
  }
}

Engine::~Engine() = default;

void Engine::FlushCachesLocked() {
  interner_ = std::make_unique<PlanInterner>();
  derivation_ = std::make_unique<DerivationCache>();
  interner_->EnableConcurrentAccess();
  derivation_->EnableConcurrentAccess();
  lru_.clear();
  plan_cache_.clear();
  // A wholesale flush means the catalog may have been *replaced*: a fresh
  // catalog can coincidentally reproduce old per-relation version stamps
  // over different data, so self-versioned result-cache keys are no longer
  // trustworthy either.
  if (result_cache_ != nullptr) result_cache_->Clear();
  caches_version_ = catalog_.version();
  // Every flush starts a new epoch: prepared states from before the flush
  // must re-prepare even if the catalog version count happens to match
  // (mutable_catalog() replacement).
  ++catalog_epoch_;
}

uint64_t Engine::CurrentEpoch() const {
  std::lock_guard<std::mutex> lock(state_mu_);
  return catalog_epoch_;
}

void Engine::ClearCaches() {
  // Exclusive catalog lock: wait for in-flight queries (which hold it
  // shared) to drain, so the swap can never pull caches out from under a
  // running enumeration.
  std::unique_lock<std::shared_mutex> cat(catalog_mu_);
  std::lock_guard<std::mutex> state(state_mu_);
  FlushCachesLocked();
}

void Engine::SyncWithCatalog() {
  std::lock_guard<std::mutex> state(state_mu_);
  // A handed-out mutable_catalog() reference may have replaced the catalog
  // without bumping the version (a fresh catalog can coincidentally carry
  // the same count). Conservatively treat the handout as a mutation: flush
  // once, on the next query after it.
  if (catalog_handout_.exchange(false, std::memory_order_acq_rel)) {
    ++stats_.invalidations;
    FlushCachesLocked();
    return;
  }
  if (caches_version_ == catalog_.version()) return;
  // The catalog moved through ordinary, per-relation-tracked mutation.
  // Invalidate selectively rather than wholesale — exactly one thread
  // reconciles per version change (the check and the update are atomic
  // under state_mu_), and no in-flight query can still hold the old cache
  // pointers: the mutation that bumped the version held the catalog lock
  // exclusively, so every query that captured them has already drained.
  //
  //  * plan cache — evict only entries whose relation-dependency set moved;
  //    a plan reading only untouched relations stays warm;
  //  * interner — kept: hash-consing is catalog-independent;
  //  * result cache — kept: entries carry exact per-relation version
  //    vectors, so stale ones can never match a probe (they age out LRU);
  //  * derivation cache — rebuilt: its cardinalities/guarantees came from
  //    old relation contents, and its pointer-stability contract (entries
  //    are never erased) rules out selective eviction.
  ++stats_.invalidations;
  derivation_ = std::make_unique<DerivationCache>();
  derivation_->EnableConcurrentAccess();
  for (auto it = lru_.begin(); it != lru_.end();) {
    if (DepsCurrentLocked(*it->state)) {
      ++it;
      continue;
    }
    plan_cache_.erase(it->key);
    it = lru_.erase(it);
    ++stats_.plan_cache_stale_evictions;
  }
  caches_version_ = catalog_.version();
}

bool Engine::DepsCurrentLocked(const PreparedQuery::State& state) const {
  for (const auto& [name, version] : state.dep_versions) {
    if (catalog_.relation_version(name) != version) return false;
  }
  return true;
}

bool Engine::StateIsCurrent(const PreparedQuery::State& state) const {
  std::lock_guard<std::mutex> lock(state_mu_);
  return state.engine_epoch == catalog_epoch_ && DepsCurrentLocked(state);
}

Status Engine::MutateCatalog(const std::function<Status(Catalog&)>& mutation) {
  std::unique_lock<std::shared_mutex> cat(catalog_mu_);
  return mutation(catalog_);
}

std::shared_ptr<const PreparedQuery::State> Engine::LookupPlanCache(
    const std::string& key, const PlanPtr* confirm) {
  std::lock_guard<std::mutex> state(state_mu_);
  auto it = plan_cache_.find(key);
  if (it == plan_cache_.end()) return nullptr;
  if (confirm != nullptr &&
      !PlanNode::Equal(it->second->state->initial_plan, *confirm)) {
    return nullptr;
  }
  ++stats_.plan_cache_hits;
  lru_.splice(lru_.begin(), lru_, it->second);  // bump to most-recent
  return it->second->state;
}

void Engine::StorePlanCache(
    const std::string& key,
    std::shared_ptr<const PreparedQuery::State> state) {
  std::lock_guard<std::mutex> lock(state_mu_);
  auto it = plan_cache_.find(key);
  if (it != plan_cache_.end()) {
    // A concurrent prepare of the same query beat us; results are
    // identical, so just refresh the entry.
    it->second->state = std::move(state);
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.push_front(LruEntry{key, std::move(state)});
  plan_cache_[key] = lru_.begin();
  if (options_.plan_cache_capacity > 0) {
    while (lru_.size() > options_.plan_cache_capacity) {
      plan_cache_.erase(lru_.back().key);
      lru_.pop_back();
      ++stats_.plan_cache_evictions;
    }
  }
}

Result<std::shared_ptr<const PreparedQuery::State>> Engine::PrepareImpl(
    const std::string& key, const std::string& text, const PlanPtr& initial,
    const QueryContract& contract, Tracer* tracer) {
  const bool reuse = options_.reuse_search_caches;
  PlanInterner* interner;
  DerivationCache* derivation;
  uint64_t epoch;
  {
    std::lock_guard<std::mutex> state(state_mu_);
    ++stats_.prepares;
    ++stats_.plan_cache_misses;
    // Captured under state_mu_ after SyncWithCatalog: no flush can replace
    // them while this query holds the catalog lock shared.
    interner = interner_.get();
    derivation = derivation_.get();
    epoch = catalog_epoch_;
  }
  PlanPtr root = reuse ? interner->Intern(initial) : initial;

  OptimizerOptions opt;
  opt.enumeration = options_.enumeration;
  opt.enumeration.tracer = tracer;  // enumerate/expand/cost spans
  opt.engine = options_.engine;
  opt.cardinality = options_.cardinality;
  TQP_ASSIGN_OR_RETURN(
      optimized,
      Optimize(root, catalog_, contract, options_.rules, opt,
               reuse ? interner : nullptr, reuse ? derivation : nullptr));

  auto state = std::make_shared<PreparedQuery::State>();
  state->key = key;
  state->text = text;
  state->contract = contract;
  state->initial_plan = root;
  state->best_plan = optimized.best_plan;
  state->best_cost = optimized.best_cost;
  state->initial_cost = optimized.initial_cost;
  state->plans_considered = optimized.plans_considered;
  state->truncated = optimized.truncated;
  state->derivation = std::move(optimized.derivation);
  state->catalog_version = catalog_.version();
  state->engine_epoch = epoch;
  state->dep_versions = StampDepVersions(root, state->best_plan, catalog_);

  std::shared_ptr<const PreparedQuery::State> shared = state;
  if (options_.cache_plans) StorePlanCache(key, shared);
  return shared;
}

Result<PreparedQuery> Engine::Prepare(const std::string& text) {
  return PrepareTraced(text, /*tracer=*/nullptr);
}

Result<PreparedQuery> Engine::PrepareTraced(const std::string& text,
                                            Tracer* tracer) {
  // Token-stream keying: "SELECT  x" with extra spaces or a trailing
  // comment hits the entry its normalized twin created. The original text
  // is still what a stale PreparedQuery re-prepares from; re-lexing it
  // reproduces the same key. With the plan cache off the key is never
  // looked up or stored, so skip computing it.
  const bool caching = options_.cache_plans;
  std::string key = caching ? TextPlanCacheKey(text) : text;

  // Fast path: a cached plan is served without an admission permit, so a
  // warm engine keeps answering instantly even when the pipeline gate is
  // saturated.
  if (caching) {
    std::shared_lock<std::shared_mutex> cat(catalog_mu_);
    SyncWithCatalog();
    TraceSpan probe(tracer, "api", "plan_cache_probe");
    auto hit = LookupPlanCache(key, /*confirm=*/nullptr);
    if (probe.active()) probe.Arg("hit", uint64_t{hit != nullptr});
    if (hit) {
      return PreparedQuery(this, std::move(hit), /*from_cache=*/true);
    }
  }

  // Miss: the full pipeline, under admission control. Re-probe first — a
  // concurrent session may have prepared the same query while we waited for
  // the permit.
  AdmissionTicket ticket(this);
  std::shared_lock<std::shared_mutex> cat(catalog_mu_);
  SyncWithCatalog();
  if (caching) {
    TraceSpan probe(tracer, "api", "plan_cache_probe");
    auto hit = LookupPlanCache(key, /*confirm=*/nullptr);
    if (probe.active()) probe.Arg("hit", uint64_t{hit != nullptr});
    if (hit) {
      return PreparedQuery(this, std::move(hit), /*from_cache=*/true);
    }
  }
  TranslatorOptions topts = options_.translator;
  topts.tracer = tracer;
  TQP_ASSIGN_OR_RETURN(compiled, CompileQuery(text, catalog_, topts));
  TQP_ASSIGN_OR_RETURN(
      state,
      PrepareImpl(key, text, compiled.plan, compiled.contract, tracer));
  return PreparedQuery(this, state, /*from_cache=*/false);
}

Result<PreparedQuery> Engine::Prepare(const PlanPtr& initial,
                                      const QueryContract& contract) {
  // Key hand-built plans by structural fingerprint + contract. Fingerprints
  // are 64-bit and never trusted blindly anywhere in this codebase: a cache
  // hit is confirmed structurally before it is served.
  char fp[32];
  std::snprintf(fp, sizeof(fp), "#plan:%016llx",
                static_cast<unsigned long long>(initial->fingerprint()));
  std::string key = std::string(fp) + "/" +
                    ResultTypeName(contract.result_type) + "/" +
                    SortSpecToString(contract.order_by);
  const bool caching = options_.cache_plans;

  if (caching) {
    std::shared_lock<std::shared_mutex> cat(catalog_mu_);
    SyncWithCatalog();
    if (auto hit = LookupPlanCache(key, &initial)) {
      return PreparedQuery(this, std::move(hit), /*from_cache=*/true);
    }
  }

  AdmissionTicket ticket(this);
  std::shared_lock<std::shared_mutex> cat(catalog_mu_);
  SyncWithCatalog();
  if (caching) {
    if (auto hit = LookupPlanCache(key, &initial)) {
      return PreparedQuery(this, std::move(hit), /*from_cache=*/true);
    }
  }
  TQP_ASSIGN_OR_RETURN(state, PrepareImpl(key, /*text=*/"", initial, contract,
                                          /*tracer=*/nullptr));
  return PreparedQuery(this, state, /*from_cache=*/false);
}

Result<QueryResult> Engine::Query(const std::string& text) {
  TQP_ASSIGN_OR_RETURN(prepared, Prepare(text));
  return prepared.Execute();
}

Result<QueryResult> Engine::Query(const std::string& text,
                                  const QueryRunOptions& run) {
  const bool want_trace = run.trace || options_.trace_queries;
  if (!want_trace) {
    TQP_ASSIGN_OR_RETURN(prepared, Prepare(text));
    return prepared.ExecuteRun(run, /*external=*/nullptr);
  }
  // One Tracer across prepare and execute: the exported trace shows the
  // whole lifecycle on one timeline.
  Tracer tracer;
  TQP_ASSIGN_OR_RETURN(prepared, PrepareTraced(text, &tracer));
  return prepared.ExecuteRun(run, &tracer);
}

Result<TranslatedQuery> Engine::Compile(const std::string& text) const {
  std::shared_lock<std::shared_mutex> cat(catalog_mu_);
  return CompileQuery(text, catalog_, options_.translator);
}

Result<QueryResult> Engine::ExecuteState(const PreparedQuery::State& state,
                                         bool from_cache, Tracer* tracer,
                                         bool want_profile) {
  DerivationCache* derivation;
  {
    std::lock_guard<std::mutex> lock(state_mu_);
    derivation = derivation_.get();
  }
  const bool reuse = options_.reuse_search_caches;
  Result<AnnotatedPlan> ann = AnnotatedPlan::Make(
      state.best_plan, &catalog_, state.contract, options_.cardinality,
      reuse ? derivation : nullptr);
  if (!ann.ok()) return ann.status();

  // An armed slow-query log needs the hottest-operator ranking, so it
  // forces profile collection even when the caller did not ask for the
  // tree back.
  const bool slow_armed = options_.slow_query_threshold_ms > 0.0;
  std::shared_ptr<ProfileNode> profile_root;
  if (want_profile || slow_armed) {
    profile_root = std::make_shared<ProfileNode>();
  }
  // The per-query tracer rides on a config copy — options_ is shared by
  // every concurrent session and must stay untouched.
  const EngineConfig* cfg = &options_.engine;
  EngineConfig traced_cfg;
  if (tracer != nullptr) {
    traced_cfg = options_.engine;
    traced_cfg.tracer = tracer;
    cfg = &traced_cfg;
  }

  QueryResult out;
  const auto exec_start = std::chrono::steady_clock::now();
  Result<Relation> relation = [&]() -> Result<Relation> {
    if (options_.executor == ExecutorKind::kVectorized) {
      VexecOptions vopts;
      vopts.batch_size = options_.vexec_batch_size;
      vopts.threads = options_.vexec_threads;
      vopts.memory_budget = options_.vexec_memory_budget;
      return ExecuteVectorized(ann.value(), *cfg, &out.exec, vopts,
                               profile_root.get());
    }
    return Evaluate(ann.value(), *cfg, &out.exec, profile_root.get());
  }();
  const uint64_t wall_ns = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - exec_start)
          .count());
  if (!relation.ok()) return relation.status();

  const bool slow =
      slow_armed &&
      static_cast<double>(wall_ns) >= options_.slow_query_threshold_ms * 1e6;
  if (out.exec.backend_pushdowns > 0 || out.exec.backend_fallbacks > 0 ||
      out.exec.backend_refusals > 0 || slow) {
    std::lock_guard<std::mutex> lock(state_mu_);
    stats_.backend_pushdowns +=
        static_cast<uint64_t>(out.exec.backend_pushdowns);
    stats_.backend_rows += static_cast<uint64_t>(out.exec.backend_rows);
    stats_.backend_fallbacks +=
        static_cast<uint64_t>(out.exec.backend_fallbacks);
    stats_.backend_refusals +=
        static_cast<uint64_t>(out.exec.backend_refusals);
    if (slow) {
      ++stats_.slow_queries;
      SlowQueryRecord rec;
      rec.text = state.text;
      rec.plan_fingerprint = state.best_plan->fingerprint();
      rec.wall_ns = wall_ns;
      rec.hottest = HottestOperators(*profile_root, 3);
      slow_log_.push_back(std::move(rec));
      while (slow_log_.size() > kSlowLogCapacity) slow_log_.pop_front();
    }
  }
  out.relation = std::move(relation).value();
  out.best_cost = state.best_cost;
  out.initial_cost = state.initial_cost;
  out.plans_considered = state.plans_considered;
  out.truncated = state.truncated;
  out.derivation = state.derivation;
  out.plan_fingerprint = state.best_plan->fingerprint();
  out.plan_cache_hit = from_cache;
  out.exec_wall_ns = wall_ns;
  if (want_profile) out.profile = profile_root;
  if (metric_queries_ != nullptr) {
    metric_queries_->Add(1);
    metric_rows_->Add(static_cast<uint64_t>(out.relation.size()));
    metric_latency_->Record(wall_ns / 1000);
    if (slow) metric_slow_->Add(1);
  }
  return out;
}

Result<EnumerationResult> Engine::Enumerate(const std::string& text,
                                            EnumerationOptions options) {
  AdmissionTicket ticket(this);
  std::shared_lock<std::shared_mutex> cat(catalog_mu_);
  SyncWithCatalog();
  TQP_ASSIGN_OR_RETURN(compiled,
                       CompileQuery(text, catalog_, options_.translator));
  // A session DerivationCache is only sound for one cost/cardinality
  // parameterization; force the Engine's unified models.
  options.cardinality = options_.cardinality;
  options.cost_engine = options_.engine;
  const bool reuse = options_.reuse_search_caches;
  PlanInterner* interner;
  DerivationCache* derivation;
  {
    std::lock_guard<std::mutex> lock(state_mu_);
    interner = interner_.get();
    derivation = derivation_.get();
  }
  PlanPtr root = reuse ? interner->Intern(compiled.plan) : compiled.plan;
  return EnumeratePlans(root, catalog_, compiled.contract, options_.rules,
                        options, reuse ? interner : nullptr,
                        reuse ? derivation : nullptr);
}

namespace {

/// Content summary of a catalog: relation names, schemas, cardinalities,
/// property flags, declared orders, and sites. Deliberately skips tuple
/// contents — the summary must stay cheap enough to compute on every
/// snapshot save/load, and the version counter already covers in-place
/// mutation; this catches *rebuilt* catalogs whose shape differs.
uint64_t FingerprintCatalog(const Catalog& catalog) {
  uint64_t h = 0x7177705f63617461ull;  // arbitrary nonzero seed
  for (const std::string& name : catalog.Names()) {
    const CatalogEntry* e = catalog.Find(name);
    h = HashCombine(h, HashString(name));
    for (const Attribute& a : e->data.schema().attrs()) {
      h = HashCombine(h, HashString(a.name));
      h = HashCombine(h, static_cast<uint64_t>(a.type));
    }
    h = HashCombine(h, e->data.size());
    h = HashCombine(h, (static_cast<uint64_t>(e->duplicate_free) << 3) |
                           (static_cast<uint64_t>(e->snapshot_duplicate_free)
                            << 2) |
                           (static_cast<uint64_t>(e->coalesced) << 1) |
                           static_cast<uint64_t>(e->site == Site::kDbms));
    for (const SortKey& k : e->order) {
      h = HashCombine(h, HashString(k.attr));
      h = HashCombine(h, static_cast<uint64_t>(k.ascending));
    }
  }
  // Never return the "unknown" sentinel for a real catalog.
  return h == 0 ? 1 : h;
}

/// True iff every kScan in `plan` names a relation the catalog contains.
bool AllScansExist(const PlanPtr& plan, const Catalog& catalog) {
  if (plan->kind() == OpKind::kScan &&
      catalog.Find(plan->rel_name()) == nullptr) {
    return false;
  }
  for (const PlanPtr& c : plan->children()) {
    if (!AllScansExist(c, catalog)) return false;
  }
  return true;
}

}  // namespace

PlanCacheSnapshot Engine::ExportPlanCache() const {
  // Shared catalog lock: the version stamped into the snapshot is the one
  // every exported entry was prepared under (any concurrent mutation either
  // drains us first or flushes the cache before the next query).
  std::shared_lock<std::shared_mutex> cat(catalog_mu_);
  std::lock_guard<std::mutex> state(state_mu_);
  PlanCacheSnapshot out;
  out.catalog_version = catalog_.version();
  out.catalog_fingerprint = FingerprintCatalog(catalog_);
  out.backend_kind = backend_->name();
  out.calibration_fingerprint =
      calibration_.calibrated ? calibration_.fingerprint : 0;
  // An unprocessed mutable_catalog() handout means every cached entry is
  // suspect (the catalog may have been replaced wholesale) while the
  // version/fingerprint above describe the *new* catalog. Exporting the
  // entries would label them valid for a catalog they were never prepared
  // under — a stale-positive. Export none.
  if (catalog_handout_.load(std::memory_order_acquire)) return out;
  out.entries.reserve(lru_.size());
  // lru_ front = most recent; emit back-to-front so importing in sequence
  // reproduces the recency order.
  for (auto it = lru_.rbegin(); it != lru_.rend(); ++it) {
    const PreparedQuery::State& s = *it->state;
    // Same stale-positive guard for individual entries: SyncWithCatalog
    // evicts dependency-stale entries lazily (on the next query), so an
    // export taken between a mutation and that next query can still see
    // them. The snapshot stamps the live catalog version; only entries
    // actually valid under it may ship.
    if (s.engine_epoch != catalog_epoch_ || !DepsCurrentLocked(s)) continue;
    PlanCacheEntry e;
    e.key = it->key;
    e.text = s.text;
    e.contract = s.contract;
    e.initial_plan = s.initial_plan;
    e.best_plan = s.best_plan;
    e.best_cost = s.best_cost;
    e.initial_cost = s.initial_cost;
    e.plans_considered = s.plans_considered;
    e.truncated = s.truncated;
    e.derivation = s.derivation;
    out.entries.push_back(std::move(e));
  }
  return out;
}

size_t Engine::ImportPlanCache(const PlanCacheSnapshot& snapshot) {
  if (!options_.cache_plans) return 0;
  std::shared_lock<std::shared_mutex> cat(catalog_mu_);
  SyncWithCatalog();
  // Wholesale staleness rule: a snapshot from any other catalog version —
  // or any other catalog *content* — is rejected entirely, exactly as the
  // in-memory caches are flushed entirely.
  if (snapshot.catalog_version != catalog_.version()) return 0;
  if (snapshot.catalog_fingerprint != 0 &&
      snapshot.catalog_fingerprint != FingerprintCatalog(catalog_)) {
    return 0;
  }
  // Cached best plans embed the exporter's cost environment: a snapshot
  // from a different backend, or from a differently calibrated one, would
  // warm this engine with plans its own optimizer might not choose. Reject
  // wholesale, like any other staleness.
  if (!snapshot.backend_kind.empty() &&
      snapshot.backend_kind != backend_->name()) {
    return 0;
  }
  if (snapshot.calibration_fingerprint !=
      (calibration_.calibrated ? calibration_.fingerprint : 0)) {
    return 0;
  }
  const bool reuse = options_.reuse_search_caches;
  PlanInterner* interner;
  uint64_t epoch;
  {
    std::lock_guard<std::mutex> state(state_mu_);
    interner = interner_.get();
    epoch = catalog_epoch_;
  }
  size_t installed = 0;
  for (const PlanCacheEntry& e : snapshot.entries) {
    if (e.key.empty() || e.initial_plan == nullptr || e.best_plan == nullptr) {
      continue;
    }
    // Defense against a same-version but different catalog: an entry whose
    // plans reference relations this catalog lacks is skipped (it could
    // never have been prepared here).
    if (!AllScansExist(e.initial_plan, catalog_) ||
        !AllScansExist(e.best_plan, catalog_)) {
      continue;
    }
    auto state = std::make_shared<PreparedQuery::State>();
    state->key = e.key;
    state->text = e.text;
    state->contract = e.contract;
    state->initial_plan = reuse ? interner->Intern(e.initial_plan)
                                : e.initial_plan;
    state->best_plan = reuse ? interner->Intern(e.best_plan) : e.best_plan;
    state->best_cost = e.best_cost;
    state->initial_cost = e.initial_cost;
    state->plans_considered = e.plans_considered;
    state->truncated = e.truncated;
    state->derivation = e.derivation;
    state->catalog_version = catalog_.version();
    state->engine_epoch = epoch;
    state->dep_versions =
        StampDepVersions(state->initial_plan, state->best_plan, catalog_);
    StorePlanCache(e.key, std::move(state));
    ++installed;
  }
  if (installed > 0) {
    std::lock_guard<std::mutex> state(state_mu_);
    stats_.plan_cache_imports += installed;
  }
  return installed;
}

uint64_t Engine::CatalogFingerprint() const {
  std::shared_lock<std::shared_mutex> cat(catalog_mu_);
  return FingerprintCatalog(catalog_);
}

std::string EngineStats::ToJson() const {
  JsonWriter w;
  w.BeginObject();
  w.Key("prepares").Uint(prepares);
  w.Key("plan_cache_hits").Uint(plan_cache_hits);
  w.Key("plan_cache_misses").Uint(plan_cache_misses);
  w.Key("plan_cache_evictions").Uint(plan_cache_evictions);
  w.Key("plan_cache_stale_evictions").Uint(plan_cache_stale_evictions);
  w.Key("plan_cache_imports").Uint(plan_cache_imports);
  w.Key("invalidations").Uint(invalidations);
  w.Key("peak_concurrent_queries").Uint(peak_concurrent_queries);
  w.Key("plan_cache_entries").Uint(plan_cache_entries);
  w.Key("interner_nodes").Uint(interner_nodes);
  w.Key("interner_hits").Uint(interner_hits);
  w.Key("derivation_nodes").Uint(derivation_nodes);
  w.Key("backend").String(backend_name);
  w.Key("backend_pushdowns").Uint(backend_pushdowns);
  w.Key("backend_rows").Uint(backend_rows);
  w.Key("backend_fallbacks").Uint(backend_fallbacks);
  w.Key("backend_refusals").Uint(backend_refusals);
  w.Key("calibration_fingerprint").Uint(calibration_fingerprint);
  w.Key("slow_queries").Uint(slow_queries);
  w.Key("result_cache_hits").Uint(result_cache_hits);
  w.Key("result_cache_misses").Uint(result_cache_misses);
  w.Key("result_cache_evictions").Uint(result_cache_evictions);
  w.Key("result_cache_entries").Uint(result_cache_entries);
  w.Key("result_cache_bytes").Uint(result_cache_bytes);
  w.EndObject();
  return w.Take();
}

void EngineStats::PublishTo(MetricsRegistry* registry) const {
  // Gauges, not counters: a stats snapshot is already cumulative, and
  // setting is idempotent under repeated publication. One helper keeps the
  // name scheme uniform.
  auto set = [registry](const char* name, uint64_t v) {
    registry->GetGauge(name)->Set(static_cast<double>(v));
  };
  set("tqp_engine_prepares", prepares);
  set("tqp_engine_plan_cache_hits", plan_cache_hits);
  set("tqp_engine_plan_cache_misses", plan_cache_misses);
  set("tqp_engine_plan_cache_evictions", plan_cache_evictions);
  set("tqp_engine_plan_cache_stale_evictions", plan_cache_stale_evictions);
  set("tqp_engine_plan_cache_imports", plan_cache_imports);
  set("tqp_engine_invalidations", invalidations);
  set("tqp_engine_peak_concurrent_queries", peak_concurrent_queries);
  set("tqp_engine_plan_cache_entries", plan_cache_entries);
  set("tqp_engine_interner_nodes", interner_nodes);
  set("tqp_engine_interner_hits", interner_hits);
  set("tqp_engine_derivation_nodes", derivation_nodes);
  set("tqp_engine_backend_pushdowns", backend_pushdowns);
  set("tqp_engine_backend_rows", backend_rows);
  set("tqp_engine_backend_fallbacks", backend_fallbacks);
  set("tqp_engine_backend_refusals", backend_refusals);
  set("tqp_engine_slow_queries", slow_queries);
  set("tqp_engine_result_cache_hits", result_cache_hits);
  set("tqp_engine_result_cache_misses", result_cache_misses);
  set("tqp_engine_result_cache_evictions", result_cache_evictions);
  set("tqp_engine_result_cache_entries", result_cache_entries);
  set("tqp_engine_result_cache_bytes", result_cache_bytes);
}

std::vector<SlowQueryRecord> Engine::slow_queries() const {
  std::lock_guard<std::mutex> lock(state_mu_);
  return std::vector<SlowQueryRecord>(slow_log_.begin(), slow_log_.end());
}

EngineStats Engine::stats() const {
  std::lock_guard<std::mutex> lock(state_mu_);
  EngineStats out = stats_;
  out.peak_concurrent_queries =
      peak_in_flight_.load(std::memory_order_relaxed);
  out.plan_cache_entries = plan_cache_.size();
  out.interner_nodes = interner_->unique_nodes();
  out.interner_hits = interner_->hits();
  out.derivation_nodes = derivation_->size();
  if (result_cache_ != nullptr) {
    ResultCacheStats rc = result_cache_->stats();
    out.result_cache_hits = rc.hits;
    out.result_cache_misses = rc.misses;
    out.result_cache_evictions = rc.evictions;
    out.result_cache_entries = rc.entries;
    out.result_cache_bytes = rc.bytes;
  }
  return out;
}

}  // namespace tqp
