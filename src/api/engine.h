// tqp::Engine — the concurrency-aware session facade over the whole
// pipeline.
//
// The paper's pipeline (TQL text → initial plan → Figure 5 enumeration →
// cost-based choice → layered execution) is implemented by four layers with
// four separate option structs. An Engine binds them behind one stable entry
// point and — the point of a *session* — keeps the state worth keeping
// between queries:
//
//   * one PlanInterner + DerivationCache shared across all queries, so a
//     subtree enumerated for any earlier query is never re-derived;
//   * a bounded (LRU) plan cache keyed by the query's lexed token stream (or
//     initial-plan fingerprint), so a repeated query — including whitespace/
//     comment/keyword-case variants of it — skips parsing, enumeration, and
//     costing entirely.
//
// Both are primed on first use and invalidated when the catalog's version
// changes (see Catalog::version()) — a stale plan is never served. Cache
// warmth is an optimization only: a warm Engine returns byte-identical
// relations, the same chosen-plan fingerprints, and the same costs as a cold
// one, and as the hand-wired CompileQuery + Optimize + Evaluate pipeline
// (enforced by tests/test_api_engine.cc and bench/bench_engine_warm.cc).
//
// Concurrency: one Engine serves any number of threads over its one shared
// catalog. Queries hold the catalog lock shared for their whole duration;
// MutateCatalog takes it exclusively, so every query sees one consistent
// catalog version and stale state is never served mid-mutation. The session
// interner/derivation caches run in concurrent (striped-lock) mode, the
// plan cache and counters sit behind one mutex, and
// EngineOptions::max_concurrent_queries bounds how many expensive pipeline
// runs are in flight at once (a counting semaphore; excess callers queue),
// so heavy traffic degrades gracefully instead of thrashing. Individual
// PreparedQuery handles are not thread-safe objects — give each thread its
// own handle (they share the immutable prepared state).
//
// Usage:
//   Engine engine(std::move(catalog));
//   TQP_ASSIGN_OR_RETURN(result, engine.Query("SELECT ..."));      // one-shot
//   TQP_ASSIGN_OR_RETURN(prepared, engine.Prepare("SELECT ..."));  // repeated
//   for (...) { auto r = prepared.Execute(); ... }
#ifndef TQP_API_ENGINE_H_
#define TQP_API_ENGINE_H_

#include <atomic>
#include <deque>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "algebra/intern.h"
#include "backend/backend.h"
#include "core/sync.h"
#include "exec/evaluator.h"
#include "opt/optimizer.h"
#include "tql/translator.h"
#include "vexec/vexec.h"

namespace tqp {

class LatencyHistogram;
class MetricCounter;
class MetricsRegistry;
class Tracer;

/// Which physical executor runs chosen plans.
enum class ExecutorKind {
  /// The row-at-a-time reference evaluator (exec/evaluator.h). The default:
  /// every byte-identity check predates the vectorized engine and keeps
  /// running against it unchanged.
  kReference,
  /// The columnar batch engine (vexec/vexec.h). List-identical to the
  /// reference by contract (tests/test_vexec.cc) and >= 5x faster on large
  /// inputs (bench_vexec_pipeline).
  kVectorized,
};

/// The unified option set, subsuming the per-layer structs. One EngineConfig
/// and one CardinalityParams drive enumeration pruning, plan choice, and
/// execution alike (`enumeration.cost_engine`/`.cardinality` are overridden
/// by the unified fields, exactly as OptimizerOptions always did).
struct EngineOptions {
  EngineOptions();

  /// TQL → initial plan (layered architecture on/off).
  TranslatorOptions translator;
  /// Figure 5 search knobs, including the frontier strategy (breadth-first
  /// vs cost-directed best-first), the pruning/expansion budgets, and
  /// `num_threads` for the parallel driver. `fill_canonical` defaults OFF
  /// here — the facade never asserts on canonical strings — unlike the bare
  /// EnumeratePlans default, which stays on for the string-asserting tests
  /// and benches.
  EnumerationOptions enumeration;
  /// Cost model + simulated execution environment.
  EngineConfig engine;
  /// Cardinality estimation parameters.
  CardinalityParams cardinality;
  /// Transformation rule catalogue.
  std::vector<Rule> rules;
  /// Serve repeated queries from the plan cache.
  bool cache_plans = true;
  /// Bound on plan-cache entries; the least-recently-used entry is evicted
  /// beyond it (stats().plan_cache_evictions counts them). 0 (default) =
  /// unbounded, the pre-bound behavior.
  size_t plan_cache_capacity = 0;
  /// Admission control: at most this many queries inside the expensive
  /// sections (full prepare pipelines, plan evaluation) at once; excess
  /// callers block on a semaphore until a permit frees. A plan-cache hit
  /// skips the gate at *prepare* time (Prepare of a warm query returns
  /// instantly even when the gate is saturated); Execute's evaluation is
  /// always gated — it is per-query work that must degrade gracefully too.
  /// 0 (default) = unlimited.
  size_t max_concurrent_queries = 0;
  /// Share one PlanInterner/DerivationCache across queries. Off = every
  /// Prepare runs cold (useful for measuring, never for serving).
  bool reuse_search_caches = true;
  /// Physical executor for Execute()/Query(). Both produce list-identical
  /// relations; kVectorized additionally fills the ExecStats vec_* batch
  /// counters surfaced in QueryResult::exec.
  ExecutorKind executor = ExecutorKind::kReference;
  /// Rows per column batch when executor == kVectorized.
  size_t vexec_batch_size = 1024;
  /// Worker threads of the vectorized executor's morsel scheduler
  /// (VexecOptions::threads). 1 (default) = the serial code path; any
  /// thread count produces byte-identical results.
  size_t vexec_threads = 1;
  /// Per-operator materialization budget in bytes for the vectorized
  /// executor (VexecOptions::memory_budget); larger sorts and class tables
  /// spill to temp files. 0 (default) = never spill.
  uint64_t vexec_memory_budget = 0;
  /// Which DBMS implements the layer below the stratum. kSimulated (the
  /// default) keeps the historical in-engine evaluation with the
  /// deterministic scramble; kSqlite runs maximal conventional subplans
  /// under each transferS cut as SQL (backend/sqlite_backend.h). Both
  /// executors fetch cut results through the same Backend interface; a
  /// backend that cannot run a subtree leaves it to in-engine evaluation,
  /// so results are byte-identical across backends. If the requested
  /// backend cannot be constructed (e.g. kSqlite in a build without
  /// sqlite3), the Engine falls back to kSimulated.
  BackendKind backend = BackendKind::kSimulated;
  /// kSqlite only: empty = a private in-memory database; otherwise a
  /// database file whose catalog mirror survives and is reused across
  /// process restarts.
  std::string backend_db_path;
  /// Probe the backend's per-operator cost behavior at construction and
  /// feed the measured profile to the optimizer's cost model
  /// (EngineConfig::calibration), letting it *choose* transfer placements
  /// that exploit a fast backend. The SimulatedBackend's profile reproduces
  /// the constant model exactly, so calibration never changes plans there.
  bool calibrate_backend = false;
  /// Incremental prepared-query re-execution: keep a versioned subplan
  /// result cache (exec/result_cache.h) shared across this Engine's
  /// sessions. Both executors probe it at transfer/root cut points; when
  /// the catalog bumps one relation, only subplans transitively reading it
  /// recompute — everything else splices its cached, byte-identical result.
  /// Off (default) = no cache exists and execution is unchanged.
  bool incremental_execution = false;
  /// Byte bound of the subplan result cache (least-recently-used results
  /// evicted beyond it). 0 = a 64 MiB default. Ignored unless
  /// incremental_execution is on.
  uint64_t result_cache_bytes = 0;
  /// Trace every query end to end — plan-cache probe, parse/translate,
  /// enumeration, costing, per-operator execution — and attach the rendered
  /// Chrome trace JSON to QueryResult::trace_json. Per-call opt-in goes
  /// through QueryRunOptions instead; this knob is for debugging sessions.
  /// Off (default) = the untraced path, one pointer test per would-be span.
  bool trace_queries = false;
  /// Collect the per-operator profile tree (QueryResult::profile) for every
  /// query. Per-call opt-in goes through QueryRunOptions.
  bool profile_queries = false;
  /// Slow-query log: a query whose executor wall time reaches this threshold
  /// is recorded — text, plan fingerprint, wall time, top-3 hottest
  /// operators by self time — in a bounded in-memory log
  /// (Engine::slow_queries()) and counted in EngineStats::slow_queries.
  /// Arming the log forces profiling for every query (that is where
  /// "hottest" comes from). 0 (default) = off.
  double slow_query_threshold_ms = 0.0;
  /// Publish per-query counters (tqp_queries_total, tqp_query_rows_total,
  /// tqp_query_latency_us, tqp_slow_queries_total) into
  /// MetricsRegistry::Global() as queries run. On by default — the update
  /// path is a handful of relaxed atomics per query, never per row.
  bool publish_metrics = true;
};

/// Per-call observability opt-ins for Engine::Query and
/// PreparedQuery::Execute. Both compose with the EngineOptions defaults
/// (either side can turn a collector on).
struct QueryRunOptions {
  /// Record a span tree for this call; the rendered Chrome trace JSON is
  /// returned in QueryResult::trace_json.
  bool trace = false;
  /// Collect the per-operator profile tree in QueryResult::profile.
  bool profile = false;
};

/// Everything one query execution returns: the relation plus execution and
/// optimizer telemetry.
struct QueryResult {
  Relation relation;
  /// Execution statistics of this query's evaluation: simulated work by
  /// site, transfer volume, tuples produced, per-operator counts, and — on
  /// the vectorized executor — the vec_* batch/materialization counters.
  /// Filled per query and returned to the caller, never dropped.
  ExecStats exec;
  /// Optimizer telemetry for this query's plan.
  double best_cost = 0.0;
  double initial_cost = 0.0;
  size_t plans_considered = 0;
  bool truncated = false;
  std::vector<std::string> derivation;
  /// Structural fingerprint of the executed (chosen) plan.
  uint64_t plan_fingerprint = 0;
  /// True iff the plan came from the session plan cache (no enumeration ran).
  bool plan_cache_hit = false;
  /// Executor wall time of this query's evaluation (always measured).
  uint64_t exec_wall_ns = 0;
  /// Per-operator profile tree of the executed plan — the EXPLAIN ANALYZE
  /// data: inclusive/self wall time, rows in/out, vexec batch counts,
  /// result-cache and backend-pushdown flags (render with PrintProfile or
  /// ProfileNode::ToJson). Null unless profiling was requested
  /// (QueryRunOptions::profile or EngineOptions::profile_queries).
  std::shared_ptr<const ProfileNode> profile;
  /// Chrome trace_event JSON of this query's spans; empty unless tracing was
  /// requested (QueryRunOptions::trace or EngineOptions::trace_queries).
  std::string trace_json;
};

/// Session cache counters, for observability and the warm-path benches.
struct EngineStats {
  /// Full compile+optimize pipelines actually run.
  uint64_t prepares = 0;
  uint64_t plan_cache_hits = 0;
  uint64_t plan_cache_misses = 0;
  /// LRU evictions forced by EngineOptions::plan_cache_capacity.
  uint64_t plan_cache_evictions = 0;
  /// Plan-cache entries evicted because a catalog mutation moved one of the
  /// relations their plans read. Invalidation is keyed on each entry's
  /// relation-dependency set: updating relation A never evicts (or
  /// re-prepares) a plan reading only B.
  uint64_t plan_cache_stale_evictions = 0;
  /// Times the session caches were flushed because the catalog changed.
  uint64_t invalidations = 0;
  /// Highest number of queries simultaneously inside the admission-gated
  /// sections since construction; with max_concurrent_queries = N this
  /// never exceeds N.
  uint64_t peak_concurrent_queries = 0;
  size_t plan_cache_entries = 0;
  size_t interner_nodes = 0;
  size_t interner_hits = 0;
  size_t derivation_nodes = 0;
  /// Plan-cache entries installed from a persisted snapshot
  /// (Engine::ImportPlanCache), e.g. by the service layer's warm start.
  uint64_t plan_cache_imports = 0;

  /// Backend identity and lifetime execution counters: the active backend's
  /// name, cut subplans pushed down to it, rows fetched across the
  /// stratum⇄DBMS boundary, runtime pushdown fallbacks (all summed over
  /// every query), and the calibrated cost profile's fingerprint (0 =
  /// uncalibrated constant model).
  std::string backend_name = "simulated";
  uint64_t backend_pushdowns = 0;
  uint64_t backend_rows = 0;
  uint64_t backend_fallbacks = 0;
  /// Pushdown-eligible cuts the serializer refused before execution (the
  /// backend never saw them), as opposed to backend_fallbacks, which counts
  /// cuts the backend accepted and then failed at runtime. Summed over every
  /// query from ExecStats::backend_refusals.
  uint64_t backend_refusals = 0;
  uint64_t calibration_fingerprint = 0;
  /// Queries whose executor wall time reached
  /// EngineOptions::slow_query_threshold_ms (0 while the log is unarmed).
  uint64_t slow_queries = 0;

  /// Subplan result-cache lifetime counters (EngineOptions::
  /// incremental_execution), read straight from the shared cache: probe
  /// outcomes across every session, LRU evictions, and current occupancy.
  /// All 0 when incremental execution is off.
  uint64_t result_cache_hits = 0;
  uint64_t result_cache_misses = 0;
  uint64_t result_cache_evictions = 0;
  uint64_t result_cache_entries = 0;
  uint64_t result_cache_bytes = 0;

  /// One flat JSON object with every counter above — the rendering the
  /// service's \stats command and the bench JSON both embed.
  std::string ToJson() const;

  /// Publishes every counter above into `registry` as tqp_engine_* gauges.
  /// Gauges are *set*, not accumulated, so republishing the same snapshot is
  /// idempotent — callers refresh on demand (the service does it per
  /// \metrics request).
  void PublishTo(MetricsRegistry* registry) const;
};

/// One slow-query log entry (EngineOptions::slow_query_threshold_ms).
struct SlowQueryRecord {
  /// Original TQL text; empty for plan-keyed preparations.
  std::string text;
  /// Structural fingerprint of the executed plan.
  uint64_t plan_fingerprint = 0;
  /// Executor wall time of the slow run.
  uint64_t wall_ns = 0;
  /// Up to three hottest operators by self time, hottest first:
  /// {operator kind, self nanoseconds}.
  std::vector<std::pair<std::string, uint64_t>> hottest;
};

/// One plan-cache entry in exported form: everything needed to reinstall a
/// PreparedQuery state into another Engine serving the same catalog. The
/// service layer's plan store serializes these across restarts.
struct PlanCacheEntry {
  /// Cache key ("#tql:..." token-stream key or "#plan:..." fingerprint key).
  std::string key;
  /// Original query text; empty for plan-keyed preparations.
  std::string text;
  QueryContract contract;
  PlanPtr initial_plan;
  PlanPtr best_plan;
  double best_cost = 0.0;
  double initial_cost = 0.0;
  size_t plans_considered = 0;
  bool truncated = false;
  std::vector<std::string> derivation;
};

/// A point-in-time export of an Engine's plan cache, valid only for the
/// catalog version it was taken under.
struct PlanCacheSnapshot {
  /// Catalog::version() at export time. Import refuses a snapshot whose
  /// version differs from the live catalog's — a bumped catalog invalidates
  /// the snapshot wholesale, exactly like the in-memory caches.
  uint64_t catalog_version = 0;
  /// Content summary of the catalog at export time
  /// (Engine::CatalogFingerprint). A version count alone cannot distinguish
  /// two catalogs that saw the same *number* of mutations; import also
  /// rejects wholesale on a fingerprint mismatch (0 = unknown, not checked).
  uint64_t catalog_fingerprint = 0;
  /// Backend the exporter ran: cached best plans and costs were chosen for
  /// this backend (and, when calibrated, for this measured cost profile).
  /// Import rejects wholesale on a mismatch with the importing Engine —
  /// plans optimized for a different backend are stale in the same way
  /// plans for a different catalog are. Empty = unknown, not checked.
  std::string backend_kind;
  /// Fingerprint of the exporter's calibrated cost profile (0 =
  /// uncalibrated constant model; checked like backend_kind).
  uint64_t calibration_fingerprint = 0;
  /// Entries in least- to most-recently-used order, so importing them in
  /// sequence reproduces the exporter's LRU recency.
  std::vector<PlanCacheEntry> entries;
};

class Engine;
class SubplanResultCache;

/// A compiled-and-optimized query bound to its Engine. Cheap to copy (shared
/// immutable state); must not outlive the Engine. Execute() re-prepares
/// transparently if the catalog changed since preparation, so a
/// PreparedQuery can be held across catalog mutations without ever running
/// a stale plan. One handle serves one thread; copies are independent.
class PreparedQuery {
 public:
  /// Evaluates the chosen plan against the Engine's catalog.
  Result<QueryResult> Execute();

  /// Same, with per-call tracing/profiling opt-ins (QueryResult::trace_json
  /// and ::profile). The trace covers the execution only — prepare already
  /// happened; Engine::Query(text, run) traces the whole lifecycle.
  Result<QueryResult> Execute(const QueryRunOptions& run);

  const PlanPtr& initial_plan() const;
  const PlanPtr& best_plan() const;
  /// Structural fingerprint of the chosen plan.
  uint64_t fingerprint() const;
  double best_cost() const;
  double initial_cost() const;
  size_t plans_considered() const;
  const std::vector<std::string>& derivation() const;
  const QueryContract& contract() const;
  /// True iff this preparation was served from the plan cache.
  bool from_cache() const { return from_cache_; }

 private:
  friend class Engine;
  struct State;
  PreparedQuery(Engine* engine, std::shared_ptr<const State> state,
                bool from_cache)
      : engine_(engine), state_(std::move(state)), from_cache_(from_cache) {}

  /// The shared implementation behind both Execute overloads and
  /// Engine::Query's traced path. `external` (may be null) is a caller-owned
  /// Tracer whose events already cover prepare; when set, this call appends
  /// its execution spans there and renders the combined trace.
  Result<QueryResult> ExecuteRun(const QueryRunOptions& run, Tracer* external);

  Engine* engine_;
  std::shared_ptr<const State> state_;
  bool from_cache_;
};

/// The facade. Owns the catalog and all session-lived caches; safe for
/// concurrent use by any number of threads.
class Engine {
 public:
  explicit Engine(Catalog catalog, EngineOptions options = EngineOptions());
  ~Engine();

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Direct read access to the catalog. Unsynchronized: only safe while no
  /// concurrent MutateCatalog (or mutable_catalog() mutation) can run —
  /// e.g. single-threaded use, or quiescent points between traffic. Queries
  /// themselves never need this; they read the catalog under the engine's
  /// internal lock.
  const Catalog& catalog() const { return catalog_; }
  /// Mutable access for registrations/updates. Single-threaded use only:
  /// callers must guarantee no query is in flight. Concurrent sessions
  /// mutate through MutateCatalog instead, which excludes running queries.
  /// Mutations bump Catalog::version(); the Engine notices lazily and
  /// flushes every session cache before serving the next query. Because the
  /// handed-out reference can also *replace* the catalog wholesale (which a
  /// version count alone cannot detect — a fresh catalog may coincidentally
  /// carry the same count), every handout conservatively flushes the session
  /// caches on the next query, and outstanding PreparedQuery handles
  /// re-prepare on their next Execute() — a query whose relations were
  /// dropped or replaced incompatibly returns a clean error instead of
  /// running a stale plan (locked by test_api_engine.cc).
  Catalog& mutable_catalog() {
    catalog_handout_.store(true, std::memory_order_release);
    return catalog_;
  }
  /// Applies `mutation` to the catalog under the engine's exclusive lock:
  /// it waits for in-flight queries to drain, runs the mutation, and lets
  /// traffic resume — the next query sees the bumped version and re-prepares
  /// against the new contents. Safe to call from any thread at any time.
  Status MutateCatalog(const std::function<Status(Catalog&)>& mutation);
  const EngineOptions& options() const { return options_; }

  /// Compiles and optimizes `text` once; Execute() the result any number of
  /// times. Served from the plan cache when possible; the cache is keyed on
  /// the lexed token stream, so whitespace/comment/keyword-case variants of
  /// one query share an entry.
  Result<PreparedQuery> Prepare(const std::string& text);

  /// Same for a hand-built initial plan + contract (no TQL involved). The
  /// plan cache keys these by the initial plan's structural fingerprint;
  /// hits are confirmed structurally before being served.
  Result<PreparedQuery> Prepare(const PlanPtr& initial,
                                const QueryContract& contract);

  /// One-shot: Prepare + Execute.
  Result<QueryResult> Query(const std::string& text);

  /// One-shot with observability opt-ins. With `run.trace` the span tree
  /// covers the full lifecycle — plan-cache probe, parse/translate,
  /// enumeration, costing, and per-operator execution — in one Chrome trace
  /// (QueryResult::trace_json); `run.profile` fills QueryResult::profile.
  Result<QueryResult> Query(const std::string& text,
                            const QueryRunOptions& run);

  /// Parses and translates only (no optimization, no caching of the result).
  Result<TranslatedQuery> Compile(const std::string& text) const;

  /// Enumerates the full equivalent-plan space of `text` through the session
  /// caches — the facade behind examples/plan_explorer. `options.cardinality`
  /// and `options.cost_engine` are overridden by the Engine's unified models
  /// (a session DerivationCache is only sound for one parameter setting).
  Result<EnumerationResult> Enumerate(const std::string& text,
                                      EnumerationOptions options);

  /// Session cache counters (plan cache, interner, derivation cache).
  EngineStats stats() const;

  /// The slow-query log, oldest first (EngineOptions::
  /// slow_query_threshold_ms; bounded — the oldest entries fall off).
  /// Empty while the threshold is 0.
  std::vector<SlowQueryRecord> slow_queries() const;

  /// Exports every plan-cache entry (LRU → MRU order) together with the
  /// catalog version they are valid for. The service layer persists the
  /// result across restarts (service/plan_store.h). Waits for no one:
  /// concurrent queries keep running; the export is a consistent snapshot
  /// under the engine's locks.
  PlanCacheSnapshot ExportPlanCache() const;

  /// Installs a previously exported snapshot into this engine's plan cache,
  /// returning the number of entries installed. A snapshot taken under a
  /// different catalog version than the live one is rejected wholesale
  /// (returns 0) — stale plans are never imported, mirroring the in-memory
  /// invalidation rule. Entries referencing relations the live catalog does
  /// not contain are skipped individually (defense against a snapshot from a
  /// same-version but different catalog). Imported plans are interned into
  /// the session interner; LRU capacity applies as usual.
  size_t ImportPlanCache(const PlanCacheSnapshot& snapshot);

  /// Stable content summary of the live catalog (relation names, schemas,
  /// cardinalities, property flags, declared orders, sites) under the shared
  /// catalog lock. Persisted snapshots couple to it in addition to the
  /// version counter, which a rebuilt catalog can coincidentally reproduce.
  uint64_t CatalogFingerprint() const;

  /// The live backend (never null; kSimulated when the requested backend
  /// could not be constructed). Exposed for tests and examples that inspect
  /// backend state (e.g. SqliteBackend::mirror_loads).
  Backend* backend() const { return backend_.get(); }
  /// The calibrated cost profile in effect (calibrated == false when
  /// EngineOptions::calibrate_backend was off).
  const BackendCostProfile& calibration() const { return calibration_; }

  /// Drops every session cache (plan cache, interner, derivation cache)
  /// after waiting for in-flight queries to drain. Equivalent to what a
  /// catalog mutation triggers automatically.
  void ClearCaches();

 private:
  friend class PreparedQuery;

  struct LruEntry {
    std::string key;
    std::shared_ptr<const PreparedQuery::State> state;
  };
  using LruList = std::list<LruEntry>;

  /// RAII admission ticket: takes a semaphore permit (when configured) and
  /// tracks the in-flight peak for stats().
  class AdmissionTicket {
   public:
    explicit AdmissionTicket(Engine* engine);
    ~AdmissionTicket();
    AdmissionTicket(const AdmissionTicket&) = delete;
    AdmissionTicket& operator=(const AdmissionTicket&) = delete;

   private:
    Engine* engine_;
    SemaphoreGuard permit_;
  };

  /// Reconciles the session caches with the live catalog if its version
  /// moved since they were primed. A mutable_catalog() handout flushes
  /// everything wholesale (a replacement is undetectable by version); an
  /// ordinary version bump invalidates *selectively* — only plan-cache
  /// entries whose relation-dependency set moved are evicted, the
  /// catalog-independent interner and the self-versioned result cache
  /// survive, and the derivation cache (whose cardinalities may be stale)
  /// is rebuilt. Requires the catalog lock (shared suffices: a mismatch can
  /// only be observed once the mutating writer has drained every older
  /// reader, so no in-flight query can still be using the flushed objects).
  void SyncWithCatalog();
  /// Drops all caches; state_mu_ must be held. Starts a new cache epoch.
  void FlushCachesLocked();
  /// The current cache epoch (bumped by every flush).
  uint64_t CurrentEpoch() const;
  /// True iff every relation `state`'s plans read still carries the version
  /// it was prepared under. state_mu_ must be held (the catalog lock shared
  /// guards the catalog reads).
  bool DepsCurrentLocked(const PreparedQuery::State& state) const;
  /// Staleness check for Execute(): current epoch and current dependency
  /// versions. Catalog lock held shared.
  bool StateIsCurrent(const PreparedQuery::State& state) const;

  /// Plan-cache probe under state_mu_: on a hit bumps the entry to the LRU
  /// front and counts a hit. `confirm` (optional) structurally verifies the
  /// entry's initial plan before serving — fingerprint keys are never
  /// trusted blindly.
  std::shared_ptr<const PreparedQuery::State> LookupPlanCache(
      const std::string& key, const PlanPtr* confirm);
  /// Inserts/overwrites under state_mu_, evicting LRU entries beyond
  /// plan_cache_capacity.
  void StorePlanCache(const std::string& key,
                      std::shared_ptr<const PreparedQuery::State> state);

  /// Prepare(text) with an optional per-query Tracer threaded through the
  /// whole pipeline (plan-cache probe, parse/translate, enumerate, cost).
  /// Null tracer = the public Prepare, span-free.
  Result<PreparedQuery> PrepareTraced(const std::string& text, Tracer* tracer);

  /// The full compile-free pipeline (intern, optimize, cache). Requires the
  /// caller to hold the catalog lock shared and to have synced. `tracer`
  /// (may be null) reaches the enumeration/costing spans.
  Result<std::shared_ptr<const PreparedQuery::State>> PrepareImpl(
      const std::string& key, const std::string& text, const PlanPtr& initial,
      const QueryContract& contract, Tracer* tracer);

  /// Annotate + evaluate `state`'s chosen plan. Requires the catalog lock
  /// shared and `state` to be current for the live catalog version.
  /// `tracer` (may be null) records execution spans; `want_profile` returns
  /// the per-operator tree in QueryResult::profile (profiling also runs,
  /// without being returned, while the slow-query log is armed).
  Result<QueryResult> ExecuteState(const PreparedQuery::State& state,
                                   bool from_cache, Tracer* tracer,
                                   bool want_profile);

  Catalog catalog_;
  EngineOptions options_;
  /// The DBMS below the stratum. Owned here; options_.engine.backend /
  /// .calibration point into these for the executors and cost model.
  std::unique_ptr<Backend> backend_;
  BackendCostProfile calibration_;
  /// The shared subplan result cache (EngineOptions::incremental_execution);
  /// nullptr when off. options_.engine.result_cache points at it for both
  /// executors. Its entries self-version through per-relation catalog
  /// stamps, so ordinary mutations never clear it — only wholesale flushes
  /// (handout, ClearCaches) do.
  std::unique_ptr<SubplanResultCache> result_cache_;

  /// Queries hold this shared for their full duration; catalog mutation and
  /// explicit cache flushes hold it exclusive. Lock order: admission
  /// semaphore → catalog_mu_ → state_mu_.
  mutable std::shared_mutex catalog_mu_;
  /// Guards the plan cache, counters, cache pointers, and caches_version_.
  mutable std::mutex state_mu_;

  /// Catalog version the caches below are valid for.
  uint64_t caches_version_ = 0;
  /// Cache epoch: incremented on every flush. Prepared states remember the
  /// epoch they were built under and re-prepare when it moved — the version
  /// count alone cannot see a wholesale catalog replacement.
  uint64_t catalog_epoch_ = 0;
  /// Set when mutable_catalog() hands out a mutable reference; the next
  /// SyncWithCatalog flushes conservatively and clears it.
  mutable std::atomic<bool> catalog_handout_{false};
  std::unique_ptr<PlanInterner> interner_;
  std::unique_ptr<DerivationCache> derivation_;
  /// LRU plan cache: list front = most recently used; map points into it.
  LruList lru_;
  std::unordered_map<std::string, LruList::iterator> plan_cache_;
  EngineStats stats_;
  /// Bounded slow-query log, oldest at the front. Guarded by state_mu_.
  std::deque<SlowQueryRecord> slow_log_;
  /// Cached MetricsRegistry::Global() pointers (EngineOptions::
  /// publish_metrics); all null when publishing is off. Registry entries are
  /// never removed, so the pointers stay valid for the process lifetime.
  MetricCounter* metric_queries_ = nullptr;
  MetricCounter* metric_rows_ = nullptr;
  MetricCounter* metric_slow_ = nullptr;
  LatencyHistogram* metric_latency_ = nullptr;

  std::unique_ptr<Semaphore> query_sem_;
  std::atomic<uint64_t> in_flight_{0};
  std::atomic<uint64_t> peak_in_flight_{0};
};

}  // namespace tqp

#endif  // TQP_API_ENGINE_H_
