// A lock-free HDR-style latency histogram for the service layer's load
// telemetry (p50/p99/p999 under hundreds of concurrent client threads).
//
// Log-linear bucketing, the HdrHistogram recipe: values are grouped by the
// position of their highest set bit, with kSubBuckets linear sub-buckets per
// power of two. That bounds the relative quantization error at
// 1/kSubBuckets (~1.6%) across the full uint64 range while keeping the
// counter array small (~30 KB) and the index computation branch-light —
// Record() is one fetch_add on an atomic counter plus two relaxed min/max
// updates, so hundreds of client threads can record into one shared
// histogram with no lock and no coordination beyond cache-line traffic.
//
// Readers (Percentile, ToJson) take relaxed snapshots of the counters; they
// are intended for quiescent points or monitoring, where a count that is a
// few records behind a racing writer is fine. Merge() accumulates another
// histogram into this one with the same semantics.
#ifndef TQP_CORE_LATENCY_HISTOGRAM_H_
#define TQP_CORE_LATENCY_HISTOGRAM_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>

namespace tqp {

class LatencyHistogram {
 public:
  /// Linear sub-buckets per power of two; the relative quantization error of
  /// every reported percentile is at most 1/kSubBuckets.
  static constexpr uint64_t kSubBuckets = 64;

  LatencyHistogram();

  LatencyHistogram(const LatencyHistogram&) = delete;
  LatencyHistogram& operator=(const LatencyHistogram&) = delete;

  /// Records one value (any unit; the service records microseconds).
  /// Lock-free and safe from any number of threads.
  void Record(uint64_t value);

  /// Adds every recorded value of `other` into this histogram (bucket-wise;
  /// min/max/count merge exactly). Safe against concurrent Record on either.
  void Merge(const LatencyHistogram& other);

  /// Forgets everything. Not safe against concurrent Record.
  void Reset();

  uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  /// Exact smallest / largest recorded value; 0 when empty.
  uint64_t min() const;
  uint64_t max() const;
  /// Exact mean of the recorded values (a separate atomic sum, not the
  /// quantized buckets). 0 when empty.
  double Mean() const;

  /// The value at percentile `p` in [0, 100]: the upper edge of the bucket
  /// containing the p-th percentile record, clamped to the exact observed
  /// max. 0 when empty.
  uint64_t Percentile(double p) const;

  /// {"count":..,"min":..,"max":..,"mean":..,"p50":..,"p90":..,"p99":..,
  ///  "p999":..} — the shape bench_service_load embeds per phase and the
  /// service reports from \stats.
  std::string ToJson() const;

 private:
  // Values < kSubBuckets index linearly; larger values drop sub-bit
  // precision below the top log2(kSubBuckets)+1 bits. 59 half-open
  // bucket groups cover the full uint64 range.
  static constexpr int kSubBucketBits = 6;  // log2(kSubBuckets)
  static constexpr size_t kBucketGroups = 64 - kSubBucketBits + 1;
  static constexpr size_t kSlots = kBucketGroups * kSubBuckets;

  static size_t IndexFor(uint64_t value);
  /// Upper edge (inclusive) of the slot's value range — what percentiles
  /// report, so reported quantiles never undershoot the true value's slot.
  static uint64_t SlotUpperEdge(size_t index);

  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
  std::atomic<uint64_t> min_{UINT64_MAX};
  std::atomic<uint64_t> max_{0};
  std::unique_ptr<std::atomic<uint64_t>[]> slots_;
};

}  // namespace tqp

#endif  // TQP_CORE_LATENCY_HISTOGRAM_H_
