// Concurrency primitives: striped mutexes for sharded hash tables, optional
// lock guards for structures with a lock-free single-threaded mode, and a
// counting semaphore for admission control.
//
// The library's concurrency model (see ARCHITECTURE.md): session-shared
// state — PlanInterner, DerivationCache, the Engine's plan cache — is
// guarded by striped locks that are only taken once a structure has been
// explicitly switched into concurrent mode, so the single-threaded paths
// take no locks at all and stay byte-identical to the pre-concurrency code.
#ifndef TQP_CORE_SYNC_H_
#define TQP_CORE_SYNC_H_

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <mutex>

namespace tqp {

/// A fixed pool of mutexes indexed by hash: a sharded table locks `For(h)`
/// to guard the shard that hash `h` routes to. Entries whose hashes land in
/// different stripes can be locked concurrently, and the pool itself never
/// resizes, so addressing a stripe is contention-free.
class StripedMutex {
 public:
  /// Power of two; 64 stripes keep 4–8 worker threads essentially
  /// contention-free while costing ~2.5 KB of mutexes per table.
  static constexpr size_t kStripes = 64;

  /// The stripe index `hash` routes to. Multiplicative mixing first, so
  /// pointer-derived hashes (aligned, low bits zero) still spread.
  static constexpr size_t IndexOf(uint64_t hash) {
    return static_cast<size_t>((hash * 0x9e3779b97f4a7c15ull) >> 58);
  }

  std::mutex& For(uint64_t hash) { return stripes_[IndexOf(hash)]; }

 private:
  std::mutex stripes_[kStripes];
};

/// Lock guard that no-ops on nullptr — the single-threaded fast path of a
/// concurrency-capable structure passes nullptr and takes no lock at all.
class MaybeLockGuard {
 public:
  explicit MaybeLockGuard(std::mutex* mu) : mu_(mu) {
    if (mu_ != nullptr) mu_->lock();
  }
  ~MaybeLockGuard() {
    if (mu_ != nullptr) mu_->unlock();
  }

  MaybeLockGuard(const MaybeLockGuard&) = delete;
  MaybeLockGuard& operator=(const MaybeLockGuard&) = delete;

 private:
  std::mutex* mu_;
};

/// A counting semaphore (C++17 predates std::counting_semaphore). Backs the
/// Engine's admission control: at most `permits` holders at once; excess
/// Acquire calls block until a Release frees a permit.
class Semaphore {
 public:
  explicit Semaphore(size_t permits) : permits_(permits) {}

  void Acquire() {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [this] { return permits_ > 0; });
    --permits_;
  }

  void Release() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++permits_;
    }
    cv_.notify_one();
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  size_t permits_;
};

/// RAII permit holder; no-ops on nullptr (admission control disabled).
class SemaphoreGuard {
 public:
  explicit SemaphoreGuard(Semaphore* sem) : sem_(sem) {
    if (sem_ != nullptr) sem_->Acquire();
  }
  ~SemaphoreGuard() {
    if (sem_ != nullptr) sem_->Release();
  }

  SemaphoreGuard(const SemaphoreGuard&) = delete;
  SemaphoreGuard& operator=(const SemaphoreGuard&) = delete;

 private:
  Semaphore* sem_;
};

}  // namespace tqp

#endif  // TQP_CORE_SYNC_H_
