#include "core/equivalence.h"

#include <algorithm>

namespace tqp {

const char* EquivalenceTypeName(EquivalenceType t) {
  switch (t) {
    case EquivalenceType::kList:
      return "list (=L)";
    case EquivalenceType::kMultiset:
      return "multiset (=M)";
    case EquivalenceType::kSet:
      return "set (=S)";
    case EquivalenceType::kSnapshotList:
      return "snapshot-list (=SL)";
    case EquivalenceType::kSnapshotMultiset:
      return "snapshot-multiset (=SM)";
    case EquivalenceType::kSnapshotSet:
      return "snapshot-set (=SS)";
  }
  return "?";
}

namespace {

std::vector<Tuple> SortedTuples(const Relation& r) {
  std::vector<Tuple> out = r.tuples();
  std::sort(out.begin(), out.end(),
            [](const Tuple& a, const Tuple& b) { return a.Compare(b) < 0; });
  return out;
}

std::vector<Tuple> SortedDistinctTuples(const Relation& r) {
  std::vector<Tuple> out = SortedTuples(r);
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

// Representative time points: one per elementary interval induced by the
// union of both relations' endpoints. Snapshots are constant between
// consecutive endpoints, so this sampling is exhaustive.
std::vector<TimePoint> RepresentativePoints(const Relation& a,
                                            const Relation& b) {
  std::vector<TimePoint> pts = a.TimeEndpoints();
  std::vector<TimePoint> pb = b.TimeEndpoints();
  pts.insert(pts.end(), pb.begin(), pb.end());
  std::sort(pts.begin(), pts.end());
  pts.erase(std::unique(pts.begin(), pts.end()), pts.end());
  // Snapshot at each interval start; the final endpoint starts an empty tail.
  return pts;
}

template <typename SnapshotEq>
bool SnapshotSweep(const Relation& a, const Relation& b, SnapshotEq eq) {
  if (!a.IsTemporal() || !b.IsTemporal()) return false;
  if (a.schema() != b.schema()) return false;
  for (TimePoint t : RepresentativePoints(a, b)) {
    if (!eq(a.Snapshot(t), b.Snapshot(t))) return false;
  }
  return true;
}

}  // namespace

bool EquivalentAsLists(const Relation& a, const Relation& b) {
  return a.schema() == b.schema() && a.tuples() == b.tuples();
}

bool EquivalentAsMultisets(const Relation& a, const Relation& b) {
  if (a.schema() != b.schema()) return false;
  if (a.size() != b.size()) return false;
  return SortedTuples(a) == SortedTuples(b);
}

bool EquivalentAsSets(const Relation& a, const Relation& b) {
  if (a.schema() != b.schema()) return false;
  return SortedDistinctTuples(a) == SortedDistinctTuples(b);
}

bool SnapshotEquivalentAsLists(const Relation& a, const Relation& b) {
  return SnapshotSweep(a, b, [](const Relation& x, const Relation& y) {
    return EquivalentAsLists(x, y);
  });
}

bool SnapshotEquivalentAsMultisets(const Relation& a, const Relation& b) {
  return SnapshotSweep(a, b, [](const Relation& x, const Relation& y) {
    return EquivalentAsMultisets(x, y);
  });
}

bool SnapshotEquivalentAsSets(const Relation& a, const Relation& b) {
  return SnapshotSweep(a, b, [](const Relation& x, const Relation& y) {
    return EquivalentAsSets(x, y);
  });
}

bool Equivalent(EquivalenceType type, const Relation& a, const Relation& b) {
  switch (type) {
    case EquivalenceType::kList:
      return EquivalentAsLists(a, b);
    case EquivalenceType::kMultiset:
      return EquivalentAsMultisets(a, b);
    case EquivalenceType::kSet:
      return EquivalentAsSets(a, b);
    case EquivalenceType::kSnapshotList:
      return SnapshotEquivalentAsLists(a, b);
    case EquivalenceType::kSnapshotMultiset:
      return SnapshotEquivalentAsMultisets(a, b);
    case EquivalenceType::kSnapshotSet:
      return SnapshotEquivalentAsSets(a, b);
  }
  return false;
}

bool EquivalentAsListsOn(const SortSpec& spec, const Relation& a,
                         const Relation& b) {
  if (a.size() != b.size()) return false;
  std::vector<int> ia, ib;
  for (const SortKey& k : spec) {
    int xa = a.schema().IndexOf(k.attr);
    int xb = b.schema().IndexOf(k.attr);
    if (xa < 0 || xb < 0) return false;
    ia.push_back(xa);
    ib.push_back(xb);
  }
  for (size_t i = 0; i < a.size(); ++i) {
    for (size_t k = 0; k < ia.size(); ++k) {
      if (a.tuple(i).at(static_cast<size_t>(ia[k])) !=
          b.tuple(i).at(static_cast<size_t>(ib[k]))) {
        return false;
      }
    }
  }
  return true;
}

bool Implies(EquivalenceType a, EquivalenceType b) {
  if (a == b) return true;
  auto chain_pos = [](EquivalenceType t) -> int {
    switch (t) {
      case EquivalenceType::kList:
      case EquivalenceType::kSnapshotList:
        return 0;
      case EquivalenceType::kMultiset:
      case EquivalenceType::kSnapshotMultiset:
        return 1;
      case EquivalenceType::kSet:
      case EquivalenceType::kSnapshotSet:
        return 2;
    }
    return 3;
  };
  auto is_snapshot = [](EquivalenceType t) {
    return t == EquivalenceType::kSnapshotList ||
           t == EquivalenceType::kSnapshotMultiset ||
           t == EquivalenceType::kSnapshotSet;
  };
  // Downward (non-snapshot => snapshot) and rightward (list => multiset =>
  // set) moves are implications; upward moves are not.
  if (is_snapshot(a) && !is_snapshot(b)) return false;
  return chain_pos(a) <= chain_pos(b);
}

std::vector<EquivalenceType> HoldingEquivalences(const Relation& a,
                                                 const Relation& b) {
  std::vector<EquivalenceType> out;
  const EquivalenceType all[] = {
      EquivalenceType::kList,          EquivalenceType::kMultiset,
      EquivalenceType::kSet,           EquivalenceType::kSnapshotList,
      EquivalenceType::kSnapshotMultiset, EquivalenceType::kSnapshotSet,
  };
  for (EquivalenceType t : all) {
    if (Equivalent(t, a, b)) out.push_back(t);
  }
  return out;
}

}  // namespace tqp
