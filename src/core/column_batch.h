// Columnar storage for the vectorized batch executor (src/vexec).
//
// A ColumnTable is the columnar twin of a Relation: one typed ColumnVec per
// schema attribute plus a row count. The list semantics of the algebra are
// carried by the row index — row i of every column is tuple i — so every
// row-order-sensitive definition of Table 1 (which occurrence survives rdup,
// difference fragment order, rdupT's in-place discipline) transfers verbatim
// to the columnar form. Conversions to and from Relation are exact: the
// Value sequence of ToRelation(FromRelation(r)) is byte-identical to r.
//
// Storage is typed per column (int64 for kInt/kTime, double, string) with a
// lazily allocated null mask. A value whose runtime type disagrees with the
// column's declared type (possible because Value is dynamically typed)
// promotes the whole column to boxed Value storage, so exactness never
// depends on schema discipline. Row-level hash/compare/equality reproduce
// Tuple::Hash / Tuple::Compare bit-for-bit, which is what lets the
// vectorized operators reuse hash-based dedup without materializing tuples.
//
// A ColumnBatch is a borrowed row range [begin, end) of a ColumnTable — the
// unit the vexec operators process at a time (see VexecOptions::batch_size).
#ifndef TQP_CORE_COLUMN_BATCH_H_
#define TQP_CORE_COLUMN_BATCH_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/period.h"
#include "core/relation.h"

namespace tqp {

/// Physical storage classes of a ColumnVec.
enum class ColumnStorage : uint8_t {
  kUndecided,  // empty/all-null column with no declared type yet
  kInt64,      // kInt or kTime payloads (declared type distinguishes)
  kDouble,
  kString,
  kBoxed,  // fallback: per-cell Value (mixed runtime types)
};

/// A lightweight view of one cell: the runtime type plus an unboxed payload.
/// Cheap to read in inner loops (no Value construction, no allocation).
struct CellRef {
  ValueType type = ValueType::kNull;
  int64_t i = 0;                  // kInt / kTime payload
  double d = 0.0;                 // kDouble payload
  const std::string* s = nullptr; // kString payload

  bool is_null() const { return type == ValueType::kNull; }
  bool IsNumeric() const {
    return type == ValueType::kInt || type == ValueType::kDouble ||
           type == ValueType::kTime;
  }
  /// Numeric coercion; mirrors Value::NumericValue (checked on non-numeric).
  double Numeric() const;
  /// Exact Value::Compare semantics (cross-type numeric comparison, then
  /// type rank, then payload).
  static int Compare(const CellRef& a, const CellRef& b);
  /// Exact Value::Hash.
  uint64_t Hash() const;
  /// Hash CONSISTENT WITH Compare()-equality: Compare treats numerically
  /// equal int/double/time cells as equal (Int(1) == Double(1.0) ==
  /// Time(1)), so numeric cells hash by numeric value (with -0.0 and NaN
  /// canonicalized), not by type. Required wherever a hash table replaces
  /// one of the reference evaluator's Compare-ordered maps (value
  /// equivalence classes, group keys) — Value::Hash is type-seeded and
  /// would split classes the reference merges.
  uint64_t ClassHash() const;
  /// Materializes the cell as a Value.
  Value ToValue() const;
  static CellRef Of(const Value& v);
};

/// One typed column. Appending decides the storage from the first non-null
/// value (or from an explicit declared type); a later type mismatch promotes
/// the column to boxed storage, preserving every cell exactly.
class ColumnVec {
 public:
  ColumnVec() = default;
  /// A column pre-typed from a schema attribute (kNull declares nothing).
  explicit ColumnVec(ValueType declared);

  size_t size() const { return size_; }
  ColumnStorage storage() const { return storage_; }
  ValueType declared_type() const { return declared_; }

  void Reserve(size_t n);

  // ---- Appends ----
  void AppendNull();
  void AppendValue(const Value& v);
  void AppendCell(const CellRef& c);
  /// Typed fast-path appends; the storage must match (checked in debug).
  void AppendInt64(int64_t v) {
    TQP_DCHECK(storage_ == ColumnStorage::kInt64);
    ints_.push_back(v);
    ++size_;
  }
  /// Copies cell `row` of `src` (any storage mix).
  void AppendFrom(const ColumnVec& src, size_t row);
  /// Copies rows [begin, end) of `src`.
  void AppendRangeFrom(const ColumnVec& src, size_t begin, size_t end);
  /// Copies the given rows of `src` in index order.
  void AppendGather(const ColumnVec& src, const uint32_t* rows, size_t n);

  // ---- Cell access ----
  bool IsNull(size_t row) const {
    return !nulls_.empty() && nulls_[row] != 0;
  }
  /// Unchecked typed accessors (row must be non-null, storage must match).
  int64_t Int64At(size_t row) const { return ints_[row]; }
  double DoubleAt(size_t row) const { return doubles_[row]; }
  const std::string& StringAt(size_t row) const { return strings_[row]; }

  /// The cell as a CellRef (exact runtime type).
  CellRef At(size_t row) const;
  /// The cell as a Value (exact reconstruction).
  Value ValueAt(size_t row) const { return At(row).ToValue(); }

  /// Direct typed storage for kernel loops (valid only for the matching
  /// storage class; cells flagged null hold unspecified payloads).
  const std::vector<int64_t>& ints() const { return ints_; }
  const std::vector<double>& doubles() const { return doubles_; }
  const std::vector<std::string>& strings() const { return strings_; }

  /// False guarantees no cell of the column is null.
  bool MayHaveNulls() const { return !nulls_.empty(); }

  /// Rough in-memory footprint of the column's payload, for the executor's
  /// spill decisions (vexec_memory_budget). An estimate, not an accounting.
  uint64_t ApproxBytes() const;

 private:
  void EnsureNulls();
  void DecideStorage(ValueType t);
  void PromoteToBoxed();

  ColumnStorage storage_ = ColumnStorage::kUndecided;
  ValueType declared_ = ValueType::kNull;
  size_t size_ = 0;
  std::vector<int64_t> ints_;
  std::vector<double> doubles_;
  std::vector<std::string> strings_;
  std::vector<Value> boxed_;
  /// Empty = no nulls so far; else one flag per row.
  std::vector<uint8_t> nulls_;
};

/// A columnar relation: schema + one column per attribute + row count.
class ColumnTable {
 public:
  ColumnTable() = default;
  /// An empty table with one pre-typed column per schema attribute.
  explicit ColumnTable(Schema schema);

  const Schema& schema() const { return schema_; }
  size_t rows() const { return rows_; }
  size_t num_cols() const { return cols_.size(); }
  const ColumnVec& col(size_t i) const { return cols_[i]; }
  ColumnVec& mutable_col(size_t i) { return cols_[i]; }

  /// Declares `n` more rows appended (kernels append column-wise and then
  /// commit the row count once; checked against every column in debug).
  void CommitRows(size_t n);

  /// Exact conversions. FromRelation preserves the Value sequence of every
  /// tuple; ToRelation reproduces it bit-for-bit.
  static ColumnTable FromRelation(const Relation& r);
  Relation ToRelation() const;

  /// Row-major hash, identical to Tuple::Hash of the row's tuple.
  uint64_t RowHash(size_t row) const;
  /// Lexicographic row comparison, identical to Tuple::Compare.
  static int RowCompare(const ColumnTable& a, size_t ra, const ColumnTable& b,
                        size_t rb);
  static bool RowEquals(const ColumnTable& a, size_t ra, const ColumnTable& b,
                        size_t rb) {
    return RowCompare(a, ra, b, rb) == 0;
  }

  /// Hash/compare over the non-time attributes only (value equivalence).
  /// The hash is any deterministic function consistent with equality; the
  /// comparison is identical to CompareNonTemporal.
  uint64_t RowHashNonTemporal(size_t row) const;
  static int RowCompareNonTemporal(const ColumnTable& a, size_t ra,
                                   const ColumnTable& b, size_t rb);

  /// The valid-time period of a row (schema must be temporal).
  Period RowPeriod(size_t row) const;
  int t1_index() const { return t1_; }
  int t2_index() const { return t2_; }

  /// Rough in-memory footprint (sum of the columns'), for spill decisions.
  uint64_t ApproxBytes() const;

  /// Appends row `row` of `src` (schemas must have equal width).
  void AppendRow(const ColumnTable& src, size_t row);
  /// Appends rows [begin, end) of `src` column-wise.
  void AppendRange(const ColumnTable& src, size_t begin, size_t end);
  /// Appends the given rows of `src` in index order, column-wise.
  void AppendGather(const ColumnTable& src, const std::vector<uint32_t>& rows);

 private:
  Schema schema_;
  std::vector<ColumnVec> cols_;
  size_t rows_ = 0;
  int t1_ = -1;
  int t2_ = -1;
};

/// A borrowed row range of a ColumnTable — the unit of work of the
/// vectorized operators.
struct ColumnBatch {
  const ColumnTable* table = nullptr;
  size_t begin = 0;
  size_t end = 0;

  size_t rows() const { return end - begin; }
};

}  // namespace tqp

#endif  // TQP_CORE_COLUMN_BATCH_H_
