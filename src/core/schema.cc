#include "core/schema.h"

#include <algorithm>

namespace tqp {

bool IsPrefixOf(const SortSpec& prefix, const SortSpec& full) {
  if (prefix.size() > full.size()) return false;
  return std::equal(prefix.begin(), prefix.end(), full.begin());
}

SortSpec OrderPrefixOnAttrs(const SortSpec& order,
                            const std::vector<std::string>& kept) {
  SortSpec out;
  for (const SortKey& key : order) {
    bool found = std::find(kept.begin(), kept.end(), key.attr) != kept.end();
    if (!found) break;
    out.push_back(key);
  }
  return out;
}

std::string SortSpecToString(const SortSpec& spec) {
  if (spec.empty()) return "<unordered>";
  std::string out;
  for (size_t i = 0; i < spec.size(); ++i) {
    if (i > 0) out += ", ";
    out += spec[i].ToString();
  }
  return out;
}

const std::vector<Attribute> Schema::kNoAttrs;

int Schema::IndexOf(const std::string& name) const {
  const std::vector<Attribute>& a = attrs();
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].name == name) return static_cast<int>(i);
  }
  return -1;
}

bool Schema::IsTemporal() const {
  int i1 = T1Index();
  int i2 = T2Index();
  return i1 >= 0 && i2 >= 0 && attr(i1).type == ValueType::kTime &&
         attr(i2).type == ValueType::kTime;
}

std::vector<std::string> Schema::NonTemporalAttrNames() const {
  std::vector<std::string> out;
  for (const Attribute& a : attrs()) {
    if (a.name != kT1 && a.name != kT2) out.push_back(a.name);
  }
  return out;
}

void Schema::Add(Attribute a) {
  TQP_CHECK(IndexOf(a.name) < 0);
  if (attrs_ == nullptr) {
    attrs_ = std::make_shared<std::vector<Attribute>>();
  } else if (attrs_.use_count() > 1) {
    attrs_ = std::make_shared<std::vector<Attribute>>(*attrs_);  // copy-on-write
  }
  attrs_->push_back(std::move(a));
}

std::string Schema::ToString() const {
  const std::vector<Attribute>& a = attrs();
  std::string out = "(";
  for (size_t i = 0; i < a.size(); ++i) {
    if (i > 0) out += ", ";
    out += a[i].name;
    out += ":";
    out += ValueTypeName(a[i].type);
  }
  out += ")";
  return out;
}

}  // namespace tqp
