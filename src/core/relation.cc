#include "core/relation.h"

#include <algorithm>
#include <set>

namespace tqp {

void Relation::Append(Tuple t) {
  TQP_CHECK(t.size() == schema_.size());
  tuples_.push_back(std::move(t));
}

Relation Relation::Snapshot(TimePoint t) const {
  TQP_CHECK(IsTemporal());
  int i1 = schema_.T1Index();
  int i2 = schema_.T2Index();
  Schema snap_schema;
  for (size_t i = 0; i < schema_.size(); ++i) {
    if (static_cast<int>(i) == i1 || static_cast<int>(i) == i2) continue;
    snap_schema.Add(schema_.attr(i));
  }
  Relation out(snap_schema);
  for (const Tuple& tup : tuples_) {
    if (!TuplePeriod(tup, schema_).Contains(t)) continue;
    Tuple nt;
    for (size_t i = 0; i < schema_.size(); ++i) {
      if (static_cast<int>(i) == i1 || static_cast<int>(i) == i2) continue;
      nt.push_back(tup.at(i));
    }
    out.Append(std::move(nt));
  }
  return out;
}

std::vector<TimePoint> Relation::TimeEndpoints() const {
  TQP_CHECK(IsTemporal());
  std::set<TimePoint> points;
  for (const Tuple& t : tuples_) {
    Period p = TuplePeriod(t, schema_);
    points.insert(p.begin);
    points.insert(p.end);
  }
  return std::vector<TimePoint>(points.begin(), points.end());
}

bool Relation::HasDuplicates() const {
  std::vector<const Tuple*> ptrs;
  ptrs.reserve(tuples_.size());
  for (const Tuple& t : tuples_) ptrs.push_back(&t);
  std::sort(ptrs.begin(), ptrs.end(),
            [](const Tuple* a, const Tuple* b) { return a->Compare(*b) < 0; });
  for (size_t i = 1; i < ptrs.size(); ++i) {
    if (*ptrs[i - 1] == *ptrs[i]) return true;
  }
  return false;
}

bool Relation::HasSnapshotDuplicates() const {
  if (!IsTemporal()) return HasDuplicates();
  // Two value-equivalent tuples with overlapping periods yield a duplicate in
  // any snapshot within the overlap. Sort by value-equivalence class, then
  // sweep periods within each class.
  std::vector<const Tuple*> ptrs;
  ptrs.reserve(tuples_.size());
  for (const Tuple& t : tuples_) ptrs.push_back(&t);
  std::sort(ptrs.begin(), ptrs.end(), [this](const Tuple* a, const Tuple* b) {
    int c = CompareNonTemporal(*a, *b, schema_);
    if (c != 0) return c < 0;
    return TuplePeriod(*a, schema_).begin < TuplePeriod(*b, schema_).begin;
  });
  for (size_t i = 1; i < ptrs.size(); ++i) {
    if (CompareNonTemporal(*ptrs[i - 1], *ptrs[i], schema_) != 0) continue;
    if (TuplePeriod(*ptrs[i - 1], schema_).end >
        TuplePeriod(*ptrs[i], schema_).begin) {
      return true;
    }
  }
  return false;
}

bool Relation::IsCoalesced() const {
  TQP_CHECK(IsTemporal());
  std::vector<const Tuple*> ptrs;
  ptrs.reserve(tuples_.size());
  for (const Tuple& t : tuples_) ptrs.push_back(&t);
  std::sort(ptrs.begin(), ptrs.end(), [this](const Tuple* a, const Tuple* b) {
    int c = CompareNonTemporal(*a, *b, schema_);
    if (c != 0) return c < 0;
    return TuplePeriod(*a, schema_).begin < TuplePeriod(*b, schema_).begin;
  });
  for (size_t i = 1; i < ptrs.size(); ++i) {
    if (CompareNonTemporal(*ptrs[i - 1], *ptrs[i], schema_) != 0) continue;
    if (TuplePeriod(*ptrs[i - 1], schema_).end ==
        TuplePeriod(*ptrs[i], schema_).begin) {
      return false;
    }
  }
  return true;
}

bool Relation::IsSortedBy(const SortSpec& spec) const {
  TupleComparator cmp(spec, schema_);
  for (size_t i = 1; i < tuples_.size(); ++i) {
    if (cmp.Compare(tuples_[i - 1], tuples_[i]) > 0) return false;
  }
  return true;
}

std::string Relation::ToTable(const std::string& title) const {
  std::vector<size_t> widths(schema_.size());
  std::vector<std::vector<std::string>> cells;
  for (size_t i = 0; i < schema_.size(); ++i) {
    widths[i] = schema_.attr(i).name.size();
  }
  for (const Tuple& t : tuples_) {
    std::vector<std::string> row;
    for (size_t i = 0; i < schema_.size(); ++i) {
      row.push_back(t.at(i).ToString());
      widths[i] = std::max(widths[i], row.back().size());
    }
    cells.push_back(std::move(row));
  }
  std::string out;
  if (!title.empty()) out += title + "\n";
  auto pad = [](const std::string& s, size_t w) {
    return s + std::string(w - s.size(), ' ');
  };
  std::string sep = "+";
  for (size_t w : widths) sep += std::string(w + 2, '-') + "+";
  out += sep + "\n|";
  for (size_t i = 0; i < schema_.size(); ++i) {
    out += " " + pad(schema_.attr(i).name, widths[i]) + " |";
  }
  out += "\n" + sep + "\n";
  for (const auto& row : cells) {
    out += "|";
    for (size_t i = 0; i < row.size(); ++i) {
      out += " " + pad(row[i], widths[i]) + " |";
    }
    out += "\n";
  }
  out += sep + "\n";
  return out;
}

TupleComparator::TupleComparator(const SortSpec& spec, const Schema& schema) {
  for (const SortKey& k : spec) {
    int idx = schema.IndexOf(k.attr);
    TQP_CHECK(idx >= 0);
    keys_.push_back(Key{static_cast<size_t>(idx), k.ascending});
  }
}

int TupleComparator::Compare(const Tuple& a, const Tuple& b) const {
  for (const Key& k : keys_) {
    int c = a.at(k.index).Compare(b.at(k.index));
    if (c != 0) return k.ascending ? c : -c;
  }
  return 0;
}

}  // namespace tqp
