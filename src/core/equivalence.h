// The six relation equivalence types of Section 3.
//
// Two relations can be equivalent as lists (identical sequences), multisets
// (identical up to reordering), or sets (identical up to reordering and
// duplicate multiplicity); and, for temporal relations, snapshot-equivalent
// as lists / multisets / sets (the corresponding equivalence holds between
// snapshots at every point in time). Theorem 3.1's implication lattice is
// exposed via Implies(). These checks power the test suite's verification of
// every transformation rule's claimed equivalence level.
#ifndef TQP_CORE_EQUIVALENCE_H_
#define TQP_CORE_EQUIVALENCE_H_

#include <optional>
#include <string>
#include <vector>

#include "core/relation.h"

namespace tqp {

/// The six equivalence types, strongest to weakest along each chain.
enum class EquivalenceType {
  kList,              // ≡L
  kMultiset,          // ≡M
  kSet,               // ≡S
  kSnapshotList,      // ≡SL
  kSnapshotMultiset,  // ≡SM
  kSnapshotSet,       // ≡SS
};

const char* EquivalenceTypeName(EquivalenceType t);

/// ≡L: identical schemas and identical tuple sequences.
bool EquivalentAsLists(const Relation& a, const Relation& b);

/// ≡M: identical schemas and identical tuple multisets.
bool EquivalentAsMultisets(const Relation& a, const Relation& b);

/// ≡S: identical schemas and identical tuple sets (duplicates ignored).
bool EquivalentAsSets(const Relation& a, const Relation& b);

/// ≡SL / ≡SM / ≡SS: snapshots at every time point are ≡L / ≡M / ≡S.
/// Undefined (returns false) unless both relations are temporal with equal
/// schemas. Checked via an endpoint sweep: one representative per elementary
/// interval is exhaustive.
bool SnapshotEquivalentAsLists(const Relation& a, const Relation& b);
bool SnapshotEquivalentAsMultisets(const Relation& a, const Relation& b);
bool SnapshotEquivalentAsSets(const Relation& a, const Relation& b);

/// Dispatches on the equivalence type.
bool Equivalent(EquivalenceType type, const Relation& a, const Relation& b);

/// ≡L,A (Definition 5.1): the projections of the two relations onto the sort
/// attributes A are ≡L — i.e., the relations agree as lists "as far as the
/// user-visible ORDER BY columns are concerned".
bool EquivalentAsListsOn(const SortSpec& spec, const Relation& a,
                         const Relation& b);

/// Theorem 3.1: does equivalence `a` imply equivalence `b`?
/// (List ⇒ Multiset ⇒ Set; each ⇒ its snapshot counterpart for temporal
/// relations; SnapshotList ⇒ SnapshotMultiset ⇒ SnapshotSet.)
bool Implies(EquivalenceType a, EquivalenceType b);

/// The strongest equivalence type(s) that hold between two relations, for
/// diagnostics in tests: returns all types that hold.
std::vector<EquivalenceType> HoldingEquivalences(const Relation& a,
                                                 const Relation& b);

}  // namespace tqp

#endif  // TQP_CORE_EQUIVALENCE_H_
