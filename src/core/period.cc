#include "core/period.h"

namespace tqp {

std::vector<Period> SubtractAll(const Period& p,
                                const std::vector<Period>& subtrahends) {
  std::vector<Period> live;
  live.push_back(p);
  for (const Period& s : subtrahends) {
    std::vector<Period> next;
    for (const Period& frag : live) {
      std::vector<Period> pieces = frag.Subtract(s);
      next.insert(next.end(), pieces.begin(), pieces.end());
    }
    live = std::move(next);
    if (live.empty()) break;
  }
  return live;
}

std::vector<Period> NormalizePeriods(std::vector<Period> periods) {
  std::sort(periods.begin(), periods.end(),
            [](const Period& a, const Period& b) {
              if (a.begin != b.begin) return a.begin < b.begin;
              return a.end < b.end;
            });
  std::vector<Period> out;
  for (const Period& p : periods) {
    if (!p.Valid()) continue;
    if (!out.empty() && p.begin <= out.back().end) {
      out.back().end = std::max(out.back().end, p.end);
    } else {
      out.push_back(p);
    }
  }
  return out;
}

}  // namespace tqp
