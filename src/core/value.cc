#include "core/value.h"

#include <functional>

namespace tqp {

const char* ValueTypeName(ValueType type) {
  switch (type) {
    case ValueType::kNull:
      return "null";
    case ValueType::kInt:
      return "int";
    case ValueType::kDouble:
      return "double";
    case ValueType::kString:
      return "string";
    case ValueType::kTime:
      return "time";
  }
  return "?";
}

int64_t Value::AsInt() const {
  TQP_CHECK(type_ == ValueType::kInt);
  return std::get<int64_t>(payload_);
}

double Value::AsDouble() const {
  TQP_CHECK(type_ == ValueType::kDouble);
  return std::get<double>(payload_);
}

const std::string& Value::AsString() const {
  TQP_CHECK(type_ == ValueType::kString);
  return std::get<std::string>(payload_);
}

TimePoint Value::AsTime() const {
  TQP_CHECK(type_ == ValueType::kTime);
  return std::get<TimeBox>(payload_).t;
}

double Value::NumericValue() const {
  switch (type_) {
    case ValueType::kInt:
      return static_cast<double>(std::get<int64_t>(payload_));
    case ValueType::kDouble:
      return std::get<double>(payload_);
    case ValueType::kTime:
      return static_cast<double>(std::get<TimeBox>(payload_).t);
    default:
      TQP_CHECK(false && "non-numeric value");
      return 0.0;
  }
}

namespace {

template <typename T>
int Cmp(const T& a, const T& b) {
  if (a < b) return -1;
  if (b < a) return 1;
  return 0;
}

}  // namespace

int Value::Compare(const Value& other) const {
  if (type_ != other.type_) {
    // Allow int/double/time cross-type numeric comparison so predicates like
    // "salary > 10" behave naturally; otherwise order by type rank.
    if (IsNumeric() && other.IsNumeric()) {
      return Cmp(NumericValue(), other.NumericValue());
    }
    return Cmp(static_cast<int>(type_), static_cast<int>(other.type_));
  }
  switch (type_) {
    case ValueType::kNull:
      return 0;
    case ValueType::kInt:
      return Cmp(std::get<int64_t>(payload_), std::get<int64_t>(other.payload_));
    case ValueType::kDouble:
      return Cmp(std::get<double>(payload_), std::get<double>(other.payload_));
    case ValueType::kString:
      return Cmp(std::get<std::string>(payload_),
                 std::get<std::string>(other.payload_));
    case ValueType::kTime:
      return Cmp(std::get<TimeBox>(payload_).t,
                 std::get<TimeBox>(other.payload_).t);
  }
  return 0;
}

size_t Value::Hash() const {
  size_t seed = static_cast<size_t>(type_) * 0x9e3779b97f4a7c15ULL;
  auto mix = [&seed](size_t h) {
    seed ^= h + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2);
  };
  switch (type_) {
    case ValueType::kNull:
      break;
    case ValueType::kInt:
      mix(std::hash<int64_t>()(std::get<int64_t>(payload_)));
      break;
    case ValueType::kDouble:
      mix(std::hash<double>()(std::get<double>(payload_)));
      break;
    case ValueType::kString:
      mix(std::hash<std::string>()(std::get<std::string>(payload_)));
      break;
    case ValueType::kTime:
      mix(std::hash<int64_t>()(std::get<TimeBox>(payload_).t));
      break;
  }
  return seed;
}

std::string Value::ToString() const {
  switch (type_) {
    case ValueType::kNull:
      return "NULL";
    case ValueType::kInt:
      return std::to_string(std::get<int64_t>(payload_));
    case ValueType::kDouble: {
      char buf[64];
      std::snprintf(buf, sizeof(buf), "%g", std::get<double>(payload_));
      return buf;
    }
    case ValueType::kString:
      return std::get<std::string>(payload_);
    case ValueType::kTime: {
      TimePoint t = std::get<TimeBox>(payload_).t;
      if (t == kMinTime) return "-inf";
      if (t == kMaxTime) return "+inf";
      return std::to_string(t);
    }
  }
  return "?";
}

}  // namespace tqp
