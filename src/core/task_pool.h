// A work-stealing morsel scheduler for data-parallel loops.
//
// WorkStealingPool runs ParallelFor(count, grain, body): the index range
// [0, count) is cut into morsels of `grain` indices, contiguous morsel
// blocks are pre-assigned to per-worker deques, and every worker drains its
// own queue front-first while idle workers steal from the back of a
// victim's queue. The calling thread participates as worker 0, so a pool
// constructed for N threads spawns only N-1.
//
// The scheduler moves work, never results: a morsel is identified by its
// index, so callers that stitch per-morsel outputs by morsel index get
// results that are byte-identical regardless of thread count, stealing
// order, or timing. That property is what lets the vectorized executor
// (src/vexec) keep its list-identity contract under parallelism — see the
// determinism notes in ARCHITECTURE.md.
//
// Built on the same primitives as the rest of the concurrency model
// (src/core/sync.h): plain mutexes per queue, one condition variable pair
// for job publication/completion. Morsel bodies must not call back into
// the pool (no nested ParallelFor).
#ifndef TQP_CORE_TASK_POOL_H_
#define TQP_CORE_TASK_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace tqp {

class WorkStealingPool {
 public:
  /// A pool executing loops over `threads` workers total (the caller counts
  /// as one; `threads - 1` std::threads are spawned). threads <= 1 spawns
  /// nothing and every ParallelFor runs inline.
  explicit WorkStealingPool(size_t threads);
  ~WorkStealingPool();

  WorkStealingPool(const WorkStealingPool&) = delete;
  WorkStealingPool& operator=(const WorkStealingPool&) = delete;

  /// Total worker count, including the calling thread.
  size_t workers() const { return threads_.size() + 1; }

  /// Runs body(begin, end) over every morsel [m*grain, min((m+1)*grain,
  /// count)) of [0, count), in parallel, and returns when all morsels are
  /// done. Morsel execution order is unspecified; bodies for different
  /// morsels run concurrently and must only touch disjoint state. Must be
  /// called from the owning thread only, and bodies must not re-enter the
  /// pool.
  void ParallelFor(size_t count, size_t grain,
                   const std::function<void(size_t, size_t)>& body);

  /// Morsels executed / morsels obtained by stealing, over the pool's
  /// lifetime. Telemetry only: steals depend on timing and are not
  /// deterministic.
  uint64_t morsels_executed() const {
    return morsels_.load(std::memory_order_relaxed);
  }
  uint64_t steals() const { return steals_.load(std::memory_order_relaxed); }

 private:
  /// One ParallelFor invocation: the morsel queues plus completion state.
  /// Held by shared_ptr so a straggler worker waking after the caller moved
  /// on still sees a live (drained) job, never a dangling pointer.
  struct Job {
    size_t grain = 0;
    size_t count = 0;
    const std::function<void(size_t, size_t)>* body = nullptr;
    struct Queue {
      std::mutex mu;
      std::deque<size_t> morsels;  // morsel indices, front = next to run
    };
    std::deque<Queue> queues;  // one per worker; deque: Queue is immovable
    std::atomic<size_t> remaining{0};
  };

  void WorkerLoop(size_t worker_id);
  /// Drains `job` as worker `worker_id`: own queue first, then steals.
  void RunWorker(Job& job, size_t worker_id);

  std::vector<std::thread> threads_;

  std::mutex job_mu_;
  std::condition_variable job_cv_;   // workers wait for a new generation
  std::condition_variable done_cv_;  // the caller waits for remaining == 0
  std::shared_ptr<Job> job_;         // null between ParallelFor calls
  uint64_t generation_ = 0;
  bool stop_ = false;

  std::atomic<uint64_t> morsels_{0};
  std::atomic<uint64_t> steals_{0};
};

}  // namespace tqp

#endif  // TQP_CORE_TASK_POOL_H_
