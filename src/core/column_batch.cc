#include "core/column_batch.h"

#include <functional>

namespace tqp {

namespace {

template <typename T>
int Cmp(const T& a, const T& b) {
  if (a < b) return -1;
  if (b < a) return 1;
  return 0;
}

ColumnStorage StorageFor(ValueType t) {
  switch (t) {
    case ValueType::kInt:
    case ValueType::kTime:
      return ColumnStorage::kInt64;
    case ValueType::kDouble:
      return ColumnStorage::kDouble;
    case ValueType::kString:
      return ColumnStorage::kString;
    case ValueType::kNull:
      return ColumnStorage::kUndecided;
  }
  return ColumnStorage::kUndecided;
}

}  // namespace

double CellRef::Numeric() const {
  switch (type) {
    case ValueType::kInt:
    case ValueType::kTime:
      return static_cast<double>(i);
    case ValueType::kDouble:
      return d;
    default:
      TQP_CHECK(false && "non-numeric value");
      return 0.0;
  }
}

int CellRef::Compare(const CellRef& a, const CellRef& b) {
  if (a.type != b.type) {
    if (a.IsNumeric() && b.IsNumeric()) return Cmp(a.Numeric(), b.Numeric());
    return Cmp(static_cast<int>(a.type), static_cast<int>(b.type));
  }
  switch (a.type) {
    case ValueType::kNull:
      return 0;
    case ValueType::kInt:
    case ValueType::kTime:
      return Cmp(a.i, b.i);
    case ValueType::kDouble:
      return Cmp(a.d, b.d);
    case ValueType::kString:
      return Cmp(*a.s, *b.s);
  }
  return 0;
}

uint64_t CellRef::Hash() const {
  // Bit-for-bit Value::Hash: the type-rank seed plus one payload mix.
  uint64_t seed = static_cast<uint64_t>(type) * 0x9e3779b97f4a7c15ULL;
  auto mix = [&seed](uint64_t h) {
    seed ^= h + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2);
  };
  switch (type) {
    case ValueType::kNull:
      break;
    case ValueType::kInt:
    case ValueType::kTime:
      mix(std::hash<int64_t>()(i));
      break;
    case ValueType::kDouble:
      mix(std::hash<double>()(d));
      break;
    case ValueType::kString:
      mix(std::hash<std::string>()(*s));
      break;
  }
  return seed;
}

uint64_t CellRef::ClassHash() const {
  if (type == ValueType::kNull) return 0;
  if (IsNumeric()) {
    // One shared seed for all numeric types; payload hashed as double so
    // every Compare-equal numeric cell hashes equally.
    double v = Numeric();
    uint64_t seed = 0x6e756d6572696331ULL;  // "numeric1"
    if (v != v) return seed ^ 0x6e616eULL;  // all NaNs Compare equal
    if (v == 0.0) v = 0.0;                  // collapse -0.0 into +0.0
    seed ^= std::hash<double>()(v) + 0x9e3779b97f4a7c15ULL + (seed << 6) +
            (seed >> 2);
    return seed;
  }
  return Hash();  // strings never Compare-equal a non-string
}

Value CellRef::ToValue() const {
  switch (type) {
    case ValueType::kNull:
      return Value::Null();
    case ValueType::kInt:
      return Value::Int(i);
    case ValueType::kTime:
      return Value::Time(i);
    case ValueType::kDouble:
      return Value::Double(d);
    case ValueType::kString:
      return Value::String(*s);
  }
  return Value::Null();
}

CellRef CellRef::Of(const Value& v) {
  CellRef c;
  c.type = v.type();
  switch (v.type()) {
    case ValueType::kNull:
      break;
    case ValueType::kInt:
      c.i = v.AsInt();
      break;
    case ValueType::kTime:
      c.i = v.AsTime();
      break;
    case ValueType::kDouble:
      c.d = v.AsDouble();
      break;
    case ValueType::kString:
      c.s = &v.AsString();
      break;
  }
  return c;
}

ColumnVec::ColumnVec(ValueType declared) { DecideStorage(declared); }

void ColumnVec::DecideStorage(ValueType t) {
  if (storage_ != ColumnStorage::kUndecided || t == ValueType::kNull) return;
  storage_ = StorageFor(t);
  declared_ = t;
  // Backfill the typed vector with placeholders for any all-null prefix.
  switch (storage_) {
    case ColumnStorage::kInt64:
      ints_.resize(size_, 0);
      break;
    case ColumnStorage::kDouble:
      doubles_.resize(size_, 0.0);
      break;
    case ColumnStorage::kString:
      strings_.resize(size_);
      break;
    default:
      break;
  }
}

void ColumnVec::PromoteToBoxed() {
  if (storage_ == ColumnStorage::kBoxed) return;
  boxed_.clear();
  boxed_.reserve(size_);
  for (size_t r = 0; r < size_; ++r) boxed_.push_back(ValueAt(r));
  ints_.clear();
  doubles_.clear();
  strings_.clear();
  storage_ = ColumnStorage::kBoxed;
}

void ColumnVec::Reserve(size_t n) {
  switch (storage_) {
    case ColumnStorage::kInt64:
      ints_.reserve(n);
      break;
    case ColumnStorage::kDouble:
      doubles_.reserve(n);
      break;
    case ColumnStorage::kString:
      strings_.reserve(n);
      break;
    case ColumnStorage::kBoxed:
      boxed_.reserve(n);
      break;
    case ColumnStorage::kUndecided:
      break;
  }
}

void ColumnVec::EnsureNulls() {
  if (nulls_.empty()) nulls_.assign(size_, 0);
}

void ColumnVec::AppendNull() {
  EnsureNulls();
  nulls_.push_back(1);
  switch (storage_) {
    case ColumnStorage::kInt64:
      ints_.push_back(0);
      break;
    case ColumnStorage::kDouble:
      doubles_.push_back(0.0);
      break;
    case ColumnStorage::kString:
      strings_.emplace_back();
      break;
    case ColumnStorage::kBoxed:
      boxed_.push_back(Value::Null());
      break;
    case ColumnStorage::kUndecided:
      break;  // payload vectors stay empty until a type is decided
  }
  ++size_;
}

void ColumnVec::AppendCell(const CellRef& c) {
  if (c.is_null()) {
    AppendNull();
    return;
  }
  DecideStorage(c.type);
  bool fits = false;
  switch (storage_) {
    case ColumnStorage::kInt64:
      fits = c.type == declared_ &&
             (c.type == ValueType::kInt || c.type == ValueType::kTime);
      break;
    case ColumnStorage::kDouble:
      fits = c.type == ValueType::kDouble;
      break;
    case ColumnStorage::kString:
      fits = c.type == ValueType::kString;
      break;
    case ColumnStorage::kBoxed:
    case ColumnStorage::kUndecided:
      fits = false;
      break;
  }
  if (!fits && storage_ != ColumnStorage::kBoxed) PromoteToBoxed();
  switch (storage_) {
    case ColumnStorage::kInt64:
      ints_.push_back(c.i);
      break;
    case ColumnStorage::kDouble:
      doubles_.push_back(c.d);
      break;
    case ColumnStorage::kString:
      strings_.push_back(*c.s);
      break;
    case ColumnStorage::kBoxed:
      boxed_.push_back(c.ToValue());
      break;
    case ColumnStorage::kUndecided:
      TQP_CHECK(false && "unreachable: non-null cell decides storage");
      break;
  }
  if (!nulls_.empty()) nulls_.push_back(0);
  ++size_;
}

void ColumnVec::AppendValue(const Value& v) { AppendCell(CellRef::Of(v)); }

CellRef ColumnVec::At(size_t row) const {
  CellRef c;
  if (IsNull(row)) return c;
  switch (storage_) {
    case ColumnStorage::kInt64:
      c.type = declared_;
      c.i = ints_[row];
      break;
    case ColumnStorage::kDouble:
      c.type = ValueType::kDouble;
      c.d = doubles_[row];
      break;
    case ColumnStorage::kString:
      c.type = ValueType::kString;
      c.s = &strings_[row];
      break;
    case ColumnStorage::kBoxed:
      return CellRef::Of(boxed_[row]);
    case ColumnStorage::kUndecided:
      break;  // only nulls were ever appended
  }
  return c;
}

void ColumnVec::AppendFrom(const ColumnVec& src, size_t row) {
  if (src.IsNull(row)) {
    AppendNull();
    return;
  }
  // Fast path: same typed storage, no conversion.
  if (storage_ == src.storage_ && declared_ == src.declared_) {
    switch (storage_) {
      case ColumnStorage::kInt64:
        ints_.push_back(src.ints_[row]);
        break;
      case ColumnStorage::kDouble:
        doubles_.push_back(src.doubles_[row]);
        break;
      case ColumnStorage::kString:
        strings_.push_back(src.strings_[row]);
        break;
      case ColumnStorage::kBoxed:
        boxed_.push_back(src.boxed_[row]);
        break;
      case ColumnStorage::kUndecided:
        AppendNull();
        return;
    }
    if (!nulls_.empty()) nulls_.push_back(0);
    ++size_;
    return;
  }
  AppendCell(src.At(row));
}

void ColumnVec::AppendRangeFrom(const ColumnVec& src, size_t begin,
                                size_t end) {
  for (size_t r = begin; r < end; ++r) AppendFrom(src, r);
}

void ColumnVec::AppendGather(const ColumnVec& src, const uint32_t* rows,
                             size_t n) {
  // Gather with a bulk fast path when both columns share typed storage and
  // the source has no nulls in the gathered set.
  if (storage_ == src.storage_ && declared_ == src.declared_ &&
      src.nulls_.empty() && nulls_.empty()) {
    switch (storage_) {
      case ColumnStorage::kInt64:
        ints_.reserve(ints_.size() + n);
        for (size_t k = 0; k < n; ++k) ints_.push_back(src.ints_[rows[k]]);
        size_ += n;
        return;
      case ColumnStorage::kDouble:
        doubles_.reserve(doubles_.size() + n);
        for (size_t k = 0; k < n; ++k)
          doubles_.push_back(src.doubles_[rows[k]]);
        size_ += n;
        return;
      case ColumnStorage::kString:
        strings_.reserve(strings_.size() + n);
        for (size_t k = 0; k < n; ++k)
          strings_.push_back(src.strings_[rows[k]]);
        size_ += n;
        return;
      default:
        break;
    }
  }
  for (size_t k = 0; k < n; ++k) AppendFrom(src, rows[k]);
}

uint64_t ColumnVec::ApproxBytes() const {
  uint64_t bytes = nulls_.size();
  bytes += ints_.size() * sizeof(int64_t);
  bytes += doubles_.size() * sizeof(double);
  for (const std::string& s : strings_) bytes += sizeof(std::string) + s.size();
  // Boxed cells: the Value object plus a string-payload estimate.
  bytes += boxed_.size() * 48;
  return bytes;
}

ColumnTable::ColumnTable(Schema schema) : schema_(std::move(schema)) {
  cols_.reserve(schema_.size());
  for (size_t i = 0; i < schema_.size(); ++i) {
    cols_.emplace_back(schema_.attr(i).type);
  }
  t1_ = schema_.T1Index();
  t2_ = schema_.T2Index();
}

void ColumnTable::CommitRows(size_t n) {
  rows_ += n;
  for (const ColumnVec& c : cols_) {
    TQP_DCHECK(c.size() == rows_);
    (void)c;
  }
}

ColumnTable ColumnTable::FromRelation(const Relation& r) {
  ColumnTable out(r.schema());
  for (ColumnVec& c : out.cols_) c.Reserve(r.size());
  for (const Tuple& t : r.tuples()) {
    for (size_t i = 0; i < out.cols_.size(); ++i) {
      out.cols_[i].AppendValue(t.at(i));
    }
  }
  out.rows_ = r.size();
  return out;
}

Relation ColumnTable::ToRelation() const {
  Relation out(schema_);
  out.mutable_tuples().reserve(rows_);
  for (size_t r = 0; r < rows_; ++r) {
    std::vector<Value> vals;
    vals.reserve(cols_.size());
    for (const ColumnVec& c : cols_) vals.push_back(c.ValueAt(r));
    out.mutable_tuples().emplace_back(std::move(vals));
  }
  return out;
}

uint64_t ColumnTable::RowHash(size_t row) const {
  // Bit-for-bit Tuple::Hash over the row's cells.
  uint64_t seed = 0x51ab1e5;
  for (const ColumnVec& c : cols_) {
    seed ^= c.At(row).Hash() + 0x9e3779b97f4a7c15ULL + (seed << 6) +
            (seed >> 2);
  }
  return seed;
}

int ColumnTable::RowCompare(const ColumnTable& a, size_t ra,
                            const ColumnTable& b, size_t rb) {
  size_t n = std::min(a.cols_.size(), b.cols_.size());
  for (size_t i = 0; i < n; ++i) {
    int c = CellRef::Compare(a.cols_[i].At(ra), b.cols_[i].At(rb));
    if (c != 0) return c;
  }
  if (a.cols_.size() < b.cols_.size()) return -1;
  if (a.cols_.size() > b.cols_.size()) return 1;
  return 0;
}

uint64_t ColumnTable::RowHashNonTemporal(size_t row) const {
  // Class keys compare with RowCompareNonTemporal (cross-type numeric
  // equality), so cells must contribute their Compare-consistent ClassHash
  // — not Value::Hash, which is type-seeded.
  uint64_t seed = 0x51ab1e5;
  for (size_t i = 0; i < cols_.size(); ++i) {
    if (static_cast<int>(i) == t1_ || static_cast<int>(i) == t2_) continue;
    seed ^= cols_[i].At(row).ClassHash() + 0x9e3779b97f4a7c15ULL +
            (seed << 6) + (seed >> 2);
  }
  return seed;
}

int ColumnTable::RowCompareNonTemporal(const ColumnTable& a, size_t ra,
                                       const ColumnTable& b, size_t rb) {
  TQP_DCHECK(a.cols_.size() == b.cols_.size());
  for (size_t i = 0; i < a.cols_.size(); ++i) {
    if (static_cast<int>(i) == a.t1_ || static_cast<int>(i) == a.t2_) continue;
    int c = CellRef::Compare(a.cols_[i].At(ra), b.cols_[i].At(rb));
    if (c != 0) return c;
  }
  return 0;
}

Period ColumnTable::RowPeriod(size_t row) const {
  TQP_CHECK(t1_ >= 0 && t2_ >= 0);
  return Period(cols_[static_cast<size_t>(t1_)].At(row).i,
                cols_[static_cast<size_t>(t2_)].At(row).i);
}

uint64_t ColumnTable::ApproxBytes() const {
  uint64_t bytes = 0;
  for (const ColumnVec& c : cols_) bytes += c.ApproxBytes();
  return bytes;
}

void ColumnTable::AppendRow(const ColumnTable& src, size_t row) {
  TQP_DCHECK(cols_.size() == src.cols_.size());
  for (size_t i = 0; i < cols_.size(); ++i) cols_[i].AppendFrom(src.cols_[i], row);
  ++rows_;
}

void ColumnTable::AppendRange(const ColumnTable& src, size_t begin,
                              size_t end) {
  TQP_DCHECK(cols_.size() == src.cols_.size());
  for (size_t i = 0; i < cols_.size(); ++i) {
    cols_[i].AppendRangeFrom(src.cols_[i], begin, end);
  }
  rows_ += end - begin;
}

void ColumnTable::AppendGather(const ColumnTable& src,
                               const std::vector<uint32_t>& rows) {
  TQP_DCHECK(cols_.size() == src.cols_.size());
  for (size_t i = 0; i < cols_.size(); ++i) {
    cols_[i].AppendGather(src.cols_[i], rows.data(), rows.size());
  }
  rows_ += rows.size();
}

}  // namespace tqp
