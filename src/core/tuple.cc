#include "core/tuple.h"

namespace tqp {

int Tuple::Compare(const Tuple& o) const {
  size_t n = std::min(values_.size(), o.values_.size());
  for (size_t i = 0; i < n; ++i) {
    int c = values_[i].Compare(o.values_[i]);
    if (c != 0) return c;
  }
  if (values_.size() < o.values_.size()) return -1;
  if (values_.size() > o.values_.size()) return 1;
  return 0;
}

size_t Tuple::Hash() const {
  size_t seed = 0x51ab1e5;
  for (const Value& v : values_) {
    seed ^= v.Hash() + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2);
  }
  return seed;
}

std::string Tuple::ToString() const {
  std::string out = "(";
  for (size_t i = 0; i < values_.size(); ++i) {
    if (i > 0) out += ", ";
    out += values_[i].ToString();
  }
  out += ")";
  return out;
}

Period TuplePeriod(const Tuple& t, const Schema& schema) {
  int i1 = schema.T1Index();
  int i2 = schema.T2Index();
  TQP_CHECK(i1 >= 0 && i2 >= 0);
  return Period(t.at(static_cast<size_t>(i1)).AsTime(),
                t.at(static_cast<size_t>(i2)).AsTime());
}

void SetTuplePeriod(Tuple* t, const Schema& schema, const Period& p) {
  int i1 = schema.T1Index();
  int i2 = schema.T2Index();
  TQP_CHECK(i1 >= 0 && i2 >= 0);
  t->at(static_cast<size_t>(i1)) = Value::Time(p.begin);
  t->at(static_cast<size_t>(i2)) = Value::Time(p.end);
}

bool ValueEquivalent(const Tuple& a, const Tuple& b, const Schema& schema) {
  return CompareNonTemporal(a, b, schema) == 0;
}

int CompareNonTemporal(const Tuple& a, const Tuple& b, const Schema& schema) {
  int i1 = schema.T1Index();
  int i2 = schema.T2Index();
  for (size_t i = 0; i < schema.size(); ++i) {
    if (static_cast<int>(i) == i1 || static_cast<int>(i) == i2) continue;
    int c = a.at(i).Compare(b.at(i));
    if (c != 0) return c;
  }
  return 0;
}

}  // namespace tqp
