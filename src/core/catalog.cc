#include "core/catalog.h"

namespace tqp {

const char* SiteName(Site s) {
  return s == Site::kDbms ? "DBMS" : "STRATUM";
}

Status Catalog::Register(const std::string& name, CatalogEntry entry) {
  if (entries_.count(name) > 0) {
    return Status::InvalidArgument("relation '" + name + "' already registered");
  }
  TQP_RETURN_IF_ERROR(Verify(name, entry));
  entry.data.set_order(entry.order);
  entries_.emplace(name, std::move(entry));
  relation_versions_[name] = ++version_;
  return Status::OK();
}

Status Catalog::Update(const std::string& name, CatalogEntry entry) {
  TQP_RETURN_IF_ERROR(Verify(name, entry));
  entry.data.set_order(entry.order);
  entries_[name] = std::move(entry);
  relation_versions_[name] = ++version_;
  return Status::OK();
}

bool Catalog::Drop(const std::string& name) {
  if (entries_.erase(name) == 0) return false;
  // Tombstone: the drop is a mutation of `name`, visible to per-relation
  // consumers exactly like an update.
  relation_versions_[name] = ++version_;
  return true;
}

uint64_t Catalog::relation_version(const std::string& name) const {
  auto it = relation_versions_.find(name);
  return it == relation_versions_.end() ? 0 : it->second;
}

Status Catalog::Verify(const std::string& name,
                       const CatalogEntry& entry) const {
  // Verify declared metadata so downstream precondition checks can trust it.
  if (entry.duplicate_free && entry.data.HasDuplicates()) {
    return Status::InvalidArgument("relation '" + name +
                                   "' declared duplicate-free but has duplicates");
  }
  if (entry.snapshot_duplicate_free) {
    if (entry.data.HasSnapshotDuplicates()) {
      return Status::InvalidArgument(
          "relation '" + name +
          "' declared snapshot-duplicate-free but has snapshot duplicates");
    }
  }
  if (entry.coalesced) {
    if (!entry.data.IsTemporal() || !entry.data.IsCoalesced()) {
      return Status::InvalidArgument("relation '" + name +
                                     "' declared coalesced but is not");
    }
  }
  if (!entry.order.empty() && !entry.data.IsSortedBy(entry.order)) {
    return Status::InvalidArgument("relation '" + name +
                                   "' declared order does not hold");
  }
  return Status::OK();
}

Status Catalog::RegisterWithInferredFlags(const std::string& name,
                                          Relation data, Site site) {
  CatalogEntry entry;
  entry.duplicate_free = !data.HasDuplicates();
  entry.snapshot_duplicate_free =
      data.IsTemporal() ? !data.HasSnapshotDuplicates() : entry.duplicate_free;
  entry.coalesced = data.IsTemporal() && data.IsCoalesced();
  entry.site = site;
  entry.data = std::move(data);
  return Register(name, std::move(entry));
}

bool Catalog::Contains(const std::string& name) const {
  return entries_.count(name) > 0;
}

const CatalogEntry* Catalog::Find(const std::string& name) const {
  auto it = entries_.find(name);
  return it == entries_.end() ? nullptr : &it->second;
}

std::vector<std::string> Catalog::Names() const {
  std::vector<std::string> out;
  for (const auto& [name, _] : entries_) out.push_back(name);
  return out;
}

}  // namespace tqp
