// The per-plan-node execution profile behind EXPLAIN ANALYZE.
//
// Both executors (exec/evaluator recursion and vexec pipelines) fill a
// ProfileNode tree mirroring the plan shape when profiling is requested:
// inclusive wall time, rows in/out, vexec batch counts, result-cache hit and
// backend-pushdown flags per node. The tree lives in core (not algebra) so
// the executors can build it and algebra/printer.cc can render it without a
// layering inversion; QueryResult carries it as a shared_ptr so results stay
// copyable.
//
// Collection cost is per plan node (two clock reads and a handful of field
// stores), never per row — profiling disabled is a null-pointer test.
#ifndef TQP_CORE_PROFILE_H_
#define TQP_CORE_PROFILE_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace tqp {

struct ProfileNode {
  std::string op;    // PlanNode::Describe() — operator with its arguments
  std::string kind;  // OpKindName — the bare operator kind
  uint64_t wall_ns = 0;  // inclusive: this operator and everything below it
  int64_t rows_in = 0;   // sum over inputs (0 for scans)
  int64_t rows_out = 0;
  int64_t batches = 0;   // vexec only: column batches processed at this node
  bool result_cache_hit = false;  // subtree result spliced from the cache
  bool backend_pushed = false;    // subtree executed by the DBMS backend
  std::vector<ProfileNode> children;

  /// Wall time net of children — what "hottest operator" rankings use.
  /// Clamped at 0: children measured on other threads (vexec morsels) can
  /// make the naive difference negative.
  uint64_t SelfNs() const;

  /// {"op","kind","wall_ns","self_ns","rows_in","rows_out","batches",
  ///  "cache_hit","pushed","children":[...]} — recursively.
  std::string ToJson() const;
};

/// Top-k operators by self time, hottest first: {kind, self_ns} pairs
/// flattened over the whole tree. Ties broken by kind then op for
/// deterministic output. Feeds the slow-query log's top-3.
std::vector<std::pair<std::string, uint64_t>> HottestOperators(
    const ProfileNode& root, size_t k);

}  // namespace tqp

#endif  // TQP_CORE_PROFILE_H_
