// Temp-file spilling for bounded-memory execution (src/vexec).
//
// A SpillFile is an anonymous temporary file (std::tmpfile: unlinked at
// creation, reclaimed by the OS even on crash) written append-only and read
// back by absolute offset. The vectorized executor spills large
// materializations — external-merge-sort runs and partitioned class/group
// tables — as *row records*: each record is a length-prefixed, exact
// encoding of one ColumnTable row (or an arbitrary small struct, for
// partition bookkeeping), so a spilled row decodes to the bit-identical
// Value sequence it was encoded from. That exactness is what keeps the
// executor's list-identity contract intact across the spill boundary.
//
// Record layout: u32 payload length, then per cell a 1-byte ValueType tag
// followed by the payload — int64 for kInt/kTime, the 8-byte bit pattern
// for kDouble (NaN payloads and -0.0 survive), u32 length + bytes for
// kString, nothing for kNull. Integers are native-endian: a spill file
// never outlives its process.
//
// All spill I/O is single-threaded by design (the executor writes runs and
// reads partitions from the driving thread); SpillFile is not thread-safe.
#ifndef TQP_CORE_SPILL_H_
#define TQP_CORE_SPILL_H_

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "core/column_batch.h"
#include "core/value.h"

namespace tqp {

/// An append-only anonymous temp file with positioned reads.
class SpillFile {
 public:
  SpillFile();
  ~SpillFile();

  SpillFile(const SpillFile&) = delete;
  SpillFile& operator=(const SpillFile&) = delete;

  /// False when the temp file could not be created (no /tmp, fd limit);
  /// callers fall back to in-memory execution.
  bool ok() const { return file_ != nullptr; }

  /// Appends `n` bytes; returns the offset the write started at.
  uint64_t Append(const void* data, size_t n);

  /// Reads `n` bytes starting at `offset` (must be fully inside what was
  /// written).
  void ReadAt(uint64_t offset, void* out, size_t n);

  uint64_t bytes_written() const { return bytes_written_; }

 private:
  std::FILE* file_ = nullptr;
  uint64_t bytes_written_ = 0;
};

/// Appends the length-prefixed encoding of row `row` of `t` to `out`.
void EncodeSpillRow(const ColumnTable& t, size_t row, std::string* out);

/// Decodes one length-prefixed row record at `data`. Returns the bytes
/// consumed, or 0 if fewer than `avail` bytes form a complete record (the
/// reader refills and retries). The decoded cells are appended to `*row`
/// (cleared first).
size_t DecodeSpillRow(const uint8_t* data, size_t avail,
                      std::vector<Value>* row);

/// Streams the row records of one contiguous file region [offset,
/// offset + bytes) through a fixed-size read buffer.
class SpillRegionReader {
 public:
  SpillRegionReader(SpillFile* file, uint64_t offset, uint64_t bytes,
                    size_t buffer_bytes = 256 * 1024);

  /// Decodes the next record into *row; false when the region is exhausted.
  bool Next(std::vector<Value>* row);

 private:
  SpillFile* file_;
  uint64_t next_read_;  // file offset of the first byte not yet buffered
  uint64_t region_end_;
  std::vector<uint8_t> buf_;
  size_t buf_pos_ = 0;  // consumed prefix of buf_
  size_t buf_len_ = 0;  // valid bytes in buf_
};

}  // namespace tqp

#endif  // TQP_CORE_SPILL_H_
