#include "core/task_pool.h"

#include <algorithm>

namespace tqp {

WorkStealingPool::WorkStealingPool(size_t threads) {
  if (threads <= 1) return;
  threads_.reserve(threads - 1);
  for (size_t i = 1; i < threads; ++i) {
    threads_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

WorkStealingPool::~WorkStealingPool() {
  {
    std::lock_guard<std::mutex> lock(job_mu_);
    stop_ = true;
  }
  job_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void WorkStealingPool::ParallelFor(
    size_t count, size_t grain,
    const std::function<void(size_t, size_t)>& body) {
  if (count == 0) return;
  if (grain == 0) grain = 1;
  const size_t num_morsels = (count + grain - 1) / grain;
  if (threads_.empty() || num_morsels <= 1) {
    for (size_t m = 0; m < num_morsels; ++m) {
      body(m * grain, std::min(count, (m + 1) * grain));
    }
    morsels_.fetch_add(num_morsels, std::memory_order_relaxed);
    return;
  }

  auto job = std::make_shared<Job>();
  job->grain = grain;
  job->count = count;
  job->body = &body;
  const size_t workers = threads_.size() + 1;
  // Contiguous pre-assignment: worker w starts on the w-th block of morsel
  // indices, so under no stealing each worker touches one contiguous input
  // region (sequential access); stealing takes from the *back* of a victim,
  // the work its owner would reach last.
  for (size_t w = 0; w < workers; ++w) {
    job->queues.emplace_back();
    size_t lo = w * num_morsels / workers;
    size_t hi = (w + 1) * num_morsels / workers;
    for (size_t m = lo; m < hi; ++m) job->queues.back().morsels.push_back(m);
  }
  job->remaining.store(num_morsels, std::memory_order_relaxed);

  {
    std::lock_guard<std::mutex> lock(job_mu_);
    job_ = job;
    ++generation_;
  }
  job_cv_.notify_all();

  RunWorker(*job, 0);

  {
    std::unique_lock<std::mutex> lock(job_mu_);
    done_cv_.wait(lock, [&] {
      return job->remaining.load(std::memory_order_acquire) == 0;
    });
    job_.reset();
  }
}

void WorkStealingPool::WorkerLoop(size_t worker_id) {
  uint64_t seen_generation = 0;
  for (;;) {
    std::shared_ptr<Job> job;
    {
      std::unique_lock<std::mutex> lock(job_mu_);
      job_cv_.wait(lock, [&] {
        return stop_ || generation_ != seen_generation;
      });
      if (stop_) return;
      seen_generation = generation_;
      job = job_;
    }
    if (job != nullptr) RunWorker(*job, worker_id);
  }
}

void WorkStealingPool::RunWorker(Job& job, size_t worker_id) {
  const size_t workers = job.queues.size();
  if (worker_id >= workers) return;  // straggler from an older, wider job
  uint64_t ran = 0;
  uint64_t stolen = 0;
  for (;;) {
    size_t morsel = 0;
    bool have = false;
    {
      Job::Queue& own = job.queues[worker_id];
      std::lock_guard<std::mutex> lock(own.mu);
      if (!own.morsels.empty()) {
        morsel = own.morsels.front();
        own.morsels.pop_front();
        have = true;
      }
    }
    if (!have) {
      for (size_t off = 1; off < workers && !have; ++off) {
        Job::Queue& victim = job.queues[(worker_id + off) % workers];
        std::lock_guard<std::mutex> lock(victim.mu);
        if (!victim.morsels.empty()) {
          morsel = victim.morsels.back();
          victim.morsels.pop_back();
          have = true;
          ++stolen;
        }
      }
    }
    if (!have) break;

    size_t begin = morsel * job.grain;
    size_t end = std::min(job.count, begin + job.grain);
    (*job.body)(begin, end);
    ++ran;

    if (job.remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      // Last morsel of the job: wake the caller. The lock pairs with the
      // caller's predicate read so the notify cannot be missed.
      std::lock_guard<std::mutex> lock(job_mu_);
      done_cv_.notify_all();
    }
  }
  if (ran != 0) morsels_.fetch_add(ran, std::memory_order_relaxed);
  if (stolen != 0) steals_.fetch_add(stolen, std::memory_order_relaxed);
}

}  // namespace tqp
