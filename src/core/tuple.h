// Fixed-width tuples (Definition 2.2).
#ifndef TQP_CORE_TUPLE_H_
#define TQP_CORE_TUPLE_H_

#include <string>
#include <vector>

#include "core/period.h"
#include "core/schema.h"
#include "core/value.h"

namespace tqp {

/// A tuple is a fixed-width vector of values, positionally aligned with a
/// Schema. Tuples do not own their schema; the enclosing Relation does.
class Tuple {
 public:
  Tuple() = default;
  explicit Tuple(std::vector<Value> values) : values_(std::move(values)) {}

  size_t size() const { return values_.size(); }
  const Value& at(size_t i) const { return values_[i]; }
  Value& at(size_t i) { return values_[i]; }
  const std::vector<Value>& values() const { return values_; }

  void push_back(Value v) { values_.push_back(std::move(v)); }

  /// Full-tuple equality (all attributes, including time attributes).
  bool operator==(const Tuple& o) const { return values_ == o.values_; }
  bool operator!=(const Tuple& o) const { return !(*this == o); }

  /// Lexicographic three-way comparison across all attributes.
  int Compare(const Tuple& o) const;
  bool operator<(const Tuple& o) const { return Compare(o) < 0; }

  size_t Hash() const;

  std::string ToString() const;

 private:
  std::vector<Value> values_;
};

/// Returns the valid-time period of a tuple under a temporal schema.
Period TuplePeriod(const Tuple& t, const Schema& schema);

/// Replaces the valid-time period of a tuple (schema must be temporal).
void SetTuplePeriod(Tuple* t, const Schema& schema, const Period& p);

/// Value equivalence (Section 2.1): equality on all non-time attributes.
/// For snapshot schemas this degenerates to full equality.
bool ValueEquivalent(const Tuple& a, const Tuple& b, const Schema& schema);

/// Compares two tuples on the non-time attributes only.
int CompareNonTemporal(const Tuple& a, const Tuple& b, const Schema& schema);

}  // namespace tqp

#endif  // TQP_CORE_TUPLE_H_
