// Half-open time periods [begin, end) over the chronon domain.
//
// The paper mandates fixed-width tuples timestamped with periods (not temporal
// elements) and granularity independence: every definition below touches only
// the begin/end endpoints (Section 2.2). A period is valid iff begin < end.
#ifndef TQP_CORE_PERIOD_H_
#define TQP_CORE_PERIOD_H_

#include <algorithm>
#include <string>
#include <vector>

#include "core/value.h"

namespace tqp {

/// A half-open (closed-open) time period [begin, end).
struct Period {
  TimePoint begin = 0;
  TimePoint end = 0;

  Period() = default;
  Period(TimePoint b, TimePoint e) : begin(b), end(e) {}

  /// A period is valid iff it is non-empty.
  bool Valid() const { return begin < end; }

  /// Number of chronons covered.
  int64_t Duration() const { return end - begin; }

  /// Does the period contain time point t?
  bool Contains(TimePoint t) const { return begin <= t && t < end; }

  /// Does the period fully contain the other period?
  bool Contains(const Period& o) const { return begin <= o.begin && o.end <= end; }

  /// Do the two periods share at least one time point?
  bool Overlaps(const Period& o) const { return begin < o.end && o.begin < end; }

  /// Allen "meets": this period ends exactly where the other begins, or vice
  /// versa. Adjacent periods are merged by coalescing (Section 2.4).
  bool Adjacent(const Period& o) const { return end == o.begin || o.end == begin; }

  /// Intersection; empty (invalid) period when disjoint.
  Period Intersect(const Period& o) const {
    return Period(std::max(begin, o.begin), std::min(end, o.end));
  }

  /// Smallest period covering both; only meaningful when Overlaps or Adjacent.
  Period Merge(const Period& o) const {
    return Period(std::min(begin, o.begin), std::max(end, o.end));
  }

  /// Period difference: this minus o, yielding 0, 1, or 2 fragments (in
  /// ascending order). This is the building block of rdupT and \T.
  std::vector<Period> Subtract(const Period& o) const {
    std::vector<Period> out;
    if (!Overlaps(o)) {
      out.push_back(*this);
      return out;
    }
    if (begin < o.begin) out.emplace_back(begin, o.begin);
    if (o.end < end) out.emplace_back(o.end, end);
    return out;
  }

  bool operator==(const Period& o) const {
    return begin == o.begin && end == o.end;
  }

  std::string ToString() const {
    return "[" + Value::Time(begin).ToString() + "," +
           Value::Time(end).ToString() + ")";
  }
};

/// Subtracts every period in `subtrahends` from `p`. Returns the surviving
/// fragments in ascending order. Used by \T on snapshot-duplicate-free left
/// arguments ("period minus union of matching right periods").
std::vector<Period> SubtractAll(const Period& p,
                                const std::vector<Period>& subtrahends);

/// Coalesces a set of periods into the minimal set of maximal periods whose
/// union is the same (merging overlapping and adjacent periods). Result is in
/// ascending order.
std::vector<Period> NormalizePeriods(std::vector<Period> periods);

}  // namespace tqp

#endif  // TQP_CORE_PERIOD_H_
