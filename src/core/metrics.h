// A central registry of named counters, gauges, and histograms — the one
// place the flat stats structs (ExecStats, EngineStats, ServerStats) publish
// into, and the one surface the service's `\metrics` frame renders from.
//
// Update paths are lock-free: Counter::Add and Gauge::Set are single relaxed
// atomics, histograms are core/latency_histogram.h (lock-free HDR log-linear
// buckets). The registry mutex guards only name→entry resolution and
// rendering; hot paths resolve their metric pointers once and keep them —
// entries are never removed, so a resolved pointer is valid for the
// registry's lifetime.
//
// Rendering is deterministic (entries kept in a sorted map) in two formats:
// Prometheus text exposition (histograms as summaries with quantile labels)
// and the repo's JSON shape via core/json.h.
#ifndef TQP_CORE_METRICS_H_
#define TQP_CORE_METRICS_H_

#include <atomic>
#include <cstdint>
#include <cstring>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "core/latency_histogram.h"

namespace tqp {

/// Monotonically increasing event count. Lock-free.
class MetricCounter {
 public:
  void Add(uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t value() const { return v_.load(std::memory_order_relaxed); }
  void Reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> v_{0};
};

/// Point-in-time value (set, not accumulated). Lock-free.
class MetricGauge {
 public:
  void Set(double v) {
    uint64_t bits;
    static_assert(sizeof(bits) == sizeof(v), "double must be 64-bit");
    std::memcpy(&bits, &v, sizeof(bits));
    bits_.store(bits, std::memory_order_relaxed);
  }
  double value() const {
    uint64_t bits = bits_.load(std::memory_order_relaxed);
    double v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }

 private:
  std::atomic<uint64_t> bits_{0};
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// The process-wide registry the Engine and service publish into.
  /// Tests that need isolation construct their own instance instead.
  static MetricsRegistry& Global();

  /// Resolve-or-create by name. The returned pointer is stable for the
  /// registry's lifetime; resolving an existing name with a different metric
  /// kind aborts (it is a programming error, like a type pun).
  MetricCounter* GetCounter(const std::string& name,
                            const std::string& help = "");
  MetricGauge* GetGauge(const std::string& name, const std::string& help = "");
  LatencyHistogram* GetHistogram(const std::string& name,
                                 const std::string& help = "");

  size_t size() const;

  /// Prometheus text exposition format: # HELP / # TYPE headers, counters
  /// and gauges as plain samples, histograms as summaries
  /// ({quantile="0.5"|"0.9"|"0.99"|"0.999"} + _sum + _count). Names render
  /// in sorted order, so two renders of the same state are byte-identical.
  std::string ToPrometheusText() const;

  /// {"name":{"type":"counter","value":N}, "name":{"type":"histogram",
  ///  ...latency_histogram shape...}, ...} — same sorted order.
  std::string ToJson() const;

  /// Zeroes every registered metric (entries and resolved pointers stay
  /// valid). Test support; not safe against concurrent updates.
  void ResetAll();

 private:
  enum class Kind { kCounter, kGauge, kHistogram };
  struct Entry {
    Kind kind;
    std::string help;
    std::unique_ptr<MetricCounter> counter;
    std::unique_ptr<MetricGauge> gauge;
    std::unique_ptr<LatencyHistogram> histogram;
  };

  Entry* GetEntry(const std::string& name, Kind kind, const std::string& help);

  mutable std::mutex mu_;
  std::map<std::string, Entry> entries_;
};

}  // namespace tqp

#endif  // TQP_CORE_METRICS_H_
