// Common primitives: status/result types and assertion macros.
//
// The public API follows the storage-engine idiom of returning Status/Result
// for fallible user-facing paths (parsing, plan validation, evaluation of
// user-supplied plans); internal invariants use TQP_DCHECK.
#ifndef TQP_CORE_COMMON_H_
#define TQP_CORE_COMMON_H_

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <optional>
#include <string>
#include <utility>

namespace tqp {

/// Outcome of a fallible operation. Either OK or an error with a message.
class Status {
 public:
  Status() : ok_(true) {}

  static Status OK() { return Status(); }
  static Status Error(std::string msg) { return Status(false, std::move(msg)); }
  static Status InvalidArgument(std::string msg) {
    return Status(false, "invalid argument: " + std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(false, "not found: " + std::move(msg));
  }

  bool ok() const { return ok_; }
  const std::string& message() const { return message_; }

  std::string ToString() const { return ok_ ? "OK" : message_; }

 private:
  Status(bool ok, std::string msg) : ok_(ok), message_(std::move(msg)) {}

  bool ok_;
  std::string message_;
};

/// A value or an error. Minimal StatusOr-style wrapper.
template <typename T>
class Result {
 public:
  Result(T value) : value_(std::move(value)) {}            // NOLINT(runtime/explicit)
  Result(Status status) : status_(std::move(status)) {}    // NOLINT(runtime/explicit)

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  const T& value() const& { return *value_; }
  T& value() & { return *value_; }
  T&& value() && { return *std::move(value_); }

  const T& operator*() const& { return *value_; }
  const T* operator->() const { return &*value_; }

 private:
  std::optional<T> value_;
  Status status_ = Status::OK();
};

#define TQP_RETURN_IF_ERROR(expr)            \
  do {                                       \
    ::tqp::Status _st = (expr);              \
    if (!_st.ok()) return _st;               \
  } while (0)

#define TQP_ASSIGN_OR_RETURN(lhs, expr)      \
  auto lhs##_res = (expr);                   \
  if (!lhs##_res.ok()) return lhs##_res.status(); \
  auto& lhs = lhs##_res.value()

/// Internal invariant check; aborts with a message on violation.
#define TQP_CHECK(cond)                                                        \
  do {                                                                         \
    if (!(cond)) {                                                             \
      std::fprintf(stderr, "TQP_CHECK failed at %s:%d: %s\n", __FILE__,        \
                   __LINE__, #cond);                                           \
      std::abort();                                                            \
    }                                                                          \
  } while (0)

#ifdef NDEBUG
#define TQP_DCHECK(cond) \
  do {                   \
  } while (0)
#else
#define TQP_DCHECK(cond) TQP_CHECK(cond)
#endif

}  // namespace tqp

#endif  // TQP_CORE_COMMON_H_
