#include "core/profile.h"

#include <algorithm>

#include "core/json.h"

namespace tqp {

uint64_t ProfileNode::SelfNs() const {
  uint64_t child_ns = 0;
  for (const ProfileNode& c : children) child_ns += c.wall_ns;
  return child_ns >= wall_ns ? 0 : wall_ns - child_ns;
}

namespace {

void NodeToJson(const ProfileNode& n, JsonWriter* w) {
  w->BeginObject();
  w->Key("op").String(n.op);
  w->Key("kind").String(n.kind);
  w->Key("wall_ns").Uint(n.wall_ns);
  w->Key("self_ns").Uint(n.SelfNs());
  w->Key("rows_in").Int(n.rows_in);
  w->Key("rows_out").Int(n.rows_out);
  w->Key("batches").Int(n.batches);
  w->Key("cache_hit").Bool(n.result_cache_hit);
  w->Key("pushed").Bool(n.backend_pushed);
  w->Key("children").BeginArray();
  for (const ProfileNode& c : n.children) NodeToJson(c, w);
  w->EndArray();
  w->EndObject();
}

void CollectSelf(const ProfileNode& n,
                 std::vector<std::pair<std::string, uint64_t>>* out) {
  out->emplace_back(n.kind, n.SelfNs());
  for (const ProfileNode& c : n.children) CollectSelf(c, out);
}

}  // namespace

std::string ProfileNode::ToJson() const {
  JsonWriter w;
  NodeToJson(*this, &w);
  return w.Take();
}

std::vector<std::pair<std::string, uint64_t>> HottestOperators(
    const ProfileNode& root, size_t k) {
  std::vector<std::pair<std::string, uint64_t>> flat;
  CollectSelf(root, &flat);
  std::stable_sort(flat.begin(), flat.end(),
                   [](const auto& a, const auto& b) {
                     if (a.second != b.second) return a.second > b.second;
                     return a.first < b.first;
                   });
  if (flat.size() > k) flat.resize(k);
  return flat;
}

}  // namespace tqp
