#include "core/trace.h"

#include <cinttypes>
#include <cstdio>

#include "core/json.h"

namespace tqp {
namespace {

// Thread-locals backing parent linkage and the dense per-thread ids. The
// current-span id is per-thread state shared by every Tracer — a thread can
// only be inside one traced query at a time, and a span restores the previous
// value on destruction, so interleaving is impossible by construction.
thread_local uint64_t g_current_span = 0;
thread_local uint32_t g_thread_id = 0;
std::atomic<uint32_t> g_next_thread_id{1};

}  // namespace

Tracer::Tracer() : epoch_(std::chrono::steady_clock::now()) {}

uint64_t Tracer::NowNs() const {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - epoch_)
          .count());
}

void Tracer::Record(TraceEvent&& ev) {
  std::lock_guard<std::mutex> lock(mu_);
  events_.push_back(std::move(ev));
}

size_t Tracer::event_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_.size();
}

std::vector<TraceEvent> Tracer::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_;
}

uint32_t Tracer::CurrentThreadId() {
  if (g_thread_id == 0) {
    g_thread_id = g_next_thread_id.fetch_add(1, std::memory_order_relaxed);
  }
  return g_thread_id;
}

std::string Tracer::ToChromeJson() const {
  std::vector<TraceEvent> events = Snapshot();
  JsonWriter w;
  w.BeginObject();
  w.Key("displayTimeUnit").String("ms");
  w.Key("traceEvents").BeginArray();
  for (const TraceEvent& ev : events) {
    w.BeginObject();
    w.Key("name").String(ev.name);
    w.Key("cat").String(ev.cat);
    w.Key("ph").String("X");
    w.Key("pid").Int(1);
    w.Key("tid").Uint(ev.tid);
    // trace_event ts/dur are microseconds; fractional values keep the
    // sub-microsecond resolution visible in Perfetto.
    w.Key("ts").Double(static_cast<double>(ev.start_ns) / 1000.0);
    w.Key("dur").Double(static_cast<double>(ev.dur_ns) / 1000.0);
    w.Key("args").BeginObject();
    {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%" PRIu64, ev.id);
      w.Key("span").String(buf);
      if (ev.parent != 0) {
        std::snprintf(buf, sizeof(buf), "%" PRIu64, ev.parent);
        w.Key("parent").String(buf);
      }
    }
    for (const auto& kv : ev.args) {
      w.Key(kv.first).String(kv.second);
    }
    w.EndObject();  // args
    w.EndObject();  // event
  }
  w.EndArray();
  w.EndObject();
  return w.Take();
}

TraceSpan::TraceSpan(Tracer* tracer, const char* cat, std::string name) {
  if (tracer == nullptr || !tracer->enabled()) return;
  tracer_ = tracer;
  ev_.name = std::move(name);
  ev_.cat = cat;
  ev_.tid = Tracer::CurrentThreadId();
  ev_.id = tracer->NextSpanId();
  ev_.parent = g_current_span;
  prev_current_ = g_current_span;
  g_current_span = ev_.id;
  ev_.start_ns = tracer->NowNs();
}

TraceSpan::~TraceSpan() {
  if (tracer_ == nullptr) return;
  ev_.dur_ns = tracer_->NowNs() - ev_.start_ns;
  g_current_span = prev_current_;
  tracer_->Record(std::move(ev_));
}

void TraceSpan::Arg(const char* key, std::string value) {
  if (tracer_ == nullptr) return;
  ev_.args.emplace_back(key, std::move(value));
}

void TraceSpan::Arg(const char* key, int64_t value) {
  if (tracer_ == nullptr) return;
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRId64, value);
  ev_.args.emplace_back(key, buf);
}

void TraceSpan::Arg(const char* key, uint64_t value) {
  if (tracer_ == nullptr) return;
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, value);
  ev_.args.emplace_back(key, buf);
}

}  // namespace tqp
