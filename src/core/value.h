// Typed attribute values for the tqp algebra.
//
// The algebra of Slivinskas/Jensen/Snodgrass (ICDE 2000) is defined over
// relations whose tuples map attributes into typed domains (Definition 2.1).
// We provide the domains needed by the paper's examples and by realistic
// workloads: null, 64-bit integers, doubles, strings, and time points drawn
// from the chronon domain T. Time points are a distinct value type so the
// implicit time attributes T1/T2 (Section 2.3) are recognizable in schemas.
#ifndef TQP_CORE_VALUE_H_
#define TQP_CORE_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>

#include "core/common.h"

namespace tqp {

/// A point on the discrete time line (a chronon index). The algebra is
/// granularity independent: all operation definitions compare endpoints only,
/// so a TimePoint may denote a month, a day, or a microsecond uniformly.
using TimePoint = int64_t;

/// Smallest representable time point ("beginning").
inline constexpr TimePoint kMinTime = INT64_MIN / 4;
/// Largest representable time point ("forever").
inline constexpr TimePoint kMaxTime = INT64_MAX / 4;

/// The value domains supported by the algebra.
enum class ValueType : uint8_t {
  kNull = 0,
  kInt = 1,
  kDouble = 2,
  kString = 3,
  kTime = 4,
};

/// Human-readable name of a value type ("int", "string", ...).
const char* ValueTypeName(ValueType type);

/// A single typed attribute value. Values are immutable once constructed and
/// totally ordered (nulls first, then by type rank, then by payload), which
/// gives the deterministic sort/duplicate semantics the list algebra needs.
class Value {
 public:
  /// Constructs a NULL value.
  Value() : type_(ValueType::kNull), payload_(std::monostate{}) {}

  static Value Null() { return Value(); }
  static Value Int(int64_t v) { return Value(ValueType::kInt, v); }
  static Value Double(double v) { return Value(ValueType::kDouble, v); }
  static Value String(std::string v) {
    return Value(ValueType::kString, std::move(v));
  }
  static Value Time(TimePoint t) { return Value(ValueType::kTime, TimeBox{t}); }

  ValueType type() const { return type_; }
  bool is_null() const { return type_ == ValueType::kNull; }

  /// Payload accessors. It is a checked error to read the wrong type.
  int64_t AsInt() const;
  double AsDouble() const;
  const std::string& AsString() const;
  TimePoint AsTime() const;

  /// Numeric view: ints, doubles and time points coerce to double; used by
  /// arithmetic expressions and SUM/AVG aggregates.
  double NumericValue() const;
  bool IsNumeric() const {
    return type_ == ValueType::kInt || type_ == ValueType::kDouble ||
           type_ == ValueType::kTime;
  }

  /// Three-way comparison defining the total order described above.
  /// Returns <0, 0, >0.
  int Compare(const Value& other) const;

  bool operator==(const Value& other) const { return Compare(other) == 0; }
  bool operator!=(const Value& other) const { return Compare(other) != 0; }
  bool operator<(const Value& other) const { return Compare(other) < 0; }

  /// Stable hash combining type and payload.
  size_t Hash() const;

  /// Rendering used by the table printer and plan explain output.
  std::string ToString() const;

 private:
  // Wrapper so TimePoint occupies a distinct variant alternative from kInt.
  struct TimeBox {
    TimePoint t;
  };

  using Payload =
      std::variant<std::monostate, int64_t, double, std::string, TimeBox>;

  Value(ValueType type, Payload payload)
      : type_(type), payload_(std::move(payload)) {}

  ValueType type_;
  Payload payload_;
};

}  // namespace tqp

#endif  // TQP_CORE_VALUE_H_
