// List-based relations (Definition 2.2): finite sequences of tuples.
//
// A relation can contain duplicate tuples and the ordering of tuples is
// significant — this is the paper's central departure from multiset algebras,
// enabling sort pushdown and precise reasoning about duplicates, order, and
// coalescing. A relation also carries a (possibly empty) order annotation:
// the statically known sort order of its tuple sequence, realizing Order(r).
#ifndef TQP_CORE_RELATION_H_
#define TQP_CORE_RELATION_H_

#include <string>
#include <vector>

#include "core/schema.h"
#include "core/tuple.h"

namespace tqp {

/// A relation schema instance: a schema plus a finite list of tuples.
class Relation {
 public:
  Relation() = default;
  explicit Relation(Schema schema) : schema_(std::move(schema)) {}
  Relation(Schema schema, std::vector<Tuple> tuples)
      : schema_(std::move(schema)), tuples_(std::move(tuples)) {}

  const Schema& schema() const { return schema_; }
  const std::vector<Tuple>& tuples() const { return tuples_; }
  std::vector<Tuple>& mutable_tuples() { return tuples_; }

  size_t size() const { return tuples_.size(); }
  bool empty() const { return tuples_.empty(); }
  const Tuple& tuple(size_t i) const { return tuples_[i]; }

  /// Appends a tuple; checks arity.
  void Append(Tuple t);

  /// The statically known order of the tuple list (empty = unordered).
  const SortSpec& order() const { return order_; }
  void set_order(SortSpec order) { order_ = std::move(order); }

  bool IsTemporal() const { return schema_.IsTemporal(); }

  /// The snapshot of a temporal relation at time t: the conventional relation
  /// containing those tuples (minus the time attributes) whose periods contain
  /// t, in list order (Section 2.1). Checked error on snapshot relations.
  Relation Snapshot(TimePoint t) const;

  /// All distinct period endpoints occurring in the relation, sorted. Between
  /// two consecutive endpoints every snapshot is identical, so checking
  /// snapshot equivalence at one representative per elementary interval is
  /// exhaustive.
  std::vector<TimePoint> TimeEndpoints() const;

  /// True iff the relation contains no duplicate tuples (as full tuples).
  bool HasDuplicates() const;

  /// True iff no snapshot of the relation contains duplicates, i.e., no two
  /// value-equivalent tuples have overlapping periods (temporal relations
  /// only; for snapshot relations this is HasDuplicates()).
  bool HasSnapshotDuplicates() const;

  /// True iff no two value-equivalent tuples have adjacent periods (nothing
  /// for coalT to merge). Coalescing is undefined for snapshot relations.
  bool IsCoalesced() const;

  /// True iff the tuple list is sorted according to `spec`.
  bool IsSortedBy(const SortSpec& spec) const;

  /// Pretty-prints the relation as an aligned ASCII table (examples/benches).
  std::string ToTable(const std::string& title = "") const;

 private:
  Schema schema_;
  std::vector<Tuple> tuples_;
  SortSpec order_;
};

/// Compares tuples according to a sort specification resolved against a
/// schema. Used by sort and by order-verification.
class TupleComparator {
 public:
  TupleComparator(const SortSpec& spec, const Schema& schema);

  /// Three-way comparison on the sort keys only.
  int Compare(const Tuple& a, const Tuple& b) const;
  bool operator()(const Tuple& a, const Tuple& b) const {
    return Compare(a, b) < 0;
  }

 private:
  struct Key {
    size_t index;
    bool ascending;
  };
  std::vector<Key> keys_;
};

}  // namespace tqp

#endif  // TQP_CORE_RELATION_H_
