// A minimal streaming JSON writer — the one serialization used everywhere a
// tqp component emits JSON: the stats ToJson() methods (ExecStats,
// EngineStats, LatencyHistogram), the service layer's response frames, and
// the bench BENCH_<name>.json metric files. One writer means the service's
// wire format and the bench artifacts cannot drift apart: both render the
// same structs through the same code.
//
// Writer only — the repo never *parses* general JSON (service requests are
// raw TQL lines; the plan-cache snapshot uses its own token format in
// service/plan_store.h), so no third-party dependency is needed.
#ifndef TQP_CORE_JSON_H_
#define TQP_CORE_JSON_H_

#include <cinttypes>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <string>

namespace tqp {

/// Escapes a string for inclusion inside a JSON string literal (quotes not
/// included). Control characters become \u00XX.
inline std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (unsigned char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

/// Builds a JSON document into a string. Purely syntactic: the caller drives
/// Begin/End nesting; the writer only tracks where commas are needed. No
/// newlines or indentation — frames go over the wire one per line, so the
/// output must never contain a raw newline (JsonEscape guarantees that for
/// string payloads).
class JsonWriter {
 public:
  JsonWriter() { out_.reserve(256); }

  JsonWriter& BeginObject() { return Open('{'); }
  JsonWriter& EndObject() { return Close('}'); }
  JsonWriter& BeginArray() { return Open('['); }
  JsonWriter& EndArray() { return Close(']'); }

  /// Object key; must be followed by exactly one value/Begin call.
  JsonWriter& Key(const std::string& k) {
    Comma();
    out_ += '"';
    out_ += JsonEscape(k);
    out_ += "\":";
    pending_value_ = true;
    return *this;
  }

  JsonWriter& String(const std::string& v) {
    Comma();
    out_ += '"';
    out_ += JsonEscape(v);
    out_ += '"';
    return *this;
  }
  JsonWriter& Int(int64_t v) {
    Comma();
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%" PRId64, v);
    out_ += buf;
    return *this;
  }
  JsonWriter& Uint(uint64_t v) {
    Comma();
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
    out_ += buf;
    return *this;
  }
  JsonWriter& Double(double v) {
    // JSON has no inf/nan literals; clamp to null.
    if (!std::isfinite(v)) return Null();
    Comma();
    char buf[40];
    // %.17g round-trips doubles exactly (the bench files rely on that).
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    out_ += buf;
    return *this;
  }
  JsonWriter& Bool(bool v) {
    Comma();
    out_ += v ? "true" : "false";
    return *this;
  }
  JsonWriter& Null() {
    Comma();
    out_ += "null";
    return *this;
  }
  /// Splices a pre-rendered JSON value verbatim (e.g. a nested ToJson()).
  JsonWriter& Raw(const std::string& json) {
    Comma();
    out_ += json;
    return *this;
  }

  const std::string& str() const { return out_; }
  std::string Take() { return std::move(out_); }

 private:
  JsonWriter& Open(char c) {
    Comma();
    out_ += c;
    need_comma_ = false;
    return *this;
  }
  JsonWriter& Close(char c) {
    out_ += c;
    need_comma_ = true;
    pending_value_ = false;
    return *this;
  }
  void Comma() {
    if (pending_value_) {
      // A value right after Key(): no comma, the key already emitted one.
      pending_value_ = false;
      return;
    }
    if (need_comma_) out_ += ',';
    need_comma_ = true;
  }

  std::string out_;
  bool need_comma_ = false;
  bool pending_value_ = false;
};

}  // namespace tqp

#endif  // TQP_CORE_JSON_H_
