#include "core/latency_histogram.h"

#include "core/json.h"

namespace tqp {

namespace {

/// Position of the highest set bit (value must be nonzero).
inline int HighBit(uint64_t v) { return 63 - __builtin_clzll(v); }

}  // namespace

LatencyHistogram::LatencyHistogram()
    : slots_(new std::atomic<uint64_t>[kSlots]) {
  for (size_t i = 0; i < kSlots; ++i) {
    slots_[i].store(0, std::memory_order_relaxed);
  }
}

size_t LatencyHistogram::IndexFor(uint64_t value) {
  if (value < kSubBuckets) return static_cast<size_t>(value);
  const int h = HighBit(value);
  const int shift = h - kSubBucketBits;
  const size_t group = static_cast<size_t>(h - kSubBucketBits + 1);
  const size_t sub = static_cast<size_t>((value >> shift) & (kSubBuckets - 1));
  return group * kSubBuckets + sub;
}

uint64_t LatencyHistogram::SlotUpperEdge(size_t index) {
  const size_t group = index / kSubBuckets;
  const uint64_t sub = index % kSubBuckets;
  if (group == 0) return sub;  // one exact value per slot
  const int shift = static_cast<int>(group) - 1;
  return ((kSubBuckets + sub + 1) << shift) - 1;
}

void LatencyHistogram::Record(uint64_t value) {
  slots_[IndexFor(value)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
  uint64_t seen = min_.load(std::memory_order_relaxed);
  while (value < seen &&
         !min_.compare_exchange_weak(seen, value, std::memory_order_relaxed)) {
  }
  seen = max_.load(std::memory_order_relaxed);
  while (value > seen &&
         !max_.compare_exchange_weak(seen, value, std::memory_order_relaxed)) {
  }
}

void LatencyHistogram::Merge(const LatencyHistogram& other) {
  uint64_t merged = 0;
  for (size_t i = 0; i < kSlots; ++i) {
    uint64_t n = other.slots_[i].load(std::memory_order_relaxed);
    if (n == 0) continue;
    slots_[i].fetch_add(n, std::memory_order_relaxed);
    merged += n;
  }
  count_.fetch_add(merged, std::memory_order_relaxed);
  sum_.fetch_add(other.sum_.load(std::memory_order_relaxed),
                 std::memory_order_relaxed);
  uint64_t v = other.min_.load(std::memory_order_relaxed);
  uint64_t seen = min_.load(std::memory_order_relaxed);
  while (v < seen &&
         !min_.compare_exchange_weak(seen, v, std::memory_order_relaxed)) {
  }
  v = other.max_.load(std::memory_order_relaxed);
  seen = max_.load(std::memory_order_relaxed);
  while (v > seen &&
         !max_.compare_exchange_weak(seen, v, std::memory_order_relaxed)) {
  }
}

void LatencyHistogram::Reset() {
  for (size_t i = 0; i < kSlots; ++i) {
    slots_[i].store(0, std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  min_.store(UINT64_MAX, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
}

uint64_t LatencyHistogram::min() const {
  uint64_t v = min_.load(std::memory_order_relaxed);
  return v == UINT64_MAX ? 0 : v;
}

uint64_t LatencyHistogram::max() const {
  return max_.load(std::memory_order_relaxed);
}

double LatencyHistogram::Mean() const {
  uint64_t n = count();
  if (n == 0) return 0.0;
  return static_cast<double>(sum_.load(std::memory_order_relaxed)) /
         static_cast<double>(n);
}

uint64_t LatencyHistogram::Percentile(double p) const {
  const uint64_t n = count();
  if (n == 0) return 0;
  if (p < 0.0) p = 0.0;
  if (p > 100.0) p = 100.0;
  // Rank of the percentile record, 1-based; at least the first record.
  uint64_t rank = static_cast<uint64_t>(p / 100.0 * static_cast<double>(n));
  if (rank < 1) rank = 1;
  if (rank > n) rank = n;
  uint64_t cumulative = 0;
  for (size_t i = 0; i < kSlots; ++i) {
    cumulative += slots_[i].load(std::memory_order_relaxed);
    if (cumulative >= rank) {
      uint64_t edge = SlotUpperEdge(i);
      uint64_t hi = max();
      return edge < hi ? edge : hi;
    }
  }
  return max();
}

std::string LatencyHistogram::ToJson() const {
  JsonWriter w;
  w.BeginObject();
  w.Key("count").Uint(count());
  w.Key("min").Uint(min());
  w.Key("max").Uint(max());
  w.Key("mean").Double(Mean());
  w.Key("p50").Uint(Percentile(50.0));
  w.Key("p90").Uint(Percentile(90.0));
  w.Key("p99").Uint(Percentile(99.0));
  w.Key("p999").Uint(Percentile(99.9));
  w.EndObject();
  return w.Take();
}

}  // namespace tqp
