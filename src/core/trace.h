// A low-overhead, thread-safe span recorder for end-to-end query tracing.
//
// Design contract (the observability layer's overhead budget depends on it):
//
//  - Tracing is *compiled in* everywhere but *runtime-gated* by a nullable
//    `Tracer*` threaded through the existing config structs (EngineConfig,
//    EnumerationOptions, TranslatorOptions). The disabled path is a single
//    pointer test per would-be span — no allocation, no clock read, no
//    atomic. Benches run with `tracer == nullptr` and pay one predictable
//    branch per *operator/morsel/phase*, never per row.
//  - Spans are RAII (`TraceSpan`): construction stamps a steady-clock start,
//    destruction stamps the duration and appends one completed event under a
//    short mutex hold. Parent linkage is tracked per thread with a
//    thread_local current-span id, so nesting falls out of scoping with no
//    caller bookkeeping — including across the vexec work-stealing pool,
//    where each worker thread builds its own span stack.
//  - Export is Chrome `trace_event` JSON ("X" complete events, microsecond
//    ts/dur), so a trace file opens directly in chrome://tracing or Perfetto
//    with per-thread tracks.
//
// A Tracer instance covers one query (the Engine allocates one per traced
// query and attaches the rendered JSON to QueryResult::trace_json); nothing
// stops longer-lived use, but event storage is unbounded by design — the
// recorder never drops spans, callers own the lifetime.
#ifndef TQP_CORE_TRACE_H_
#define TQP_CORE_TRACE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace tqp {

/// One completed span. `args` keys must be string literals (or otherwise
/// outlive the Tracer) — spans are recorded on hot-ish paths and the key set
/// is static at every call site, so we skip the copy.
struct TraceEvent {
  std::string name;
  const char* cat = "";
  uint64_t start_ns = 0;  // relative to the Tracer's epoch
  uint64_t dur_ns = 0;
  uint32_t tid = 0;   // small stable per-thread id (not the OS tid)
  uint64_t id = 0;    // span id, unique within the Tracer
  uint64_t parent = 0;  // enclosing span id on the same Tracer; 0 = root
  std::vector<std::pair<const char*, std::string>> args;
};

class Tracer {
 public:
  Tracer();

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// Runtime gate. A disabled Tracer records nothing; TraceSpan checks it
  /// once at construction.
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void set_enabled(bool on) { enabled_.store(on, std::memory_order_relaxed); }

  /// Nanoseconds since this Tracer was constructed (steady clock).
  uint64_t NowNs() const;

  uint64_t NextSpanId() {
    return next_id_.fetch_add(1, std::memory_order_relaxed);
  }

  void Record(TraceEvent&& ev);

  size_t event_count() const;
  /// Copies the recorded events (completion order). Test/inspection surface.
  std::vector<TraceEvent> Snapshot() const;

  /// Chrome trace_event format: {"displayTimeUnit":"ms","traceEvents":[...]}
  /// with one "ph":"X" complete event per span, ts/dur in microseconds, and
  /// the span/parent ids plus key/value attributes under "args". Loads
  /// directly in chrome://tracing and Perfetto.
  std::string ToChromeJson() const;

  /// Small dense id for the calling thread (1, 2, 3, ... in first-use
  /// order), stable for the thread's lifetime and shared across Tracers —
  /// Chrome renders one track per tid, so density beats OS tids.
  static uint32_t CurrentThreadId();

 private:
  std::chrono::steady_clock::time_point epoch_;
  std::atomic<bool> enabled_{true};
  std::atomic<uint64_t> next_id_{1};
  mutable std::mutex mu_;
  std::vector<TraceEvent> events_;
};

/// RAII span. Construction on a null or disabled Tracer is a no-op (one
/// branch); otherwise the span becomes the thread's current span until
/// destruction, so nested TraceSpans chain parent ids automatically.
class TraceSpan {
 public:
  /// `cat` and the `name` of every Arg() must be string literals (or outlive
  /// the Tracer).
  TraceSpan(Tracer* tracer, const char* cat, std::string name);
  ~TraceSpan();

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  /// Whether this span is actually recording — use to skip the cost of
  /// building attribute strings when tracing is off.
  bool active() const { return tracer_ != nullptr; }

  void Arg(const char* key, std::string value);
  void Arg(const char* key, int64_t value);
  void Arg(const char* key, uint64_t value);

 private:
  Tracer* tracer_ = nullptr;
  TraceEvent ev_;
  uint64_t prev_current_ = 0;
};

}  // namespace tqp

#endif  // TQP_CORE_TRACE_H_
