// Relation schemas (Definition 2.1) and sort specifications.
//
// A schema is an ordered list of named, typed attributes. Temporal relations
// are recognized structurally: they contain the two reserved time attributes
// T1 and T2 of type kTime (Section 2.3). Operations "implicitly know" the
// time attributes through this convention, exactly as the paper prescribes.
#ifndef TQP_CORE_SCHEMA_H_
#define TQP_CORE_SCHEMA_H_

#include <memory>
#include <string>
#include <vector>

#include "core/common.h"
#include "core/value.h"

namespace tqp {

/// Reserved attribute name for a period's (inclusive) start.
inline constexpr const char* kT1 = "T1";
/// Reserved attribute name for a period's (exclusive) end.
inline constexpr const char* kT2 = "T2";

/// One named, typed attribute.
struct Attribute {
  std::string name;
  ValueType type = ValueType::kNull;

  bool operator==(const Attribute& o) const {
    return name == o.name && type == o.type;
  }
};

/// One key of a sort specification: attribute plus direction.
struct SortKey {
  std::string attr;
  bool ascending = true;

  bool operator==(const SortKey& o) const {
    return attr == o.attr && ascending == o.ascending;
  }

  std::string ToString() const { return attr + (ascending ? " ASC" : " DESC"); }
};

/// A sort specification: an attribute/direction list; empty means unordered.
/// This realizes the paper's Order(r) function (Table 1).
using SortSpec = std::vector<SortKey>;

/// True iff `prefix` is a prefix of `full` (the paper's IsPrefixOf predicate,
/// used by sorting rules S1/S3).
bool IsPrefixOf(const SortSpec& prefix, const SortSpec& full);

/// The largest common prefix of `order` restricted to the attributes in
/// `kept`: the paper's Prefix(Order(r), pairs) function used by projection and
/// aggregation in Table 1. Stops at the first key whose attribute is not kept.
SortSpec OrderPrefixOnAttrs(const SortSpec& order,
                            const std::vector<std::string>& kept);

std::string SortSpecToString(const SortSpec& spec);

/// An ordered attribute list with by-name lookup.
///
/// Value semantics with copy-on-write storage: schemas are copied far more
/// often than they are built (every plan annotation carries one per node, and
/// the optimizer's derivation cache replays them across thousands of plans),
/// so a copy shares the attribute vector and only Add() materializes a
/// private one when it is actually shared.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Attribute> attrs)
      : attrs_(std::make_shared<std::vector<Attribute>>(std::move(attrs))) {}

  size_t size() const { return attrs_ == nullptr ? 0 : attrs_->size(); }
  const Attribute& attr(size_t i) const { return (*attrs_)[i]; }
  const std::vector<Attribute>& attrs() const {
    return attrs_ == nullptr ? kNoAttrs : *attrs_;
  }

  /// Index of the attribute with the given name, or -1.
  int IndexOf(const std::string& name) const;
  bool HasAttr(const std::string& name) const { return IndexOf(name) >= 0; }

  /// A relation is temporal iff its schema carries both reserved time
  /// attributes with time type.
  bool IsTemporal() const;

  int T1Index() const { return IndexOf(kT1); }
  int T2Index() const { return IndexOf(kT2); }

  /// All attribute names except T1/T2 (the value-equivalence attributes).
  std::vector<std::string> NonTemporalAttrNames() const;

  /// Appends an attribute; checks the name is fresh.
  void Add(Attribute a);

  /// Schema equality is by attribute sequence (names and types).
  bool operator==(const Schema& o) const {
    if (attrs_ == o.attrs_) return true;  // shared storage or both empty
    return attrs() == o.attrs();
  }
  bool operator!=(const Schema& o) const { return !(*this == o); }

  std::string ToString() const;

 private:
  static const std::vector<Attribute> kNoAttrs;

  /// Shared storage; nullptr denotes the empty schema. Mutation goes through
  /// Add(), which copies the vector iff it is shared with another Schema.
  std::shared_ptr<std::vector<Attribute>> attrs_;
};

}  // namespace tqp

#endif  // TQP_CORE_SCHEMA_H_
