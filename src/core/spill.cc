#include "core/spill.h"

#include <cstring>

#include "core/common.h"

namespace tqp {

namespace {

template <typename T>
void AppendRaw(std::string* out, T v) {
  out->append(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <typename T>
T ReadRaw(const uint8_t* p) {
  T v;
  std::memcpy(&v, p, sizeof(T));
  return v;
}

}  // namespace

SpillFile::SpillFile() { file_ = std::tmpfile(); }

SpillFile::~SpillFile() {
  if (file_ != nullptr) std::fclose(file_);
}

uint64_t SpillFile::Append(const void* data, size_t n) {
  TQP_CHECK(file_ != nullptr);
  uint64_t offset = bytes_written_;
  TQP_CHECK(std::fseek(file_, 0, SEEK_END) == 0);
  TQP_CHECK(std::fwrite(data, 1, n, file_) == n);
  bytes_written_ += n;
  return offset;
}

void SpillFile::ReadAt(uint64_t offset, void* out, size_t n) {
  TQP_CHECK(file_ != nullptr);
  TQP_CHECK(offset + n <= bytes_written_);
  TQP_CHECK(std::fseek(file_, static_cast<long>(offset), SEEK_SET) == 0);
  TQP_CHECK(std::fread(out, 1, n, file_) == n);
}

void EncodeSpillRow(const ColumnTable& t, size_t row, std::string* out) {
  size_t len_pos = out->size();
  AppendRaw<uint32_t>(out, 0);  // patched below
  for (size_t c = 0; c < t.num_cols(); ++c) {
    CellRef cell = t.col(c).At(row);
    out->push_back(static_cast<char>(cell.type));
    switch (cell.type) {
      case ValueType::kNull:
        break;
      case ValueType::kInt:
      case ValueType::kTime:
        AppendRaw<int64_t>(out, cell.i);
        break;
      case ValueType::kDouble:
        AppendRaw<double>(out, cell.d);
        break;
      case ValueType::kString:
        AppendRaw<uint32_t>(out, static_cast<uint32_t>(cell.s->size()));
        out->append(*cell.s);
        break;
    }
  }
  uint32_t payload = static_cast<uint32_t>(out->size() - len_pos - 4);
  std::memcpy(&(*out)[len_pos], &payload, sizeof(payload));
}

size_t DecodeSpillRow(const uint8_t* data, size_t avail,
                      std::vector<Value>* row) {
  if (avail < 4) return 0;
  uint32_t payload = ReadRaw<uint32_t>(data);
  if (avail < 4 + static_cast<size_t>(payload)) return 0;
  row->clear();
  const uint8_t* p = data + 4;
  const uint8_t* end = p + payload;
  while (p < end) {
    ValueType type = static_cast<ValueType>(*p++);
    switch (type) {
      case ValueType::kNull:
        row->push_back(Value::Null());
        break;
      case ValueType::kInt:
        row->push_back(Value::Int(ReadRaw<int64_t>(p)));
        p += 8;
        break;
      case ValueType::kTime:
        row->push_back(Value::Time(ReadRaw<int64_t>(p)));
        p += 8;
        break;
      case ValueType::kDouble:
        row->push_back(Value::Double(ReadRaw<double>(p)));
        p += 8;
        break;
      case ValueType::kString: {
        uint32_t len = ReadRaw<uint32_t>(p);
        p += 4;
        row->push_back(
            Value::String(std::string(reinterpret_cast<const char*>(p), len)));
        p += len;
        break;
      }
    }
  }
  TQP_CHECK(p == end);
  return 4 + static_cast<size_t>(payload);
}

SpillRegionReader::SpillRegionReader(SpillFile* file, uint64_t offset,
                                     uint64_t bytes, size_t buffer_bytes)
    : file_(file), next_read_(offset), region_end_(offset + bytes) {
  buf_.resize(std::max<size_t>(buffer_bytes, 4096));
}

bool SpillRegionReader::Next(std::vector<Value>* row) {
  for (;;) {
    size_t used =
        DecodeSpillRow(buf_.data() + buf_pos_, buf_len_ - buf_pos_, row);
    if (used != 0) {
      buf_pos_ += used;
      return true;
    }
    // Incomplete record in the buffer: compact and refill from the file.
    uint64_t file_left = region_end_ - next_read_;
    if (file_left == 0) {
      TQP_CHECK(buf_pos_ == buf_len_);  // a truncated record is corruption
      return false;
    }
    std::memmove(buf_.data(), buf_.data() + buf_pos_, buf_len_ - buf_pos_);
    buf_len_ -= buf_pos_;
    buf_pos_ = 0;
    if (buf_len_ == buf_.size()) buf_.resize(buf_.size() * 2);
    size_t want = static_cast<size_t>(
        std::min<uint64_t>(file_left, buf_.size() - buf_len_));
    file_->ReadAt(next_read_, buf_.data() + buf_len_, want);
    next_read_ += want;
    buf_len_ += want;
  }
}

}  // namespace tqp
