// 64-bit structural hashing primitives used for plan/expression
// fingerprints and the hash-consing tables of the algebra layer.
//
// Fingerprints are not trusted blindly: the interning table confirms every
// bucket hit with a structural comparison, so a collision can never merge two
// distinct plans. The mixers below (splitmix64 finalizer, FNV-1a for bytes)
// keep collisions rare enough that those comparisons almost never recurse.
#ifndef TQP_CORE_HASH_H_
#define TQP_CORE_HASH_H_

#include <cstdint>
#include <string>

namespace tqp {

/// splitmix64 finalizer: a cheap full-avalanche mix of one 64-bit word.
inline uint64_t HashMix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// Order-dependent combination of an accumulated hash with one more word.
inline uint64_t HashCombine(uint64_t seed, uint64_t v) {
  return HashMix64(seed ^ (v + 0x9e3779b97f4a7c15ull + (seed << 6) +
                           (seed >> 2)));
}

/// FNV-1a over a byte string.
inline uint64_t HashBytes(const void* data, size_t n) {
  const unsigned char* p = static_cast<const unsigned char*>(data);
  uint64_t h = 0xcbf29ce484222325ull;
  for (size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ull;
  }
  return h;
}

inline uint64_t HashString(const std::string& s) {
  return HashBytes(s.data(), s.size());
}

}  // namespace tqp

#endif  // TQP_CORE_HASH_H_
