// The catalog: named base relations with data-integrity metadata and site.
//
// In the layered architecture (Section 2.1) base relations live in the DBMS;
// the stratum sees them through transfer operations. The catalog also records
// the statically guaranteed data properties the optimizer's precondition
// checks rely on (duplicate-freeness, snapshot-duplicate-freeness, coalescing,
// declared sort order).
#ifndef TQP_CORE_CATALOG_H_
#define TQP_CORE_CATALOG_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "core/relation.h"

namespace tqp {

/// Where data resides / where an operation executes (Section 4.5).
enum class Site {
  kDbms,
  kStratum,
};

const char* SiteName(Site s);

/// A registered base relation plus its statically declared guarantees.
struct CatalogEntry {
  Relation data;
  /// No duplicate tuples (full-tuple equality).
  bool duplicate_free = false;
  /// No snapshot contains duplicates (temporal relations).
  bool snapshot_duplicate_free = false;
  /// No value-equivalent tuples with adjacent periods (temporal relations).
  bool coalesced = false;
  /// Declared physical order of the stored tuple list.
  SortSpec order;
  /// Storage site; base tables normally live in the DBMS.
  Site site = Site::kDbms;
};

/// Name → relation registry shared by the planner and the executor.
///
/// Every successful mutation (register/update/drop) bumps a monotonically
/// increasing version. Session-scoped consumers (tqp::Engine's plan and
/// derivation caches) key their cached state on it: anything derived under
/// version v is stale — and must be invalidated, never served — once
/// version() != v.
///
/// Mutations are additionally tracked *per relation*: every successful
/// Register/Update/Drop of `name` stamps that relation with the new global
/// counter, so relation_version(name) moves exactly when `name`'s contents
/// (or existence) change. The global version is always the maximum of the
/// per-relation versions. Dependency-keyed consumers (the Engine's
/// relation-dependency plan-cache invalidation and the subplan result
/// cache) compare per-relation versions instead of the global counter, so
/// an update of relation A never invalidates state derived only from B.
/// Dropped relations keep their stamp (a tombstone): re-registering under
/// the same name yields a strictly larger version, never a repeat.
class Catalog {
 public:
  /// Registers a relation; metadata flags are *verified* against the data so
  /// the optimizer can trust them. Fails if `name` is already registered.
  Status Register(const std::string& name, CatalogEntry entry);

  /// Registers or replaces a relation, with the same metadata verification.
  Status Update(const std::string& name, CatalogEntry entry);

  /// Convenience: registers and derives all metadata flags from the data.
  Status RegisterWithInferredFlags(const std::string& name, Relation data,
                                   Site site = Site::kDbms);

  /// Removes a relation. Returns false (and does not bump the version) if
  /// `name` is not registered.
  bool Drop(const std::string& name);

  bool Contains(const std::string& name) const;
  const CatalogEntry* Find(const std::string& name) const;

  std::vector<std::string> Names() const;

  /// Number of successful mutations so far; 0 for a fresh catalog. Equals
  /// the maximum over all relation_version() values.
  uint64_t version() const { return version_; }

  /// The global version at the last successful mutation of `name`
  /// (including its drop — tombstones persist); 0 if `name` was never
  /// registered. Monotonically increasing per relation.
  uint64_t relation_version(const std::string& name) const;

 private:
  Status Verify(const std::string& name, const CatalogEntry& entry) const;

  std::map<std::string, CatalogEntry> entries_;
  /// Per-relation mutation stamps, including tombstones for dropped names.
  std::map<std::string, uint64_t> relation_versions_;
  uint64_t version_ = 0;
};

}  // namespace tqp

#endif  // TQP_CORE_CATALOG_H_
