#include "core/metrics.h"

#include <cinttypes>
#include <cstdio>

#include "core/common.h"
#include "core/json.h"

namespace tqp {

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

MetricsRegistry::Entry* MetricsRegistry::GetEntry(const std::string& name,
                                                  Kind kind,
                                                  const std::string& help) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(name);
  if (it != entries_.end()) {
    // Re-registering under a different kind is a type pun, not a race to
    // tolerate.
    TQP_CHECK(it->second.kind == kind);
    if (it->second.help.empty() && !help.empty()) it->second.help = help;
    return &it->second;
  }
  Entry& e = entries_[name];
  e.kind = kind;
  e.help = help;
  switch (kind) {
    case Kind::kCounter: e.counter = std::make_unique<MetricCounter>(); break;
    case Kind::kGauge: e.gauge = std::make_unique<MetricGauge>(); break;
    case Kind::kHistogram:
      e.histogram = std::make_unique<LatencyHistogram>();
      break;
  }
  return &e;
}

MetricCounter* MetricsRegistry::GetCounter(const std::string& name,
                                           const std::string& help) {
  return GetEntry(name, Kind::kCounter, help)->counter.get();
}

MetricGauge* MetricsRegistry::GetGauge(const std::string& name,
                                       const std::string& help) {
  return GetEntry(name, Kind::kGauge, help)->gauge.get();
}

LatencyHistogram* MetricsRegistry::GetHistogram(const std::string& name,
                                                const std::string& help) {
  return GetEntry(name, Kind::kHistogram, help)->histogram.get();
}

size_t MetricsRegistry::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

std::string MetricsRegistry::ToPrometheusText() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  out.reserve(entries_.size() * 64);
  char buf[128];
  for (const auto& [name, e] : entries_) {
    if (!e.help.empty()) {
      out += "# HELP " + name + " " + e.help + "\n";
    }
    switch (e.kind) {
      case Kind::kCounter:
        out += "# TYPE " + name + " counter\n";
        std::snprintf(buf, sizeof(buf), "%" PRIu64, e.counter->value());
        out += name + " " + buf + "\n";
        break;
      case Kind::kGauge:
        out += "# TYPE " + name + " gauge\n";
        std::snprintf(buf, sizeof(buf), "%.17g", e.gauge->value());
        out += name + " " + buf + "\n";
        break;
      case Kind::kHistogram: {
        out += "# TYPE " + name + " summary\n";
        static constexpr struct {
          const char* label;
          double p;
        } kQuantiles[] = {{"0.5", 50.0}, {"0.9", 90.0}, {"0.99", 99.0},
                          {"0.999", 99.9}};
        for (const auto& q : kQuantiles) {
          std::snprintf(buf, sizeof(buf), "%s{quantile=\"%s\"} %" PRIu64 "\n",
                        name.c_str(), q.label,
                        e.histogram->Percentile(q.p));
          out += buf;
        }
        std::snprintf(buf, sizeof(buf), "%s_sum %.17g\n", name.c_str(),
                      e.histogram->Mean() *
                          static_cast<double>(e.histogram->count()));
        out += buf;
        std::snprintf(buf, sizeof(buf), "%s_count %" PRIu64 "\n", name.c_str(),
                      e.histogram->count());
        out += buf;
        break;
      }
    }
  }
  return out;
}

std::string MetricsRegistry::ToJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  JsonWriter w;
  w.BeginObject();
  for (const auto& [name, e] : entries_) {
    w.Key(name);
    switch (e.kind) {
      case Kind::kCounter:
        w.BeginObject();
        w.Key("type").String("counter");
        w.Key("value").Uint(e.counter->value());
        w.EndObject();
        break;
      case Kind::kGauge:
        w.BeginObject();
        w.Key("type").String("gauge");
        w.Key("value").Double(e.gauge->value());
        w.EndObject();
        break;
      case Kind::kHistogram:
        w.BeginObject();
        w.Key("type").String("histogram");
        w.Key("summary").Raw(e.histogram->ToJson());
        w.EndObject();
        break;
    }
  }
  w.EndObject();
  return w.Take();
}

void MetricsRegistry::ResetAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, e] : entries_) {
    (void)name;
    switch (e.kind) {
      case Kind::kCounter: e.counter->Reset(); break;
      case Kind::kGauge: e.gauge->Set(0.0); break;
      case Kind::kHistogram: e.histogram->Reset(); break;
    }
  }
}

}  // namespace tqp
