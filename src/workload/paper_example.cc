#include "workload/paper_example.h"

#include "workload/generator.h"

namespace tqp {

namespace {

Schema EmployeeSchema() {
  Schema s;
  s.Add(Attribute{"EmpName", ValueType::kString});
  s.Add(Attribute{"Dept", ValueType::kString});
  s.Add(Attribute{kT1, ValueType::kTime});
  s.Add(Attribute{kT2, ValueType::kTime});
  return s;
}

Schema ProjectSchema() {
  Schema s;
  s.Add(Attribute{"EmpName", ValueType::kString});
  s.Add(Attribute{"Prj", ValueType::kString});
  s.Add(Attribute{kT1, ValueType::kTime});
  s.Add(Attribute{kT2, ValueType::kTime});
  return s;
}

Tuple Row(const std::string& a, const std::string& b, TimePoint t1,
          TimePoint t2) {
  Tuple t;
  t.push_back(Value::String(a));
  t.push_back(Value::String(b));
  t.push_back(Value::Time(t1));
  t.push_back(Value::Time(t2));
  return t;
}

}  // namespace

Relation PaperEmployee() {
  Relation r(EmployeeSchema());
  r.Append(Row("John", "Sales", 1, 8));
  r.Append(Row("John", "Advertising", 6, 11));
  r.Append(Row("Anna", "Sales", 2, 6));
  r.Append(Row("Anna", "Advertising", 2, 6));
  r.Append(Row("Anna", "Sales", 6, 12));
  return r;
}

Relation PaperProject() {
  Relation r(ProjectSchema());
  r.Append(Row("John", "P1", 2, 3));
  r.Append(Row("John", "P2", 5, 6));
  r.Append(Row("John", "P1", 7, 8));
  r.Append(Row("John", "P3", 9, 10));
  r.Append(Row("Anna", "P2", 3, 4));
  r.Append(Row("Anna", "P2", 5, 6));
  r.Append(Row("Anna", "P3", 7, 8));
  r.Append(Row("Anna", "P3", 9, 10));
  return r;
}

Relation PaperExpectedResult() {
  Schema s;
  s.Add(Attribute{"EmpName", ValueType::kString});
  s.Add(Attribute{kT1, ValueType::kTime});
  s.Add(Attribute{kT2, ValueType::kTime});
  Relation r(s);
  auto row = [&r](const std::string& n, TimePoint t1, TimePoint t2) {
    Tuple t;
    t.push_back(Value::String(n));
    t.push_back(Value::Time(t1));
    t.push_back(Value::Time(t2));
    r.Append(std::move(t));
  };
  row("Anna", 2, 3);
  row("Anna", 4, 5);
  row("Anna", 6, 7);
  row("Anna", 8, 9);
  row("Anna", 10, 12);
  row("John", 1, 2);
  row("John", 3, 5);
  row("John", 6, 7);
  row("John", 8, 9);
  row("John", 10, 11);
  r.set_order({SortKey{"EmpName", true}});
  return r;
}

Catalog PaperCatalog() {
  Catalog catalog;
  TQP_CHECK(catalog.RegisterWithInferredFlags("EMPLOYEE", PaperEmployee(),
                                              Site::kDbms)
                .ok());
  TQP_CHECK(catalog.RegisterWithInferredFlags("PROJECT", PaperProject(),
                                              Site::kDbms)
                .ok());
  return catalog;
}

std::string PaperQueryText() {
  return "VALIDTIME COALESCED SELECT DISTINCT EmpName FROM EMPLOYEE "
         "EXCEPT SELECT EmpName FROM PROJECT "
         "ORDER BY EmpName ASC";
}

PlanPtr PaperInitialPlan() {
  std::vector<ProjItem> proj = {ProjItem::Pass("EmpName"),
                                ProjItem::Pass(kT1), ProjItem::Pass(kT2)};
  PlanPtr left = PlanNode::RdupT(
      PlanNode::Project(PlanNode::Scan("EMPLOYEE"), proj));
  PlanPtr right = PlanNode::Project(PlanNode::Scan("PROJECT"), proj);
  PlanPtr plan = PlanNode::DifferenceT(left, right);
  plan = PlanNode::RdupT(plan);
  plan = PlanNode::Coalesce(plan);
  plan = PlanNode::Sort(plan, {SortKey{"EmpName", true}});
  return PlanNode::TransferS(plan);
}

QueryContract PaperContract() {
  return QueryContract::List({SortKey{"EmpName", true}});
}

namespace {

// Employment/project spells with the paper's structure: a few overlapping
// spells per person (snapshot duplicates after projection), adjacent spells
// (coalescible), and gaps.
Relation ScaledSpells(const Schema& schema, const char* label, size_t scale,
                      size_t spells_per_person, uint64_t seed) {
  Rng rng(seed);
  Relation r(schema);
  for (size_t person = 0; person < scale; ++person) {
    std::string name = "emp" + std::to_string(person);
    TimePoint cursor = static_cast<TimePoint>(rng.Below(12));
    for (size_t s = 0; s < spells_per_person; ++s) {
      TimePoint len = 2 + static_cast<TimePoint>(rng.Below(10));
      Period p(cursor, cursor + len);
      Tuple t;
      t.push_back(Value::String(name));
      // Random label: consecutive spells sometimes share a department /
      // project, producing the paper's value-equivalent adjacent and
      // overlapping spells.
      t.push_back(Value::String(std::string(label) +
                                std::to_string(rng.Below(3))));
      (void)s;
      t.push_back(Value::Time(p.begin));
      t.push_back(Value::Time(p.end));
      r.Append(std::move(t));
      // Advance: sometimes overlap the next spell, sometimes leave a gap,
      // sometimes meet exactly (adjacency).
      double roll = rng.Unit();
      if (roll < 0.3) {
        cursor = p.begin + 1 + static_cast<TimePoint>(rng.Below(
                                   static_cast<uint64_t>(len)));
      } else if (roll < 0.6) {
        cursor = p.end;  // adjacent
      } else {
        cursor = p.end + 1 + static_cast<TimePoint>(rng.Below(6));
      }
    }
  }
  return r;
}

}  // namespace

Relation ScaledEmployee(size_t scale, uint64_t seed) {
  return ScaledSpells(EmployeeSchema(), "dept", scale, 6, seed);
}

Relation ScaledProject(size_t scale, uint64_t seed) {
  return ScaledSpells(ProjectSchema(), "prj", scale, 8, seed);
}

}  // namespace tqp
