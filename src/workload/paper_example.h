// The paper's running example (Figures 1–3, 6): the EMPLOYEE and PROJECT
// relations, the example query, and the hand-built Figure 2(a) initial plan.
#ifndef TQP_WORKLOAD_PAPER_EXAMPLE_H_
#define TQP_WORKLOAD_PAPER_EXAMPLE_H_

#include <string>

#include "algebra/derivation.h"
#include "algebra/plan.h"
#include "core/catalog.h"

namespace tqp {

/// EMPLOYEE(EmpName, Dept, T1, T2) — Figure 1, left.
Relation PaperEmployee();

/// PROJECT(EmpName, Prj, T1, T2) — Figure 1, right.
Relation PaperProject();

/// The expected result of the example query (Figure 1, bottom right):
/// employees that worked in a department but not on any project, and when —
/// sorted, coalesced, and without duplicates in snapshots.
Relation PaperExpectedResult();

/// Registers EMPLOYEE and PROJECT (DBMS site) in a fresh catalog.
Catalog PaperCatalog();

/// The example query in TQL.
std::string PaperQueryText();

/// The Figure 2(a) initial operator tree, built directly:
///   T_S(sort_{EmpName ASC}(coalT(rdupT(
///       rdupT(π_{EmpName,T1,T2}(EMPLOYEE)) \T π_{EmpName,T1,T2}(PROJECT)))))
PlanPtr PaperInitialPlan();

/// The ≡SQL contract of the example query: a list ordered by EmpName ASC.
QueryContract PaperContract();

/// Scaled versions of EMPLOYEE/PROJECT with the same shape (value-equivalent
/// overlapping spells across departments/projects), for benchmarking.
/// `scale` multiplies the number of employees.
Relation ScaledEmployee(size_t scale, uint64_t seed = 7);
Relation ScaledProject(size_t scale, uint64_t seed = 11);

}  // namespace tqp

#endif  // TQP_WORKLOAD_PAPER_EXAMPLE_H_
