#include "workload/generator.h"

#include <algorithm>

namespace tqp {

Relation GenerateRelation(const RelationGenParams& params) {
  Schema schema;
  schema.Add(Attribute{"Name", ValueType::kString});
  schema.Add(Attribute{"Cat", ValueType::kInt});
  schema.Add(Attribute{"Val", ValueType::kInt});
  if (params.temporal) {
    schema.Add(Attribute{kT1, ValueType::kTime});
    schema.Add(Attribute{kT2, ValueType::kTime});
  }

  Rng rng(params.seed);
  Relation out(schema);
  // The phenomena fractions at most triple the base cardinality; reserving
  // up front keeps multi-million-row generation from re-allocating its way
  // through the loop.
  out.mutable_tuples().reserve(params.cardinality +
                               static_cast<size_t>(
                                   static_cast<double>(params.cardinality) *
                                   (params.duplicate_fraction +
                                    params.adjacency_fraction +
                                    params.overlap_fraction)) +
                               1);
  for (size_t i = 0; i < params.cardinality; ++i) {
    Tuple t;
    t.push_back(Value::String(
        "n" + std::to_string(rng.Below(std::max<uint64_t>(1, params.num_names)))));
    t.push_back(Value::Int(static_cast<int64_t>(
        rng.Below(std::max<uint64_t>(1, params.num_categories)))));
    t.push_back(Value::Int(static_cast<int64_t>(
        rng.Below(std::max<uint64_t>(1, params.num_values)))));
    Period p;
    if (params.temporal) {
      TimePoint len =
          1 + static_cast<TimePoint>(rng.Below(
                  static_cast<uint64_t>(params.max_period_length)));
      TimePoint begin = static_cast<TimePoint>(rng.Below(
          static_cast<uint64_t>(std::max<TimePoint>(1, params.time_horizon - len))));
      p = Period(begin, begin + len);
      t.push_back(Value::Time(p.begin));
      t.push_back(Value::Time(p.end));
    }

    if (params.temporal && rng.Unit() < params.adjacency_fraction &&
        p.Duration() >= 2) {
      // Split into two adjacent fragments (coalT can merge them back).
      TimePoint mid = p.begin + 1 +
                      static_cast<TimePoint>(
                          rng.Below(static_cast<uint64_t>(p.Duration() - 1)));
      Tuple a = t, b = t;
      SetTuplePeriod(&a, schema, Period(p.begin, mid));
      SetTuplePeriod(&b, schema, Period(mid, p.end));
      out.Append(std::move(a));
      out.Append(std::move(b));
    } else {
      out.Append(t);
    }

    if (rng.Unit() < params.duplicate_fraction) {
      out.Append(t);  // exact duplicate
    }
    if (params.temporal && rng.Unit() < params.overlap_fraction) {
      // Value-equivalent tuple with an overlapping, shifted period.
      Tuple o = t;
      TimePoint shift = 1 + static_cast<TimePoint>(rng.Below(
                                static_cast<uint64_t>(p.Duration())));
      SetTuplePeriod(&o, schema, Period(p.begin + shift, p.end + shift));
      out.Append(std::move(o));
    }
  }
  return out;
}

}  // namespace tqp
