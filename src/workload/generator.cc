#include "workload/generator.h"

#include <algorithm>
#include <cmath>
#include <vector>

namespace tqp {

namespace {

// Inverse-CDF Zipf sampler over {0..n-1} with P(i) ∝ 1/(i+1)^s. One Rng
// draw per sample, like the uniform path it replaces.
class ZipfSampler {
 public:
  ZipfSampler(size_t n, double s) : cdf_(std::max<size_t>(1, n)) {
    double total = 0.0;
    for (size_t i = 0; i < cdf_.size(); ++i) {
      total += 1.0 / std::pow(static_cast<double>(i + 1), s);
      cdf_[i] = total;
    }
    for (double& c : cdf_) c /= total;
  }

  uint64_t Sample(Rng& rng) const {
    double u = rng.Unit();
    auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
    if (it == cdf_.end()) --it;
    return static_cast<uint64_t>(it - cdf_.begin());
  }

 private:
  std::vector<double> cdf_;
};

}  // namespace

Relation GenerateRelation(const RelationGenParams& params) {
  Schema schema;
  schema.Add(Attribute{"Name", ValueType::kString});
  schema.Add(Attribute{"Cat", ValueType::kInt});
  schema.Add(Attribute{"Val", ValueType::kInt});
  if (params.temporal) {
    schema.Add(Attribute{kT1, ValueType::kTime});
    schema.Add(Attribute{kT2, ValueType::kTime});
  }

  Rng rng(params.seed);
  Relation out(schema);
  const size_t burst = std::max<size_t>(1, params.overlap_burst);
  // The phenomena fractions at most triple the base cardinality (times the
  // overlap burst width); reserving up front keeps multi-million-row
  // generation from re-allocating its way through the loop.
  out.mutable_tuples().reserve(params.cardinality +
                               static_cast<size_t>(
                                   static_cast<double>(params.cardinality) *
                                   (params.duplicate_fraction +
                                    params.adjacency_fraction +
                                    params.overlap_fraction *
                                        static_cast<double>(burst))) +
                               1);
  // Zipf samplers are built only when the skew knob is on, so the default
  // configuration draws through the exact legacy rng.Below sequence.
  const bool skewed = params.value_zipf > 0.0;
  const ZipfSampler name_zipf(skewed ? params.num_names : 1,
                              params.value_zipf);
  const ZipfSampler val_zipf(skewed ? params.num_values : 1,
                             params.value_zipf);
  for (size_t i = 0; i < params.cardinality; ++i) {
    Tuple t;
    t.push_back(Value::String(
        "n" + std::to_string(
                  skewed ? name_zipf.Sample(rng)
                         : rng.Below(
                               std::max<uint64_t>(1, params.num_names)))));
    t.push_back(Value::Int(static_cast<int64_t>(
        rng.Below(std::max<uint64_t>(1, params.num_categories)))));
    t.push_back(Value::Int(static_cast<int64_t>(
        skewed ? val_zipf.Sample(rng)
               : rng.Below(std::max<uint64_t>(1, params.num_values)))));
    Period p;
    if (params.temporal) {
      TimePoint len =
          1 + static_cast<TimePoint>(rng.Below(
                  static_cast<uint64_t>(params.max_period_length)));
      TimePoint begin = static_cast<TimePoint>(rng.Below(
          static_cast<uint64_t>(std::max<TimePoint>(1, params.time_horizon - len))));
      p = Period(begin, begin + len);
      t.push_back(Value::Time(p.begin));
      t.push_back(Value::Time(p.end));
    }

    if (params.temporal && rng.Unit() < params.adjacency_fraction &&
        p.Duration() >= 2) {
      // Split into two adjacent fragments (coalT can merge them back).
      TimePoint mid = p.begin + 1 +
                      static_cast<TimePoint>(
                          rng.Below(static_cast<uint64_t>(p.Duration() - 1)));
      Tuple a = t, b = t;
      SetTuplePeriod(&a, schema, Period(p.begin, mid));
      SetTuplePeriod(&b, schema, Period(mid, p.end));
      out.Append(std::move(a));
      out.Append(std::move(b));
    } else {
      out.Append(t);
    }

    if (rng.Unit() < params.duplicate_fraction) {
      out.Append(t);  // exact duplicate
    }
    if (params.temporal && rng.Unit() < params.overlap_fraction) {
      // Value-equivalent tuples with overlapping, shifted periods. Each
      // burst copy shifts from the previous one by less than its duration,
      // so the whole burst forms a chain of pairwise-overlapping periods.
      // burst == 1 reproduces the legacy single snapshot duplicate exactly.
      Period prev = p;
      for (size_t k = 0; k < burst; ++k) {
        Tuple o = t;
        TimePoint shift = 1 + static_cast<TimePoint>(rng.Below(
                                  static_cast<uint64_t>(p.Duration())));
        prev = Period(prev.begin + shift, prev.end + shift);
        SetTuplePeriod(&o, schema, prev);
        out.Append(std::move(o));
      }
    }
  }
  return out;
}

}  // namespace tqp
