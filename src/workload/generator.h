// Synthetic workload generation.
//
// The paper has no public dataset; experiments run on synthetic relations
// with controllable knobs for exactly the phenomena the algebra reasons
// about: exact duplicates (rdup work), value-equivalent overlapping periods
// (snapshot duplicates: rdupT work, \T preconditions), and value-equivalent
// adjacent periods (coalescible tuples: coalT work).
#ifndef TQP_WORKLOAD_GENERATOR_H_
#define TQP_WORKLOAD_GENERATOR_H_

#include <cstdint>

#include "core/relation.h"

namespace tqp {

/// Parameters for synthetic relation generation.
struct RelationGenParams {
  /// Number of base tuples generated (the final cardinality is higher when
  /// duplicate/adjacency/overlap fractions are positive).
  size_t cardinality = 1000;
  /// Distinct values of the Name attribute (value-equivalence classes).
  size_t num_names = 50;
  /// Distinct values of the Cat attribute.
  size_t num_categories = 8;
  /// Periods are drawn within [0, time_horizon).
  TimePoint time_horizon = 1000;
  /// Maximum period duration.
  TimePoint max_period_length = 50;
  /// Fraction of base tuples duplicated exactly (regular duplicates).
  double duplicate_fraction = 0.0;
  /// Fraction of base tuples split into two adjacent fragments (coalescible).
  double adjacency_fraction = 0.0;
  /// Fraction of base tuples copied with an overlapping shifted period
  /// (snapshot duplicates).
  double overlap_fraction = 0.0;
  /// Generate T1/T2 (temporal) or a plain conventional relation.
  bool temporal = true;
  /// Distinct values of the Val attribute. Large-relation workloads (the
  /// vexec pipeline bench generates millions of rows) widen this so Val
  /// does not degenerate into a tiny domain.
  size_t num_values = 1000;
  /// Zipf exponent s for the Name and Val draws. 0 (default) keeps the
  /// legacy uniform draws — bit-for-bit the same RNG sequence and output as
  /// before the knob existed. s > 0 skews toward low indices with
  /// P(i) ∝ 1/(i+1)^s, concentrating value-equivalence classes and hash-join
  /// keys (heavy-hitter classes stress the partitioned/spilling paths).
  double value_zipf = 0.0;
  /// Number of value-equivalent shifted copies emitted per overlap event.
  /// 1 (default) is the legacy single snapshot duplicate; k > 1 emits a
  /// clustered burst of k chained overlapping periods, so a few classes
  /// carry long overlap chains (worst-case rdupT/\T sweeps) instead of the
  /// overlap load spreading evenly.
  size_t overlap_burst = 1;
  uint64_t seed = 42;
};

/// Generates a relation with schema (Name:string, Cat:int, Val:int[,T1,T2]).
Relation GenerateRelation(const RelationGenParams& params);

/// Deterministic xorshift-based generator (reproducible across platforms).
class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed ? seed : 0x9e3779b9) {}

  uint64_t Next() {
    state_ ^= state_ << 13;
    state_ ^= state_ >> 7;
    state_ ^= state_ << 17;
    return state_;
  }

  /// Uniform in [0, bound).
  uint64_t Below(uint64_t bound) { return bound == 0 ? 0 : Next() % bound; }

  /// Uniform in [0, 1).
  double Unit() { return static_cast<double>(Next() % (1ULL << 53)) /
                         static_cast<double>(1ULL << 53); }

 private:
  uint64_t state_;
};

}  // namespace tqp

#endif  // TQP_WORKLOAD_GENERATOR_H_
